// Integration tests: the complete IMODEC flow (collapse or restructure ->
// multi-output decomposition -> CLB packing) on benchmark circuits, with
// functional equivalence checked end to end, plus the paper's headline
// comparisons in miniature.

#include <gtest/gtest.h>

#include "circuits/registry.hpp"
#include "circuits/synthetic.hpp"
#include "logic/blif.hpp"
#include "logic/simulate.hpp"
#include "map/driver.hpp"
#include "map/lutflow.hpp"
#include "map/restructure.hpp"
#include "map/xc3000.hpp"

#include <sstream>

namespace imodec {
namespace {

struct FlowOutcome {
  unsigned luts = 0;
  unsigned clbs = 0;
};

FlowOutcome run_flow(const Network& start, bool multi) {
  FlowOptions opts;
  opts.multi_output = multi;
  const FlowResult r = decompose_to_luts(start, opts);
  const auto packing = pack_xc3000(r.network);
  return {r.stats.luts, packing.clbs};
}

class FullFlow : public ::testing::TestWithParam<const char*> {};

TEST_P(FullFlow, CollapsedMultiOutputFlowIsEquivalentAndCompetitive) {
  const auto net = circuits::make_benchmark(GetParam());
  ASSERT_TRUE(net.has_value());
  const auto collapsed = collapse_network(*net);
  ASSERT_TRUE(collapsed.has_value());

  FlowOptions multi;
  const FlowResult m = decompose_to_luts(*collapsed, multi);
  EXPECT_TRUE(check_equivalence(*net, m.network).equivalent) << GetParam();

  FlowOptions single;
  single.multi_output = false;
  const FlowResult s = decompose_to_luts(*collapsed, single);
  EXPECT_TRUE(check_equivalence(*net, s.network).equivalent);

  // The paper's central claim: multiple-output decomposition does not lose
  // to single-output decomposition (Table 2: reduction or tie on every row).
  const auto mp = pack_xc3000(m.network);
  const auto sp = pack_xc3000(s.network);
  EXPECT_LE(mp.clbs, sp.clbs + 1) << GetParam();  // +1 packing-noise slack
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, FullFlow,
                         ::testing::Values("rd53", "rd73", "rd84", "z4ml",
                                           "9sym", "f51m", "clip", "misex1",
                                           "sao2"));

TEST(FullFlowSuite, SharingCircuitsShowStrictGain) {
  // Circuits built around shared structure must show a strict CLB win for
  // the multi-output mode, mirroring e64/count/f51m in Table 2.
  unsigned total_multi = 0, total_single = 0;
  for (const char* name : {"rd73", "rd84", "f51m", "z4ml"}) {
    const auto collapsed = collapse_network(*circuits::make_benchmark(name));
    ASSERT_TRUE(collapsed.has_value()) << name;
    total_multi += run_flow(*collapsed, true).clbs;
    total_single += run_flow(*collapsed, false).clbs;
  }
  EXPECT_LT(total_multi, total_single);
}

TEST(FullFlowSuite, RestructuredFlowOnWideCircuits) {
  // The circuits the paper marks '*' (uncollapsible): restructure instead.
  for (const char* name : {"rot", "C499"}) {
    const auto net = circuits::make_benchmark(name);
    ASSERT_TRUE(net.has_value());
    EXPECT_FALSE(collapse_network(*net).has_value()) << name;
    const Network pre = restructure(*net);
    const FlowResult r = decompose_to_luts(pre, {});
    EXPECT_TRUE(check_equivalence(*net, r.network).equivalent) << name;
    const auto packing = pack_xc3000(r.network);
    EXPECT_GT(packing.clbs, 0u);
  }
}

TEST(FullFlowSuite, MediumSyntheticEndToEnd) {
  const auto net = circuits::make_benchmark("duke2");
  ASSERT_TRUE(net.has_value());
  const Network pre = restructure(*net);
  const FlowResult r = decompose_to_luts(pre, {});
  EXPECT_TRUE(check_equivalence(*net, r.network).equivalent);
}

TEST(FullFlowSuite, MappedNetworkSurvivesBlifRoundTrip) {
  const auto collapsed = collapse_network(*circuits::make_benchmark("rd84"));
  ASSERT_TRUE(collapsed.has_value());
  const FlowResult r = decompose_to_luts(*collapsed, {});
  std::ostringstream blif;
  write_blif(blif, r.network);
  std::istringstream back(blif.str());
  const Network reparsed = read_blif(back);
  EXPECT_TRUE(check_equivalence(r.network, reparsed).equivalent);
}

TEST(FullFlowSuite, StrictAblationNeverBeatsNonStrict) {
  for (const char* name : {"rd73", "f51m"}) {
    const auto collapsed = collapse_network(*circuits::make_benchmark(name));
    ASSERT_TRUE(collapsed.has_value());
    FlowOptions non_strict;
    FlowOptions strict;
    strict.imodec.strict = true;
    const FlowResult a = decompose_to_luts(*collapsed, non_strict);
    const FlowResult b = decompose_to_luts(*collapsed, strict);
    EXPECT_TRUE(check_equivalence(*collapsed, b.network).equivalent) << name;
    EXPECT_LE(a.stats.luts, b.stats.luts) << name;
  }
}

class RandomSyntheticFlow : public ::testing::TestWithParam<int> {};

TEST_P(RandomSyntheticFlow, DriverEndToEndOnRandomNetworks) {
  circuits::SyntheticSpec spec;
  spec.name = "fuzz";
  spec.seed = static_cast<std::uint64_t>(GetParam()) * 7919 + 123;
  spec.num_inputs = 10 + GetParam() % 8;
  spec.num_outputs = 3 + GetParam() % 5;
  spec.levels = 3 + GetParam() % 3;
  spec.gates_per_level = 8 + GetParam() % 6;
  const Network net = circuits::make_synthetic(spec);

  SynthesisConfig opts;
  Network mapped;
  const DriverReport rep = run_synthesis(net, opts, mapped);
  EXPECT_TRUE(rep.verified) << "seed " << spec.seed;
  for (SigId s = 0; s < mapped.node_count(); ++s) {
    if (mapped.node(s).kind == Network::Kind::Logic) {
      EXPECT_LE(mapped.node(s).fanins.size(), 5u);
    }
  }
  // The classical flow must also stay sound on arbitrary networks.
  SynthesisConfig classical;
  classical.classical = true;
  Network mapped2;
  EXPECT_TRUE(run_synthesis(net, classical, mapped2).verified)
      << "seed " << spec.seed;
}

INSTANTIATE_TEST_SUITE_P(Fuzz, RandomSyntheticFlow, ::testing::Range(0, 12));

TEST(FullFlowSuite, OutputPartitioningHelpsOrTies) {
  const auto collapsed = collapse_network(*circuits::make_benchmark("rd84"));
  ASSERT_TRUE(collapsed.has_value());
  FlowOptions grouped;
  FlowOptions ungrouped;
  ungrouped.output_partitioning = false;
  const FlowResult a = decompose_to_luts(*collapsed, grouped);
  const FlowResult b = decompose_to_luts(*collapsed, ungrouped);
  EXPECT_TRUE(check_equivalence(*collapsed, a.network).equivalent);
  EXPECT_TRUE(check_equivalence(*collapsed, b.network).equivalent);
  EXPECT_LE(a.stats.luts, b.stats.luts);
}

}  // namespace
}  // namespace imodec
