// Tests for classical single-output decomposition: code assignment,
// g construction, recomposition correctness, and Decomposition Condition 1.

#include <gtest/gtest.h>

#include "decomp/chart.hpp"
#include "decomp/single.hpp"
#include "paper_fixtures.hpp"
#include "util/rng.hpp"

namespace imodec {
namespace {

using testfix::paper_f1;
using testfix::paper_f2;
using testfix::paper_vp;

TEST(SingleDecomp, PaperF1Codewidth) {
  const Decomposition dec = decompose_single_output(paper_f1(), paper_vp());
  // ℓ = 3 -> c = 2 decomposition functions over the 3 bound variables.
  EXPECT_EQ(dec.q(), 2u);
  for (const TruthTable& d : dec.d_funcs) EXPECT_EQ(d.num_vars(), 3u);
  EXPECT_EQ(dec.outputs[0].g.num_vars(), 4u);  // c + |FS| = 2 + 2
}

TEST(SingleDecomp, PaperF1Recomposes) {
  const TruthTable f = paper_f1();
  const Decomposition dec = decompose_single_output(f, paper_vp());
  EXPECT_EQ(recompose(dec, 0, 5), f);
}

TEST(SingleDecomp, PaperF2Recomposes) {
  const TruthTable f = paper_f2();
  const Decomposition dec = decompose_single_output(f, paper_vp());
  EXPECT_EQ(dec.q(), 2u);  // ℓ = 4 -> c = 2
  EXPECT_EQ(recompose(dec, 0, 5), f);
}

TEST(SingleDecomp, ConstantFunctionNeedsNoD) {
  const Decomposition dec =
      decompose_single_output(TruthTable(5, true), paper_vp());
  EXPECT_EQ(dec.q(), 0u);
  EXPECT_EQ(recompose(dec, 0, 5), TruthTable(5, true));
}

TEST(SingleDecomp, FreeOnlyFunctionNeedsNoD) {
  const TruthTable f = TruthTable::var(5, 3) ^ TruthTable::var(5, 4);
  const Decomposition dec = decompose_single_output(f, paper_vp());
  EXPECT_EQ(dec.q(), 0u);
  EXPECT_EQ(recompose(dec, 0, 5), f);
}

TEST(SingleDecomp, TwoClassesNeedOneFunction) {
  // f = (x0 | x1 | x2) & y: two column patterns.
  const TruthTable bs =
      TruthTable::var(5, 0) | TruthTable::var(5, 1) | TruthTable::var(5, 2);
  const TruthTable f = bs & TruthTable::var(5, 3);
  const Decomposition dec = decompose_single_output(f, paper_vp());
  EXPECT_EQ(dec.q(), 1u);
  EXPECT_EQ(recompose(dec, 0, 5), f);
}

TEST(BuildG, RespectsChosenFunctions) {
  // Decompose f1 with hand-picked d functions from the paper's Example 2:
  // the non-strict pair evaluating to codes 00/01/10 plus 11 for vertex 100.
  const TruthTable f = paper_f1();
  // d1 = x1x2x3 + x1~x2~x3 ; d2 = x1~x3 + ~x1x2x3 + x1~x2x3 (paper text).
  TruthTable d1(3), d2(3);
  for (std::uint64_t v = 0; v < 8; ++v) {
    const bool x1 = v & 1, x2 = (v >> 1) & 1, x3 = (v >> 2) & 1;
    d1.set(v, (x1 && x2 && x3) || (x1 && !x2 && !x3));
    d2.set(v, (x1 && !x3) || (!x1 && x2 && x3) || (x1 && !x2 && x3));
  }
  const TruthTable g = build_g(f, paper_vp(), {d1, d2});
  // Verify recomposition by hand.
  for (std::uint64_t input = 0; input < 32; ++input) {
    const std::uint64_t x = input & 7;
    const std::uint64_t y = input >> 3;
    std::uint64_t row = (d1.eval(x) ? 1 : 0) | (d2.eval(x) ? 2 : 0);
    row |= y << 2;
    EXPECT_EQ(g.eval(row), f.eval(input)) << "input " << input;
  }
}

class SingleDecompRandom : public ::testing::TestWithParam<int> {};

TEST_P(SingleDecompRandom, RecomposesRandomFunctions) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761u + 17);
  const unsigned n = 5 + GetParam() % 3;  // 5..7 variables
  const unsigned b = 3 + GetParam() % 2;  // bound 3..4
  TruthTable f(n);
  for (std::uint64_t row = 0; row < f.num_rows(); ++row)
    f.set(row, rng.coin());
  VarPartition vp;
  for (unsigned v = 0; v < n; ++v)
    (v < b ? vp.bound : vp.free_set).push_back(v);
  const Decomposition dec = decompose_single_output(f, vp);
  EXPECT_EQ(recompose(dec, 0, n), f);
  // Codewidth is exactly ⌈ld ℓ⌉.
  const auto part = local_partition_tt(f, vp);
  EXPECT_EQ(dec.q(), codewidth(part.num_classes));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SingleDecompRandom, ::testing::Range(0, 12));

TEST(Chart, RendersPaperChart) {
  const std::string chart = render_chart(paper_f1(), paper_vp());
  // 4 free-set rows + header.
  EXPECT_EQ(std::count(chart.begin(), chart.end(), '\n'), 5);
  EXPECT_NE(chart.find("000"), std::string::npos);
}

TEST(Chart, RendersPartition) {
  const auto part = local_partition_tt(paper_f1(), paper_vp());
  const std::string s = render_partition(part);
  EXPECT_NE(s.find("Class 1"), std::string::npos);
  EXPECT_NE(s.find("Class 3"), std::string::npos);
  EXPECT_EQ(s.find("Class 4"), std::string::npos);
}

}  // namespace
}  // namespace imodec
