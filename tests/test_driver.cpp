// Tests for the synthesis driver (the CLI's engine).

#include <gtest/gtest.h>

#include "circuits/registry.hpp"
#include "logic/simulate.hpp"
#include "map/driver.hpp"

namespace imodec {
namespace {

TEST(Driver, CollapsedPathOnSmallCircuit) {
  const auto net = circuits::make_benchmark("rd73");
  ASSERT_TRUE(net.has_value());
  Network mapped;
  const DriverReport rep = run_synthesis(*net, {}, mapped);
  EXPECT_TRUE(rep.collapsed);
  EXPECT_TRUE(rep.verified);
  EXPECT_TRUE(rep.verified_exhaustive);
  EXPECT_GT(rep.flow.luts, 0u);
  EXPECT_GT(rep.clbs.clbs, 0u);
  EXPECT_LE(rep.clbs.clbs, rep.flow.luts);
  EXPECT_GT(rep.depth, 0u);
  EXPECT_TRUE(check_equivalence(*net, mapped).equivalent);
}

TEST(Driver, WideCircuitFallsBackToRestructuring) {
  const auto net = circuits::make_benchmark("C499");
  ASSERT_TRUE(net.has_value());
  Network mapped;
  const DriverReport rep = run_synthesis(*net, {}, mapped);
  EXPECT_FALSE(rep.collapsed);  // cones exceed the truth-table limit
  EXPECT_TRUE(rep.verified);
  EXPECT_TRUE(check_equivalence(*net, mapped).equivalent);
}

TEST(Driver, NoCollapseOptionForcesRestructure) {
  const auto net = circuits::make_benchmark("rd73");
  SynthesisConfig opts;
  opts.collapse = false;
  Network mapped;
  const DriverReport rep = run_synthesis(*net, opts, mapped);
  EXPECT_FALSE(rep.collapsed);
  EXPECT_TRUE(rep.verified);
}

TEST(Driver, NoVerifySkipsCheckButStillMaps) {
  const auto net = circuits::make_benchmark("rd53");
  SynthesisConfig opts;
  opts.verify = VerifyMode::off;
  Network mapped;
  const DriverReport rep = run_synthesis(*net, opts, mapped);
  EXPECT_TRUE(rep.verified);  // default value, no check ran
  EXPECT_FALSE(rep.verified_exhaustive);
  EXPECT_TRUE(check_equivalence(*net, mapped).equivalent);  // still correct
}

TEST(Driver, SingleModeUsesMoreClbs) {
  const auto net = circuits::make_benchmark("rd84");
  SynthesisConfig multi;
  SynthesisConfig single;
  single.multi_output = false;
  Network m, s;
  const DriverReport rm = run_synthesis(*net, multi, m);
  const DriverReport rs = run_synthesis(*net, single, s);
  EXPECT_TRUE(rm.verified);
  EXPECT_TRUE(rs.verified);
  EXPECT_LT(rm.clbs.clbs, rs.clbs.clbs);
}

TEST(Driver, CustomLutSize) {
  const auto net = circuits::make_benchmark("rd53");
  SynthesisConfig opts;
  opts.k = 4;
  Network mapped;
  const DriverReport rep = run_synthesis(*net, opts, mapped);
  EXPECT_TRUE(rep.verified);
  for (SigId s = 0; s < mapped.node_count(); ++s) {
    if (mapped.node(s).kind == Network::Kind::Logic) {
      EXPECT_LE(mapped.node(s).fanins.size(), 4u);
    }
  }
}

TEST(Driver, FormatReportMentionsKeyFields) {
  const auto net = circuits::make_benchmark("z4ml");
  Network mapped;
  const DriverReport rep = run_synthesis(*net, {}, mapped);
  const std::string report = format_report("z4ml", rep);
  EXPECT_NE(report.find("z4ml"), std::string::npos);
  EXPECT_NE(report.find("CLB"), std::string::npos);
  EXPECT_NE(report.find("PASS"), std::string::npos);
  EXPECT_NE(report.find("collapsed"), std::string::npos);
}

}  // namespace
}  // namespace imodec
