// Tests for the benchmark circuit generators: functional correctness of the
// exact equivalents, determinism and structure of the synthetic substitutes,
// and registry consistency.

#include <gtest/gtest.h>

#include <bit>

#include "circuits/generators.hpp"
#include "circuits/registry.hpp"
#include "circuits/synthetic.hpp"
#include "logic/simulate.hpp"

namespace imodec {
namespace {

std::vector<bool> bits_of(std::uint64_t v, unsigned n) {
  std::vector<bool> b(n);
  for (unsigned i = 0; i < n; ++i) b[i] = (v >> i) & 1;
  return b;
}

std::uint64_t word_of(const std::vector<bool>& bits) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bits.size(); ++i)
    if (bits[i]) v |= std::uint64_t{1} << i;
  return v;
}

TEST(Circuits, Rd53IsPopcount) {
  const Network net = circuits::make_rd(5, 3);
  EXPECT_EQ(net.num_inputs(), 5u);
  EXPECT_EQ(net.num_outputs(), 3u);
  for (std::uint64_t v = 0; v < 32; ++v) {
    const auto out = net.eval(bits_of(v, 5));
    EXPECT_EQ(word_of(out), static_cast<std::uint64_t>(std::popcount(v)))
        << v;
  }
}

TEST(Circuits, Rd73AndRd84ArePopcount) {
  for (const auto& [ni, no] : {std::pair{7u, 3u}, std::pair{8u, 4u}}) {
    const Network net = circuits::make_rd(ni, no);
    for (std::uint64_t v = 0; v < (std::uint64_t{1} << ni); v += 3) {
      const auto out = net.eval(bits_of(v, ni));
      EXPECT_EQ(word_of(out) & ((1u << no) - 1),
                static_cast<std::uint64_t>(std::popcount(v)) &
                    ((1u << no) - 1));
    }
  }
}

TEST(Circuits, NineSymWindow) {
  const Network net = circuits::make_9sym();
  for (std::uint64_t v = 0; v < 512; ++v) {
    const int ones = std::popcount(v);
    EXPECT_EQ(net.eval(bits_of(v, 9))[0], ones >= 3 && ones <= 6) << v;
  }
}

TEST(Circuits, Z4mlIsAdder) {
  const Network net = circuits::make_z4ml();
  for (std::uint64_t v = 0; v < 128; ++v) {
    const std::uint64_t a = v & 7, b = (v >> 3) & 7, cin = (v >> 6) & 1;
    const auto out = net.eval(bits_of(v, 7));
    EXPECT_EQ(word_of(out), a + b + cin) << v;
  }
}

TEST(Circuits, FiveXp1Arithmetic) {
  const Network net = circuits::make_5xp1();
  for (std::uint64_t x = 0; x < 128; ++x) {
    std::uint64_t p = 1;
    for (int e = 0; e < 5; ++e) p = (p * x) & 0x3ff;
    p = (p + 1) & 0x3ff;
    EXPECT_EQ(word_of(net.eval(bits_of(x, 7))), p) << x;
  }
}

TEST(Circuits, F51mIsMultiplier) {
  const Network net = circuits::make_f51m();
  for (std::uint64_t v = 0; v < 256; ++v) {
    const std::uint64_t a = v & 15, b = v >> 4;
    EXPECT_EQ(word_of(net.eval(bits_of(v, 8))), a * b) << v;
  }
}

TEST(Circuits, ClipSaturates) {
  const Network net = circuits::make_clip();
  for (std::uint64_t v = 0; v < 512; ++v) {
    const auto out = net.eval(bits_of(v, 9));
    // Decode 5-bit two's complement output.
    int got = static_cast<int>(word_of(out));
    if (got >= 16) got -= 32;
    int in = static_cast<int>(v);
    if (in >= 256) in -= 512;
    const int expect = std::clamp(in, -15, 15);
    // Clipping magnitude: the circuit preserves sign and saturates the four
    // magnitude bits; compare sign and in-range values exactly.
    if (in >= -15 && in <= 15) {
      EXPECT_EQ(got, expect) << in;
    } else {
      EXPECT_EQ(got < 0, in < 0) << in;
      EXPECT_GE(std::abs(got), 15) << in;
    }
  }
}

TEST(Circuits, Alu2AddMode) {
  const Network net = circuits::make_alu2();
  // s = 1xx selects the adder path (s[2] = 1).
  for (std::uint64_t a = 0; a < 8; ++a) {
    for (std::uint64_t b = 0; b < 8; ++b) {
      std::vector<bool> in(10, false);
      for (int i = 0; i < 3; ++i) {
        in[i] = (a >> i) & 1;
        in[3 + i] = (b >> i) & 1;
      }
      in[6 + 2] = true;  // s[2] = 1 -> arithmetic
      const auto out = net.eval(in);
      const std::uint64_t sum = (a + b) & 7;
      std::uint64_t got = 0;
      for (int i = 0; i < 3; ++i)
        if (out[i]) got |= 1u << i;
      EXPECT_EQ(got, sum) << a << "+" << b;
      EXPECT_EQ(out[3], ((a + b) >> 3) & 1);        // carry out
      EXPECT_EQ(out[4], sum == 0);                   // zero flag
    }
  }
}

TEST(Circuits, Alu4HasDocumentedInterface) {
  const Network net = circuits::make_alu4();
  EXPECT_EQ(net.num_inputs(), 14u);
  EXPECT_EQ(net.num_outputs(), 8u);
  // Logic mode (m = 1) must suppress the carry chain: carry-out is 0.
  std::vector<bool> in(14, false);
  in[12] = true;  // mode
  in[13] = true;  // cin (must be ignored)
  EXPECT_FALSE(net.eval(in)[4]);
}

TEST(Circuits, CountIncrements) {
  const Network net = circuits::make_count();
  // Inputs: d[0..15], l[16..31], load=32, clr=33, cin=34.
  std::vector<bool> in(35, false);
  const std::uint64_t d = 0x00ff;
  for (int i = 0; i < 16; ++i) in[i] = (d >> i) & 1;
  in[34] = true;  // cin: increment
  auto out = net.eval(in);
  EXPECT_EQ(word_of(out), d + 1);
  // Load path.
  const std::uint64_t l = 0x1234;
  for (int i = 0; i < 16; ++i) in[16 + i] = (l >> i) & 1;
  in[32] = true;  // load
  out = net.eval(in);
  EXPECT_EQ(word_of(out), l);
  // Clear dominates.
  in[33] = true;
  out = net.eval(in);
  EXPECT_EQ(word_of(out), 0u);
}

TEST(Circuits, E64Priority) {
  const Network net = circuits::make_e64();
  std::vector<bool> in(65, false);
  in[64] = true;  // enable
  in[5] = in[20] = in[63] = true;
  const auto out = net.eval(in);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(out[i], i == 5) << i;
  EXPECT_FALSE(out[64]);
  // Nothing set: the "none" output fires.
  std::vector<bool> none(65, false);
  none[64] = true;
  EXPECT_TRUE(net.eval(none)[64]);
}

TEST(Circuits, RotRotates) {
  const Network net = circuits::make_rot();
  std::vector<bool> in(135, false);
  in[3] = true;                     // data bit 3
  in[128 + 0] = in[128 + 2] = true; // rotate by 1 + 4 = 5
  const auto out = net.eval(in);
  // Rotate left by 5: out[i] = d[(i + 5) mod 128]; bit 3 lands at 126:
  // (126+5) mod 128 = 3. 126 >= 107 is cropped, so check a visible case.
  std::fill(in.begin(), in.end(), false);
  in[10] = true;
  in[128] = true;  // rotate by 1 -> d[10] visible at out[9]
  const auto out2 = net.eval(in);
  for (int i = 0; i < 107; ++i) EXPECT_EQ(out2[i], i == 9) << i;
  (void)out;
}

TEST(Circuits, C499CorrectsCleanWord) {
  const Network net = circuits::make_c499();
  // With matching syndrome inputs (all zero, en = 0), data passes through.
  std::vector<bool> in(41, false);
  in[7] = in[19] = true;
  const auto out = net.eval(in);
  // No syndrome match for any bit when checks are consistent -> passthrough
  // (up to correction of a phantom position; verify the circuit is stable:
  // flipping en flips the syndrome and thus changes some outputs).
  std::vector<bool> in2 = in;
  in2[40] = true;
  EXPECT_NE(net.eval(in2), out);
}

TEST(Synthetic, DeterministicForFixedSeed) {
  circuits::SyntheticSpec spec;
  spec.name = "s";
  spec.seed = 77;
  const Network a = circuits::make_synthetic(spec);
  const Network b = circuits::make_synthetic(spec);
  EXPECT_TRUE(check_equivalence(a, b).equivalent);
  EXPECT_EQ(a.logic_count(), b.logic_count());
  spec.seed = 78;
  const Network c = circuits::make_synthetic(spec);
  EXPECT_FALSE(check_equivalence(a, c).equivalent);
}

TEST(Synthetic, MatchesRequestedInterface) {
  circuits::SyntheticSpec spec;
  spec.name = "s";
  spec.num_inputs = 22;
  spec.num_outputs = 9;
  const Network net = circuits::make_synthetic(spec);
  EXPECT_EQ(net.num_inputs(), 22u);
  EXPECT_EQ(net.num_outputs(), 9u);
  EXPECT_GT(net.depth(), 1u);
}

TEST(Registry, AllNamesGenerate) {
  for (const auto& name : circuits::benchmark_names()) {
    const auto net = circuits::make_benchmark(name);
    ASSERT_TRUE(net.has_value()) << name;
    EXPECT_GT(net->num_inputs(), 0u) << name;
    EXPECT_GT(net->num_outputs(), 0u) << name;
  }
  EXPECT_FALSE(circuits::make_benchmark("no_such_circuit").has_value());
}

TEST(Registry, Table2MetadataIsConsistent) {
  const auto& table = circuits::table2_benchmarks();
  EXPECT_EQ(table.size(), 23u);  // 23 rows in the paper's Table 2
  for (const auto& info : table) {
    EXPECT_TRUE(info.kind == "exact" || info.kind == "synthetic") << info.name;
    // Every collapsible row has IMODEC and Single reference CLB counts.
    if (info.paper_collapsible && info.name != "des") {
      EXPECT_GT(info.paper_imodec_clb, 0) << info.name;
      EXPECT_GT(info.paper_single_clb, 0) << info.name;
      // The paper's headline: IMODEC never loses to Single.
      EXPECT_LE(info.paper_imodec_clb, info.paper_single_clb) << info.name;
    }
  }
}

TEST(Registry, InterfacesMatchMcncWhereExact) {
  const struct {
    const char* name;
    unsigned ni, no;
  } expect[] = {
      {"rd53", 5, 3},  {"rd73", 7, 3},   {"rd84", 8, 4},  {"9sym", 9, 1},
      {"z4ml", 7, 4},  {"5xp1", 7, 10},  {"f51m", 8, 8},  {"clip", 9, 5},
      {"alu2", 10, 6}, {"alu4", 14, 8},  {"count", 35, 16},
      {"e64", 65, 65}, {"rot", 135, 107}, {"C499", 41, 32},
  };
  for (const auto& e : expect) {
    const auto net = circuits::make_benchmark(e.name);
    ASSERT_TRUE(net.has_value()) << e.name;
    EXPECT_EQ(net->num_inputs(), e.ni) << e.name;
    EXPECT_EQ(net->num_outputs(), e.no) << e.name;
  }
}

}  // namespace
}  // namespace imodec
