// Unit tests for TruthTable.

#include <gtest/gtest.h>

#include "logic/truthtable.hpp"
#include "util/rng.hpp"

namespace imodec {
namespace {

TEST(TruthTable, ConstantsAndVars) {
  TruthTable zero(3);
  EXPECT_TRUE(zero.is_zero());
  EXPECT_TRUE(zero.is_constant());
  TruthTable one(3, true);
  EXPECT_TRUE(one.is_constant());
  EXPECT_EQ(one.count_ones(), 8u);

  const TruthTable x1 = TruthTable::var(3, 1);
  for (std::uint64_t row = 0; row < 8; ++row)
    EXPECT_EQ(x1.eval(row), (row >> 1) & 1);
  EXPECT_EQ(x1.count_ones(), 4u);
}

TEST(TruthTable, FromString) {
  const TruthTable t = TruthTable::from_string("0110");
  EXPECT_EQ(t.num_vars(), 2u);
  EXPECT_FALSE(t.eval(0));
  EXPECT_TRUE(t.eval(1));
  EXPECT_TRUE(t.eval(2));
  EXPECT_FALSE(t.eval(3));
  EXPECT_EQ(t.to_string(), "0110");
}

TEST(TruthTable, Operators) {
  const TruthTable a = TruthTable::var(2, 0);
  const TruthTable b = TruthTable::var(2, 1);
  EXPECT_EQ((a & b).to_string(), "0001");
  EXPECT_EQ((a | b).to_string(), "0111");
  EXPECT_EQ((a ^ b).to_string(), "0110");
  EXPECT_EQ((~a).to_string(), "1010");
}

TEST(TruthTable, Cofactor) {
  const TruthTable a = TruthTable::var(3, 0);
  const TruthTable b = TruthTable::var(3, 1);
  const TruthTable f = a ^ b;
  EXPECT_EQ(f.cofactor(0, false), b);
  EXPECT_EQ(f.cofactor(0, true), ~b);
  // Cofactored variable becomes a don't-care.
  EXPECT_TRUE(f.cofactor(0, false).is_dont_care(0));
}

TEST(TruthTable, SupportAndDontCare) {
  const TruthTable f =
      TruthTable::var(4, 0) & TruthTable::var(4, 2);
  EXPECT_EQ(f.support(), (std::vector<unsigned>{0, 2}));
  EXPECT_TRUE(f.is_dont_care(1));
  EXPECT_TRUE(f.is_dont_care(3));
  EXPECT_FALSE(f.is_dont_care(0));
}

TEST(TruthTable, PermuteShrinksToSupport) {
  const TruthTable f =
      TruthTable::var(4, 1) ^ TruthTable::var(4, 3);
  const TruthTable g = f.permute({1, 3});
  EXPECT_EQ(g.num_vars(), 2u);
  const TruthTable expect = TruthTable::var(2, 0) ^ TruthTable::var(2, 1);
  EXPECT_EQ(g, expect);
}

TEST(TruthTable, PermuteReorders) {
  // f(x0,x1) = x0 & ~x1; swap variables.
  const TruthTable f = TruthTable::var(2, 0) & ~TruthTable::var(2, 1);
  const TruthTable g = f.permute({1, 0});
  const TruthTable expect = ~TruthTable::var(2, 0) & TruthTable::var(2, 1);
  EXPECT_EQ(g, expect);
}

TEST(TruthTable, PermuteRoundTrip) {
  Rng rng(99);
  TruthTable f(5);
  for (std::uint64_t row = 0; row < f.num_rows(); ++row)
    f.set(row, rng.coin());
  const TruthTable g = f.permute({4, 3, 2, 1, 0});
  const TruthTable back = g.permute({4, 3, 2, 1, 0});
  EXPECT_EQ(back, f);
}

TEST(TruthTable, HashConsistency) {
  const TruthTable a = TruthTable::var(3, 0);
  const TruthTable b = TruthTable::var(3, 0);
  EXPECT_EQ(a.hash(), b.hash());
}

}  // namespace
}  // namespace imodec
