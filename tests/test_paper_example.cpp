// End-to-end walk of the paper's running example (Examples 1-7, Figs. 2-5):
// partitions, preferable functions, the Lmax choice, and the final shared
// decomposition of the two-output vector (f1, f2).

#include <gtest/gtest.h>

#include "bdd/add.hpp"
#include "decomp/classes.hpp"
#include "decomp/single.hpp"
#include "imodec/chi.hpp"
#include "imodec/engine.hpp"
#include "imodec/lmax.hpp"
#include "paper_fixtures.hpp"

namespace imodec {
namespace {

using bdd::Bdd;
using bdd::Manager;
using testfix::paper_f1;
using testfix::paper_f2;
using testfix::paper_vp;
using testfix::vx;

struct Example : ::testing::Test {
  TruthTable f1 = paper_f1();
  TruthTable f2 = paper_f2();
  VarPartition vp = paper_vp();
  VertexPartition l1 = local_partition_tt(f1, vp);
  VertexPartition l2 = local_partition_tt(f2, vp);
  VertexPartition global = global_partition({l1, l2});

  OutputState state_for(const VertexPartition& local) const {
    OutputState st;
    st.codewidth = codewidth(local.num_classes);
    st.blocks.resize(1);
    for (std::uint32_t g = 0; g < global.num_classes; ++g)
      st.blocks[0].push_back(g);
    st.local_of_global.resize(global.num_classes);
    for (std::uint64_t v = 0; v < global.num_vertices(); ++v)
      st.local_of_global[global.class_of[v]] = local.class_of[v];
    return st;
  }
};

TEST_F(Example, Fig5CoveringTableHasTwoSharedVertices) {
  Manager mgr(5);
  const Bdd chi1 = build_chi(mgr, 5, state_for(l1));
  const Bdd chi2 = build_chi(mgr, 5, state_for(l2));
  const Bdd shared = chi1 & chi2;
  // Fig. 5 / Example 6: exactly two z-vertices lie in both onsets.
  EXPECT_DOUBLE_EQ(shared.sat_count(), 2.0);
  // One of them is the paper's chosen vertex {G2,G3,G4} (0-indexed mask
  // 01110); the other is {G4,G5} (mask 11000; the paper's Example 5 lists
  // {G3,G4,G5} instead, which violates its own condition C0 — see the note
  // in test_chi.cpp and EXPERIMENTS.md).
  std::vector<bool> a(5, false);
  a[1] = a[2] = a[3] = true;
  EXPECT_TRUE(shared.eval(a));
  a[1] = a[2] = false;
  a[4] = true;
  EXPECT_TRUE(shared.eval(a));
}

TEST_F(Example, LmaxPicksADoublyPreferableFunction) {
  Manager mgr(5);
  const std::vector<Bdd> chis{build_chi(mgr, 5, state_for(l1)),
                              build_chi(mgr, 5, state_for(l2))};
  const LmaxResult pick = lmax(mgr, 5, chis);
  EXPECT_EQ(pick.coverage, 2u);
  EXPECT_TRUE(pick.covers[0]);
  EXPECT_TRUE(pick.covers[1]);
  EXPECT_TRUE(pick.z_mask == 0b01110u || pick.z_mask == 0b11000u)
      << pick.z_mask;
}

TEST_F(Example, Example6FunctionFromChosenVertex) {
  // The chosen vertex {G2,G3,G4} is the function with onset G2 ∪ G3 ∪ G4 =
  // {001,010,100} ∪ {110} ∪ {011,101}. (Example 6's printed SOP covers only
  // four vertices and is not a union of global classes — another typo; the
  // d1 of Example 3, x̄1x3 + x2x̄3 + x1x̄2, covers exactly these six vertices
  // and confirms the set.)
  TruthTable d(3);
  for (std::uint64_t x = 0; x < 8; ++x)
    d.set(x, (0b01110u >> global.class_of[x]) & 1);
  for (const char* v : {"001", "010", "100", "110", "011", "101"})
    EXPECT_TRUE(d.eval(vx(v))) << v;
  for (const char* v : {"000", "111"})
    EXPECT_FALSE(d.eval(vx(v))) << v;
  // Cross-check against the paper's Example 3 d1 SOP.
  for (std::uint64_t x = 0; x < 8; ++x) {
    const bool x1 = x & 1, x2 = (x >> 1) & 1, x3 = (x >> 2) & 1;
    const bool d1 = (!x1 && x3) || (x2 && !x3) || (x1 && !x2);
    EXPECT_EQ(d.eval(x), d1) << x;
  }
}

TEST_F(Example, GreedyLoopTerminatesWithThreeFunctions) {
  // Example 7: after the shared pick, each output needs one more function;
  // the final result uses q = 3 functions (optimal by Property 1: p = 5).
  ImodecStats stats;
  const auto dec = decompose_multi_output({f1, f2}, vp, {}, &stats);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(dec->q(), 3u);
  EXPECT_EQ(stats.lmax_rounds, 3u);  // 1 shared + 1 per output

  // The shared function appears in both outputs' d lists.
  const auto& i0 = dec->outputs[0].d_index;
  const auto& i1 = dec->outputs[1].d_index;
  bool shares = false;
  for (unsigned a : i0)
    for (unsigned b : i1) shares |= (a == b);
  EXPECT_TRUE(shares);
}

TEST_F(Example, AllChosenFunctionsAreConstructable) {
  const auto dec = decompose_multi_output({f1, f2}, vp);
  ASSERT_TRUE(dec.has_value());
  // Constructability (Def. 3): each global class entirely in onset or offset.
  const auto members = global.members();
  for (const TruthTable& d : dec->d_funcs) {
    for (const auto& cls : members) {
      const bool first = d.eval(cls.front());
      for (std::uint32_t v : cls) EXPECT_EQ(d.eval(v), first);
    }
  }
}

TEST_F(Example, DecompositionCondition2Holds) {
  // For each output, the product of its chosen d partitions refines Π_f.
  const auto dec = decompose_multi_output({f1, f2}, vp);
  ASSERT_TRUE(dec.has_value());
  const VertexPartition* locals[2] = {&l1, &l2};
  for (int k = 0; k < 2; ++k) {
    std::vector<VertexPartition> d_parts;
    for (unsigned idx : dec->outputs[k].d_index) {
      VertexPartition part;
      part.b = 3;
      part.num_classes = 2;
      part.class_of.resize(8);
      for (std::uint64_t v = 0; v < 8; ++v)
        part.class_of[v] = dec->d_funcs[idx].eval(v);
      d_parts.push_back(std::move(part));
    }
    std::vector<const VertexPartition*> ptrs;
    for (const auto& pp : d_parts) ptrs.push_back(&pp);
    const VertexPartition prod = VertexPartition::product(ptrs);
    EXPECT_TRUE(prod.refines(*locals[k])) << "output " << k;
  }
}

TEST_F(Example, Fig1Rd53SingleVsMultiSharing) {
  // Fig. 1 shows rd53 (5 inputs, 3 outputs) with k = 4: single-output
  // decomposition needs more bound-set functions than multiple-output
  // decomposition, which shares all of them. Reproduce the functional core:
  // with BS = 4 of the 5 inputs, the three popcount outputs share d's.
  TruthTable s0(5), s1(5), s2(5);
  for (std::uint64_t row = 0; row < 32; ++row) {
    const unsigned ones = __builtin_popcountll(row);
    s0.set(row, ones & 1);
    s1.set(row, (ones >> 1) & 1);
    s2.set(row, (ones >> 2) & 1);
  }
  VarPartition vp4;
  vp4.bound = {0, 1, 2, 3};
  vp4.free_set = {4};
  const std::vector<TruthTable> fs{s0, s1, s2};
  ImodecStats stats;
  const auto dec = decompose_multi_output(fs, vp4, {}, &stats);
  ASSERT_TRUE(dec.has_value());
  const unsigned singles = sum_codewidths(fs, vp4);
  EXPECT_LT(dec->q(), singles);  // sharing must help on rd53
  for (int k = 0; k < 3; ++k) EXPECT_EQ(recompose(*dec, k, 5), fs[k]);
}

}  // namespace
}  // namespace imodec
