// Tests for the espresso-style two-level minimizer.

#include <gtest/gtest.h>

#include "logic/minimize.hpp"
#include "util/rng.hpp"

namespace imodec {
namespace {

TEST(Minimize, ConstantAndEmpty) {
  EXPECT_TRUE(minimize_cover(TruthTable(3)).empty());
  const Cover one = minimize_cover(TruthTable(3, true));
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one.cubes()[0].num_literals(), 0u);
}

TEST(Minimize, RedundantIsopShrinks) {
  // f = ab + ~ac + bc: the consensus term bc is redundant.
  TruthTable f(3);
  for (std::uint64_t r = 0; r < 8; ++r) {
    const bool a = r & 1, b = (r >> 1) & 1, c = (r >> 2) & 1;
    f.set(r, (a && b) || (!a && c) || (b && c));
  }
  const Cover m = minimize_cover(f);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.to_truthtable(), f);
}

TEST(Minimize, XorStaysTwoCubes) {
  const TruthTable f = TruthTable::var(2, 0) ^ TruthTable::var(2, 1);
  const Cover m = minimize_cover(f);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.to_truthtable(), f);
}

TEST(Minimize, FullDontCareCollapsesToTautology) {
  TruthTable on(3);
  on.set(5, true);
  const TruthTable dc = ~on;  // everything else is free
  const Cover m = minimize_cover(on, dc);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m.cubes()[0].num_literals(), 0u);
}

TEST(Minimize, DontCaresEnableWiderCubes) {
  // on = a&b, dc = a&~b: together they cover 'a', one literal.
  TruthTable on(2), dc(2);
  on.set(3, true);
  dc.set(1, true);
  const Cover m = minimize_cover(on, dc);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m.cubes()[0].num_literals(), 1u);
  const TruthTable h = m.to_truthtable();
  EXPECT_TRUE(on.bits().is_subset_of(h.bits()));
  EXPECT_TRUE(h.bits().is_subset_of((on | dc).bits()));
}

class MinimizeRandom : public ::testing::TestWithParam<int> {};

TEST_P(MinimizeRandom, SoundIrredundantAndNoWorseThanIsop) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1223 + 9);
  const unsigned n = 3 + GetParam() % 4;  // 3..6
  TruthTable on(n), dc(n);
  for (std::uint64_t r = 0; r < on.num_rows(); ++r) {
    const unsigned roll = static_cast<unsigned>(rng.below(4));
    if (roll == 0) on.set(r, true);
    if (roll == 1) dc.set(r, true);
  }
  const Cover m = minimize_cover(on, dc);
  const TruthTable h = m.to_truthtable();
  // Sound: on <= h <= on | dc.
  EXPECT_TRUE(on.bits().is_subset_of(h.bits()));
  EXPECT_TRUE(h.bits().is_subset_of((on | dc).bits()));
  // Never more cubes than the ISOP starting point.
  EXPECT_LE(m.size(), isop(on).size());
  // Irredundant: dropping any cube loses some onset minterm.
  for (std::size_t skip = 0; skip < m.size(); ++skip) {
    Cover reduced(n);
    for (std::size_t i = 0; i < m.size(); ++i)
      if (i != skip) reduced.add(m.cubes()[i]);
    const TruthTable r = reduced.to_truthtable();
    EXPECT_FALSE(on.bits().is_subset_of(r.bits())) << "cube " << skip;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinimizeRandom, ::testing::Range(0, 16));

TEST(Minimize, LiteralCountNeverAboveIsop) {
  Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    TruthTable f(5);
    for (std::uint64_t r = 0; r < 32; ++r) f.set(r, rng.chance(1, 3));
    const Cover m = minimize_cover(f);
    EXPECT_LE(m.num_literals(), isop(f).num_literals()) << trial;
    EXPECT_EQ(m.to_truthtable(), f);
  }
}

}  // namespace
}  // namespace imodec
