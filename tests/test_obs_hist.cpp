// Tests for the distribution/post-mortem half of the observability layer
// (DESIGN.md §13): histogram bucket and quantile math against a reference
// sort, bit-identical multi-threaded merges (the TSan target), the flight
// recorder's wraparound and dump-on-unwind contract, and the zero-registry
// guarantee when observability is disabled.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "circuits/registry.hpp"
#include "map/driver.hpp"
#include "obs/flight.hpp"
#include "obs/hist.hpp"
#include "obs/metrics.hpp"
#include "util/resource.hpp"
#include "util/rng.hpp"

namespace imodec::obs {
namespace {

/// Isolation: these tests touch the process-global registry, flight recorder
/// and enable flags; start clean and restore afterwards.
class ObsHistTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = enabled();
    was_flight_ = flight_enabled();
    set_enabled(false);
    set_flight_enabled(false);
    Registry::instance().reset();
    FlightRecorder::instance().clear();
  }
  void TearDown() override {
    Registry::instance().reset();
    FlightRecorder::instance().clear();
    set_enabled(was_enabled_);
    set_flight_enabled(was_flight_);
  }

 private:
  bool was_enabled_ = false;
  bool was_flight_ = false;
};

/// A value mix covering the exact region, every power-of-two row, and the
/// extremes — deterministic so failures reproduce.
std::vector<std::uint64_t> sample_values(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint64_t> vals;
  vals.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Exponentially distributed magnitude: pick a bit width, then a value.
    const unsigned bits = static_cast<unsigned>(rng.below(64)) + 1;
    vals.push_back(rng.next() >> (64 - bits));
  }
  return vals;
}

TEST_F(ObsHistTest, BucketBoundsRoundTrip) {
  // Every value lies inside its bucket and both bounds map back to it.
  std::vector<std::uint64_t> probe;
  for (std::uint64_t v = 0; v < 4096; ++v) probe.push_back(v);
  for (unsigned b = 12; b < 64; ++b) {
    const std::uint64_t p = std::uint64_t{1} << b;
    probe.insert(probe.end(), {p - 1, p, p + 1});
  }
  probe.push_back(~std::uint64_t{0});
  for (const std::uint64_t v : probe) {
    const unsigned i = Histogram::bucket_index(v);
    ASSERT_LT(i, Histogram::kBuckets) << v;
    EXPECT_LE(Histogram::bucket_lo(i), v) << v;
    EXPECT_GE(Histogram::bucket_hi(i), v) << v;
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_lo(i)), i) << v;
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_hi(i)), i) << v;
  }
  // Buckets tile the value axis in order: each lo is the previous hi + 1.
  for (unsigned i = 1; i < Histogram::kBuckets; ++i)
    ASSERT_EQ(Histogram::bucket_lo(i), Histogram::bucket_hi(i - 1) + 1) << i;
  EXPECT_EQ(Histogram::bucket_index(~std::uint64_t{0}),
            Histogram::kBuckets - 1);
}

TEST_F(ObsHistTest, QuantilesMatchReferenceSort) {
  Histogram h;
  std::vector<std::uint64_t> vals = sample_values(10000, 0xC0FFEE);
  std::uint64_t sum = 0, max = 0;
  for (const std::uint64_t v : vals) {
    h.record(v);
    sum += v;
    max = std::max(max, v);
  }
  EXPECT_EQ(h.count(), vals.size());
  EXPECT_EQ(h.sum(), sum);
  EXPECT_EQ(h.max(), max);

  std::sort(vals.begin(), vals.end());
  for (const double q : {0.01, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    const std::size_t rank = std::min<std::size_t>(
        vals.size(),
        std::max<std::size_t>(
            1, static_cast<std::size_t>(
                   std::ceil(q * static_cast<double>(vals.size())))));
    const std::uint64_t ref = vals[rank - 1];
    // The estimate is the upper bound of the bucket holding the true order
    // statistic: same bucket, and never below the true value.
    EXPECT_EQ(h.quantile(q),
              Histogram::bucket_hi(Histogram::bucket_index(ref)))
        << "q=" << q;
    EXPECT_GE(h.quantile(q), ref) << "q=" << q;
  }
  const Histogram::Summary s = h.summary();
  EXPECT_EQ(s.count, vals.size());
  EXPECT_EQ(s.p50, h.quantile(0.5));
  EXPECT_EQ(s.p90, h.quantile(0.9));
  EXPECT_EQ(s.p99, h.quantile(0.99));
  EXPECT_LE(s.p50, s.p90);
  EXPECT_LE(s.p90, s.p99);
}

TEST_F(ObsHistTest, ConcurrentRecordingMergesBitIdentical) {
  // 8 threads record disjoint deterministic streams into one histogram; the
  // merged snapshot must equal the serial recording of the same multiset
  // (addition commutes), and TSan must see no races (ctest -L parallel).
  constexpr unsigned kThreads = 8;
  constexpr std::size_t kPerThread = 20000;
  Histogram concurrent, serial;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&concurrent, t] {
      const auto vals = sample_values(kPerThread, 0xBEEF00 + t);
      for (const std::uint64_t v : vals) concurrent.record(v);
    });
  }
  for (std::thread& w : workers) w.join();
  for (unsigned t = 0; t < kThreads; ++t)
    for (const std::uint64_t v : sample_values(kPerThread, 0xBEEF00 + t))
      serial.record(v);

  EXPECT_EQ(concurrent.count(), kThreads * kPerThread);
  EXPECT_EQ(concurrent.count(), serial.count());
  EXPECT_EQ(concurrent.sum(), serial.sum());
  EXPECT_EQ(concurrent.max(), serial.max());
  EXPECT_EQ(concurrent.buckets(), serial.buckets());
}

TEST_F(ObsHistTest, FlightRecorderWraparound) {
  set_flight_enabled(true);
  FlightRecorder& rec = FlightRecorder::instance();
  rec.clear();
  constexpr std::uint64_t kTotal = FlightRecorder::kCapacity + 100;
  for (std::uint64_t i = 0; i < kTotal; ++i)
    flight(FlightKind::gc, "wrap", i, 2 * i, 3 * i);
  EXPECT_EQ(rec.total_recorded(), kTotal);

  const std::vector<FlightEvent> events = rec.snapshot();
  ASSERT_EQ(events.size(), FlightRecorder::kCapacity);
  // Oldest first: the ring keeps exactly the last kCapacity events.
  for (std::size_t i = 0; i < events.size(); ++i) {
    const std::uint64_t ticket = 100 + i;
    EXPECT_EQ(events[i].a, ticket);
    EXPECT_EQ(events[i].b, 2 * ticket);
    EXPECT_EQ(events[i].c, 3 * ticket);
    EXPECT_STREQ(events[i].what, "wrap");
    EXPECT_EQ(events[i].kind, FlightKind::gc);
  }

  const Json dump = flight_dump_json();
  EXPECT_EQ(dump.find("recorded")->as_number(), static_cast<double>(kTotal));
  EXPECT_EQ(dump.find("events")->size(), FlightRecorder::kCapacity);

  // Labels longer than the slot are truncated, never unterminated.
  flight(FlightKind::cache, "a-label-much-longer-than-a-slot-can-hold", 1);
  const std::vector<FlightEvent> more = rec.snapshot();
  EXPECT_LT(std::string(more.back().what).size(), sizeof more.back().what);
}

TEST_F(ObsHistTest, FlightDisabledCostsNothing) {
  FlightRecorder& rec = FlightRecorder::instance();
  rec.clear();
  ASSERT_FALSE(flight_enabled());
  flight(FlightKind::phase, "ignored", 1, 2, 3);
  EXPECT_EQ(rec.total_recorded(), 0u);
  EXPECT_TRUE(rec.snapshot().empty());
}

TEST_F(ObsHistTest, GovernedTripDumpsFlightOnUnwind) {
  // A deterministic node-budget trip in fail mode must unwind out of
  // run_synthesis *and* leave a flight trail ending in a trip event — the
  // post-mortem contract for CLI exit code 5 and the fault-injection sweeps.
  // (The driver force-enables the recorder for governed runs; obs stays off.)
  SynthesisConfig cfg;
  cfg.node_budget = 8;  // far below what 5xp1's engine runs need
  cfg.on_exhaustion = OnExhaustion::fail;
  cfg.verify = VerifyMode::off;
  cfg.threads = 1;
  const auto net = circuits::make_benchmark("5xp1");
  ASSERT_TRUE(net);
  Network mapped;
  EXPECT_THROW(run_synthesis(*net, cfg, mapped), util::ResourceExhausted);

  ASSERT_FALSE(flight_enabled());  // scope restored after the unwind
  const std::vector<FlightEvent> events = FlightRecorder::instance().snapshot();
  ASSERT_FALSE(events.empty());
  bool saw_phase = false;
  for (const FlightEvent& e : events)
    saw_phase = saw_phase || e.kind == FlightKind::phase;
  EXPECT_TRUE(saw_phase);
  EXPECT_EQ(events.back().kind, FlightKind::trip);
  EXPECT_STREQ(events.back().what, util::to_string(util::ResourceKind::bdd_nodes));
}

TEST_F(ObsHistTest, DisabledRunLeavesRegistryEmpty) {
  // The zero-overhead contract: with obs off, an ungoverned synthesis run
  // creates no registry entries (counters, gauges or histograms) and records
  // no flight events.
  ASSERT_FALSE(enabled());
  SynthesisConfig cfg;
  cfg.verify = VerifyMode::off;
  cfg.threads = 1;
  const auto net = circuits::make_benchmark("rd53");
  ASSERT_TRUE(net);
  Network mapped;
  (void)run_synthesis(*net, cfg, mapped);
  EXPECT_TRUE(Registry::instance().counters().empty());
  EXPECT_TRUE(Registry::instance().gauges().empty());
  EXPECT_TRUE(Registry::instance().histograms().empty());
  EXPECT_EQ(FlightRecorder::instance().total_recorded(), 0u);
}

TEST_F(ObsHistTest, WatermarkResetMakesPeaksPerRequest) {
  // The serving-pool fix: a big run's gauge peaks must not leak into the
  // next request's report.
  Gauge& g = Registry::instance().gauge("test.live");
  g.set(1000);
  g.set(10);
  EXPECT_EQ(g.max(), 1000);
  Registry::instance().reset_watermarks();
  EXPECT_EQ(g.max(), 10);  // restarted from the current value
  g.set(40);
  EXPECT_EQ(g.max(), 40);
}

}  // namespace
}  // namespace imodec::obs
