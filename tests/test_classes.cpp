// Tests for local compatibility partitions and the global partition,
// anchored on the paper's Examples 1 and 3 and cross-checked between the
// truth-table and BDD paths.

#include <gtest/gtest.h>

#include <set>

#include "decomp/classes.hpp"
#include "logic/net2bdd.hpp"
#include "paper_fixtures.hpp"
#include "util/rng.hpp"

namespace imodec {
namespace {

using testfix::paper_f1;
using testfix::paper_f2;
using testfix::paper_vp;
using testfix::vx;

std::set<std::uint32_t> class_set(const VertexPartition& p,
                                  std::initializer_list<const char*> verts) {
  std::set<std::uint32_t> ids;
  for (const char* v : verts) ids.insert(p.class_of[vx(v)]);
  return ids;
}

/// All listed vertices share one class, and that class has exactly that size.
void expect_class(const VertexPartition& p,
                  std::initializer_list<const char*> verts) {
  const auto ids = class_set(p, verts);
  ASSERT_EQ(ids.size(), 1u);
  const auto members = p.members()[*ids.begin()];
  EXPECT_EQ(members.size(), verts.size());
}

TEST(LocalClasses, PaperExample1) {
  // Π_f1 = {L1, L2, L3}: L1 = {000,001,010,100}, L2 = {011,101,110},
  // L3 = {111}.
  const VertexPartition p = local_partition_tt(paper_f1(), paper_vp());
  EXPECT_EQ(p.num_classes, 3u);
  expect_class(p, {"000", "001", "010", "100"});
  expect_class(p, {"011", "101", "110"});
  expect_class(p, {"111"});
}

TEST(LocalClasses, PaperExample3F2) {
  // Π_f2: {000}, {001,010,100,110}, {011,101}, {111}.
  const VertexPartition p = local_partition_tt(paper_f2(), paper_vp());
  EXPECT_EQ(p.num_classes, 4u);
  expect_class(p, {"000"});
  expect_class(p, {"001", "010", "100", "110"});
  expect_class(p, {"011", "101"});
  expect_class(p, {"111"});
}

TEST(GlobalPartition, PaperExample3) {
  // Π̂ = {G1..G5}: {000}, {001,010,100}, {110}, {011,101}, {111}; p = 5.
  const auto l1 = local_partition_tt(paper_f1(), paper_vp());
  const auto l2 = local_partition_tt(paper_f2(), paper_vp());
  const VertexPartition g = global_partition({l1, l2});
  EXPECT_EQ(g.num_classes, 5u);
  expect_class(g, {"000"});
  expect_class(g, {"001", "010", "100"});
  expect_class(g, {"110"});
  expect_class(g, {"011", "101"});
  expect_class(g, {"111"});
  // The global partition refines both local partitions (Definition 2).
  EXPECT_TRUE(g.refines(l1));
  EXPECT_TRUE(g.refines(l2));
  EXPECT_FALSE(l1.refines(g));
}

TEST(GlobalPartition, LocalToGlobalMembership) {
  // L1^1 = G1 ∪ G2, L2^1 = G3 ∪ G4, L3^1 = G5 (Example 3).
  const auto l1 = local_partition_tt(paper_f1(), paper_vp());
  const auto l2 = local_partition_tt(paper_f2(), paper_vp());
  const VertexPartition g = global_partition({l1, l2});
  const auto contains = local_to_global(l1, g);
  ASSERT_EQ(contains.size(), 3u);
  // Class ids are first-occurrence ordered, so L1 (contains vertex 000) is
  // local class 0 and G1 (vertex 000) is global class 0, etc.
  EXPECT_EQ(contains[l1.class_of[vx("000")]],
            (std::vector<std::uint32_t>{g.class_of[vx("000")],
                                        g.class_of[vx("001")]}));
  EXPECT_EQ(contains[l1.class_of[vx("111")]],
            (std::vector<std::uint32_t>{g.class_of[vx("111")]}));
}

TEST(GlobalPartition, CodewidthsOfExample3) {
  const auto l1 = local_partition_tt(paper_f1(), paper_vp());
  const auto l2 = local_partition_tt(paper_f2(), paper_vp());
  EXPECT_EQ(codewidth(l1.num_classes), 2u);  // ℓ1 = 3 -> c1 = 2
  EXPECT_EQ(codewidth(l2.num_classes), 2u);  // ℓ2 = 4 -> c2 = 2
  EXPECT_EQ(codewidth(1), 0u);
  EXPECT_EQ(codewidth(2), 1u);
}

TEST(Partitions, RefinesAndProductBasics) {
  // Partition by var0 value vs. partition by (var0, var1) pair on b = 2.
  VertexPartition coarse{2, 2, {0, 1, 0, 1}};
  VertexPartition fine{2, 4, {0, 1, 2, 3}};
  EXPECT_TRUE(fine.refines(coarse));
  EXPECT_FALSE(coarse.refines(fine));
  EXPECT_TRUE(coarse.refines(coarse));

  VertexPartition other{2, 2, {0, 0, 1, 1}};
  const VertexPartition prod = VertexPartition::product({&coarse, &other});
  EXPECT_EQ(prod.num_classes, 4u);
  EXPECT_TRUE(prod.refines(coarse));
  EXPECT_TRUE(prod.refines(other));
}

TEST(Partitions, ProductWithSelfIsIdentity) {
  const auto l1 = local_partition_tt(paper_f1(), paper_vp());
  const VertexPartition prod = VertexPartition::product({&l1, &l1});
  EXPECT_EQ(prod.num_classes, l1.num_classes);
  EXPECT_TRUE(prod.refines(l1));
  EXPECT_TRUE(l1.refines(prod));
}

TEST(LocalClasses, BddPathMatchesTruthTablePath) {
  Rng rng(0xC1A55);
  for (int trial = 0; trial < 20; ++trial) {
    const unsigned n = 5 + trial % 3;
    TruthTable f(n);
    for (std::uint64_t row = 0; row < f.num_rows(); ++row)
      f.set(row, rng.coin());
    VarPartition vp;
    const unsigned b = 2 + trial % 3;
    for (unsigned v = 0; v < n; ++v)
      (v < b ? vp.bound : vp.free_set).push_back(v);

    const VertexPartition tt_part = local_partition_tt(f, vp);

    bdd::Manager mgr(n);
    std::vector<unsigned> vars(n);
    for (unsigned v = 0; v < n; ++v) vars[v] = v;
    const bdd::Bdd fb = table_bdd(mgr, f, vars);
    const VertexPartition bdd_part = local_partition_bdd(fb, vp.bound);

    ASSERT_EQ(bdd_part.num_classes, tt_part.num_classes) << "trial " << trial;
    EXPECT_TRUE(bdd_part.refines(tt_part));
    EXPECT_TRUE(tt_part.refines(bdd_part));
  }
}

TEST(LocalClasses, ConstantAndBsIndependentFunctions) {
  VarPartition vp;
  vp.bound = {0, 1};
  vp.free_set = {2, 3};
  // Constant function: one class.
  EXPECT_EQ(local_partition_tt(TruthTable(4, true), vp).num_classes, 1u);
  // Function of free variables only: one class.
  EXPECT_EQ(local_partition_tt(TruthTable::var(4, 2), vp).num_classes, 1u);
  // Function = bound variable: two classes.
  EXPECT_EQ(local_partition_tt(TruthTable::var(4, 0), vp).num_classes, 2u);
  // Full distinction: 2^b classes when every column is distinct.
  TruthTable mux(4);
  for (std::uint64_t row = 0; row < 16; ++row) {
    const unsigned sel = row & 3;               // bound vertex
    const bool y2 = (row >> 2) & 1, y3 = (row >> 3) & 1;
    const bool vals[4] = {y2, y3, y2 != y3, y2 && y3};
    mux.set(row, vals[sel]);
  }
  EXPECT_EQ(local_partition_tt(mux, vp).num_classes, 4u);
}

TEST(ColumnMultiplicity, MatchesLocalClasses) {
  EXPECT_EQ(column_multiplicity(paper_f1(), paper_vp()), 3u);
  EXPECT_EQ(column_multiplicity(paper_f2(), paper_vp()), 4u);
}

}  // namespace
}  // namespace imodec
