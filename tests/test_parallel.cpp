// Tests for the parallel synthesis runtime: the work-stealing thread pool
// itself, and the determinism contract — the pipeline's results are
// bit-identical at every thread count.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "circuits/generators.hpp"
#include "circuits/registry.hpp"
#include "decomp/varpart.hpp"
#include "logic/simulate.hpp"
#include "map/config.hpp"
#include "map/driver.hpp"
#include "map/lutflow.hpp"
#include "map/session.hpp"
#include "paper_fixtures.hpp"
#include "util/resource.hpp"
#include "util/thread_pool.hpp"

namespace imodec {
namespace {

using util::ThreadPool;

// ---------------------------------------------------------------------------
// Thread pool unit tests
// ---------------------------------------------------------------------------

TEST(ThreadPool, ParallelForVisitsEveryIndexOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  constexpr std::size_t n = 10000;
  std::vector<int> hits(n, 0);
  pool.parallel_for(n, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i], 1) << "index " << i;
}

TEST(ThreadPool, ParallelForByIndexMatchesSerial) {
  ThreadPool pool(8);
  constexpr std::size_t n = 512;
  std::vector<std::uint64_t> par(n), ser(n);
  const auto work = [](std::size_t i) {
    std::uint64_t h = i * 2654435761u;
    for (int r = 0; r < 50; ++r) h = h * 6364136223846793005ull + 1;
    return h;
  };
  pool.parallel_for(n, [&](std::size_t i) { par[i] = work(i); });
  for (std::size_t i = 0; i < n; ++i) ser[i] = work(i);
  EXPECT_EQ(par, ser);
}

TEST(ThreadPool, ParallelForHandlesEmptyAndSingle) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, WidthOneRunsInlineWithoutWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<int> hits(100, 0);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
  auto fut = pool.submit([] {});
  fut.get();  // inline execution still satisfies the future
}

TEST(ThreadPool, SubmitRunsTasks) {
  ThreadPool pool(3);
  std::atomic<int> sum{0};
  std::vector<std::future<void>> futs;
  for (int i = 1; i <= 10; ++i)
    futs.push_back(pool.submit([&sum, i] { sum += i; }));
  for (auto& f : futs) f.get();
  EXPECT_EQ(sum.load(), 55);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 37)
                                     throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool survives a failed loop and keeps working.
  std::atomic<int> ok{0};
  pool.parallel_for(16, [&](std::size_t) { ++ok; });
  EXPECT_EQ(ok.load(), 16);
}

TEST(ThreadPool, SubmitFutureCarriesException) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { throw std::logic_error("bad task"); });
  EXPECT_THROW(fut.get(), std::logic_error);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  constexpr std::size_t outer = 16, inner = 64;
  std::vector<std::atomic<int>> hits(outer * inner);
  pool.parallel_for(outer, [&](std::size_t o) {
    // From a worker thread this must not deadlock waiting on the same pool.
    pool.parallel_for(inner, [&](std::size_t i) { ++hits[o * inner + i]; });
  });
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPool, CancellationStopsParallelForPromptly) {
  // One guard shared by every worker (the governed-flow pattern,
  // DESIGN.md §12): the first iteration to cancel latches the token; every
  // other chunk's next checkpoint throws, and parallel_for's failure path
  // stops un-started chunks from being claimed at all.
  ThreadPool pool(4);
  util::ResourceGuard guard;
  constexpr std::size_t n = 100000;
  std::atomic<std::size_t> executed{0};
  try {
    pool.parallel_for(n, [&](std::size_t i) {
      guard.checkpoint();
      if (i == 5) guard.cancel();
      ++executed;
    });
    FAIL() << "cancelled parallel_for must rethrow";
  } catch (const util::ResourceExhausted& e) {
    EXPECT_EQ(e.kind(), util::ResourceKind::cancelled);
  }
  EXPECT_LT(executed.load(), n);
  // The guard is spent but the pool is not: later loops run normally.
  std::atomic<int> ok{0};
  pool.parallel_for(16, [&](std::size_t) { ++ok; });
  EXPECT_EQ(ok.load(), 16);
}

TEST(ThreadPool, ExceptionThrownOnCallerThreadPropagates) {
  // The caller participates in parallel_for; an exception on the caller's
  // own chunk must take the same rethrow path as a worker's. Workers park on
  // their first item until the caller has thrown: on a 1-core scheduler the
  // workers can otherwise claim every chunk before the caller claims one,
  // and the caller never throws at all (the flake this gate removes). Each
  // parked worker pins exactly one chunk, and 10000 items split into far
  // more chunks than there are workers, so a chunk is always left for the
  // caller.
  ThreadPool pool(4);
  std::mutex mu;
  std::condition_variable cv;
  bool caller_threw = false;
  try {
    pool.parallel_for(10000, [&](std::size_t) {
      if (ThreadPool::on_worker_thread()) {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return caller_threw; });
        return;
      }
      {
        std::lock_guard<std::mutex> lock(mu);
        caller_threw = true;
      }
      cv.notify_all();
      throw std::runtime_error("caller boom");
    });
    FAIL() << "caller exception must propagate";
  } catch (const std::runtime_error&) {
  }
  EXPECT_TRUE(caller_threw);
}

TEST(ThreadPool, ExceptionThrownOnWorkerThreadPropagates) {
  // Make each item slow enough that the workers demonstrably join in, then
  // throw from a worker chunk only; the caller must still see the exception.
  ThreadPool pool(4);
  bool worker_threw = false;
  for (int attempt = 0; attempt < 5 && !worker_threw; ++attempt) {
    try {
      pool.parallel_for(4000, [&](std::size_t) {
        if (ThreadPool::on_worker_thread())
          throw std::runtime_error("worker boom");
        std::this_thread::sleep_for(std::chrono::microseconds(20));
      });
    } catch (const std::runtime_error&) {
      worker_threw = true;
    }
  }
  EXPECT_TRUE(worker_threw);
}

TEST(ThreadPool, DestructionDrainsQueuedWork) {
  // The destructor must complete every already-submitted task (workers exit
  // only once the queues are empty), never drop or deadlock on them.
  std::atomic<int> done{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&done] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        ++done;
      });
    }
    // Futures discarded; destruction races the queue drain on purpose.
  }
  EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPool, DestructionWithFailingQueuedTasks) {
  // Queued tasks that throw after the destructor has begun must be absorbed
  // by their packaged futures, not terminate the process.
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.submit([&ran] {
        ++ran;
        throw std::runtime_error("late failure");
      });
    }
  }
  EXPECT_EQ(ran.load(), 32);
}

// ---------------------------------------------------------------------------
// Determinism: identical results at every thread count
// ---------------------------------------------------------------------------

void expect_same_network(const Network& a, const Network& b) {
  ASSERT_EQ(a.node_count(), b.node_count());
  for (SigId s = 0; s < a.node_count(); ++s) {
    ASSERT_EQ(a.node(s).kind, b.node(s).kind) << "node " << s;
    ASSERT_EQ(a.node(s).fanins, b.node(s).fanins) << "node " << s;
    if (a.node(s).kind == Network::Kind::Logic) {
      ASSERT_EQ(a.node(s).func, b.node(s).func) << "node " << s;
    }
  }
  ASSERT_EQ(a.outputs(), b.outputs());
}

void expect_thread_count_invariant(const Network& input,
                                   SynthesisConfig base = {}) {
  base.threads = 1;
  Network ref;
  const DriverReport ref_rep = run_synthesis(input, base, ref);
  EXPECT_TRUE(ref_rep.verified);
  EXPECT_GT(ref_rep.flow.luts, 0u);

  for (unsigned threads : {2u, 8u}) {
    SynthesisConfig opts = base;
    opts.threads = threads;
    Network mapped;
    const DriverReport rep = run_synthesis(input, opts, mapped);
    EXPECT_TRUE(rep.verified) << threads << " threads";
    EXPECT_EQ(rep.flow.luts, ref_rep.flow.luts) << threads << " threads";
    EXPECT_EQ(rep.clbs.clbs, ref_rep.clbs.clbs) << threads << " threads";
    EXPECT_EQ(rep.flow.vectors, ref_rep.flow.vectors) << threads << " threads";
    EXPECT_EQ(rep.flow.max_m, ref_rep.flow.max_m) << threads << " threads";
    EXPECT_EQ(rep.flow.max_p, ref_rep.flow.max_p) << threads << " threads";
    expect_same_network(ref, mapped);
  }
}

TEST(ParallelDeterminism, Fig1CircuitIdenticalAtAllThreadCounts) {
  // rd53 with k = 4 is the paper's Fig. 1 circuit.
  SynthesisConfig opts;
  opts.k = 4;
  expect_thread_count_invariant(circuits::make_rd(5, 3), opts);
}

TEST(ParallelDeterminism, PaperExampleIdenticalAtAllThreadCounts) {
  // The running example of the paper: f1 and f2 of Fig. 2 as one network.
  Network net("paper_example");
  std::vector<SigId> ins;
  for (const char* n : {"x1", "x2", "x3", "y1", "y2"})
    ins.push_back(net.add_input(n));
  net.add_output(net.add_node(ins, testfix::paper_f1()), "f1");
  net.add_output(net.add_node(ins, testfix::paper_f2()), "f2");
  expect_thread_count_invariant(net);
}

TEST(ParallelDeterminism, BenchmarkCircuitIdenticalAtAllThreadCounts) {
  const auto net = circuits::make_benchmark("rd73");
  ASSERT_TRUE(net.has_value());
  expect_thread_count_invariant(*net);
}

TEST(ParallelDeterminism, ChooseBoundSetMatchesSerial) {
  const std::vector<TruthTable> fs{testfix::paper_f1(), testfix::paper_f2()};
  VarPartOptions opts;
  opts.bound_size = 3;
  const auto serial = choose_bound_set(fs, 5, opts);
  ASSERT_TRUE(serial.has_value());

  ThreadPool pool(4);
  opts.pool = &pool;
  const auto parallel = choose_bound_set(fs, 5, opts);
  ASSERT_TRUE(parallel.has_value());
  EXPECT_EQ(parallel->vp.bound, serial->vp.bound);
  EXPECT_EQ(parallel->vp.free_set, serial->vp.free_set);
  EXPECT_EQ(parallel->p(), serial->p());
}

// ---------------------------------------------------------------------------
// SynthesisConfig / SynthesisSession
// ---------------------------------------------------------------------------

TEST(SynthesisConfig, DefaultIsValid) {
  EXPECT_TRUE(SynthesisConfig{}.validate().empty());
}

TEST(SynthesisConfig, ReportsEveryViolationReadably) {
  SynthesisConfig cfg;
  cfg.k = 1;
  cfg.bound_size = 0;
  cfg.max_p = 0;
  const auto diags = cfg.validate();
  ASSERT_EQ(diags.size(), 3u);
  EXPECT_NE(diags[0].find("k must be in [2, 16]"), std::string::npos);
  EXPECT_NE(diags[0].find("got 1"), std::string::npos);
}

TEST(SynthesisConfig, CrossFieldChecks) {
  SynthesisConfig cfg;
  cfg.bound_size = cfg.k + 1;  // d-node wider than one LUT
  EXPECT_EQ(cfg.validate().size(), 1u);
  cfg = SynthesisConfig{};
  cfg.max_vector_inputs = cfg.k - 1;  // vector narrower than one LUT
  EXPECT_EQ(cfg.validate().size(), 1u);
}

TEST(SynthesisConfig, LowersEveryKnob) {
  SynthesisConfig cfg;
  cfg.k = 4;
  cfg.max_p = 16;
  cfg.bound_size = 3;
  cfg.threads = 2;
  cfg.batch_groups = 3;
  cfg.seed = 42;
  const FlowOptions flow = cfg.flow_options();
  EXPECT_EQ(flow.k, 4u);
  EXPECT_EQ(flow.imodec.max_p, 16u);
  EXPECT_EQ(flow.varpart.bound_size, 3u);
  EXPECT_EQ(flow.varpart.seed, 42u);
  EXPECT_EQ(flow.batch_groups, 3u);
}

TEST(SynthesisSession, RunsRepeatedlyOnOnePool) {
  SynthesisConfig cfg;
  cfg.threads = 2;
  SynthesisSession session(cfg);
  EXPECT_EQ(session.threads(), 2u);
  ASSERT_NE(session.pool(), nullptr);

  const auto net = circuits::make_benchmark("rd53");
  ASSERT_TRUE(net.has_value());
  Network first, second;
  const DriverReport r1 = session.run(*net, first);
  const DriverReport r2 = session.run(*net, second);
  EXPECT_TRUE(r1.verified);
  EXPECT_TRUE(r2.verified);
  EXPECT_EQ(r1.flow.luts, r2.flow.luts);
  expect_same_network(first, second);
}

TEST(SynthesisSession, SerialConfigHasNoPool) {
  SynthesisConfig cfg;
  cfg.threads = 1;
  SynthesisSession session(cfg);
  EXPECT_EQ(session.threads(), 1u);
  EXPECT_EQ(session.pool(), nullptr);

  const auto net = circuits::make_benchmark("rd53");
  Network mapped;
  EXPECT_TRUE(session.run(*net, mapped).verified);
}

// ---------------------------------------------------------------------------
// Typed decomposition errors
// ---------------------------------------------------------------------------

TEST(DecomposeResult, ReportsPOverflow) {
  const std::vector<TruthTable> fs{testfix::paper_f1(), testfix::paper_f2()};
  ImodecOptions opts;
  opts.max_p = 4;  // p is 5
  ImodecStats stats;
  const auto res =
      decompose_multi_output(fs, testfix::paper_vp(), opts, &stats);
  ASSERT_FALSE(res.has_value());
  EXPECT_EQ(res.error(), DecomposeError::p_overflow);
  EXPECT_EQ(stats.p, 5u);  // stats still filled on failure
  EXPECT_EQ(to_string(res.error()), "p_overflow");
}

TEST(DecomposeResult, FlowCountsErrorReasons) {
  // max_p = 1 rejects essentially every group, forcing the flow through its
  // fallback ladder; the result must still be correct.
  const auto collapsed = collapse_network(circuits::make_rd(7, 3));
  ASSERT_TRUE(collapsed.has_value());
  FlowOptions opts;
  opts.imodec.max_p = 1;
  const FlowResult r = decompose_to_luts(*collapsed, opts);
  EXPECT_TRUE(check_equivalence(*collapsed, r.network).equivalent);
  EXPECT_GT(r.stats.total_errors(), 0u);
  EXPECT_GT(r.stats.error_count(DecomposeError::p_overflow), 0u);
}

}  // namespace
}  // namespace imodec
