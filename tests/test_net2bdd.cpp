// Tests for the network -> BDD bridge (table_bdd / signal_bdd), including
// behaviour under reordered managers.

#include <gtest/gtest.h>

#include "circuits/gates.hpp"
#include "logic/net2bdd.hpp"
#include "util/rng.hpp"

namespace imodec {
namespace {

using bdd::Bdd;
using bdd::Manager;

TEST(TableBdd, MatchesTableOnAllRows) {
  Rng rng(606);
  Manager mgr(6);
  TruthTable t(4);
  for (std::uint64_t r = 0; r < 16; ++r) t.set(r, rng.coin());
  // Map table variables to scattered BDD variables.
  const std::vector<unsigned> vars{5, 0, 3, 2};
  const Bdd f = table_bdd(mgr, t, vars);
  std::vector<bool> a(6, false);
  for (std::uint64_t r = 0; r < 16; ++r) {
    for (unsigned i = 0; i < 4; ++i) a[vars[i]] = (r >> i) & 1;
    EXPECT_EQ(f.eval(a), t.eval(r)) << r;
  }
}

TEST(TableBdd, ConstantTables) {
  Manager mgr(3);
  EXPECT_TRUE(table_bdd(mgr, TruthTable(2), {0, 1}).is_zero());
  EXPECT_TRUE(table_bdd(mgr, TruthTable(2, true), {0, 1}).is_one());
}

TEST(TableBdd, WorksUnderReorderedManager) {
  Manager mgr(4);
  mgr.set_order({3, 1, 0, 2});
  const TruthTable t = TruthTable::var(3, 0) ^ TruthTable::var(3, 2);
  const Bdd f = table_bdd(mgr, t, {0, 2, 3});
  std::vector<bool> a(4, false);
  for (std::uint64_t r = 0; r < 8; ++r) {
    a[0] = r & 1;
    a[2] = (r >> 1) & 1;
    a[3] = (r >> 2) & 1;
    EXPECT_EQ(f.eval(a), t.eval(r)) << r;
  }
  EXPECT_TRUE(mgr.check_invariants());
}

TEST(SignalBdd, ConeWithSharing) {
  Network net("t");
  const SigId a = net.add_input("a");
  const SigId b = net.add_input("b");
  const SigId c = net.add_input("c");
  const SigId x = circuits::gate_xor(net, a, b);
  const SigId y0 = circuits::gate_and(net, x, c);
  const SigId y1 = circuits::gate_or(net, x, c);
  net.add_output(y0, "y0");
  net.add_output(y1, "y1");

  Manager mgr(3);
  PiVarMap pi_var{{a, 0}, {b, 1}, {c, 2}};
  std::unordered_map<SigId, Bdd> cache;
  const Bdd f0 = signal_bdd(mgr, net, y0, pi_var, cache);
  const Bdd f1 = signal_bdd(mgr, net, y1, pi_var, cache);
  // Shared node x must be cached.
  EXPECT_TRUE(cache.count(x));

  const Bdd av = Bdd::var(mgr, 0), bv = Bdd::var(mgr, 1), cv = Bdd::var(mgr, 2);
  EXPECT_EQ(f0, (av ^ bv) & cv);
  EXPECT_EQ(f1, (av ^ bv) | cv);
}

TEST(SignalBdd, ConstantsAndInputs) {
  Network net("t");
  const SigId a = net.add_input("a");
  const SigId one = net.add_constant(true);
  net.add_output(a, "ya");
  net.add_output(one, "yc");

  Manager mgr(1);
  PiVarMap pi_var{{a, 0}};
  std::unordered_map<SigId, Bdd> cache;
  EXPECT_EQ(signal_bdd(mgr, net, a, pi_var, cache), Bdd::var(mgr, 0));
  EXPECT_TRUE(signal_bdd(mgr, net, one, pi_var, cache).is_one());
}

TEST(SignalBdd, AgreesWithConeFunction) {
  const unsigned n = 6;
  Network net("t");
  std::vector<SigId> pis;
  for (unsigned i = 0; i < n; ++i)
    pis.push_back(net.add_input("x" + std::to_string(i)));
  Rng rng(17);
  std::vector<SigId> pool = pis;
  for (int g = 0; g < 12; ++g) {
    const SigId x = pool[rng.below(pool.size())];
    const SigId y = pool[rng.below(pool.size())];
    switch (rng.below(3)) {
      case 0: pool.push_back(circuits::gate_and(net, x, y)); break;
      case 1: pool.push_back(circuits::gate_or(net, x, y)); break;
      default: pool.push_back(circuits::gate_xor(net, x, y)); break;
    }
  }
  net.add_output(pool.back(), "y");

  Manager mgr(n);
  PiVarMap pi_var;
  for (unsigned i = 0; i < n; ++i) pi_var[pis[i]] = i;
  std::unordered_map<SigId, Bdd> cache;
  const Bdd f = signal_bdd(mgr, net, pool.back(), pi_var, cache);

  const auto tt = net.cone_function(pool.back(), pis);
  ASSERT_TRUE(tt.has_value());
  std::vector<bool> a(n, false);
  for (std::uint64_t r = 0; r < (1u << n); ++r) {
    for (unsigned i = 0; i < n; ++i) a[i] = (r >> i) & 1;
    EXPECT_EQ(f.eval(a), tt->eval(r)) << r;
  }
}

}  // namespace
}  // namespace imodec
