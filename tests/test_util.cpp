// Unit tests for the utility layer: BitVec, BigFloat, Rng, combinatorics,
// string helpers.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/bigfloat.hpp"
#include "util/bitvec.hpp"
#include "util/combinatorics.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace imodec {
namespace {

TEST(BitVec, BasicSetGet) {
  BitVec v(130);
  EXPECT_EQ(v.size(), 130u);
  EXPECT_TRUE(v.none());
  v.set(0, true);
  v.set(64, true);
  v.set(129, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(129));
  EXPECT_FALSE(v.get(1));
  EXPECT_EQ(v.count(), 3u);
  EXPECT_EQ(v.first_set(), 0u);
  v.set(0, false);
  EXPECT_EQ(v.first_set(), 64u);
}

TEST(BitVec, FillAndComplementNormalizeTail) {
  BitVec v(70, true);
  EXPECT_EQ(v.count(), 70u);
  EXPECT_TRUE(v.all());
  v.complement();
  EXPECT_TRUE(v.none());
  v.complement();
  EXPECT_EQ(v.count(), 70u);  // tail bits must not leak into count
}

TEST(BitVec, BitwiseOps) {
  BitVec a(100), b(100);
  for (std::size_t i = 0; i < 100; i += 2) a.set(i, true);
  for (std::size_t i = 0; i < 100; i += 3) b.set(i, true);
  const BitVec both = a & b;
  for (std::size_t i = 0; i < 100; ++i)
    EXPECT_EQ(both.get(i), i % 6 == 0) << i;
  const BitVec any = a | b;
  for (std::size_t i = 0; i < 100; ++i)
    EXPECT_EQ(any.get(i), i % 2 == 0 || i % 3 == 0) << i;
  const BitVec diff = a ^ b;
  for (std::size_t i = 0; i < 100; ++i)
    EXPECT_EQ(diff.get(i), (i % 2 == 0) != (i % 3 == 0)) << i;
}

TEST(BitVec, SubsetAndDisjoint) {
  BitVec a(64), b(64);
  a.set(3, true);
  a.set(40, true);
  b.set(3, true);
  b.set(40, true);
  b.set(41, true);
  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
  BitVec c(64);
  c.set(5, true);
  EXPECT_TRUE(a.disjoint_with(c));
  EXPECT_FALSE(a.disjoint_with(b));
}

TEST(BitVec, HashDiscriminates) {
  BitVec a(64), b(64);
  a.set(1, true);
  b.set(2, true);
  EXPECT_NE(a.hash(), b.hash());
  BitVec a2(64);
  a2.set(1, true);
  EXPECT_EQ(a.hash(), a2.hash());
}

TEST(BitVec, Resize) {
  BitVec v(10, true);
  v.resize(100);
  EXPECT_EQ(v.count(), 10u);
  v.resize(5);
  EXPECT_EQ(v.count(), 5u);
}

TEST(BigFloat, SmallValuesRoundTrip) {
  EXPECT_DOUBLE_EQ(BigFloat{0.0}.to_double(), 0.0);
  EXPECT_DOUBLE_EQ(BigFloat{1.0}.to_double(), 1.0);
  EXPECT_DOUBLE_EQ(BigFloat{12345.0}.to_double(), 12345.0);
  EXPECT_DOUBLE_EQ(BigFloat{0.5}.to_double(), 0.5);
}

TEST(BigFloat, AddMul) {
  BigFloat a{3.0}, b{4.0};
  EXPECT_DOUBLE_EQ((a + b).to_double(), 7.0);
  EXPECT_DOUBLE_EQ((a * b).to_double(), 12.0);
  EXPECT_DOUBLE_EQ((a + BigFloat{}).to_double(), 3.0);
  EXPECT_TRUE((a * BigFloat{}).is_zero());
}

TEST(BigFloat, HugeMagnitudes) {
  // 2^(2^8) = 2^256 ~ 1.16e77, the alu4 assignable bound of Table 1.
  const BigFloat huge = BigFloat::from_pow2(256);
  EXPECT_NEAR(huge.log10(), 256 * std::log10(2.0), 1e-9);
  EXPECT_EQ(huge.to_string(2), "1.2e+77");
  // Beyond double range.
  const BigFloat enormous = BigFloat::from_pow2(5000);
  EXPECT_TRUE(std::isinf(enormous.to_double()));
  EXPECT_NEAR(enormous.log10(), 5000 * std::log10(2.0), 1e-6);
}

TEST(BigFloat, AdditionAcrossScales) {
  BigFloat big = BigFloat::from_pow2(100);
  const BigFloat tiny{1.0};
  const BigFloat sum = big + tiny;  // tiny vanishes at this scale
  EXPECT_EQ(sum.compare(big), 0);
  BigFloat acc;
  for (int i = 0; i < 1000; ++i) acc += BigFloat{1.0};
  EXPECT_DOUBLE_EQ(acc.to_double(), 1000.0);
}

TEST(BigFloat, Compare) {
  EXPECT_LT(BigFloat{3.0}, BigFloat{4.0});
  EXPECT_LT(BigFloat{}, BigFloat{1e-10});
  EXPECT_LT(BigFloat::from_pow2(100), BigFloat::from_pow2(101));
  EXPECT_EQ(BigFloat{8.0}.compare(BigFloat::from_pow2(3)), 0);
}

TEST(BigFloat, ToStringIntegerAndScientific) {
  EXPECT_EQ(BigFloat{2.0}.to_string(), "2");
  EXPECT_EQ(BigFloat{30.0}.to_string(), "30");
  EXPECT_EQ(BigFloat{4.3e9}.to_string(2), "4.3e+9");
  EXPECT_EQ(BigFloat{1.3e7}.to_string(2), "1.3e+7");
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool differs = false;
  for (int i = 0; i < 10; ++i) differs |= (a.next() != b.next());
  EXPECT_TRUE(differs);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.below(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit over 1000 draws
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    const auto v = rng.range(5, 7);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 7u);
  }
}

TEST(Rng, BelowBoundsOverManyDrawsAndBounds) {
  // 10k draws per bound, including bounds near the rejection-sampling edge
  // cases (1, powers of two, a bound above 2^63).
  const std::uint64_t bounds[] = {1, 2, 3, 10, 1000, std::uint64_t{1} << 32,
                                  (std::uint64_t{1} << 63) + 12345};
  for (const std::uint64_t b : bounds) {
    Rng rng(0xB0D5 + b);
    for (int i = 0; i < 10000; ++i) ASSERT_LT(rng.below(b), b);
  }
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeBoundsOverManyDraws) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.range(17, 42);
    ASSERT_GE(v, 17u);
    ASSERT_LE(v, 42u);
  }
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.range(9, 9), 9u);
}

TEST(Rng, ChanceFrequencySanity) {
  // chance(1,4) over 10k draws: expected 2500, sd = sqrt(10000*1/4*3/4) ~ 43,
  // so [2250, 2750] is a > 5-sigma window — effectively never flaky while
  // still catching an off-by-phase or inverted comparison.
  Rng rng(0xC0FFEE);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(1, 4) ? 1 : 0;
  EXPECT_GE(hits, 2250);
  EXPECT_LE(hits, 2750);
  // Degenerate probabilities are exact, not statistical.
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0, 7));
    EXPECT_TRUE(rng.chance(7, 7));
  }
}

TEST(Rng, IdenticalSeedIdenticalStreamAcrossMixedCalls) {
  // The generator contract is a reproducible stream for every drawing
  // method, not just next(): interleave them all.
  Rng a(0xDEADBEEF), b(0xDEADBEEF);
  for (int i = 0; i < 10000; ++i) {
    switch (i % 4) {
      case 0: ASSERT_EQ(a.next(), b.next()); break;
      case 1: ASSERT_EQ(a.below(97), b.below(97)); break;
      case 2: ASSERT_EQ(a.range(5, 500), b.range(5, 500)); break;
      default: ASSERT_EQ(a.chance(3, 8), b.chance(3, 8)); break;
    }
  }
}

TEST(Combinatorics, Binomials) {
  EXPECT_DOUBLE_EQ(big_binomial(5, 2).to_double(), 10.0);
  EXPECT_DOUBLE_EQ(big_binomial(10, 0).to_double(), 1.0);
  EXPECT_DOUBLE_EQ(big_binomial(10, 10).to_double(), 1.0);
  EXPECT_TRUE(big_binomial(3, 5).is_zero());
  EXPECT_NEAR(big_binomial(100, 50).log10(), std::log10(1.0089134e29), 1e-6);
}

TEST(Combinatorics, MixedLabelings) {
  EXPECT_TRUE(big_mixed_labelings(1).is_zero());
  EXPECT_DOUBLE_EQ(big_mixed_labelings(2).to_double(), 2.0);
  EXPECT_DOUBLE_EQ(big_mixed_labelings(4).to_double(), 14.0);
  EXPECT_NEAR(big_mixed_labelings(100).log10(), 100 * std::log10(2.0), 1e-9);
}

TEST(Combinatorics, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(4), 2);
  EXPECT_EQ(ceil_log2(5), 3);
  EXPECT_EQ(ceil_log2(1u << 20), 20);
  EXPECT_EQ(ceil_log2((1u << 20) + 1), 21);
}

TEST(Strings, Split) {
  const auto t = split("  a b\tcc   ");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0], "a");
  EXPECT_EQ(t[1], "b");
  EXPECT_EQ(t[2], "cc");
  EXPECT_TRUE(split("").empty());
  EXPECT_TRUE(split(" \t ").empty());
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim(" \r\n"), "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with(".names a b", ".names"));
  EXPECT_FALSE(starts_with(".name", ".names"));
}

TEST(Strings, Strprintf) {
  EXPECT_EQ(strprintf("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(strprintf("%5.1f", 3.25), "  3.2");
}

}  // namespace
}  // namespace imodec
