// Tests for the algebraic SOP layer: weak division, cube-freeness, kernel
// enumeration, and the network-level kernel extraction.

#include <gtest/gtest.h>

#include "circuits/gates.hpp"
#include "circuits/registry.hpp"
#include "logic/simulate.hpp"
#include "opt/algebra.hpp"
#include "opt/extract.hpp"

namespace imodec {
namespace {

using opt::ACover;
using opt::ACube;
using opt::Literal;

ACube cube(std::initializer_list<Literal> lits) {
  ACube c;
  c.lits.assign(lits);
  std::sort(c.lits.begin(), c.lits.end());
  return c;
}

// Signals are plain numbers in these unit tests.
constexpr SigId A = 10, B = 11, C = 12, D = 13, E = 14;

TEST(ACubeOps, DivisibilityAndQuotient) {
  const ACube abc = cube({{A, true}, {B, true}, {C, true}});
  const ACube ab = cube({{A, true}, {B, true}});
  EXPECT_TRUE(abc.divisible_by(ab));
  EXPECT_FALSE(ab.divisible_by(abc));
  EXPECT_EQ(abc.divide(ab), cube({{C, true}}));
  // Phases matter: a~b does not divide ab c.
  const ACube anb = cube({{A, true}, {B, false}});
  EXPECT_FALSE(abc.divisible_by(anb));
}

TEST(ACubeOps, MergeDetectsPhaseClash) {
  const ACube a = cube({{A, true}});
  const ACube na = cube({{A, false}});
  EXPECT_FALSE(a.merge(na).has_value());
  const auto m = a.merge(cube({{B, true}}));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m, cube({{A, true}, {B, true}}));
}

TEST(Division, TextbookExample) {
  // F = ad + bd + cd + e ; D = a + b + c  =>  Q = d, R = e.
  ACover f;
  for (SigId s : {A, B, C})
    f.add(cube({{s, true}, {D, true}}));
  f.add(cube({{E, true}}));
  ACover d;
  for (SigId s : {A, B, C}) d.add(cube({{s, true}}));

  const auto [q, r] = divide(f, d);
  ASSERT_EQ(q.cubes.size(), 1u);
  EXPECT_EQ(q.cubes[0], cube({{D, true}}));
  ASSERT_EQ(r.cubes.size(), 1u);
  EXPECT_EQ(r.cubes[0], cube({{E, true}}));
}

TEST(Division, AlgebraicIdentityHolds) {
  // Arbitrary divide: f == q*d + r as functions.
  ACover f;
  f.add(cube({{A, true}, {B, true}}));
  f.add(cube({{A, true}, {C, true}}));
  f.add(cube({{B, true}, {C, false}}));
  ACover d;
  d.add(cube({{B, true}}));
  d.add(cube({{C, true}}));
  const auto [q, r] = divide(f, d);

  const std::vector<SigId> sigs{A, B, C};
  const TruthTable ft = opt::cover_table(f, sigs);
  ACover qd;
  for (const ACube& qc : q.cubes)
    for (const ACube& dc : d.cubes)
      if (auto m = qc.merge(dc)) qd.add(std::move(*m));
  for (const ACube& rc : r.cubes) qd.add(rc);
  EXPECT_EQ(opt::cover_table(qd, sigs), ft);
}

TEST(Division, EmptyQuotientWhenNothingDivides) {
  ACover f;
  f.add(cube({{A, true}}));
  ACover d;
  d.add(cube({{B, true}}));
  const auto [q, r] = divide(f, d);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(r.cubes.size(), 1u);
}

TEST(CubeFree, Detection) {
  ACover f;
  f.add(cube({{A, true}, {B, true}}));
  f.add(cube({{A, true}, {C, true}}));
  EXPECT_FALSE(opt::is_cube_free(f));  // a divides everything
  EXPECT_EQ(opt::largest_common_cube(f), cube({{A, true}}));

  ACover g;
  g.add(cube({{A, true}}));
  g.add(cube({{B, true}}));
  EXPECT_TRUE(opt::is_cube_free(g));
}

TEST(Kernels, TextbookKernels) {
  // F = adf + aef + bdf + bef + cdf + cef + g
  //   = f(a+b+c)(d+e) + g. Kernels include (a+b+c), (d+e), and F itself.
  ACover f;
  for (SigId x : {A, B, C})
    for (SigId y : {D, E})
      f.add(cube({{x, true}, {y, true}, {15, true}}));  // 15 = 'f'
  f.add(cube({{16, true}}));                            // 16 = 'g'

  const auto ks = opt::kernels(f);
  const auto contains_kernel = [&](const ACover& want) {
    const ACover w = opt::normalized(want);
    for (const auto& ke : ks)
      if (ke.kernel == w) return true;
    return false;
  };
  ACover abc;
  for (SigId x : {A, B, C}) abc.add(cube({{x, true}}));
  ACover de;
  for (SigId y : {D, E}) de.add(cube({{y, true}}));
  EXPECT_TRUE(contains_kernel(abc));
  EXPECT_TRUE(contains_kernel(de));
  EXPECT_TRUE(opt::is_cube_free(f));
  EXPECT_TRUE(contains_kernel(f));
}

TEST(Kernels, AllKernelsAreCubeFreeDivisors) {
  ACover f;
  f.add(cube({{A, true}, {B, true}}));
  f.add(cube({{A, true}, {C, true}, {D, true}}));
  f.add(cube({{B, true}, {C, true}}));
  const std::vector<SigId> sigs{A, B, C, D};
  const TruthTable ft = opt::cover_table(f, sigs);
  for (const auto& ke : opt::kernels(f)) {
    EXPECT_TRUE(opt::is_cube_free(ke.kernel));
    // Dividing by the kernel yields a non-empty quotient.
    const auto [q, r] = divide(f, ke.kernel);
    EXPECT_FALSE(q.empty());
  }
  (void)ft;
}

TEST(NodeCover, RoundTripsThroughCoverTable) {
  Network net("t");
  const SigId a = net.add_input("a");
  const SigId b = net.add_input("b");
  const SigId c = net.add_input("c");
  const SigId y = circuits::gate_or(
      net, circuits::gate_and(net, a, b), circuits::gate_and(net, a, c));
  net.add_output(y, "y");
  const auto cover = opt::node_cover(net, y);
  ASSERT_TRUE(cover.has_value());
  // y's fanins are the two AND nodes.
  const TruthTable t =
      opt::cover_table(*cover, net.node(y).fanins);
  EXPECT_EQ(t, net.node(y).func);
}

TEST(Extract, SharedKernelBecomesOneNode) {
  // y0 = a(b + c), y1 = d(b + c): the kernel (b + c) is shared.
  Network net("t");
  const SigId a = net.add_input("a");
  const SigId b = net.add_input("b");
  const SigId c = net.add_input("c");
  const SigId d = net.add_input("d");
  TruthTable t0(3), t1(3);
  for (std::uint64_t r = 0; r < 8; ++r) {
    const bool x = r & 1, y = (r >> 1) & 1, z = (r >> 2) & 1;
    t0.set(r, x && (y || z));
    t1.set(r, x && (y || z));
  }
  net.add_output(net.add_node({a, b, c}, t0), "y0");
  net.add_output(net.add_node({d, b, c}, t1), "y1");
  const Network before = net;

  const auto stats = opt::extract_kernels(net);
  EXPECT_GE(stats.divisors_added, 1u);
  EXPECT_GE(stats.substitutions, 2u);
  EXPECT_GT(stats.literals_saved, 0);
  EXPECT_TRUE(check_equivalence(before, net).equivalent);
}

TEST(Extract, BenchmarksStayEquivalent) {
  for (const char* name : {"rd73", "z4ml", "misex1", "count"}) {
    Network net = *circuits::make_benchmark(name);
    const Network before = net;
    opt::extract_kernels(net);
    EXPECT_TRUE(check_equivalence(before, net).equivalent) << name;
  }
}

TEST(Extract, NoKernelsNoChanges) {
  // Single AND gate: nothing multi-cube to extract.
  Network net("t");
  const SigId a = net.add_input("a");
  const SigId b = net.add_input("b");
  net.add_output(circuits::gate_and(net, a, b), "y");
  const auto stats = opt::extract_kernels(net);
  EXPECT_EQ(stats.divisors_added, 0u);
  EXPECT_EQ(stats.substitutions, 0u);
}

}  // namespace
}  // namespace imodec
