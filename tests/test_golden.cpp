// Golden regression corpus: pinned end-to-end snapshots of the synthesis
// pipeline. The flow is deterministic for any thread count (DESIGN.md §9),
// so these numbers are stable — a change here is a real behavior change and
// must be reviewed, not silently re-pinned.

#include <gtest/gtest.h>

#include "circuits/registry.hpp"
#include "map/driver.hpp"
#include "paper_fixtures.hpp"

namespace imodec {
namespace {

struct Golden {
  const char* name;
  unsigned luts;
  unsigned depth;
};

void expect_snapshot(const Network& net, const Golden& g) {
  Network mapped;
  const DriverReport rep = run_synthesis(net, {}, mapped);
  EXPECT_EQ(rep.flow.luts, g.luts) << g.name;
  EXPECT_EQ(rep.depth, g.depth) << g.name;
  // Every corpus circuit must come out verified, and by proof: the default
  // auto mode reaches the miter for all of them.
  EXPECT_TRUE(rep.verified) << g.name;
  EXPECT_TRUE(rep.verify_proven) << g.name;
  EXPECT_EQ(rep.verify_mode, VerifyMode::exact) << g.name;
}

TEST(Golden, PaperExample) {
  // The running example of the paper: f1/f2 of Fig. 2 as one two-output
  // network over {x1,x2,x3,y1,y2}.
  Network net("paper");
  std::vector<SigId> ins;
  for (const char* n : {"x1", "x2", "x3", "y1", "y2"})
    ins.push_back(net.add_input(n));
  net.add_output(net.add_node(ins, testfix::paper_f1(), "f1"), "f1");
  net.add_output(net.add_node(ins, testfix::paper_f2(), "f2"), "f2");
  expect_snapshot(net, {"paper", 2, 1});
}

TEST(Golden, RegistryCircuits) {
  const Golden corpus[] = {
      {"z4ml", 5, 2}, {"rd84", 10, 3},  {"9sym", 6, 3},
      {"5xp1", 24, 3}, {"count", 52, 5},
  };
  for (const Golden& g : corpus) {
    const auto net = circuits::make_benchmark(g.name);
    ASSERT_TRUE(net.has_value()) << g.name;
    expect_snapshot(*net, g);
  }
}

}  // namespace
}  // namespace imodec
