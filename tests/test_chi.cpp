// Tests for the characteristic functions χ_k(z) of preferable decomposition
// functions, anchored on the paper's Example 5 and cross-checked against
// brute-force enumeration of constructable functions.

#include <gtest/gtest.h>

#include "decomp/classes.hpp"
#include "imodec/chi.hpp"
#include "paper_fixtures.hpp"
#include "util/rng.hpp"

namespace imodec {
namespace {

using bdd::Bdd;
using bdd::Manager;
using testfix::paper_f1;
using testfix::paper_f2;
using testfix::paper_vp;

OutputState make_state(const VertexPartition& local,
                       const VertexPartition& global) {
  OutputState st;
  st.codewidth = codewidth(local.num_classes);
  st.assigned = 0;
  st.blocks.resize(1);
  for (std::uint32_t g = 0; g < global.num_classes; ++g)
    st.blocks[0].push_back(g);
  st.local_of_global.resize(global.num_classes);
  for (std::uint64_t v = 0; v < global.num_vertices(); ++v)
    st.local_of_global[global.class_of[v]] = local.class_of[v];
  return st;
}

struct PaperSetup {
  VertexPartition l1, l2, global;
  PaperSetup() {
    l1 = local_partition_tt(paper_f1(), paper_vp());
    l2 = local_partition_tt(paper_f2(), paper_vp());
    global = global_partition({l1, l2});
  }
};

TEST(Chi, PaperExample5ChiF1) {
  PaperSetup s;
  ASSERT_EQ(s.global.num_classes, 5u);
  Manager mgr(5);
  const OutputState st = make_state(s.l1, s.global);
  const Bdd chi = build_chi(mgr, 5, st);

  // Paper (1-indexed): χ1 = ~z1~z2 z3 z4 + ~z1 z3 z4 ~z5 + ~z1~z2 z5
  //                       + ~z1~z3~z4 z5. Our classes are 0-indexed with the
  // same order (first-occurrence matches G1..G5).
  const Bdd z0 = Bdd::var(mgr, 0), z1 = Bdd::var(mgr, 1), z2 = Bdd::var(mgr, 2),
            z3 = Bdd::var(mgr, 3), z4 = Bdd::var(mgr, 4);
  const Bdd expect = (~z0 & ~z1 & z2 & z3) | (~z0 & z2 & z3 & ~z4) |
                     (~z0 & ~z1 & z4) | (~z0 & ~z2 & ~z3 & z4);
  EXPECT_EQ(chi, expect);
}

TEST(Chi, PaperExample5ChiF2) {
  PaperSetup s;
  Manager mgr(5);
  const OutputState st = make_state(s.l2, s.global);
  const Bdd chi = build_chi(mgr, 5, st);

  // NOTE: the paper's Example 5 prints χ2 as the four 3-subsets of
  // {G2..G5}, but two of them ({G2,G4,G5} and {G3,G4,G5}) violate the
  // paper's own condition C0: with δ = ℓ2 - 2^(c2-1) = 2, they leave only
  // L1 = {G1} fully in the offset (L2 = {G2,G3} is split). Deriving χ2
  // from Definitions 4/5 directly gives three functions: {G4,G5},
  // {G2,G3,G4}, {G2,G3,G5} — see EXPERIMENTS.md. The intersection with χ1
  // still has exactly two vertices and contains the paper's chosen
  // function {G2,G3,G4}, so Examples 6/7 are unaffected.
  const Bdd z1 = Bdd::var(mgr, 1), z2 = Bdd::var(mgr, 2), z3 = Bdd::var(mgr, 3),
            z4 = Bdd::var(mgr, 4);
  const Bdd nz0 = ~Bdd::var(mgr, 0);
  const Bdd expect = (nz0 & ~z1 & ~z2 & z3 & z4) |   // {G4,G5}
                     (nz0 & z1 & z2 & z3 & ~z4) |    // {G2,G3,G4}
                     (nz0 & z1 & z2 & ~z3 & z4);     // {G2,G3,G5}
  EXPECT_EQ(chi, expect);
}

TEST(Chi, VSubstitutionRouteMatchesDirectRoute) {
  PaperSetup s;
  for (const VertexPartition* local : {&s.l1, &s.l2}) {
    Manager mgr_direct(5);
    Manager mgr_subst(5);
    const OutputState st = make_state(*local, s.global);
    ChiOptions direct;
    ChiOptions subst;
    subst.via_v_substitution = true;
    const Bdd a = build_chi(mgr_direct, 5, st, direct);
    const Bdd b = build_chi(mgr_subst, 5, st, subst);
    // Compare by exhaustive evaluation (different managers).
    std::vector<bool> av(mgr_direct.num_vars(), false);
    std::vector<bool> bv(mgr_subst.num_vars(), false);
    for (std::uint64_t z = 0; z < 32; ++z) {
      for (unsigned i = 0; i < 5; ++i) av[i] = bv[i] = (z >> i) & 1;
      EXPECT_EQ(a.eval(av), b.eval(bv)) << z;
    }
  }
}

TEST(Chi, EveryMemberIsPreferableByDefinition) {
  PaperSetup s;
  Manager mgr(5);
  const OutputState st = make_state(s.l1, s.global);
  const Bdd chi = build_chi(mgr, 5, st);
  // Enumerate the onset and check C0/C1 conditions explicitly.
  const std::uint64_t budget = 1u << (st.codewidth - 1);
  std::vector<bool> a(5, false);
  const auto contains = local_to_global(s.l1, s.global);
  for (std::uint64_t z = 0; z < 32; ++z) {
    for (unsigned i = 0; i < 5; ++i) a[i] = (z >> i) & 1;
    if (!chi.eval(a)) continue;
    EXPECT_FALSE(z & 1);  // ¬z_0 factor
    unsigned fully_on = 0, fully_off = 0;
    for (const auto& gs : contains) {
      bool on = true, off = true;
      for (std::uint32_t g : gs) {
        if ((z >> g) & 1)
          off = false;
        else
          on = false;
      }
      fully_on += on;
      fully_off += off;
    }
    EXPECT_GE(fully_on + budget, contains.size());
    EXPECT_GE(fully_off + budget, contains.size());
  }
}

TEST(OutputState, SplitBlocks) {
  OutputState st;
  st.codewidth = 2;
  st.blocks = {{0, 1, 2, 3, 4}};
  st.local_of_global = {0, 0, 1, 1, 2};
  st.split_blocks(0b01110);  // onset = {1,2,3}
  EXPECT_EQ(st.assigned, 1u);
  ASSERT_EQ(st.blocks.size(), 2u);
  EXPECT_EQ(st.blocks[0], (std::vector<std::uint32_t>{1, 2, 3}));
  EXPECT_EQ(st.blocks[1], (std::vector<std::uint32_t>{0, 4}));
  EXPECT_FALSE(st.refined());  // block {1,2,3} spans local classes 0 and 1
  st.split_blocks(0b10010);    // onset {1,4}: separates 1|{2,3} and 4|{0}
  EXPECT_TRUE(st.refined());
}

TEST(OutputState, RefinedOnSingletons) {
  OutputState st;
  st.codewidth = 1;
  st.blocks = {{0}, {1}};
  st.local_of_global = {0, 1};
  EXPECT_TRUE(st.refined());
}

TEST(Chi, SecondStagePaperExample) {
  // After accepting the paper's d1 (onset {G2,G3,G4} = mask 01110 in our
  // 0-indexed bit order), both outputs need exactly one more function; the
  // recomputed χ must be non-empty and exclude d1 itself.
  PaperSetup s;
  Manager mgr(5);
  OutputState st1 = make_state(s.l1, s.global);
  st1.split_blocks(0b01110);
  const Bdd chi = build_chi(mgr, 5, st1);
  EXPECT_FALSE(chi.is_zero());
  std::vector<bool> a(5, false);
  a[1] = a[2] = a[3] = true;  // d1 again
  EXPECT_FALSE(chi.eval(a));  // d1 cannot complete the assignment by itself
}

TEST(Chi, StrictModeForcesUniformClasses) {
  PaperSetup s;
  Manager mgr(5);
  const OutputState st = make_state(s.l1, s.global);
  ChiOptions opts;
  opts.strict = true;
  const Bdd chi = build_chi(mgr, 5, st, opts);
  // Every member must be constant on each local class of f1
  // (L1 = {G0,G1}, L2 = {G2,G3}).
  std::vector<bool> a(5, false);
  for (std::uint64_t z = 0; z < 32; ++z) {
    for (unsigned i = 0; i < 5; ++i) a[i] = (z >> i) & 1;
    if (!chi.eval(a)) continue;
    EXPECT_EQ((z >> 0) & 1, (z >> 1) & 1) << z;
    EXPECT_EQ((z >> 2) & 1, (z >> 3) & 1) << z;
  }
  // Strict is a subset of non-strict.
  const Bdd loose = build_chi(mgr, 5, st);
  EXPECT_EQ(chi & loose, chi);
}

TEST(PreferableCount, PaperExampleCounts) {
  // |χ1| = 7 satisfying z-vertices with z0 = 0 (see the covering table of
  // Fig. 5); preferable_count reports both complement halves: 14.
  PaperSetup s;
  Manager mgr(5);
  EXPECT_DOUBLE_EQ(preferable_count(mgr, 5, make_state(s.l1, s.global)), 14.0);
  // χ2 has 3 minterms with z0 = 0 (see the PaperExample5ChiF2 note) -> 6
  // including complements.
  EXPECT_DOUBLE_EQ(preferable_count(mgr, 5, make_state(s.l2, s.global)), 6.0);
}

}  // namespace
}  // namespace imodec
