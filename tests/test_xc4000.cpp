// Tests for XC4000 CLB packing (extension target).

#include <gtest/gtest.h>

#include "circuits/gates.hpp"
#include "circuits/registry.hpp"
#include "map/lutflow.hpp"
#include "map/xc4000.hpp"

namespace imodec {
namespace {

using circuits::gate_and;
using circuits::gate_or;
using circuits::gate_xor;

TEST(Xc4000, SingleSmallNode) {
  Network net("t");
  const SigId a = net.add_input("a");
  const SigId b = net.add_input("b");
  net.add_output(gate_and(net, a, b), "y");
  const auto p = pack_xc4000(net);
  EXPECT_EQ(p.clbs, 1u);
  EXPECT_EQ(p.single_blocks, 1u);
  EXPECT_EQ(p.h_patterns, 0u);
}

TEST(Xc4000, HPatternAbsorbsTwoLevelCone) {
  // y = (a & b) | (c ^ d): root OR with two single-fanout LUT fanins.
  Network net("t");
  const SigId a = net.add_input("a");
  const SigId b = net.add_input("b");
  const SigId c = net.add_input("c");
  const SigId d = net.add_input("d");
  const SigId f = gate_and(net, a, b);
  const SigId g = gate_xor(net, c, d);
  net.add_output(gate_or(net, f, g), "y");
  const auto p = pack_xc4000(net);
  EXPECT_EQ(p.clbs, 1u);
  EXPECT_EQ(p.h_patterns, 1u);
}

TEST(Xc4000, SharedFaninBlocksAbsorption) {
  // The AND feeds two consumers: it cannot vanish into an H pattern.
  Network net("t");
  const SigId a = net.add_input("a");
  const SigId b = net.add_input("b");
  const SigId c = net.add_input("c");
  const SigId f = gate_and(net, a, b);
  const SigId y0 = gate_or(net, f, c);
  net.add_output(y0, "y0");
  net.add_output(f, "y1");  // second fanout via output
  const auto p = pack_xc4000(net);
  // Two nodes, no H pattern (f is an output), one paired CLB.
  EXPECT_EQ(p.h_patterns, 0u);
  EXPECT_EQ(p.clbs, 1u);
  EXPECT_EQ(p.paired_blocks, 1u);
}

TEST(Xc4000, PairingLeftovers) {
  Network net("t");
  std::vector<SigId> pis;
  for (int i = 0; i < 8; ++i)
    pis.push_back(net.add_input("x" + std::to_string(i)));
  for (int i = 0; i < 3; ++i)
    net.add_output(gate_and(net, pis[2 * i], pis[2 * i + 1]),
                   "y" + std::to_string(i));
  const auto p = pack_xc4000(net);
  EXPECT_EQ(p.clbs, 2u);  // 3 nodes -> 1 pair + 1 single
  EXPECT_EQ(p.paired_blocks, 1u);
  EXPECT_EQ(p.single_blocks, 1u);
}

TEST(Xc4000, FullFlowAtK4) {
  const auto collapsed = collapse_network(*circuits::make_benchmark("rd84"));
  ASSERT_TRUE(collapsed.has_value());
  FlowOptions opts;
  opts.k = 4;
  const FlowResult r = decompose_to_luts(*collapsed, opts);
  const auto p = pack_xc4000(r.network);
  EXPECT_GT(p.clbs, 0u);
  // Upper bound: one node per CLB; lower bound: three nodes per CLB (H).
  EXPECT_LE(p.clbs, r.stats.luts);
  EXPECT_GE(p.clbs * 3, r.stats.luts);
}

TEST(Xc4000, HPatternBeatsNaivePairingOnChains) {
  // A chain of 2-level cones profits from H absorption.
  Network net("t");
  std::vector<SigId> pis;
  for (int i = 0; i < 12; ++i)
    pis.push_back(net.add_input("x" + std::to_string(i)));
  for (int i = 0; i < 3; ++i) {
    const SigId f = gate_and(net, pis[4 * i], pis[4 * i + 1]);
    const SigId g = gate_xor(net, pis[4 * i + 2], pis[4 * i + 3]);
    net.add_output(gate_or(net, f, g), "y" + std::to_string(i));
  }
  const auto p = pack_xc4000(net);
  EXPECT_EQ(p.h_patterns, 3u);
  EXPECT_EQ(p.clbs, 3u);  // 9 nodes in 3 CLBs
}

}  // namespace
}  // namespace imodec
