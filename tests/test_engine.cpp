// Tests for the multiple-output decomposition engine: correctness
// (recomposition), optimality properties (Property 1, sharing vs.
// single-output), option modes, and randomized property sweeps.

#include <gtest/gtest.h>

#include "decomp/single.hpp"
#include "imodec/engine.hpp"
#include "paper_fixtures.hpp"
#include "util/rng.hpp"

namespace imodec {
namespace {

using testfix::paper_f1;
using testfix::paper_f2;
using testfix::paper_vp;

TEST(Engine, PaperExampleSharesOneFunction) {
  const std::vector<TruthTable> fs{paper_f1(), paper_f2()};
  ImodecStats stats;
  const auto dec = decompose_multi_output(fs, paper_vp(), {}, &stats);
  ASSERT_TRUE(dec.has_value());

  // Example 3: c1 = c2 = 2, p = 5, q = 3 (one shared function); Property 1
  // gives q >= ⌈ld 5⌉ = 3, so 3 is optimal.
  EXPECT_EQ(stats.p, 5u);
  EXPECT_EQ(stats.l_k, (std::vector<std::uint32_t>{3, 4}));
  EXPECT_EQ(stats.c_k, (std::vector<unsigned>{2, 2}));
  EXPECT_EQ(dec->q(), 3u);
  EXPECT_EQ(dec->outputs[0].d_index.size(), 2u);
  EXPECT_EQ(dec->outputs[1].d_index.size(), 2u);

  // Recomposition correctness for both outputs.
  EXPECT_EQ(recompose(*dec, 0, 5), paper_f1());
  EXPECT_EQ(recompose(*dec, 1, 5), paper_f2());
}

TEST(Engine, SingleOutputVectorMatchesCodewidth) {
  const std::vector<TruthTable> fs{paper_f1()};
  ImodecStats stats;
  const auto dec = decompose_multi_output(fs, paper_vp(), {}, &stats);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(dec->q(), 2u);  // ℓ = 3 -> c = 2
  EXPECT_EQ(recompose(*dec, 0, 5), paper_f1());
}

TEST(Engine, ConstantOutputsCompleteImmediately) {
  const std::vector<TruthTable> fs{TruthTable(5, true), paper_f1()};
  const auto dec = decompose_multi_output(fs, paper_vp());
  ASSERT_TRUE(dec.has_value());
  EXPECT_TRUE(dec->outputs[0].d_index.empty());
  EXPECT_EQ(recompose(*dec, 0, 5), TruthTable(5, true));
  EXPECT_EQ(recompose(*dec, 1, 5), paper_f1());
}

TEST(Engine, IdenticalOutputsShareEverything) {
  const std::vector<TruthTable> fs{paper_f1(), paper_f1(), paper_f1()};
  ImodecStats stats;
  const auto dec = decompose_multi_output(fs, paper_vp(), {}, &stats);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(dec->q(), 2u);  // same functions for all three outputs
  for (int k = 0; k < 3; ++k) EXPECT_EQ(recompose(*dec, k, 5), paper_f1());
}

TEST(Engine, ComplementOutputsShareEverything) {
  // f and ~f induce identical partitions, hence identical preferable sets.
  const std::vector<TruthTable> fs{paper_f1(), ~paper_f1()};
  ImodecStats stats;
  const auto dec = decompose_multi_output(fs, paper_vp(), {}, &stats);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(dec->q(), 2u);
  EXPECT_EQ(recompose(*dec, 0, 5), paper_f1());
  EXPECT_EQ(recompose(*dec, 1, 5), ~paper_f1());
}

TEST(Engine, RespectsMaxP) {
  const std::vector<TruthTable> fs{paper_f1(), paper_f2()};
  ImodecOptions opts;
  opts.max_p = 4;  // p is 5
  ImodecStats stats;
  EXPECT_FALSE(decompose_multi_output(fs, paper_vp(), opts, &stats).has_value());
  EXPECT_EQ(stats.p, 5u);
}

TEST(Engine, Property1LowerBound) {
  const std::vector<TruthTable> fs{paper_f1(), paper_f2()};
  ImodecStats stats;
  const auto dec = decompose_multi_output(fs, paper_vp(), {}, &stats);
  ASSERT_TRUE(dec.has_value());
  EXPECT_GE(std::uint64_t{1} << dec->q(), stats.p);
}

TEST(Engine, NeverWorseThanSingleOutput) {
  const std::vector<TruthTable> fs{paper_f1(), paper_f2()};
  const auto dec = decompose_multi_output(fs, paper_vp());
  ASSERT_TRUE(dec.has_value());
  EXPECT_LE(dec->q(), sum_codewidths(fs, paper_vp()));
}

TEST(Engine, StrictModeStillCorrectButNoBetter) {
  const std::vector<TruthTable> fs{paper_f1(), paper_f2()};
  ImodecOptions strict;
  strict.strict = true;
  const auto dec_strict = decompose_multi_output(fs, paper_vp(), strict);
  ASSERT_TRUE(dec_strict.has_value());
  EXPECT_EQ(recompose(*dec_strict, 0, 5), paper_f1());
  EXPECT_EQ(recompose(*dec_strict, 1, 5), paper_f2());
  const auto dec_loose = decompose_multi_output(fs, paper_vp());
  EXPECT_GE(dec_strict->q(), dec_loose->q());
}

TEST(Engine, VSubstitutionModeMatchesDirectMode) {
  const std::vector<TruthTable> fs{paper_f1(), paper_f2()};
  ImodecOptions subst;
  subst.via_v_substitution = true;
  ImodecStats sa, sb;
  const auto a = decompose_multi_output(fs, paper_vp(), {}, &sa);
  const auto b = decompose_multi_output(fs, paper_vp(), subst, &sb);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  // Same characteristic functions -> same greedy choices -> same q.
  EXPECT_EQ(a->q(), b->q());
  EXPECT_EQ(recompose(*b, 0, 5), paper_f1());
  EXPECT_EQ(recompose(*b, 1, 5), paper_f2());
}

TEST(Engine, SumCodewidths) {
  EXPECT_EQ(sum_codewidths({paper_f1(), paper_f2()}, paper_vp()), 4u);
  EXPECT_EQ(sum_codewidths({TruthTable(5, true)}, paper_vp()), 0u);
}

// --- Randomized property sweep ---------------------------------------------

struct EngineSweepParam {
  int seed;
  unsigned n, b, m;
  bool strict;
};

class EngineRandom : public ::testing::TestWithParam<EngineSweepParam> {};

TEST_P(EngineRandom, DecomposesAndRecomposes) {
  const auto [seed, n, b, m, strict] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 48271 + 11);
  std::vector<TruthTable> fs;
  for (unsigned k = 0; k < m; ++k) {
    TruthTable f(n);
    for (std::uint64_t row = 0; row < f.num_rows(); ++row)
      f.set(row, rng.coin());
    // Bias towards sharing: every second output reuses half of another.
    if (k > 0 && (k & 1)) {
      const TruthTable& prev = fs[k - 1];
      for (std::uint64_t row = 0; row < f.num_rows(); row += 2)
        f.set(row, prev.get(row));
    }
    fs.push_back(std::move(f));
  }
  VarPartition vp;
  for (unsigned v = 0; v < n; ++v)
    (v < b ? vp.bound : vp.free_set).push_back(v);

  ImodecOptions opts;
  opts.strict = strict;
  ImodecStats stats;
  const auto dec = decompose_multi_output(fs, vp, opts, &stats);
  ASSERT_TRUE(dec.has_value());

  for (unsigned k = 0; k < m; ++k)
    EXPECT_EQ(recompose(*dec, k, n), fs[k]) << "output " << k;

  // q bounds: Property 1 lower bound, single-output upper bound.
  EXPECT_GE(std::uint64_t{1} << dec->q(), stats.p);
  EXPECT_LE(dec->q(), sum_codewidths(fs, vp));
  // Each output uses exactly its codewidth many functions.
  for (unsigned k = 0; k < m; ++k)
    EXPECT_EQ(dec->outputs[k].d_index.size(), stats.c_k[k]);
}

std::vector<EngineSweepParam> sweep_params() {
  std::vector<EngineSweepParam> ps;
  int seed = 0;
  for (unsigned n : {5u, 6u, 7u})
    for (unsigned b : {3u, 4u})
      for (unsigned m : {1u, 2u, 3u})
        ps.push_back({++seed, n, b, m, false});
  // A strict-mode slice.
  for (unsigned m : {2u, 3u}) ps.push_back({++seed, 6, 3, m, true});
  return ps;
}

INSTANTIATE_TEST_SUITE_P(Sweep, EngineRandom,
                         ::testing::ValuesIn(sweep_params()));

}  // namespace
}  // namespace imodec
