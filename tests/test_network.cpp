// Tests for the Boolean network substrate: construction, evaluation, cones,
// collapse, sweep, and the equivalence checker.

#include <gtest/gtest.h>

#include "circuits/gates.hpp"
#include "logic/network.hpp"
#include "logic/simulate.hpp"

namespace imodec {
namespace {

using circuits::gate_and;
using circuits::gate_not;
using circuits::gate_or;
using circuits::gate_xor;

Network make_xor_and() {
  // y0 = (a ^ b) & c ; y1 = a ^ b  (shared subexpression)
  Network net("t");
  const SigId a = net.add_input("a");
  const SigId b = net.add_input("b");
  const SigId c = net.add_input("c");
  const SigId x = gate_xor(net, a, b);
  const SigId y = gate_and(net, x, c);
  net.add_output(y, "y0");
  net.add_output(x, "y1");
  return net;
}

TEST(Network, EvalMatchesDefinition) {
  const Network net = make_xor_and();
  for (std::uint64_t row = 0; row < 8; ++row) {
    const bool a = row & 1, b = (row >> 1) & 1, c = (row >> 2) & 1;
    const auto out = net.eval({a, b, c});
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], (a ^ b) && c);
    EXPECT_EQ(out[1], a ^ b);
  }
}

TEST(Network, FindByName) {
  const Network net = make_xor_and();
  EXPECT_NE(net.find("a"), kInvalidSig);
  EXPECT_EQ(net.find("nonexistent"), kInvalidSig);
}

TEST(Network, Stats) {
  const Network net = make_xor_and();
  EXPECT_EQ(net.num_inputs(), 3u);
  EXPECT_EQ(net.num_outputs(), 2u);
  EXPECT_EQ(net.logic_count(), 2u);
  EXPECT_EQ(net.depth(), 2u);
  EXPECT_EQ(net.max_fanin(), 2u);
}

TEST(Network, ConeInputs) {
  const Network net = make_xor_and();
  const auto cone0 = net.cone_inputs(net.outputs()[0]);
  EXPECT_EQ(cone0.size(), 3u);
  const auto cone1 = net.cone_inputs(net.outputs()[1]);
  EXPECT_EQ(cone1.size(), 2u);  // y1 does not depend on c
}

TEST(Network, ConeFunction) {
  const Network net = make_xor_and();
  const auto cone = net.cone_inputs(net.outputs()[0]);
  const auto tt = net.cone_function(net.outputs()[0], cone);
  ASSERT_TRUE(tt.has_value());
  for (std::uint64_t row = 0; row < 8; ++row) {
    const bool a = row & 1, b = (row >> 1) & 1, c = (row >> 2) & 1;
    EXPECT_EQ(tt->eval(row), (a ^ b) && c);
  }
}

TEST(Network, SweepRemovesDangling) {
  Network net("t");
  const SigId a = net.add_input("a");
  const SigId b = net.add_input("b");
  const SigId keep = gate_and(net, a, b);
  gate_or(net, a, b);  // dangling
  net.add_output(keep, "y");
  EXPECT_EQ(net.logic_count(), 2u);
  EXPECT_EQ(net.sweep(), 1u);
  EXPECT_EQ(net.logic_count(), 1u);
  // Function preserved.
  EXPECT_EQ(net.eval({true, true})[0], true);
  EXPECT_EQ(net.eval({true, false})[0], false);
}

TEST(Network, ConstantNodes) {
  Network net("t");
  const SigId one = net.add_constant(true);
  net.add_input("a");
  net.add_output(one, "y");
  EXPECT_TRUE(net.eval({false})[0]);
  EXPECT_TRUE(net.eval({true})[0]);
}

TEST(Equivalence, IdenticalNetworksEquivalent) {
  const Network a = make_xor_and();
  const Network b = make_xor_and();
  const auto res = check_equivalence(a, b);
  EXPECT_TRUE(res.equivalent);
  EXPECT_TRUE(res.exhaustive);
}

TEST(Equivalence, DetectsDifference) {
  const Network a = make_xor_and();
  Network b("t");
  const SigId x = b.add_input("a");
  const SigId y = b.add_input("b");
  const SigId z = b.add_input("c");
  const SigId o = gate_or(b, x, y);  // OR instead of XOR
  b.add_output(gate_and(b, o, z), "y0");
  b.add_output(o, "y1");
  const auto res = check_equivalence(a, b);
  EXPECT_FALSE(res.equivalent);
  ASSERT_TRUE(res.counterexample.has_value());
  // The counterexample must actually differentiate the two networks.
  EXPECT_NE(a.eval(*res.counterexample), b.eval(*res.counterexample));
}

TEST(Equivalence, RandomModeOnWideNetworks) {
  // 20 inputs: above the default exhaustive limit.
  Network a("wide"), b("wide");
  std::vector<SigId> xa, xb;
  for (int i = 0; i < 20; ++i) {
    xa.push_back(a.add_input("x" + std::to_string(i)));
    xb.push_back(b.add_input("x" + std::to_string(i)));
  }
  a.add_output(circuits::gate_tree(a, xa, gate_xor), "y");
  b.add_output(circuits::gate_tree(b, xb, gate_xor), "y");
  const auto res = check_equivalence(a, b);
  EXPECT_TRUE(res.equivalent);
  EXPECT_FALSE(res.exhaustive);

  // Flip one leaf: must be caught by random vectors (parity differs on every
  // input, so any vector is a counterexample).
  Network c = b;
  c.node(c.outputs()[0]).func = ~c.node(c.outputs()[0]).func;
  EXPECT_FALSE(check_equivalence(a, c).equivalent);
}

}  // namespace
}  // namespace imodec
