// Tests for the implicit (ADD-based) Lmax against the explicit covering-
// table reference, plus targeted behavioural cases.

#include <gtest/gtest.h>

#include "imodec/lmax.hpp"
#include "util/rng.hpp"

namespace imodec {
namespace {

using bdd::Bdd;
using bdd::Manager;

TEST(Lmax, SingleFunctionPicksAnyOnsetVertex) {
  Manager mgr(4);
  const Bdd chi = Bdd::var(mgr, 1) & ~Bdd::var(mgr, 3);
  const LmaxResult r = lmax(mgr, 4, {chi});
  EXPECT_EQ(r.coverage, 1u);
  EXPECT_TRUE(r.covers[0]);
  // Chosen mask must satisfy chi.
  std::vector<bool> a(4, false);
  for (unsigned i = 0; i < 4; ++i) a[i] = (r.z_mask >> i) & 1;
  EXPECT_TRUE(chi.eval(a));
}

TEST(Lmax, PrefersSharedVertex) {
  Manager mgr(3);
  const Bdd a = Bdd::var(mgr, 0);
  const Bdd b = Bdd::var(mgr, 0) & Bdd::var(mgr, 1);
  const Bdd c = ~Bdd::var(mgr, 0);
  const LmaxResult r = lmax(mgr, 3, {a, b, c});
  EXPECT_EQ(r.coverage, 2u);  // a and b share x0=1,x1=1; c conflicts
  EXPECT_TRUE(r.covers[0]);
  EXPECT_TRUE(r.covers[1]);
  EXPECT_FALSE(r.covers[2]);
}

TEST(Lmax, DisjointFunctionsGiveCoverageOne) {
  Manager mgr(2);
  const Bdd a = Bdd::var(mgr, 0) & Bdd::var(mgr, 1);
  const Bdd b = ~Bdd::var(mgr, 0) & ~Bdd::var(mgr, 1);
  const LmaxResult r = lmax(mgr, 2, {a, b});
  EXPECT_EQ(r.coverage, 1u);
}

TEST(LmaxExplicit, MatchesPaperCoveringTable) {
  // Fig. 5 columns: chi1 with 7 vertices, chi2 with 3; shared = 2.
  Manager mgr(5);
  const Bdd z0 = Bdd::var(mgr, 0), z1 = Bdd::var(mgr, 1), z2 = Bdd::var(mgr, 2),
            z3 = Bdd::var(mgr, 3), z4 = Bdd::var(mgr, 4);
  const Bdd chi1 = (~z0 & ~z1 & z2 & z3) | (~z0 & z2 & z3 & ~z4) |
                   (~z0 & ~z1 & z4) | (~z0 & ~z2 & ~z3 & z4);
  const Bdd chi2 = (~z0 & ~z1 & ~z2 & z3 & z4) | (~z0 & z1 & z2 & z3 & ~z4) |
                   (~z0 & z1 & z2 & ~z3 & z4);
  const LmaxResult imp = lmax(mgr, 5, {chi1, chi2});
  const LmaxResult exp = lmax_explicit(mgr, 5, {chi1, chi2});
  EXPECT_EQ(imp.coverage, 2u);
  EXPECT_EQ(exp.coverage, 2u);
}

class LmaxRandom : public ::testing::TestWithParam<int> {};

TEST_P(LmaxRandom, ImplicitMatchesExplicit) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 92821 + 1);
  const std::uint32_t p = 6 + GetParam() % 5;  // 6..10 classes
  Manager mgr(p);
  const std::size_t m = 2 + rng.below(6);
  std::vector<Bdd> chis;
  for (std::size_t k = 0; k < m; ++k) {
    Bdd f = Bdd::zero(mgr);
    const int cubes = 1 + static_cast<int>(rng.below(4));
    for (int c = 0; c < cubes; ++c) {
      std::vector<unsigned> vars;
      std::vector<bool> phases;
      for (std::uint32_t v = 0; v < p; ++v) {
        if (rng.chance(1, 2)) continue;
        vars.push_back(v);
        phases.push_back(rng.coin());
      }
      f = f | Bdd::cube(mgr, vars, phases);
    }
    chis.push_back(f);
  }
  const LmaxResult imp = lmax(mgr, p, chis);
  const LmaxResult exp = lmax_explicit(mgr, p, chis);
  EXPECT_EQ(imp.coverage, exp.coverage);
  // The implicit pick must attain the explicit maximum.
  std::vector<bool> a(p, false);
  for (std::uint32_t i = 0; i < p; ++i) a[i] = (imp.z_mask >> i) & 1;
  unsigned cover = 0;
  for (const Bdd& chi : chis) cover += chi.eval(a);
  EXPECT_EQ(cover, exp.coverage);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LmaxRandom, ::testing::Range(0, 20));

}  // namespace
}  // namespace imodec
