// Tests for the Table-1 counting machinery: the assignable-function DP
// against brute force, the implicit preferable count against brute force,
// and the paper-documented counts of the worked example.

#include <gtest/gtest.h>

#include "decomp/classes.hpp"
#include "imodec/counting.hpp"
#include "paper_fixtures.hpp"
#include "util/rng.hpp"

namespace imodec {
namespace {

using testfix::paper_f1;
using testfix::paper_f2;
using testfix::paper_vp;

VertexPartition random_partition(Rng& rng, unsigned b, std::uint32_t classes) {
  VertexPartition p;
  p.b = b;
  p.num_classes = classes;
  p.class_of.resize(std::uint64_t{1} << b);
  // Ensure every class is non-empty: first `classes` vertices get distinct
  // ids, the rest are random.
  for (std::uint64_t v = 0; v < p.num_vertices(); ++v)
    p.class_of[v] = v < classes
                        ? static_cast<std::uint32_t>(v)
                        : static_cast<std::uint32_t>(rng.below(classes));
  return p;
}

TEST(AssignableCount, TwoClassesGiveTwoFunctions) {
  // ℓ = 2 -> c = 1 -> budget 1: only the two "one class on, one off"
  // functions qualify (the f51m row of Table 1 with ℓ_k = 2 reports 2).
  Rng rng(1);
  const VertexPartition p = random_partition(rng, 5, 2);
  EXPECT_DOUBLE_EQ(assignable_count(p).to_double(), 2.0);
}

TEST(AssignableCount, SingleClass) {
  Rng rng(2);
  const VertexPartition p = random_partition(rng, 3, 1);
  EXPECT_DOUBLE_EQ(assignable_count(p).to_double(), 2.0);
}

class AssignableDpVsBrute : public ::testing::TestWithParam<int> {};

TEST_P(AssignableDpVsBrute, Matches) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7001 + 3);
  const unsigned b = 3 + GetParam() % 2;  // 3 or 4
  const std::uint32_t classes =
      2 + static_cast<std::uint32_t>(rng.below(b == 3 ? 6 : 8));
  const VertexPartition p = random_partition(rng, b, classes);
  const std::uint64_t brute = assignable_count_bruteforce(p);
  EXPECT_DOUBLE_EQ(assignable_count(p).to_double(),
                   static_cast<double>(brute))
      << "b=" << b << " ell=" << classes;
}

INSTANTIATE_TEST_SUITE_P(Seeds, AssignableDpVsBrute, ::testing::Range(0, 16));

TEST(PreferableCount, MatchesBruteForceOnPaperExample) {
  const auto l1 = local_partition_tt(paper_f1(), paper_vp());
  const auto l2 = local_partition_tt(paper_f2(), paper_vp());
  const auto g = global_partition({l1, l2});
  EXPECT_DOUBLE_EQ(preferable_count_initial(l1, g).to_double(),
                   static_cast<double>(preferable_count_bruteforce(l1, g)));
  EXPECT_DOUBLE_EQ(preferable_count_initial(l2, g).to_double(),
                   static_cast<double>(preferable_count_bruteforce(l2, g)));
}

class PreferableVsBrute : public ::testing::TestWithParam<int> {};

TEST_P(PreferableVsBrute, MatchesOnRandomVectors) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 65537 + 19);
  const unsigned n = 6, b = 4;
  std::vector<TruthTable> fs;
  for (int k = 0; k < 2; ++k) {
    TruthTable f(n);
    for (std::uint64_t row = 0; row < f.num_rows(); ++row)
      f.set(row, rng.coin());
    fs.push_back(std::move(f));
  }
  VarPartition vp;
  for (unsigned v = 0; v < n; ++v)
    (v < b ? vp.bound : vp.free_set).push_back(v);
  std::vector<VertexPartition> locals;
  for (const auto& f : fs) locals.push_back(local_partition_tt(f, vp));
  const auto g = global_partition(locals);
  if (g.num_classes > 20) GTEST_SKIP() << "brute force too large";
  for (const auto& local : locals) {
    EXPECT_DOUBLE_EQ(
        preferable_count_initial(local, g).to_double(),
        static_cast<double>(preferable_count_bruteforce(local, g)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PreferableVsBrute, ::testing::Range(0, 10));

TEST(PreferableCount, NeverExceedsAssignable) {
  // Preferable = assignable ∩ constructable, so the count can only shrink
  // (§7: "The number of preferable functions is much smaller than the number
  // of assignable functions").
  const auto l1 = local_partition_tt(paper_f1(), paper_vp());
  const auto l2 = local_partition_tt(paper_f2(), paper_vp());
  const auto g = global_partition({l1, l2});
  for (const auto* l : {&l1, &l2}) {
    EXPECT_LE(preferable_count_initial(*l, g).compare(assignable_count(*l)),
              0);
  }
}

TEST(Characterize, PaperExampleVector) {
  const std::vector<TruthTable> fs{paper_f1(), paper_f2()};
  const auto ch = characterize_vector(fs, paper_vp());
  EXPECT_EQ(ch.b, 3u);
  EXPECT_EQ(ch.p, 5u);
  EXPECT_EQ(ch.l_k, (std::vector<std::uint32_t>{3, 4}));
  // Bounds: 2^(2^3) = 256 and 2^5 = 32.
  EXPECT_DOUBLE_EQ(ch.assignable_bound.to_double(), 256.0);
  EXPECT_DOUBLE_EQ(ch.preferable_bound.to_double(), 32.0);
  for (std::size_t k = 0; k < 2; ++k) {
    EXPECT_LE(ch.preferable[k].compare(ch.preferable_bound), 0);
    EXPECT_LE(ch.assignable[k].compare(ch.assignable_bound), 0);
    EXPECT_LE(ch.preferable[k].compare(ch.assignable[k]), 0);
  }
}

TEST(Characterize, WideVectorBoundsAreAstronomical) {
  // b = 8 bound: 2^256 ~ 1.2e77, exactly the alu4 row's parenthesized bound.
  std::vector<TruthTable> fs{TruthTable::var(9, 0)};
  VarPartition vp;
  for (unsigned v = 0; v < 9; ++v)
    (v < 8 ? vp.bound : vp.free_set).push_back(v);
  const auto ch = characterize_vector(fs, vp);
  EXPECT_EQ(ch.assignable_bound.to_string(2), "1.2e+77");
}

}  // namespace
}  // namespace imodec
