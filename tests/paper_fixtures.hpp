#pragma once
// Shared fixtures: the worked example of the paper (functions f1 and f2 of
// Fig. 2 with bound set {x1,x2,x3} and free set {y1,y2}).
//
// Variable numbering: x1,x2,x3,y1,y2 = table variables 0..4. A bound-set
// vertex written "x1x2x3" in the paper maps to index x1*1 + x2*2 + x3*4.

#include <cstdint>

#include "decomp/types.hpp"
#include "logic/truthtable.hpp"

namespace imodec::testfix {

/// Build a 5-variable function from its decomposition chart: rows[y] is the
/// 8-character column string for free-set vertex y (y1*1 + y2*2), column
/// order 000..111 in paper order (x1 the leftmost character's first bit).
inline TruthTable from_chart(const char* r00, const char* r01, const char* r10,
                             const char* r11) {
  const char* rows[4] = {r00, r01, r10, r11};
  TruthTable f(5);
  for (unsigned y = 0; y < 4; ++y) {
    for (unsigned col = 0; col < 8; ++col) {
      // Paper column label "x1 x2 x3" counts x1 as the most significant
      // printed digit but enumerates 000,001,010,... i.e. x3 is the LSB of
      // the printed label.
      const unsigned x1 = (col >> 2) & 1, x2 = (col >> 1) & 1, x3 = col & 1;
      const std::uint64_t input = x1 | (x2 << 1) | (x3 << 2) |
                                  ((y & 1) << 3) |
                                  (static_cast<std::uint64_t>(y >> 1) << 4);
      f.set(input, rows[y][col] == '1');
    }
  }
  return f;
}

/// f1 of Fig. 2 a).
inline TruthTable paper_f1() {
  return from_chart("00010111", "11111110", "11111110", "00010110");
}

/// f2 of Fig. 2 b).
inline TruthTable paper_f2() {
  return from_chart("00010101", "01111110", "01111110", "11101010");
}

/// Bound set {x1,x2,x3}, free set {y1,y2}.
inline VarPartition paper_vp() {
  VarPartition vp;
  vp.bound = {0, 1, 2};
  vp.free_set = {3, 4};
  return vp;
}

/// Map a paper vertex string "x1x2x3" to our vertex index.
inline std::uint32_t vx(const char* bits) {
  return static_cast<std::uint32_t>((bits[0] - '0') | ((bits[1] - '0') << 1) |
                                    ((bits[2] - '0') << 2));
}

}  // namespace imodec::testfix
