// Tests for the observability layer (src/obs/): span tree recording, the
// counter/gauge registry, the JSON model and exporters, and the contract the
// rest of the pipeline relies on — zero side effects while obs is disabled.

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "imodec/engine.hpp"
#include "logic/truthtable.hpp"
#include "obs/bench_json.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace imodec::obs {
namespace {

/// Every test runs against the process-global trace/registry/flag; isolate
/// them: start clean, restore the flag afterwards.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = enabled();
    set_enabled(false);
    Trace::global().clear();
    Registry::instance().reset();
  }
  void TearDown() override {
    Trace::global().clear();
    Registry::instance().reset();
    set_enabled(was_enabled_);
  }

 private:
  bool was_enabled_ = false;
};

/// The paper's worked-example vector (f1, f2) — a real engine workload.
std::vector<TruthTable> worked_example() {
  TruthTable f1(5), f2(5);
  const char* c1[4] = {"00010111", "11111110", "11111110", "00010110"};
  const char* c2[4] = {"00010101", "01111110", "01111110", "11101010"};
  for (unsigned y = 0; y < 4; ++y)
    for (unsigned col = 0; col < 8; ++col) {
      const unsigned x1 = (col >> 2) & 1, x2 = (col >> 1) & 1, x3 = col & 1;
      const std::uint64_t idx = x1 | (x2 << 1) | (x3 << 2) | ((y & 1) << 3) |
                                (static_cast<std::uint64_t>(y >> 1) << 4);
      f1.set(idx, c1[y][col] == '1');
      f2.set(idx, c2[y][col] == '1');
    }
  return {f1, f2};
}

VarPartition worked_example_vp() {
  VarPartition vp;
  vp.bound = {0, 1, 2};
  vp.free_set = {3, 4};
  return vp;
}

// ---------------------------------------------------------------------------
// Span recording

TEST_F(ObsTest, SpanNestingFormsATree) {
  set_enabled(true);
  {
    ScopedSpan a("outer");
    {
      ScopedSpan b("inner1");
    }
    {
      ScopedSpan c("inner2");
      { ScopedSpan d("leaf"); }
    }
  }
  const auto spans = Trace::global().snapshot();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[1].name, "inner1");
  EXPECT_EQ(spans[1].parent, 0);
  EXPECT_EQ(spans[2].name, "inner2");
  EXPECT_EQ(spans[2].parent, 0);
  EXPECT_EQ(spans[3].name, "leaf");
  EXPECT_EQ(spans[3].parent, 2);
}

TEST_F(ObsTest, DurationsAreClosedAndMonotonic) {
  set_enabled(true);
  {
    ScopedSpan a("parent");
    { ScopedSpan b("child"); }
  }
  const auto spans = Trace::global().snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // All closed, non-negative, and a parent covers its child.
  for (const auto& s : spans) EXPECT_GE(s.dur, 0.0) << s.name;
  EXPECT_GE(spans[1].start, spans[0].start);
  EXPECT_GE(spans[0].start + spans[0].dur, spans[1].start + spans[1].dur);
}

TEST_F(ObsTest, ScopedSpanIsAStopwatchEvenWhenDisabled) {
  ASSERT_FALSE(enabled());
  ScopedSpan s("untraced");
  EXPECT_GE(s.seconds(), 0.0);
  EXPECT_EQ(Trace::global().size(), 0u);
}

TEST_F(ObsTest, SnapshotSinceRerootsParents) {
  set_enabled(true);
  {
    ScopedSpan a("before");
  }
  const std::size_t base = Trace::global().size();
  {
    ScopedSpan b("run");
    { ScopedSpan c("phase"); }
  }
  const auto spans = Trace::global().snapshot_since(base);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "run");
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[1].name, "phase");
  EXPECT_EQ(spans[1].parent, 0);
}

TEST_F(ObsTest, ThreadsTraceIndependentStacks) {
  set_enabled(true);
  {
    ScopedSpan root("main-root");
    std::vector<std::thread> workers;
    for (int t = 0; t < 4; ++t)
      workers.emplace_back([] {
        ScopedSpan outer("worker");
        ScopedSpan inner("worker-child");
      });
    for (auto& w : workers) w.join();
  }
  const auto spans = Trace::global().snapshot();
  ASSERT_EQ(spans.size(), 9u);  // 1 root + 4 * (outer + inner)
  std::set<std::uint64_t> tids;
  int workers = 0;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const auto& s = spans[i];
    EXPECT_GE(s.dur, 0.0);
    if (s.name == "worker") {
      ++workers;
      tids.insert(s.tid);
      // A worker's parent must not live on another thread: each thread has
      // its own open stack, so "worker" is a root, not a child of main-root.
      EXPECT_EQ(s.parent, -1);
    }
    if (s.name == "worker-child") {
      ASSERT_GE(s.parent, 0);
      EXPECT_EQ(spans[s.parent].name, "worker");
      EXPECT_EQ(spans[s.parent].tid, s.tid);
    }
  }
  EXPECT_EQ(workers, 4);
  EXPECT_EQ(tids.size(), 4u);
}

// ---------------------------------------------------------------------------
// Registry

TEST_F(ObsTest, CounterAndGaugeBasics) {
  auto& c = Registry::instance().counter("t.counter");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(&c, &Registry::instance().counter("t.counter"));

  auto& g = Registry::instance().gauge("t.gauge");
  g.set(7);
  g.set(3);
  EXPECT_EQ(g.value(), 3);
  EXPECT_EQ(g.max(), 7);

  Registry::instance().reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.max(), 0);
}

/// Registry entries persist once created (handles are stable for the process
/// lifetime; reset() only zeroes them), so "untouched" means every value is
/// still zero — not that the maps are empty.
void expect_all_metrics_zero() {
  for (const auto& [name, value] : Registry::instance().counters())
    EXPECT_EQ(value, 0u) << "counter " << name;
  for (const auto& [name, gv] : Registry::instance().gauges()) {
    EXPECT_EQ(gv.value, 0) << "gauge " << name;
    EXPECT_EQ(gv.max, 0) << "gauge " << name;
  }
}

TEST_F(ObsTest, GatedHelpersAreNoOpsWhenDisabled) {
  ASSERT_FALSE(enabled());
  count("t.gated");
  gauge_set("t.gated.gauge", 9);
  expect_all_metrics_zero();
  // The gated helpers must not even register the names.
  for (const auto& [name, value] : Registry::instance().counters())
    EXPECT_NE(name, "t.gated");
}

TEST_F(ObsTest, EngineRunAggregatesIntoRegistry) {
  set_enabled(true);
  const auto fs = worked_example();
  ImodecStats stats;
  const auto dec = decompose_multi_output(fs, worked_example_vp(), {}, &stats);
  ASSERT_TRUE(dec.has_value());

  auto& reg = Registry::instance();
  EXPECT_EQ(reg.counter("engine.runs").value(), 1u);
  EXPECT_EQ(reg.counter("engine.lmax_rounds").value(), stats.lmax_rounds);
  EXPECT_EQ(reg.counter("engine.chi_builds").value(), stats.chi_builds);
  EXPECT_EQ(reg.counter("engine.candidates").value(), stats.candidates);
  EXPECT_EQ(reg.counter("bdd.nodes_allocated").value(), stats.bdd_nodes);
  EXPECT_EQ(reg.counter("bdd.cache_lookups").value(),
            stats.bdd_cache_lookups);
  EXPECT_EQ(reg.counter("bdd.cache_hits").value(), stats.bdd_cache_hits);
  EXPECT_GT(stats.lmax_rounds, 0u);
  EXPECT_GT(stats.bdd_nodes, 0u);
  // seconds is span-derived and the engine really did work.
  EXPECT_GT(stats.seconds, 0.0);

  // The run left a span tree: engine.decompose with the phase children.
  const auto spans = Trace::global().snapshot();
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(spans[0].name, "engine.decompose");
  std::set<std::string> children;
  for (const auto& s : spans)
    if (s.parent == 0) children.insert(s.name);
  EXPECT_TRUE(children.count("engine.partitions"));
  EXPECT_TRUE(children.count("engine.chi"));
  EXPECT_TRUE(children.count("engine.lmax"));
}

TEST_F(ObsTest, DisabledModeHasZeroSideEffects) {
  ASSERT_FALSE(enabled());
  const auto fs = worked_example();
  ImodecStats stats;
  const auto dec = decompose_multi_output(fs, worked_example_vp(), {}, &stats);
  ASSERT_TRUE(dec.has_value());
  // Stats still work (they are plain struct fields) ...
  EXPECT_GT(stats.lmax_rounds, 0u);
  EXPECT_GT(stats.seconds, 0.0);
  // ... but nothing leaked into the global trace or registry.
  EXPECT_EQ(Trace::global().size(), 0u);
  expect_all_metrics_zero();
}

// ---------------------------------------------------------------------------
// JSON model

TEST(ObsJson, DumpParseRoundTrip) {
  Json doc = Json::object();
  doc["name"] = "rd53";
  doc["seconds"] = 0.125;
  doc["count"] = 42;
  doc["ok"] = true;
  doc["nothing"] = nullptr;
  doc["list"] = Json::array();
  doc["list"].push_back(1);
  doc["list"].push_back("two\n\"quoted\"");

  for (int indent : {-1, 2}) {
    const auto parsed = Json::parse(doc.dump(indent));
    ASSERT_TRUE(parsed.has_value()) << "indent=" << indent;
    ASSERT_TRUE(parsed->is_object());
    EXPECT_EQ(parsed->find("name")->as_string(), "rd53");
    EXPECT_DOUBLE_EQ(parsed->find("seconds")->as_number(), 0.125);
    EXPECT_EQ(parsed->find("count")->as_number(), 42);
    EXPECT_TRUE(parsed->find("ok")->as_bool());
    EXPECT_TRUE(parsed->find("nothing")->is_null());
    const Json* list = parsed->find("list");
    ASSERT_NE(list, nullptr);
    ASSERT_EQ(list->size(), 2u);
    EXPECT_EQ(list->items()[1].as_string(), "two\n\"quoted\"");
  }
}

TEST(ObsJson, ParseRejectsGarbage) {
  EXPECT_FALSE(Json::parse("").has_value());
  EXPECT_FALSE(Json::parse("{").has_value());
  EXPECT_FALSE(Json::parse("[1,]").has_value());
  EXPECT_FALSE(Json::parse("{\"a\":1} trailing").has_value());
  EXPECT_FALSE(Json::parse("'single'").has_value());
  EXPECT_FALSE(Json::parse("{\"a\" 1}").has_value());
  EXPECT_TRUE(Json::parse(" { \"a\" : [ 1 , -2.5e3 , null ] } ").has_value());
}

TEST(ObsJson, ObjectKeepsInsertionOrder) {
  Json doc = Json::object();
  doc["zebra"] = 1;
  doc["alpha"] = 2;
  ASSERT_EQ(doc.members().size(), 2u);
  EXPECT_EQ(doc.members()[0].first, "zebra");
  EXPECT_EQ(doc.members()[1].first, "alpha");
  doc["zebra"] = 3;  // assign, not duplicate
  EXPECT_EQ(doc.members().size(), 2u);
  EXPECT_EQ(doc.find("zebra")->as_number(), 3);
}

// ---------------------------------------------------------------------------
// Exporters

TEST_F(ObsTest, TraceJsonRoundTrips) {
  set_enabled(true);
  {
    ScopedSpan a("root");
    { ScopedSpan b("child"); }
  }
  const Json tree = trace_json(Trace::global().snapshot());
  const auto parsed = Json::parse(tree.dump(2));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->is_array());
  ASSERT_EQ(parsed->size(), 1u);
  const Json& root = parsed->items()[0];
  EXPECT_EQ(root.find("name")->as_string(), "root");
  ASSERT_NE(root.find("dur_s"), nullptr);
  EXPECT_GE(root.find("dur_s")->as_number(), 0.0);
  const Json* children = root.find("children");
  ASSERT_NE(children, nullptr);
  ASSERT_EQ(children->size(), 1u);
  EXPECT_EQ(children->items()[0].find("name")->as_string(), "child");
}

TEST_F(ObsTest, ChromeTraceExportIsWellFormed) {
  set_enabled(true);
  {
    ScopedSpan a("root");
    { ScopedSpan b("child"); }
  }
  const Json doc = trace_chrome_json(Trace::global().snapshot());
  const auto parsed = Json::parse(doc.dump());
  ASSERT_TRUE(parsed.has_value());
  const Json* events = parsed->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->size(), 2u);
  for (const Json& ev : events->items()) {
    EXPECT_EQ(ev.find("ph")->as_string(), "X");
    ASSERT_NE(ev.find("name"), nullptr);
    ASSERT_NE(ev.find("ts"), nullptr);
    ASSERT_NE(ev.find("dur"), nullptr);
    ASSERT_NE(ev.find("pid"), nullptr);
    ASSERT_NE(ev.find("tid"), nullptr);
    EXPECT_GE(ev.find("dur")->as_number(), 0.0);
  }
}

TEST_F(ObsTest, TextExportersContainSpanNames) {
  set_enabled(true);
  {
    ScopedSpan a("alpha");
    { ScopedSpan b("beta"); }
    { ScopedSpan c("beta"); }
  }
  const auto spans = Trace::global().snapshot();
  const std::string text = trace_text(spans);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("beta"), std::string::npos);
  const std::string summary = trace_summary(spans);
  // The two same-named siblings merge into one aggregated line.
  EXPECT_NE(summary.find("x2"), std::string::npos);
  EXPECT_EQ(summary.find("beta"), summary.rfind("beta"));
}

TEST_F(ObsTest, RegistryJsonExport) {
  Registry::instance().counter("a.count").add(3);
  Registry::instance().gauge("a.gauge").set(5);
  const auto parsed = Json::parse(Registry::instance().to_json().dump(2));
  ASSERT_TRUE(parsed.has_value());
  const Json* counters = parsed->find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->find("a.count")->as_number(), 3);
  const Json* gauges = parsed->find("gauges");
  ASSERT_NE(gauges, nullptr);
  const Json* g = gauges->find("a.gauge");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->find("value")->as_number(), 5);
  EXPECT_EQ(g->find("max")->as_number(), 5);
}

// ---------------------------------------------------------------------------
// Bench sink

TEST(ObsBenchJson, RecordsAndFlagStripping) {
  BenchJson sink("unit");
  Json& rec = sink.add_record("rd53", 0.5);
  rec["clbs"] = 6;
  EXPECT_EQ(sink.num_records(), 1u);

  const char* argv_raw[] = {"bench", "--quick", "--json", "out.json", "-v"};
  char* argv[5];
  for (int i = 0; i < 5; ++i) argv[i] = const_cast<char*>(argv_raw[i]);
  int argc = 5;
  const auto path = strip_json_flag(argc, argv);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, "out.json");
  ASSERT_EQ(argc, 3);
  EXPECT_STREQ(argv[1], "--quick");
  EXPECT_STREQ(argv[2], "-v");

  int argc2 = 3;
  EXPECT_FALSE(strip_json_flag(argc2, argv).has_value());
  EXPECT_EQ(argc2, 3);
}

}  // namespace
}  // namespace imodec::obs
