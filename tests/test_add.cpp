// Tests for the ADD layer used by the implicit Lmax step.

#include <gtest/gtest.h>

#include "bdd/add.hpp"
#include "bdd/bdd.hpp"
#include "util/rng.hpp"

namespace imodec {
namespace {

using bdd::AddManager;
using bdd::Bdd;
using bdd::Manager;

TEST(Add, TerminalsAreShared) {
  AddManager add(3);
  EXPECT_EQ(add.constant(5), add.constant(5));
  EXPECT_NE(add.constant(5), add.constant(6));
  EXPECT_TRUE(add.is_terminal(add.constant(0)));
  EXPECT_EQ(add.value_of(add.constant(-3)), -3);
}

TEST(Add, FromBddZeroOne) {
  Manager mgr(3);
  AddManager add(3);
  EXPECT_EQ(add.from_bdd(mgr, bdd::kFalse), add.constant(0));
  EXPECT_EQ(add.from_bdd(mgr, bdd::kTrue), add.constant(1));
  const Bdd x = Bdd::var(mgr, 1);
  const auto a = add.from_bdd(mgr, x.node());
  EXPECT_FALSE(add.is_terminal(a));
  EXPECT_EQ(add.var_of(a), 1u);
  EXPECT_EQ(add.lo(a), add.constant(0));
  EXPECT_EQ(add.hi(a), add.constant(1));
}

TEST(Add, PlusConstants) {
  AddManager add(2);
  const auto s = add.plus(add.constant(3), add.constant(4));
  EXPECT_EQ(add.value_of(s), 7);
}

TEST(Add, SumOfIndicatorsCountsCover) {
  // Sum of χ's evaluated via max path == maximum number of sets sharing a
  // point. Three functions over 2 vars: x0, x1, x0&x1 -> max sum 3 at (1,1).
  Manager mgr(2);
  AddManager add(2);
  const Bdd a = Bdd::var(mgr, 0), b = Bdd::var(mgr, 1);
  auto sum = add.constant(0);
  for (const Bdd& f : {a, b, a & b})
    sum = add.plus(sum, add.from_bdd(mgr, f.node()));
  EXPECT_EQ(add.max_value(sum), 3);
  std::vector<bool> assign;
  EXPECT_EQ(add.argmax(sum, assign), 3);
  EXPECT_TRUE(assign[0]);
  EXPECT_TRUE(assign[1]);
}

TEST(Add, PlusStressMatchesPointwiseSum) {
  // Enough indicator sums to force several unique-table rehashes and plus
  // cache growths; every intermediate stays exact. The reference model is
  // pointwise: the sum ADD at a point must equal the number of BDDs true
  // there.
  const unsigned n = 10;
  Manager mgr(n);
  AddManager add(n);
  Rng rng(0xADD5);
  std::vector<Bdd> fs;
  auto sum = add.constant(0);
  for (int i = 0; i < 40; ++i) {
    Bdd f = Bdd::zero(mgr);
    for (int c = 0; c < 6; ++c) {
      Bdd cube = Bdd::one(mgr);
      for (unsigned v = 0; v < n; ++v)
        if (rng.chance(1, 3)) cube = cube & Bdd::literal(mgr, v, rng.coin());
      f = f | cube;
    }
    fs.push_back(f);
    sum = add.plus(sum, add.from_bdd(mgr, f.node()));
  }
  EXPECT_GT(add.node_count(), 192u) << "stress never grew the tables";

  const auto eval_add = [&](AddManager::AddId g, const std::vector<bool>& a) {
    while (!add.is_terminal(g)) g = a[add.var_of(g)] ? add.hi(g) : add.lo(g);
    return add.value_of(g);
  };
  for (int p = 0; p < 200; ++p) {
    std::vector<bool> a(n);
    for (unsigned v = 0; v < n; ++v) a[v] = rng.coin();
    std::int64_t want = 0;
    for (const Bdd& f : fs) want += f.eval(a) ? 1 : 0;
    ASSERT_EQ(eval_add(sum, a), want) << "point " << p;
  }
}

TEST(Add, ArgmaxTiePrefersZeroBranch) {
  Manager mgr(2);
  AddManager add(2);
  // f = x0 | ~x0 = 1 everywhere: both branches tie; expect all-false path.
  auto one = add.from_bdd(mgr, bdd::kTrue);
  std::vector<bool> assign;
  EXPECT_EQ(add.argmax(one, assign), 1);
  EXPECT_FALSE(assign[0]);
  EXPECT_FALSE(assign[1]);
}

TEST(Add, ForeachAtValue) {
  Manager mgr(3);
  AddManager add(3);
  const Bdd a = Bdd::var(mgr, 0), b = Bdd::var(mgr, 1), c = Bdd::var(mgr, 2);
  auto sum = add.constant(0);
  for (const Bdd& f : {a, b, c})
    sum = add.plus(sum, add.from_bdd(mgr, f.node()));
  // Assignments where exactly two of three variables are true.
  int count = 0;
  add.foreach_at_value(sum, 2, {0, 1, 2},
                       [&](const std::vector<bool>& v) {
                         EXPECT_EQ(v[0] + v[1] + v[2], 2);
                         ++count;
                         return true;
                       });
  EXPECT_EQ(count, 3);
}

class AddSumProperty : public ::testing::TestWithParam<int> {};

TEST_P(AddSumProperty, MaxMatchesExhaustiveCount) {
  const unsigned n = 5;
  Manager mgr(n);
  AddManager add(n);
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337 + 5);

  // Random indicator functions as unions of random cubes.
  std::vector<Bdd> funcs;
  for (int k = 0; k < 6; ++k) {
    Bdd f = Bdd::zero(mgr);
    for (int cubes = 0; cubes < 3; ++cubes) {
      std::vector<unsigned> vars;
      std::vector<bool> phases;
      for (unsigned v = 0; v < n; ++v) {
        if (rng.coin()) continue;
        vars.push_back(v);
        phases.push_back(rng.coin());
      }
      f = f | Bdd::cube(mgr, vars, phases);
    }
    funcs.push_back(f);
  }
  auto sum = add.constant(0);
  for (const Bdd& f : funcs) sum = add.plus(sum, add.from_bdd(mgr, f.node()));

  // Exhaustive reference.
  int best = 0;
  std::vector<bool> a(n, false);
  for (std::uint64_t row = 0; row < (1u << n); ++row) {
    for (unsigned v = 0; v < n; ++v) a[v] = (row >> v) & 1;
    int cover = 0;
    for (const Bdd& f : funcs) cover += f.eval(a);
    best = std::max(best, cover);
  }
  EXPECT_EQ(add.max_value(sum), best);

  std::vector<bool> assign;
  EXPECT_EQ(add.argmax(sum, assign), best);
  int cover = 0;
  for (const Bdd& f : funcs) cover += f.eval(assign);
  EXPECT_EQ(cover, best);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AddSumProperty, ::testing::Range(0, 10));

}  // namespace
}  // namespace imodec
