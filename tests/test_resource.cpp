// Tests for resource governance (DESIGN.md §12): ResourceGuard units, the
// BDD manager's budget GC-retry ladder, the degradation ladder through the
// flow and driver, and the fault-injection hooks (when compiled in).

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "bdd/bdd.hpp"
#include "bdd/manager.hpp"
#include "circuits/registry.hpp"
#include "logic/simulate.hpp"
#include "map/driver.hpp"
#include "util/fault.hpp"
#include "util/resource.hpp"
#include "verify/miter.hpp"

namespace imodec {
namespace {

using util::ResourceExhausted;
using util::ResourceGuard;
using util::ResourceKind;
using util::Timeout;

TEST(ResourceGuard, DeadlineLatches) {
  ResourceGuard g;
  g.set_deadline_ms(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(g.poll_deadline());
  EXPECT_TRUE(g.deadline_expired());
  EXPECT_TRUE(g.should_stop());
  EXPECT_THROW(g.checkpoint(), Timeout);
  // Latched: disarming the deadline does not clear an observed expiry.
  g.set_deadline_ms(0);
  EXPECT_TRUE(g.deadline_expired());
}

TEST(ResourceGuard, RemainingMs) {
  ResourceGuard g;
  EXPECT_FALSE(g.remaining_ms().has_value());
  g.set_deadline_ms(60'000);
  const auto ms = g.remaining_ms();
  ASSERT_TRUE(ms.has_value());
  EXPECT_GT(*ms, 0u);
  EXPECT_LE(*ms, 60'000u);
  g.set_deadline_ms(0);
  EXPECT_FALSE(g.remaining_ms().has_value());
}

TEST(ResourceGuard, CancellationIsCooperative) {
  ResourceGuard g;
  EXPECT_NO_THROW(g.checkpoint());
  g.cancel();
  EXPECT_TRUE(g.should_stop());
  try {
    g.checkpoint();
    FAIL() << "checkpoint after cancel() must throw";
  } catch (const ResourceExhausted& e) {
    EXPECT_EQ(e.kind(), ResourceKind::cancelled);
  }
}

TEST(ResourceGuard, NodeAccounting) {
  ResourceGuard g;
  g.charge_nodes(10);
  g.charge_nodes(-4);
  g.charge_nodes(6);
  EXPECT_EQ(g.live_nodes(), 12);
  EXPECT_EQ(g.peak_live_nodes(), 12);
  g.charge_nodes(-12);
  EXPECT_EQ(g.live_nodes(), 0);
  EXPECT_EQ(g.peak_live_nodes(), 12);
}

/// A governed manager must survive a budget that GC can satisfy (dead nodes
/// are reclaimed and the operation retried) and throw a typed error with
/// kind bdd_nodes when the live set truly exceeds the budget.
TEST(ResourceGuard, ManagerBudgetGcRetry) {
  const unsigned n = 12;
  ResourceGuard g;
  g.set_node_budget(4000);
  bdd::Manager mgr(n);
  mgr.set_resource_guard(&g);

  // Lots of garbage, small live set: conjunction chains built pairwise leave
  // dead intermediates behind, which the recovery GC reclaims.
  bdd::Bdd acc = bdd::Bdd::one(mgr);
  for (unsigned v = 0; v < n; ++v) acc &= bdd::Bdd::var(mgr, v);
  for (unsigned v = 0; v < n; ++v)
    acc |= bdd::Bdd::var(mgr, v) ^ bdd::Bdd::var(mgr, (v + 1) % n);
  EXPECT_LE(mgr.live_node_count(), 4000u);
}

TEST(ResourceGuard, ManagerBudgetExhaustsTyped) {
  const unsigned n = 14;
  ResourceGuard g;
  g.set_node_budget(64);  // far below any useful live set
  bdd::Manager mgr(n);
  mgr.set_resource_guard(&g);
  try {
    // Keep everything referenced so GC cannot help.
    std::vector<bdd::Bdd> keep;
    bdd::Bdd acc = bdd::Bdd::zero(mgr);
    for (unsigned v = 0; v + 1 < n; ++v) {
      bdd::Bdd t = bdd::Bdd::var(mgr, v) ^ bdd::Bdd::var(mgr, v + 1);
      acc = acc | t;
      keep.push_back(std::move(t));
      keep.push_back(acc);
    }
    FAIL() << "budget of 64 nodes must trip";
  } catch (const ResourceExhausted& e) {
    EXPECT_EQ(e.kind(), ResourceKind::bdd_nodes);
  }
}

SynthesisConfig governed(std::size_t budget, std::uint64_t timeout_ms,
                         OnExhaustion policy) {
  SynthesisConfig cfg;
  cfg.threads = 1;
  cfg.node_budget = budget;
  cfg.timeout_ms = timeout_ms;
  cfg.on_exhaustion = policy;
  return cfg;
}

/// Tiny budget + fail policy: the typed error escapes run_synthesis. The
/// circuit must be multi-output so the flow reaches the BDD-backed engine
/// (single-output decomposition is truth-table based and allocates no
/// governed nodes).
TEST(Degrade, FailPolicyThrowsTyped) {
  const auto net = circuits::make_benchmark("5xp1");
  ASSERT_TRUE(net.has_value());
  Network mapped;
  EXPECT_THROW(
      run_synthesis(*net, governed(8, 0, OnExhaustion::fail), mapped),
      ResourceExhausted);
}

/// Same budget + degrade policy: a complete, equivalent network comes back
/// and the report says which rungs of the ladder were used.
TEST(Degrade, LadderProducesVerifiedNetwork) {
  const auto net = circuits::make_benchmark("5xp1");
  ASSERT_TRUE(net.has_value());
  Network mapped;
  const DriverReport rep =
      run_synthesis(*net, governed(8, 0, OnExhaustion::degrade), mapped);
  EXPECT_TRUE(rep.verified);
  EXPECT_TRUE(rep.degrade.degraded());
  EXPECT_GT(rep.degrade.engine_exhausted + rep.degrade.single_fallbacks +
                rep.degrade.shannon_degrades + rep.degrade.drained,
            0u);
  EXPECT_TRUE(check_equivalence(*net, mapped).equivalent);
}

/// §12.3: budget trips are per work unit, so a degraded run is bit-identical
/// at every execution width.
TEST(Degrade, BudgetDegradationIsThreadCountInvariant) {
  const auto net = circuits::make_benchmark("5xp1");
  ASSERT_TRUE(net.has_value());
  SynthesisConfig cfg = governed(2000, 0, OnExhaustion::degrade);
  Network serial, parallel;
  run_synthesis(*net, cfg, serial);
  cfg.threads = 8;
  run_synthesis(*net, cfg, parallel);
  EXPECT_TRUE(structurally_equal(serial, parallel));
}

/// An expired deadline in degrade mode still yields a complete verified
/// network (the drain path), promptly.
TEST(Degrade, ExpiredDeadlineStillCompletes) {
  const auto net = circuits::make_benchmark("alu4");
  ASSERT_TRUE(net.has_value());
  Network mapped;
  const DriverReport rep =
      run_synthesis(*net, governed(0, 1, OnExhaustion::degrade), mapped);
  EXPECT_EQ(mapped.num_outputs(), net->num_outputs());
  EXPECT_TRUE(rep.verified);
  // 1 ms against alu4 cannot finish cleanly; the report must say so.
  EXPECT_TRUE(rep.degrade.degraded());
  EXPECT_TRUE(check_equivalence(*net, mapped).equivalent);
}

TEST(Fault, CountOnlyPlanCountsSites) {
  if (!util::fault::enabled()) GTEST_SKIP() << "IMODEC_FAULT_INJECTION off";
  const auto net = circuits::make_benchmark("rd53");
  ASSERT_TRUE(net.has_value());
  util::fault::arm({util::fault::Kind::deadline, 0});
  Network mapped;
  run_synthesis(*net, governed(1u << 20, 0, OnExhaustion::degrade), mapped);
  EXPECT_GT(util::fault::checkpoint_points_seen(), 0u);
  EXPECT_FALSE(util::fault::fired());
  util::fault::disarm();
}

TEST(Fault, InjectedDeadlineDegradesCleanly) {
  if (!util::fault::enabled()) GTEST_SKIP() << "IMODEC_FAULT_INJECTION off";
  const auto net = circuits::make_benchmark("rd53");
  ASSERT_TRUE(net.has_value());
  util::fault::arm({util::fault::Kind::deadline, 1});
  Network mapped;
  const DriverReport rep =
      run_synthesis(*net, governed(1u << 20, 0, OnExhaustion::degrade),
                    mapped);
  EXPECT_TRUE(util::fault::fired());
  util::fault::disarm();
  EXPECT_TRUE(rep.verified);
  EXPECT_TRUE(check_equivalence(*net, mapped).equivalent);
}

}  // namespace
}  // namespace imodec
