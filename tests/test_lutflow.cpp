// Tests for the LUT decomposition flow: k-feasibility, functional
// equivalence with the source network, sharing gains of the multi-output
// mode, Shannon fallback, collapse, and restructuring.

#include <gtest/gtest.h>

#include "circuits/generators.hpp"
#include "circuits/registry.hpp"
#include "logic/simulate.hpp"
#include "map/lutflow.hpp"
#include "map/restructure.hpp"

namespace imodec {
namespace {

void expect_k_feasible(const Network& net, unsigned k) {
  for (SigId s = 0; s < net.node_count(); ++s) {
    const auto& n = net.node(s);
    if (n.kind == Network::Kind::Logic) {
      EXPECT_LE(n.fanins.size(), k) << "node " << s;
    }
  }
}

TEST(Collapse, Rd53BecomesThreeNodes) {
  const Network rd53 = circuits::make_rd(5, 3);
  const auto collapsed = collapse_network(rd53);
  ASSERT_TRUE(collapsed.has_value());
  EXPECT_EQ(collapsed->logic_count(), 3u);
  EXPECT_TRUE(check_equivalence(rd53, *collapsed).equivalent);
}

TEST(Collapse, FailsBeyondTruthTableLimit) {
  const Network rot = circuits::make_rot();  // 128-bit data cones
  EXPECT_FALSE(collapse_network(rot).has_value());
}

TEST(LutFlow, Rd53MultiOutputK4MatchesFig1) {
  // Fig. 1 b): multiple-output decomposition of rd53 with k = 4 implements
  // the circuit in 6 LUTs (3 shared d-functions + 3 g-functions); the
  // single-output version a) needs 11.
  const auto collapsed = collapse_network(circuits::make_rd(5, 3));
  ASSERT_TRUE(collapsed.has_value());

  FlowOptions multi;
  multi.k = 4;
  const FlowResult m = decompose_to_luts(*collapsed, multi);
  expect_k_feasible(m.network, 4);
  EXPECT_TRUE(check_equivalence(*collapsed, m.network).equivalent);

  FlowOptions single;
  single.k = 4;
  single.multi_output = false;
  const FlowResult s = decompose_to_luts(*collapsed, single);
  expect_k_feasible(s.network, 4);
  EXPECT_TRUE(check_equivalence(*collapsed, s.network).equivalent);

  EXPECT_LT(m.stats.luts, s.stats.luts);
  EXPECT_LE(m.stats.luts, 7u);  // paper achieves 6
  // The paper's Fig. 1 a) needs 11 LUTs; our single-output flow encodes
  // classes more compactly and lands at 8 — the shape (single > multi) is
  // what matters.
  EXPECT_GE(s.stats.luts, 8u);
}

TEST(LutFlow, NarrowNodesPassThrough) {
  Network net("narrow");
  const SigId a = net.add_input("a");
  const SigId b = net.add_input("b");
  TruthTable t(2);
  t.set(3, true);
  const SigId n = net.add_node({a, b}, t);
  net.add_output(n, "y");
  const FlowResult r = decompose_to_luts(net, {});
  EXPECT_EQ(r.stats.luts, 1u);
  EXPECT_EQ(r.stats.vectors, 0u);
  EXPECT_TRUE(check_equivalence(net, r.network).equivalent);
}

class LutFlowBenchmarks : public ::testing::TestWithParam<const char*> {};

TEST_P(LutFlowBenchmarks, EquivalentAndFeasible) {
  const auto net = circuits::make_benchmark(GetParam());
  ASSERT_TRUE(net.has_value());
  const auto collapsed = collapse_network(*net);
  ASSERT_TRUE(collapsed.has_value());
  const FlowResult r = decompose_to_luts(*collapsed, {});
  expect_k_feasible(r.network, 5);
  const auto eq = check_equivalence(*net, r.network);
  EXPECT_TRUE(eq.equivalent);
}

INSTANTIATE_TEST_SUITE_P(SmallCircuits, LutFlowBenchmarks,
                         ::testing::Values("rd53", "rd73", "rd84", "9sym",
                                           "z4ml", "5xp1", "f51m", "clip",
                                           "misex1", "sao2"));

TEST(LutFlow, MultiBeatsOrMatchesSingleOnSharedCircuits) {
  for (const char* name : {"rd73", "rd84", "z4ml", "f51m"}) {
    const auto collapsed =
        collapse_network(*circuits::make_benchmark(name));
    ASSERT_TRUE(collapsed.has_value()) << name;
    FlowOptions multi;
    const FlowResult m = decompose_to_luts(*collapsed, multi);
    FlowOptions single;
    single.multi_output = false;
    const FlowResult s = decompose_to_luts(*collapsed, single);
    EXPECT_LE(m.stats.luts, s.stats.luts) << name;
  }
}

TEST(LutFlow, RestructuredPathHandlesWideCircuits) {
  // rot cannot be collapsed; the restructured path must still produce an
  // equivalent 5-feasible network (the paper's r+ rows).
  const Network rot = circuits::make_rot();
  const Network pre = restructure(rot);
  EXPECT_TRUE(check_equivalence(rot, pre).equivalent);
  const FlowResult r = decompose_to_luts(pre, {});
  expect_k_feasible(r.network, 5);
  EXPECT_TRUE(check_equivalence(rot, r.network).equivalent);
}

TEST(Restructure, PreservesFunctionAndBoundsSupport) {
  const auto net = circuits::make_benchmark("C499");
  ASSERT_TRUE(net.has_value());
  RestructureOptions opts;
  opts.max_support = 10;
  const Network pre = restructure(*net, opts);
  EXPECT_LE(pre.max_fanin(), 10u);
  EXPECT_TRUE(check_equivalence(*net, pre).equivalent);
  // Elimination should shrink the node count substantially.
  EXPECT_LT(pre.logic_count(), net->logic_count());
}

TEST(LutFlow, StatsAreCoherent) {
  const auto collapsed = collapse_network(*circuits::make_benchmark("rd84"));
  ASSERT_TRUE(collapsed.has_value());
  const FlowResult r = decompose_to_luts(*collapsed, {});
  EXPECT_GT(r.stats.vectors, 0u);
  EXPECT_GE(r.stats.max_m, 1u);
  EXPECT_GE(r.stats.max_p, 1u);
  EXPECT_GT(r.stats.luts, 0u);
  EXPECT_EQ(r.stats.luts, decompose_to_luts(*collapsed, {}).stats.luts)
      << "flow must be deterministic";
}

}  // namespace
}  // namespace imodec
