// Tests for BLIF and PLA parsing / writing.

#include <gtest/gtest.h>

#include <sstream>

#include "logic/blif.hpp"
#include "logic/pla.hpp"
#include "logic/simulate.hpp"

namespace imodec {
namespace {

TEST(Blif, ParseSimpleModel) {
  std::istringstream in(R"(
# comment
.model test
.inputs a b c
.outputs y
.names a b t
11 1
.names t c y
1- 1
-1 1
.end
)");
  const Network net = read_blif(in);
  EXPECT_EQ(net.name(), "test");
  EXPECT_EQ(net.num_inputs(), 3u);
  EXPECT_EQ(net.num_outputs(), 1u);
  // y = (a & b) | c
  for (std::uint64_t row = 0; row < 8; ++row) {
    const bool a = row & 1, b = (row >> 1) & 1, c = (row >> 2) & 1;
    EXPECT_EQ(net.eval({a, b, c})[0], (a && b) || c);
  }
}

TEST(Blif, OffsetCover) {
  std::istringstream in(R"(
.model t
.inputs a b
.outputs y
.names a b y
00 0
01 0
.end
)");
  const Network net = read_blif(in);
  // Offset cover: y = 0 iff a==0; so y = a.
  for (std::uint64_t row = 0; row < 4; ++row) {
    const bool a = row & 1, b = (row >> 1) & 1;
    EXPECT_EQ(net.eval({a, b})[0], a) << a << b;
  }
}

TEST(Blif, ConstantNodes) {
  std::istringstream in(R"(
.model t
.inputs a
.outputs one zero
.names one
1
.names zero
.end
)");
  const Network net = read_blif(in);
  const auto out = net.eval({false});
  EXPECT_TRUE(out[0]);
  EXPECT_FALSE(out[1]);
}

TEST(Blif, OutOfOrderDefinitions) {
  std::istringstream in(R"(
.model t
.inputs a b
.outputs y
.names t1 t2 y
11 1
.names a b t1
10 1
.names a b t2
01 1
.end
)");
  const Network net = read_blif(in);
  EXPECT_FALSE(net.eval({true, false})[0]);   // t1=1, t2=0
  EXPECT_FALSE(net.eval({false, true})[0]);   // t1=0, t2=1
}

TEST(Blif, Continuations) {
  std::istringstream in(".model t\n.inputs \\\na b\n.outputs y\n"
                        ".names a b y\n11 1\n.end\n");
  const Network net = read_blif(in);
  EXPECT_EQ(net.num_inputs(), 2u);
}

TEST(Blif, RejectsLatches) {
  std::istringstream in(".model t\n.inputs a\n.outputs y\n.latch a y 0\n.end\n");
  EXPECT_THROW(read_blif(in), BlifError);
}

TEST(Blif, RejectsUndefinedSignal) {
  std::istringstream in(".model t\n.inputs a\n.outputs y\n"
                        ".names a ghost y\n11 1\n.end\n");
  EXPECT_THROW(read_blif(in), BlifError);
}

TEST(Blif, RejectsCycle) {
  std::istringstream in(R"(
.model t
.inputs a
.outputs y
.names a u y
11 1
.names y v
1 1
.names v u
1 1
.end
)");
  EXPECT_THROW(read_blif(in), BlifError);
}

TEST(Blif, WriteReadRoundTrip) {
  std::istringstream in(R"(
.model rt
.inputs a b c d
.outputs y z
.names a b t
01 1
10 1
.names t c d y
1-0 1
-11 1
.names t z
0 1
.end
)");
  const Network original = read_blif(in);
  std::ostringstream out;
  write_blif(out, original);
  std::istringstream back(out.str());
  const Network reparsed = read_blif(back);
  const auto res = check_equivalence(original, reparsed);
  EXPECT_TRUE(res.equivalent) << out.str();
  EXPECT_TRUE(res.exhaustive);
}

TEST(Pla, ParseMultiOutput) {
  std::istringstream in(R"(
.i 3
.o 2
.ilb a b c
.ob f g
.p 3
1-0 10
-11 11
000 01
.e
)");
  const Network net = read_pla(in);
  EXPECT_EQ(net.num_inputs(), 3u);
  EXPECT_EQ(net.num_outputs(), 2u);
  // f = a~c | bc ; g = bc | ~a~b~c
  for (std::uint64_t row = 0; row < 8; ++row) {
    const bool a = row & 1, b = (row >> 1) & 1, c = (row >> 2) & 1;
    const auto out = net.eval({a, b, c});
    EXPECT_EQ(out[0], (a && !c) || (b && c));
    EXPECT_EQ(out[1], (b && c) || (!a && !b && !c));
  }
}

TEST(Pla, DefaultNames) {
  std::istringstream in(".i 2\n.o 1\n11 1\n.e\n");
  const Network net = read_pla(in);
  EXPECT_NE(net.find("in0"), kInvalidSig);
  EXPECT_EQ(net.output_names()[0], "out0");
}

TEST(Pla, RejectsMissingHeader) {
  std::istringstream in("11 1\n");
  EXPECT_THROW(read_pla(in), PlaError);
}

TEST(Pla, RejectsWidthMismatch) {
  std::istringstream in(".i 3\n.o 1\n11 1\n.e\n");
  EXPECT_THROW(read_pla(in), PlaError);
}

// --- Malformed-input hardening ---------------------------------------------
// Every reject path must throw a ParseError subtype whose what() names the
// offending 1-based line (line() == 0 only for whole-file errors that are
// not attributable to a single line).

/// Parse `text`, expect an E, and return it for line()/what() checks.
template <typename E, typename Fn>
E expect_parse_error(const std::string& text, Fn parse) {
  std::istringstream in(text);
  try {
    parse(in);
  } catch (const E& e) {
    return e;
  } catch (const std::exception& e) {
    ADD_FAILURE() << "wrong exception type: " << e.what();
    return E("unreachable");
  }
  ADD_FAILURE() << "no exception for:\n" << text;
  return E("unreachable");
}

PlaError pla_error(const std::string& text) {
  return expect_parse_error<PlaError>(
      text, [](std::istream& in) { read_pla(in); });
}

BlifError blif_error(const std::string& text) {
  return expect_parse_error<BlifError>(
      text, [](std::istream& in) { read_blif(in); });
}

TEST(PlaMalformed, DirectiveWithoutCount) {
  const PlaError e = pla_error(".i\n");
  EXPECT_EQ(e.line(), 1u);
  EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos);
  EXPECT_NE(std::string(e.what()).find(".i"), std::string::npos);
}

TEST(PlaMalformed, NonNumericCount) {
  const PlaError e = pla_error(".i 2\n.o x\n");
  EXPECT_EQ(e.line(), 2u);
  EXPECT_NE(std::string(e.what()).find("'x'"), std::string::npos);
}

TEST(PlaMalformed, TrailingGarbageInCount) {
  const PlaError e = pla_error(".i 2z\n.o 1\n11 1\n.e\n");
  EXPECT_EQ(e.line(), 1u);
}

TEST(PlaMalformed, ZeroCount) {
  const PlaError e = pla_error(".i 0\n.o 1\n.e\n");
  EXPECT_EQ(e.line(), 1u);
  EXPECT_NE(std::string(e.what()).find("out of range"), std::string::npos);
}

TEST(PlaMalformed, HugeCount) {
  const PlaError e = pla_error(".i 2\n.o 99999999\n.e\n");
  EXPECT_EQ(e.line(), 2u);
}

TEST(PlaMalformed, UnsupportedDirective) {
  const PlaError e = pla_error(".i 2\n.o 1\n.phase 10\n11 1\n.e\n");
  EXPECT_EQ(e.line(), 3u);
  EXPECT_NE(std::string(e.what()).find(".phase"), std::string::npos);
}

TEST(PlaMalformed, RowWithTooManyFields) {
  const PlaError e = pla_error(".i 2\n.o 1\n11 1 extra\n.e\n");
  EXPECT_EQ(e.line(), 3u);
}

TEST(PlaMalformed, MissingHeaderHasNoLine) {
  const PlaError e = pla_error("# only a comment\n");
  EXPECT_EQ(e.line(), 0u);
  EXPECT_NE(std::string(e.what()).find(".i/.o"), std::string::npos);
}

TEST(PlaMalformed, TooManyInputs) {
  const PlaError e = pla_error(".i 23\n.o 1\n.e\n");
  EXPECT_EQ(e.line(), 0u);
  EXPECT_NE(std::string(e.what()).find("23"), std::string::npos);
}

TEST(PlaMalformed, IlbArityMismatch) {
  const PlaError e = pla_error(".i 3\n.o 1\n.ilb a b\n111 1\n.e\n");
  EXPECT_EQ(e.line(), 0u);
}

TEST(PlaMalformed, RowWidthMismatchCitesRow) {
  const PlaError e = pla_error(".i 3\n.o 1\n111 1\n11 1\n.e\n");
  EXPECT_EQ(e.line(), 4u);
  EXPECT_NE(std::string(e.what()).find("3+1"), std::string::npos);
}

TEST(PlaMalformed, BadInputCharacter) {
  const PlaError e = pla_error(".i 2\n.o 1\n1x 1\n.e\n");
  EXPECT_EQ(e.line(), 3u);
  EXPECT_NE(std::string(e.what()).find("'x'"), std::string::npos);
}

TEST(PlaMalformed, BadOutputCharacter) {
  const PlaError e = pla_error(".i 2\n.o 1\n11 -\n.e\n");
  EXPECT_EQ(e.line(), 3u);
  EXPECT_NE(std::string(e.what()).find("'-'"), std::string::npos);
}

TEST(BlifMalformed, NamesWithoutOutput) {
  const BlifError e = blif_error(".model t\n.inputs a\n.outputs y\n.names\n");
  EXPECT_EQ(e.line(), 4u);
}

TEST(BlifMalformed, CoverRowOutsideNames) {
  const BlifError e = blif_error(".model t\n.inputs a\n.outputs y\n11 1\n");
  EXPECT_EQ(e.line(), 4u);
  EXPECT_NE(std::string(e.what()).find("outside .names"), std::string::npos);
}

TEST(BlifMalformed, BadConstantRow) {
  const BlifError e = blif_error(
      ".model t\n.inputs a\n.outputs y\n.names y\n2\n.end\n");
  EXPECT_EQ(e.line(), 5u);
}

TEST(BlifMalformed, BadCoverRowShape) {
  const BlifError e = blif_error(
      ".model t\n.inputs a b\n.outputs y\n.names a b y\n1 1 1\n.end\n");
  EXPECT_EQ(e.line(), 5u);
}

TEST(BlifMalformed, LatchCitesLine) {
  const BlifError e = blif_error(
      ".model t\n.inputs a\n.outputs y\n.latch a y 0\n.end\n");
  EXPECT_EQ(e.line(), 4u);
  EXPECT_NE(std::string(e.what()).find(".latch"), std::string::npos);
}

TEST(BlifMalformed, SubcktRejected) {
  const BlifError e = blif_error(
      ".model t\n.inputs a\n.outputs y\n.subckt sub x=a y=y\n.end\n");
  EXPECT_EQ(e.line(), 4u);
}

TEST(BlifMalformed, TooManyFanins) {
  std::string text = ".model t\n.inputs";
  for (unsigned v = 0; v < TruthTable::kMaxVars + 1; ++v)
    text += " i" + std::to_string(v);
  text += "\n.outputs y\n.names";
  for (unsigned v = 0; v < TruthTable::kMaxVars + 1; ++v)
    text += " i" + std::to_string(v);
  text += " y\n.end\n";
  const BlifError e = blif_error(text);
  EXPECT_EQ(e.line(), 4u);  // the .names directive line
  EXPECT_NE(std::string(e.what()).find("too many fanins"), std::string::npos);
}

TEST(BlifMalformed, CubeWidthMismatchCitesRow) {
  const BlifError e = blif_error(
      ".model t\n.inputs a b\n.outputs y\n.names a b y\n1 1\n.end\n");
  EXPECT_EQ(e.line(), 5u);
  EXPECT_NE(std::string(e.what()).find("expected 2 columns"),
            std::string::npos);
}

TEST(BlifMalformed, MixedPolarityCover) {
  const BlifError e = blif_error(
      ".model t\n.inputs a b\n.outputs y\n.names a b y\n11 1\n00 0\n.end\n");
  EXPECT_EQ(e.line(), 6u);
  EXPECT_NE(std::string(e.what()).find("mixed-polarity"), std::string::npos);
}

TEST(BlifMalformed, BadCubeCharacter) {
  const BlifError e = blif_error(
      ".model t\n.inputs a b\n.outputs y\n.names a b y\n1? 1\n.end\n");
  EXPECT_EQ(e.line(), 5u);
  EXPECT_NE(std::string(e.what()).find("'?'"), std::string::npos);
}

TEST(BlifMalformed, NodeDefinedTwice) {
  const BlifError e = blif_error(
      ".model t\n.inputs a b\n.outputs y\n.names a y\n1 1\n"
      ".names b y\n1 1\n.end\n");
  EXPECT_EQ(e.line(), 6u);  // the second .names directive
  EXPECT_NE(std::string(e.what()).find("defined twice"), std::string::npos);
}

TEST(BlifMalformed, UndefinedSignalHasNoLine) {
  const BlifError e = blif_error(
      ".model t\n.inputs a\n.outputs y\n.names a ghost y\n11 1\n.end\n");
  EXPECT_EQ(e.line(), 0u);
  EXPECT_NE(std::string(e.what()).find("ghost"), std::string::npos);
}

TEST(BlifMalformed, CycleHasNoLine) {
  const BlifError e = blif_error(
      ".model t\n.inputs a\n.outputs y\n.names a u y\n11 1\n"
      ".names y v\n1 1\n.names v u\n1 1\n.end\n");
  EXPECT_EQ(e.line(), 0u);
  EXPECT_NE(std::string(e.what()).find("cycle"), std::string::npos);
}

TEST(Malformed, ErrorsAreCatchableAsParseError) {
  // The CLI maps any ParseError to exit code 3; both readers must stay
  // catchable through the shared base.
  std::istringstream pla(".i\n");
  EXPECT_THROW(read_pla(pla), ParseError);
  std::istringstream blif(".model t\n.inputs a\n.outputs y\n11 1\n");
  EXPECT_THROW(read_blif(blif), ParseError);
}

TEST(Pla, BlifRoundTripOfPla) {
  std::istringstream in(R"(
.i 4
.o 2
1--0 10
-11- 01
0--1 11
.e
)");
  const Network net = read_pla(in);
  std::ostringstream blif;
  write_blif(blif, net);
  std::istringstream back(blif.str());
  const Network reparsed = read_blif(back);
  EXPECT_TRUE(check_equivalence(net, reparsed).equivalent);
}

}  // namespace
}  // namespace imodec
