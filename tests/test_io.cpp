// Tests for BLIF and PLA parsing / writing.

#include <gtest/gtest.h>

#include <sstream>

#include "logic/blif.hpp"
#include "logic/pla.hpp"
#include "logic/simulate.hpp"

namespace imodec {
namespace {

TEST(Blif, ParseSimpleModel) {
  std::istringstream in(R"(
# comment
.model test
.inputs a b c
.outputs y
.names a b t
11 1
.names t c y
1- 1
-1 1
.end
)");
  const Network net = read_blif(in);
  EXPECT_EQ(net.name(), "test");
  EXPECT_EQ(net.num_inputs(), 3u);
  EXPECT_EQ(net.num_outputs(), 1u);
  // y = (a & b) | c
  for (std::uint64_t row = 0; row < 8; ++row) {
    const bool a = row & 1, b = (row >> 1) & 1, c = (row >> 2) & 1;
    EXPECT_EQ(net.eval({a, b, c})[0], (a && b) || c);
  }
}

TEST(Blif, OffsetCover) {
  std::istringstream in(R"(
.model t
.inputs a b
.outputs y
.names a b y
00 0
01 0
.end
)");
  const Network net = read_blif(in);
  // Offset cover: y = 0 iff a==0; so y = a.
  for (std::uint64_t row = 0; row < 4; ++row) {
    const bool a = row & 1, b = (row >> 1) & 1;
    EXPECT_EQ(net.eval({a, b})[0], a) << a << b;
  }
}

TEST(Blif, ConstantNodes) {
  std::istringstream in(R"(
.model t
.inputs a
.outputs one zero
.names one
1
.names zero
.end
)");
  const Network net = read_blif(in);
  const auto out = net.eval({false});
  EXPECT_TRUE(out[0]);
  EXPECT_FALSE(out[1]);
}

TEST(Blif, OutOfOrderDefinitions) {
  std::istringstream in(R"(
.model t
.inputs a b
.outputs y
.names t1 t2 y
11 1
.names a b t1
10 1
.names a b t2
01 1
.end
)");
  const Network net = read_blif(in);
  EXPECT_FALSE(net.eval({true, false})[0]);   // t1=1, t2=0
  EXPECT_FALSE(net.eval({false, true})[0]);   // t1=0, t2=1
}

TEST(Blif, Continuations) {
  std::istringstream in(".model t\n.inputs \\\na b\n.outputs y\n"
                        ".names a b y\n11 1\n.end\n");
  const Network net = read_blif(in);
  EXPECT_EQ(net.num_inputs(), 2u);
}

TEST(Blif, RejectsLatches) {
  std::istringstream in(".model t\n.inputs a\n.outputs y\n.latch a y 0\n.end\n");
  EXPECT_THROW(read_blif(in), BlifError);
}

TEST(Blif, RejectsUndefinedSignal) {
  std::istringstream in(".model t\n.inputs a\n.outputs y\n"
                        ".names a ghost y\n11 1\n.end\n");
  EXPECT_THROW(read_blif(in), BlifError);
}

TEST(Blif, RejectsCycle) {
  std::istringstream in(R"(
.model t
.inputs a
.outputs y
.names a u y
11 1
.names y v
1 1
.names v u
1 1
.end
)");
  EXPECT_THROW(read_blif(in), BlifError);
}

TEST(Blif, WriteReadRoundTrip) {
  std::istringstream in(R"(
.model rt
.inputs a b c d
.outputs y z
.names a b t
01 1
10 1
.names t c d y
1-0 1
-11 1
.names t z
0 1
.end
)");
  const Network original = read_blif(in);
  std::ostringstream out;
  write_blif(out, original);
  std::istringstream back(out.str());
  const Network reparsed = read_blif(back);
  const auto res = check_equivalence(original, reparsed);
  EXPECT_TRUE(res.equivalent) << out.str();
  EXPECT_TRUE(res.exhaustive);
}

TEST(Pla, ParseMultiOutput) {
  std::istringstream in(R"(
.i 3
.o 2
.ilb a b c
.ob f g
.p 3
1-0 10
-11 11
000 01
.e
)");
  const Network net = read_pla(in);
  EXPECT_EQ(net.num_inputs(), 3u);
  EXPECT_EQ(net.num_outputs(), 2u);
  // f = a~c | bc ; g = bc | ~a~b~c
  for (std::uint64_t row = 0; row < 8; ++row) {
    const bool a = row & 1, b = (row >> 1) & 1, c = (row >> 2) & 1;
    const auto out = net.eval({a, b, c});
    EXPECT_EQ(out[0], (a && !c) || (b && c));
    EXPECT_EQ(out[1], (b && c) || (!a && !b && !c));
  }
}

TEST(Pla, DefaultNames) {
  std::istringstream in(".i 2\n.o 1\n11 1\n.e\n");
  const Network net = read_pla(in);
  EXPECT_NE(net.find("in0"), kInvalidSig);
  EXPECT_EQ(net.output_names()[0], "out0");
}

TEST(Pla, RejectsMissingHeader) {
  std::istringstream in("11 1\n");
  EXPECT_THROW(read_pla(in), PlaError);
}

TEST(Pla, RejectsWidthMismatch) {
  std::istringstream in(".i 3\n.o 1\n11 1\n.e\n");
  EXPECT_THROW(read_pla(in), PlaError);
}

TEST(Pla, BlifRoundTripOfPla) {
  std::istringstream in(R"(
.i 4
.o 2
1--0 10
-11- 01
0--1 11
.e
)");
  const Network net = read_pla(in);
  std::ostringstream blif;
  write_blif(blif, net);
  std::istringstream back(blif.str());
  const Network reparsed = read_blif(back);
  EXPECT_TRUE(check_equivalence(net, reparsed).equivalent);
}

}  // namespace
}  // namespace imodec
