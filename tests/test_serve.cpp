// Serving-layer tests (ctest -L serve): NPN canonicalization and its
// inverse-transform algebra, the bounded result cache, warm-resource
// invariants (Manager::reset, ManagerPool), the per-request session boundary
// (warm-vs-fresh bit identity, watermark reset), and the imodec_served wire
// schema (src/map/serve.hpp). DESIGN.md §14.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bdd/manager.hpp"
#include "bdd/manager_pool.hpp"
#include "circuits/registry.hpp"
#include "decomp/single.hpp"
#include "decomp/varpart.hpp"
#include "logic/network.hpp"
#include "map/errors.hpp"
#include "map/npn_cache.hpp"
#include "map/serve.hpp"
#include "map/session.hpp"
#include "obs/metrics.hpp"

namespace imodec {
namespace {

/// Deterministic pseudo-random truth table (splitmix64 over the rows).
TruthTable random_table(unsigned num_vars, std::uint64_t seed) {
  TruthTable t(num_vars);
  std::uint64_t x = seed + 0x9e3779b97f4a7c15ull;
  for (std::uint64_t row = 0; row < t.num_rows(); ++row) {
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    t.set(row, ((z ^ (z >> 31)) & 1) != 0);
  }
  return t;
}

// --- NPN transform algebra --------------------------------------------------

TEST(NpnTransform, ApplyIsTheForwardOracle) {
  for (unsigned n = 1; n <= 7; ++n) {
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
      const TruthTable f = random_table(n, seed * 131 + n);
      const NpnCanonical canon = npn_canonicalize(f);
      EXPECT_EQ(npn_apply(f, canon.transform), canon.table)
          << "n=" << n << " seed=" << seed;
      ASSERT_EQ(canon.transform.perm.size(), n);
      ASSERT_EQ(canon.transform.input_flip.size(), n);
    }
  }
}

TEST(NpnTransform, SimpleVariantsShareOneClass) {
  // f = (x0 & x1) | x2: asymmetric influence, so phase/perm rules are
  // tie-free except between the symmetric pair x0/x1.
  TruthTable f(3);
  for (std::uint64_t r = 0; r < 8; ++r)
    f.set(r, ((r & 1) && (r & 2)) || (r & 4));
  const TruthTable canon = npn_canonicalize(f).table;

  // (Output complement may land in a different semi-canonical class: input
  // phases are normalized before the output phase, and complementing f
  // flips every cofactor-weight comparison. Splits cost hit rate only.)
  for (unsigned v = 0; v < 3; ++v)
    EXPECT_EQ(npn_canonicalize(npn_flip_input(f, v)).table, canon)
        << "input flip x" << v;
  EXPECT_EQ(npn_canonicalize(f.permute({2, 1, 0})).table, canon)
      << "variable swap";
}

/// A 6-var function decomposable by construction: f = h(d(x0..x2), x3..x5)
/// with random d and h, so the bound set {0,1,2} has at most two classes.
TruthTable decomposable_table(std::uint64_t seed) {
  const TruthTable d = random_table(3, seed * 3 + 1);
  const TruthTable h = random_table(4, seed * 3 + 2);
  TruthTable f(6);
  for (std::uint64_t row = 0; row < 64; ++row) {
    const std::uint64_t code = d.get(row & 7) ? 1 : 0;
    f.set(row, h.get(code | ((row >> 3) << 1)));
  }
  return f;
}

TEST(NpnTransform, InverseDecompositionRecomposesTheOriginal) {
  int decomposed = 0;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const TruthTable f = decomposable_table(0xd00d + seed);
    const NpnCanonical canon = npn_canonicalize(f);

    VarPartOptions vopts;
    vopts.bound_size = 3;
    const auto choice = choose_bound_set({canon.table}, 6, vopts);
    if (!choice) continue;  // degenerate d/h draw
    ++decomposed;
    const Decomposition canonical_dec =
        decompose_single_output(canon.table, choice->vp);
    ASSERT_EQ(recompose(canonical_dec, 0, 6), canon.table);

    const Decomposition original_dec =
        npn_inverse_decomposition(canonical_dec, canon.transform);
    EXPECT_EQ(recompose(original_dec, 0, 6), f) << "seed=" << seed;
  }
  EXPECT_GT(decomposed, 6) << "property barely exercised";
}

// --- Bounded LRU cache ------------------------------------------------------

TEST(NpnCacheTest, HitMissAndEvictionCounters) {
  NpnCacheOptions opts;
  opts.max_entries = 2;
  NpnCache cache(opts);

  const std::vector<TruthTable> a{random_table(4, 1)};
  const std::vector<TruthTable> b{random_table(4, 2)};
  const std::vector<TruthTable> c{random_table(4, 3)};

  EXPECT_FALSE(cache.lookup(7, a));
  NpnCache::Entry e;
  e.cost = 5;
  cache.store(7, a, e);
  const auto hit = cache.lookup(7, a);
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->cost, 5u);
  // Same key under a different fingerprint is a different entry.
  EXPECT_FALSE(cache.lookup(8, a));

  cache.store(7, b, e);  // a refreshed by the hit above: lru order b, a
  cache.store(7, c, e);  // capacity 2: evicts the least recent (a)
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.lookup(7, a)) << "evicted entry served";
  EXPECT_TRUE(cache.lookup(7, b));
  EXPECT_TRUE(cache.lookup(7, c));

  const NpnCache::Stats st = cache.stats();
  EXPECT_EQ(st.hits, 3u);
  EXPECT_EQ(st.misses, 3u);
  EXPECT_EQ(st.evictions, 1u);

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(NpnCacheTest, VectorKeysAndSaltsDoNotCollide) {
  NpnCache cache;
  const TruthTable t = random_table(4, 9);
  NpnCache::Entry e;
  e.cost = 1;
  cache.store(1, {t}, e);
  // Same table twice is a different (vector) key than once.
  EXPECT_FALSE(cache.lookup(1, {t, t}));
  // The salted fingerprints keep entry families apart.
  EXPECT_FALSE(cache.lookup(npn_salt(1, kNpnCostSalt), {t}));
  EXPECT_FALSE(cache.lookup(npn_salt(1, kNpnTrialSalt), {t}));
  EXPECT_TRUE(cache.lookup(1, {t}));
}

TEST(NpnCacheTest, CachedDecomposeHitReplaysTheMiss) {
  NpnCache cache;
  const TruthTable f = decomposable_table(0xbeef);

  int calls = 0;
  const auto decompose_canonical = [&](const TruthTable& canon) {
    ++calls;
    NpnCache::Entry ent;
    VarPartOptions vopts;
    vopts.bound_size = 3;
    const auto choice = choose_bound_set({canon}, canon.num_vars(), vopts);
    if (!choice) {
      ent.error = DecomposeError::no_nontrivial_bound_set;
      return ent;
    }
    ent.dec = decompose_single_output(canon, choice->vp);
    return ent;
  };

  const NpnCache::Entry first =
      npn_cached_decompose(cache, 42, f, decompose_canonical,
                           /*verify_hits=*/true);
  ASSERT_EQ(calls, 1);
  const NpnCache::Entry second =
      npn_cached_decompose(cache, 42, f, decompose_canonical,
                           /*verify_hits=*/true);
  EXPECT_EQ(calls, 1) << "hit went back to the decomposer";

  ASSERT_TRUE(first.dec && second.dec);
  // Bit-identity: the served decomposition equals the one the populating
  // miss returned, and both recompose to the original function.
  EXPECT_EQ(recompose(*first.dec, 0, 6), f);
  EXPECT_EQ(recompose(*second.dec, 0, 6), f);
  EXPECT_EQ(second.dec->d_funcs, first.dec->d_funcs);

  const NpnCache::Stats st = cache.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.verify_failures, 0u);
}

// --- Warm resources ---------------------------------------------------------

TEST(ManagerResetTest, ResetManagerIsObservationallyFresh) {
  bdd::Manager warm(4);
  // Grow some state worth forgetting.
  bdd::NodeId acc = warm.one();
  for (unsigned v = 0; v < 4; ++v) acc = warm.apply_and(acc, warm.var(v));
  const std::size_t grown = warm.live_node_count();
  EXPECT_GT(grown, 1u);

  warm.reset(5);
  bdd::Manager fresh(5);
  EXPECT_EQ(warm.num_vars(), 5u);
  EXPECT_EQ(warm.live_node_count(), fresh.live_node_count());
  // Same construction sequence yields the same node ids — a reset manager
  // is indistinguishable from a newly built one.
  const bdd::NodeId warm_node = warm.apply_and(warm.var(1), warm.var(3));
  const bdd::NodeId fresh_node = fresh.apply_and(fresh.var(1), fresh.var(3));
  EXPECT_EQ(warm_node, fresh_node);
}

TEST(ManagerPoolTest, RetiredManagersAreReused) {
  bdd::ManagerPool pool;
  EXPECT_EQ(pool.reuses(), 0u);
  { bdd::ManagerPool::Lease lease = pool.acquire(6); }
  EXPECT_EQ(pool.creates(), 1u);
  {
    bdd::ManagerPool::Lease lease = pool.acquire(8);  // recycled, re-sized
    EXPECT_EQ(lease->num_vars(), 8u);
  }
  EXPECT_EQ(pool.creates(), 1u);
  EXPECT_EQ(pool.reuses(), 1u);
}

// --- Session boundary -------------------------------------------------------

SynthesisConfig serving_config() {
  SynthesisConfig cfg;
  cfg.threads = 1;
  cfg.result_cache = true;
  return cfg;
}

Network run_fresh(const std::string& name, const SynthesisConfig& cfg) {
  SynthesisSession session(cfg);
  Network mapped;
  const Network input = *circuits::make_benchmark(name);
  session.run(input, mapped);
  return mapped;
}

TEST(SessionTest, WarmRunsAreBitIdenticalToFreshProcesses) {
  const SynthesisConfig cfg = serving_config();
  SynthesisSession warm(cfg);
  // A warm session with history (and a populated cache) must produce the
  // same network a fresh session produces on its very first request.
  const std::vector<std::string> sequence = {"rd53", "misex1", "9sym",
                                             "rd53", "9sym"};
  for (const std::string& name : sequence) {
    Network warm_mapped;
    warm.run(*circuits::make_benchmark(name), warm_mapped);
    EXPECT_TRUE(structurally_equal(warm_mapped, run_fresh(name, cfg)))
        << name << " diverged in the warm session";
  }
}

TEST(SessionTest, DegradedRunsStayBitIdenticalToo) {
  SynthesisConfig cfg = serving_config();
  cfg.node_budget = 2000;
  cfg.on_exhaustion = OnExhaustion::degrade;
  SynthesisSession warm(cfg);
  for (int round = 0; round < 2; ++round) {
    Network warm_mapped;
    const DriverReport rep =
        warm.run(*circuits::make_benchmark("rd73"), warm_mapped);
    EXPECT_TRUE(rep.verified);
    EXPECT_TRUE(structurally_equal(warm_mapped, run_fresh("rd73", cfg)))
        << "round " << round;
  }
}

TEST(SessionTest, GaugeWatermarksResetAtTheRequestBoundary) {
  obs::set_enabled(true);
  SynthesisSession session(serving_config());
  Network mapped;
  session.run(*circuits::make_benchmark("5xp1"), mapped);
  const std::int64_t big_peak =
      obs::Registry::instance().gauge("bdd.peak_live_nodes").max();
  EXPECT_GT(big_peak, 0);
  session.run(*circuits::make_benchmark("rd53"), mapped);
  const std::int64_t small_peak =
      obs::Registry::instance().gauge("bdd.peak_live_nodes").max();
  EXPECT_LT(small_peak, big_peak)
      << "previous request's watermark leaked into this one";
}

TEST(SessionTest, ResultCacheCountersAdvanceAcrossRequests) {
  SynthesisSession session(serving_config());
  ASSERT_NE(session.result_cache(), nullptr);
  Network mapped;
  session.run(*circuits::make_benchmark("misex1"), mapped);
  const NpnCache::Stats after_first = session.result_cache()->stats();
  EXPECT_GT(after_first.misses, 0u);
  session.run(*circuits::make_benchmark("misex1"), mapped);
  const NpnCache::Stats after_second = session.result_cache()->stats();
  EXPECT_GT(after_second.hits, after_first.hits)
      << "repeated request did not hit the warm cache";
  EXPECT_EQ(after_second.verify_failures, 0u);
}

TEST(SessionTest, RunCheckedSpeaksTheSharedErrorSurface) {
  SynthesisSession session(serving_config());
  Network mapped;
  const Network input = *circuits::make_benchmark("rd53");

  SynthesisConfig ok_cfg = serving_config();
  EXPECT_EQ(session.run_checked(input, ok_cfg, mapped).code, ErrorCode::ok);

  SynthesisConfig bad_cfg = serving_config();
  bad_cfg.k = 0;  // fails SynthesisConfig::validate()
  const SynthesisSession::Outcome bad =
      session.run_checked(input, bad_cfg, mapped);
  EXPECT_EQ(bad.code, ErrorCode::usage);
  EXPECT_FALSE(bad.message.empty());

  // result_cache off for this request: a cache hit would (correctly) skip
  // the engine and never charge the node budget. 5xp1 is multi-output, so
  // the flow reaches the BDD-backed engine and trips the budget.
  SynthesisConfig tight_cfg = serving_config();
  tight_cfg.result_cache = false;
  tight_cfg.node_budget = 64;
  tight_cfg.on_exhaustion = OnExhaustion::fail;
  const SynthesisSession::Outcome tight = session.run_checked(
      *circuits::make_benchmark("5xp1"), tight_cfg, mapped);
  EXPECT_EQ(tight.code, ErrorCode::resource);
}

// --- Error codes ------------------------------------------------------------

TEST(ErrorCodeTest, SpellingAndExitCodeRoundTrip) {
  for (int i = 0; i < kNumErrorCodes; ++i) {
    const auto code = static_cast<ErrorCode>(i);
    EXPECT_EQ(exit_code(code), i);
    const auto parsed = parse_error_code(to_string(code));
    ASSERT_TRUE(parsed) << to_string(code);
    EXPECT_EQ(*parsed, code);
  }
  EXPECT_FALSE(parse_error_code("no-such-code"));
  EXPECT_FALSE(parse_error_code(""));
}

// --- Wire schema ------------------------------------------------------------

std::string code_of(const obs::Json& resp) {
  const obs::Json* code = resp.find("code");
  return code ? code->as_string() : "<none>";
}

TEST(ServeTest, WellFormedRequestSucceedsWithReport) {
  serve::Engine engine(serving_config());
  const obs::Json resp = engine.handle_line(
      R"({"schema_version":1,"id":"r1","circuit":{"name":"rd53"}})");
  EXPECT_EQ(code_of(resp), "ok");
  ASSERT_NE(resp.find("ok"), nullptr);
  EXPECT_TRUE(resp.find("ok")->as_bool());
  EXPECT_EQ(resp.find("id")->as_string(), "r1");
  EXPECT_EQ(resp.find("schema_version")->as_number(),
            serve::kWireSchemaVersion);
  const obs::Json* report = resp.find("report");
  ASSERT_NE(report, nullptr);
  ASSERT_NE(report->find("result"), nullptr);
  EXPECT_GT(report->find("result")->find("luts")->as_number(), 0.0);
  EXPECT_EQ(engine.served(), 1u);
}

TEST(ServeTest, ClosedSchemaRejectsUnknownAndMalformedFields) {
  serve::Engine engine(serving_config());
  const std::vector<std::string> bad_requests = {
      // Unknown top-level field.
      R"({"schema_version":1,"id":"x","circuit":{"name":"rd53"},"mood":1})",
      // Unknown config key.
      R"({"schema_version":1,"id":"x","circuit":{"name":"rd53"},)"
      R"("config":{"threads":4}})",
      // Wrong schema version.
      R"({"schema_version":2,"id":"x","circuit":{"name":"rd53"}})",
      // Missing id.
      R"({"schema_version":1,"circuit":{"name":"rd53"}})",
      // No circuit source / two circuit sources.
      R"({"schema_version":1,"id":"x","circuit":{}})",
      R"({"schema_version":1,"id":"x",)"
      R"("circuit":{"name":"rd53","pla":".i 1\n.o 1\n.p 1\n1 1\n.e\n"}})",
      // Unknown registry circuit.
      R"({"schema_version":1,"id":"x","circuit":{"name":"nope"}})",
  };
  for (const std::string& line : bad_requests) {
    const obs::Json resp = engine.handle_line(line);
    EXPECT_EQ(code_of(resp), "usage") << line;
    const obs::Json* error = resp.find("error");
    ASSERT_NE(error, nullptr) << line;
    EXPECT_EQ(error->find("code")->as_string(), "usage");
    EXPECT_FALSE(error->find("message")->as_string().empty());
  }
  // Not JSON at all: still one well-formed usage response (empty id).
  const obs::Json garbage = engine.handle_line("not json at all");
  EXPECT_EQ(code_of(garbage), "usage");
  EXPECT_EQ(garbage.find("id")->as_string(), "");
}

TEST(ServeTest, MalformedInlineCircuitIsAParseError) {
  serve::Engine engine(serving_config());
  const obs::Json resp = engine.handle_line(
      R"({"schema_version":1,"id":"p1,",)"
      R"("circuit":{"pla":".i 2\n.o 1\n.p 1\n01 1 extra\n.e\n"}})");
  EXPECT_EQ(code_of(resp), "parse");
}

TEST(ServeTest, PerRequestConfigOverridesApply) {
  serve::Engine engine(serving_config());
  // An impossible node budget with fail policy must surface as `resource`,
  // proving the override reached the run.
  const obs::Json resp = engine.handle_line(
      R"({"schema_version":1,"id":"o1","circuit":{"name":"rd73"},)"
      R"("config":{"node_budget":1,"on_exhaustion":"fail"}})");
  EXPECT_EQ(code_of(resp), "resource");
  // The same request with degrade must complete and verify.
  const obs::Json degraded = engine.handle_line(
      R"({"schema_version":1,"id":"o2","circuit":{"name":"rd73"},)"
      R"("config":{"node_budget":2000,"on_exhaustion":"degrade"}})");
  EXPECT_EQ(code_of(degraded), "ok");
}

}  // namespace
}  // namespace imodec
