// Serving-layer tests (ctest -L serve): NPN canonicalization and its
// inverse-transform algebra, the bounded result cache, warm-resource
// invariants (Manager::reset, ManagerPool), the per-request session boundary
// (warm-vs-fresh bit identity, watermark reset), and the imodec_served wire
// schema (src/map/serve.hpp). DESIGN.md §14.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "bdd/manager.hpp"
#include "bdd/manager_pool.hpp"
#include "circuits/registry.hpp"
#include "decomp/single.hpp"
#include "decomp/varpart.hpp"
#include "logic/network.hpp"
#include "map/errors.hpp"
#include "map/npn_cache.hpp"
#include "map/serve.hpp"
#include "map/session.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "util/bounded_queue.hpp"
#include "util/signals.hpp"

namespace imodec {
namespace {

/// Deterministic pseudo-random truth table (splitmix64 over the rows).
TruthTable random_table(unsigned num_vars, std::uint64_t seed) {
  TruthTable t(num_vars);
  std::uint64_t x = seed + 0x9e3779b97f4a7c15ull;
  for (std::uint64_t row = 0; row < t.num_rows(); ++row) {
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    t.set(row, ((z ^ (z >> 31)) & 1) != 0);
  }
  return t;
}

// --- NPN transform algebra --------------------------------------------------

TEST(NpnTransform, ApplyIsTheForwardOracle) {
  for (unsigned n = 1; n <= 7; ++n) {
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
      const TruthTable f = random_table(n, seed * 131 + n);
      const NpnCanonical canon = npn_canonicalize(f);
      EXPECT_EQ(npn_apply(f, canon.transform), canon.table)
          << "n=" << n << " seed=" << seed;
      ASSERT_EQ(canon.transform.perm.size(), n);
      ASSERT_EQ(canon.transform.input_flip.size(), n);
    }
  }
}

TEST(NpnTransform, SimpleVariantsShareOneClass) {
  // f = (x0 & x1) | x2: asymmetric influence, so phase/perm rules are
  // tie-free except between the symmetric pair x0/x1.
  TruthTable f(3);
  for (std::uint64_t r = 0; r < 8; ++r)
    f.set(r, ((r & 1) && (r & 2)) || (r & 4));
  const TruthTable canon = npn_canonicalize(f).table;

  // (Output complement may land in a different semi-canonical class: input
  // phases are normalized before the output phase, and complementing f
  // flips every cofactor-weight comparison. Splits cost hit rate only.)
  for (unsigned v = 0; v < 3; ++v)
    EXPECT_EQ(npn_canonicalize(npn_flip_input(f, v)).table, canon)
        << "input flip x" << v;
  EXPECT_EQ(npn_canonicalize(f.permute({2, 1, 0})).table, canon)
      << "variable swap";
}

/// A 6-var function decomposable by construction: f = h(d(x0..x2), x3..x5)
/// with random d and h, so the bound set {0,1,2} has at most two classes.
TruthTable decomposable_table(std::uint64_t seed) {
  const TruthTable d = random_table(3, seed * 3 + 1);
  const TruthTable h = random_table(4, seed * 3 + 2);
  TruthTable f(6);
  for (std::uint64_t row = 0; row < 64; ++row) {
    const std::uint64_t code = d.get(row & 7) ? 1 : 0;
    f.set(row, h.get(code | ((row >> 3) << 1)));
  }
  return f;
}

TEST(NpnTransform, InverseDecompositionRecomposesTheOriginal) {
  int decomposed = 0;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const TruthTable f = decomposable_table(0xd00d + seed);
    const NpnCanonical canon = npn_canonicalize(f);

    VarPartOptions vopts;
    vopts.bound_size = 3;
    const auto choice = choose_bound_set({canon.table}, 6, vopts);
    if (!choice) continue;  // degenerate d/h draw
    ++decomposed;
    const Decomposition canonical_dec =
        decompose_single_output(canon.table, choice->vp);
    ASSERT_EQ(recompose(canonical_dec, 0, 6), canon.table);

    const Decomposition original_dec =
        npn_inverse_decomposition(canonical_dec, canon.transform);
    EXPECT_EQ(recompose(original_dec, 0, 6), f) << "seed=" << seed;
  }
  EXPECT_GT(decomposed, 6) << "property barely exercised";
}

// --- Bounded LRU cache ------------------------------------------------------

TEST(NpnCacheTest, HitMissAndEvictionCounters) {
  NpnCacheOptions opts;
  opts.max_entries = 2;
  NpnCache cache(opts);

  const std::vector<TruthTable> a{random_table(4, 1)};
  const std::vector<TruthTable> b{random_table(4, 2)};
  const std::vector<TruthTable> c{random_table(4, 3)};

  EXPECT_FALSE(cache.lookup(7, a));
  NpnCache::Entry e;
  e.cost = 5;
  cache.store(7, a, e);
  const auto hit = cache.lookup(7, a);
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->cost, 5u);
  // Same key under a different fingerprint is a different entry.
  EXPECT_FALSE(cache.lookup(8, a));

  cache.store(7, b, e);  // a refreshed by the hit above: lru order b, a
  cache.store(7, c, e);  // capacity 2: evicts the least recent (a)
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.lookup(7, a)) << "evicted entry served";
  EXPECT_TRUE(cache.lookup(7, b));
  EXPECT_TRUE(cache.lookup(7, c));

  const NpnCache::Stats st = cache.stats();
  EXPECT_EQ(st.hits, 3u);
  EXPECT_EQ(st.misses, 3u);
  EXPECT_EQ(st.evictions, 1u);

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(NpnCacheTest, VectorKeysAndSaltsDoNotCollide) {
  NpnCache cache;
  const TruthTable t = random_table(4, 9);
  NpnCache::Entry e;
  e.cost = 1;
  cache.store(1, {t}, e);
  // Same table twice is a different (vector) key than once.
  EXPECT_FALSE(cache.lookup(1, {t, t}));
  // The salted fingerprints keep entry families apart.
  EXPECT_FALSE(cache.lookup(npn_salt(1, kNpnCostSalt), {t}));
  EXPECT_FALSE(cache.lookup(npn_salt(1, kNpnTrialSalt), {t}));
  EXPECT_TRUE(cache.lookup(1, {t}));
}

TEST(NpnCacheTest, CachedDecomposeHitReplaysTheMiss) {
  NpnCache cache;
  const TruthTable f = decomposable_table(0xbeef);

  int calls = 0;
  const auto decompose_canonical = [&](const TruthTable& canon) {
    ++calls;
    NpnCache::Entry ent;
    VarPartOptions vopts;
    vopts.bound_size = 3;
    const auto choice = choose_bound_set({canon}, canon.num_vars(), vopts);
    if (!choice) {
      ent.error = DecomposeError::no_nontrivial_bound_set;
      return ent;
    }
    ent.dec = decompose_single_output(canon, choice->vp);
    return ent;
  };

  const NpnCache::Entry first =
      npn_cached_decompose(cache, 42, f, decompose_canonical,
                           /*verify_hits=*/true);
  ASSERT_EQ(calls, 1);
  const NpnCache::Entry second =
      npn_cached_decompose(cache, 42, f, decompose_canonical,
                           /*verify_hits=*/true);
  EXPECT_EQ(calls, 1) << "hit went back to the decomposer";

  ASSERT_TRUE(first.dec && second.dec);
  // Bit-identity: the served decomposition equals the one the populating
  // miss returned, and both recompose to the original function.
  EXPECT_EQ(recompose(*first.dec, 0, 6), f);
  EXPECT_EQ(recompose(*second.dec, 0, 6), f);
  EXPECT_EQ(second.dec->d_funcs, first.dec->d_funcs);

  const NpnCache::Stats st = cache.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.verify_failures, 0u);
}

// --- Warm resources ---------------------------------------------------------

TEST(ManagerResetTest, ResetManagerIsObservationallyFresh) {
  bdd::Manager warm(4);
  // Grow some state worth forgetting.
  bdd::NodeId acc = warm.one();
  for (unsigned v = 0; v < 4; ++v) acc = warm.apply_and(acc, warm.var(v));
  const std::size_t grown = warm.live_node_count();
  EXPECT_GT(grown, 1u);

  warm.reset(5);
  bdd::Manager fresh(5);
  EXPECT_EQ(warm.num_vars(), 5u);
  EXPECT_EQ(warm.live_node_count(), fresh.live_node_count());
  // Same construction sequence yields the same node ids — a reset manager
  // is indistinguishable from a newly built one.
  const bdd::NodeId warm_node = warm.apply_and(warm.var(1), warm.var(3));
  const bdd::NodeId fresh_node = fresh.apply_and(fresh.var(1), fresh.var(3));
  EXPECT_EQ(warm_node, fresh_node);
}

TEST(ManagerPoolTest, RetiredManagersAreReused) {
  bdd::ManagerPool pool;
  EXPECT_EQ(pool.reuses(), 0u);
  { bdd::ManagerPool::Lease lease = pool.acquire(6); }
  EXPECT_EQ(pool.creates(), 1u);
  {
    bdd::ManagerPool::Lease lease = pool.acquire(8);  // recycled, re-sized
    EXPECT_EQ(lease->num_vars(), 8u);
  }
  EXPECT_EQ(pool.creates(), 1u);
  EXPECT_EQ(pool.reuses(), 1u);
}

// --- Session boundary -------------------------------------------------------

SynthesisConfig serving_config() {
  SynthesisConfig cfg;
  cfg.threads = 1;
  cfg.result_cache = true;
  return cfg;
}

Network run_fresh(const std::string& name, const SynthesisConfig& cfg) {
  SynthesisSession session(cfg);
  Network mapped;
  const Network input = *circuits::make_benchmark(name);
  session.run(input, mapped);
  return mapped;
}

TEST(SessionTest, WarmRunsAreBitIdenticalToFreshProcesses) {
  const SynthesisConfig cfg = serving_config();
  SynthesisSession warm(cfg);
  // A warm session with history (and a populated cache) must produce the
  // same network a fresh session produces on its very first request.
  const std::vector<std::string> sequence = {"rd53", "misex1", "9sym",
                                             "rd53", "9sym"};
  for (const std::string& name : sequence) {
    Network warm_mapped;
    warm.run(*circuits::make_benchmark(name), warm_mapped);
    EXPECT_TRUE(structurally_equal(warm_mapped, run_fresh(name, cfg)))
        << name << " diverged in the warm session";
  }
}

TEST(SessionTest, DegradedRunsStayBitIdenticalToo) {
  SynthesisConfig cfg = serving_config();
  cfg.node_budget = 2000;
  cfg.on_exhaustion = OnExhaustion::degrade;
  SynthesisSession warm(cfg);
  for (int round = 0; round < 2; ++round) {
    Network warm_mapped;
    const DriverReport rep =
        warm.run(*circuits::make_benchmark("rd73"), warm_mapped);
    EXPECT_TRUE(rep.verified);
    EXPECT_TRUE(structurally_equal(warm_mapped, run_fresh("rd73", cfg)))
        << "round " << round;
  }
}

TEST(SessionTest, GaugeWatermarksResetAtTheRequestBoundary) {
  obs::set_enabled(true);
  SynthesisSession session(serving_config());
  Network mapped;
  session.run(*circuits::make_benchmark("5xp1"), mapped);
  const std::int64_t big_peak =
      obs::Registry::instance().gauge("bdd.peak_live_nodes").max();
  EXPECT_GT(big_peak, 0);
  session.run(*circuits::make_benchmark("rd53"), mapped);
  const std::int64_t small_peak =
      obs::Registry::instance().gauge("bdd.peak_live_nodes").max();
  EXPECT_LT(small_peak, big_peak)
      << "previous request's watermark leaked into this one";
}

TEST(SessionTest, ResultCacheCountersAdvanceAcrossRequests) {
  SynthesisSession session(serving_config());
  ASSERT_NE(session.result_cache(), nullptr);
  Network mapped;
  session.run(*circuits::make_benchmark("misex1"), mapped);
  const NpnCache::Stats after_first = session.result_cache()->stats();
  EXPECT_GT(after_first.misses, 0u);
  session.run(*circuits::make_benchmark("misex1"), mapped);
  const NpnCache::Stats after_second = session.result_cache()->stats();
  EXPECT_GT(after_second.hits, after_first.hits)
      << "repeated request did not hit the warm cache";
  EXPECT_EQ(after_second.verify_failures, 0u);
}

TEST(SessionTest, RunCheckedSpeaksTheSharedErrorSurface) {
  SynthesisSession session(serving_config());
  Network mapped;
  const Network input = *circuits::make_benchmark("rd53");

  SynthesisConfig ok_cfg = serving_config();
  EXPECT_EQ(session.run_checked(input, ok_cfg, mapped).code, ErrorCode::ok);

  SynthesisConfig bad_cfg = serving_config();
  bad_cfg.k = 0;  // fails SynthesisConfig::validate()
  const SynthesisSession::Outcome bad =
      session.run_checked(input, bad_cfg, mapped);
  EXPECT_EQ(bad.code, ErrorCode::usage);
  EXPECT_FALSE(bad.message.empty());

  // result_cache off for this request: a cache hit would (correctly) skip
  // the engine and never charge the node budget. 5xp1 is multi-output, so
  // the flow reaches the BDD-backed engine and trips the budget.
  SynthesisConfig tight_cfg = serving_config();
  tight_cfg.result_cache = false;
  tight_cfg.node_budget = 64;
  tight_cfg.on_exhaustion = OnExhaustion::fail;
  const SynthesisSession::Outcome tight = session.run_checked(
      *circuits::make_benchmark("5xp1"), tight_cfg, mapped);
  EXPECT_EQ(tight.code, ErrorCode::resource);
}

// --- Error codes ------------------------------------------------------------

TEST(ErrorCodeTest, SpellingAndExitCodeRoundTrip) {
  for (int i = 0; i < kNumErrorCodes; ++i) {
    const auto code = static_cast<ErrorCode>(i);
    EXPECT_EQ(exit_code(code), i);
    const auto parsed = parse_error_code(to_string(code));
    ASSERT_TRUE(parsed) << to_string(code);
    EXPECT_EQ(*parsed, code);
  }
  EXPECT_FALSE(parse_error_code("no-such-code"));
  EXPECT_FALSE(parse_error_code(""));
}

// --- Wire schema ------------------------------------------------------------

std::string code_of(const obs::Json& resp) {
  const obs::Json* code = resp.find("code");
  return code ? code->as_string() : "<none>";
}

TEST(ServeTest, WellFormedRequestSucceedsWithReport) {
  serve::Engine engine(serving_config());
  const obs::Json resp = engine.handle_line(
      R"({"schema_version":1,"id":"r1","circuit":{"name":"rd53"}})");
  EXPECT_EQ(code_of(resp), "ok");
  ASSERT_NE(resp.find("ok"), nullptr);
  EXPECT_TRUE(resp.find("ok")->as_bool());
  EXPECT_EQ(resp.find("id")->as_string(), "r1");
  EXPECT_EQ(resp.find("schema_version")->as_number(),
            serve::kWireSchemaVersion);
  const obs::Json* report = resp.find("report");
  ASSERT_NE(report, nullptr);
  ASSERT_NE(report->find("result"), nullptr);
  EXPECT_GT(report->find("result")->find("luts")->as_number(), 0.0);
  EXPECT_EQ(engine.served(), 1u);
}

TEST(ServeTest, ClosedSchemaRejectsUnknownAndMalformedFields) {
  serve::Engine engine(serving_config());
  const std::vector<std::string> bad_requests = {
      // Unknown top-level field.
      R"({"schema_version":1,"id":"x","circuit":{"name":"rd53"},"mood":1})",
      // Unknown config key.
      R"({"schema_version":1,"id":"x","circuit":{"name":"rd53"},)"
      R"("config":{"threads":4}})",
      // Schema version above the ceiling (v1 and v2 are both accepted).
      R"({"schema_version":3,"id":"x","circuit":{"name":"rd53"}})",
      // Missing id.
      R"({"schema_version":1,"circuit":{"name":"rd53"}})",
      // No circuit source / two circuit sources.
      R"({"schema_version":1,"id":"x","circuit":{}})",
      R"({"schema_version":1,"id":"x",)"
      R"("circuit":{"name":"rd53","pla":".i 1\n.o 1\n.p 1\n1 1\n.e\n"}})",
      // Unknown registry circuit.
      R"({"schema_version":1,"id":"x","circuit":{"name":"nope"}})",
  };
  for (const std::string& line : bad_requests) {
    const obs::Json resp = engine.handle_line(line);
    EXPECT_EQ(code_of(resp), "usage") << line;
    const obs::Json* error = resp.find("error");
    ASSERT_NE(error, nullptr) << line;
    EXPECT_EQ(error->find("code")->as_string(), "usage");
    EXPECT_FALSE(error->find("message")->as_string().empty());
  }
  // Not JSON at all: still one well-formed usage response (empty id).
  const obs::Json garbage = engine.handle_line("not json at all");
  EXPECT_EQ(code_of(garbage), "usage");
  EXPECT_EQ(garbage.find("id")->as_string(), "");
}

TEST(ServeTest, MalformedInlineCircuitIsAParseError) {
  serve::Engine engine(serving_config());
  const obs::Json resp = engine.handle_line(
      R"({"schema_version":1,"id":"p1,",)"
      R"("circuit":{"pla":".i 2\n.o 1\n.p 1\n01 1 extra\n.e\n"}})");
  EXPECT_EQ(code_of(resp), "parse");
}

TEST(ServeTest, PerRequestConfigOverridesApply) {
  serve::Engine engine(serving_config());
  // An impossible node budget with fail policy must surface as `resource`,
  // proving the override reached the run.
  const obs::Json resp = engine.handle_line(
      R"({"schema_version":1,"id":"o1","circuit":{"name":"rd73"},)"
      R"("config":{"node_budget":1,"on_exhaustion":"fail"}})");
  EXPECT_EQ(code_of(resp), "resource");
  // The same request with degrade must complete and verify.
  const obs::Json degraded = engine.handle_line(
      R"({"schema_version":1,"id":"o2","circuit":{"name":"rd73"},)"
      R"("config":{"node_budget":2000,"on_exhaustion":"degrade"}})");
  EXPECT_EQ(code_of(degraded), "ok");
}

// --- Deadline propagation (DESIGN.md §15) -----------------------------------

TEST(ServeTest, QueueWaitIsChargedAgainstTheDeadline) {
  serve::Engine engine(serving_config());
  const std::string line =
      R"({"schema_version":2,"id":"d1","circuit":{"name":"rd53"},)"
      R"("config":{"timeout_ms":60000}})";

  // Wait already past the budget: typed timeout before any work runs.
  const obs::Json expired = engine.handle_line(line, /*queue_wait_ms=*/60000);
  EXPECT_EQ(code_of(expired), "timeout");
  const obs::Json* error = expired.find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_NE(error->find("message")->as_string().find("admission queue"),
            std::string::npos);

  // Wait inside the budget: the run proceeds with the *remaining* budget,
  // and the report's config echo proves the subtraction reached the run.
  const obs::Json ok = engine.handle_line(line, /*queue_wait_ms=*/10000);
  EXPECT_EQ(code_of(ok), "ok");
  const obs::Json* report = ok.find("report");
  ASSERT_NE(report, nullptr);
  const obs::Json* cfg = report->find("config");
  ASSERT_NE(cfg, nullptr);
  EXPECT_EQ(cfg->find("timeout_ms")->as_number(), 50000.0);

  // No deadline configured: queue wait is irrelevant.
  const obs::Json no_deadline = engine.handle_line(
      R"({"schema_version":2,"id":"d2","circuit":{"name":"rd53"},)"
      R"("config":{"timeout_ms":0}})",
      /*queue_wait_ms=*/123456);
  EXPECT_EQ(code_of(no_deadline), "ok");
}

// --- serve::Server: admission control, shedding, drain ----------------------

obs::Json parse_resp(const std::string& text) {
  std::optional<obs::Json> doc = obs::Json::parse(text);
  EXPECT_TRUE(doc.has_value()) << text;
  return doc ? *doc : obs::Json::object();
}

TEST(ServerTest, ControlVerbsAnsweredInlineWithStatus) {
  serve::ServerOptions opts;
  opts.workers = 1;
  serve::Server server(serving_config(), opts);

  const obs::Json health = parse_resp(server.handle(
      R"({"schema_version":2,"id":"h1","control":"health"})"));
  EXPECT_EQ(code_of(health), "ok");
  EXPECT_EQ(health.find("control")->as_string(), "health");
  const obs::Json* status = health.find("status");
  ASSERT_NE(status, nullptr);
  EXPECT_EQ(status->find("state")->as_string(), "serving");

  const obs::Json stats = parse_resp(server.handle(
      R"({"schema_version":2,"id":"s1","control":"stats"})"));
  EXPECT_EQ(code_of(stats), "ok");
  ASSERT_NE(stats.find("status"), nullptr);
  EXPECT_GE(stats.find("status")->find("submitted")->as_number(), 1.0);

  // Malformed control requests: typed usage, closed schema.
  for (const char* bad : {
           // Unknown verb.
           R"({"schema_version":2,"id":"b1","control":"reboot"})",
           // Control verbs are v2-only.
           R"({"schema_version":1,"id":"b2","control":"health"})",
           // Unknown extra field.
           R"({"schema_version":2,"id":"b3","control":"health","x":1})",
       }) {
    EXPECT_EQ(code_of(parse_resp(server.handle(bad))), "usage") << bad;
  }

  // The drain verb flips the server into drain mode.
  const obs::Json drain = parse_resp(server.handle(
      R"({"schema_version":2,"id":"dr","control":"drain"})"));
  EXPECT_EQ(code_of(drain), "ok");
  EXPECT_TRUE(server.draining());
  // Circuit requests after drain shed with a typed overloaded response.
  const obs::Json late = parse_resp(server.handle(
      R"({"schema_version":2,"id":"l1","circuit":{"name":"rd53"}})"));
  EXPECT_EQ(code_of(late), "overloaded");
  // Control still answers while draining (health checks under drain).
  const obs::Json still = parse_resp(server.handle(
      R"({"schema_version":2,"id":"h2","control":"health"})"));
  EXPECT_EQ(code_of(still), "ok");
  EXPECT_EQ(still.find("status")->find("state")->as_string(), "draining");
  server.drain();
}

/// Pins the server's single worker: submit a request whose Done callback
/// blocks until release() — Done runs on the worker thread, so the lane
/// stays busy and subsequent submissions exercise the queue deterministically.
class WorkerPin {
 public:
  explicit WorkerPin(serve::Server& server) {
    server.submit(R"({"schema_version":2,"id":"pin",)"
                  R"("circuit":{"name":"rd53"}})",
                  [this](const std::string&) {
                    {
                      std::lock_guard<std::mutex> lock(mu_);
                      pinned_ = true;
                    }
                    cv_.notify_all();
                    std::unique_lock<std::mutex> lock(mu_);
                    cv_.wait(lock, [&] { return released_; });
                  });
    // Wait until the worker is provably inside the callback.
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return pinned_; });
  }

  void release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      released_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool pinned_ = false;
  bool released_ = false;
};

TEST(ServerTest, FullQueueShedsWithTypedOverloaded) {
  serve::ServerOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 1;
  opts.retry_after_ms = 77;
  serve::Server server(serving_config(), opts);
  WorkerPin pin(server);

  // The lane is busy and the queue is empty: this one queues.
  std::mutex mu;
  std::condition_variable cv;
  std::string queued_resp;
  server.submit(R"({"schema_version":2,"id":"q1",)"
                R"("circuit":{"name":"rd53"}})",
                [&](const std::string& r) {
                  {
                    std::lock_guard<std::mutex> lock(mu);
                    queued_resp = r;
                  }
                  cv.notify_all();
                });
  // Queue full: this one sheds inline, with the configured backoff hint.
  std::string shed_resp;
  server.submit(R"({"schema_version":2,"id":"q2",)"
                R"("circuit":{"name":"rd53"}})",
                [&](const std::string& r) { shed_resp = r; });
  const obs::Json shed = parse_resp(shed_resp);
  EXPECT_EQ(code_of(shed), "overloaded");
  EXPECT_EQ(shed.find("id")->as_string(), "q2");
  const obs::Json* error = shed.find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->find("retry_after_ms")->as_number(), 77.0);

  pin.release();
  // Wait for the worker to run q1 before draining — drain() itself is
  // allowed to answer still-queued work with `overloaded`, which is not
  // what this test is about.
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return !queued_resp.empty(); });
    EXPECT_EQ(code_of(parse_resp(queued_resp)), "ok");
  }
  server.drain();

  const obs::Json stats = server.stats_json();
  EXPECT_EQ(stats.find("shed")->as_number(), 1.0);
  EXPECT_EQ(stats.find("completed")->as_number(), 2.0);
}

TEST(ServerTest, DrainAnswersQueuedRequestsAndFinishesInFlight) {
  serve::ServerOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 4;
  serve::Server server(serving_config(), opts);
  WorkerPin pin(server);

  std::string queued_resp;
  server.submit(R"({"schema_version":2,"id":"q1",)"
                R"("circuit":{"name":"rd53"}})",
                [&](const std::string& r) { queued_resp = r; });

  // Non-blocking drain: the queued-but-unstarted request is answered
  // `overloaded` immediately, while the pinned in-flight request is not
  // disturbed.
  server.request_drain();
  EXPECT_TRUE(server.draining());
  const obs::Json queued = parse_resp(queued_resp);
  EXPECT_EQ(code_of(queued), "overloaded");
  EXPECT_EQ(queued.find("id")->as_string(), "q1");

  // New work after drain: shed inline.
  std::string late_resp;
  server.submit(R"({"schema_version":2,"id":"q2",)"
                R"("circuit":{"name":"rd53"}})",
                [&](const std::string& r) { late_resp = r; });
  EXPECT_EQ(code_of(parse_resp(late_resp)), "overloaded");

  pin.release();
  server.drain();  // joins workers; the pinned request completed normally
  const obs::Json stats = server.stats_json();
  EXPECT_EQ(stats.find("state")->as_string(), "draining");
  EXPECT_EQ(stats.find("completed")->as_number(), 1.0);
  EXPECT_EQ(stats.find("shed")->as_number(), 2.0);
}

TEST(ServerTest, ConcurrentSubmittersAllGetExactlyOneResponse) {
  serve::ServerOptions opts;
  opts.workers = 2;
  opts.queue_capacity = 2;
  serve::Server server(serving_config(), opts);
  constexpr int kClients = 8;
  constexpr int kPerClient = 4;
  std::atomic<int> ok{0}, overloaded{0}, other{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const std::string resp = server.handle(
            R"({"schema_version":2,"id":"c)" + std::to_string(c) + "-" +
            std::to_string(i) + R"(","circuit":{"name":"rd53"}})");
        const std::string code = code_of(parse_resp(resp));
        if (code == "ok")
          ++ok;
        else if (code == "overloaded")
          ++overloaded;
        else
          ++other;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  // Every request answered, typed; under 4x-capacity closed-loop load some
  // may shed, none may vanish or come back untyped.
  EXPECT_EQ(ok + overloaded + other, kClients * kPerClient);
  EXPECT_EQ(other.load(), 0);
  EXPECT_GE(ok.load(), 1);
  server.drain();
}

// --- RestartPolicy (supervisor crash-loop state machine) --------------------

TEST(RestartPolicyTest, BackoffDoublesAndCaps) {
  serve::RestartPolicy::Options opts;
  opts.base_backoff_ms = 100;
  opts.max_backoff_ms = 500;
  opts.stable_uptime_ms = 10000;
  opts.give_up_after = 100;
  serve::RestartPolicy policy(opts);
  std::vector<std::uint64_t> backoffs;
  for (int i = 0; i < 5; ++i) {
    const auto d = policy.on_crash(/*uptime_ms=*/10);
    EXPECT_FALSE(d.give_up);
    backoffs.push_back(d.backoff_ms);
  }
  EXPECT_EQ(backoffs, (std::vector<std::uint64_t>{100, 200, 400, 500, 500}));
  EXPECT_EQ(policy.total_crashes(), 5u);
}

TEST(RestartPolicyTest, StableUptimeResetsTheLadder) {
  serve::RestartPolicy policy;
  const auto& opts = policy.options();
  for (int i = 0; i < 4; ++i) policy.on_crash(10);
  EXPECT_EQ(policy.consecutive_fast_crashes(), 4u);
  // A crash after a long, healthy run is news, not a loop: fresh ladder.
  const auto d = policy.on_crash(opts.stable_uptime_ms + 1);
  EXPECT_FALSE(d.give_up);
  EXPECT_EQ(d.backoff_ms, opts.base_backoff_ms);
  EXPECT_EQ(policy.consecutive_fast_crashes(), 1u);
}

TEST(RestartPolicyTest, CrashLoopGivesUp) {
  serve::RestartPolicy::Options opts;
  opts.give_up_after = 3;
  serve::RestartPolicy policy(opts);
  EXPECT_FALSE(policy.on_crash(10).give_up);
  EXPECT_FALSE(policy.on_crash(10).give_up);
  EXPECT_FALSE(policy.on_crash(10).give_up);
  EXPECT_TRUE(policy.on_crash(10).give_up);
}

// --- BoundedQueue (the admission primitive) ---------------------------------

TEST(BoundedQueueTest, ShedsWhenFullAndLeavesTheItemIntact) {
  util::BoundedQueue<std::string> q(2);
  std::string a = "a", b = "b", c = "c";
  EXPECT_TRUE(q.try_push(std::move(a)));
  EXPECT_TRUE(q.try_push(std::move(b)));
  EXPECT_FALSE(q.try_push(std::move(c)));
  // Failed push must not have consumed the item (the serving layer answers
  // the shed request through the callback the item carries).
  EXPECT_EQ(c, "c");
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(*q.pop(), "a");
  EXPECT_TRUE(q.try_push(std::move(c)));
}

TEST(BoundedQueueTest, CloseAndDrainHandsBackQueuedItems) {
  util::BoundedQueue<int> q(4);
  int x = 1, y = 2;
  EXPECT_TRUE(q.try_push(std::move(x)));
  EXPECT_TRUE(q.try_push(std::move(y)));
  const std::vector<int> rest = q.close_and_drain();
  EXPECT_EQ(rest, (std::vector<int>{1, 2}));
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.pop().has_value());  // closed + empty: no block
  int z = 3;
  EXPECT_FALSE(q.try_push(std::move(z)));  // closed: sheds
}

// --- Crash containment: fatal-signal last gasp ------------------------------

#ifndef _WIN32
TEST(CrashContainmentTest, FatalSignalDumpsFlightRingAndCrashLine) {
  // Fork a victim, crash it with SIGSEGV, and read its last words from a
  // pipe wired to its stderr: the flight-recorder ring and the structured
  // crash line must both appear, and the process must die BY THE SIGNAL
  // (the handler re-raises with default disposition, so a supervisor sees
  // WIFSIGNALED, not a disguised clean exit).
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::dup2(fds[1], 2);
    ::close(fds[0]);
    ::close(fds[1]);
    util::install_fatal_handler(+[](int signo) {
      obs::flight_dump_fd(2);
      char buf[128];
      const int len = std::snprintf(
          buf, sizeof(buf), "{\"imodec_crash\":{\"signal\":%d,"
                            "\"signal_name\":\"%s\"}}\n",
          signo, util::signal_name(signo));
      if (len > 0) {
        const ssize_t w = ::write(2, buf, static_cast<std::size_t>(len));
        (void)w;
      }
    });
    obs::set_flight_enabled(true);
    obs::flight(obs::FlightKind::phase, "preCrash", 1, 2, 3);
    ::raise(SIGSEGV);
    std::_Exit(0);  // unreachable: the re-raise must kill us
  }
  ::close(fds[1]);
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fds[0], buf, sizeof(buf))) > 0)
    out.append(buf, static_cast<std::size_t>(n));
  ::close(fds[0]);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGSEGV);
  EXPECT_NE(out.find("\"imodec_flight\""), std::string::npos) << out;
  EXPECT_NE(out.find("preCrash"), std::string::npos) << out;
  EXPECT_NE(out.find("\"imodec_crash\":{\"signal\":"), std::string::npos)
      << out;
  EXPECT_NE(out.find("\"signal_name\":\"SIGSEGV\""), std::string::npos)
      << out;
}

TEST(SignalUtilTest, SimulatedDrainSignalLatchesAndWakesTheFd) {
  ASSERT_TRUE(util::install_drain_handler());
  const std::uint64_t before = util::drain_signal_count();
  util::simulate_drain_signal(SIGTERM);
  EXPECT_TRUE(util::drain_requested());
  EXPECT_EQ(util::drain_signal_count(), before + 1);
  EXPECT_EQ(util::drain_signal(), SIGTERM);
  // The self-pipe is readable: a poll()ing accept loop wakes immediately.
  ASSERT_GE(util::drain_fd(), 0);
  pollfd pfd{util::drain_fd(), POLLIN, 0};
  EXPECT_EQ(::poll(&pfd, 1, 0), 1);
  EXPECT_NE(pfd.revents & POLLIN, 0);
}
#endif  // !_WIN32

}  // namespace
}  // namespace imodec
