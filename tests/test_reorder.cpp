// Tests for dynamic variable reordering: adjacent-level swaps, sifting, and
// arbitrary order installation. The key invariant throughout: node ids keep
// denoting the same functions (checked by exhaustive evaluation).

#include <gtest/gtest.h>

#include "bdd/bdd.hpp"
#include "logic/truthtable.hpp"
#include "util/rng.hpp"

namespace imodec {
namespace {

using bdd::Bdd;
using bdd::Manager;

TruthTable to_table(const Bdd& f, unsigned n) {
  TruthTable t(n);
  std::vector<bool> a(f.manager()->num_vars(), false);
  for (std::uint64_t row = 0; row < t.num_rows(); ++row) {
    for (unsigned v = 0; v < n; ++v) a[v] = (row >> v) & 1;
    t.set(row, f.eval(a));
  }
  return t;
}

TEST(Reorder, InitialOrderIsIdentity) {
  Manager mgr(4);
  for (unsigned v = 0; v < 4; ++v) {
    EXPECT_EQ(mgr.level_of(v), v);
    EXPECT_EQ(mgr.var_at(v), v);
  }
}

TEST(Reorder, SwapUpdatesMaps) {
  Manager mgr(3);
  mgr.swap_levels(0);
  EXPECT_EQ(mgr.var_at(0), 1u);
  EXPECT_EQ(mgr.var_at(1), 0u);
  EXPECT_EQ(mgr.level_of(0), 1u);
  EXPECT_EQ(mgr.level_of(1), 0u);
  EXPECT_TRUE(mgr.check_invariants());
}

TEST(Reorder, SwapPreservesFunctions) {
  Manager mgr(4);
  const Bdd f = (Bdd::var(mgr, 0) & Bdd::var(mgr, 2)) |
                (~Bdd::var(mgr, 1) & Bdd::var(mgr, 3));
  const TruthTable before = to_table(f, 4);
  for (unsigned l = 0; l + 1 < 4; ++l) {
    mgr.swap_levels(l);
    EXPECT_TRUE(mgr.check_invariants()) << l;
    EXPECT_EQ(to_table(f, 4), before) << l;
  }
}

TEST(Reorder, DoubleSwapRestoresShape) {
  Manager mgr(4);
  const Bdd f = Bdd::var(mgr, 0).ite(Bdd::var(mgr, 1), Bdd::var(mgr, 2));
  const std::size_t size_before = f.dag_size();
  mgr.swap_levels(1);
  mgr.swap_levels(1);
  EXPECT_EQ(mgr.level_of(1), 1u);
  EXPECT_EQ(f.dag_size(), size_before);
  EXPECT_TRUE(mgr.check_invariants());
}

TEST(Reorder, CanonicityHoldsAfterSwap) {
  // Build the same function twice after a swap; ids must coincide.
  Manager mgr(3);
  const Bdd f = Bdd::var(mgr, 0) ^ Bdd::var(mgr, 1) ^ Bdd::var(mgr, 2);
  mgr.swap_levels(0);
  const Bdd g = Bdd::var(mgr, 0) ^ Bdd::var(mgr, 1) ^ Bdd::var(mgr, 2);
  EXPECT_EQ(f, g);
  EXPECT_TRUE(mgr.check_invariants());
}

TEST(Reorder, OperationsAfterSwapAreCorrect) {
  Manager mgr(4);
  mgr.swap_levels(1);
  mgr.swap_levels(2);
  const Bdd a = Bdd::var(mgr, 0), b = Bdd::var(mgr, 1), c = Bdd::var(mgr, 2),
            d = Bdd::var(mgr, 3);
  const Bdd f = (a & b) ^ (c | d);
  for (std::uint64_t row = 0; row < 16; ++row) {
    std::vector<bool> v(4);
    for (unsigned i = 0; i < 4; ++i) v[i] = (row >> i) & 1;
    EXPECT_EQ(f.eval(v), ((v[0] && v[1]) != (v[2] || v[3]))) << row;
  }
  EXPECT_DOUBLE_EQ(f.sat_count(), to_table(f, 4).count_ones());
  EXPECT_EQ(f.cofactor(2, true), (a & b) ^ Bdd::one(mgr));
  EXPECT_EQ(f.exists({0, 1}), Bdd::one(mgr));
}

TEST(Reorder, InterleavedToGroupedShrinksAndOrChain) {
  // f = x0 x3 + x1 x4 + x2 x5: with pair-separated order the BDD is
  // exponential-ish; grouping partners adjacently minimizes it.
  Manager mgr(6);
  const Bdd f = (Bdd::var(mgr, 0) & Bdd::var(mgr, 3)) |
                (Bdd::var(mgr, 1) & Bdd::var(mgr, 4)) |
                (Bdd::var(mgr, 2) & Bdd::var(mgr, 5));
  const std::size_t bad = f.dag_size();
  mgr.set_order({0, 3, 1, 4, 2, 5});
  const std::size_t good = f.dag_size();
  EXPECT_LT(good, bad);
  EXPECT_EQ(good, 6u);  // one node per literal in the paired order
  EXPECT_TRUE(mgr.check_invariants());
}

TEST(Reorder, SiftFindsTheGoodOrder) {
  Manager mgr(6);
  const Bdd f = (Bdd::var(mgr, 0) & Bdd::var(mgr, 3)) |
                (Bdd::var(mgr, 1) & Bdd::var(mgr, 4)) |
                (Bdd::var(mgr, 2) & Bdd::var(mgr, 5));
  const TruthTable before = to_table(f, 6);
  const std::size_t bad = f.dag_size();
  const std::size_t after = mgr.sift();
  EXPECT_LE(f.dag_size(), bad);
  EXPECT_LE(after, bad + 2);
  EXPECT_EQ(f.dag_size(), 6u);  // sifting reaches the optimal 6 nodes
  EXPECT_EQ(to_table(f, 6), before);
  EXPECT_TRUE(mgr.check_invariants());
}

TEST(Reorder, SetOrderInstallsExactPermutation) {
  Manager mgr(5);
  const Bdd keep = Bdd::var(mgr, 2) & ~Bdd::var(mgr, 4);
  mgr.set_order({4, 2, 0, 3, 1});
  for (unsigned l = 0; l < 5; ++l)
    EXPECT_EQ(mgr.var_at(l), (std::vector<unsigned>{4, 2, 0, 3, 1})[l]);
  std::vector<bool> a(5, false);
  a[2] = true;
  EXPECT_TRUE(keep.eval(a));
  a[4] = true;
  EXPECT_FALSE(keep.eval(a));
}

class ReorderRandom : public ::testing::TestWithParam<int> {};

TEST_P(ReorderRandom, RandomSwapSequencesPreserveEverything) {
  const unsigned n = 6;
  Manager mgr(n);
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 523 + 77);

  std::vector<Bdd> funcs;
  std::vector<TruthTable> tables;
  for (int k = 0; k < 4; ++k) {
    TruthTable t(n);
    for (std::uint64_t row = 0; row < t.num_rows(); ++row)
      t.set(row, rng.coin());
    // Build via Shannon over BDD ops.
    Bdd f = Bdd::zero(mgr);
    for (std::uint64_t row = 0; row < t.num_rows(); ++row) {
      if (!t.get(row)) continue;
      std::vector<unsigned> vars(n);
      std::vector<bool> phases(n);
      for (unsigned v = 0; v < n; ++v) {
        vars[v] = v;
        phases[v] = (row >> v) & 1;
      }
      f = f | Bdd::cube(mgr, vars, phases);
    }
    funcs.push_back(f);
    tables.push_back(std::move(t));
  }

  for (int step = 0; step < 30; ++step) {
    mgr.swap_levels(static_cast<unsigned>(rng.below(n - 1)));
    ASSERT_TRUE(mgr.check_invariants()) << step;
  }
  for (std::size_t k = 0; k < funcs.size(); ++k) {
    EXPECT_EQ(to_table(funcs[k], n), tables[k]) << k;
    EXPECT_DOUBLE_EQ(funcs[k].sat_count(),
                     static_cast<double>(tables[k].count_ones()));
  }
  // Operations still work after heavy reordering.
  EXPECT_EQ(funcs[0] & ~funcs[0], Bdd::zero(mgr));
  EXPECT_EQ(to_table(funcs[0] ^ funcs[1], n), tables[0] ^ tables[1]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReorderRandom, ::testing::Range(0, 10));

TEST(Reorder, SiftRandomFunctionsKeepSemantics) {
  const unsigned n = 8;
  Manager mgr(n);
  Rng rng(4242);
  Bdd f = Bdd::zero(mgr);
  for (int c = 0; c < 12; ++c) {
    std::vector<unsigned> vars;
    std::vector<bool> phases;
    for (unsigned v = 0; v < n; ++v) {
      if (rng.chance(1, 2)) continue;
      vars.push_back(v);
      phases.push_back(rng.coin());
    }
    f = f | Bdd::cube(mgr, vars, phases);
  }
  const TruthTable before = to_table(f, n);
  const std::size_t size_before = f.dag_size();
  mgr.sift();
  EXPECT_LE(f.dag_size(), size_before);
  EXPECT_EQ(to_table(f, n), before);
  EXPECT_TRUE(mgr.check_invariants());
}

TEST(Reorder, ComplementEdgeFunctionsSurviveSiftAndRandomSwaps) {
  // Mixed-polarity cube unions lean hard on complement edges (every nvar is
  // a complemented edge into the var node); reordering must preserve the
  // denoted function of every live handle, checked on a random point set
  // since n = 10 is too wide for to_table to stay cheap in the swap loop.
  const unsigned n = 10;
  Manager mgr(n);
  Rng rng(0xC0BE5);
  std::vector<Bdd> fs;
  for (int i = 0; i < 8; ++i) {
    Bdd f = Bdd::zero(mgr);
    for (int c = 0; c < 12; ++c) {
      Bdd cube = Bdd::one(mgr);
      for (unsigned v = 0; v < n; ++v)
        if (rng.chance(1, 3)) cube = cube & Bdd::literal(mgr, v, rng.coin());
      f = (i & 1) ? (f | cube) : (f ^ cube);
    }
    fs.push_back(f);
  }
  std::vector<std::vector<bool>> points;
  for (int p = 0; p < 64; ++p) {
    std::vector<bool> a(n);
    for (unsigned v = 0; v < n; ++v) a[v] = rng.coin();
    points.push_back(std::move(a));
  }
  std::vector<std::vector<bool>> before;
  for (const Bdd& f : fs) {
    std::vector<bool> evals;
    for (const auto& a : points) evals.push_back(f.eval(a));
    before.push_back(std::move(evals));
  }

  mgr.sift();
  ASSERT_TRUE(mgr.check_invariants());
  for (int s = 0; s < 40; ++s) {
    mgr.swap_levels(unsigned(rng.below(n - 1)));
    ASSERT_TRUE(mgr.check_invariants()) << "swap " << s;
  }
  for (std::size_t i = 0; i < fs.size(); ++i)
    for (std::size_t p = 0; p < points.size(); ++p)
      ASSERT_EQ(fs[i].eval(points[p]), before[i][p])
          << "function " << i << " point " << p;
}

TEST(Reorder, SiftReturnsExactReachableCount) {
  // sift() tracks the node count incrementally (in-degree bookkeeping plus
  // eager orphan reclamation in swap_levels) instead of re-marking the arena
  // after every swap; the returned count must still be the exact reachable
  // count, and the arena must come out garbage-free.
  const unsigned n = 9;
  Manager mgr(n);
  Rng rng(0x51F7);
  std::vector<Bdd> fs;
  for (int i = 0; i < 6; ++i) {
    Bdd f = Bdd::zero(mgr);
    for (int c = 0; c < 10; ++c) {
      std::vector<unsigned> vars;
      std::vector<bool> phases;
      for (unsigned v = 0; v < n; ++v) {
        if (rng.chance(1, 2)) continue;
        vars.push_back(v);
        phases.push_back(rng.coin());
      }
      f = (i & 1) ? (f | Bdd::cube(mgr, vars, phases))
                  : (f ^ Bdd::cube(mgr, vars, phases));
    }
    fs.push_back(f);
  }
  const std::size_t sifted = mgr.sift();
  EXPECT_EQ(sifted, mgr.reachable_node_count());
  EXPECT_EQ(sifted, mgr.live_node_count());
  EXPECT_TRUE(mgr.check_invariants());
}

TEST(Reorder, GcAfterReorderIsSafe) {
  Manager mgr(6);
  Bdd keep = (Bdd::var(mgr, 0) & Bdd::var(mgr, 5)) | Bdd::var(mgr, 3);
  {
    Bdd junk = Bdd::var(mgr, 1) ^ Bdd::var(mgr, 2) ^ Bdd::var(mgr, 4);
  }
  mgr.set_order({5, 4, 3, 2, 1, 0});
  mgr.garbage_collect();
  EXPECT_TRUE(mgr.check_invariants());
  std::vector<bool> a(6, false);
  a[3] = true;
  EXPECT_TRUE(keep.eval(a));
  a[3] = false;
  EXPECT_FALSE(keep.eval(a));
}

}  // namespace
}  // namespace imodec
