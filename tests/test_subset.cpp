// Tests for the subset(δ, ℓ) threshold construction (paper Fig. 4) and the
// fused cube-threshold variant.

#include <gtest/gtest.h>

#include <bit>

#include "imodec/subset.hpp"

namespace imodec {
namespace {

using bdd::Bdd;
using bdd::Manager;

TEST(Subset, BoundaryCases) {
  Manager mgr(4);
  EXPECT_TRUE(subset_threshold(mgr, 0, 4, 0).is_one());
  EXPECT_TRUE(subset_threshold(mgr, 5, 4, 0).is_zero());
  EXPECT_TRUE(subset_threshold(mgr, 0, 0, 0).is_one());
  EXPECT_TRUE(subset_threshold(mgr, 1, 0, 0).is_zero());
}

TEST(Subset, AtLeastOneIsDisjunction) {
  Manager mgr(3);
  const Bdd tau = subset_threshold(mgr, 1, 3, 0);
  const Bdd expect = Bdd::var(mgr, 0) | Bdd::var(mgr, 1) | Bdd::var(mgr, 2);
  EXPECT_EQ(tau, expect);
}

TEST(Subset, AllIsConjunction) {
  Manager mgr(3);
  const Bdd tau = subset_threshold(mgr, 3, 3, 0);
  const Bdd expect = Bdd::var(mgr, 0) & Bdd::var(mgr, 1) & Bdd::var(mgr, 2);
  EXPECT_EQ(tau, expect);
}

class SubsetThreshold
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(SubsetThreshold, MatchesPopcountSemantics) {
  const auto [delta, ell] = GetParam();
  Manager mgr(ell);
  const Bdd tau = subset_threshold(mgr, delta, ell, 0);
  std::vector<bool> a(ell, false);
  for (std::uint64_t pat = 0; pat < (std::uint64_t{1} << ell); ++pat) {
    for (unsigned v = 0; v < ell; ++v) a[v] = (pat >> v) & 1;
    EXPECT_EQ(tau.eval(a),
              static_cast<unsigned>(std::popcount(pat)) >= delta)
        << "pat " << pat;
  }
}

INSTANTIATE_TEST_SUITE_P(
    DeltaEll, SubsetThreshold,
    ::testing::Values(std::tuple{1u, 5u}, std::tuple{2u, 5u},
                      std::tuple{3u, 5u}, std::tuple{5u, 5u},
                      std::tuple{2u, 7u}, std::tuple{4u, 8u},
                      std::tuple{7u, 8u}, std::tuple{3u, 9u}));

TEST(Subset, VariableOffset) {
  Manager mgr(6);
  const Bdd tau = subset_threshold(mgr, 2, 3, 3);  // over vars 3,4,5
  std::vector<bool> a(6, false);
  a[3] = a[5] = true;
  EXPECT_TRUE(tau.eval(a));
  a[5] = false;
  EXPECT_FALSE(tau.eval(a));
  // Must not depend on vars 0..2.
  const auto sup = tau.support();
  for (unsigned v : sup) EXPECT_GE(v, 3u);
}

TEST(Subset, SizeIsLinearInDeltaTimesEll) {
  // The threshold BDD has O(δ·ℓ) nodes; check a generous bound to catch
  // accidental exponential blowups.
  Manager mgr(32);
  const Bdd tau = subset_threshold(mgr, 16, 32, 0);
  EXPECT_LE(tau.dag_size(), 16u * 32u + 64u);
}

TEST(ThresholdOverCubes, SubstitutesTerms) {
  // Terms: (z0 & z1), (~z0), (z2). At least 2 true.
  Manager mgr(3);
  const Bdd z0 = Bdd::var(mgr, 0), z1 = Bdd::var(mgr, 1), z2 = Bdd::var(mgr, 2);
  const std::vector<Bdd> terms{z0 & z1, ~z0, z2};
  const Bdd t = threshold_over_cubes(mgr, 2, terms);
  std::vector<bool> a(3, false);
  for (std::uint64_t pat = 0; pat < 8; ++pat) {
    for (unsigned v = 0; v < 3; ++v) a[v] = (pat >> v) & 1;
    const int count = (a[0] && a[1]) + (!a[0]) + a[2];
    EXPECT_EQ(t.eval(a), count >= 2) << pat;
  }
}

TEST(ThresholdOverCubes, EmptyTermList) {
  Manager mgr(2);
  EXPECT_TRUE(threshold_over_cubes(mgr, 0, {}).is_one());
  EXPECT_TRUE(threshold_over_cubes(mgr, 1, {}).is_zero());
}

}  // namespace
}  // namespace imodec
