// Tests for XC3000 CLB packing.

#include <gtest/gtest.h>

#include "circuits/gates.hpp"
#include "circuits/registry.hpp"
#include "map/lutflow.hpp"
#include "map/xc3000.hpp"

namespace imodec {
namespace {

using circuits::gate_and;
using circuits::gate_or;

Network five_input_node() {
  Network net("t");
  std::vector<SigId> pis;
  for (int i = 0; i < 5; ++i)
    pis.push_back(net.add_input("x" + std::to_string(i)));
  TruthTable t(5);
  t.set(31, true);
  net.add_output(net.add_node(pis, t), "y");
  return net;
}

TEST(Xc3000, SingleFiveInputNodeIsOneClb) {
  const auto p = pack_xc3000(five_input_node());
  EXPECT_EQ(p.clbs, 1u);
  EXPECT_EQ(p.single_function_blocks, 1u);
  EXPECT_EQ(p.paired_blocks, 0u);
}

TEST(Xc3000, TwoSmallNodesSharingInputsPairUp) {
  Network net("t");
  const SigId a = net.add_input("a");
  const SigId b = net.add_input("b");
  const SigId c = net.add_input("c");
  net.add_output(gate_and(net, a, b), "y0");
  net.add_output(gate_or(net, b, c), "y1");
  const auto p = pack_xc3000(net);
  EXPECT_EQ(p.clbs, 1u);  // union support = {a,b,c} <= 5 pins
  EXPECT_EQ(p.paired_blocks, 1u);
}

TEST(Xc3000, DisjointWideNodesCannotPair) {
  // Two 4-input nodes with disjoint supports need 8 pins: two CLBs.
  Network net("t");
  std::vector<SigId> pis;
  for (int i = 0; i < 8; ++i)
    pis.push_back(net.add_input("x" + std::to_string(i)));
  TruthTable t(4);
  t.set(15, true);
  net.add_output(net.add_node({pis[0], pis[1], pis[2], pis[3]}, t), "y0");
  net.add_output(net.add_node({pis[4], pis[5], pis[6], pis[7]}, t), "y1");
  const auto p = pack_xc3000(net);
  EXPECT_EQ(p.clbs, 2u);
  EXPECT_EQ(p.paired_blocks, 0u);
}

TEST(Xc3000, DanglingNodesAreNotPacked) {
  Network net("t");
  const SigId a = net.add_input("a");
  const SigId b = net.add_input("b");
  const SigId live = gate_and(net, a, b);
  gate_or(net, a, b);  // dead: not reachable from outputs
  net.add_output(live, "y");
  const auto p = pack_xc3000(net);
  EXPECT_EQ(p.clbs, 1u);
}

TEST(Xc3000, ConstantsAndInputsAreFree) {
  Network net("t");
  const SigId a = net.add_input("a");
  const SigId one = net.add_constant(true);
  net.add_output(a, "y0");
  net.add_output(one, "y1");
  const auto p = pack_xc3000(net);
  EXPECT_EQ(p.clbs, 0u);
}

TEST(Xc3000, PackingIsNeverWorseThanNodeCount) {
  const auto collapsed = collapse_network(*circuits::make_benchmark("rd84"));
  ASSERT_TRUE(collapsed.has_value());
  const FlowResult r = decompose_to_luts(*collapsed, {});
  const auto p = pack_xc3000(r.network);
  EXPECT_LE(p.clbs, r.stats.luts);
  EXPECT_GE(p.clbs, (r.stats.luts + 1) / 2);  // at most 2 functions per CLB
}

}  // namespace
}  // namespace imodec
