// Tests for the network simplification pass.

#include <gtest/gtest.h>

#include "circuits/gates.hpp"
#include "circuits/registry.hpp"
#include "logic/simplify.hpp"
#include "logic/simulate.hpp"

namespace imodec {
namespace {

using circuits::gate_and;
using circuits::gate_or;
using circuits::gate_xor;

TEST(Simplify, FoldsConstantFanins) {
  Network net("t");
  const SigId a = net.add_input("a");
  const SigId one = net.add_constant(true);
  const SigId y = gate_and(net, a, one);  // a & 1 == a
  net.add_output(y, "y");
  const Network before = net;
  const auto stats = simplify(net);
  EXPECT_GE(stats.constants_folded, 1u);
  EXPECT_GE(stats.identities_bypassed, 1u);
  EXPECT_TRUE(check_equivalence(before, net).equivalent);
  // Output now points straight at the input.
  EXPECT_EQ(net.outputs()[0], a);
}

TEST(Simplify, ConstantZeroDominatesAnd) {
  Network net("t");
  net.add_input("a");
  const SigId a = net.inputs()[0];
  const SigId zero = net.add_constant(false);
  net.add_output(gate_and(net, a, zero), "y");
  simplify(net);
  EXPECT_FALSE(net.eval({false})[0]);
  EXPECT_FALSE(net.eval({true})[0]);
  EXPECT_EQ(net.node(net.outputs()[0]).kind, Network::Kind::Constant);
}

TEST(Simplify, DropsVacuousFanins) {
  Network net("t");
  const SigId a = net.add_input("a");
  const SigId b = net.add_input("b");
  // A 2-input node that ignores its second input.
  TruthTable t(2);
  t.set(1, true);
  t.set(3, true);  // == var 0
  const SigId y = net.add_node({a, b}, t);
  net.add_output(y, "y");
  const auto stats = simplify(net);
  EXPECT_GE(stats.fanins_dropped, 1u);
  EXPECT_EQ(net.outputs()[0], a);  // collapses to the identity, then bypassed
}

TEST(Simplify, DeduplicatesStructuralTwins) {
  Network net("t");
  const SigId a = net.add_input("a");
  const SigId b = net.add_input("b");
  const SigId x1 = gate_xor(net, a, b);
  const SigId x2 = gate_xor(net, a, b);  // identical twin
  net.add_output(gate_and(net, x1, x2), "y");  // x & x == x after dedupe
  const Network before = net;
  const auto stats = simplify(net);
  EXPECT_GE(stats.nodes_deduped, 1u);
  EXPECT_TRUE(check_equivalence(before, net).equivalent);
  // After dedupe the AND has one distinct fanin; support normalization
  // turns it into the identity, which is bypassed.
  EXPECT_EQ(net.outputs()[0], x1);
}

TEST(Simplify, FixpointOnCleanNetwork) {
  Network net = *circuits::make_benchmark("rd73");
  const Network before = net;
  simplify(net);
  const auto stats2 = simplify(net);
  EXPECT_EQ(stats2.total(), 0u);  // second run is a no-op
  EXPECT_TRUE(check_equivalence(before, net).equivalent);
}

TEST(Simplify, BenchmarksStayEquivalent) {
  for (const char* name : {"rd84", "z4ml", "clip", "misex1", "e64"}) {
    Network net = *circuits::make_benchmark(name);
    const Network before = net;
    simplify(net);
    EXPECT_TRUE(check_equivalence(before, net).equivalent) << name;
  }
}

TEST(Simplify, ChainsOfIdentitiesCollapse) {
  Network net("t");
  const SigId a = net.add_input("a");
  SigId cur = a;
  for (int i = 0; i < 5; ++i)
    cur = net.add_node({cur}, TruthTable::var(1, 0));  // buffer chain
  net.add_output(cur, "y");
  const auto stats = simplify(net);
  EXPECT_EQ(stats.identities_bypassed, 5u);
  EXPECT_EQ(net.outputs()[0], a);
  EXPECT_EQ(net.logic_count(), 0u);
}

}  // namespace
}  // namespace imodec
