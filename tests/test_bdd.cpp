// Unit and property tests for the ROBDD package, cross-checked against truth
// tables as the reference model.

#include <gtest/gtest.h>

#include "bdd/bdd.hpp"
#include "bdd/dot.hpp"
#include "logic/truthtable.hpp"
#include "util/rng.hpp"

#include <algorithm>
#include <sstream>

namespace imodec {
namespace {

using bdd::Bdd;
using bdd::Manager;

/// Reference model: evaluate a BDD exhaustively into a truth table.
TruthTable to_table(const Bdd& f, unsigned n) {
  TruthTable t(n);
  std::vector<bool> a(f.manager()->num_vars(), false);
  for (std::uint64_t row = 0; row < t.num_rows(); ++row) {
    for (unsigned v = 0; v < n; ++v) a[v] = (row >> v) & 1;
    t.set(row, f.eval(a));
  }
  return t;
}

TEST(Bdd, TerminalsAndVars) {
  Manager mgr(4);
  EXPECT_TRUE(Bdd::zero(mgr).is_zero());
  EXPECT_TRUE(Bdd::one(mgr).is_one());
  const Bdd x0 = Bdd::var(mgr, 0);
  EXPECT_FALSE(x0.is_terminal());
  EXPECT_EQ(x0, Bdd::var(mgr, 0));  // unique table canonicity
  EXPECT_EQ(~x0, Bdd::nvar(mgr, 0));
  EXPECT_EQ(~~x0, x0);
}

TEST(Bdd, BasicAlgebra) {
  Manager mgr(3);
  const Bdd a = Bdd::var(mgr, 0), b = Bdd::var(mgr, 1);
  EXPECT_EQ(a & b, b & a);
  EXPECT_EQ(a | b, b | a);
  EXPECT_EQ(a & ~a, Bdd::zero(mgr));
  EXPECT_EQ(a | ~a, Bdd::one(mgr));
  EXPECT_EQ(a ^ a, Bdd::zero(mgr));
  EXPECT_EQ(a ^ ~a, Bdd::one(mgr));
  EXPECT_EQ((a & b) | (a & ~b), a);  // absorption via Shannon
  EXPECT_EQ(~(a & b), ~a | ~b);      // De Morgan
}

TEST(Bdd, IteIdentities) {
  Manager mgr(3);
  const Bdd a = Bdd::var(mgr, 0), b = Bdd::var(mgr, 1), c = Bdd::var(mgr, 2);
  EXPECT_EQ(a.ite(b, c), (a & b) | (~a & c));
  EXPECT_EQ(Bdd::one(mgr).ite(b, c), b);
  EXPECT_EQ(Bdd::zero(mgr).ite(b, c), c);
  EXPECT_EQ(a.ite(b, b), b);
}

TEST(Bdd, CofactorAndSupport) {
  Manager mgr(3);
  const Bdd a = Bdd::var(mgr, 0), b = Bdd::var(mgr, 1), c = Bdd::var(mgr, 2);
  const Bdd f = (a & b) | c;
  EXPECT_EQ(f.cofactor(0, true), b | c);
  EXPECT_EQ(f.cofactor(0, false), c);
  EXPECT_EQ(f.cofactor(2, true), Bdd::one(mgr));
  const auto sup = f.support();
  EXPECT_EQ(sup, (std::vector<unsigned>{0, 1, 2}));
  EXPECT_EQ(f.cofactor(2, false).support(), (std::vector<unsigned>{0, 1}));
}

TEST(Bdd, Quantification) {
  Manager mgr(3);
  const Bdd a = Bdd::var(mgr, 0), b = Bdd::var(mgr, 1), c = Bdd::var(mgr, 2);
  const Bdd f = (a & b) | (~a & c);
  EXPECT_EQ(f.exists({0}), b | c);
  EXPECT_EQ(f.forall({0}), b & c);
  EXPECT_EQ(f.exists({0, 1, 2}), Bdd::one(mgr));
  EXPECT_EQ(f.forall({0, 1, 2}), Bdd::zero(mgr));
}

TEST(Bdd, Compose) {
  Manager mgr(4);
  const Bdd a = Bdd::var(mgr, 0), b = Bdd::var(mgr, 1), c = Bdd::var(mgr, 2),
            d = Bdd::var(mgr, 3);
  const Bdd f = a ^ b;
  EXPECT_EQ(f.compose(1, c & d), a ^ (c & d));
  EXPECT_EQ(f.compose(0, Bdd::zero(mgr)), b);
}

TEST(Bdd, VectorCompose) {
  Manager mgr(4);
  Manager& m = mgr;
  const Bdd a = Bdd::var(m, 0), b = Bdd::var(m, 1), c = Bdd::var(m, 2),
            d = Bdd::var(m, 3);
  const Bdd f = (a & b) | (~a & ~b);
  std::vector<bdd::NodeId> map(4, Manager::kNoReplacement);
  map[0] = (c ^ d).node();
  map[1] = (c & d).node();
  const Bdd g(&m, m.vector_compose(f.node(), map));
  const Bdd expect = ((c ^ d) & (c & d)) | (~(c ^ d) & ~(c & d));
  EXPECT_EQ(g, expect);
}

TEST(Bdd, Cube) {
  Manager mgr(4);
  const Bdd cube = Bdd::cube(mgr, {2, 0}, {true, false});
  EXPECT_EQ(cube, ~Bdd::var(mgr, 0) & Bdd::var(mgr, 2));
  EXPECT_EQ(Bdd::cube(mgr, {}, {}), Bdd::one(mgr));
}

TEST(Bdd, SatCount) {
  Manager mgr(4);
  const Bdd a = Bdd::var(mgr, 0), b = Bdd::var(mgr, 1);
  EXPECT_DOUBLE_EQ(Bdd::zero(mgr).sat_count(), 0.0);
  EXPECT_DOUBLE_EQ(Bdd::one(mgr).sat_count(), 16.0);
  EXPECT_DOUBLE_EQ(a.sat_count(), 8.0);
  EXPECT_DOUBLE_EQ((a & b).sat_count(), 4.0);
  EXPECT_DOUBLE_EQ((a | b).sat_count(), 12.0);
  EXPECT_DOUBLE_EQ((a ^ b).sat_count(), 8.0);
}

TEST(Bdd, PickMinterm) {
  Manager mgr(3);
  const Bdd f = (Bdd::var(mgr, 0) & ~Bdd::var(mgr, 2));
  std::vector<bool> a;
  ASSERT_TRUE(mgr.pick_minterm(f.node(), a));
  EXPECT_TRUE(f.eval(a));
  EXPECT_FALSE(mgr.pick_minterm(bdd::kFalse, a));
}

TEST(Bdd, ForeachMinterm) {
  Manager mgr(3);
  const Bdd f = Bdd::var(mgr, 0) ^ Bdd::var(mgr, 2);
  std::vector<std::vector<bool>> seen;
  mgr.foreach_minterm(f.node(), {0, 1, 2},
                      [&](const std::vector<bool>& a) {
                        seen.push_back(a);
                        return true;
                      });
  EXPECT_EQ(seen.size(), 4u);
  for (const auto& a : seen) EXPECT_NE(a[0], a[2]);
}

TEST(Bdd, ForeachMintermEarlyStop) {
  Manager mgr(3);
  const Bdd f = Bdd::one(mgr);
  int count = 0;
  mgr.foreach_minterm(f.node(), {0, 1, 2}, [&](const std::vector<bool>&) {
    return ++count < 3;
  });
  EXPECT_EQ(count, 3);
}

TEST(Bdd, GarbageCollectKeepsLiveNodes) {
  Manager mgr(6);
  Bdd keep = Bdd::var(mgr, 0);
  for (unsigned v = 1; v < 6; ++v) keep = keep ^ Bdd::var(mgr, v);
  const std::size_t keep_size = keep.dag_size();
  {
    // Generate garbage.
    Bdd junk = Bdd::one(mgr);
    for (unsigned v = 0; v < 6; ++v)
      junk = junk & (Bdd::var(mgr, v) | Bdd::var(mgr, (v + 1) % 6));
  }
  const std::size_t before = mgr.live_node_count();
  mgr.garbage_collect();
  EXPECT_LT(mgr.live_node_count(), before);
  EXPECT_TRUE(mgr.check_invariants());
  EXPECT_EQ(keep.dag_size(), keep_size);
  // keep must still be the 6-input parity function.
  std::vector<bool> a(6, false);
  a[3] = true;
  EXPECT_TRUE(keep.eval(a));
  a[5] = true;
  EXPECT_FALSE(keep.eval(a));
}

TEST(Bdd, NodesAreReusedAfterGc) {
  Manager mgr(8);
  std::size_t peak_after_first = 0;
  for (int round = 0; round < 6; ++round) {
    {
      Bdd junk = Bdd::zero(mgr);
      for (unsigned v = 0; v + 1 < 8; ++v)
        junk = junk | (Bdd::var(mgr, v) & Bdd::var(mgr, v + 1));
    }
    mgr.garbage_collect();
    EXPECT_TRUE(mgr.check_invariants());
    EXPECT_EQ(mgr.live_node_count(), 1u);  // only the terminal survives
    // The free list must be reused: the arena peak stays flat after round 0.
    if (round == 0)
      peak_after_first = mgr.peak_node_count();
    else
      EXPECT_EQ(mgr.peak_node_count(), peak_after_first) << round;
  }
}

TEST(Bdd, DagSize) {
  Manager mgr(4);
  Bdd parity = Bdd::zero(mgr);
  for (unsigned v = 0; v < 4; ++v) parity = parity ^ Bdd::var(mgr, v);
  // Parity of n variables collapses to n internal nodes with complement
  // edges: x_i and !x_i share a node, so each level needs just one.
  EXPECT_EQ(parity.dag_size(), 4u);
}

// --- Flat-table resize and counter invariants -------------------------------

TEST(Bdd, UniqueTableResizeInvariants) {
  Manager mgr(16);
  Rng rng(0x7AB1E);
  const auto is_pow2 = [](std::size_t x) { return x && (x & (x - 1)) == 0; };
  ASSERT_TRUE(is_pow2(mgr.unique_table_size()));
  const std::size_t initial = mgr.unique_table_size();

  // Union enough random cubes to force several table doublings; handles keep
  // everything live so growth cannot be masked by collection.
  std::vector<Bdd> roots;
  Bdd f = Bdd::zero(mgr);
  std::size_t last = initial;
  for (int c = 0; c < 400; ++c) {
    Bdd cube = Bdd::one(mgr);
    for (unsigned v = 0; v < 16; ++v)
      if (rng.chance(1, 2)) cube = cube & Bdd::literal(mgr, v, rng.coin());
    f = f | cube;
    roots.push_back(f);

    const std::size_t size = mgr.unique_table_size();
    ASSERT_TRUE(is_pow2(size));
    ASSERT_GE(size, last);  // growth is monotone (no shrink mid-build)
    last = size;
    // The 3/4 load bound: live internal nodes can never exceed occupancy,
    // and growth keeps occupancy at or below 3/4 of the slots.
    ASSERT_LE((mgr.live_node_count() - 1) * 4, size * 3);
  }
  EXPECT_GT(mgr.unique_table_size(), initial) << "test never grew the table";
  EXPECT_TRUE(mgr.check_invariants());
}

TEST(Bdd, ComputedCacheTracksUniqueTable) {
  Manager mgr(14);
  Rng rng(0xCAC4E);
  const std::size_t kMin = std::size_t(1) << 12;
  const std::size_t kMax = std::size_t(1) << 21;
  const auto expected = [&] {
    return std::min(std::max(kMin, mgr.unique_table_size() / 2), kMax);
  };
  ASSERT_EQ(mgr.computed_cache_size(), expected());
  std::vector<Bdd> roots;
  Bdd f = Bdd::zero(mgr);
  for (int c = 0; c < 300; ++c) {
    Bdd cube = Bdd::one(mgr);
    for (unsigned v = 0; v < 14; ++v)
      if (rng.chance(1, 2)) cube = cube & Bdd::literal(mgr, v, rng.coin());
    f = f ^ cube;
    roots.push_back(f);
    ASSERT_EQ(mgr.computed_cache_size(), expected());
  }
  EXPECT_GT(mgr.computed_cache_size(), kMin) << "cache never grew";
}

TEST(Bdd, StatsLookupsNeverBelowHits) {
  Manager mgr(10);
  Rng rng(0x57A75);
  Bdd f = Bdd::var(mgr, 0);
  for (int i = 0; i < 200; ++i) {
    const Bdd g = Bdd::literal(mgr, unsigned(rng.below(10)), rng.coin());
    switch (rng.below(3)) {
      case 0: f = f & g; break;
      case 1: f = f | g; break;
      default: f = f ^ g; break;
    }
    const auto& s = mgr.stats();
    ASSERT_GE(s.cache_lookups, s.cache_hits);
    ASSERT_GE(s.cache_hit_rate(), 0.0);
    ASSERT_LE(s.cache_hit_rate(), 1.0);
  }
  EXPECT_GT(mgr.stats().cache_lookups, 0u);
}

TEST(Bdd, RepeatedIdenticalOpsRaiseHitRate) {
  Manager mgr(8);
  Rng rng(0x41717);
  Bdd f = Bdd::zero(mgr);
  Bdd g = Bdd::one(mgr);
  for (int c = 0; c < 6; ++c) {
    Bdd cube = Bdd::one(mgr);
    for (unsigned v = 0; v < 8; ++v)
      if (rng.chance(1, 2)) cube = cube & Bdd::literal(mgr, v, rng.coin());
    if (c & 1)
      f = f | cube;
    else
      g = g & ~cube;
  }
  const Bdd first = f & g;  // populates the computed table
  double rate = mgr.stats().cache_hit_rate();
  for (int i = 0; i < 16; ++i) {
    const Bdd again = f & g;  // one lookup, one hit — a pure cache replay
    ASSERT_EQ(again, first);
    const double now = mgr.stats().cache_hit_rate();
    ASSERT_GE(now, rate) << "hit rate dropped on an identical op";
    rate = now;
  }
  EXPECT_GT(rate, 0.0);
}

TEST(Bdd, DotExport) {
  Manager mgr(2);
  const Bdd f = Bdd::var(mgr, 0) & Bdd::var(mgr, 1);
  std::ostringstream os;
  bdd::write_dot(os, {f}, {"a", "b"});
  const std::string dot = os.str();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\"a\""), std::string::npos);
  EXPECT_NE(dot.find("\"b\""), std::string::npos);
}

// --- Property tests against the truth-table model --------------------------

class BddRandomOps : public ::testing::TestWithParam<int> {};

TEST_P(BddRandomOps, MatchesTruthTableModel) {
  const unsigned n = 6;
  Manager mgr(n);
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);

  // Random expression DAG over n variables, mirrored on TruthTables.
  std::vector<Bdd> bdds;
  std::vector<TruthTable> tables;
  for (unsigned v = 0; v < n; ++v) {
    bdds.push_back(Bdd::var(mgr, v));
    tables.push_back(TruthTable::var(n, v));
  }
  for (int step = 0; step < 40; ++step) {
    const std::size_t i = rng.below(bdds.size());
    const std::size_t j = rng.below(bdds.size());
    switch (rng.below(5)) {
      case 0:
        bdds.push_back(bdds[i] & bdds[j]);
        tables.push_back(tables[i] & tables[j]);
        break;
      case 1:
        bdds.push_back(bdds[i] | bdds[j]);
        tables.push_back(tables[i] | tables[j]);
        break;
      case 2:
        bdds.push_back(bdds[i] ^ bdds[j]);
        tables.push_back(tables[i] ^ tables[j]);
        break;
      case 3:
        bdds.push_back(~bdds[i]);
        tables.push_back(~tables[i]);
        break;
      default: {
        const unsigned v = static_cast<unsigned>(rng.below(n));
        const bool phase = rng.coin();
        bdds.push_back(bdds[i].cofactor(v, phase));
        tables.push_back(tables[i].cofactor(v, phase));
        break;
      }
    }
  }
  for (std::size_t idx = 0; idx < bdds.size(); ++idx) {
    EXPECT_EQ(to_table(bdds[idx], n), tables[idx]) << "expr " << idx;
    EXPECT_DOUBLE_EQ(bdds[idx].sat_count(),
                     static_cast<double>(tables[idx].count_ones()));
  }
  EXPECT_TRUE(mgr.check_invariants());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddRandomOps, ::testing::Range(0, 8));

class BddQuantifyProperty : public ::testing::TestWithParam<int> {};

TEST_P(BddQuantifyProperty, ExistsEqualsOrOfCofactors) {
  const unsigned n = 5;
  Manager mgr(n);
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
  // Random function via random truth table.
  TruthTable t(n);
  for (std::uint64_t row = 0; row < t.num_rows(); ++row)
    t.set(row, rng.coin());
  // Build its BDD via minterm expansion.
  Bdd f = Bdd::zero(mgr);
  for (std::uint64_t row = 0; row < t.num_rows(); ++row) {
    if (!t.get(row)) continue;
    std::vector<unsigned> vars(n);
    std::vector<bool> phases(n);
    for (unsigned v = 0; v < n; ++v) {
      vars[v] = v;
      phases[v] = (row >> v) & 1;
    }
    f = f | Bdd::cube(mgr, vars, phases);
  }
  const unsigned v = static_cast<unsigned>(rng.below(n));
  EXPECT_EQ(f.exists({v}), f.cofactor(v, false) | f.cofactor(v, true));
  EXPECT_EQ(f.forall({v}), f.cofactor(v, false) & f.cofactor(v, true));
  // Quantifying all variables yields a constant matching satisfiability.
  std::vector<unsigned> all(n);
  for (unsigned i = 0; i < n; ++i) all[i] = i;
  EXPECT_EQ(f.exists(all).is_one(), t.count_ones() > 0);
  EXPECT_EQ(f.forall(all).is_one(), t.count_ones() == t.num_rows());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddQuantifyProperty, ::testing::Range(0, 10));

TEST(Bdd, QuantifyAndCofactorSurviveArenaGrowth) {
  // Regression: cofactor_rec/quantify_rec once held a Node& across recursive
  // calls, but make_node can reallocate the arena mid-recursion and the
  // reference dangled. Operations big enough to force several reallocations
  // pin semantics on random points (sanitizer builds catch the dangle
  // directly).
  const unsigned n = 16;
  Manager mgr(n);
  Rng rng(0xA11A);
  Bdd f = Bdd::zero(mgr);
  for (int c = 0; c < 48; ++c) {
    Bdd cube = Bdd::one(mgr);
    for (unsigned v = 0; v < n; ++v)
      if (rng.chance(1, 3)) cube = cube & Bdd::literal(mgr, v, rng.coin());
    f = f ^ cube;
  }
  std::vector<std::vector<bool>> points;
  for (int p = 0; p < 32; ++p) {
    std::vector<bool> a(n);
    for (unsigned v = 0; v < n; ++v) a[v] = rng.coin();
    points.push_back(std::move(a));
  }
  const std::vector<unsigned> qs = {2, 7, 11};
  const Bdd ex = f.exists(qs);
  const Bdd fa = f.forall(qs);
  const Bdd c0 = f.cofactor(5, false);
  const Bdd c1 = f.cofactor(5, true);
  for (auto a : points) {
    bool any = false, all = true;
    for (unsigned m = 0; m < 8; ++m) {
      for (std::size_t k = 0; k < qs.size(); ++k) a[qs[k]] = (m >> k) & 1;
      const bool val = f.eval(a);
      any = any || val;
      all = all && val;
    }
    EXPECT_EQ(ex.eval(a), any);
    EXPECT_EQ(fa.eval(a), all);
    a[5] = false;
    EXPECT_EQ(c0.eval(a), f.eval(a));
    a[5] = true;
    EXPECT_EQ(c1.eval(a), f.eval(a));
  }
  // Duplicates in the quantified set collapse to the same exact cache key.
  EXPECT_EQ(f.exists({2, 2, 7, 7, 11}), ex);
  EXPECT_EQ(f.forall({11, 7, 2, 7, 11}), fa);

  // Grind quantifications over fresh variable sets, keeping every result
  // live, until the cumulative allocation count has doubled: with nothing
  // dying, fresh nodes land on push_back, so the arena must cross a capacity
  // boundary — i.e. reallocate — inside the quantification recursion.
  const std::uint64_t start_alloc = mgr.stats().nodes_allocated;
  std::vector<Bdd> keep;
  std::vector<std::vector<unsigned>> sets;
  for (int round = 0;
       mgr.stats().nodes_allocated < 2 * start_alloc && round < 400; ++round) {
    std::vector<unsigned> set;
    for (unsigned v = 0; v < n; ++v)
      if (rng.chance(1, 3)) set.push_back(v);
    if (set.empty()) set.push_back(static_cast<unsigned>(round) % n);
    keep.push_back((round & 1) ? f.exists(set) : f.forall(set));
    sets.push_back(std::move(set));
  }
  EXPECT_GE(mgr.stats().nodes_allocated, 2 * start_alloc)
      << "grind too small to force an arena reallocation";
  // Spot-check a few ground results against per-point expansion.
  for (std::size_t i = 0; i < keep.size(); i += keep.size() / 8 + 1) {
    const auto& set = sets[i];
    for (std::size_t p = 0; p < points.size(); p += 7) {
      auto a = points[p];
      bool any = false, all = true;
      for (std::uint64_t m = 0; m < (std::uint64_t{1} << set.size()); ++m) {
        for (std::size_t k = 0; k < set.size(); ++k) a[set[k]] = (m >> k) & 1;
        const bool val = f.eval(a);
        any = any || val;
        all = all && val;
      }
      EXPECT_EQ(keep[i].eval(a), (i & 1) ? any : all)
          << "set " << i << " point " << p;
    }
  }
  EXPECT_TRUE(mgr.check_invariants());
}

}  // namespace
}  // namespace imodec
