// Tests for cubes, covers, and the ISOP extraction.

#include <gtest/gtest.h>

#include "logic/cube.hpp"
#include "util/rng.hpp"

namespace imodec {
namespace {

TEST(Cube, ContainsAndLiterals) {
  Cube c;  // tautology cube
  EXPECT_TRUE(c.contains(0));
  EXPECT_TRUE(c.contains(7));
  EXPECT_EQ(c.num_literals(), 0u);

  Cube d{0b101, 0b001};  // x0 & ~x2
  EXPECT_TRUE(d.contains(0b001));
  EXPECT_TRUE(d.contains(0b011));
  EXPECT_FALSE(d.contains(0b000));
  EXPECT_FALSE(d.contains(0b101));
  EXPECT_EQ(d.num_literals(), 2u);
}

TEST(Cube, Rendering) {
  Cube d{0b101, 0b001};
  EXPECT_EQ(d.to_pla(3), "1-0");
  EXPECT_EQ(d.to_algebraic({"a", "b", "c"}), "a ~c");
  EXPECT_EQ(Cube{}.to_algebraic({"a"}), "1");
}

TEST(Cover, ToTruthTable) {
  Cover cover(2);
  cover.add(Cube{0b01, 0b01});  // x0
  cover.add(Cube{0b10, 0b10});  // x1
  const TruthTable t = cover.to_truthtable();
  EXPECT_EQ(t.to_string(), "0111");
}

TEST(Cover, Algebraic) {
  Cover cover(2);
  EXPECT_EQ(cover.to_algebraic({"a", "b"}), "0");
  cover.add(Cube{0b11, 0b01});
  EXPECT_EQ(cover.to_algebraic({"a", "b"}), "a ~b");
}

TEST(Isop, Constants) {
  EXPECT_TRUE(isop(TruthTable(3)).empty());
  const Cover one = isop(TruthTable(3, true));
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one.cubes()[0].num_literals(), 0u);
}

TEST(Isop, SingleVariable) {
  const Cover c = isop(TruthTable::var(3, 1));
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c.cubes()[0].to_pla(3), "-1-");
}

TEST(Isop, XorNeedsTwoCubes) {
  const TruthTable f = TruthTable::var(2, 0) ^ TruthTable::var(2, 1);
  const Cover c = isop(f);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.to_truthtable(), f);
}

class IsopRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(IsopRoundTrip, CoverEqualsFunction) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 6151 + 3);
  const unsigned n = 2 + GetParam() % 5;  // 2..6 variables
  TruthTable f(n);
  for (std::uint64_t row = 0; row < f.num_rows(); ++row)
    f.set(row, rng.coin());
  const Cover c = isop(f);
  EXPECT_EQ(c.to_truthtable(), f);
  // Irredundancy: removing any cube must lose part of the onset.
  for (std::size_t skip = 0; skip < c.size(); ++skip) {
    Cover reduced(n);
    for (std::size_t i = 0; i < c.size(); ++i)
      if (i != skip) reduced.add(c.cubes()[i]);
    EXPECT_NE(reduced.to_truthtable(), f) << "cube " << skip << " redundant";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IsopRoundTrip, ::testing::Range(0, 15));

TEST(DefaultVarNames, Format) {
  const auto names = default_var_names(3, "v");
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "v0");
  EXPECT_EQ(names[2], "v2");
}

}  // namespace
}  // namespace imodec
