// Tests for the exact verification subsystem: the BDD miter oracle
// (verify/miter), the fuzz case generator (verify/gen), the counterexample
// shrinker (verify/shrink), and the interface-mismatch handling of
// logic/simulate.

#include <gtest/gtest.h>

#include <sstream>

#include "circuits/registry.hpp"
#include "logic/pla.hpp"
#include "logic/simulate.hpp"
#include "map/driver.hpp"
#include "util/rng.hpp"
#include "verify/fuzz.hpp"
#include "verify/gen.hpp"
#include "verify/miter.hpp"
#include "verify/shrink.hpp"

namespace imodec {
namespace {

using verify::FuzzCase;
using verify::check_miter;

/// Values of every signal under one input assignment (the tests need
/// internal node values to build observable mutations).
std::vector<bool> simulate_all(const Network& net,
                               const std::vector<bool>& input_values) {
  std::vector<bool> value(net.node_count(), false);
  for (SigId s : net.topo_order()) {
    const Network::Node& node = net.node(s);
    switch (node.kind) {
      case Network::Kind::Input: {
        const auto& ins = net.inputs();
        for (std::size_t i = 0; i < ins.size(); ++i)
          if (ins[i] == s) value[s] = input_values[i];
        break;
      }
      case Network::Kind::Constant:
        value[s] = node.func.eval(0);
        break;
      case Network::Kind::Logic: {
        std::uint64_t row = 0;
        for (std::size_t i = 0; i < node.fanins.size(); ++i)
          if (value[node.fanins[i]]) row |= std::uint64_t{1} << i;
        value[s] = node.func.eval(row);
        break;
      }
    }
  }
  return value;
}

TEST(Miter, SelfEquivalenceOnEveryRegistryCircuit) {
  for (const auto& name : circuits::benchmark_names()) {
    const auto net = circuits::make_benchmark(name);
    ASSERT_TRUE(net.has_value()) << name;
    const auto mr = check_miter(*net, *net);
    EXPECT_TRUE(mr.proven) << name;
    EXPECT_TRUE(mr.equivalent) << name;
    EXPECT_FALSE(mr.interface_mismatch) << name;
  }
}

TEST(Miter, AgreesWithExhaustiveSimulationAfterSynthesis) {
  for (const auto& name : circuits::benchmark_names()) {
    const auto net = circuits::make_benchmark(name);
    ASSERT_TRUE(net.has_value()) << name;
    if (net->num_inputs() > 16) continue;  // keep simulation exhaustive
    SynthesisConfig opts;
    opts.verify = VerifyMode::off;
    Network mapped;
    run_synthesis(*net, opts, mapped);

    const auto mr = check_miter(*net, mapped);
    const auto eq = check_equivalence(*net, mapped);
    ASSERT_TRUE(mr.proven) << name;
    ASSERT_TRUE(eq.exhaustive) << name;
    EXPECT_EQ(mr.equivalent, eq.equivalent) << name;
    EXPECT_TRUE(mr.equivalent) << name;
  }
}

// Flip one observable truth-table row (a single-minterm "cube" mutation) in
// the node driving each circuit's first logic output: the miter must refute
// equivalence and return a counterexample that simulation confirms.
TEST(Miter, CatchesSingleGateMutationOnEveryRegistryCircuit) {
  for (const auto& name : circuits::benchmark_names()) {
    const auto net = circuits::make_benchmark(name);
    ASSERT_TRUE(net.has_value()) << name;

    // First output driven by a logic node.
    SigId target = kInvalidSig;
    std::size_t out_idx = 0;
    for (std::size_t j = 0; j < net->outputs().size(); ++j) {
      if (net->node(net->outputs()[j]).kind == Network::Kind::Logic) {
        target = net->outputs()[j];
        out_idx = j;
        break;
      }
    }
    ASSERT_NE(target, kInvalidSig) << name;

    // The fanin pattern reached under the all-zero input is achievable by
    // construction, so flipping that row flips the output there.
    const std::vector<bool> zeros(net->num_inputs(), false);
    const std::vector<bool> values = simulate_all(*net, zeros);
    Network mutated = *net;
    Network::Node& node = mutated.node(target);
    std::uint64_t row = 0;
    for (std::size_t i = 0; i < node.fanins.size(); ++i)
      if (values[node.fanins[i]]) row |= std::uint64_t{1} << i;
    node.func.set(row, !node.func.get(row));

    const auto mr = check_miter(*net, mutated);
    ASSERT_TRUE(mr.proven) << name;
    EXPECT_FALSE(mr.equivalent) << name;
    ASSERT_TRUE(mr.counterexample.has_value()) << name;
    // The counterexample must actually witness the difference.
    const auto oa = net->eval(*mr.counterexample);
    const auto ob = mutated.eval(*mr.counterexample);
    EXPECT_NE(oa, ob) << name;
    (void)out_idx;
  }
}

// The acceptance bar of this subsystem: the sampled-regime Table 2 circuits
// (>16 inputs) now get a proof, not 4096 vectors, within the default node
// budget.
TEST(Miter, ProvesWideTable2CircuitsExactly) {
  for (const char* name : {"count", "e64", "rot"}) {
    const auto net = circuits::make_benchmark(name);
    ASSERT_TRUE(net.has_value()) << name;
    ASSERT_GT(net->num_inputs(), 16u) << name;
    Network mapped;
    const DriverReport rep = run_synthesis(*net, {}, mapped);
    EXPECT_EQ(rep.verify_mode, VerifyMode::exact) << name;
    EXPECT_TRUE(rep.verify_proven) << name;
    EXPECT_TRUE(rep.verified) << name;
    EXPECT_TRUE(rep.verified_exhaustive) << name;
  }
}

TEST(Miter, AutoModeFallsBackToSimulationOnTinyBudget) {
  const auto net = circuits::make_benchmark("count");  // 35 inputs
  SynthesisConfig opts;
  opts.verify_node_budget = 8;  // nothing fits in 8 nodes
  Network mapped;
  const DriverReport rep = run_synthesis(*net, opts, mapped);
  EXPECT_EQ(rep.verify_mode, VerifyMode::sim);
  EXPECT_FALSE(rep.verify_proven);
  EXPECT_TRUE(rep.verified);
  EXPECT_FALSE(rep.verified_exhaustive);  // 35 inputs: sampled
}

TEST(Miter, InterfaceMismatchReportedNotAsserted) {
  Network a("a"), b("b"), c("c");
  const SigId ax = a.add_input("x");
  a.add_output(ax, "f");
  const SigId bx = b.add_input("x");
  b.add_input("y");
  b.add_output(bx, "f");
  const SigId cx = c.add_input("x");
  c.add_output(cx, "f");
  c.add_output(cx, "g");

  for (const Network* other : {&b, &c}) {
    const auto mr = check_miter(a, *other);
    EXPECT_TRUE(mr.proven);
    EXPECT_FALSE(mr.equivalent);
    EXPECT_TRUE(mr.interface_mismatch);

    const auto eq = check_equivalence(a, *other);
    EXPECT_FALSE(eq.equivalent);
    EXPECT_TRUE(eq.interface_mismatch);
    EXPECT_FALSE(eq.counterexample.has_value());
  }

  // Matching interfaces never set the flag.
  EXPECT_FALSE(check_equivalence(a, a).interface_mismatch);
  EXPECT_FALSE(check_miter(a, a).interface_mismatch);
}

TEST(Generator, SameSeedSameCase) {
  Rng a(123), b(123);
  const FuzzCase ca = verify::random_case(a);
  const FuzzCase cb = verify::random_case(b);
  EXPECT_EQ(ca.to_pla(), cb.to_pla());
}

TEST(Generator, CasesStayWithinBounds) {
  verify::GenOptions opts;
  opts.min_inputs = 4;
  opts.max_inputs = 9;
  opts.min_outputs = 2;
  opts.max_outputs = 3;
  opts.max_cubes_per_output = 5;
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const FuzzCase c = verify::random_case(rng, opts);
    EXPECT_GE(c.num_inputs, 4u);
    EXPECT_LE(c.num_inputs, 9u);
    EXPECT_GE(c.num_outputs(), 2u);
    EXPECT_LE(c.num_outputs(), 3u);
    for (const Cover& cov : c.outputs) {
      EXPECT_GE(cov.size(), 1u);
      EXPECT_LE(cov.size(), 5u);
      EXPECT_EQ(cov.num_vars(), c.num_inputs);
    }
  }
}

TEST(Generator, PlaRoundTripIsStructural) {
  Rng rng(42);
  for (int i = 0; i < 20; ++i) {
    const FuzzCase c = verify::random_case(rng);
    std::istringstream pla(c.to_pla());
    const Network reread = read_pla(pla, c.name);
    EXPECT_TRUE(structurally_equal(c.to_network(), reread));
  }
}

// Failure model: "some output is 1 on the all-ones vector". Monotone under
// all shrink edits that keep a witnessing cube, so the shrinker must reach
// the 1-output / 1-cube / 1-input fixpoint.
TEST(Shrinker, ReducesToMinimalWitness) {
  const auto fails = [](const FuzzCase& c) {
    const Network net = c.to_network();
    const std::vector<bool> ones(c.num_inputs, true);
    for (bool bit : net.eval(ones))
      if (bit) return true;
    return false;
  };

  FuzzCase c;
  c.num_inputs = 4;
  {
    Cover c0(4);
    c0.add(Cube{0b0011, 0b0001});  // x0 ~x1
    c0.add(Cube{0b0100, 0b0100});  // x2  (witness at all-ones)
    Cover c1(4);
    c1.add(Cube{0b1111, 0b1111});  // x0 x1 x2 x3 (witness)
    c1.add(Cube{0b1000, 0b0000});  // ~x3
    Cover c2(4);
    c2.add(Cube{0b1000, 0b0000});  // ~x3
    c.outputs = {c0, c1, c2};
  }
  ASSERT_TRUE(fails(c));

  verify::ShrinkStats stats;
  const FuzzCase shrunk = verify::shrink_case(c, fails, &stats);
  EXPECT_TRUE(fails(shrunk));  // the repro still reproduces
  EXPECT_EQ(shrunk.num_outputs(), 1u);
  EXPECT_EQ(shrunk.total_cubes(), 1u);
  EXPECT_EQ(shrunk.num_inputs, 1u);
  EXPECT_GT(stats.predicate_calls, 0u);
  EXPECT_GT(stats.outputs_dropped + stats.cubes_deleted + stats.inputs_merged,
            0u);
}

TEST(Shrinker, ShrunkCaseStillFailsOnRandomCases) {
  // Same monotone failure model over random cases: whatever the shrinker
  // returns must still satisfy the predicate and never grow.
  const auto fails = [](const FuzzCase& c) {
    const Network net = c.to_network();
    const std::vector<bool> ones(c.num_inputs, true);
    for (bool bit : net.eval(ones))
      if (bit) return true;
    return false;
  };
  Rng rng(2026);
  int shrunk_cases = 0;
  for (int i = 0; i < 20 && shrunk_cases < 5; ++i) {
    const FuzzCase c = verify::random_case(rng);
    if (!fails(c)) continue;
    ++shrunk_cases;
    const FuzzCase s = verify::shrink_case(c, fails);
    EXPECT_TRUE(fails(s));
    EXPECT_LE(s.num_inputs, c.num_inputs);
    EXPECT_LE(s.num_outputs(), c.num_outputs());
    EXPECT_LE(s.total_cubes(), c.total_cubes());
  }
  EXPECT_GT(shrunk_cases, 0);
}

TEST(Fuzz, SmallFixedSeedRunIsClean) {
  verify::FuzzOptions opts;
  opts.seed = 99;
  opts.cases = 4;
  opts.gen.max_inputs = 6;
  const verify::FuzzReport rep = verify::run_fuzz(opts);
  EXPECT_EQ(rep.cases, 4u);
  EXPECT_GT(rep.checks, 0u);
  EXPECT_TRUE(rep.ok()) << verify::format_fuzz_report(rep);
}

TEST(Fuzz, DefaultConfigsAreValid) {
  for (const auto& fc : verify::default_fuzz_configs()) {
    const auto diags = fc.cfg.validate();
    EXPECT_TRUE(diags.empty())
        << fc.label << ": " << (diags.empty() ? "" : diags.front());
  }
}

}  // namespace
}  // namespace imodec
