// Tests for the bound-set selection heuristic.

#include <gtest/gtest.h>

#include "decomp/varpart.hpp"
#include "util/rng.hpp"

namespace imodec {
namespace {

TEST(VarPart, EvaluateSpecificBoundSet) {
  // f = mux: output = x[sel] with sel on vars {0,1}, data on {2,3,4,5}.
  TruthTable f(6);
  for (std::uint64_t row = 0; row < 64; ++row) {
    const unsigned sel = row & 3;
    f.set(row, (row >> (2 + sel)) & 1);
  }
  // Bound set = data bits {2,3,4,5}: columns distinguished by all 16
  // assignments? Selector in free set reads one data bit at a time; columns
  // equal iff identical data vector: ℓ = 16 -> trivial (c = b = 4).
  auto full = evaluate_bound_set({f}, 6, {2, 3, 4, 5}, false);
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(full->locals[0].num_classes, 16u);
  EXPECT_FALSE(
      evaluate_bound_set({f}, 6, {2, 3, 4, 5}, true).has_value());
}

TEST(VarPart, FindsDecomposableBoundSet) {
  // f = (x0 ^ x1 ^ x2) & (x3 | x4): bound {0,1,2} gives ℓ = 2.
  const TruthTable parity = TruthTable::var(5, 0) ^ TruthTable::var(5, 1) ^
                            TruthTable::var(5, 2);
  const TruthTable f = parity & (TruthTable::var(5, 3) | TruthTable::var(5, 4));
  VarPartOptions opts;
  opts.bound_size = 3;
  const auto choice = choose_bound_set({f}, 5, opts);
  ASSERT_TRUE(choice.has_value());
  // The best bound set yields 2 local classes; any other split of a parity-
  // like function stays >= 2, so p == 2 proves the heuristic found {0,1,2}.
  EXPECT_EQ(choice->locals[0].num_classes, 2u);
  EXPECT_EQ(choice->p(), 2u);
  EXPECT_EQ(choice->vp.bound, (std::vector<unsigned>{0, 1, 2}));
}

TEST(VarPart, BoundSizeClampedToNMinusOne) {
  const TruthTable f = TruthTable::var(3, 0) & TruthTable::var(3, 1) &
                       TruthTable::var(3, 2);
  VarPartOptions opts;
  opts.bound_size = 5;  // > n-1
  const auto choice = choose_bound_set({f}, 3, opts);
  ASSERT_TRUE(choice.has_value());
  EXPECT_EQ(choice->vp.b(), 2u);
  EXPECT_EQ(choice->vp.free_set.size(), 1u);
}

TEST(VarPart, MultiOutputMinimizesGlobalClasses) {
  // Two outputs sharing structure on {0,1,2}: the heuristic should choose a
  // bound set where the global partition stays small.
  const TruthTable s =
      TruthTable::var(6, 0) ^ TruthTable::var(6, 1) ^ TruthTable::var(6, 2);
  const TruthTable f1 = s & TruthTable::var(6, 3);
  const TruthTable f2 = s | (TruthTable::var(6, 4) & TruthTable::var(6, 5));
  VarPartOptions opts;
  opts.bound_size = 3;
  const auto choice = choose_bound_set({f1, f2}, 6, opts);
  ASSERT_TRUE(choice.has_value());
  EXPECT_EQ(choice->vp.bound, (std::vector<unsigned>{0, 1, 2}));
  EXPECT_EQ(choice->p(), 2u);  // shared parity: both partitions coincide
}

TEST(VarPart, ReturnsNulloptWhenNothingNontrivial) {
  // A function with full column multiplicity for every bound set of size 2:
  // 4-input one-hot address decoder output... use a random-ish function
  // checked to be prime for b = 2.
  TruthTable f(4);
  // f = minterm-heavy irregular function; verified below to have ℓ > 2 for
  // every 2-variable bound set, making every decomposition trivial.
  const char* bits = "0110100110010110";  // 4-var parity-like but xor chain
  for (unsigned i = 0; i < 16; ++i) f.set(i, bits[i] == '1');
  VarPartOptions opts;
  opts.bound_size = 2;
  bool any_nontrivial = false;
  for (unsigned a = 0; a < 4; ++a)
    for (unsigned b = a + 1; b < 4; ++b) {
      if (evaluate_bound_set({f}, 4, {a, b}, true).has_value())
        any_nontrivial = true;
    }
  const auto choice = choose_bound_set({f}, 4, opts);
  EXPECT_EQ(choice.has_value(), any_nontrivial);
}

TEST(VarPart, SamplingModeIsDeterministic) {
  Rng rng(555);
  std::vector<TruthTable> fs;
  TruthTable f(10);
  for (std::uint64_t row = 0; row < f.num_rows(); ++row)
    f.set(row, ((row & 0x1f) * 2654435761u >> 7) & 1);
  fs.push_back(f);
  VarPartOptions opts;
  opts.bound_size = 5;
  opts.max_exhaustive = 8;  // force sampling path
  const auto a = choose_bound_set(fs, 10, opts);
  const auto b = choose_bound_set(fs, 10, opts);
  ASSERT_EQ(a.has_value(), b.has_value());
  if (a) {
    EXPECT_EQ(a->vp.bound, b->vp.bound);
    EXPECT_EQ(a->p(), b->p());
  }
}

}  // namespace
}  // namespace imodec
