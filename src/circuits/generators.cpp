#include "circuits/generators.hpp"

#include <cassert>

#include "circuits/gates.hpp"

namespace imodec::circuits {

namespace {

std::vector<SigId> add_inputs(Network& net, unsigned n,
                              const std::string& prefix) {
  std::vector<SigId> pis;
  pis.reserve(n);
  for (unsigned i = 0; i < n; ++i)
    pis.push_back(net.add_input(prefix + std::to_string(i)));
  return pis;
}

void add_outputs(Network& net, const std::vector<SigId>& sigs,
                 const std::string& prefix) {
  for (std::size_t i = 0; i < sigs.size(); ++i)
    net.add_output(sigs[i], prefix + std::to_string(i));
}

/// Count-of-ones of `bits` as a binary number (full-adder compressor tree).
std::vector<SigId> popcount_bits(Network& net, std::vector<SigId> bits,
                                 unsigned result_width) {
  // Column compression: maintain per-weight columns of signals.
  std::vector<std::vector<SigId>> cols(1, std::move(bits));
  for (std::size_t w = 0; w < cols.size(); ++w) {
    while (cols[w].size() > 1) {
      if (cols.size() <= w + 1) cols.emplace_back();
      if (cols[w].size() >= 3) {
        const SigId a = cols[w][cols[w].size() - 1];
        const SigId b = cols[w][cols[w].size() - 2];
        const SigId c = cols[w][cols[w].size() - 3];
        cols[w].resize(cols[w].size() - 3);
        const SigId axb = gate_xor(net, a, b);
        cols[w].push_back(gate_xor(net, axb, c));  // sum stays at weight w
        const SigId carry =
            gate_or(net, gate_and(net, a, b), gate_and(net, axb, c));
        cols[w + 1].push_back(carry);
        // One fresh sum bit remains; if more are queued, keep compressing.
        if (cols[w].size() == 1) break;
      } else {  // exactly 2 left: half adder
        const SigId a = cols[w][0], b = cols[w][1];
        cols[w].clear();
        cols[w].push_back(gate_xor(net, a, b));
        cols[w + 1].push_back(gate_and(net, a, b));
        break;
      }
    }
  }
  std::vector<SigId> out;
  const SigId zero = net.add_constant(false);
  for (unsigned w = 0; w < result_width; ++w) {
    if (w < cols.size() && !cols[w].empty()) {
      assert(cols[w].size() == 1);
      out.push_back(cols[w][0]);
    } else {
      out.push_back(zero);
    }
  }
  return out;
}

}  // namespace

Network make_rd(unsigned inputs, unsigned outputs) {
  Network net("rd" + std::to_string(inputs) + std::to_string(outputs));
  const auto pis = add_inputs(net, inputs, "x");
  add_outputs(net, popcount_bits(net, pis, outputs), "s");
  return net;
}

Network make_9sym() {
  Network net("9sym");
  const auto pis = add_inputs(net, 9, "x");
  const auto cnt = popcount_bits(net, pis, 4);  // 0..9 needs 4 bits
  // 3 <= count <= 6  <=>  (count >= 3) and (count <= 6).
  // count >= 3: c1&c0 | c2 | c3 ; count <= 6: !(c3 | (c2&c1&c0)) with 9 max.
  const SigId ge3 = gate_or(
      net, gate_or(net, gate_and(net, cnt[1], cnt[0]), cnt[2]), cnt[3]);
  const SigId eq7 = gate_and(net, gate_and(net, cnt[2], cnt[1]), cnt[0]);
  const SigId gt6 = gate_or(net, cnt[3], eq7);
  const SigId out = gate_and(net, ge3, gate_not(net, gt6));
  net.add_output(out, "f");
  return net;
}

Network make_z4ml() {
  Network net("z4ml");
  const auto a = add_inputs(net, 3, "a");
  const auto b = add_inputs(net, 3, "b");
  const SigId cin = net.add_input("cin");
  auto [sum, carry] = ripple_add(net, a, b, cin);
  sum.push_back(carry);
  add_outputs(net, sum, "s");
  return net;
}

Network make_5xp1() {
  Network net("5xp1");
  const auto x = add_inputs(net, 7, "x");
  // y = (x^5 + 1) mod 2^10, built as one collapsed arithmetic block per
  // output bit (the MCNC original is a two-level PLA as well).
  std::vector<SigId> outs;
  for (unsigned bit = 0; bit < 10; ++bit) {
    TruthTable t(7);
    for (std::uint64_t v = 0; v < 128; ++v) {
      std::uint64_t p = 1;
      for (int e = 0; e < 5; ++e) p = (p * v) & 0x3ff;
      p = (p + 1) & 0x3ff;
      t.set(v, (p >> bit) & 1);
    }
    outs.push_back(net.add_node(x, t));
  }
  add_outputs(net, outs, "y");
  return net;
}

Network make_f51m() {
  Network net("f51m");
  const auto a = add_inputs(net, 4, "a");
  const auto b = add_inputs(net, 4, "b");
  // 4x4 multiplier: partial products + adder rows.
  const SigId zero = net.add_constant(false);
  std::vector<SigId> acc(8, zero);
  for (unsigned i = 0; i < 4; ++i) {
    std::vector<SigId> pp(8, zero);
    for (unsigned j = 0; j < 4; ++j) pp[i + j] = gate_and(net, a[j], b[i]);
    auto [sum, carry] = ripple_add(net, acc, pp, zero);
    (void)carry;  // cannot overflow 8 bits for 4x4
    acc = std::move(sum);
  }
  add_outputs(net, acc, "p");
  return net;
}

Network make_clip() {
  Network net("clip");
  const auto x = add_inputs(net, 9, "x");  // two's complement, x[8] = sign
  // |value| > 15  <=>  bits 4..7 disagree with the sign bit.
  const SigId sign = x[8];
  std::vector<SigId> disagree;
  for (unsigned i = 4; i < 8; ++i)
    disagree.push_back(gate_xor(net, x[i], sign));
  const SigId overflow = gate_tree(net, disagree, gate_or);
  // Clipped magnitude bits: overflow ? (sign ? 0001 : 1111 pattern) : x.
  std::vector<SigId> outs;
  for (unsigned i = 0; i < 4; ++i) {
    // Saturate positive -> 1111, negative -> 0001 (two's complement -15).
    const SigId sat =
        (i == 0) ? net.add_constant(true) : gate_not(net, sign);
    outs.push_back(gate_mux(net, overflow, x[i], sat));
  }
  outs.push_back(sign);  // sign preserved
  add_outputs(net, outs, "y");
  return net;
}

Network make_alu2() {
  Network net("alu2");
  const auto a = add_inputs(net, 3, "a");
  const auto b = add_inputs(net, 3, "b");
  const auto s = add_inputs(net, 3, "s");
  const SigId cin = net.add_input("cin");

  // Operand mux per op: s selects among add, and, or, xor (s[2] arithmetic).
  auto [sum, carry] = ripple_add(net, a, b, cin);
  std::vector<SigId> res;
  for (unsigned i = 0; i < 3; ++i) {
    const SigId land = gate_and(net, a[i], b[i]);
    const SigId lor = gate_or(net, a[i], b[i]);
    const SigId lxor = gate_xor(net, a[i], b[i]);
    const SigId m0 = gate_mux(net, s[0], land, lor);
    const SigId m1 = gate_mux(net, s[0], lxor, gate_not(net, a[i]));
    const SigId logic = gate_mux(net, s[1], m0, m1);
    res.push_back(gate_mux(net, s[2], logic, sum[i]));
  }
  const SigId zero_flag =
      gate_not(net, gate_tree(net, {res[0], res[1], res[2]}, gate_or));
  add_outputs(net, res, "f");
  net.add_output(gate_and(net, s[2], carry), "cout");
  net.add_output(zero_flag, "zf");
  net.add_output(gate_xor(net, res[2], carry), "ovf");
  return net;
}

Network make_alu4() {
  Network net("alu4");
  const auto a = add_inputs(net, 4, "a");
  const auto b = add_inputs(net, 4, "b");
  const auto s = add_inputs(net, 4, "s");
  const SigId mode = net.add_input("m");
  const SigId cin = net.add_input("cin");

  // 74181 flavour: per-bit P/G terms controlled by s, then carry chain.
  std::vector<SigId> p(4), g(4);
  for (unsigned i = 0; i < 4; ++i) {
    const SigId nb = gate_not(net, b[i]);
    // g_i = a_i | (b_i & s0) | (~b_i & s1)
    g[i] = gate_or(
        net, a[i],
        gate_or(net, gate_and(net, b[i], s[0]), gate_and(net, nb, s[1])));
    // p_i = a_i & ((b_i & s3) | (~b_i & s2)) ... 74181 core term
    p[i] = gate_and(net, a[i],
                    gate_or(net, gate_and(net, b[i], s[3]),
                            gate_and(net, nb, s[2])));
  }
  // Carry chain (suppressed in logic mode).
  std::vector<SigId> carry(5);
  carry[0] = gate_and(net, gate_not(net, mode), cin);
  const SigId arith = gate_not(net, mode);
  for (unsigned i = 0; i < 4; ++i) {
    const SigId gen = gate_and(net, gate_not(net, p[i]), g[i]);
    carry[i + 1] = gate_and(
        net, arith,
        gate_or(net, gen, gate_and(net, g[i], carry[i])));
  }
  std::vector<SigId> f(4);
  for (unsigned i = 0; i < 4; ++i) {
    const SigId core = gate_xor(net, gate_xor(net, g[i], p[i]), carry[i]);
    f[i] = core;
  }
  const SigId aeqb = gate_tree(net, {f[0], f[1], f[2], f[3]}, gate_and);
  const SigId pg = gate_tree(net, p, gate_or);
  const SigId gg = gate_tree(net, g, gate_and);
  add_outputs(net, f, "f");
  net.add_output(carry[4], "cout");
  net.add_output(aeqb, "aeqb");
  net.add_output(pg, "pout");
  net.add_output(gg, "gout");
  return net;
}

Network make_count() {
  Network net("count");
  const auto d = add_inputs(net, 16, "d");
  const auto l = add_inputs(net, 16, "l");
  const SigId load = net.add_input("load");
  const SigId clr = net.add_input("clr");
  const SigId cin = net.add_input("cin");

  // Incrementer chain over d, then load/clear muxing — the classic counter
  // slice (shared ripple chain drives every output, like MCNC count).
  std::vector<SigId> outs;
  SigId carry = cin;
  const SigId nclr = gate_not(net, clr);
  for (unsigned i = 0; i < 16; ++i) {
    const SigId inc = gate_xor(net, d[i], carry);
    carry = gate_and(net, d[i], carry);
    const SigId sel = gate_mux(net, load, inc, l[i]);
    outs.push_back(gate_and(net, sel, nclr));
  }
  add_outputs(net, outs, "q");
  return net;
}

Network make_e64() {
  Network net("e64");
  const auto x = add_inputs(net, 64, "x");
  const SigId en = net.add_input("en");
  // Priority filter: out_i = x_i & none-of(x_0..x_{i-1}) & en.
  std::vector<SigId> outs;
  SigId none_before = en;
  for (unsigned i = 0; i < 64; ++i) {
    outs.push_back(gate_and(net, x[i], none_before));
    none_before = gate_and(net, none_before, gate_not(net, x[i]));
  }
  outs.push_back(none_before);  // "no input set"
  add_outputs(net, outs, "y");
  return net;
}

Network make_rot() {
  Network net("rot");
  const auto d = add_inputs(net, 128, "d");
  const auto amt = add_inputs(net, 7, "r");
  // Barrel rotator: 7 mux stages, rotate left by 2^j when amt[j].
  std::vector<SigId> cur = d;
  for (unsigned j = 0; j < 7; ++j) {
    const unsigned shift = 1u << j;
    std::vector<SigId> next(128);
    for (unsigned i = 0; i < 128; ++i)
      next[i] = gate_mux(net, amt[j], cur[i], cur[(i + shift) & 127]);
    cur = std::move(next);
  }
  cur.resize(107);  // paper interface: 107 outputs
  add_outputs(net, cur, "q");
  return net;
}

Network make_c499() {
  Network net("C499");
  const auto d = add_inputs(net, 32, "d");
  const auto c = add_inputs(net, 8, "c");
  const SigId en = net.add_input("en");
  // Syndrome: 8 XOR trees over bit groups (Hamming-style: data bit i is in
  // group j iff bit j of (i+1) is set, wrapped to 8 groups).
  std::vector<SigId> syn(8);
  for (unsigned j = 0; j < 8; ++j) {
    std::vector<SigId> grp{c[j]};
    for (unsigned i = 0; i < 32; ++i)
      if (((i + 1) >> (j % 6)) & 1) grp.push_back(d[i]);
    syn[j] = gate_xor(net, gate_tree(net, grp, gate_xor), en);
  }
  // Correct bit i when the syndrome matches i's pattern.
  std::vector<SigId> outs;
  for (unsigned i = 0; i < 32; ++i) {
    std::vector<SigId> match;
    for (unsigned j = 0; j < 6; ++j) {
      const bool bit = ((i + 1) >> (j % 6)) & 1;
      match.push_back(bit ? syn[j] : gate_not(net, syn[j]));
    }
    const SigId hit = gate_tree(net, match, gate_and);
    outs.push_back(gate_xor(net, d[i], hit));
  }
  add_outputs(net, outs, "q");
  return net;
}

}  // namespace imodec::circuits
