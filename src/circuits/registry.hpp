#pragma once
// Benchmark registry: every circuit of the paper's Table 2 by name, with the
// paper's reference numbers for side-by-side reporting in the benches.

#include <optional>
#include <string>
#include <vector>

#include "logic/network.hpp"

namespace imodec::circuits {

struct BenchmarkInfo {
  std::string name;
  /// "exact" (public functional definition) or "synthetic" (structured
  /// substitute; see DESIGN.md §4).
  std::string kind;
  /// Paper Table 2 reference values; -1 where the paper has no entry.
  int paper_imodec_clb = -1;
  int paper_single_clb = -1;
  int paper_r_imodec_clb = -1;
  int paper_r_fgmap_clb = -1;
  /// Paper's max m/p during decomposition ("-" entries = -1).
  int paper_m = -1;
  int paper_p = -1;
  /// Paper marks circuits that could not be collapsed with '*'.
  bool paper_collapsible = true;
};

/// All Table 2 circuits in paper order.
const std::vector<BenchmarkInfo>& table2_benchmarks();

/// Generate a benchmark circuit by name; nullopt for unknown names.
std::optional<Network> make_benchmark(const std::string& name);

/// Names of all circuits make_benchmark understands.
std::vector<std::string> benchmark_names();

}  // namespace imodec::circuits
