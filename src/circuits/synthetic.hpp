#pragma once
// Seeded structured synthetic circuits — substitutes for MCNC benchmarks
// whose functions are not publicly specified (DESIGN.md §4).
//
// The generator builds a layered multi-level network of small random gates
// whose fanins are drawn with locality bias, plus deliberately shared
// subfunction cones tapped by several outputs. Multi-output sharing is the
// property IMODEC exploits, so the substitutes are constructed to exhibit
// it to a tunable degree.

#include <cstdint>
#include <string>

#include "logic/network.hpp"

namespace imodec::circuits {

struct SyntheticSpec {
  std::string name;
  unsigned num_inputs = 16;
  unsigned num_outputs = 8;
  unsigned levels = 5;
  unsigned gates_per_level = 12;
  /// 0..100: probability that a new gate taps the shared trunk region.
  unsigned sharing_percent = 60;
  std::uint64_t seed = 1;
};

Network make_synthetic(const SyntheticSpec& spec);

}  // namespace imodec::circuits
