#include "circuits/gates.hpp"

#include <cassert>

namespace imodec::circuits {

TruthTable tt_and2() { return TruthTable::from_string("0001"); }
TruthTable tt_or2() { return TruthTable::from_string("0111"); }
TruthTable tt_xor2() { return TruthTable::from_string("0110"); }
TruthTable tt_nand2() { return TruthTable::from_string("1110"); }
TruthTable tt_nor2() { return TruthTable::from_string("1000"); }
TruthTable tt_not1() { return TruthTable::from_string("10"); }

TruthTable tt_mux() {
  // Row bits (sel, a, b): sel ? b : a.
  TruthTable t(3);
  for (std::uint64_t row = 0; row < 8; ++row) {
    const bool sel = row & 1, a = (row >> 1) & 1, b = (row >> 2) & 1;
    t.set(row, sel ? b : a);
  }
  return t;
}

SigId gate_and(Network& n, SigId a, SigId b) {
  return n.add_node({a, b}, tt_and2());
}
SigId gate_or(Network& n, SigId a, SigId b) {
  return n.add_node({a, b}, tt_or2());
}
SigId gate_xor(Network& n, SigId a, SigId b) {
  return n.add_node({a, b}, tt_xor2());
}
SigId gate_not(Network& n, SigId a) { return n.add_node({a}, tt_not1()); }
SigId gate_mux(Network& n, SigId sel, SigId a, SigId b) {
  return n.add_node({sel, a, b}, tt_mux());
}

SigId gate_tree(Network& n, std::vector<SigId> sigs,
                SigId (*g2)(Network&, SigId, SigId)) {
  assert(!sigs.empty());
  while (sigs.size() > 1) {
    std::vector<SigId> next;
    for (std::size_t i = 0; i + 1 < sigs.size(); i += 2)
      next.push_back(g2(n, sigs[i], sigs[i + 1]));
    if (sigs.size() & 1) next.push_back(sigs.back());
    sigs = std::move(next);
  }
  return sigs.front();
}

std::pair<std::vector<SigId>, SigId> ripple_add(Network& n,
                                                const std::vector<SigId>& a,
                                                const std::vector<SigId>& b,
                                                SigId carry_in) {
  assert(a.size() == b.size());
  std::vector<SigId> sum;
  sum.reserve(a.size());
  SigId carry = carry_in;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const SigId axb = gate_xor(n, a[i], b[i]);
    sum.push_back(gate_xor(n, axb, carry));
    const SigId maj =
        gate_or(n, gate_and(n, a[i], b[i]), gate_and(n, axb, carry));
    carry = maj;
  }
  return {std::move(sum), carry};
}

}  // namespace imodec::circuits
