#pragma once
// Functional generators for the MCNC benchmark circuits of the paper's
// evaluation (Table 2) — exact public-definition equivalents where the
// function is documented, structured equivalents otherwise; see DESIGN.md §4.
//
// All generators are deterministic. Gate-level builders emit small (2-3
// input) primitives so the networks are genuinely multi-level; the collapse
// and restructure passes then produce the flow's starting points.

#include <cstdint>

#include "logic/network.hpp"

namespace imodec::circuits {

// --- Exact functional equivalents -----------------------------------------

/// rdXY: Y-bit binary count of ones of X inputs (rd53: 5->3, rd73: 7->3,
/// rd84: 8->4).
Network make_rd(unsigned inputs, unsigned outputs);

/// 9sym: 1 iff the number of ones among 9 inputs lies in [3, 6].
Network make_9sym();

/// z4ml: 2-operand 3-bit + carry-in adder, 7 inputs -> 4-bit sum.
Network make_z4ml();

/// 5xp1 equivalent: y = (x^5 + 1) mod 2^10 over a 7-bit x (7 -> 10).
Network make_5xp1();

/// f51m equivalent: 4x4 unsigned multiplier (8 -> 8).
Network make_f51m();

/// clip: 9-bit two's-complement input clipped to [-15, 15], 5-bit output.
Network make_clip();

/// alu2 equivalent: 3-bit ALU slice (two 3-bit operands, 3 op-select bits,
/// carry-in = 10 inputs; result bits, carry, zero flag = 6 outputs).
Network make_alu2();

/// alu4 equivalent: 74181-flavoured 4-bit ALU (two 4-bit operands, 4 select,
/// mode, carry-in = 14 inputs; 4 result bits, carry, A=B, P, G = 8 outputs).
Network make_alu4();

/// count equivalent: 16-bit load/increment counter slice; 35 inputs
/// (16 data, 16 load-values, load, clear, carry-in), 16 outputs.
Network make_count();

/// e64 equivalent: 64-bit priority filter with enable (65 -> 65): output i
/// is input i if no lower-indexed input is set; output 64 = "none set".
Network make_e64();

/// rot equivalent: barrel rotator, 128-bit data + 7-bit amount (135 inputs),
/// low 107 result bits exposed (matches the paper's 135/107 interface).
Network make_rot();

/// C499 equivalent: 32-bit single-error-correction decoder (32 data + 8
/// syndrome inputs + enable = 41 inputs, 32 corrected outputs).
Network make_c499();

}  // namespace imodec::circuits
