#include "circuits/registry.hpp"

#include "circuits/generators.hpp"
#include "circuits/synthetic.hpp"

namespace imodec::circuits {

namespace {

// Table 2 reference values transcribed from the paper (CLB counts and the
// maximum m/p observed); -1 where the paper prints '-'.
std::vector<BenchmarkInfo> build_table() {
  return {
      {"5xp1", "exact", 9, 15, 9, 15, 5, 5, true},
      {"9sym", "exact", 7, 7, 7, 7, 1, 6, true},
      {"alu2", "exact", 46, 47, 46, 53, 4, 40, true},
      {"alu4", "exact", 168, 235, -1, -1, 6, 49, true},
      {"apex6", "synthetic", 141, 174, 129, -1, 17, 30, true},
      {"apex7", "synthetic", 44, 61, 41, 47, 10, 15, true},
      {"clip", "exact", 12, 19, 12, 20, 5, 14, true},
      {"count", "exact", 26, 35, 26, 24, 8, 3, true},
      {"des", "synthetic", -1, -1, 489, -1, -1, -1, false},
      {"duke2", "synthetic", 177, 311, 122, -1, 5, 54, true},
      {"e64", "exact", 123, 329, 55, 55, 12, 3, true},
      {"f51m", "exact", 8, 13, 8, 11, 3, 5, true},
      {"misex1", "synthetic", 9, 11, 9, 8, 3, 8, true},
      {"misex2", "synthetic", 28, 34, 21, 21, 5, 7, true},
      {"rd73", "exact", 5, 7, 5, 7, 3, 6, true},
      {"rd84", "exact", 8, 11, 8, 12, 4, 6, true},
      {"rot", "exact", -1, -1, 127, 194, -1, -1, false},
      {"sao2", "synthetic", 17, 24, 17, 27, 4, 11, true},
      {"vg2", "synthetic", 41, 64, 19, 23, 5, 12, true},
      {"z4ml", "exact", 4, 4, 4, 5, 2, 3, true},
      {"C499", "exact", -1, -1, 50, 49, -1, -1, false},
      {"C880", "synthetic", -1, -1, 81, 74, -1, -1, false},
      {"C5315", "synthetic", -1, -1, 295, -1, -1, -1, false},
  };
}

Network make_synth(const std::string& name, unsigned ni, unsigned no,
                   unsigned levels, unsigned gates, unsigned share,
                   std::uint64_t seed) {
  SyntheticSpec spec;
  spec.name = name;
  spec.num_inputs = ni;
  spec.num_outputs = no;
  spec.levels = levels;
  spec.gates_per_level = gates;
  spec.sharing_percent = share;
  spec.seed = seed;
  return make_synthetic(spec);
}

}  // namespace

const std::vector<BenchmarkInfo>& table2_benchmarks() {
  static const std::vector<BenchmarkInfo> table = build_table();
  return table;
}

std::optional<Network> make_benchmark(const std::string& name) {
  // Exact functional equivalents.
  if (name == "rd53") return make_rd(5, 3);
  if (name == "rd73") return make_rd(7, 3);
  if (name == "rd84") return make_rd(8, 4);
  if (name == "9sym") return make_9sym();
  if (name == "z4ml") return make_z4ml();
  if (name == "5xp1") return make_5xp1();
  if (name == "f51m") return make_f51m();
  if (name == "clip") return make_clip();
  if (name == "alu2") return make_alu2();
  if (name == "alu4") return make_alu4();
  if (name == "count") return make_count();
  if (name == "e64") return make_e64();
  if (name == "rot") return make_rot();
  if (name == "C499") return make_c499();

  // Structured synthetic substitutes, I/O counts matched to MCNC.
  if (name == "apex6") return make_synth("apex6", 135, 99, 6, 60, 55, 0xA6);
  if (name == "apex7") return make_synth("apex7", 49, 37, 5, 30, 55, 0xA7);
  if (name == "duke2") return make_synth("duke2", 22, 29, 5, 24, 65, 0xD2);
  if (name == "misex1") return make_synth("misex1", 8, 7, 4, 8, 70, 0x31);
  if (name == "misex2") return make_synth("misex2", 25, 18, 4, 16, 60, 0x32);
  if (name == "sao2") return make_synth("sao2", 10, 4, 5, 10, 70, 0x5A);
  if (name == "term1") return make_synth("term1", 34, 10, 5, 22, 65, 0x71);
  if (name == "vg2") return make_synth("vg2", 25, 8, 5, 16, 65, 0x62);
  if (name == "des") return make_synth("des", 256, 245, 5, 110, 45, 0xDE);
  if (name == "C880") return make_synth("C880", 60, 26, 6, 36, 55, 0x88);
  if (name == "C5315") return make_synth("C5315", 178, 123, 6, 80, 50, 0x53);
  return std::nullopt;
}

std::vector<std::string> benchmark_names() {
  return {"rd53",  "rd73",  "rd84",   "9sym",   "z4ml", "5xp1",
          "f51m",  "clip",  "alu2",   "alu4",   "count", "e64",
          "rot",   "C499",  "apex6",  "apex7",  "duke2", "misex1",
          "misex2", "sao2", "term1",  "vg2",    "des",   "C880",
          "C5315"};
}

}  // namespace imodec::circuits
