#pragma once
// Tiny gate-level construction helpers shared by the benchmark generators.

#include "logic/network.hpp"

namespace imodec::circuits {

// Two-input tables (row bits: fanin0 = bit 0, fanin1 = bit 1).
TruthTable tt_and2();
TruthTable tt_or2();
TruthTable tt_xor2();
TruthTable tt_nand2();
TruthTable tt_nor2();
TruthTable tt_not1();
/// mux(sel, a, b) = sel ? b : a; fanin order (sel, a, b).
TruthTable tt_mux();

SigId gate_and(Network& n, SigId a, SigId b);
SigId gate_or(Network& n, SigId a, SigId b);
SigId gate_xor(Network& n, SigId a, SigId b);
SigId gate_not(Network& n, SigId a);
SigId gate_mux(Network& n, SigId sel, SigId a, SigId b);  // sel ? b : a

/// Balanced reduction tree over `sigs` with the given 2-input gate builder.
SigId gate_tree(Network& n, std::vector<SigId> sigs,
                SigId (*g2)(Network&, SigId, SigId));

/// Ripple full adder: returns (sum bits, carry-out).
std::pair<std::vector<SigId>, SigId> ripple_add(Network& n,
                                                const std::vector<SigId>& a,
                                                const std::vector<SigId>& b,
                                                SigId carry_in);

}  // namespace imodec::circuits
