#include "circuits/synthetic.hpp"

#include <algorithm>
#include <cassert>

#include "util/rng.hpp"

namespace imodec::circuits {

namespace {

TruthTable random_table(Rng& rng, unsigned vars) {
  TruthTable t(vars);
  // Reject constants and functions ignoring a variable (keeps gates real).
  for (int tries = 0; tries < 32; ++tries) {
    for (std::uint64_t row = 0; row < t.num_rows(); ++row)
      t.set(row, rng.coin());
    if (!t.is_constant() && t.support().size() == vars) return t;
  }
  // Fallback: parity, which always depends on everything.
  for (std::uint64_t row = 0; row < t.num_rows(); ++row)
    t.set(row, __builtin_parityll(row));
  return t;
}

}  // namespace

Network make_synthetic(const SyntheticSpec& spec) {
  assert(spec.num_inputs >= 3);
  Network net(spec.name);
  Rng rng(spec.seed * 0x9e3779b97f4a7c15ull + spec.num_inputs);

  std::vector<SigId> pool;
  for (unsigned i = 0; i < spec.num_inputs; ++i)
    pool.push_back(net.add_input("x" + std::to_string(i)));

  // Shared trunk: a slice of signals many gates tap; refreshed per level so
  // sharing happens at every depth.
  std::vector<SigId> trunk(pool.begin(),
                           pool.begin() + std::min<std::size_t>(pool.size(), 6));

  for (unsigned level = 0; level < spec.levels; ++level) {
    std::vector<SigId> created;
    for (unsigned gi = 0; gi < spec.gates_per_level; ++gi) {
      const unsigned arity = 2 + static_cast<unsigned>(rng.below(2));  // 2..3
      std::vector<SigId> fanins;
      while (fanins.size() < arity) {
        SigId cand;
        if (rng.chance(spec.sharing_percent, 100) && !trunk.empty()) {
          cand = trunk[rng.below(trunk.size())];
        } else {
          // Locality bias: prefer recent signals (deeper logic).
          const std::size_t window =
              std::min<std::size_t>(pool.size(), spec.gates_per_level * 2);
          cand = pool[pool.size() - 1 - rng.below(window)];
        }
        if (std::find(fanins.begin(), fanins.end(), cand) == fanins.end())
          fanins.push_back(cand);
      }
      created.push_back(net.add_node(fanins, random_table(rng, arity)));
    }
    for (SigId s : created) pool.push_back(s);
    // New trunk: random picks from this level's gates.
    trunk.clear();
    for (unsigned t = 0; t < 6 && !created.empty(); ++t)
      trunk.push_back(created[rng.below(created.size())]);
  }

  // Outputs tap the deepest region, several of them sharing signals.
  for (unsigned k = 0; k < spec.num_outputs; ++k) {
    const std::size_t window =
        std::min<std::size_t>(pool.size(), spec.gates_per_level * 3);
    const SigId sig = pool[pool.size() - 1 - rng.below(window)];
    net.add_output(sig, "y" + std::to_string(k));
  }
  return net;
}

}  // namespace imodec::circuits
