#pragma once
// Exact counting of assignable and preferable decomposition functions —
// the "# assign." and "# prefer." columns of Table 1.
//
// #assignable counts, over all 2^(2^b) Boolean functions d of the bound-set
// variables, those for which both onset and offset touch at most 2^(c-1)
// local classes (Defs. 4/5 with s = 0). Each local class independently
// contributes all-0 (one labeling), all-1 (one labeling), or mixed
// (2^|class| - 2 labelings); a DP over (classes-not-fully-off,
// classes-not-fully-on) counts exactly, in big-magnitude arithmetic.
//
// #preferable counts constructable assignable functions: SatCount of
// ψ0(z)·ψ1(z) over the 2^p z-vertices (complement pairs both counted,
// matching the paper's reported numbers).

#include <cstdint>
#include <vector>

#include "decomp/types.hpp"
#include "util/bigfloat.hpp"

namespace imodec {

/// #assignable for one output with the given local partition (s = 0).
BigFloat assignable_count(const VertexPartition& local);

/// #preferable for one output (s = 0): needs its local partition and the
/// vector's global partition.
BigFloat preferable_count_initial(const VertexPartition& local,
                                  const VertexPartition& global);

/// All Table-1 characteristics of one function vector under one bound set.
struct VectorCharacteristics {
  unsigned b = 0;
  std::uint32_t p = 0;
  BigFloat assignable_bound;   // 2^(2^b)
  BigFloat preferable_bound;   // 2^p
  std::vector<std::uint32_t> l_k;
  std::vector<BigFloat> assignable;  // per output
  std::vector<BigFloat> preferable;  // per output
};

VectorCharacteristics characterize_vector(const std::vector<TruthTable>& outputs,
                                          const VarPartition& vp);

/// Brute-force #assignable by enumerating all 2^(2^b) functions — only
/// feasible for b <= 4; used by the tests to validate the DP.
std::uint64_t assignable_count_bruteforce(const VertexPartition& local);

/// Brute-force #preferable over the 2^p constructable functions (p <= 24).
std::uint64_t preferable_count_bruteforce(const VertexPartition& local,
                                          const VertexPartition& global);

}  // namespace imodec
