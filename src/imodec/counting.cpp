#include "imodec/counting.hpp"

#include <bit>
#include <cassert>

#include "decomp/classes.hpp"
#include "imodec/chi.hpp"
#include "util/combinatorics.hpp"

namespace imodec {

BigFloat assignable_count(const VertexPartition& local) {
  const std::uint32_t ell = local.num_classes;
  const unsigned c = codewidth(ell);
  if (ell == 1) {
    // Every function whose onset/offset each touch <= 2^(c-1) = ... c == 0:
    // threshold 2^-1 is meaningless; with one class any constant function is
    // assignable (s = c = 0 needs no d at all). Report the two constants.
    return BigFloat{2.0};
  }
  const std::uint64_t budget = std::uint64_t{1} << (c - 1);  // 2^(c-1)

  // Class sizes.
  std::vector<std::uint64_t> sizes(ell, 0);
  for (std::uint64_t v = 0; v < local.num_vertices(); ++v)
    ++sizes[local.class_of[v]];

  // DP over classes; state = (#classes not fully off, #classes not fully on),
  // both capped at budget (beyond budget the function is already rejected).
  const std::size_t cap = static_cast<std::size_t>(
      std::min<std::uint64_t>(budget, ell));
  std::vector<std::vector<BigFloat>> dp(cap + 1,
                                        std::vector<BigFloat>(cap + 1));
  dp[0][0] = BigFloat{1.0};
  for (std::uint32_t i = 0; i < ell; ++i) {
    std::vector<std::vector<BigFloat>> next(cap + 1,
                                            std::vector<BigFloat>(cap + 1));
    const BigFloat mixed = big_mixed_labelings(sizes[i]);
    for (std::size_t a = 0; a <= cap; ++a) {
      for (std::size_t z = 0; z <= cap; ++z) {
        if (dp[a][z].is_zero()) continue;
        // all-0: class fully off -> not-fully-on count grows.
        if (z + 1 <= cap) next[a][z + 1] += dp[a][z];
        // all-1: class fully on -> not-fully-off count grows.
        if (a + 1 <= cap) next[a + 1][z] += dp[a][z];
        // mixed: grows both counts.
        if (!mixed.is_zero() && a + 1 <= cap && z + 1 <= cap)
          next[a + 1][z + 1] += dp[a][z] * mixed;
      }
    }
    dp = std::move(next);
  }
  BigFloat total;
  for (std::size_t a = 0; a <= cap; ++a)
    for (std::size_t z = 0; z <= cap; ++z) total += dp[a][z];
  return total;
}

BigFloat preferable_count_initial(const VertexPartition& local,
                                  const VertexPartition& global) {
  const std::uint32_t p = global.num_classes;
  OutputState st;
  st.codewidth = codewidth(local.num_classes);
  st.assigned = 0;
  st.blocks.resize(1);
  for (std::uint32_t g = 0; g < p; ++g) st.blocks[0].push_back(g);
  st.local_of_global.resize(p);
  for (std::uint64_t v = 0; v < global.num_vertices(); ++v)
    st.local_of_global[global.class_of[v]] = local.class_of[v];

  if (st.codewidth == 0) return BigFloat{2.0};  // constants only

  bdd::Manager mgr(p);
  return BigFloat{preferable_count(mgr, p, st)};
}

VectorCharacteristics characterize_vector(
    const std::vector<TruthTable>& outputs, const VarPartition& vp) {
  VectorCharacteristics ch;
  ch.b = vp.b();
  std::vector<VertexPartition> locals;
  locals.reserve(outputs.size());
  for (const TruthTable& f : outputs)
    locals.push_back(local_partition_tt(f, vp));
  const VertexPartition global = global_partition(locals);
  ch.p = global.num_classes;
  ch.assignable_bound = big_pow2(std::int64_t{1} << ch.b);  // 2^(2^b)
  ch.preferable_bound = big_pow2(ch.p);                     // 2^p
  for (const auto& local : locals) {
    ch.l_k.push_back(local.num_classes);
    ch.assignable.push_back(assignable_count(local));
    ch.preferable.push_back(preferable_count_initial(local, global));
  }
  return ch;
}

std::uint64_t assignable_count_bruteforce(const VertexPartition& local) {
  const unsigned b = local.b;
  assert(b <= 4);
  const std::uint64_t vertices = std::uint64_t{1} << b;
  const std::uint32_t ell = local.num_classes;
  const unsigned c = codewidth(ell);
  if (ell == 1) return 2;
  const std::uint64_t budget = std::uint64_t{1} << (c - 1);

  std::uint64_t count = 0;
  for (std::uint64_t onset = 0; onset < (std::uint64_t{1} << vertices);
       ++onset) {
    std::uint64_t touched_on = 0, touched_off = 0;  // class bitmask
    for (std::uint64_t v = 0; v < vertices; ++v) {
      if ((onset >> v) & 1)
        touched_on |= std::uint64_t{1} << local.class_of[v];
      else
        touched_off |= std::uint64_t{1} << local.class_of[v];
    }
    if (static_cast<std::uint64_t>(std::popcount(touched_on)) <= budget &&
        static_cast<std::uint64_t>(std::popcount(touched_off)) <= budget)
      ++count;
  }
  return count;
}

std::uint64_t preferable_count_bruteforce(const VertexPartition& local,
                                          const VertexPartition& global) {
  const std::uint32_t p = global.num_classes;
  assert(p <= 24);
  const std::uint32_t ell = local.num_classes;
  const unsigned c = codewidth(ell);
  if (ell == 1) return 2;
  const std::uint64_t budget = std::uint64_t{1} << (c - 1);

  // Map each local class to its global members.
  const auto contains = local_to_global(local, global);

  std::uint64_t count = 0;
  for (std::uint64_t z = 0; z < (std::uint64_t{1} << p); ++z) {
    std::uint32_t fully_on = 0, fully_off = 0;
    for (std::uint32_t l = 0; l < ell; ++l) {
      bool all_on = true, all_off = true;
      for (std::uint32_t g : contains[l]) {
        if ((z >> g) & 1)
          all_off = false;
        else
          all_on = false;
      }
      fully_on += all_on;
      fully_off += all_off;
    }
    // At least ell - budget classes fully on and fully off (conditions C1/C0).
    if (fully_on + budget >= ell && fully_off + budget >= ell) ++count;
  }
  return count;
}

}  // namespace imodec
