#include "imodec/lmax.hpp"

#include <cassert>

#include "bdd/add.hpp"

namespace imodec {

LmaxResult lmax(bdd::Manager& mgr, std::uint32_t p,
                const std::vector<bdd::Bdd>& chis) {
  assert(!chis.empty());
  assert(p <= 64);

  bdd::AddManager add(p);
  bdd::AddManager::AddId sum = add.constant(0);
  for (const bdd::Bdd& chi : chis)
    sum = add.plus(sum, add.from_bdd(mgr, chi.node()));

  std::vector<bool> assignment;
  const std::int64_t best = add.argmax(sum, assignment, /*fill=*/false);

  LmaxResult res;
  res.coverage = static_cast<unsigned>(best);
  for (std::uint32_t i = 0; i < p; ++i)
    if (assignment[i]) res.z_mask |= std::uint64_t{1} << i;

  // Report which outputs the chosen function is preferable for.
  std::vector<bool> full(mgr.num_vars(), false);
  for (std::uint32_t i = 0; i < p; ++i) full[i] = assignment[i];
  res.covers.reserve(chis.size());
  unsigned check = 0;
  for (const bdd::Bdd& chi : chis) {
    const bool in = chi.eval(full);
    res.covers.push_back(in);
    check += in;
  }
  assert(check == res.coverage);
  return res;
}

LmaxResult lmax_explicit(bdd::Manager& mgr, std::uint32_t p,
                         const std::vector<bdd::Bdd>& chis) {
  assert(p <= 24);
  LmaxResult res;
  std::vector<bool> a(mgr.num_vars(), false);
  std::vector<bool> best_covers;
  for (std::uint64_t z = 0; z < (std::uint64_t{1} << p); ++z) {
    for (std::uint32_t i = 0; i < p; ++i) a[i] = (z >> i) & 1;
    unsigned cover = 0;
    std::vector<bool> covers;
    covers.reserve(chis.size());
    for (const bdd::Bdd& chi : chis) {
      const bool in = chi.eval(a);
      covers.push_back(in);
      cover += in;
    }
    if (cover > res.coverage) {
      res.coverage = cover;
      res.z_mask = z;
      best_covers = std::move(covers);
    }
  }
  res.covers = std::move(best_covers);
  if (res.covers.empty()) res.covers.assign(chis.size(), false);
  return res;
}

}  // namespace imodec
