#pragma once
// Characteristic functions χ_k(z) of preferable decomposition functions
// (paper §5, §6).
//
// A constructable function is a z-vertex in positional-set form: z_i = 1 iff
// global class G_i lies in the onset (paper §6). For one output f_k with
// partial assignment P_{f_k,s}, χ_k(z) = ¬z_0 · Π_B ψ0_B(z) · ψ1_B(z), one
// factor pair per block B of the partial partition. ψ1_B demands that at
// least ℓ_B − 2^{c_k−s−1} of the local classes restricted to B lie entirely
// in the onset, ψ0_B likewise for the offset. ¬z_0 removes complementary
// duplicates (the paper multiplies by ¬z_1; we index classes from 0).

#include <cstdint>
#include <vector>

#include "bdd/bdd.hpp"
#include "decomp/types.hpp"

namespace imodec {

/// Per-output assignment state during the implicit algorithm: the blocks of
/// the partial partition Π_{P_{f_k,s}}, each a set of global-class ids, plus
/// how many decomposition functions have been accepted so far.
struct OutputState {
  unsigned codewidth = 0;                              // c_k
  unsigned assigned = 0;                               // s
  std::vector<std::vector<std::uint32_t>> blocks;      // of global classes
  std::vector<std::uint32_t> local_of_global;          // local class per G_i
  std::vector<unsigned> chosen;  // indices into the engine's d-function list

  bool complete() const { return assigned == codewidth; }

  /// Split every block by the accepted function's onset (a set of global
  /// classes given as a bitmask over z-positions); empty sub-blocks vanish.
  void split_blocks(std::uint64_t onset_mask);

  /// True iff every block contains vertices of at most one local class —
  /// i.e. the partial partition refines Π_{f_k}.
  bool refined() const;
};

struct ChiOptions {
  /// Paper-faithful route: build τ(v) with subset() over auxiliary v
  /// variables, then substitute z-cubes via vector composition. The default
  /// fuses substitution into the threshold recurrence (same function, fewer
  /// intermediate nodes). Both are exposed for the cross-check tests.
  bool via_v_substitution = false;
  /// Strict-decomposition ablation: additionally require each local class to
  /// be uniform in z (one code per compatibility class, Karp's "strict"
  /// decomposition; see DESIGN.md ablations).
  bool strict = false;
};

/// Build χ_k over z variables 0..p-1 of `mgr`. When opts.via_v_substitution
/// is set, the manager must have at least p + max_block_classes variables
/// (v variables are taken from index p upward).
bdd::Bdd build_chi(bdd::Manager& mgr, std::uint32_t p, const OutputState& st,
                   const ChiOptions& opts = {});

/// Count of preferable functions as reported in Table 1: SatCount over the
/// 2^p constructable functions of ψ0·ψ1 (complement pairs both counted,
/// matching the paper's reported values).
double preferable_count(bdd::Manager& mgr, std::uint32_t p,
                        const OutputState& st);

}  // namespace imodec
