#pragma once
// The subset(δ, ℓ) threshold construction (paper Fig. 4) and its literal-
// substituted variants ψ0/ψ1 (paper §6).
//
// subset(δ, ℓ) builds the characteristic function τ of all subsets of a set
// of ℓ objects containing at least δ of them, over positional-set variables.
// The paper derives ψ0/ψ1 by replacing each v-literal with a conjunction of
// z-literals; threshold_over_cubes() performs the same computation with the
// substitution fused into the recurrence (the t_j chain is agnostic to what
// the "variables" are), which the tests verify against the literal
// subset + vector_compose route.

#include <vector>

#include "bdd/bdd.hpp"

namespace imodec {

/// τ = subset(δ, ℓ) over manager variables first_var .. first_var+ℓ-1:
/// true iff at least δ of the ℓ variables are 1. δ == 0 yields the constant 1
/// function; δ > ℓ yields 0.
bdd::Bdd subset_threshold(bdd::Manager& mgr, unsigned delta, unsigned ell,
                          unsigned first_var);

/// Threshold with substituted terms: true iff at least `delta` of the given
/// functions are 1 — used to build ψ directly from per-class z-cubes.
bdd::Bdd threshold_over_cubes(bdd::Manager& mgr, unsigned delta,
                              const std::vector<bdd::Bdd>& terms);

}  // namespace imodec
