#pragma once
// Typed failure modes of the decomposition pipeline.
//
// The engine and the flow used to signal failure with std::optional plus
// comment-documented reasons; Result<T> carries the reason in-band so
// lutflow/driver can log *why* a vector fell back (FlowStats::errors,
// DriverReport) instead of silently degrading.

#include <cassert>
#include <cstdint>
#include <string_view>
#include <variant>

namespace imodec {

enum class DecomposeError : std::uint8_t {
  /// Global class count p exceeded ImodecOptions::max_p (z-vertices are
  /// stored in 64-bit masks; the paper limits m for the same reason).
  p_overflow,
  /// choose_bound_set found no bound set giving strict per-output progress.
  no_nontrivial_bound_set,
  /// An output's codewidth c_k exceeds the bound-set size b, so no encoding
  /// of its local classes fits (defensive: callers validate vp first).
  codewidth_exceeds_b,
};
inline constexpr unsigned kNumDecomposeErrors = 3;

constexpr std::string_view to_string(DecomposeError e) {
  switch (e) {
    case DecomposeError::p_overflow: return "p_overflow";
    case DecomposeError::no_nontrivial_bound_set:
      return "no_nontrivial_bound_set";
    case DecomposeError::codewidth_exceeds_b: return "codewidth_exceeds_b";
  }
  return "unknown";
}

/// Minimal expected-like carrier: a T or a DecomposeError. The accessor
/// surface deliberately matches std::optional (has_value / operator* / ->)
/// so call sites read the same whether they inspect the error or not.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}                  // NOLINT(implicit)
  Result(DecomposeError error) : v_(error) {}                // NOLINT(implicit)

  bool has_value() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return has_value(); }

  T& value() { return std::get<T>(v_); }
  const T& value() const { return std::get<T>(v_); }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  DecomposeError error() const {
    assert(!has_value());
    return std::get<DecomposeError>(v_);
  }

 private:
  std::variant<T, DecomposeError> v_;
};

}  // namespace imodec
