#include "imodec/subset.hpp"

namespace imodec {

bdd::Bdd subset_threshold(bdd::Manager& mgr, unsigned delta, unsigned ell,
                          unsigned first_var) {
  std::vector<bdd::Bdd> terms;
  terms.reserve(ell);
  for (unsigned i = 0; i < ell; ++i)
    terms.push_back(bdd::Bdd::var(mgr, first_var + i));
  return threshold_over_cubes(mgr, delta, terms);
}

bdd::Bdd threshold_over_cubes(bdd::Manager& mgr, unsigned delta,
                              const std::vector<bdd::Bdd>& terms) {
  const unsigned ell = static_cast<unsigned>(terms.size());
  if (delta == 0) return bdd::Bdd::one(mgr);
  if (delta > ell) return bdd::Bdd::zero(mgr);

  // Fig. 4: t_0 = 1; t_j = 0 (j = 1..δ);
  // for i = 1..ℓ: for j = δ..1: t_j += t_{j-1} * v_i.
  std::vector<bdd::Bdd> t(delta + 1, bdd::Bdd::zero(mgr));
  t[0] = bdd::Bdd::one(mgr);
  for (unsigned i = 0; i < ell; ++i) {
    for (unsigned j = delta; j >= 1; --j) {
      t[j] = t[j] | (t[j - 1] & terms[i]);
    }
  }
  return t[delta];
}

}  // namespace imodec
