#pragma once
// IMODEC: implicit multiple-output functional decomposition (paper §4-§6).
//
// Given a function vector f = (f_1..f_m) and a bound-set choice, the engine
//   1. computes local compatibility partitions and the global partition,
//   2. represents each output's preferable decomposition functions as an
//      implicit characteristic function χ_k(z) over global-class variables,
//   3. greedily picks a function preferable for a maximum number of outputs
//      (Lmax), updates partial assignments, and recomputes the affected χ_k,
//   4. stops when every output holds a complete assignment, and
//   5. constructs the composition functions g_k from the accepted codes.
//
// The result reuses the Decomposition value type of the single-output
// baseline so downstream consumers (mapping, verification) are agnostic to
// how the decomposition was obtained.

#include <cstdint>

#include "decomp/single.hpp"
#include "decomp/types.hpp"
#include "imodec/chi.hpp"
#include "imodec/result.hpp"

namespace imodec::util {
class ResourceGuard;
}
namespace imodec::bdd {
class ManagerPool;
}

namespace imodec {

struct ImodecOptions {
  /// Abort when the global partition exceeds this many classes (the paper
  /// limits m for the same reason; z-vertices are stored in 64-bit masks).
  std::uint32_t max_p = 64;
  /// Strict-decomposition ablation (one code per local class).
  bool strict = false;
  /// Paper-faithful ψ construction through v-variable substitution.
  bool via_v_substitution = false;
  /// Resource governance (not owned; nullptr = ungoverned). The run's BDD
  /// manager is attached to the guard (node budget, deadline, cancellation)
  /// and each greedy round checkpoints, so an exhausted run unwinds with
  /// util::ResourceExhausted / util::Timeout (DESIGN.md §12).
  util::ResourceGuard* guard = nullptr;
  /// Warm-manager pool (not owned; nullptr = construct a manager per run).
  /// With a pool, the run leases a reset manager instead — identical results
  /// (see Manager::reset), without cold arena/table allocation (DESIGN.md
  /// §14, the serving layer).
  bdd::ManagerPool* manager_pool = nullptr;
};

/// Per-run statistics. When observability is enabled (obs::set_enabled) the
/// same quantities are also published as `engine.*` / `bdd.*` counters in
/// obs::Registry and the run is recorded as an `engine.decompose` span tree;
/// `seconds` is derived from that span (the engine holds no separate timer).
struct ImodecStats {
  std::uint32_t p = 0;                   // number of global classes
  std::vector<std::uint32_t> l_k;        // local class count per output
  std::vector<unsigned> c_k;             // codewidth per output
  unsigned q = 0;                        // total decomposition functions
  unsigned lmax_rounds = 0;              // Lmax invocations
  unsigned chi_builds = 0;               // χ_k (re)constructions
  std::uint64_t candidates = 0;          // Σ over rounds of incomplete outputs
  double seconds = 0.0;
  // The run's BDD manager, for cache-behaviour reporting downstream.
  std::uint64_t bdd_nodes = 0;           // nodes allocated
  std::uint64_t bdd_cache_lookups = 0;
  std::uint64_t bdd_cache_hits = 0;
  double cache_hit_rate() const {
    return bdd_cache_lookups ? static_cast<double>(bdd_cache_hits) /
                                   static_cast<double>(bdd_cache_lookups)
                             : 0.0;
  }
};

/// Decompose the vector under the given variable partition. Fails with
/// DecomposeError::p_overflow when p exceeds opts.max_p (caller should fall
/// back to single-output decomposition or a different partition) and with
/// codewidth_exceeds_b when some output's local classes cannot be encoded in
/// b bits. c_k == b yields a trivial-for-that-output decomposition and is
/// permitted (the caller's bound-set selection normally prevents it).
/// `stats` (when given) is filled even on failure, up to the point reached.
Result<Decomposition> decompose_multi_output(
    const std::vector<TruthTable>& outputs, const VarPartition& vp,
    const ImodecOptions& opts = {}, ImodecStats* stats = nullptr);

/// Sum of per-output codewidths — the function count a pure single-output
/// decomposition of the same vector would need (used for the paper's
/// "decomposition gain" in the output-partitioning heuristic).
unsigned sum_codewidths(const std::vector<TruthTable>& outputs,
                        const VarPartition& vp);

}  // namespace imodec
