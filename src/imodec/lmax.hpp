#pragma once
// Implicit Lmax (paper §6, after Kam et al. [14]): given the characteristic
// functions χ_k(z) of all still-incomplete outputs, find a z-vertex lying in
// the onset of a maximum number of them — a decomposition function preferable
// for the maximum number of outputs — without enumerating functions.
//
// Implementation: each χ_k becomes a 0/1 ADD; their sum is formed by ADD
// apply(+); a maximum-valued path is extracted. Ties prefer the vertex with
// the fewest onset classes (smallest decomposition function).

#include <cstdint>
#include <vector>

#include "bdd/bdd.hpp"

namespace imodec {

struct LmaxResult {
  /// Chosen z-vertex as a bitmask over global classes (bit i == z_i).
  std::uint64_t z_mask = 0;
  /// How many of the given χ functions contain the vertex.
  unsigned coverage = 0;
  /// Which χ functions contain it.
  std::vector<bool> covers;
};

/// `chis` must be non-empty, all in `mgr`, over z variables 0..p-1 (p <= 64).
/// At least one χ must be satisfiable; coverage is then >= 1.
LmaxResult lmax(bdd::Manager& mgr, std::uint32_t p,
                const std::vector<bdd::Bdd>& chis);

/// Explicit reference implementation: enumerate all 2^p z-vertices of the
/// covering table (Fig. 5) and pick a maximum-coverage column. Requires
/// p <= 24; used by the tests to validate the implicit version.
LmaxResult lmax_explicit(bdd::Manager& mgr, std::uint32_t p,
                         const std::vector<bdd::Bdd>& chis);

}  // namespace imodec
