#include "imodec/chi.hpp"

#include <cassert>
#include <cmath>
#include <map>

#include "imodec/subset.hpp"

namespace imodec {

void OutputState::split_blocks(std::uint64_t onset_mask) {
  std::vector<std::vector<std::uint32_t>> next;
  next.reserve(blocks.size() * 2);
  for (const auto& block : blocks) {
    std::vector<std::uint32_t> on, off;
    for (std::uint32_t g : block) {
      if ((onset_mask >> g) & 1)
        on.push_back(g);
      else
        off.push_back(g);
    }
    if (!on.empty()) next.push_back(std::move(on));
    if (!off.empty()) next.push_back(std::move(off));
  }
  blocks = std::move(next);
  ++assigned;
}

bool OutputState::refined() const {
  for (const auto& block : blocks) {
    std::uint32_t seen = 0xffffffffu;
    for (std::uint32_t g : block) {
      const std::uint32_t l = local_of_global[g];
      if (seen == 0xffffffffu) {
        seen = l;
      } else if (seen != l) {
        return false;
      }
    }
  }
  return true;
}

namespace {

/// Local classes present in a block, each with the global classes of the
/// block that belong to it.
std::vector<std::vector<std::uint32_t>> classes_in_block(
    const OutputState& st, const std::vector<std::uint32_t>& block) {
  std::map<std::uint32_t, std::vector<std::uint32_t>> groups;
  for (std::uint32_t g : block) groups[st.local_of_global[g]].push_back(g);
  std::vector<std::vector<std::uint32_t>> out;
  out.reserve(groups.size());
  for (auto& [l, gs] : groups) out.push_back(std::move(gs));
  return out;
}

/// z-cube over the classes' global members: positive phase for ψ1 ("class
/// entirely in onset"), negative for ψ0.
bdd::Bdd class_cube(bdd::Manager& mgr, const std::vector<std::uint32_t>& gs,
                    bool positive) {
  std::vector<unsigned> vars(gs.begin(), gs.end());
  std::vector<bool> phases(gs.size(), positive);
  return bdd::Bdd::cube(mgr, vars, phases);
}

/// ψ factor for one block via the fused threshold.
bdd::Bdd psi_direct(bdd::Manager& mgr, unsigned delta,
                    const std::vector<std::vector<std::uint32_t>>& classes,
                    bool positive) {
  std::vector<bdd::Bdd> cubes;
  cubes.reserve(classes.size());
  for (const auto& gs : classes) cubes.push_back(class_cube(mgr, gs, positive));
  return threshold_over_cubes(mgr, delta, cubes);
}

/// ψ factor built the way §6 presents it: τ(v) = subset(δ, ℓ_B) over
/// auxiliary variables v_i at indices p.., then each v_i replaced by its
/// class cube via vector composition.
bdd::Bdd psi_via_substitution(
    bdd::Manager& mgr, std::uint32_t p, unsigned delta,
    const std::vector<std::vector<std::uint32_t>>& classes, bool positive) {
  const unsigned ell = static_cast<unsigned>(classes.size());
  if (mgr.num_vars() < p + ell) mgr.add_vars(p + ell - mgr.num_vars());
  const bdd::Bdd tau = subset_threshold(mgr, delta, ell, p);
  std::vector<bdd::NodeId> map(p + ell, bdd::Manager::kNoReplacement);
  std::vector<bdd::Bdd> keep_alive;  // hold refs while composing
  keep_alive.reserve(ell);
  for (unsigned i = 0; i < ell; ++i) {
    bdd::Bdd cube = class_cube(mgr, classes[i], positive);
    map[p + i] = cube.node();
    keep_alive.push_back(std::move(cube));
  }
  return bdd::Bdd(tau.manager(),
                  tau.manager()->vector_compose(tau.node(), map));
}

bdd::Bdd psi_product_for_state(bdd::Manager& mgr, std::uint32_t p,
                               const OutputState& st, const ChiOptions& opts) {
  assert(st.assigned < st.codewidth);
  const unsigned budget_exp = st.codewidth - st.assigned - 1;  // c - s - 1
  bdd::Bdd chi = bdd::Bdd::one(mgr);
  for (const auto& block : st.blocks) {
    const auto classes = classes_in_block(st, block);
    const auto ell = static_cast<unsigned>(classes.size());
    const std::uint64_t budget = std::uint64_t{1} << budget_exp;  // 2^(c-s-1)
    if (ell <= budget) continue;  // threshold δ <= 0: tautology factor
    const unsigned delta = static_cast<unsigned>(ell - budget);
    if (opts.via_v_substitution) {
      chi &= psi_via_substitution(mgr, p, delta, classes, false);  // ψ0
      chi &= psi_via_substitution(mgr, p, delta, classes, true);   // ψ1
    } else {
      chi &= psi_direct(mgr, delta, classes, false);
      chi &= psi_direct(mgr, delta, classes, true);
    }
  }
  return chi;
}

}  // namespace

bdd::Bdd build_chi(bdd::Manager& mgr, std::uint32_t p, const OutputState& st,
                   const ChiOptions& opts) {
  bdd::Bdd chi = psi_product_for_state(mgr, p, st, opts);
  if (opts.strict) {
    // One code per local class: every local class uniform in z.
    std::map<std::uint32_t, std::vector<std::uint32_t>> by_local;
    for (std::uint32_t g = 0; g < p; ++g)
      by_local[st.local_of_global[g]].push_back(g);
    for (const auto& [l, gs] : by_local) {
      if (gs.size() < 2) continue;
      chi &= class_cube(mgr, gs, true) | class_cube(mgr, gs, false);
    }
  }
  // Eliminate complementary duplicates (¬z_0 factor).
  chi &= bdd::Bdd::nvar(mgr, 0);
  return chi;
}

double preferable_count(bdd::Manager& mgr, std::uint32_t p,
                        const OutputState& st) {
  const bdd::Bdd psi = psi_product_for_state(mgr, p, st, ChiOptions{});
  // SatCount over exactly the p z variables: scale out any extra manager
  // variables (v variables used by other calls).
  const double total = psi.sat_count();
  const double extra = std::ldexp(1.0, static_cast<int>(mgr.num_vars() - p));
  return total / extra;
}

}  // namespace imodec
