#include "imodec/engine.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <map>
#include <optional>

#include "bdd/manager_pool.hpp"
#include "imodec/lmax.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/resource.hpp"

namespace imodec {

namespace {

/// Decomposition function from its positional-set form: d(x) = 1 iff the
/// global class of x is in the onset mask.
TruthTable d_from_mask(const VertexPartition& global, std::uint64_t z_mask) {
  TruthTable d(global.b);
  for (std::uint64_t x = 0; x < global.num_vertices(); ++x)
    d.set(x, (z_mask >> global.class_of[x]) & 1);
  return d;
}

}  // namespace

Result<Decomposition> decompose_multi_output(
    const std::vector<TruthTable>& outputs, const VarPartition& vp,
    const ImodecOptions& opts, ImodecStats* stats) {
  assert(!outputs.empty());
  // The span is the run's single timing source: stats->seconds comes from it
  // and — when tracing is on — it anchors the engine's subtree in the trace.
  obs::ScopedSpan run_span("engine.decompose");
  const std::size_t m = outputs.size();

  // --- Local partitions and the global partition (paper §3, §4). ----------
  std::vector<VertexPartition> locals;
  locals.reserve(m);
  {
    obs::ScopedSpan span("engine.partitions");
    for (const TruthTable& f : outputs)
      locals.push_back(local_partition_tt(f, vp));
  }
  const VertexPartition global = global_partition(locals);
  const std::uint32_t p = global.num_classes;

  if (stats) {
    stats->p = p;
    stats->l_k.clear();
    stats->c_k.clear();
    for (const auto& l : locals) {
      stats->l_k.push_back(l.num_classes);
      stats->c_k.push_back(codewidth(l.num_classes));
    }
  }
  if (p > opts.max_p) return DecomposeError::p_overflow;
  for (const auto& l : locals)
    if (codewidth(l.num_classes) > vp.b())
      return DecomposeError::codewidth_exceeds_b;

  // --- Per-output assignment state. ----------------------------------------
  std::vector<OutputState> states(m);
  std::vector<std::uint32_t> all_classes(p);
  for (std::uint32_t g = 0; g < p; ++g) all_classes[g] = g;
  for (std::size_t k = 0; k < m; ++k) {
    states[k].codewidth = codewidth(locals[k].num_classes);
    states[k].assigned = 0;
    states[k].blocks = {all_classes};
    states[k].local_of_global.resize(p);
    for (std::uint64_t x = 0; x < global.num_vertices(); ++x)
      states[k].local_of_global[global.class_of[x]] = locals[k].class_of[x];
  }

  Decomposition result;
  result.vp = vp;
  result.outputs.resize(m);

  // Accepted functions, deduplicated by positional-set mask.
  std::map<std::uint64_t, unsigned> d_index_of_mask;
  const auto accept = [&](std::uint64_t z_mask) -> unsigned {
    auto [it, inserted] =
        d_index_of_mask.emplace(z_mask, static_cast<unsigned>(result.d_funcs.size()));
    if (inserted) result.d_funcs.push_back(d_from_mask(global, z_mask));
    return it->second;
  };

  // --- Greedy implicit selection loop (paper §6). ---------------------------
  // Leased from the warm pool when one is provided (a reset manager behaves
  // bit-identically to a fresh one), constructed in place otherwise.
  bdd::ManagerPool::Lease lease;
  std::optional<bdd::Manager> local_mgr;
  if (opts.manager_pool)
    lease = opts.manager_pool->acquire(p);
  else
    local_mgr.emplace(p);
  bdd::Manager& mgr = lease ? lease.get() : *local_mgr;
  // Governed run: the manager checkpoints the guard in make_node, so deadline
  // expiry, cancellation, and node-budget trips surface from every implicit
  // operation below as util::Timeout / util::ResourceExhausted.
  mgr.set_resource_guard(opts.guard);
  const ChiOptions chi_opts{opts.via_v_substitution, opts.strict};

  std::vector<bdd::Bdd> chi(m);
  std::vector<bool> chi_valid(m, false);

  unsigned lmax_rounds = 0, chi_builds = 0;
  std::uint64_t candidates = 0;

  // Per-round timing into the obs histogram; the lookup is hoisted so the
  // loop pays two clock reads per round, not a registry probe.
  obs::Histogram* round_hist =
      obs::enabled() ? &obs::Registry::instance().histogram("engine.round_us")
                     : nullptr;
  for (unsigned round = 0;; ++round) {
    if (opts.guard) opts.guard->checkpoint();
    const auto round_start = round_hist || obs::flight_enabled()
                                 ? std::chrono::steady_clock::now()
                                 : std::chrono::steady_clock::time_point{};
    std::vector<std::size_t> incomplete;
    for (std::size_t k = 0; k < m; ++k)
      if (!states[k].complete()) incomplete.push_back(k);
    if (incomplete.empty()) break;

    std::vector<bdd::Bdd> active;
    active.reserve(incomplete.size());
    {
      obs::ScopedSpan span("engine.chi");
      for (std::size_t k : incomplete) {
        if (!chi_valid[k]) {
          chi[k] = build_chi(mgr, p, states[k], chi_opts);
          chi_valid[k] = true;
          ++chi_builds;
          // A preferable function always exists for an incomplete output
          // (balanced split of the classes in each block is constructable and
          // assignable); see DESIGN.md §5.
          assert(!chi[k].is_zero());
        }
        active.push_back(chi[k]);
      }
    }

    LmaxResult pick;
    {
      obs::ScopedSpan span("engine.lmax");
      pick = lmax(mgr, p, active);
    }
    ++lmax_rounds;
    candidates += incomplete.size();
    assert(pick.coverage >= 1);

    const unsigned d_idx = accept(pick.z_mask);
    for (std::size_t i = 0; i < incomplete.size(); ++i) {
      if (!pick.covers[i]) continue;
      const std::size_t k = incomplete[i];
      states[k].split_blocks(pick.z_mask);
      states[k].chosen.push_back(d_idx);
      chi_valid[k] = false;
    }
    if (round_hist || obs::flight_enabled()) {
      const auto us = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - round_start)
              .count());
      if (round_hist) round_hist->record(us);
      // Guard margin at round granularity: live nodes vs budget, ms left.
      if (opts.guard) {
        const auto left = opts.guard->remaining_ms();
        obs::flight(obs::FlightKind::guard, "engine.round",
                    opts.guard->live_nodes(), opts.guard->node_budget(),
                    left ? *left : ~std::uint64_t{0});
      }
    }
    // Defensive bound: each round assigns >= 1 function to >= 1 output.
    assert(round <= 64 * m);
  }

  // --- Completion invariants and g construction. ----------------------------
  {
    obs::ScopedSpan span("engine.build_g");
    for (std::size_t k = 0; k < m; ++k) {
      assert(states[k].refined());
      result.outputs[k].d_index = states[k].chosen;
      std::vector<TruthTable> chosen_d;
      chosen_d.reserve(states[k].chosen.size());
      for (unsigned idx : states[k].chosen)
        chosen_d.push_back(result.d_funcs[idx]);
      result.outputs[k].g = build_g(outputs[k], vp, chosen_d);
    }
  }

  // Property 1: ⌈ld p⌉ <= q must hold for any valid decomposition.
  assert(result.d_funcs.empty() ||
         (std::uint64_t{1} << result.d_funcs.size()) >= p);

  if (stats) {
    stats->q = result.q();
    stats->lmax_rounds = lmax_rounds;
    stats->chi_builds = chi_builds;
    stats->candidates = candidates;
    stats->seconds = run_span.seconds();
    stats->bdd_nodes = mgr.stats().nodes_allocated;
    stats->bdd_cache_lookups = mgr.stats().cache_lookups;
    stats->bdd_cache_hits = mgr.stats().cache_hits;
  }
  if (obs::enabled()) {
    obs::count("engine.runs");
    obs::count("engine.lmax_rounds", lmax_rounds);
    obs::count("engine.chi_builds", chi_builds);
    obs::count("engine.candidates", candidates);
    obs::count("engine.d_functions", result.d_funcs.size());
    // Reclaim this run's trial garbage under the pause timer so small
    // circuits (which never cross the GC threshold) still populate the
    // bdd.gc_pause_us histogram with a real measurement.
    mgr.garbage_collect();
    mgr.publish_stats();
  }
  return result;
}

unsigned sum_codewidths(const std::vector<TruthTable>& outputs,
                        const VarPartition& vp) {
  unsigned sum = 0;
  for (const TruthTable& f : outputs)
    sum += codewidth(local_partition_tt(f, vp).num_classes);
  return sum;
}

}  // namespace imodec
