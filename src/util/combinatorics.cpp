#include "util/combinatorics.hpp"

#include <cassert>

namespace imodec {

BigFloat big_binomial(std::uint64_t n, std::uint64_t k) {
  if (k > n) return BigFloat{};
  if (k > n - k) k = n - k;
  BigFloat r{1.0};
  for (std::uint64_t i = 0; i < k; ++i) {
    r *= BigFloat{static_cast<double>(n - i)};
    // Dividing by (i+1) exactly: multiply by its reciprocal; mantissa error
    // stays within double precision, far below the 2 printed digits we need.
    r *= BigFloat{1.0 / static_cast<double>(i + 1)};
  }
  return r;
}

BigFloat big_pow2(std::int64_t e) { return BigFloat::from_pow2(e); }

BigFloat big_mixed_labelings(std::uint64_t bits) {
  assert(bits >= 1);
  if (bits == 1) return BigFloat{};  // single element: only all-0 / all-1
  if (bits < 63) {
    return BigFloat{static_cast<double>((std::uint64_t{1} << bits) - 2)};
  }
  // 2^bits - 2 ~= 2^bits at this magnitude.
  BigFloat r = BigFloat::from_pow2(static_cast<std::int64_t>(bits));
  return r;
}

int ceil_log2(std::uint64_t x) {
  assert(x >= 1);
  int e = 0;
  std::uint64_t v = 1;
  while (v < x) {
    v <<= 1;
    ++e;
  }
  return e;
}

}  // namespace imodec
