#include "util/resource.hpp"

#include "util/fault.hpp"

namespace imodec::util {

const char* to_string(ResourceKind k) {
  switch (k) {
    case ResourceKind::wall_clock: return "wall-clock deadline";
    case ResourceKind::bdd_nodes: return "BDD node budget";
    case ResourceKind::memory: return "memory";
    case ResourceKind::cancelled: return "cancelled";
  }
  return "unknown";
}

void ResourceGuard::set_deadline_ms(std::uint64_t ms) {
  if (ms == 0) {
    has_deadline_.store(false, std::memory_order_release);
    return;
  }
  deadline_ = Clock::now() + std::chrono::milliseconds(ms);
  has_deadline_.store(true, std::memory_order_release);
}

std::optional<std::uint64_t> ResourceGuard::remaining_ms() const {
  if (!has_deadline_.load(std::memory_order_acquire)) return std::nullopt;
  const auto now = Clock::now();
  if (now >= deadline_) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline_ - now)
          .count());
}

bool ResourceGuard::poll_deadline() {
  if (expired_.load(std::memory_order_acquire)) return true;
  if (has_deadline_.load(std::memory_order_acquire) &&
      Clock::now() >= deadline_) {
    expired_.store(true, std::memory_order_release);
    return true;
  }
  return false;
}

void ResourceGuard::fault_site() {
  switch (fault::poll_checkpoint()) {
    case fault::Kind::deadline:
      // Latch like a real expiry: checkpoint()'s fast path sees it next.
      expired_.store(true, std::memory_order_release);
      break;
    case fault::Kind::cancel:
      cancelled_.store(true, std::memory_order_release);
      break;
    default:
      break;
  }
}

void ResourceGuard::checkpoint_slow() {
  if (poll_deadline()) throw_deadline();
}

void ResourceGuard::throw_deadline() const {
  throw Timeout("wall-clock deadline exceeded");
}

void ResourceGuard::throw_cancelled() const {
  throw ResourceExhausted(ResourceKind::cancelled, "run cancelled");
}

}  // namespace imodec::util
