#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace imodec::util {

namespace {
thread_local bool tls_on_worker = false;
}  // namespace

/// Shared state of one parallel_for: a chunk-claim counter plus completion
/// tracking. Runners (pool workers and the caller) claim disjoint index
/// ranges off `next`; `in_flight` counts runners currently executing chunks
/// so the caller knows when the last claimed chunk has finished.
struct ThreadPool::Job {
  std::size_t n = 0;
  std::size_t chunk = 1;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> next{0};
  std::mutex mu;
  std::condition_variable done_cv;
  unsigned in_flight = 0;
  std::exception_ptr error;

  void fail(std::exception_ptr e) {
    std::lock_guard<std::mutex> lock(mu);
    if (!error) error = std::move(e);
    // Stop further claims; chunks already claimed finish on their own.
    next.store(n, std::memory_order_relaxed);
  }

  /// Claim-and-run loop shared by the caller and the pool workers.
  void run_chunks() {
    {
      std::lock_guard<std::mutex> lock(mu);
      ++in_flight;
    }
    for (;;) {
      const std::size_t begin = next.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) break;
      const std::size_t end = std::min(n, begin + chunk);
      try {
        for (std::size_t i = begin; i < end; ++i) (*fn)(i);
      } catch (...) {
        fail(std::current_exception());
        break;
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      --in_flight;
    }
    done_cv.notify_all();
  }
};

ThreadPool::ThreadPool(unsigned threads) {
  unsigned resolved = threads ? threads : std::thread::hardware_concurrency();
  if (resolved == 0) resolved = 1;
  const unsigned workers = resolved - 1;
  queues_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i)
    queues_.push_back(std::make_unique<WorkerQueue>());
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stopping_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool ThreadPool::on_worker_thread() { return tls_on_worker; }

void ThreadPool::worker_loop(std::size_t self) {
  tls_on_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      // Own queue first, back end (most recently pushed, cache-warm).
      WorkerQueue& q = *queues_[self];
      std::lock_guard<std::mutex> lock(q.mu);
      if (!q.tasks.empty()) {
        task = std::move(q.tasks.back());
        q.tasks.pop_back();
      }
    }
    if (task) {
      note_task_taken();
      task();
      continue;
    }
    if (try_steal_and_run(self)) continue;
    // queued_ pairs every push with a notify under wake_mu_, so a task
    // enqueued between the scans above and this wait cannot be lost: the
    // predicate sees queued_ > 0 and the worker rescans.
    std::unique_lock<std::mutex> lock(wake_mu_);
    wake_cv_.wait(lock, [&] { return stopping_ || queued_ > 0; });
    if (stopping_ && queued_ == 0) return;  // drained; safe to exit
  }
}

void ThreadPool::note_task_taken() {
  std::lock_guard<std::mutex> lock(wake_mu_);
  --queued_;
}

bool ThreadPool::try_steal_and_run(std::size_t self) {
  // Steal from the front (oldest task) of the other queues, round robin
  // starting after our own slot so victims spread out.
  const std::size_t count = queues_.size();
  for (std::size_t off = 1; off < count; ++off) {
    WorkerQueue& victim = *queues_[(self + off) % count];
    std::function<void()> task;
    {
      std::lock_guard<std::mutex> lock(victim.mu);
      if (!victim.tasks.empty()) {
        task = std::move(victim.tasks.front());
        victim.tasks.pop_front();
      }
    }
    if (task) {
      note_task_taken();
      task();
      return true;
    }
  }
  return false;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Serial paths: a width-1 pool, a single item, or a nested call from
  // inside a pool task (running inline keeps the task tree acyclic, so
  // blocking waits can never deadlock).
  if (workers_.empty() || n == 1 || on_worker_thread()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  auto job = std::make_shared<Job>();
  job->n = n;
  job->fn = &fn;
  job->chunk = std::max<std::size_t>(1, n / (std::size_t{size()} * 8));

  // One runner per worker; each claims chunks until the counter runs dry.
  for (auto& q : queues_) {
    std::lock_guard<std::mutex> lock(q->mu);
    q->tasks.push_back([job] { job->run_chunks(); });
  }
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    queued_ += queues_.size();
  }
  wake_cv_.notify_all();

  job->run_chunks();  // the caller is an execution lane too

  std::unique_lock<std::mutex> lock(job->mu);
  job->done_cv.wait(lock, [&] {
    return job->next.load(std::memory_order_relaxed) >= job->n &&
           job->in_flight == 0;
  });
  if (job->error) std::rethrow_exception(job->error);
}

std::future<void> ThreadPool::submit(std::function<void()> fn) {
  auto task = std::make_shared<std::packaged_task<void()>>(std::move(fn));
  std::future<void> fut = task->get_future();
  if (queues_.empty()) {
    (*task)();  // width-1 pool: run inline
    return fut;
  }
  std::size_t slot;
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    slot = next_queue_++ % queues_.size();
  }
  {
    std::lock_guard<std::mutex> lock(queues_[slot]->mu);
    queues_[slot]->tasks.push_back([task] { (*task)(); });
  }
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    ++queued_;
  }
  wake_cv_.notify_one();
  return fut;
}

}  // namespace imodec::util
