#include "util/signals.hpp"

#include <atomic>

#ifndef _WIN32
#include <fcntl.h>
#include <signal.h>
#include <unistd.h>
#endif

namespace imodec::util {

namespace {

std::atomic<std::uint64_t> g_drain_count{0};
std::atomic<int> g_drain_signal{0};
std::atomic<int> g_drain_pipe_write{-1};
std::atomic<int> g_drain_pipe_read{-1};
std::atomic<FatalCallback> g_fatal_cb{nullptr};
std::atomic<bool> g_fatal_entered{false};

void note_drain(int signo) {
  int expected = 0;
  g_drain_signal.compare_exchange_strong(expected, signo,
                                         std::memory_order_relaxed);
  g_drain_count.fetch_add(1, std::memory_order_release);
  const int fd = g_drain_pipe_write.load(std::memory_order_relaxed);
  if (fd >= 0) {
#ifndef _WIN32
    const char byte = 1;
    // A full pipe just means the loop already has plenty of wakeups queued.
    [[maybe_unused]] const auto r = ::write(fd, &byte, 1);
#endif
  }
}

#ifndef _WIN32

void drain_signal_handler(int signo) { note_drain(signo); }

void fatal_signal_handler(int signo) {
  // First crash wins; a crash inside the callback (or a second signal on
  // another thread) falls through to the re-raise immediately.
  if (!g_fatal_entered.exchange(true, std::memory_order_acq_rel)) {
    if (const FatalCallback cb = g_fatal_cb.load(std::memory_order_acquire))
      cb(signo);
  }
  ::signal(signo, SIG_DFL);
  ::raise(signo);
}

const int kFatalSignals[] = {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT};

#endif  // !_WIN32

}  // namespace

bool install_drain_handler() {
#ifndef _WIN32
  if (g_drain_pipe_read.load(std::memory_order_relaxed) < 0) {
    int fds[2];
    if (::pipe(fds) != 0) return false;
    ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
    ::fcntl(fds[1], F_SETFL, O_NONBLOCK);
    ::fcntl(fds[0], F_SETFD, FD_CLOEXEC);
    ::fcntl(fds[1], F_SETFD, FD_CLOEXEC);
    g_drain_pipe_read.store(fds[0], std::memory_order_relaxed);
    g_drain_pipe_write.store(fds[1], std::memory_order_relaxed);
  }
  struct sigaction sa{};
  sa.sa_handler = drain_signal_handler;
  ::sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: blocked accept()/read() must wake
  return ::sigaction(SIGTERM, &sa, nullptr) == 0 &&
         ::sigaction(SIGINT, &sa, nullptr) == 0;
#else
  return false;
#endif
}

bool drain_requested() {
  return g_drain_count.load(std::memory_order_acquire) > 0;
}

std::uint64_t drain_signal_count() {
  return g_drain_count.load(std::memory_order_acquire);
}

int drain_signal() { return g_drain_signal.load(std::memory_order_relaxed); }

int drain_fd() { return g_drain_pipe_read.load(std::memory_order_relaxed); }

void simulate_drain_signal(int signo) { note_drain(signo); }

bool install_fatal_handler(FatalCallback cb) {
#ifndef _WIN32
  g_fatal_cb.store(cb, std::memory_order_release);
  struct sigaction sa{};
  if (cb) {
    sa.sa_handler = fatal_signal_handler;
    ::sigemptyset(&sa.sa_mask);
    // SA_NODEFER not set: the signal is blocked during the handler, and the
    // final raise() delivers after the handler returns.
    sa.sa_flags = 0;
  } else {
    sa.sa_handler = SIG_DFL;
  }
  bool ok = true;
  for (const int signo : kFatalSignals)
    ok = ::sigaction(signo, &sa, nullptr) == 0 && ok;
  return ok;
#else
  (void)cb;
  return false;
#endif
}

const char* signal_name(int signo) {
#ifndef _WIN32
  switch (signo) {
    case SIGSEGV: return "SIGSEGV";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
    case SIGILL: return "SIGILL";
    case SIGABRT: return "SIGABRT";
    case SIGTERM: return "SIGTERM";
    case SIGINT: return "SIGINT";
    case SIGKILL: return "SIGKILL";
  }
#endif
  (void)signo;
  return "SIG?";
}

}  // namespace imodec::util
