#include "util/bitvec.hpp"

#include <bit>

namespace imodec {

BitVec::BitVec(std::size_t size, bool value) : size_(size) {
  words_.assign((size + 63) / 64, value ? ~std::uint64_t{0} : 0);
  normalize_tail();
}

void BitVec::resize(std::size_t size) {
  size_ = size;
  words_.resize((size + 63) / 64, 0);
  normalize_tail();
}

void BitVec::fill(bool value) {
  for (auto& w : words_) w = value ? ~std::uint64_t{0} : 0;
  normalize_tail();
}

std::size_t BitVec::count() const {
  std::size_t n = 0;
  for (auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

bool BitVec::none() const {
  for (auto w : words_)
    if (w) return false;
  return true;
}

bool BitVec::all() const { return count() == size_; }

std::size_t BitVec::first_set() const {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w])
      return w * 64 + static_cast<std::size_t>(std::countr_zero(words_[w]));
  }
  return size_;
}

BitVec& BitVec::operator&=(const BitVec& o) {
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= o.words_[w];
  return *this;
}

BitVec& BitVec::operator|=(const BitVec& o) {
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= o.words_[w];
  return *this;
}

BitVec& BitVec::operator^=(const BitVec& o) {
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] ^= o.words_[w];
  return *this;
}

void BitVec::complement() {
  for (auto& w : words_) w = ~w;
  normalize_tail();
}

BitVec BitVec::operator~() const {
  BitVec r = *this;
  r.complement();
  return r;
}

bool BitVec::is_subset_of(const BitVec& o) const {
  for (std::size_t w = 0; w < words_.size(); ++w)
    if (words_[w] & ~o.words_[w]) return false;
  return true;
}

bool BitVec::disjoint_with(const BitVec& o) const {
  for (std::size_t w = 0; w < words_.size(); ++w)
    if (words_[w] & o.words_[w]) return false;
  return true;
}

std::size_t BitVec::hash() const {
  std::size_t h = size_ * 0x9e3779b97f4a7c15ull;
  for (auto w : words_) {
    h ^= w + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

std::string BitVec::to_string() const {
  std::string s(size_, '0');
  for (std::size_t i = 0; i < size_; ++i)
    if (get(i)) s[i] = '1';
  return s;
}

void BitVec::normalize_tail() {
  const std::size_t rem = size_ & 63;
  if (rem != 0 && !words_.empty())
    words_.back() &= (std::uint64_t{1} << rem) - 1;
}

}  // namespace imodec
