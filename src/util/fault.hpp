#pragma once
// Deterministic fault-injection harness (DESIGN.md §12.4).
//
// When the build defines IMODEC_FAULT_INJECTION, the resource-governance
// checkpoints (util/resource.hpp) and the BDD manager's allocation path call
// the poll_* hooks below. A test arms a Plan — "inject fault kind K at the
// N-th site of that kind" — runs the flow, and observes either a recovered
// run, a degraded-but-valid netlist, or a clean typed error. Because the
// sites are counted with a plain per-kind counter, a serial run replays the
// same schedule bit-identically every time: the harness is deterministic by
// construction (arm the same plan, trip the same operation).
//
// Without IMODEC_FAULT_INJECTION every hook is a constant-false inline — the
// hot paths carry zero cost and the symbols below still link (arm/disarm
// become no-ops so tools can probe `enabled()` at runtime).
//
// Site classes (each with its own counter, so `at` is meaningful per kind):
//   - checkpoint sites: every ResourceGuard::checkpoint() call. Deliver
//     `deadline` (latches the guard's deadline as expired) and `cancel`.
//   - budget sites: every governed fresh-node allocation in bdd::Manager.
//     Deliver `node_budget` (one forced budget trip; the manager's GC-retry
//     ladder then runs exactly as it would on a real trip).
//   - alloc sites: every arena/table growth in bdd::Manager. Deliver
//     `bad_alloc` (one forced std::bad_alloc from inside the try block, so
//     the GC-retry-or-ResourceExhausted ladder is exercised).

#include <cstdint>

namespace imodec::util::fault {

enum class Kind : std::uint8_t { none = 0, bad_alloc, deadline, node_budget, cancel };

struct Plan {
  Kind kind = Kind::none;
  /// 1-based: the fault fires at the `at`-th site of the matching class.
  /// `at == 0` arms a count-only plan: nothing fires, but counters run, so a
  /// clean run measures how many injection points a workload exposes.
  std::uint64_t at = 0;
};

/// True when the hooks are compiled in (IMODEC_FAULT_INJECTION builds).
constexpr bool enabled() {
#ifdef IMODEC_FAULT_INJECTION
  return true;
#else
  return false;
#endif
}

#ifdef IMODEC_FAULT_INJECTION

/// Install a plan and zero the site counters. Not thread-safe against a
/// concurrently running governed flow; arm before the run starts.
void arm(const Plan& plan);
/// Remove the plan (counters keep their values for points_seen()).
void disarm();
/// Sites of each class seen since the last arm().
std::uint64_t checkpoint_points_seen();
std::uint64_t budget_points_seen();
std::uint64_t alloc_points_seen();
/// True once the armed fault has fired (fires at most once per arm()).
bool fired();

/// Hook: called from ResourceGuard::checkpoint(). Returns the kind to
/// simulate at this site (deadline / cancel), or none.
Kind poll_checkpoint();
/// Hook: called from the manager's governed allocation path. True = simulate
/// one node-budget trip here.
bool poll_budget();
/// Hook: called from the manager's arena/table growth path. True = simulate
/// one std::bad_alloc here.
bool poll_alloc();

#else

inline void arm(const Plan&) {}
inline void disarm() {}
inline std::uint64_t checkpoint_points_seen() { return 0; }
inline std::uint64_t budget_points_seen() { return 0; }
inline std::uint64_t alloc_points_seen() { return 0; }
inline bool fired() { return false; }
inline Kind poll_checkpoint() { return Kind::none; }
inline bool poll_budget() { return false; }
inline bool poll_alloc() { return false; }

#endif

}  // namespace imodec::util::fault
