#pragma once
// Resource governance (DESIGN.md §12): one ResourceGuard per governed run
// carrying a wall-clock deadline, a live-BDD-node budget, and a cooperative
// cancellation token. The guard is threaded (as a raw, non-owning pointer)
// through bdd::Manager, imodec::engine, decomp::varpart/single, map::lutflow
// and map::driver; each layer calls checkpoint() at its natural unit of work
// and either lets the typed exceptions below escape (on-exhaustion=fail) or
// catches them at a ladder point and degrades (on-exhaustion=degrade).
//
// Thread safety: one guard is shared by every worker of a governed run. All
// mutable state is atomic; checkpoint() is called from arbitrary pool
// threads. Cancellation propagates *through the guard*, not the pool: the
// first worker to observe an expiry (or to call cancel()) latches a flag
// that every other worker's next checkpoint sees, so one trip stops the
// whole round promptly while ThreadPool::parallel_for's failure path stops
// un-started chunks from being claimed at all.
//
// Determinism contract (§12.3): the node budget is enforced per governed
// manager — i.e. per work unit — so whether a given decomposition trips
// depends only on that unit's own allocation sequence, never on scheduling.
// Budget-governed runs are therefore bit-identical at every thread count.
// Wall-clock deadlines are inherently timing-dependent; a deadline can only
// make runs differ when it actually trips, and the DegradationReport records
// when it did.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

namespace imodec::util {

enum class ResourceKind : std::uint8_t {
  wall_clock,   // deadline expired
  bdd_nodes,    // live-node budget exceeded and GC could not help
  memory,       // allocation failed (bad_alloc) even after a GC retry
  cancelled,    // explicit cancel() — cooperative cancellation token
};

const char* to_string(ResourceKind k);

/// Typed error: a governed run hit a resource limit. With
/// on-exhaustion=fail this escapes run_synthesis; the CLI maps it to a
/// documented exit code (README "Exit codes").
class ResourceExhausted : public std::runtime_error {
 public:
  ResourceExhausted(ResourceKind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}
  ResourceKind kind() const { return kind_; }

 private:
  ResourceKind kind_;
};

/// Typed error: the wall-clock deadline expired (a ResourceExhausted with
/// kind wall_clock; a distinct type so callers can catch it separately).
class Timeout : public ResourceExhausted {
 public:
  explicit Timeout(const std::string& what)
      : ResourceExhausted(ResourceKind::wall_clock, what) {}
};

class ResourceGuard {
 public:
  using Clock = std::chrono::steady_clock;

  ResourceGuard() = default;
  ResourceGuard(const ResourceGuard&) = delete;
  ResourceGuard& operator=(const ResourceGuard&) = delete;

  /// Arm a wall-clock deadline `ms` milliseconds from now. 0 disarms.
  void set_deadline_ms(std::uint64_t ms);
  /// Cap on live BDD nodes per governed manager (16 bytes each, so this is
  /// also the arena-byte budget / 16). 0 = unlimited. Enforced inside
  /// bdd::Manager::make_node with a GC-retry before giving up.
  void set_node_budget(std::size_t nodes) {
    node_budget_.store(nodes, std::memory_order_relaxed);
  }
  std::size_t node_budget() const {
    return node_budget_.load(std::memory_order_relaxed);
  }

  /// Cooperative cancellation: latches; every subsequent checkpoint() in any
  /// thread throws ResourceExhausted(cancelled).
  void cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// True once the deadline has been observed expired (latched — also set by
  /// an injected deadline fault). Cheap; safe from any thread.
  bool deadline_expired() const {
    return expired_.load(std::memory_order_acquire);
  }
  /// Poll the clock now (latching); returns deadline_expired().
  bool poll_deadline();
  /// Milliseconds until the deadline, clamped at 0; nullopt when no deadline
  /// is armed. Used to mirror an outer deadline onto a sub-phase guard (e.g.
  /// the miter's own budget guard, verify/miter.cpp).
  std::optional<std::uint64_t> remaining_ms() const;

  /// True when the run should stop expanding work: cancelled or past the
  /// deadline. Ladder points in degrade mode use this to pick the cheapest
  /// fallback instead of throwing.
  bool should_stop() const {
    return cancel_requested() || deadline_expired();
  }

  /// The governed hot-path call. Cheap: one relaxed counter bump and two
  /// atomic loads per call; the clock is consulted every kStride-th call
  /// (and always on the first). Throws Timeout /
  /// ResourceExhausted(cancelled) once tripped. In IMODEC_FAULT_INJECTION
  /// builds every call is a fault-injection checkpoint site.
  void checkpoint() {
#ifdef IMODEC_FAULT_INJECTION
    fault_site();
#endif
    if (cancelled_.load(std::memory_order_acquire))
      throw_cancelled();
    const std::uint64_t n = ticks_.fetch_add(1, std::memory_order_relaxed);
    if (expired_.load(std::memory_order_acquire)) throw_deadline();
    if ((n & (kStride - 1)) == 0) checkpoint_slow();
  }

  /// Total checkpoint() calls so far (observability; flow.resource.* gauges).
  std::uint64_t checkpoints() const {
    return ticks_.load(std::memory_order_relaxed);
  }

  // --- Global live-node accounting (observability only; see header note on
  // why *enforcement* is per manager) -----------------------------------------
  void charge_nodes(std::int64_t delta) {
    const std::int64_t now =
        live_nodes_.fetch_add(delta, std::memory_order_relaxed) + delta;
    std::int64_t peak = peak_nodes_.load(std::memory_order_relaxed);
    while (now > peak && !peak_nodes_.compare_exchange_weak(
                             peak, now, std::memory_order_relaxed)) {
    }
  }
  std::int64_t live_nodes() const {
    return live_nodes_.load(std::memory_order_relaxed);
  }
  std::int64_t peak_live_nodes() const {
    return peak_nodes_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::uint64_t kStride = 256;  // clock polls per checkpoint

  void fault_site();  // defined out of line; consults util::fault
  void checkpoint_slow();
  [[noreturn]] void throw_deadline() const;
  [[noreturn]] void throw_cancelled() const;

  std::atomic<bool> has_deadline_{false};
  Clock::time_point deadline_{};  // written before has_deadline_ release-store
  std::atomic<bool> expired_{false};
  std::atomic<bool> cancelled_{false};
  std::atomic<std::size_t> node_budget_{0};
  std::atomic<std::uint64_t> ticks_{0};
  std::atomic<std::int64_t> live_nodes_{0};
  std::atomic<std::int64_t> peak_nodes_{0};
};

}  // namespace imodec::util
