#pragma once
// Deterministic, seedable PRNG (xoshiro256**).
//
// Synthetic benchmark circuits must be bit-identical across runs and
// platforms, so we avoid std::mt19937's distribution non-portability and use
// our own generator plus explicit range reduction.

#include <cstdint>

namespace imodec {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  std::uint64_t next();
  /// Uniform value in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound);
  /// Uniform value in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi);
  bool coin() { return next() & 1; }
  /// True with probability num/den.
  bool chance(std::uint64_t num, std::uint64_t den);

 private:
  std::uint64_t s_[4];
};

}  // namespace imodec
