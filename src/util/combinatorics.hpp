#pragma once
// Combinatorial helpers on BigFloat magnitudes.

#include <cstdint>

#include "util/bigfloat.hpp"

namespace imodec {

/// Binomial coefficient C(n, k) as a big-magnitude value (0 if k > n).
BigFloat big_binomial(std::uint64_t n, std::uint64_t k);

/// 2^e as a big-magnitude value.
BigFloat big_pow2(std::int64_t e);

/// (2^bits - 2): number of "mixed" 0/1 labelings of a set of `bits` elements
/// (neither all-0 nor all-1). bits >= 1.
BigFloat big_mixed_labelings(std::uint64_t bits);

/// Exact ceil(log2(x)) for x >= 1.
int ceil_log2(std::uint64_t x);

}  // namespace imodec
