#pragma once
// Dynamic bit vector used for truth tables and vertex sets.
//
// A BitVec of size n stores bits 0..n-1 packed into 64-bit words. It is the
// workhorse behind TruthTable and the explicit class/partition machinery in
// src/decomp. Word-level access is exposed so truth-table operators can work
// 64 bits at a time.

#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

namespace imodec {

class BitVec {
 public:
  BitVec() = default;
  /// Construct with `size` bits, all initialized to `value`.
  explicit BitVec(std::size_t size, bool value = false);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool get(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void set(std::size_t i, bool v) {
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    if (v)
      words_[i >> 6] |= mask;
    else
      words_[i >> 6] &= ~mask;
  }
  void flip(std::size_t i) { words_[i >> 6] ^= std::uint64_t{1} << (i & 63); }

  /// Resize to `size` bits; new bits are zero.
  void resize(std::size_t size);
  /// Set all bits to `value`.
  void fill(bool value);

  /// Number of set bits.
  std::size_t count() const;
  /// True iff no bit is set.
  bool none() const;
  /// True iff all bits are set.
  bool all() const;
  /// Index of the lowest set bit, or size() if none.
  std::size_t first_set() const;

  BitVec& operator&=(const BitVec& o);
  BitVec& operator|=(const BitVec& o);
  BitVec& operator^=(const BitVec& o);
  /// Complement within the vector's size (tail bits stay normalized).
  void complement();

  friend BitVec operator&(BitVec a, const BitVec& b) { return a &= b; }
  friend BitVec operator|(BitVec a, const BitVec& b) { return a |= b; }
  friend BitVec operator^(BitVec a, const BitVec& b) { return a ^= b; }
  BitVec operator~() const;

  bool operator==(const BitVec& o) const = default;

  /// True iff every set bit of *this is also set in `o`.
  bool is_subset_of(const BitVec& o) const;
  /// True iff no bit is set in both.
  bool disjoint_with(const BitVec& o) const;

  std::size_t word_count() const { return words_.size(); }
  std::uint64_t word(std::size_t w) const { return words_[w]; }
  void set_word(std::size_t w, std::uint64_t v) {
    words_[w] = v;
    normalize_tail();
  }

  /// Stable hash of contents (for unordered_map keys).
  std::size_t hash() const;

  /// "0"/"1" characters, bit 0 first.
  std::string to_string() const;

 private:
  void normalize_tail();

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

struct BitVecHash {
  std::size_t operator()(const BitVec& v) const { return v.hash(); }
};

}  // namespace imodec
