#include "util/bigfloat.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <limits>

namespace imodec {

BigFloat::BigFloat(double v) : mant_(v) {
  assert(v >= 0.0 && std::isfinite(v));
  normalize();
}

BigFloat BigFloat::from_pow2(std::int64_t exponent) {
  BigFloat r;
  r.mant_ = 1.0;
  r.exp2_ = exponent;
  return r;
}

void BigFloat::normalize() {
  if (mant_ == 0.0) {
    exp2_ = 0;
    return;
  }
  int e = 0;
  mant_ = std::frexp(mant_, &e);  // mant_ in [0.5, 1)
  mant_ *= 2.0;                   // [1, 2)
  exp2_ += e - 1;
}

BigFloat& BigFloat::operator+=(const BigFloat& o) {
  if (o.is_zero()) return *this;
  if (is_zero()) {
    *this = o;
    return *this;
  }
  // Align the smaller operand to the larger exponent.
  const BigFloat& big = (exp2_ >= o.exp2_) ? *this : o;
  const BigFloat& small = (exp2_ >= o.exp2_) ? o : *this;
  const std::int64_t diff = big.exp2_ - small.exp2_;
  double m = big.mant_;
  if (diff < 1024) m += std::ldexp(small.mant_, -static_cast<int>(diff));
  mant_ = m;
  exp2_ = big.exp2_;
  normalize();
  return *this;
}

BigFloat& BigFloat::operator*=(const BigFloat& o) {
  if (is_zero() || o.is_zero()) {
    mant_ = 0.0;
    exp2_ = 0;
    return *this;
  }
  mant_ *= o.mant_;
  exp2_ += o.exp2_;
  normalize();
  return *this;
}

int BigFloat::compare(const BigFloat& o) const {
  if (is_zero() && o.is_zero()) return 0;
  if (is_zero()) return -1;
  if (o.is_zero()) return 1;
  if (exp2_ != o.exp2_) return exp2_ < o.exp2_ ? -1 : 1;
  if (mant_ != o.mant_) return mant_ < o.mant_ ? -1 : 1;
  return 0;
}

double BigFloat::to_double() const {
  if (is_zero()) return 0.0;
  if (exp2_ > 1023) return std::numeric_limits<double>::infinity();
  return std::ldexp(mant_, static_cast<int>(exp2_));
}

double BigFloat::log10() const {
  if (is_zero()) return -std::numeric_limits<double>::infinity();
  return std::log10(mant_) + static_cast<double>(exp2_) * std::log10(2.0);
}

std::string BigFloat::to_string(int digits) const {
  if (is_zero()) return "0";
  const double l10 = log10();
  if (l10 < 7.0) {
    const double v = to_double();
    if (v == std::floor(v)) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.0f", v);
      return buf;
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*g", digits + 1, v);
    return buf;
  }
  const double e = std::floor(l10);
  double m = std::pow(10.0, l10 - e);
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*fe+%.0f", digits - 1, m, e);
  return buf;
}

}  // namespace imodec
