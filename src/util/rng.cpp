#include "util/rng.hpp"

namespace imodec {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  for (auto& s : s_) s = splitmix64(seed);
  // Avoid the all-zero state (xoshiro's only invalid state).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  // Rejection sampling for exact uniformity.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::uint64_t Rng::range(std::uint64_t lo, std::uint64_t hi) {
  return lo + below(hi - lo + 1);
}

bool Rng::chance(std::uint64_t num, std::uint64_t den) {
  return below(den) < num;
}

}  // namespace imodec
