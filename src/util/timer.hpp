#pragma once
// Wall-clock stopwatch for the CPU-time columns of the experiment tables.

#include <chrono>

namespace imodec {

class Timer {
 public:
  Timer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  /// Seconds elapsed since construction / last reset.
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace imodec
