#pragma once
// Signal plumbing for the serving layer (DESIGN.md §15).
//
// Two independent facilities, both POSIX-only (no-op stubs elsewhere):
//
// 1. Drain signals. install_drain_handler() points SIGTERM/SIGINT at an
//    async-signal-safe handler that latches an atomic flag and writes one
//    byte to a self-pipe, so an accept loop blocked in poll() wakes
//    immediately (the classic self-pipe trick). The daemon polls
//    {listener, drain_fd()} and flips into drain mode on the first signal.
//    A second signal while draining is visible via drain_signal_count() so
//    an impatient operator's repeat Ctrl-C can force a faster exit.
//
// 2. Fatal signals. install_fatal_handler(cb) points SIGSEGV/SIGBUS/
//    SIGFPE/SIGILL/SIGABRT at a last-gasp handler that runs `cb(signo)`
//    once (re-entry from a crash inside the callback is suppressed), then
//    restores the default disposition and re-raises, so the process still
//    dies *by that signal* — a supervisor sees WIFSIGNALED and the original
//    signo, not a disguised exit code. The callback must stick to
//    async-signal-safe operations: write(2) to a pre-opened fd, snprintf
//    into stack buffers (technically unspecified but dependable on the
//    platforms we serve on), no malloc, no locks — see
//    obs::flight_dump_fd() for the pattern.

#include <cstdint>

namespace imodec::util {

/// Install SIGTERM/SIGINT handlers that latch the drain flag and wake
/// drain_fd(). Idempotent; returns false when handler installation failed.
bool install_drain_handler();

/// True once any drain signal has been received.
bool drain_requested();

/// Number of drain signals received so far (0 before the first).
std::uint64_t drain_signal_count();

/// The signal number that first requested the drain (0 before the first).
int drain_signal();

/// Read end of the self-pipe: poll()-able, becomes readable on the first
/// drain signal. -1 until install_drain_handler() succeeds. Never read it
/// dry yourself — poll for readability and consult drain_requested().
int drain_fd();

/// Test hook: pretend a drain signal arrived (same latching + pipe write,
/// minus the actual signal).
void simulate_drain_signal(int signo);

/// Last-gasp callback: `signo` is the fatal signal being delivered.
using FatalCallback = void (*)(int signo);

/// Install the fatal-signal last-gasp handler. The callback runs at most
/// once process-wide (the first fatal signal wins; re-entrant crashes skip
/// straight to the re-raise). Passing nullptr restores default dispositions.
bool install_fatal_handler(FatalCallback cb);

/// Spelled name ("SIGSEGV", ...) for the signals this module touches;
/// "SIG<n>" otherwise. Async-signal-safe (returns static strings).
const char* signal_name(int signo);

}  // namespace imodec::util
