#include "util/fault.hpp"

#ifdef IMODEC_FAULT_INJECTION

#include <atomic>

namespace imodec::util::fault {
namespace {

// One armed plan per process. Counters are atomics so governed parallel runs
// do not race; the *schedule* is only deterministic for serial runs, which is
// what the sweep in tools/imodec_fuzz uses (thread-count invariance is
// asserted separately on budget-governed runs, whose trips are per-work-unit
// and therefore schedule-independent).
std::atomic<Kind> g_kind{Kind::none};
std::atomic<std::uint64_t> g_at{0};
std::atomic<std::uint64_t> g_checkpoint_seen{0};
std::atomic<std::uint64_t> g_budget_seen{0};
std::atomic<std::uint64_t> g_alloc_seen{0};
std::atomic<bool> g_fired{false};

// Returns true when this call is the `at`-th site (1-based) and the fault has
// not fired yet. fetch_add gives each site a unique ordinal, so exactly one
// caller fires even under concurrency.
bool hit(std::atomic<std::uint64_t>& counter) {
  const std::uint64_t ordinal = counter.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::uint64_t at = g_at.load(std::memory_order_relaxed);
  if (at == 0 || ordinal != at) return false;
  bool expected = false;
  return g_fired.compare_exchange_strong(expected, true, std::memory_order_relaxed);
}

}  // namespace

void arm(const Plan& plan) {
  g_fired.store(false, std::memory_order_relaxed);
  g_checkpoint_seen.store(0, std::memory_order_relaxed);
  g_budget_seen.store(0, std::memory_order_relaxed);
  g_alloc_seen.store(0, std::memory_order_relaxed);
  g_at.store(plan.at, std::memory_order_relaxed);
  g_kind.store(plan.kind, std::memory_order_release);
}

void disarm() { g_kind.store(Kind::none, std::memory_order_release); }

std::uint64_t checkpoint_points_seen() {
  return g_checkpoint_seen.load(std::memory_order_relaxed);
}
std::uint64_t budget_points_seen() {
  return g_budget_seen.load(std::memory_order_relaxed);
}
std::uint64_t alloc_points_seen() {
  return g_alloc_seen.load(std::memory_order_relaxed);
}
bool fired() { return g_fired.load(std::memory_order_relaxed); }

Kind poll_checkpoint() {
  const Kind k = g_kind.load(std::memory_order_acquire);
  if (k != Kind::deadline && k != Kind::cancel) return Kind::none;
  return hit(g_checkpoint_seen) ? k : Kind::none;
}

bool poll_budget() {
  if (g_kind.load(std::memory_order_acquire) != Kind::node_budget) return false;
  return hit(g_budget_seen);
}

bool poll_alloc() {
  if (g_kind.load(std::memory_order_acquire) != Kind::bad_alloc) return false;
  return hit(g_alloc_seen);
}

}  // namespace imodec::util::fault

#endif  // IMODEC_FAULT_INJECTION
