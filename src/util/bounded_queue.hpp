#pragma once
// Bounded MPMC queue — the admission-control primitive of the serving layer
// (DESIGN.md §15). Deliberately tiny: a mutex + condition variable around a
// deque with a hard capacity. Producers never block — try_push either
// enqueues or reports "full" so the caller can shed load with a typed
// `overloaded` response instead of stalling the socket. Consumers block in
// pop() until an item arrives or the queue is closed.
//
// close_and_drain() is the graceful-drain hook: it atomically stops further
// pushes, wakes every blocked consumer, and hands the not-yet-started items
// back to the caller (which answers them with `overloaded`); items already
// popped are in flight and finish normally.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace imodec::util {

template <typename T>
class BoundedQueue {
 public:
  /// `capacity` == 0 means "reject everything" (a drain-only queue).
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Non-blocking enqueue. False when the queue is full or closed — the
  /// producer sheds instead of waiting. `item` is moved from only on
  /// success; on failure the caller still owns it intact (the serving layer
  /// answers the shed request through the callback it carries).
  bool try_push(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocking dequeue; nullopt once the queue is closed and empty.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Stop accepting, wake all consumers, and return everything that was
  /// still queued (the caller owns answering those). Idempotent.
  std::vector<T> close_and_drain() {
    std::vector<T> rest;
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
      rest.reserve(items_.size());
      while (!items_.empty()) {
        rest.push_back(std::move(items_.front()));
        items_.pop_front();
      }
    }
    cv_.notify_all();
    return rest;
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace imodec::util
