#pragma once
// Work-stealing thread pool — the execution substrate of the parallel
// synthesis runtime (DESIGN.md §9).
//
// A pool of `threads - 1` workers plus the calling thread. Each worker owns a
// deque: it pops its own back (LIFO, cache-warm) and steals from the fronts
// of the others (FIFO, oldest first). parallel_for() additionally uses a
// shared chunk counter so the caller participates and load-balances without
// per-item task objects.
//
// Determinism contract: the pool never makes results depend on scheduling.
// parallel_for writes results by index (callers reduce in index order), and
// nested parallel_for calls from inside a worker run inline — so a run with
// any thread count computes bit-identical results to `threads == 1`.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace imodec::util {

class ThreadPool {
 public:
  /// `threads` counts the calling thread: the pool spawns `threads - 1`
  /// workers. 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution width (workers + caller); >= 1.
  unsigned size() const { return static_cast<unsigned>(workers_.size()) + 1; }

  /// Run fn(i) for every i in [0, n), blocking until all complete. The
  /// caller executes chunks alongside the workers. The first exception
  /// thrown by any fn(i) is rethrown here (remaining indices are skipped on
  /// a best-effort basis). Safe to call from inside a pool task: nested
  /// calls run inline on the calling thread.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Enqueue one task; the future reports completion or rethrows the task's
  /// exception. Tasks submitted from one thread start in submission order
  /// (a stealing worker takes the oldest first), but run concurrently.
  std::future<void> submit(std::function<void()> fn);

  /// True when the calling thread is one of this process's pool workers
  /// (any pool). parallel_for uses it to detect nesting.
  static bool on_worker_thread();

 private:
  struct Job;  // shared state of one parallel_for

  void worker_loop(std::size_t self);
  bool try_steal_and_run(std::size_t self);
  void note_task_taken();

  struct WorkerQueue {
    std::deque<std::function<void()>> tasks;
    std::mutex mu;
  };

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::size_t next_queue_ = 0;  // round-robin submit target (under wake_mu_)
  std::size_t queued_ = 0;      // tasks pushed but not yet taken (wake_mu_)
  bool stopping_ = false;
};

}  // namespace imodec::util
