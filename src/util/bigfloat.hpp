#pragma once
// Big-magnitude non-negative floating value.
//
// Table 1 of the paper reports counts of assignable functions up to ~1.2e77
// (the theoretical bound is 2^(2^b)), which overflows double only around
// 1e308 but intermediate multinomial products in the counting DP can go far
// beyond that. BigFloat keeps a normalized mantissa in [1, 2) plus a wide
// binary exponent, which is plenty of dynamic range and precision (the paper
// itself prints two significant digits).

#include <cstdint>
#include <string>

namespace imodec {

class BigFloat {
 public:
  BigFloat() = default;  // zero
  BigFloat(double v);    // NOLINT: implicit by design (arith convenience)

  static BigFloat from_pow2(std::int64_t exponent);  // 2^exponent

  bool is_zero() const { return mant_ == 0.0; }

  BigFloat& operator+=(const BigFloat& o);
  BigFloat& operator*=(const BigFloat& o);
  friend BigFloat operator+(BigFloat a, const BigFloat& b) { return a += b; }
  friend BigFloat operator*(BigFloat a, const BigFloat& b) { return a *= b; }

  /// Three-way comparison by magnitude.
  int compare(const BigFloat& o) const;
  bool operator<(const BigFloat& o) const { return compare(o) < 0; }
  bool operator==(const BigFloat& o) const { return compare(o) == 0; }

  /// Value as double; +inf if it does not fit.
  double to_double() const;
  /// log10 of the value (-inf for zero).
  double log10() const;
  /// Scientific notation with `digits` significant digits, e.g. "2.1e+48".
  /// Values below 10^7 are printed as plain integers (as in Table 1).
  std::string to_string(int digits = 2) const;

 private:
  void normalize();

  double mant_ = 0.0;       // 0, or in [1, 2)
  std::int64_t exp2_ = 0;   // value = mant_ * 2^exp2_
};

}  // namespace imodec
