#include "verify/gen.hpp"

#include <fstream>

#include "util/strings.hpp"

namespace imodec::verify {

std::size_t FuzzCase::total_cubes() const {
  std::size_t n = 0;
  for (const Cover& c : outputs) n += c.size();
  return n;
}

Network FuzzCase::to_network() const {
  Network net(name);
  std::vector<SigId> pis;
  pis.reserve(num_inputs);
  for (unsigned v = 0; v < num_inputs; ++v)
    pis.push_back(net.add_input(strprintf("in%u", v)));
  for (std::size_t j = 0; j < outputs.size(); ++j) {
    const std::string oname = strprintf("out%zu", j);
    const SigId node = net.add_node(pis, outputs[j].to_truthtable(), oname);
    net.add_output(node, oname);
  }
  return net;
}

std::string FuzzCase::to_pla() const {
  std::string s = strprintf(".i %u\n.o %zu\n.p %zu\n", num_inputs,
                            outputs.size(), total_cubes());
  for (std::size_t j = 0; j < outputs.size(); ++j) {
    std::string out_part(outputs.size(), '0');
    out_part[j] = '1';
    for (const Cube& q : outputs[j].cubes())
      s += q.to_pla(num_inputs) + " " + out_part + "\n";
  }
  s += ".e\n";
  return s;
}

FuzzCase random_case(Rng& rng, const GenOptions& opts) {
  FuzzCase c;
  c.num_inputs =
      static_cast<unsigned>(rng.range(opts.min_inputs, opts.max_inputs));
  const auto num_outputs = rng.range(opts.min_outputs, opts.max_outputs);
  c.outputs.reserve(num_outputs);
  for (std::uint64_t j = 0; j < num_outputs; ++j) {
    Cover cov(c.num_inputs);
    const auto num_cubes = rng.range(1, opts.max_cubes_per_output);
    for (std::uint64_t t = 0; t < num_cubes; ++t) {
      Cube q;
      for (unsigned v = 0; v < c.num_inputs; ++v) {
        // Equal thirds absent / positive / negative: dense enough that
        // outputs are non-trivial, sparse enough that cubes overlap (the
        // interesting regime for decomposition sharing).
        switch (rng.below(3)) {
          case 0: break;
          case 1:
            q.mask |= 1u << v;
            q.value |= 1u << v;
            break;
          default:
            q.mask |= 1u << v;
            break;
        }
      }
      cov.add(q);
    }
    c.outputs.push_back(std::move(cov));
  }
  return c;
}

bool write_pla_file(const std::string& path, const FuzzCase& c) {
  std::ofstream f(path);
  if (!f) return false;
  f << c.to_pla();
  return static_cast<bool>(f);
}

}  // namespace imodec::verify
