#pragma once
// Greedy counterexample shrinking.
//
// Given a failing FuzzCase and a predicate that re-runs the failure, reduce
// the case while the failure still reproduces: drop whole outputs, delete
// individual cubes, merge input pairs (substitute x_j := x_i), and drop
// inputs no cube mentions. Passes repeat to a fixpoint, so the result is
// 1-minimal with respect to these edits — typically a handful of cubes over
// a few inputs, small enough to debug by hand from the .pla repro.

#include <cstddef>
#include <functional>

#include "verify/gen.hpp"

namespace imodec::verify {

/// Re-runs the failing scenario on a candidate case; true = still fails.
using FailPredicate = std::function<bool(const FuzzCase&)>;

struct ShrinkStats {
  std::size_t predicate_calls = 0;
  std::size_t outputs_dropped = 0;
  std::size_t cubes_deleted = 0;
  std::size_t inputs_merged = 0;
  std::size_t inputs_dropped = 0;
  std::size_t rounds = 0;
};

/// Shrink `failing` (pre: fails(failing)) to a locally minimal case that
/// still satisfies `fails`. Never returns a case with zero inputs or zero
/// outputs.
FuzzCase shrink_case(const FuzzCase& failing, const FailPredicate& fails,
                     ShrinkStats* stats = nullptr);

}  // namespace imodec::verify
