#pragma once
// Exact equivalence oracle: a BDD miter over two networks.
//
// Both networks are built into one bdd::Manager (inputs matched by position
// via logic/net2bdd), and f_a ⊕ f_b is proved zero per output. Unlike
// logic/simulate's sampled mode this is a proof for any input count — the
// Table 2 circuits beyond 16 inputs (count, e64, rot, ...) live here. A
// live-node budget bounds memory: when the build outgrows it the check
// returns unproven and callers fall back to simulation.

#include <cstddef>
#include <limits>
#include <optional>
#include <vector>

#include "logic/network.hpp"

namespace imodec::util {
class ResourceGuard;
}

namespace imodec::verify {

struct MiterOptions {
  /// Live BDD-node cap during the build. Enforced *inside* the BDD kernel
  /// (bdd::Manager::make_node, via a ResourceGuard private to the miter), so
  /// a blow-up mid-gate trips at node granularity instead of overshooting
  /// until the end of the gate; a garbage collection is retried before
  /// giving up. Default: unbounded.
  std::size_t node_budget = std::numeric_limits<std::size_t>::max();
  /// Outer guard (optional, not owned): its remaining deadline and its
  /// cancellation are mirrored onto the miter's internal guard, so a governed
  /// synthesis run's --timeout-ms also bounds verification. The outer node
  /// budget is *not* mirrored — the miter's budget is `node_budget` above.
  util::ResourceGuard* guard = nullptr;
};

struct MiterResult {
  /// The check reached an exact verdict within the node budget. When false,
  /// `equivalent` is meaningless and the caller should fall back to
  /// simulation.
  bool proven = false;
  bool equivalent = false;
  /// Input or output counts differ; reported as proven non-equivalent
  /// instead of asserting (mirrors EquivalenceResult::interface_mismatch).
  bool interface_mismatch = false;
  /// Index (into outputs()) of the first differing output, when !equivalent.
  std::size_t failing_output = 0;
  /// Satisfying cube of the failing miter: an input assignment (indexed like
  /// a.inputs()) on which the networks differ.
  std::optional<std::vector<bool>> counterexample;
  /// Peak live nodes of the miter manager (budget tuning / reporting).
  std::size_t peak_nodes = 0;
};

/// Prove or refute equivalence of `a` and `b` (inputs/outputs matched by
/// position).
MiterResult check_miter(const Network& a, const Network& b,
                        const MiterOptions& opts = {});

}  // namespace imodec::verify
