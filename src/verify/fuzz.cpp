#include "verify/fuzz.hpp"

#include <deque>
#include <filesystem>
#include <fstream>

#include "logic/simulate.hpp"
#include "map/session.hpp"
#include "util/strings.hpp"
#include "verify/miter.hpp"
#include "verify/shrink.hpp"

namespace imodec::verify {
namespace {

/// Run one synthesis at the given width; verification is the fuzzer's job,
/// so the driver's own check is off.
DriverReport synth(const Network& net, const SynthesisConfig& cfg,
                   unsigned threads, Network& mapped) {
  SynthesisConfig c = cfg;
  c.threads = threads;
  c.verify = VerifyMode::off;
  return run_synthesis(net, c, mapped);
}

/// Correctness check: miter first, exhaustive/sampled simulation when the
/// miter blows the budget (generated cases are small, so in practice the
/// miter always decides).
bool equivalent_to_input(const Network& input, const Network& mapped,
                         std::size_t node_budget) {
  MiterOptions mopts;
  mopts.node_budget = node_budget;
  const MiterResult mr = check_miter(input, mapped, mopts);
  if (mr.proven) return mr.equivalent;
  return check_equivalence(input, mapped).equivalent;
}

bool case_fails_miter(const FuzzCase& c, const SynthesisConfig& cfg,
                      std::size_t node_budget) {
  const Network net = c.to_network();
  Network mapped;
  synth(net, cfg, 1, mapped);
  return !equivalent_to_input(net, mapped, node_budget);
}

bool case_fails_determinism(const FuzzCase& c, const SynthesisConfig& cfg) {
  const Network net = c.to_network();
  Network serial, parallel;
  synth(net, cfg, 1, serial);
  synth(net, cfg, 8, parallel);
  return !structurally_equal(serial, parallel);
}

void write_repro(const FuzzOptions& opts, FuzzFailure& fail) {
  if (opts.out_dir.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(opts.out_dir, ec);
  const std::string base =
      strprintf("%s/case%zu-%s-%s", opts.out_dir.c_str(), fail.case_index,
                fail.config_label.c_str(), fail.kind.c_str());
  if (!write_pla_file(base + ".pla", fail.shrunk)) return;
  std::ofstream txt(base + ".txt");
  txt << strprintf(
      "kind: %s\nconfig: %s\ncase: %zu\nseed: 0x%llx\n"
      "original: %u inputs, %zu outputs, %zu cubes\n"
      "shrunk: %u inputs, %zu outputs, %zu cubes\n",
      fail.kind.c_str(), fail.config_label.c_str(), fail.case_index,
      static_cast<unsigned long long>(fail.case_seed),
      fail.original.num_inputs, fail.original.num_outputs(),
      fail.original.total_cubes(), fail.shrunk.num_inputs,
      fail.shrunk.num_outputs(), fail.shrunk.total_cubes());
  fail.repro_path = base + ".pla";
}

}  // namespace

std::vector<FuzzConfig> default_fuzz_configs() {
  std::vector<FuzzConfig> configs;
  {
    FuzzConfig c;
    c.label = "k5";
    configs.push_back(c);
  }
  {
    FuzzConfig c;
    c.label = "k4-strict";
    c.cfg.k = 4;
    c.cfg.bound_size = 4;
    c.cfg.strict = true;
    configs.push_back(c);
  }
  {
    // max_p = 2 makes p_overflow routine: the DecomposeError recovery path
    // (Shannon fallback / smaller vectors) carries most of the work.
    FuzzConfig c;
    c.label = "p2-errors";
    c.cfg.max_p = 2;
    configs.push_back(c);
  }
  {
    FuzzConfig c;
    c.label = "single-nocollapse";
    c.cfg.multi_output = false;
    c.cfg.collapse = false;
    configs.push_back(c);
  }
  return configs;
}

FuzzReport run_fuzz(const FuzzOptions& opts) {
  FuzzReport rep;
  const std::vector<FuzzConfig> configs =
      opts.configs.empty() ? default_fuzz_configs() : opts.configs;

  // One serial and one 8-wide session per config: pools are created once
  // and amortized over every case (the whole point of the session API).
  // deque because sessions own their pool and are not movable.
  std::deque<SynthesisSession> serial_sessions, parallel_sessions;
  for (const FuzzConfig& fc : configs) {
    SynthesisConfig c = fc.cfg;
    c.verify = VerifyMode::off;
    c.threads = 1;
    serial_sessions.emplace_back(c);
    c.threads = 8;
    parallel_sessions.emplace_back(c);
  }

  Rng top(opts.seed);
  for (std::size_t i = 0; i < opts.cases; ++i) {
    const std::uint64_t case_seed = top.next();
    Rng case_rng(case_seed);
    FuzzCase c = random_case(case_rng, opts.gen);
    c.name = strprintf("fuzz%zu", i);
    const Network net = c.to_network();
    ++rep.cases;

    for (std::size_t ci = 0; ci < configs.size(); ++ci) {
      const FuzzConfig& fc = configs[ci];
      Network serial, parallel;
      const DriverReport r1 = serial_sessions[ci].run(net, serial);
      const DriverReport r8 = parallel_sessions[ci].run(net, parallel);
      rep.decompose_errors +=
          r1.flow.total_errors() + r8.flow.total_errors();

      std::string kind;
      if (!equivalent_to_input(net, serial, opts.miter_node_budget)) {
        kind = "miter";
      } else if (!structurally_equal(serial, parallel)) {
        kind = "determinism";
      }
      rep.checks += 2;
      if (kind.empty()) continue;

      FuzzFailure fail;
      fail.case_index = i;
      fail.case_seed = case_seed;
      fail.config_label = fc.label;
      fail.kind = kind;
      fail.original = c;
      fail.shrunk = c;
      if (opts.shrink) {
        const SynthesisConfig cfg = fc.cfg;
        const std::size_t budget = opts.miter_node_budget;
        const FailPredicate pred =
            kind == "miter"
                ? FailPredicate([cfg, budget](const FuzzCase& cand) {
                    return case_fails_miter(cand, cfg, budget);
                  })
                : FailPredicate([cfg](const FuzzCase& cand) {
                    return case_fails_determinism(cand, cfg);
                  });
        fail.shrunk = shrink_case(c, pred);
      }
      write_repro(opts, fail);
      rep.failures.push_back(std::move(fail));
      if (rep.failures.size() >= opts.max_failures) return rep;
    }
  }
  return rep;
}

std::string format_fuzz_report(const FuzzReport& rep) {
  std::string s =
      strprintf("fuzz: %zu cases, %zu checks, %zu DecomposeError fallbacks "
                "exercised, %zu failure(s)\n",
                rep.cases, rep.checks, rep.decompose_errors,
                rep.failures.size());
  for (const FuzzFailure& f : rep.failures) {
    s += strprintf(
        "  FAIL case %zu [%s/%s] seed=0x%llx: shrunk %u->%u inputs, "
        "%zu->%zu outputs, %zu->%zu cubes%s%s\n",
        f.case_index, f.config_label.c_str(), f.kind.c_str(),
        static_cast<unsigned long long>(f.case_seed), f.original.num_inputs,
        f.shrunk.num_inputs, f.original.num_outputs(), f.shrunk.num_outputs(),
        f.original.total_cubes(), f.shrunk.total_cubes(),
        f.repro_path.empty() ? "" : ", repro: ",
        f.repro_path.c_str());
  }
  return s;
}

}  // namespace imodec::verify
