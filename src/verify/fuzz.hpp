#pragma once
// Differential fuzzing of the whole synthesis pipeline.
//
// Each random case (verify/gen) is pushed through the full flow under a set
// of configurations and cross-checked three ways:
//   1. correctness — the mapped network is proved equivalent to the input
//      with the BDD miter (exhaustive simulation as a backstop);
//   2. determinism — the serial (threads=1) and parallel (threads=8) runs
//      must produce bit-identical LUT networks (DESIGN.md §9's contract);
//   3. error paths — configs chosen to trigger DecomposeError fallbacks
//      (tiny max_p, tiny k) must still yield equivalent networks.
// Any failure is shrunk (verify/shrink) to a locally minimal case and
// optionally written to disk as a .pla repro plus the failing config.

#include <cstdint>
#include <string>
#include <vector>

#include "map/config.hpp"
#include "verify/gen.hpp"

namespace imodec::verify {

/// One synthesis configuration the fuzzer cross-checks. `threads` inside the
/// config is ignored: the fuzzer always runs serial and 8-wide itself.
struct FuzzConfig {
  std::string label;
  SynthesisConfig cfg;
};

/// The default matrix: baseline k=5, a strict k=4 variant, a max_p=2 config
/// that forces p_overflow error paths, and the single-output flow.
std::vector<FuzzConfig> default_fuzz_configs();

struct FuzzOptions {
  std::uint64_t seed = 0xF0CC5ull;
  std::size_t cases = 100;
  GenOptions gen;
  /// Shrink failures before reporting.
  bool shrink = true;
  /// When non-empty, write each failure as <out_dir>/<case>-<label>.pla
  /// plus a .txt with the failing config (directory is created).
  std::string out_dir;
  /// Stop after this many failures.
  std::size_t max_failures = 8;
  /// Node budget of the correctness miter.
  std::size_t miter_node_budget = std::size_t{1} << 21;
  /// Configurations to cross-check; default_fuzz_configs() when empty.
  std::vector<FuzzConfig> configs;
};

struct FuzzFailure {
  std::size_t case_index = 0;
  std::uint64_t case_seed = 0;
  std::string config_label;
  /// "miter" (mapped != input) or "determinism" (serial != parallel).
  std::string kind;
  FuzzCase original;
  FuzzCase shrunk;  // == original when shrinking is off
  std::string repro_path;  // empty unless out_dir was set
};

struct FuzzReport {
  std::size_t cases = 0;
  std::size_t checks = 0;           // individual cross-checks executed
  std::size_t decompose_errors = 0; // DecomposeError fallbacks exercised
  std::vector<FuzzFailure> failures;
  bool ok() const { return failures.empty(); }
};

FuzzReport run_fuzz(const FuzzOptions& opts = {});

/// Human-readable summary (one line per failure + totals).
std::string format_fuzz_report(const FuzzReport& rep);

}  // namespace imodec::verify
