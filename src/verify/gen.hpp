#pragma once
// Seeded random multi-output function generator for the differential fuzzer.
//
// A FuzzCase is a cube-level description (one SOP cover per output) rather
// than a Network: the shrinker needs to drop outputs, delete cubes, and
// merge inputs, and those edits are natural on covers. Cases convert to a
// two-level Network (the shape logic/pla produces) and serialize as Espresso
// PLA text, so every shrunk repro on disk reloads through read_pla.

#include <string>
#include <vector>

#include "logic/cube.hpp"
#include "logic/network.hpp"
#include "util/rng.hpp"

namespace imodec::verify {

struct GenOptions {
  unsigned min_inputs = 3;
  unsigned max_inputs = 10;
  unsigned min_outputs = 1;
  unsigned max_outputs = 5;
  unsigned max_cubes_per_output = 10;
};

struct FuzzCase {
  std::string name = "fuzz";
  unsigned num_inputs = 0;
  std::vector<Cover> outputs;  // one cover per output, all over num_inputs

  std::size_t num_outputs() const { return outputs.size(); }
  std::size_t total_cubes() const;

  /// Two-level network: one node per output over all inputs (read_pla's
  /// shape, so PLA round trips compare structurally).
  Network to_network() const;
  /// Espresso PLA text (.i/.o/.p rows, F-type cover).
  std::string to_pla() const;
};

/// Draw a random case. Every structural choice comes from `rng`, so a seed
/// reproduces the case bit-identically.
FuzzCase random_case(Rng& rng, const GenOptions& opts = {});

/// Write `c.to_pla()` to `path`; false on I/O failure.
bool write_pla_file(const std::string& path, const FuzzCase& c);

}  // namespace imodec::verify
