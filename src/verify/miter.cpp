#include "verify/miter.hpp"

#include <algorithm>
#include <chrono>
#include <unordered_map>

#include "bdd/bdd.hpp"
#include "logic/net2bdd.hpp"
#include "obs/metrics.hpp"
#include "util/resource.hpp"

namespace imodec::verify {
namespace {

/// Static variable order: BDD variable of input position p is var_of_pos[p].
/// Computed by a depth-first walk of the reference network from its outputs
/// — inputs are numbered at first visit, which keeps the inputs of one cone
/// adjacent in the order (the classical fanin-interleaving heuristic).
/// Identity order makes wide shifter-like circuits (rot, 135 inputs)
/// exponential; DFS order keeps them linear.
std::vector<unsigned> dfs_variable_order(const Network& net) {
  std::vector<unsigned> pos_of_sig(net.node_count(), 0);
  for (std::size_t p = 0; p < net.inputs().size(); ++p)
    pos_of_sig[net.inputs()[p]] = static_cast<unsigned>(p);

  std::vector<unsigned> var_of_pos(net.inputs().size(),
                                   std::numeric_limits<unsigned>::max());
  unsigned next_var = 0;
  std::vector<bool> seen(net.node_count(), false);
  std::vector<SigId> stack;
  for (auto it = net.outputs().rbegin(); it != net.outputs().rend(); ++it)
    stack.push_back(*it);
  while (!stack.empty()) {
    const SigId s = stack.back();
    stack.pop_back();
    if (seen[s]) continue;
    seen[s] = true;
    const Network::Node& node = net.node(s);
    if (node.kind == Network::Kind::Input) {
      var_of_pos[pos_of_sig[s]] = next_var++;
      continue;
    }
    for (auto f = node.fanins.rbegin(); f != node.fanins.rend(); ++f)
      stack.push_back(*f);
  }
  // Inputs outside every output cone keep their relative order at the end.
  for (unsigned& v : var_of_pos)
    if (v == std::numeric_limits<unsigned>::max()) v = next_var++;
  return var_of_pos;
}

/// Build one BDD per output of `net` over PI variables keyed by input
/// position. Walks the output cones in topological order. The node budget is
/// enforced by the guard attached to `mgr` — inside make_node, i.e. at BDD
/// node granularity: a blow-up in the middle of one wide gate throws
/// util::ResourceExhausted (after a GC retry) instead of overshooting the
/// budget until the gate completes.
void build_outputs(bdd::Manager& mgr, const Network& net,
                   const std::vector<unsigned>& var_of_pos,
                   std::vector<bdd::Bdd>& out) {
  PiVarMap pi_var;
  for (std::size_t i = 0; i < net.inputs().size(); ++i)
    pi_var.emplace(net.inputs()[i], var_of_pos[i]);

  // Restrict the walk to nodes actually feeding an output.
  std::vector<bool> in_cone(net.node_count(), false);
  std::vector<SigId> stack(net.outputs().begin(), net.outputs().end());
  while (!stack.empty()) {
    const SigId s = stack.back();
    stack.pop_back();
    if (in_cone[s]) continue;
    in_cone[s] = true;
    for (SigId f : net.node(s).fanins) stack.push_back(f);
  }

  std::unordered_map<SigId, bdd::Bdd> cache;
  for (SigId s : net.topo_order()) {
    if (!in_cone[s]) continue;
    signal_bdd(mgr, net, s, pi_var, cache);
  }
  out.reserve(net.outputs().size());
  for (SigId o : net.outputs()) out.push_back(cache.at(o));
}

}  // namespace

MiterResult check_miter(const Network& a, const Network& b,
                        const MiterOptions& opts) {
  MiterResult res;
  if (a.num_inputs() != b.num_inputs() ||
      a.num_outputs() != b.num_outputs()) {
    res.proven = true;
    res.interface_mismatch = true;
    return res;  // equivalent stays false
  }

  // The miter's own guard: the caller's node_budget, plus (when an outer
  // guard is given) its remaining deadline and cancellation, mirrored so a
  // governed synthesis run's timeout also bounds the proof attempt. Declared
  // before the manager — the manager's destructor uncharges the guard.
  util::ResourceGuard guard;
  if (opts.node_budget != std::numeric_limits<std::size_t>::max())
    guard.set_node_budget(opts.node_budget);
  if (opts.guard) {
    if (opts.guard->should_stop()) return res;  // unproven: fall back to sim
    if (const auto ms = opts.guard->remaining_ms())
      guard.set_deadline_ms(std::max<std::uint64_t>(*ms, 1));
  }

  bdd::Manager mgr(static_cast<unsigned>(a.num_inputs()));
  mgr.set_resource_guard(&guard);
  // Order variables by a DFS over `a` (the reference network); `b` maps its
  // inputs by position, so both sides agree on the variables.
  const std::vector<unsigned> var_of_pos = dfs_variable_order(a);
  try {
    std::vector<bdd::Bdd> fa, fb;
    build_outputs(mgr, a, var_of_pos, fa);
    build_outputs(mgr, b, var_of_pos, fb);
    res.equivalent = true;
    res.proven = true;
    obs::Histogram* const proof_hist =
        obs::enabled()
            ? &obs::Registry::instance().histogram("miter.output_proof_us")
            : nullptr;
    for (std::size_t j = 0; j < fa.size(); ++j) {
      if (opts.guard && opts.guard->cancel_requested()) {
        res.proven = false;
        res.equivalent = false;
        break;
      }
      const auto t0 = proof_hist ? std::chrono::steady_clock::now()
                                 : std::chrono::steady_clock::time_point{};
      const bdd::Bdd miter = fa[j] ^ fb[j];
      if (proof_hist)
        proof_hist->record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - t0)
                .count()));
      if (!miter.is_zero()) {
        res.equivalent = false;
        res.failing_output = j;
        std::vector<bool> assignment;
        if (mgr.pick_minterm(miter.node(), assignment)) {
          // pick_minterm indexes by BDD variable; permute back to input
          // position so callers can feed the cube straight to eval().
          std::vector<bool> cex(a.num_inputs(), false);
          for (std::size_t p = 0; p < cex.size(); ++p)
            cex[p] = assignment[var_of_pos[p]];
          res.counterexample = std::move(cex);
        }
        break;
      }
    }
  } catch (const util::ResourceExhausted&) {
    // Budget / deadline trip mid-proof: report unproven (callers fall back
    // to simulation), never a crash or a partial verdict.
    res.proven = false;
    res.equivalent = false;
  }
  if (obs::enabled()) {
    // Collect the proof's garbage under the pause timer (so even small
    // miters land a real bdd.gc_pause_us sample) and publish this manager's
    // kernel stats under its own prefix, separable from the engine's.
    mgr.garbage_collect();
    mgr.publish_stats("miter.bdd");
  }
  res.peak_nodes = mgr.peak_node_count();
  return res;
}

}  // namespace imodec::verify
