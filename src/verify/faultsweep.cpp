#include "verify/faultsweep.hpp"

#include <algorithm>
#include <cstdio>

#include "circuits/registry.hpp"
#include "logic/network.hpp"
#include "logic/simulate.hpp"
#include "map/driver.hpp"
#include "util/fault.hpp"
#include "util/resource.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "verify/miter.hpp"

namespace imodec::verify {
namespace {

/// The three site classes and the fault kinds deliverable at each.
struct SiteClass {
  const char* label;
  util::fault::Kind count_kind;  // any kind that walks this class's counter
  std::vector<util::fault::Kind> inject;
};

const std::vector<SiteClass>& site_classes() {
  static const std::vector<SiteClass> classes = {
      {"checkpoint",
       util::fault::Kind::deadline,
       {util::fault::Kind::deadline, util::fault::Kind::cancel}},
      {"budget", util::fault::Kind::node_budget, {util::fault::Kind::node_budget}},
      {"alloc", util::fault::Kind::bad_alloc, {util::fault::Kind::bad_alloc}},
  };
  return classes;
}

const char* kind_name(util::fault::Kind k) {
  switch (k) {
    case util::fault::Kind::bad_alloc: return "bad_alloc";
    case util::fault::Kind::deadline: return "deadline";
    case util::fault::Kind::node_budget: return "node_budget";
    case util::fault::Kind::cancel: return "cancel";
    case util::fault::Kind::none: break;
  }
  return "none";
}

SynthesisConfig governed_config(const FaultSweepOptions& opts,
                                OnExhaustion policy) {
  SynthesisConfig cfg;
  cfg.threads = 1;
  cfg.verify = VerifyMode::off;  // the sweep runs its own miter
  cfg.node_budget = opts.node_budget;
  cfg.on_exhaustion = policy;
  return cfg;
}

/// Miter first, exhaustive/sampled simulation when the miter cannot decide.
bool equivalent_to_input(const Network& input, const Network& mapped) {
  MiterOptions mopts;
  mopts.node_budget = std::size_t{1} << 21;
  const MiterResult mr = check_miter(input, mapped, mopts);
  if (mr.proven) return mr.equivalent;
  return check_equivalence(input, mapped).equivalent;
}

std::uint64_t points_seen(const SiteClass& sc) {
  if (sc.count_kind == util::fault::Kind::node_budget)
    return util::fault::budget_points_seen();
  if (sc.count_kind == util::fault::Kind::bad_alloc)
    return util::fault::alloc_points_seen();
  return util::fault::checkpoint_points_seen();
}

/// Deterministic ordinal sample in [1, count]: always the first and last
/// site, plus distinct random interior points.
std::vector<std::uint64_t> sample_ordinals(Rng& rng, std::uint64_t count,
                                           std::size_t want) {
  std::vector<std::uint64_t> out;
  if (count == 0 || want == 0) return out;
  const auto add = [&](std::uint64_t v) {
    if (std::find(out.begin(), out.end(), v) == out.end()) out.push_back(v);
  };
  add(1);
  if (out.size() < want) add(count);
  while (out.size() < want && out.size() < count) add(rng.range(1, count));
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::vector<std::string> default_fault_corpus() {
  // The smaller half of the Table 2 registry: quick enough that ~250 full
  // governed synthesis runs finish inside a ctest budget, varied enough to
  // cover multi-output grouping, Shannon fallbacks and the collapse path.
  return {"rd53", "rd73",   "rd84",   "9sym", "z4ml", "5xp1",
          "f51m", "clip",   "misex1", "misex2", "sao2", "count"};
}

FaultSweepReport run_fault_sweep(const FaultSweepOptions& opts) {
  FaultSweepReport rep;
  if (!util::fault::enabled()) {
    rep.failures.push_back(
        "fault hooks not compiled in; configure with "
        "-DIMODEC_FAULT_INJECTION=ON");
    return rep;
  }

  const std::vector<std::string> corpus =
      opts.circuits.empty() ? default_fault_corpus() : opts.circuits;

  // Pass 1 — count. Arm an `at == 0` plan per site class and run each
  // circuit clean; the counters then say how many injection points that
  // circuit exposes per class. Trivial circuits (already k-feasible) expose
  // only a handful, so the sample allocation below has to be adaptive or a
  // small corpus member would silently shrink the sweep.
  struct Target {
    std::size_t circuit;  // index into corpus
    const SiteClass* sc;
    util::fault::Kind kind;
    std::uint64_t count;      // sites available
    std::size_t want = 0;     // ordinals to sample (<= count)
  };
  std::vector<Target> targets;

  for (std::size_t c = 0; c < corpus.size(); ++c) {
    const auto bench = circuits::make_benchmark(corpus[c]);
    if (!bench) {
      rep.failures.push_back("unknown corpus circuit '" + corpus[c] + "'");
      continue;
    }
    ++rep.circuits;
    for (const SiteClass& sc : site_classes()) {
      util::fault::arm({sc.count_kind, 0});
      std::uint64_t count = 0;
      try {
        Network mapped;
        run_synthesis(*bench, governed_config(opts, OnExhaustion::degrade),
                      mapped);
        count = points_seen(sc);
      } catch (const std::exception& e) {
        rep.failures.push_back(strprintf("%s: clean governed run threw: %s",
                                         corpus[c].c_str(), e.what()));
      }
      util::fault::disarm();
      rep.points_available += count;
      if (count == 0) continue;
      for (util::fault::Kind kind : sc.inject)
        targets.push_back({c, &sc, kind, count, 0});
    }
  }

  // Allocate samples round-robin until the sweep clears the floor (or every
  // site of every class is taken, for tiny corpora).
  std::size_t total = 0;
  bool grew = true;
  while (total < opts.min_points && grew) {
    grew = false;
    for (Target& t : targets) {
      if (total >= opts.min_points) break;
      if (t.want < t.count) {
        ++t.want;
        ++total;
        grew = true;
      }
    }
  }

  // Pass 2 — inject. Serial runs replay the count run's schedule exactly, so
  // a sampled ordinal within [1, count] is guaranteed to fire.
  Rng rng(opts.seed);
  std::size_t mode_flip = 0;  // alternates degrade / fail per armed run

  for (const Target& t : targets) {
    const std::string& name = corpus[t.circuit];
    const auto bench = circuits::make_benchmark(name);
    const Network& net = *bench;
    const util::fault::Kind kind = t.kind;
    for (std::uint64_t at : sample_ordinals(rng, t.count, t.want)) {
      const bool degrade = (mode_flip++ & 1) == 0;
      const SynthesisConfig cfg = governed_config(
          opts, degrade ? OnExhaustion::degrade : OnExhaustion::fail);
      util::fault::arm({kind, at});
      ++rep.injections;

      Network mapped;
      std::string outcome;
      bool have_network = false;
      try {
        run_synthesis(net, cfg, mapped);
        have_network = true;
        outcome = degrade ? "degraded" : "recovered";
      } catch (const util::ResourceExhausted& e) {
        // Timeout derives from ResourceExhausted; both are clean typed
        // errors — but only the fail policy may surface them.
        if (degrade) {
          rep.failures.push_back(strprintf(
              "%s: degrade-mode run leaked %s [%s@%llu]", name.c_str(),
              e.what(), kind_name(kind), static_cast<unsigned long long>(at)));
        } else {
          ++rep.typed_errors;
          outcome = "typed-error";
        }
      } catch (const std::exception& e) {
        rep.failures.push_back(strprintf(
            "%s: untyped exception '%s' [%s@%llu]", name.c_str(), e.what(),
            kind_name(kind), static_cast<unsigned long long>(at)));
      }
      const bool fired = util::fault::fired();
      util::fault::disarm();

      if (fired) {
        ++rep.fired;
      } else {
        rep.failures.push_back(strprintf(
            "%s: armed fault never fired [%s@%llu of %llu]", name.c_str(),
            kind_name(kind), static_cast<unsigned long long>(at),
            static_cast<unsigned long long>(t.count)));
      }
      if (have_network) {
        if (equivalent_to_input(net, mapped)) {
          ++(degrade ? rep.degraded_ok : rep.recovered);
        } else {
          rep.failures.push_back(strprintf(
              "%s: %s network fails the miter [%s@%llu]", name.c_str(),
              outcome.c_str(), kind_name(kind),
              static_cast<unsigned long long>(at)));
        }
      }
      if (opts.verbose) {
        std::printf("  %-7s %-11s @%-8llu %s\n", name.c_str(),
                    kind_name(kind), static_cast<unsigned long long>(at),
                    outcome.empty() ? "FAILED" : outcome.c_str());
      }
    }
  }

  // §12.3 determinism, once per circuit: a budget small enough to trip for
  // real must degrade to bit-identical networks at every execution width
  // (trips are per work unit).
  for (const std::string& name : corpus) {
    const auto bench = circuits::make_benchmark(name);
    if (!bench) continue;
    const Network& net = *bench;
    SynthesisConfig cfg = governed_config(opts, OnExhaustion::degrade);
    cfg.node_budget = opts.determinism_budget;
    Network serial, parallel;
    try {
      run_synthesis(net, cfg, serial);
      cfg.threads = 8;
      run_synthesis(net, cfg, parallel);
      ++rep.determinism_checks;
      if (!structurally_equal(serial, parallel)) {
        rep.failures.push_back(
            name + ": budget-governed serial and 8-thread networks differ");
      } else if (!equivalent_to_input(net, serial)) {
        rep.failures.push_back(name +
                               ": budget-degraded network fails the miter");
      }
    } catch (const std::exception& e) {
      rep.failures.push_back(strprintf(
          "%s: budget-governed degrade run threw: %s", name.c_str(),
          e.what()));
    }
  }
  return rep;
}

std::string format_fault_sweep_report(const FaultSweepReport& rep) {
  std::string s = strprintf(
      "faults: %zu circuits, %zu sites counted, %zu injections (%zu fired): "
      "%zu degraded-ok, %zu typed errors, %zu recovered; %zu determinism "
      "checks; %zu failure(s)\n",
      rep.circuits, rep.points_available, rep.injections, rep.fired,
      rep.degraded_ok, rep.typed_errors, rep.recovered,
      rep.determinism_checks, rep.failures.size());
  for (const std::string& f : rep.failures) s += "  FAIL " + f + "\n";
  return s;
}

}  // namespace imodec::verify
