#pragma once
// Deterministic fault-injection sweep over the benchmark corpus
// (DESIGN.md §12.4; the robustness counterpart of verify/fuzz).
//
// For every corpus circuit the sweep first runs a count-only plan per fault
// class (util/fault.hpp, `at == 0`) to measure how many injection points a
// governed synthesis of that circuit exposes, then deterministically samples
// ordinals within each class and replays the run with the fault armed at
// that exact site. Every armed run must end in one of exactly two states:
//   - a complete network that the BDD miter proves equivalent to the input
//     (degrade mode, or a fail-mode run whose GC-retry ladder recovered), or
//   - a clean typed error (util::Timeout / util::ResourceExhausted) with no
//     partial netlist — fail mode only.
// Anything else — a crash, an unexpected exception type, a network that
// fails the miter, or an armed fault that never fired — is a sweep failure.
//
// The sweep also asserts the §12.3 determinism contract once per circuit: a
// budget-governed degrade run must produce bit-identical networks serially
// and 8-wide (budget trips are per work unit, so the degradation ladder is
// schedule-independent).
//
// Requires an IMODEC_FAULT_INJECTION build; otherwise run_fault_sweep
// reports a single configuration failure. ctest registers this as the
// `faults` label (ASan build dir) via tools/imodec_fuzz --faults.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace imodec::verify {

struct FaultSweepOptions {
  std::uint64_t seed = 0xFA0175ull;
  /// Registry circuits forming the corpus; default_fault_corpus() when empty.
  std::vector<std::string> circuits;
  /// Minimum armed injection runs across the whole sweep. Ordinals are
  /// sampled per (circuit, class) until the total reaches this floor.
  std::size_t min_points = 200;
  /// Node budget of the governed runs. Generous: natural trips would blur
  /// the injected schedule; the armed fault forces exactly one trip.
  std::size_t node_budget = std::size_t{1} << 20;
  /// Node budget used for the determinism cross-check; small enough that
  /// real budget trips (and the degradation ladder) are exercised.
  std::size_t determinism_budget = 3000;
  /// Print one line per armed run (tools/imodec_fuzz -v).
  bool verbose = false;
};

/// The default corpus: the smaller half of the Table 2 registry, >= 10
/// circuits covering exact and synthetic kinds.
std::vector<std::string> default_fault_corpus();

struct FaultSweepReport {
  std::size_t circuits = 0;
  /// Injection sites counted over the corpus (sum over classes).
  std::size_t points_available = 0;
  /// Armed runs executed / whose fault actually fired.
  std::size_t injections = 0;
  std::size_t fired = 0;
  /// Degrade-mode runs that returned a complete miter-proven network.
  std::size_t degraded_ok = 0;
  /// Fail-mode runs that ended in a clean typed error.
  std::size_t typed_errors = 0;
  /// Fail-mode runs whose GC-retry ladder absorbed the fault entirely.
  std::size_t recovered = 0;
  std::size_t determinism_checks = 0;
  std::vector<std::string> failures;
  bool ok() const { return failures.empty(); }
};

FaultSweepReport run_fault_sweep(const FaultSweepOptions& opts = {});

/// Human-readable summary (totals + one line per failure).
std::string format_fault_sweep_report(const FaultSweepReport& rep);

}  // namespace imodec::verify
