#include "verify/shrink.hpp"

namespace imodec::verify {
namespace {

/// Delete bit `v` from a literal word, shifting higher bits down.
std::uint32_t squeeze_bit(std::uint32_t word, unsigned v) {
  const std::uint32_t low = word & ((1u << v) - 1);
  const std::uint32_t high = (word >> (v + 1)) << v;
  return low | high;
}

FuzzCase drop_output(const FuzzCase& c, std::size_t j) {
  FuzzCase r = c;
  r.outputs.erase(r.outputs.begin() + static_cast<std::ptrdiff_t>(j));
  return r;
}

FuzzCase delete_cube(const FuzzCase& c, std::size_t j, std::size_t t) {
  FuzzCase r = c;
  Cover cov(c.num_inputs);
  for (std::size_t i = 0; i < c.outputs[j].size(); ++i)
    if (i != t) cov.add(c.outputs[j].cubes()[i]);
  r.outputs[j] = std::move(cov);
  return r;
}

/// Substitute x_gone := x_keep in every cube, then remove input `gone`.
/// Cubes requiring opposite phases of the merged pair become unsatisfiable
/// and are deleted.
FuzzCase merge_inputs(const FuzzCase& c, unsigned keep, unsigned gone) {
  FuzzCase r;
  r.name = c.name;
  r.num_inputs = c.num_inputs - 1;
  for (const Cover& cov : c.outputs) {
    Cover out(r.num_inputs);
    for (Cube q : cov.cubes()) {
      if ((q.mask >> gone) & 1) {
        const bool phase = (q.value >> gone) & 1;
        if (((q.mask >> keep) & 1) && (((q.value >> keep) & 1) != phase))
          continue;  // x_keep and ~x_keep: empty cube
        q.mask |= 1u << keep;
        if (phase)
          q.value |= 1u << keep;
        else
          q.value &= ~(1u << keep);
      }
      q.mask = squeeze_bit(q.mask, gone);
      q.value = squeeze_bit(q.value, gone);
      out.add(q);
    }
    r.outputs.push_back(std::move(out));
  }
  return r;
}

/// Remove input `v`; pre: no cube mentions it.
FuzzCase drop_input(const FuzzCase& c, unsigned v) {
  FuzzCase r;
  r.name = c.name;
  r.num_inputs = c.num_inputs - 1;
  for (const Cover& cov : c.outputs) {
    Cover out(r.num_inputs);
    for (Cube q : cov.cubes()) {
      q.mask = squeeze_bit(q.mask, v);
      q.value = squeeze_bit(q.value, v);
      out.add(q);
    }
    r.outputs.push_back(std::move(out));
  }
  return r;
}

bool input_used(const FuzzCase& c, unsigned v) {
  for (const Cover& cov : c.outputs)
    for (const Cube& q : cov.cubes())
      if ((q.mask >> v) & 1) return true;
  return false;
}

}  // namespace

FuzzCase shrink_case(const FuzzCase& failing, const FailPredicate& fails,
                     ShrinkStats* stats) {
  ShrinkStats local;
  ShrinkStats& st = stats ? *stats : local;
  FuzzCase cur = failing;

  const auto accept = [&](FuzzCase cand) {
    ++st.predicate_calls;
    if (!fails(cand)) return false;
    cur = std::move(cand);
    return true;
  };

  bool progress = true;
  while (progress) {
    progress = false;
    ++st.rounds;

    // 1. Drop whole outputs (largest wins first, so back-to-front).
    for (std::size_t j = cur.outputs.size(); j-- > 0;) {
      if (cur.outputs.size() <= 1) break;
      if (accept(drop_output(cur, j))) {
        ++st.outputs_dropped;
        progress = true;
      }
    }

    // 2. Delete individual cubes.
    for (std::size_t j = 0; j < cur.outputs.size(); ++j) {
      for (std::size_t t = cur.outputs[j].size(); t-- > 0;) {
        if (accept(delete_cube(cur, j, t))) {
          ++st.cubes_deleted;
          progress = true;
        }
      }
    }

    // 3. Merge input pairs: try to identify the highest input with any
    // lower one (first success wins; the pass reruns until fixpoint).
    for (unsigned gone = cur.num_inputs; gone-- > 1;) {
      if (cur.num_inputs <= 1) break;
      for (unsigned keep = 0; keep < gone; ++keep) {
        if (accept(merge_inputs(cur, keep, gone))) {
          ++st.inputs_merged;
          progress = true;
          break;
        }
      }
    }

    // 4. Drop inputs no remaining cube mentions (semantics preserved, but
    // still re-checked through the predicate).
    for (unsigned v = cur.num_inputs; v-- > 0;) {
      if (cur.num_inputs <= 1) break;
      if (!input_used(cur, v) && accept(drop_input(cur, v))) {
        ++st.inputs_dropped;
        progress = true;
      }
    }
  }
  return cur;
}

}  // namespace imodec::verify
