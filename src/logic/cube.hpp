#pragma once
// Cubes and sum-of-products covers, including an irredundant SOP (Minato-
// Morreale ISOP) extractor from truth tables.
//
// Covers are used by the PLA reader, the BLIF writer, and everywhere the
// examples print decomposition functions the way the paper does (e.g.
// d1(x) = ~x1 x3 + x2 ~x3 + x1 ~x2).

#include <cstdint>
#include <string>
#include <vector>

#include "logic/truthtable.hpp"

namespace imodec {

/// One product term over `num_vars` variables. Variable v is in the cube iff
/// bit v of `mask` is set; its phase is bit v of `value` (1 = positive).
struct Cube {
  std::uint32_t mask = 0;
  std::uint32_t value = 0;

  bool operator==(const Cube&) const = default;

  /// True iff the cube contains the given minterm.
  bool contains(std::uint64_t minterm) const {
    return ((minterm ^ value) & mask) == 0;
  }
  unsigned num_literals() const;

  /// PLA-style text, e.g. "1-0" (variable 0 first).
  std::string to_pla(unsigned num_vars) const;
  /// Algebraic text with variable names, e.g. "x1 ~x3".
  std::string to_algebraic(const std::vector<std::string>& names) const;
};

/// A SOP cover: disjunction of cubes over a fixed variable count.
class Cover {
 public:
  Cover() = default;
  explicit Cover(unsigned num_vars) : num_vars_(num_vars) {}

  unsigned num_vars() const { return num_vars_; }
  const std::vector<Cube>& cubes() const { return cubes_; }
  bool empty() const { return cubes_.empty(); }
  std::size_t size() const { return cubes_.size(); }
  void add(Cube c) { cubes_.push_back(c); }

  unsigned num_literals() const;

  TruthTable to_truthtable() const;

  /// Algebraic text, e.g. "~x1 x3 + x2 ~x3"; "0"/"1" for constants.
  std::string to_algebraic(const std::vector<std::string>& names) const;

 private:
  unsigned num_vars_ = 0;
  std::vector<Cube> cubes_;
};

/// Irredundant sum-of-products of `f` (Minato-Morreale over the completely-
/// specified function: onset == careset == f). num_vars <= 32.
Cover isop(const TruthTable& f);

/// Default variable names x0..x{n-1}.
std::vector<std::string> default_var_names(unsigned n,
                                           const std::string& prefix = "x");

}  // namespace imodec
