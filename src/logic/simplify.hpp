#pragma once
// Network cleanup: constant propagation, vacuous-fanin removal, identity
// collapsing, and structural deduplication.
//
// Used by the restructuring pass and the CLI before mapping; decomposition
// benefits because node supports match true supports.

#include "logic/network.hpp"

namespace imodec {

struct SimplifyStats {
  std::size_t constants_folded = 0;   // fanins replaced by constants
  std::size_t fanins_dropped = 0;     // vacuous (non-support) fanins removed
  std::size_t nodes_deduped = 0;      // structurally identical nodes merged
  std::size_t identities_bypassed = 0;  // single-input identity nodes

  std::size_t total() const {
    return constants_folded + fanins_dropped + nodes_deduped +
           identities_bypassed;
  }
};

/// Simplify in place (node ids stay valid; replaced nodes become dangling
/// and are reclaimed by sweep()). Runs to a fixpoint. Returns what happened.
SimplifyStats simplify(Network& net);

}  // namespace imodec
