#include "logic/pla.hpp"

#include <fstream>

#include "logic/cube.hpp"
#include "util/strings.hpp"

namespace imodec {

Network read_pla(std::istream& is, const std::string& model_name) {
  unsigned ni = 0, no = 0;
  std::vector<std::string> in_names, out_names;
  std::vector<std::pair<std::string, std::string>> rows;

  std::string line;
  while (std::getline(is, line)) {
    if (auto pos = line.find('#'); pos != std::string::npos)
      line = line.substr(0, pos);
    const auto tokens = split(line);
    if (tokens.empty()) continue;
    if (tokens[0] == ".i") {
      ni = static_cast<unsigned>(std::stoul(tokens.at(1)));
    } else if (tokens[0] == ".o") {
      no = static_cast<unsigned>(std::stoul(tokens.at(1)));
    } else if (tokens[0] == ".ilb") {
      in_names.assign(tokens.begin() + 1, tokens.end());
    } else if (tokens[0] == ".ob") {
      out_names.assign(tokens.begin() + 1, tokens.end());
    } else if (tokens[0] == ".p" || tokens[0] == ".type") {
      // row count / type hints ignored (F covers assumed)
    } else if (tokens[0] == ".e" || tokens[0] == ".end") {
      break;
    } else if (tokens[0][0] == '.') {
      throw PlaError("unsupported PLA directive " + tokens[0]);
    } else {
      if (tokens.size() == 2) {
        rows.emplace_back(tokens[0], tokens[1]);
      } else if (tokens.size() == 1 && ni == 0) {
        rows.emplace_back("", tokens[0]);
      } else {
        throw PlaError("bad PLA row: " + line);
      }
    }
  }
  if (ni == 0 || no == 0) throw PlaError("missing .i/.o");
  if (ni > TruthTable::kMaxVars) throw PlaError("too many PLA inputs");
  if (in_names.empty()) in_names = default_var_names(ni, "in");
  if (out_names.empty()) out_names = default_var_names(no, "out");
  if (in_names.size() != ni || out_names.size() != no)
    throw PlaError(".ilb/.ob arity mismatch");

  std::vector<Cover> covers(no, Cover(ni));
  for (const auto& [in_part, out_part] : rows) {
    if (in_part.size() != ni || out_part.size() != no)
      throw PlaError("row width mismatch");
    Cube c;
    for (unsigned v = 0; v < ni; ++v) {
      if (in_part[v] == '1') {
        c.mask |= 1u << v;
        c.value |= 1u << v;
      } else if (in_part[v] == '0') {
        c.mask |= 1u << v;
      } else if (in_part[v] != '-' && in_part[v] != '2') {
        throw PlaError("bad input character in PLA row");
      }
    }
    for (unsigned k = 0; k < no; ++k) {
      if (out_part[k] == '1') {
        covers[k].add(c);
      } else if (out_part[k] != '0' && out_part[k] != '~') {
        throw PlaError("unsupported output character in PLA row");
      }
    }
  }

  Network net(model_name);
  std::vector<SigId> pis;
  pis.reserve(ni);
  for (unsigned v = 0; v < ni; ++v) pis.push_back(net.add_input(in_names[v]));
  for (unsigned k = 0; k < no; ++k) {
    const SigId node =
        net.add_node(pis, covers[k].to_truthtable(), out_names[k]);
    net.add_output(node, out_names[k]);
  }
  return net;
}

Network read_pla_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw PlaError("cannot open " + path);
  std::string base = path;
  if (auto pos = base.find_last_of('/'); pos != std::string::npos)
    base = base.substr(pos + 1);
  if (auto pos = base.find_last_of('.'); pos != std::string::npos)
    base = base.substr(0, pos);
  return read_pla(f, base);
}

}  // namespace imodec
