#include "logic/pla.hpp"

#include <fstream>

#include "logic/cube.hpp"
#include "util/strings.hpp"

namespace imodec {

namespace {

/// Parse a directive's count argument with a readable failure instead of an
/// unchecked token access / bare std::stoul (std::out_of_range on ".i" with
/// no argument, std::invalid_argument on ".i x" — neither of which tells the
/// user what is wrong where).
unsigned parse_count(const std::vector<std::string>& tokens, const char* dir,
                     std::size_t lineno) {
  if (tokens.size() < 2)
    throw PlaError("PLA line " + std::to_string(lineno) + ": " + dir +
                       " needs a count argument",
                   lineno);
  const std::string& t = tokens[1];
  unsigned long value = 0;
  try {
    std::size_t used = 0;
    value = std::stoul(t, &used);
    if (used != t.size()) throw std::invalid_argument(t);
  } catch (const std::exception&) {
    throw PlaError("PLA line " + std::to_string(lineno) + ": bad " +
                       std::string(dir) + " count '" + t + "'",
                   lineno);
  }
  if (value == 0 || value > 1u << 20)
    throw PlaError("PLA line " + std::to_string(lineno) + ": " + dir +
                       " count out of range: " + t,
                   lineno);
  return static_cast<unsigned>(value);
}

struct PlaRow {
  std::string in, out;
  std::size_t lineno;
};

}  // namespace

Network read_pla(std::istream& is, const std::string& model_name) {
  unsigned ni = 0, no = 0;
  std::vector<std::string> in_names, out_names;
  std::vector<PlaRow> rows;

  std::size_t lineno = 0;
  const auto fail = [&](const std::string& msg) -> PlaError {
    return PlaError("PLA line " + std::to_string(lineno) + ": " + msg, lineno);
  };

  std::string line;
  while (std::getline(is, line)) {
    ++lineno;
    if (auto pos = line.find('#'); pos != std::string::npos)
      line = line.substr(0, pos);
    const auto tokens = split(line);
    if (tokens.empty()) continue;
    if (tokens[0] == ".i") {
      ni = parse_count(tokens, ".i", lineno);
    } else if (tokens[0] == ".o") {
      no = parse_count(tokens, ".o", lineno);
    } else if (tokens[0] == ".ilb") {
      in_names.assign(tokens.begin() + 1, tokens.end());
    } else if (tokens[0] == ".ob") {
      out_names.assign(tokens.begin() + 1, tokens.end());
    } else if (tokens[0] == ".p" || tokens[0] == ".type") {
      // row count / type hints ignored (F covers assumed)
    } else if (tokens[0] == ".e" || tokens[0] == ".end") {
      break;
    } else if (tokens[0][0] == '.') {
      throw fail("unsupported PLA directive " + tokens[0]);
    } else {
      if (tokens.size() == 2) {
        rows.push_back({tokens[0], tokens[1], lineno});
      } else if (tokens.size() == 1 && ni == 0) {
        rows.push_back({"", tokens[0], lineno});
      } else {
        throw fail("bad PLA row: " + line);
      }
    }
  }
  if (ni == 0 || no == 0) throw PlaError("PLA: missing .i/.o");
  if (ni > TruthTable::kMaxVars)
    throw PlaError("PLA: too many inputs (" + std::to_string(ni) + " > " +
                   std::to_string(TruthTable::kMaxVars) + ")");
  if (in_names.empty()) in_names = default_var_names(ni, "in");
  if (out_names.empty()) out_names = default_var_names(no, "out");
  if (in_names.size() != ni || out_names.size() != no)
    throw PlaError("PLA: .ilb/.ob arity mismatch");

  std::vector<Cover> covers(no, Cover(ni));
  for (const auto& [in_part, out_part, row_line] : rows) {
    lineno = row_line;  // re-point the fail() helper at this row
    if (in_part.size() != ni || out_part.size() != no)
      throw fail("row width mismatch (expected " + std::to_string(ni) + "+" +
                 std::to_string(no) + " columns)");
    Cube c;
    for (unsigned v = 0; v < ni; ++v) {
      if (in_part[v] == '1') {
        c.mask |= 1u << v;
        c.value |= 1u << v;
      } else if (in_part[v] == '0') {
        c.mask |= 1u << v;
      } else if (in_part[v] != '-' && in_part[v] != '2') {
        throw fail(std::string("bad input character '") + in_part[v] +
                   "' in PLA row");
      }
    }
    for (unsigned k = 0; k < no; ++k) {
      if (out_part[k] == '1') {
        covers[k].add(c);
      } else if (out_part[k] != '0' && out_part[k] != '~') {
        throw fail(std::string("unsupported output character '") +
                   out_part[k] + "' in PLA row");
      }
    }
  }

  Network net(model_name);
  std::vector<SigId> pis;
  pis.reserve(ni);
  for (unsigned v = 0; v < ni; ++v) pis.push_back(net.add_input(in_names[v]));
  for (unsigned k = 0; k < no; ++k) {
    const SigId node =
        net.add_node(pis, covers[k].to_truthtable(), out_names[k]);
    net.add_output(node, out_names[k]);
  }
  return net;
}

Network read_pla_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw PlaError("cannot open " + path);
  std::string base = path;
  if (auto pos = base.find_last_of('/'); pos != std::string::npos)
    base = base.substr(pos + 1);
  if (auto pos = base.find_last_of('.'); pos != std::string::npos)
    base = base.substr(0, pos);
  return read_pla(f, base);
}

}  // namespace imodec
