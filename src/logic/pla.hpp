#pragma once
// Espresso-style PLA reader (.i/.o/.p/.ilb/.ob, F-type covers).
//
// Two-level MCNC benchmarks ship as PLA; we parse them into a two-level
// Network (one node per output). Only completely-specified covers are
// accepted ('~'/'2' don't-care outputs rejected), matching the paper's scope.

#include <iosfwd>
#include <string>

#include "logic/network.hpp"
#include "logic/parse_error.hpp"

namespace imodec {

/// Malformed PLA input; what() includes the 1-based source line when the
/// error is attributable to one (see ParseError::line()).
struct PlaError : ParseError {
  using ParseError::ParseError;
};

Network read_pla(std::istream& is, const std::string& model_name = "pla");
Network read_pla_file(const std::string& path);

}  // namespace imodec
