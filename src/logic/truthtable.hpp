#pragma once
// Truth tables: completely-specified single-output Boolean functions over a
// fixed number of variables, stored as 2^n packed bits.
//
// Truth tables are the carrier representation for node functions in the
// logic network and for the explicit (non-implicit) reference algorithms that
// the tests cross-check the implicit engine against. n is capped at
// kMaxVars = 22 (4 Mbit) — beyond that the BDD path takes over.

#include <cstdint>
#include <string>
#include <vector>

#include "util/bitvec.hpp"

namespace imodec {

class TruthTable {
 public:
  static constexpr unsigned kMaxVars = 22;

  TruthTable() = default;
  /// Constant-`value` function of `num_vars` variables.
  explicit TruthTable(unsigned num_vars, bool value = false);

  /// Projection function of variable v.
  static TruthTable var(unsigned num_vars, unsigned v);
  /// Parse "0110..."-style bit string, bit i = f(i), LSB of i = variable 0.
  /// Length must be a power of two.
  static TruthTable from_string(const std::string& bits);

  unsigned num_vars() const { return num_vars_; }
  std::uint64_t num_rows() const { return std::uint64_t{1} << num_vars_; }

  bool get(std::uint64_t row) const { return bits_.get(row); }
  void set(std::uint64_t row, bool v) { bits_.set(row, v); }

  /// f(assignment): bit i of `input` is the value of variable i.
  bool eval(std::uint64_t input) const { return bits_.get(input); }

  std::uint64_t count_ones() const { return bits_.count(); }
  bool is_constant() const { return bits_.none() || bits_.all(); }
  bool is_zero() const { return bits_.none(); }

  TruthTable& operator&=(const TruthTable& o);
  TruthTable& operator|=(const TruthTable& o);
  TruthTable& operator^=(const TruthTable& o);
  friend TruthTable operator&(TruthTable a, const TruthTable& b) {
    return a &= b;
  }
  friend TruthTable operator|(TruthTable a, const TruthTable& b) {
    return a |= b;
  }
  friend TruthTable operator^(TruthTable a, const TruthTable& b) {
    return a ^= b;
  }
  TruthTable operator~() const;

  bool operator==(const TruthTable& o) const = default;

  /// Shannon cofactor with variable v fixed (result keeps num_vars variables;
  /// v becomes a don't-care input).
  TruthTable cofactor(unsigned v, bool value) const;
  /// True iff f does not depend on variable v.
  bool is_dont_care(unsigned v) const;
  /// Variables the function actually depends on.
  std::vector<unsigned> support() const;

  /// Re-express over a new variable set: new variable `i` is old variable
  /// `perm[i]`. perm.size() becomes the new num_vars; every old support
  /// variable must appear in perm.
  TruthTable permute(const std::vector<unsigned>& perm) const;

  std::size_t hash() const { return bits_.hash(); }
  /// Bit string, row 0 first.
  std::string to_string() const { return bits_.to_string(); }

  const BitVec& bits() const { return bits_; }
  BitVec& bits() { return bits_; }

 private:
  unsigned num_vars_ = 0;
  BitVec bits_;
};

struct TruthTableHash {
  std::size_t operator()(const TruthTable& t) const { return t.hash(); }
};

}  // namespace imodec
