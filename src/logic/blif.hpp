#pragma once
// BLIF reader/writer (combinational subset: .model/.inputs/.outputs/.names).
//
// Covers the format used by the MCNC benchmark distribution the paper
// evaluates on; latches and subcircuits are rejected with an error since the
// paper treats combinational logic only.

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "logic/network.hpp"

namespace imodec {

struct BlifError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Parse a BLIF stream. Throws BlifError on malformed input.
Network read_blif(std::istream& is);
Network read_blif_file(const std::string& path);

/// Emit `net` as BLIF; node covers are written as ISOPs of the node tables.
void write_blif(std::ostream& os, const Network& net);
void write_blif_file(const std::string& path, const Network& net);

}  // namespace imodec
