#pragma once
// BLIF reader/writer (combinational subset: .model/.inputs/.outputs/.names).
//
// Covers the format used by the MCNC benchmark distribution the paper
// evaluates on; latches and subcircuits are rejected with an error since the
// paper treats combinational logic only.

#include <iosfwd>
#include <string>

#include "logic/network.hpp"
#include "logic/parse_error.hpp"

namespace imodec {

/// Malformed BLIF input; what() includes the 1-based source line when the
/// error is attributable to one (see ParseError::line()).
struct BlifError : ParseError {
  using ParseError::ParseError;
};

/// Parse a BLIF stream. Throws BlifError on malformed input.
Network read_blif(std::istream& is);
Network read_blif_file(const std::string& path);

/// Emit `net` as BLIF; node covers are written as ISOPs of the node tables.
void write_blif(std::ostream& os, const Network& net);
void write_blif_file(const std::string& path, const Network& net);

}  // namespace imodec
