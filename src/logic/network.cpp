#include "logic/network.hpp"

#include <algorithm>
#include <cassert>

namespace imodec {

SigId Network::add_input(const std::string& name) {
  const SigId id = static_cast<SigId>(nodes_.size());
  nodes_.push_back(Node{Kind::Input, name, {}, TruthTable{}});
  inputs_.push_back(id);
  if (!name.empty()) by_name_[name] = id;
  return id;
}

SigId Network::add_constant(bool value) {
  const SigId id = static_cast<SigId>(nodes_.size());
  nodes_.push_back(Node{Kind::Constant, "", {}, TruthTable(0, value)});
  return id;
}

SigId Network::add_node(const std::vector<SigId>& fanins, TruthTable func,
                        const std::string& name) {
  assert(func.num_vars() == fanins.size());
#ifndef NDEBUG
  for (SigId f : fanins) assert(f < nodes_.size());
#endif
  const SigId id = static_cast<SigId>(nodes_.size());
  nodes_.push_back(Node{Kind::Logic, name, fanins, std::move(func)});
  if (!name.empty()) by_name_[name] = id;
  return id;
}

void Network::add_output(SigId sig, const std::string& name) {
  assert(sig < nodes_.size());
  outputs_.push_back(sig);
  output_names_.push_back(name);
}

SigId Network::find(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? kInvalidSig : it->second;
}

std::vector<SigId> Network::topo_order() const {
  // Nodes are created fanin-first, but rewriting transforms (decomposition
  // replaces a node's function with a g over freshly added d-nodes) can make
  // a node depend on higher ids, so a real DFS post-order is required.
  std::vector<SigId> order;
  order.reserve(nodes_.size());
  std::vector<std::uint8_t> state(nodes_.size(), 0);  // 0 new, 1 open, 2 done
  std::vector<SigId> stack;
  for (SigId root = 0; root < nodes_.size(); ++root) {
    if (state[root] == 2) continue;
    stack.push_back(root);
    while (!stack.empty()) {
      const SigId s = stack.back();
      if (state[s] == 0) {
        state[s] = 1;
        for (SigId f : nodes_[s].fanins) {
          assert(state[f] != 1 && "combinational cycle");
          if (state[f] == 0) stack.push_back(f);
        }
      } else {
        stack.pop_back();
        if (state[s] != 2) {
          state[s] = 2;
          order.push_back(s);
        }
      }
    }
  }
  return order;
}

std::size_t Network::logic_count() const {
  std::size_t n = 0;
  for (const Node& node : nodes_)
    if (node.kind == Kind::Logic) ++n;
  return n;
}

unsigned Network::depth() const {
  std::vector<unsigned> level(nodes_.size(), 0);
  unsigned d = 0;
  for (SigId i : topo_order()) {
    const Node& n = nodes_[i];
    if (n.kind != Kind::Logic) continue;
    unsigned l = 0;
    for (SigId f : n.fanins) l = std::max(l, level[f]);
    level[i] = l + 1;
    d = std::max(d, level[i]);
  }
  return d;
}

unsigned Network::max_fanin() const {
  unsigned m = 0;
  for (const Node& n : nodes_)
    if (n.kind == Kind::Logic)
      m = std::max(m, static_cast<unsigned>(n.fanins.size()));
  return m;
}

std::vector<bool> Network::eval(const std::vector<bool>& input_values) const {
  return eval_ordered(input_values, topo_order());
}

std::vector<bool> Network::eval_ordered(const std::vector<bool>& input_values,
                                        const std::vector<SigId>& order) const {
  assert(input_values.size() == inputs_.size());
  std::vector<bool> value(nodes_.size(), false);
  for (std::size_t i = 0; i < inputs_.size(); ++i)
    value[inputs_[i]] = input_values[i];
  for (SigId i : order) {
    const Node& n = nodes_[i];
    if (n.kind == Kind::Constant) {
      value[i] = n.func.eval(0);
    } else if (n.kind == Kind::Logic) {
      std::uint64_t row = 0;
      for (std::size_t k = 0; k < n.fanins.size(); ++k)
        if (value[n.fanins[k]]) row |= std::uint64_t{1} << k;
      value[i] = n.func.eval(row);
    }
  }
  std::vector<bool> out(outputs_.size());
  for (std::size_t k = 0; k < outputs_.size(); ++k) out[k] = value[outputs_[k]];
  return out;
}

std::vector<SigId> Network::cone_inputs(SigId sig) const {
  std::vector<bool> visited(nodes_.size(), false);
  std::vector<bool> is_cone_input(nodes_.size(), false);
  std::vector<SigId> stack{sig};
  while (!stack.empty()) {
    const SigId s = stack.back();
    stack.pop_back();
    if (visited[s]) continue;
    visited[s] = true;
    const Node& n = nodes_[s];
    if (n.kind == Kind::Input) {
      is_cone_input[s] = true;
    } else {
      for (SigId f : n.fanins) stack.push_back(f);
    }
  }
  std::vector<SigId> result;
  for (SigId pi : inputs_)
    if (is_cone_input[pi]) result.push_back(pi);
  return result;
}

std::optional<TruthTable> Network::cone_function(
    SigId sig, const std::vector<SigId>& input_list) const {
  if (input_list.size() > TruthTable::kMaxVars) return std::nullopt;
  const unsigned n = static_cast<unsigned>(input_list.size());
  std::unordered_map<SigId, unsigned> input_pos;
  for (unsigned i = 0; i < n; ++i) input_pos[input_list[i]] = i;

  // Compute global truth tables bottom-up for the cone of `sig`.
  std::unordered_map<SigId, TruthTable> table;
  // Collect cone membership, then walk it in topological order.
  std::vector<bool> in_cone(nodes_.size(), false);
  std::vector<SigId> stack{sig};
  while (!stack.empty()) {
    const SigId s = stack.back();
    stack.pop_back();
    if (in_cone[s]) continue;
    in_cone[s] = true;
    for (SigId f : nodes_[s].fanins) stack.push_back(f);
  }
  for (SigId s : topo_order()) {
    if (!in_cone[s]) continue;
    const Node& node = nodes_[s];
    switch (node.kind) {
      case Kind::Input: {
        auto it = input_pos.find(s);
        if (it == input_pos.end()) return std::nullopt;  // input not listed
        table.emplace(s, TruthTable::var(n, it->second));
        break;
      }
      case Kind::Constant:
        table.emplace(s, TruthTable(n, node.func.eval(0)));
        break;
      case Kind::Logic: {
        const std::size_t fi = node.fanins.size();
        std::vector<const TruthTable*> fts(fi);
        for (std::size_t k = 0; k < fi; ++k)
          fts[k] = &table.at(node.fanins[k]);
        TruthTable t(n);
        if ((std::uint64_t{1} << fi) <= 4096) {
          // Word-parallel composition: for every onset row of the node
          // function, AND the fanin tables in the right phases and OR the
          // resulting mask into the output — 64 rows at a time.
          for (std::uint64_t local = 0; local < (std::uint64_t{1} << fi);
               ++local) {
            if (!node.func.eval(local)) continue;
            for (std::size_t w = 0; w < t.bits().word_count(); ++w) {
              std::uint64_t mask = ~std::uint64_t{0};
              for (std::size_t k = 0; k < fi; ++k) {
                const std::uint64_t fw = fts[k]->bits().word(w);
                mask &= ((local >> k) & 1) ? fw : ~fw;
              }
              if (mask) t.bits().set_word(w, t.bits().word(w) | mask);
            }
          }
        } else {
          for (std::uint64_t row = 0; row < t.num_rows(); ++row) {
            std::uint64_t local = 0;
            for (std::size_t k = 0; k < fi; ++k)
              if (fts[k]->get(row)) local |= std::uint64_t{1} << k;
            t.set(row, node.func.eval(local));
          }
        }
        table.emplace(s, std::move(t));
        break;
      }
    }
  }
  return table.at(sig);
}

std::size_t Network::sweep() {
  // Mark reachable nodes from outputs.
  std::vector<bool> live(nodes_.size(), false);
  std::vector<SigId> stack(outputs_.begin(), outputs_.end());
  while (!stack.empty()) {
    const SigId s = stack.back();
    stack.pop_back();
    if (live[s]) continue;
    live[s] = true;
    for (SigId f : nodes_[s].fanins) stack.push_back(f);
  }
  std::size_t changed = 0;
  for (SigId s = 0; s < nodes_.size(); ++s) {
    if (!live[s] && nodes_[s].kind == Kind::Logic) {
      // Turn dangling logic nodes into zero-fanin constants so they cost
      // nothing downstream (ids stay stable; mapping skips constants).
      nodes_[s].fanins.clear();
      nodes_[s].func = TruthTable(0, false);
      nodes_[s].kind = Kind::Constant;
      ++changed;
    }
  }
  return changed;
}

bool structurally_equal(const Network& a, const Network& b) {
  if (a.node_count() != b.node_count() || a.inputs() != b.inputs() ||
      a.outputs() != b.outputs() || a.output_names() != b.output_names())
    return false;
  for (SigId s = 0; s < a.node_count(); ++s) {
    const Network::Node& na = a.node(s);
    const Network::Node& nb = b.node(s);
    if (na.kind != nb.kind || na.name != nb.name || na.fanins != nb.fanins ||
        na.func != nb.func)
      return false;
  }
  return true;
}

}  // namespace imodec
