#pragma once
// Shared base class of the reader errors (PLA, BLIF).
//
// Malformed input files are user input, not programmer error: every reader
// failure is a typed exception carrying the 1-based source line it was
// detected on, so the CLI can print "file.pla line 12: row width mismatch"
// and exit with the documented parse-error code instead of asserting or
// surfacing a bare std::out_of_range from an unchecked token access.

#include <cstddef>
#include <stdexcept>
#include <string>

namespace imodec {

class ParseError : public std::runtime_error {
 public:
  /// `line` is 1-based; 0 means the error is not attributable to a single
  /// line (e.g. "cannot open", or a whole-file consistency check).
  explicit ParseError(const std::string& what, std::size_t line = 0)
      : std::runtime_error(what), line_(line) {}
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

}  // namespace imodec
