#pragma once
// Network simulation and equivalence checking.
//
// Every decomposition / mapping transform in this repo is checked against the
// original network — exhaustively when the input count permits, by seeded
// random simulation otherwise. This is the safety net behind all experiment
// numbers.

#include <cstdint>
#include <optional>

#include "logic/network.hpp"

namespace imodec {

struct EquivalenceOptions {
  /// Exhaustive check when num_inputs <= this; random vectors otherwise.
  unsigned max_exhaustive_inputs = 16;
  /// Number of random vectors in sampling mode.
  std::size_t random_vectors = 4096;
  std::uint64_t seed = 0x1D0DECull;
};

/// Result of an equivalence check. `counterexample` is an input assignment
/// (indexed like a.inputs()) on which the networks differ, if any was found.
struct EquivalenceResult {
  bool equivalent = true;
  bool exhaustive = false;
  /// The networks have different input or output counts; no vectors were
  /// simulated (comparing them by position would read garbage).
  bool interface_mismatch = false;
  std::optional<std::vector<bool>> counterexample;
};

/// Compare two networks by interface position. Mismatched input/output
/// counts report non-equivalent with `interface_mismatch` set rather than
/// asserting (the old assert vanished under NDEBUG).
EquivalenceResult check_equivalence(const Network& a, const Network& b,
                                    const EquivalenceOptions& opts = {});

}  // namespace imodec
