#pragma once
// Network simulation and equivalence checking.
//
// Every decomposition / mapping transform in this repo is checked against the
// original network — exhaustively when the input count permits, by seeded
// random simulation otherwise. This is the safety net behind all experiment
// numbers.

#include <cstdint>
#include <optional>

#include "logic/network.hpp"

namespace imodec {

struct EquivalenceOptions {
  /// Exhaustive check when num_inputs <= this; random vectors otherwise.
  unsigned max_exhaustive_inputs = 16;
  /// Number of random vectors in sampling mode.
  std::size_t random_vectors = 4096;
  std::uint64_t seed = 0x1D0DECull;
};

/// Result of an equivalence check. `counterexample` is an input assignment
/// (indexed like a.inputs()) on which the networks differ, if any was found.
struct EquivalenceResult {
  bool equivalent = true;
  bool exhaustive = false;
  std::optional<std::vector<bool>> counterexample;
};

/// Compare two networks with identical input/output interfaces (matched by
/// position; both must have the same input and output counts).
EquivalenceResult check_equivalence(const Network& a, const Network& b,
                                    const EquivalenceOptions& opts = {});

}  // namespace imodec
