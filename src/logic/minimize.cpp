#include "logic/minimize.hpp"

#include <algorithm>
#include <cassert>

namespace imodec {

namespace {

/// Truth table of a single cube.
TruthTable cube_table(const Cube& c, unsigned n) {
  TruthTable t(n);
  for (std::uint64_t row = 0; row < t.num_rows(); ++row)
    t.set(row, c.contains(row));
  return t;
}

/// True iff every minterm of the cube lies inside `allowed`.
bool cube_inside(const Cube& c, const TruthTable& allowed) {
  for (std::uint64_t row = 0; row < allowed.num_rows(); ++row)
    if (c.contains(row) && !allowed.get(row)) return false;
  return true;
}

}  // namespace

Cover minimize_cover(const TruthTable& on, const TruthTable& dc,
                     const MinimizeOptions& opts) {
  assert(on.num_vars() == dc.num_vars());
  assert(on.num_vars() <= opts.max_vars);
  const unsigned n = on.num_vars();
  const TruthTable allowed = on | dc;

  std::vector<Cube> cubes = isop(on).cubes();

  for (unsigned pass = 0; pass < opts.passes; ++pass) {
    bool changed = false;

    // EXPAND: widest cubes first; drop literals while staying in allowed.
    std::sort(cubes.begin(), cubes.end(), [](const Cube& a, const Cube& b) {
      return a.num_literals() < b.num_literals();
    });
    for (Cube& c : cubes) {
      for (unsigned v = 0; v < n; ++v) {
        if (!((c.mask >> v) & 1)) continue;
        Cube wider = c;
        wider.mask &= ~(1u << v);
        wider.value &= ~(1u << v);
        if (cube_inside(wider, allowed)) {
          c = wider;
          changed = true;
        }
      }
    }

    // Drop cubes contained in another single cube (cheap subsumption).
    {
      std::vector<Cube> kept;
      for (const Cube& c : cubes) {
        bool subsumed = false;
        for (const Cube& d : kept) {
          // d subsumes c iff d's literals are a subset of c's with equal
          // phases on d's mask.
          if ((d.mask & ~c.mask) == 0 &&
              ((d.value ^ c.value) & d.mask) == 0) {
            subsumed = true;
            break;
          }
        }
        if (!subsumed) kept.push_back(c);
      }
      if (kept.size() != cubes.size()) changed = true;
      cubes = std::move(kept);
    }

    // IRREDUNDANT: a cube is redundant when the rest still covers `on`.
    // Process narrow cubes first (they are the likeliest casualties).
    std::sort(cubes.begin(), cubes.end(), [](const Cube& a, const Cube& b) {
      return a.num_literals() > b.num_literals();
    });
    for (std::size_t i = 0; i < cubes.size();) {
      TruthTable rest(n);
      for (std::size_t j = 0; j < cubes.size(); ++j)
        if (j != i) rest |= cube_table(cubes[j], n);
      if (on.bits().is_subset_of(rest.bits())) {
        cubes.erase(cubes.begin() + static_cast<long>(i));
        changed = true;
      } else {
        ++i;
      }
    }
    if (!changed) break;
  }

  Cover result(n);
  for (const Cube& c : cubes) result.add(c);

#ifndef NDEBUG
  const TruthTable h = result.to_truthtable();
  assert(on.bits().is_subset_of(h.bits()));
  assert(h.bits().is_subset_of(allowed.bits()));
#endif
  return result;
}

Cover minimize_cover(const TruthTable& on, const MinimizeOptions& opts) {
  return minimize_cover(on, TruthTable(on.num_vars()), opts);
}

}  // namespace imodec
