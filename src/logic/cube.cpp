#include "logic/cube.hpp"

#include <bit>
#include <cassert>

namespace imodec {

unsigned Cube::num_literals() const {
  return static_cast<unsigned>(std::popcount(mask));
}

std::string Cube::to_pla(unsigned num_vars) const {
  std::string s(num_vars, '-');
  for (unsigned v = 0; v < num_vars; ++v) {
    if ((mask >> v) & 1) s[v] = ((value >> v) & 1) ? '1' : '0';
  }
  return s;
}

std::string Cube::to_algebraic(const std::vector<std::string>& names) const {
  if (mask == 0) return "1";
  std::string s;
  for (unsigned v = 0; v < names.size(); ++v) {
    if (!((mask >> v) & 1)) continue;
    if (!s.empty()) s += " ";
    if (!((value >> v) & 1)) s += "~";
    s += names[v];
  }
  return s;
}

unsigned Cover::num_literals() const {
  unsigned n = 0;
  for (const Cube& c : cubes_) n += c.num_literals();
  return n;
}

TruthTable Cover::to_truthtable() const {
  TruthTable t(num_vars_);
  for (std::uint64_t row = 0; row < t.num_rows(); ++row) {
    for (const Cube& c : cubes_) {
      if (c.contains(row)) {
        t.set(row, true);
        break;
      }
    }
  }
  return t;
}

std::string Cover::to_algebraic(const std::vector<std::string>& names) const {
  if (cubes_.empty()) return "0";
  std::string s;
  for (const Cube& c : cubes_) {
    if (!s.empty()) s += " + ";
    s += c.to_algebraic(names);
  }
  return s;
}

namespace {

// Minato-Morreale ISOP on interval [lower, upper]: returns a cover whose
// function h satisfies lower <= h <= upper. For completely specified input
// both bounds are f. Recursion splits on the highest remaining variable.
Cover isop_rec(const TruthTable& lower, const TruthTable& upper, unsigned var,
               unsigned num_vars) {
  Cover result(num_vars);
  if (lower.is_zero()) return result;  // empty cover == 0
  if (upper == TruthTable(num_vars, true) ||
      (~upper).is_zero()) {  // upper == 1
    result.add(Cube{});      // tautology cube
    return result;
  }
  assert(var > 0);
  const unsigned v = var - 1;

  const TruthTable l0 = lower.cofactor(v, false);
  const TruthTable l1 = lower.cofactor(v, true);
  const TruthTable u0 = upper.cofactor(v, false);
  const TruthTable u1 = upper.cofactor(v, true);

  // Cubes that must contain literal ~v / v.
  Cover c0 = isop_rec(l0 & ~u1, u0, v, num_vars);
  Cover c1 = isop_rec(l1 & ~u0, u1, v, num_vars);

  const TruthTable h0 = c0.to_truthtable();
  const TruthTable h1 = c1.to_truthtable();

  // Remainder that may be covered variable-free.
  const TruthTable lr = (l0 & ~h0) | (l1 & ~h1);
  Cover cr = isop_rec(lr, u0 & u1, v, num_vars);

  for (Cube c : c0.cubes()) {
    c.mask |= 1u << v;
    result.add(c);
  }
  for (Cube c : c1.cubes()) {
    c.mask |= 1u << v;
    c.value |= 1u << v;
    result.add(c);
  }
  for (const Cube& c : cr.cubes()) result.add(c);
  return result;
}

}  // namespace

Cover isop(const TruthTable& f) {
  assert(f.num_vars() <= 32);
  return isop_rec(f, f, f.num_vars(), f.num_vars());
}

std::vector<std::string> default_var_names(unsigned n,
                                           const std::string& prefix) {
  std::vector<std::string> names;
  names.reserve(n);
  for (unsigned i = 0; i < n; ++i) names.push_back(prefix + std::to_string(i));
  return names;
}

}  // namespace imodec
