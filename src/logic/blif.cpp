#include "logic/blif.hpp"

#include <fstream>
#include <functional>
#include <map>
#include <sstream>

#include "logic/cube.hpp"
#include "util/strings.hpp"

namespace imodec {

namespace {

// One .names block: output name, input names, and cover rows, each tagged
// with the 1-based source line it came from (for ParseError diagnostics).
struct NamesBlock {
  std::vector<std::string> inputs;
  std::string output;
  struct Row {
    std::string pattern;
    char out;
    std::size_t line;
  };
  std::vector<Row> rows;
  std::size_t line = 0;  // line of the .names directive
};

[[noreturn]] void fail_at(std::size_t line, const std::string& msg) {
  throw BlifError("BLIF line " + std::to_string(line) + ": " + msg, line);
}

TruthTable block_to_table(const NamesBlock& blk) {
  const unsigned n = static_cast<unsigned>(blk.inputs.size());
  if (n > TruthTable::kMaxVars)
    fail_at(blk.line, "node '" + blk.output + "' has too many fanins (" +
                          std::to_string(n) + " > " +
                          std::to_string(TruthTable::kMaxVars) + ")");
  // Determine cover polarity: all output bits must agree (standard BLIF).
  bool on_polarity = true;
  if (!blk.rows.empty()) on_polarity = (blk.rows.front().out == '1');
  Cover cover(n);
  for (const auto& [pattern, out, row_line] : blk.rows) {
    if (pattern.size() != n)
      fail_at(row_line, "cube width mismatch in node '" + blk.output +
                            "' (expected " + std::to_string(n) + " columns)");
    if ((out == '1') != on_polarity)
      fail_at(row_line, "mixed-polarity cover in node '" + blk.output + "'");
    Cube c;
    for (unsigned v = 0; v < n; ++v) {
      if (pattern[v] == '1') {
        c.mask |= 1u << v;
        c.value |= 1u << v;
      } else if (pattern[v] == '0') {
        c.mask |= 1u << v;
      } else if (pattern[v] != '-') {
        fail_at(row_line, std::string("bad cube character '") + pattern[v] +
                              "' in node '" + blk.output + "'");
      }
    }
    cover.add(c);
  }
  TruthTable t = cover.to_truthtable();
  if (!on_polarity) t = ~t;
  // Special case: ".names out" with a single "1" row and no inputs is
  // constant 1; no rows at all is constant 0 — handled naturally above.
  return t;
}

}  // namespace

Network read_blif(std::istream& is) {
  Network net;
  std::vector<std::string> output_names;
  std::vector<NamesBlock> blocks;
  NamesBlock* current = nullptr;

  std::string line;
  std::string pending;  // for '\' continuations
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    // Strip comments.
    if (auto pos = line.find('#'); pos != std::string::npos)
      line = line.substr(0, pos);
    std::string full = pending + line;
    if (!full.empty() && full.back() == '\\') {
      pending = full.substr(0, full.size() - 1);
      continue;
    }
    pending.clear();
    const auto tokens = split(full);
    if (tokens.empty()) continue;

    if (tokens[0] == ".model") {
      if (tokens.size() >= 2) net.set_name(tokens[1]);
      current = nullptr;
    } else if (tokens[0] == ".inputs") {
      for (std::size_t i = 1; i < tokens.size(); ++i)
        net.add_input(tokens[i]);
      current = nullptr;
    } else if (tokens[0] == ".outputs") {
      for (std::size_t i = 1; i < tokens.size(); ++i)
        output_names.push_back(tokens[i]);
      current = nullptr;
    } else if (tokens[0] == ".names") {
      if (tokens.size() < 2) fail_at(lineno, ".names without output");
      blocks.emplace_back();
      current = &blocks.back();
      current->inputs.assign(tokens.begin() + 1, tokens.end() - 1);
      current->output = tokens.back();
      current->line = lineno;
    } else if (tokens[0] == ".end") {
      break;
    } else if (tokens[0] == ".latch" || tokens[0] == ".subckt" ||
               tokens[0] == ".gate") {
      fail_at(lineno, "unsupported construct: " + tokens[0]);
    } else if (tokens[0][0] == '.') {
      // Ignore other directives (.default_input_arrival etc.).
      current = nullptr;
    } else {
      if (current == nullptr) fail_at(lineno, "cover row outside .names");
      if (current->inputs.empty()) {
        if (tokens.size() != 1 || (tokens[0] != "1" && tokens[0] != "0"))
          fail_at(lineno,
                  "bad constant row for '" + current->output + "'");
        current->rows.push_back({"", tokens[0][0], lineno});
      } else {
        if (tokens.size() != 2)
          fail_at(lineno, "bad cover row for '" + current->output + "'");
        current->rows.push_back({tokens[0], tokens[1][0], lineno});
      }
    }
  }

  // Resolve blocks in dependency order (BLIF allows any order).
  std::map<std::string, const NamesBlock*> by_output;
  for (const NamesBlock& b : blocks) {
    if (!by_output.emplace(b.output, &b).second)
      fail_at(b.line, "node '" + b.output + "' defined twice");
  }
  // Recursive instantiation with cycle detection.
  std::map<std::string, int> state;  // 0 new, 1 visiting, 2 done
  std::function<SigId(const std::string&)> build =
      [&](const std::string& name) -> SigId {
    if (SigId s = net.find(name); s != kInvalidSig) return s;
    auto it = by_output.find(name);
    if (it == by_output.end())
      throw BlifError("undefined signal '" + name + "'");
    if (state[name] == 1) throw BlifError("combinational cycle at " + name);
    state[name] = 1;
    const NamesBlock& blk = *it->second;
    std::vector<SigId> fanins;
    fanins.reserve(blk.inputs.size());
    for (const std::string& in : blk.inputs) fanins.push_back(build(in));
    state[name] = 2;
    return net.add_node(fanins, block_to_table(blk), name);
  };
  for (const std::string& out : output_names)
    net.add_output(build(out), out);
  return net;
}

Network read_blif_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw BlifError("cannot open " + path);
  return read_blif(f);
}

void write_blif(std::ostream& os, const Network& net) {
  os << ".model " << (net.name().empty() ? "top" : net.name()) << "\n";
  os << ".inputs";
  for (SigId pi : net.inputs()) os << " " << net.node(pi).name;
  os << "\n.outputs";
  for (const std::string& n : net.output_names()) os << " " << n;
  os << "\n";

  // Name every node deterministically.
  std::vector<std::string> sig_name(net.node_count());
  for (SigId s = 0; s < net.node_count(); ++s) {
    const auto& node = net.node(s);
    sig_name[s] = node.name.empty() ? "n" + std::to_string(s) : node.name;
  }
  // Output aliases: if an output points at a node whose name differs, emit a
  // buffer below.
  for (SigId s = 0; s < net.node_count(); ++s) {
    const auto& node = net.node(s);
    if (node.kind == Network::Kind::Constant) {
      os << ".names " << sig_name[s] << "\n";
      if (node.func.eval(0)) os << "1\n";
    } else if (node.kind == Network::Kind::Logic) {
      os << ".names";
      for (SigId f : node.fanins) os << " " << sig_name[f];
      os << " " << sig_name[s] << "\n";
      const Cover cover = isop(node.func);
      if (cover.empty()) continue;  // constant 0 node function
      for (const Cube& c : cover.cubes())
        os << c.to_pla(node.func.num_vars()) << " 1\n";
    }
  }
  for (std::size_t k = 0; k < net.num_outputs(); ++k) {
    const SigId s = net.outputs()[k];
    const std::string& want = net.output_names()[k];
    if (sig_name[s] != want) {
      os << ".names " << sig_name[s] << " " << want << "\n1 1\n";
    }
  }
  os << ".end\n";
}

void write_blif_file(const std::string& path, const Network& net) {
  std::ofstream f(path);
  if (!f) throw BlifError("cannot write " + path);
  write_blif(f, net);
}

}  // namespace imodec
