#include "logic/simplify.hpp"

#include <algorithm>
#include <unordered_map>

namespace imodec {

namespace {

struct NodeSig {
  std::vector<SigId> fanins;
  TruthTable func;
  bool operator==(const NodeSig&) const = default;
};
struct NodeSigHash {
  std::size_t operator()(const NodeSig& k) const {
    std::size_t h = k.func.hash();
    for (SigId s : k.fanins)
      h ^= s + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return h;
  }
};

}  // namespace

SimplifyStats simplify(Network& net) {
  SimplifyStats stats;

  // `replacement[s]` redirects consumers of s to another signal.
  std::vector<SigId> replacement(net.node_count());
  for (SigId s = 0; s < net.node_count(); ++s) replacement[s] = s;
  const auto resolve = [&](SigId s) {
    while (replacement[s] != s) s = replacement[s];
    return s;
  };

  // Shared constants (created lazily).
  SigId const_sig[2] = {kInvalidSig, kInvalidSig};
  const auto constant = [&](bool v) {
    if (const_sig[v] == kInvalidSig) {
      const_sig[v] = net.add_constant(v);
      replacement.push_back(const_sig[v]);
    }
    return const_sig[v];
  };

  bool changed = true;
  while (changed) {
    changed = false;
    std::unordered_map<NodeSig, SigId, NodeSigHash> seen;

    for (SigId s : net.topo_order()) {
      Network::Node& node = net.node(s);
      if (node.kind != Network::Kind::Logic) continue;
      if (replacement[s] != s) continue;  // already redirected

      // Redirect fanins through replacements.
      for (SigId& f : node.fanins) {
        const SigId r = resolve(f);
        if (r != f) {
          f = r;
          changed = true;
        }
      }

      // Merge duplicate fanins (redirects can alias two table variables to
      // the same signal; e.g. x & x must become x).
      {
        std::vector<SigId> uniq;
        std::vector<unsigned> pos_of(node.fanins.size());
        bool dup = false;
        for (std::size_t i = 0; i < node.fanins.size(); ++i) {
          const auto it =
              std::find(uniq.begin(), uniq.end(), node.fanins[i]);
          if (it != uniq.end()) {
            pos_of[i] = static_cast<unsigned>(it - uniq.begin());
            dup = true;
          } else {
            pos_of[i] = static_cast<unsigned>(uniq.size());
            uniq.push_back(node.fanins[i]);
          }
        }
        if (dup) {
          TruthTable merged(static_cast<unsigned>(uniq.size()));
          for (std::uint64_t row = 0; row < merged.num_rows(); ++row) {
            std::uint64_t old_row = 0;
            for (std::size_t i = 0; i < pos_of.size(); ++i)
              if ((row >> pos_of[i]) & 1) old_row |= std::uint64_t{1} << i;
            merged.set(row, node.func.eval(old_row));
          }
          node.func = std::move(merged);
          node.fanins = std::move(uniq);
          changed = true;
        }
      }

      // Fold constant fanins into the function.
      for (std::size_t i = 0; i < node.fanins.size(); ++i) {
        const auto& fn = net.node(node.fanins[i]);
        if (fn.kind != Network::Kind::Constant) continue;
        node.func = node.func.cofactor(static_cast<unsigned>(i),
                                       fn.func.eval(0));
        ++stats.constants_folded;
        changed = true;
      }

      // Drop vacuous fanins (constant-folded ones become vacuous too).
      const std::vector<unsigned> sup = node.func.support();
      if (sup.size() != node.fanins.size()) {
        std::vector<SigId> used;
        used.reserve(sup.size());
        for (unsigned v : sup) used.push_back(node.fanins[v]);
        stats.fanins_dropped += node.fanins.size() - sup.size();
        node.func = node.func.permute(sup);
        node.fanins = std::move(used);
        changed = true;
      }

      const auto redirect = [&](SigId target) {
        if (replacement[s] != target) {
          replacement[s] = target;
          changed = true;
          return true;
        }
        return false;
      };
      // Constant node?
      if (node.fanins.empty()) {
        redirect(constant(node.func.eval(0)));
        continue;
      }
      // Identity node?
      if (node.fanins.size() == 1 && node.func == TruthTable::var(1, 0)) {
        if (redirect(node.fanins[0])) ++stats.identities_bypassed;
        continue;
      }
      // Structural duplicate?
      NodeSig sig{node.fanins, node.func};
      auto [it, inserted] = seen.emplace(std::move(sig), s);
      if (!inserted && it->second != s) {
        if (redirect(it->second)) ++stats.nodes_deduped;
      }
    }

    // Redirect outputs.
    for (std::size_t k = 0; k < net.num_outputs(); ++k) {
      const SigId r = resolve(net.outputs()[k]);
      if (r != net.outputs()[k]) {
        net.set_output_sig(k, r);
        changed = true;
      }
    }
  }
  net.sweep();
  return stats;
}

}  // namespace imodec
