#include "logic/simulate.hpp"

#include "util/rng.hpp"

namespace imodec {

EquivalenceResult check_equivalence(const Network& a, const Network& b,
                                    const EquivalenceOptions& opts) {
  EquivalenceResult res;
  if (a.num_inputs() != b.num_inputs() ||
      a.num_outputs() != b.num_outputs()) {
    res.equivalent = false;
    res.interface_mismatch = true;
    return res;
  }
  const unsigned n = static_cast<unsigned>(a.num_inputs());
  const auto order_a = a.topo_order();
  const auto order_b = b.topo_order();
  const auto try_vector = [&](const std::vector<bool>& v) {
    const auto oa = a.eval_ordered(v, order_a);
    const auto ob = b.eval_ordered(v, order_b);
    if (oa != ob) {
      res.equivalent = false;
      res.counterexample = v;
      return false;
    }
    return true;
  };

  if (n <= opts.max_exhaustive_inputs) {
    res.exhaustive = true;
    std::vector<bool> v(n, false);
    for (std::uint64_t pat = 0; pat < (std::uint64_t{1} << n); ++pat) {
      for (unsigned i = 0; i < n; ++i) v[i] = (pat >> i) & 1;
      if (!try_vector(v)) return res;
    }
    return res;
  }

  Rng rng(opts.seed);
  std::vector<bool> v(n, false);
  for (std::size_t t = 0; t < opts.random_vectors; ++t) {
    for (unsigned i = 0; i < n; ++i) v[i] = rng.coin();
    if (!try_vector(v)) return res;
  }
  // Also try the all-0 / all-1 corners, which random vectors rarely hit.
  std::fill(v.begin(), v.end(), false);
  if (!try_vector(v)) return res;
  std::fill(v.begin(), v.end(), true);
  try_vector(v);
  return res;
}

}  // namespace imodec
