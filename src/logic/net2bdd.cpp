#include "logic/net2bdd.hpp"

#include <cassert>

namespace imodec {

bdd::Bdd table_bdd(bdd::Manager& mgr, const TruthTable& tt,
                   const std::vector<unsigned>& vars) {
  assert(vars.size() == tt.num_vars());
  // Recursive Shannon expansion on table variables ordered by their BDD
  // level (deepest first) so intermediate results stay reduced.
  std::vector<std::size_t> order(vars.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return mgr.level_of(vars[a]) < mgr.level_of(vars[b]);
  });

  // Iterate rows: build as OR of minterm cubes would be exponential in
  // general; instead do recursive splitting over table variables.
  std::function<bdd::Bdd(std::size_t, std::uint64_t, std::uint64_t)> rec =
      [&](std::size_t depth, std::uint64_t fixed_mask,
          std::uint64_t fixed_val) -> bdd::Bdd {
    if (depth == order.size()) {
      const bool bit = tt.eval(fixed_val);
      return bit ? bdd::Bdd::one(mgr) : bdd::Bdd::zero(mgr);
    }
    // Split on the shallowest remaining variable (so results build from the
    // bottom of the BDD order upward).
    const std::size_t ti = order[depth];
    const std::uint64_t bit = std::uint64_t{1} << ti;
    bdd::Bdd lo = rec(depth + 1, fixed_mask | bit, fixed_val);
    bdd::Bdd hi = rec(depth + 1, fixed_mask | bit, fixed_val | bit);
    if (lo == hi) return lo;
    const bdd::Bdd v = bdd::Bdd::var(mgr, vars[ti]);
    return v.ite(hi, lo);
  };
  return rec(0, 0, 0);
}

bdd::Bdd signal_bdd(bdd::Manager& mgr, const Network& net, SigId sig,
                    const PiVarMap& pi_var,
                    std::unordered_map<SigId, bdd::Bdd>& cache) {
  if (auto it = cache.find(sig); it != cache.end()) return it->second;
  const auto& node = net.node(sig);
  bdd::Bdd result;
  switch (node.kind) {
    case Network::Kind::Input: {
      auto it = pi_var.find(sig);
      assert(it != pi_var.end() && "unmapped primary input");
      result = bdd::Bdd::var(mgr, it->second);
      break;
    }
    case Network::Kind::Constant:
      result = node.func.eval(0) ? bdd::Bdd::one(mgr) : bdd::Bdd::zero(mgr);
      break;
    case Network::Kind::Logic: {
      // Compose the node table over fanin BDDs via Shannon expansion of the
      // table (fanin BDDs substituted for table variables).
      std::vector<bdd::Bdd> fanin_bdds;
      fanin_bdds.reserve(node.fanins.size());
      for (SigId f : node.fanins)
        fanin_bdds.push_back(signal_bdd(mgr, net, f, pi_var, cache));
      // Evaluate the table as a multiplexer tree over fanin BDDs.
      std::function<bdd::Bdd(std::size_t, std::uint64_t)> rec =
          [&](std::size_t i, std::uint64_t fixed) -> bdd::Bdd {
        if (i == node.fanins.size()) {
          return node.func.eval(fixed) ? bdd::Bdd::one(mgr)
                                       : bdd::Bdd::zero(mgr);
        }
        bdd::Bdd lo = rec(i + 1, fixed);
        bdd::Bdd hi = rec(i + 1, fixed | (std::uint64_t{1} << i));
        if (lo == hi) return lo;
        return fanin_bdds[i].ite(hi, lo);
      };
      result = rec(0, 0);
      break;
    }
  }
  cache.emplace(sig, result);
  return result;
}

}  // namespace imodec
