#pragma once
// Multi-level combinational Boolean network.
//
// Nodes are primary inputs, constants, or logic nodes carrying a truth table
// over their fanins (a k-LUT-style network with unbounded k up to
// TruthTable::kMaxVars). This is the substrate both for the benchmark
// generators and for the decomposition / mapping flows: decomposition
// replaces a wide node by d-nodes and g-nodes, mapping packs bounded nodes
// into CLBs.

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "logic/truthtable.hpp"

namespace imodec {

using SigId = std::uint32_t;
inline constexpr SigId kInvalidSig = 0xffffffffu;

class Network {
 public:
  enum class Kind : std::uint8_t { Input, Constant, Logic };

  struct Node {
    Kind kind;
    std::string name;            // may be empty for internal nodes
    std::vector<SigId> fanins;   // empty for Input/Constant
    TruthTable func;             // over fanins (Logic); constant value for
                                 // Constant is func over 0 vars
  };

  Network() = default;
  explicit Network(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  SigId add_input(const std::string& name);
  SigId add_constant(bool value);
  /// Add a logic node computing `func` over `fanins` (func.num_vars() must
  /// equal fanins.size()).
  SigId add_node(const std::vector<SigId>& fanins, TruthTable func,
                 const std::string& name = "");

  void add_output(SigId sig, const std::string& name);

  std::size_t node_count() const { return nodes_.size(); }
  const Node& node(SigId s) const { return nodes_[s]; }
  Node& node(SigId s) { return nodes_[s]; }

  std::size_t num_inputs() const { return inputs_.size(); }
  std::size_t num_outputs() const { return outputs_.size(); }
  const std::vector<SigId>& inputs() const { return inputs_; }
  const std::vector<SigId>& outputs() const { return outputs_; }
  const std::vector<std::string>& output_names() const {
    return output_names_;
  }
  void set_output_sig(std::size_t idx, SigId s) { outputs_[idx] = s; }

  /// Signal by name (inputs and named nodes). kInvalidSig if absent.
  SigId find(const std::string& name) const;

  /// Topological order over all nodes (inputs first).
  std::vector<SigId> topo_order() const;

  /// Number of Logic nodes.
  std::size_t logic_count() const;
  /// Maximum logic level (inputs at level 0).
  unsigned depth() const;
  /// Largest fanin count over logic nodes.
  unsigned max_fanin() const;

  /// Evaluate all outputs for one input assignment (indexed like inputs()).
  std::vector<bool> eval(const std::vector<bool>& input_values) const;
  /// Same, with a precomputed topo_order() (hot loops: equivalence checks).
  std::vector<bool> eval_ordered(const std::vector<bool>& input_values,
                                 const std::vector<SigId>& order) const;

  /// Transitive-fanin primary inputs of `sig`, in input order.
  std::vector<SigId> cone_inputs(SigId sig) const;

  /// Global function of `sig` over the given ordered input list (each cone
  /// input must appear). nullopt if the list exceeds TruthTable::kMaxVars.
  std::optional<TruthTable> cone_function(SigId sig,
                                          const std::vector<SigId>& inputs) const;

  /// Remove dangling logic nodes and propagate constants / single-input
  /// identity nodes. Returns the number of nodes removed or simplified.
  std::size_t sweep();

 private:
  std::string name_;
  std::vector<Node> nodes_;
  std::vector<SigId> inputs_;
  std::vector<SigId> outputs_;
  std::vector<std::string> output_names_;
  std::unordered_map<std::string, SigId> by_name_;
};

/// Bit-identical structural comparison: same nodes (kind, name, fanins,
/// function), inputs, outputs, and output names, in the same order. The
/// network name is ignored. This is the determinism contract the parallel
/// runtime promises (DESIGN.md §9) and the differential fuzzer enforces —
/// far stronger than functional equivalence.
bool structurally_equal(const Network& a, const Network& b);

}  // namespace imodec
