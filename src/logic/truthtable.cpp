#include "logic/truthtable.hpp"

#include <cassert>

namespace imodec {

TruthTable::TruthTable(unsigned num_vars, bool value)
    : num_vars_(num_vars), bits_(std::uint64_t{1} << num_vars, value) {
  assert(num_vars <= kMaxVars);
}

TruthTable TruthTable::var(unsigned num_vars, unsigned v) {
  assert(v < num_vars);
  TruthTable t(num_vars);
  for (std::uint64_t row = 0; row < t.num_rows(); ++row)
    if ((row >> v) & 1) t.bits_.set(row, true);
  return t;
}

TruthTable TruthTable::from_string(const std::string& bits) {
  std::uint64_t n = bits.size();
  assert(n > 0 && (n & (n - 1)) == 0);
  unsigned vars = 0;
  while ((std::uint64_t{1} << vars) < n) ++vars;
  TruthTable t(vars);
  for (std::uint64_t i = 0; i < n; ++i) {
    assert(bits[i] == '0' || bits[i] == '1');
    t.bits_.set(i, bits[i] == '1');
  }
  return t;
}

TruthTable& TruthTable::operator&=(const TruthTable& o) {
  assert(num_vars_ == o.num_vars_);
  bits_ &= o.bits_;
  return *this;
}

TruthTable& TruthTable::operator|=(const TruthTable& o) {
  assert(num_vars_ == o.num_vars_);
  bits_ |= o.bits_;
  return *this;
}

TruthTable& TruthTable::operator^=(const TruthTable& o) {
  assert(num_vars_ == o.num_vars_);
  bits_ ^= o.bits_;
  return *this;
}

TruthTable TruthTable::operator~() const {
  TruthTable t = *this;
  t.bits_.complement();
  return t;
}

TruthTable TruthTable::cofactor(unsigned v, bool value) const {
  assert(v < num_vars_);
  TruthTable t(num_vars_);
  const std::uint64_t bit = std::uint64_t{1} << v;
  for (std::uint64_t row = 0; row < num_rows(); ++row) {
    const std::uint64_t src = value ? (row | bit) : (row & ~bit);
    t.bits_.set(row, bits_.get(src));
  }
  return t;
}

bool TruthTable::is_dont_care(unsigned v) const {
  const std::uint64_t bit = std::uint64_t{1} << v;
  for (std::uint64_t row = 0; row < num_rows(); ++row) {
    if ((row & bit) == 0 && bits_.get(row) != bits_.get(row | bit))
      return false;
  }
  return true;
}

std::vector<unsigned> TruthTable::support() const {
  std::vector<unsigned> s;
  for (unsigned v = 0; v < num_vars_; ++v)
    if (!is_dont_care(v)) s.push_back(v);
  return s;
}

TruthTable TruthTable::permute(const std::vector<unsigned>& perm) const {
  TruthTable t(static_cast<unsigned>(perm.size()));
  for (std::uint64_t row = 0; row < t.num_rows(); ++row) {
    std::uint64_t src = 0;
    for (std::size_t i = 0; i < perm.size(); ++i)
      if ((row >> i) & 1) src |= std::uint64_t{1} << perm[i];
    t.bits_.set(row, bits_.get(src));
  }
#ifndef NDEBUG
  // Every support variable of *this must be covered by perm.
  for (unsigned v : support()) {
    bool found = false;
    for (unsigned p : perm) found |= (p == v);
    assert(found && "permute dropped a support variable");
  }
#endif
  return t;
}

}  // namespace imodec
