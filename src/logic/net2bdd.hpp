#pragma once
// Build global BDDs for network signals.
//
// Each requested signal's function is expressed over primary-input BDD
// variables through a caller-supplied variable map, so the decomposition
// engine can place bound-set variables on top of the order.

#include <unordered_map>
#include <vector>

#include "bdd/bdd.hpp"
#include "logic/network.hpp"

namespace imodec {

/// Map from primary-input SigId to BDD variable index in `mgr`.
using PiVarMap = std::unordered_map<SigId, unsigned>;

/// BDD of signal `sig` over `mgr` variables per `pi_var`. Every cone input
/// of `sig` must be mapped. `cache` memoizes across calls for one network.
bdd::Bdd signal_bdd(bdd::Manager& mgr, const Network& net, SigId sig,
                    const PiVarMap& pi_var,
                    std::unordered_map<SigId, bdd::Bdd>& cache);

/// BDD of a truth table `tt` where table variable i is BDD variable vars[i].
bdd::Bdd table_bdd(bdd::Manager& mgr, const TruthTable& tt,
                   const std::vector<unsigned>& vars);

}  // namespace imodec
