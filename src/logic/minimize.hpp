#pragma once
// Espresso-style two-level minimization (EXPAND / IRREDUNDANT loop) with
// don't-care support.
//
// The MCNC benchmark flow the paper builds on minimizes node covers with
// espresso; this is the same loop in miniature, operating on the complete
// truth tables our node functions carry (feasible up to ~16 variables,
// which covers every node the flows produce). Starting point is the
// Minato-Morreale ISOP of the onset; EXPAND enlarges cubes inside
// onset ∪ dc-set, dropping cubes that become covered, and IRREDUNDANT
// removes cubes whose minterms are covered by the rest.

#include "logic/cube.hpp"
#include "logic/truthtable.hpp"

namespace imodec {

struct MinimizeOptions {
  /// Refuse inputs wider than this (table scans are exponential).
  unsigned max_vars = 16;
  /// EXPAND / IRREDUNDANT sweeps.
  unsigned passes = 4;
};

/// Minimize a cover of `on` using `dc` as flexibility. The result h
/// satisfies on <= h <= on | dc, is irredundant, and never has more cubes
/// than isop(on). `on` and `dc` must be disjoint-or-overlapping tables of
/// equal arity; overlap is treated as don't-care.
Cover minimize_cover(const TruthTable& on, const TruthTable& dc,
                     const MinimizeOptions& opts = {});

/// Convenience: completely specified (empty dc-set).
Cover minimize_cover(const TruthTable& on, const MinimizeOptions& opts = {});

}  // namespace imodec
