#include "map/npn_cache.hpp"

#include <algorithm>
#include <cassert>

#include "obs/metrics.hpp"

namespace imodec {

TruthTable npn_flip_input(const TruthTable& t, unsigned v) {
  assert(v < t.num_vars());
  TruthTable out(t.num_vars());
  const std::uint64_t bit = std::uint64_t{1} << v;
  for (std::uint64_t row = 0; row < t.num_rows(); ++row)
    out.set(row, t.get(row ^ bit));
  return out;
}

namespace {

/// Deterministic phase rule for one input: normalize so the positive
/// cofactor is the "heavier" one (more ones), ties broken on the raw bits.
/// Applied to non-support variables it is a no-op (equal cofactors).
bool should_flip_input(const TruthTable& f, unsigned v) {
  const TruthTable c0 = f.cofactor(v, false);
  const TruthTable c1 = f.cofactor(v, true);
  const std::uint64_t o0 = c0.count_ones(), o1 = c1.count_ones();
  if (o1 != o0) return o1 < o0;
  return c1.to_string() < c0.to_string();
}

}  // namespace

NpnCanonical npn_canonicalize(const TruthTable& f) {
  const unsigned n = f.num_vars();
  NpnCanonical out;
  out.transform.input_flip.assign(n, false);

  // 1. Input phases.
  TruthTable g = f;
  for (unsigned v = 0; v < n; ++v) {
    if (should_flip_input(g, v)) {
      out.transform.input_flip[v] = true;
      g = npn_flip_input(g, v);
    }
  }

  // 2. Output phase: minority of ones; on a tie, f(0..0) == 0.
  const std::uint64_t ones = g.count_ones();
  if (2 * ones > g.num_rows() || (2 * ones == g.num_rows() && g.get(0))) {
    out.transform.output_flip = true;
    g = ~g;
  }

  // 3. Variable order: descending influence (number of minterms where
  // flipping the variable flips the function), ascending index on ties —
  // stable and deterministic.
  std::vector<std::uint64_t> influence(n);
  for (unsigned v = 0; v < n; ++v)
    influence[v] = (g.cofactor(v, false) ^ g.cofactor(v, true)).count_ones();
  std::vector<unsigned> perm(n);
  for (unsigned v = 0; v < n; ++v) perm[v] = v;
  std::stable_sort(perm.begin(), perm.end(), [&](unsigned a, unsigned b) {
    return influence[a] > influence[b];
  });
  out.transform.perm = perm;
  out.table = g.permute(perm);
  return out;
}

TruthTable npn_apply(const TruthTable& f, const NpnTransform& t) {
  TruthTable g = f;
  for (unsigned v = 0; v < f.num_vars(); ++v)
    if (t.input_flip[v]) g = npn_flip_input(g, v);
  g = g.permute(t.perm);
  if (t.output_flip) g = ~g;
  return g;
}

Decomposition npn_inverse_decomposition(const Decomposition& canonical,
                                        const NpnTransform& t) {
  Decomposition d = canonical;
  // Bound positions: remap the variable index; a flipped original variable
  // inverts input i of every d function (all d functions share the bound).
  for (unsigned i = 0; i < d.vp.b(); ++i) {
    const unsigned ovar = t.perm[canonical.vp.bound[i]];
    if (t.input_flip[ovar])
      for (TruthTable& df : d.d_funcs) df = npn_flip_input(df, i);
    d.vp.bound[i] = ovar;
  }
  // Free positions: the code inputs of g are untouched (the d functions
  // absorbed the bound flips, so codes are value-identical); a flipped free
  // variable inverts g input c_k + j of each output's plan.
  for (std::size_t j = 0; j < d.vp.free_set.size(); ++j) {
    const unsigned ovar = t.perm[canonical.vp.free_set[j]];
    if (t.input_flip[ovar])
      for (Decomposition::OutputPlan& plan : d.outputs)
        plan.g = npn_flip_input(
            plan.g, static_cast<unsigned>(plan.d_index.size() + j));
    d.vp.free_set[j] = ovar;
  }
  if (t.output_flip)
    for (Decomposition::OutputPlan& plan : d.outputs) plan.g = ~plan.g;
  return d;
}

std::optional<NpnCache::Entry> NpnCache::lookup(
    std::uint64_t config_fp, const std::vector<TruthTable>& key_tables) {
  std::lock_guard<std::mutex> lock(mu_);
  const Key key{config_fp, key_tables};
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    obs::count("cache.npn.miss");
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  ++stats_.hits;
  obs::count("cache.npn.hit");
  return it->second->second;
}

void NpnCache::store(std::uint64_t config_fp,
                     const std::vector<TruthTable>& key_tables, Entry e) {
  std::lock_guard<std::mutex> lock(mu_);
  Key key{config_fp, key_tables};
  if (const auto it = index_.find(key); it != index_.end()) {
    it->second->second = std::move(e);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(e));
  index_.emplace(std::move(key), lru_.begin());
  while (lru_.size() > opts_.max_entries) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
    obs::count("cache.npn.evict");
  }
}

void NpnCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

NpnCache::Stats NpnCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t NpnCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

void NpnCache::note_verify_failure() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.verify_failures;
}

NpnCache::Entry npn_cached_decompose(
    NpnCache& cache, std::uint64_t config_fp, const TruthTable& f,
    const std::function<NpnCache::Entry(const TruthTable&)>&
        decompose_canonical,
    bool verify_hits) {
  const NpnCanonical canon = npn_canonicalize(f);

  const auto to_original = [&](const NpnCache::Entry& e) {
    NpnCache::Entry out;
    out.error = e.error;
    if (e.dec) out.dec = npn_inverse_decomposition(*e.dec, canon.transform);
    return out;
  };

  const std::vector<TruthTable> key{canon.table};
  if (auto hit = cache.lookup(config_fp, key)) {
    NpnCache::Entry res = to_original(*hit);
    if (!verify_hits || !res.dec) return res;
    // Exact cross-check of the cache-served decomposition: recompose every
    // output in the truth-table domain and compare against the request's
    // function — exhaustive at these widths, so equivalent to a miter proof.
    bool ok = true;
    for (std::size_t k = 0; ok && k < res.dec->outputs.size(); ++k)
      ok = recompose(*res.dec, k, f.num_vars()) == f;
    obs::count("cache.npn.verified");
    if (ok) return res;
    cache.note_verify_failure();
    obs::count("cache.npn.verify_fail");
    // Defensive: drop the poisoned entry and fall through to a recompute.
  }

  NpnCache::Entry computed = decompose_canonical(canon.table);
  cache.store(config_fp, key, computed);
  return to_original(computed);
}

}  // namespace imodec
