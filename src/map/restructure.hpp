#pragma once
// Technology-independent pre-structuring pass — our stand-in for the SIS
// script.rugged preprocessing the paper applies before the "r+" experiments
// (see DESIGN.md §4 substitutions).
//
// The pass (a) sweeps dangling logic, (b) eliminates nodes into their
// fanouts while the fanout's support stays within a bound (bounded collapse,
// like SIS `eliminate` with a support limit). The result is a network of
// medium-width nodes, which is what the decomposition flow expects from a
// pre-structured start.

#include "logic/network.hpp"

namespace imodec {

struct RestructureOptions {
  /// Upper bound on the fanin count of any node produced by elimination.
  unsigned max_support = 10;
  /// Only eliminate nodes with at most this many fanouts. The default 1
  /// (like SIS `eliminate 0`) never duplicates logic; raising it trades
  /// sharing for larger decomposable nodes.
  unsigned max_fanout = 1;
  unsigned passes = 4;
};

Network restructure(const Network& src, const RestructureOptions& opts = {});

}  // namespace imodec
