#pragma once
// Technology-independent pre-structuring pass — our stand-in for the SIS
// script.rugged preprocessing the paper applies before the "r+" experiments
// (see DESIGN.md §4 substitutions).
//
// The pass (a) sweeps dangling logic, (b) eliminates nodes into their
// fanouts while the fanout's support stays within a bound (bounded collapse,
// like SIS `eliminate` with a support limit). The result is a network of
// medium-width nodes, which is what the decomposition flow expects from a
// pre-structured start.

#include "logic/network.hpp"

namespace imodec::util {
class ResourceGuard;
}

namespace imodec {

struct RestructureOptions {
  /// Upper bound on the fanin count of any node produced by elimination.
  unsigned max_support = 10;
  /// Only eliminate nodes with at most this many fanouts. The default 1
  /// (like SIS `eliminate 0`) never duplicates logic; raising it trades
  /// sharing for larger decomposable nodes.
  unsigned max_fanout = 1;
  unsigned passes = 4;
  /// Resource governance (not owned; nullptr = ungoverned). The pass is
  /// checkpointed between elimination candidates; in fail mode an expired
  /// deadline throws util::Timeout out of restructure().
  util::ResourceGuard* guard = nullptr;
  /// Degrade instead of failing: stop eliminating once the guard says stop.
  /// Every prefix of the pass loop leaves a consistent, swept network, so an
  /// early stop only means less pre-structuring — not a broken result.
  bool degrade = false;
  /// Out-flag (optional): set to true when a degrade-mode run stopped early.
  bool* stopped_early = nullptr;
};

Network restructure(const Network& src, const RestructureOptions& opts = {});

}  // namespace imodec
