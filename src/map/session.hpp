#pragma once
// SynthesisSession: the session-scoped engine API.
//
// A session binds one validated SynthesisConfig to one thread pool and runs
// any number of circuits through the pipeline. Compared to the free
// run_synthesis(), the session amortizes thread creation across runs (a
// server mapping a stream of circuits pays for pool startup once) and is the
// single place where the parallel runtime's resources live — engine runs
// own their BDD managers, so nothing else is session-global.

#include <optional>

#include "map/config.hpp"
#include "map/driver.hpp"
#include "util/thread_pool.hpp"

namespace imodec {

class SynthesisSession {
 public:
  /// Precondition: cfg.validate().empty() — callers surface the diagnostics
  /// themselves (the CLI prints them and exits). Creates the pool eagerly
  /// when the config resolves to a width > 1.
  explicit SynthesisSession(const SynthesisConfig& cfg);

  const SynthesisConfig& config() const { return cfg_; }
  /// Execution width the session resolved to (>= 1).
  unsigned threads() const { return pool_ ? pool_->size() : 1; }
  /// The session's pool; nullptr when running serially.
  util::ThreadPool* pool() { return pool_ ? &*pool_ : nullptr; }

  /// Run the full pipeline on `input`; stores the mapped network in
  /// `mapped`. Safe to call repeatedly; each run's report is independent.
  DriverReport run(const Network& input, Network& mapped);

 private:
  SynthesisConfig cfg_;
  std::optional<util::ThreadPool> pool_;
};

}  // namespace imodec
