#pragma once
// SynthesisSession: the session-scoped engine API.
//
// A session binds one validated base SynthesisConfig to the long-lived
// resources a stream of runs can share, and runs any number of circuits
// through the pipeline. Compared to the free run_synthesis(), the session
// amortizes across runs (a server mapping a stream of circuits pays once):
//  - the thread pool (pool startup),
//  - a pool of recycled BDD managers (engine runs lease instead of
//    constructing — unique table / computed cache / node arena stay grown),
//  - the NPN-canonical result cache (map/npn_cache.hpp), kept only when the
//    base config sets result_cache.
// Every run still observes the per-request boundary: gauge watermarks are
// reset, and results are bit-identical to a fresh process running the same
// request sequence (DESIGN.md §14).

#include <optional>
#include <string>

#include "bdd/manager_pool.hpp"
#include "map/config.hpp"
#include "map/driver.hpp"
#include "map/errors.hpp"
#include "map/npn_cache.hpp"
#include "util/thread_pool.hpp"

namespace imodec {

class SynthesisSession {
 public:
  /// Precondition: cfg.validate().empty() — callers surface the diagnostics
  /// themselves (the CLI prints them and exits). Creates the pool eagerly
  /// when the config resolves to a width > 1, and the NPN result cache when
  /// cfg.result_cache is set (sized by cfg.result_cache_entries /
  /// result_cache_max_vars).
  explicit SynthesisSession(const SynthesisConfig& cfg);

  const SynthesisConfig& config() const { return cfg_; }
  /// Execution width the session resolved to (>= 1).
  unsigned threads() const { return pool_ ? pool_->size() : 1; }
  /// The session's pool; nullptr when running serially.
  util::ThreadPool* pool() { return pool_ ? &*pool_ : nullptr; }
  /// The session's NPN result cache; nullptr unless the base config enabled
  /// it. Per-request configs with result_cache=false skip it for that run.
  NpnCache* result_cache() { return cache_ ? &*cache_ : nullptr; }
  /// The session's recycled-BDD-manager pool (always present).
  bdd::ManagerPool& managers() { return managers_; }

  /// Run the full pipeline on `input` with the session's base config; stores
  /// the mapped network in `mapped`. Safe to call repeatedly; each run's
  /// report is independent.
  DriverReport run(const Network& input, Network& mapped);

  /// As above with a per-request config (the serving layer's base +
  /// overrides). Pre: cfg.validate().empty(). Threading stays a session
  /// property: the run executes on the session's pool regardless of
  /// cfg.threads.
  DriverReport run(const Network& input, const SynthesisConfig& cfg,
                   Network& mapped);

  /// One run's outcome as a typed error surface instead of exceptions —
  /// exactly the CLI's exit-code mapping (map/errors.hpp), shared with the
  /// daemon's JSON error responses.
  struct Outcome {
    ErrorCode code = ErrorCode::ok;
    std::string message;                 ///< empty when code == ok
    std::optional<DriverReport> report;  ///< set when the pipeline finished
  };

  /// Exception-free run: validates `cfg` (usage), maps util::Timeout /
  /// util::ResourceExhausted / other failures to their ErrorCode, and turns
  /// a failed equivalence check into verify_failed (report still attached).
  Outcome run_checked(const Network& input, const SynthesisConfig& cfg,
                      Network& mapped);

 private:
  SynthesisConfig cfg_;
  std::optional<util::ThreadPool> pool_;
  std::optional<NpnCache> cache_;
  bdd::ManagerPool managers_;
};

}  // namespace imodec
