#pragma once
// LUT decomposition flow: turn a network into a k-feasible one by repeated
// functional decomposition, in either multiple-output (IMODEC) or
// single-output mode, including the paper's greedy output-partitioning
// heuristic (§7).
//
// The flow walks all wide logic nodes, groups them into function vectors
// over shared inputs, decomposes each vector with the implicit engine, and
// replaces the nodes by d-nodes (bound-set functions, shared across outputs
// of the vector and structurally hashed across vectors) and g-nodes;
// g-nodes wider than k re-enter the worklist. A Shannon-expansion fallback
// guarantees progress on undecomposable functions.

#include <array>
#include <cstdint>
#include <string>

#include "decomp/varpart.hpp"
#include "imodec/engine.hpp"
#include "logic/network.hpp"

namespace imodec::util {
class ResourceGuard;
class ThreadPool;
}  // namespace imodec::util

namespace imodec {

class NpnCache;

struct FlowOptions {
  unsigned k = 5;  // LUT size (XC3000: 5)
  /// false = "Single" column: every node decomposed on its own.
  bool multi_output = true;
  /// Greedy output partitioning (§7). Ignored when multi_output is false.
  bool output_partitioning = true;
  /// Cap on the number of outputs per vector (the paper limits m when the
  /// global class count explodes, e.g. alu4).
  unsigned max_vector_outputs = 8;
  /// Cap on the input union of a vector; candidates pushing past it are not
  /// combined (keeps the truth-table work per trial bounded).
  unsigned max_vector_inputs = 18;
  /// Cap on candidate combinations tried per group before giving up.
  unsigned max_group_trials = 6;
  ImodecOptions imodec;
  VarPartOptions varpart;
  /// Record the function vectors handed to the engine (Table-1 style
  /// analysis); capped at 64 records.
  bool record_vectors = false;
  /// Execution pool of the parallel runtime (not owned; nullptr = serial).
  /// Independent group decompositions of one worklist round run
  /// concurrently; d-node structural hashing happens in the serial merge
  /// step afterwards, so results are identical for every thread count.
  util::ThreadPool* pool = nullptr;
  /// Groups selected per worklist round (the unit of concurrency). Part of
  /// the deterministic contract: results depend on this value — like on a
  /// seed — but never on the thread count or on whether a pool is set.
  unsigned batch_groups = 8;
  /// Resource governance (not owned; nullptr = ungoverned). Checkpointed by
  /// every engine run, bound-set search and BDD operation of the flow.
  util::ResourceGuard* guard = nullptr;
  /// NPN-canonical result cache for singleton decompositions (not owned;
  /// nullptr = off). Wired by the driver from the run's RunResources when
  /// SynthesisConfig::result_cache is set (DESIGN.md §14).
  NpnCache* npn_cache = nullptr;
  /// Cache key discriminator (SynthesisConfig::decomposition_fingerprint):
  /// one cache serves many configs without cross-config contamination.
  std::uint64_t cache_fingerprint = 0;
  /// Cross-check every cache-served decomposition by recompose() against
  /// the requested function (set by the exact/auto verify modes).
  bool cache_verify_hits = false;
  /// Exhaustion policy. When false (fail), a guard trip propagates out of
  /// decompose_to_luts as util::Timeout / util::ResourceExhausted. When true
  /// (degrade), the flow walks the degradation ladder instead: engine
  /// exhausted -> per-output single decomposition -> Shannon cofactoring on
  /// the most binate variable; once the deadline has expired it drains the
  /// worklist Shannon-only. Either way the returned network is complete and
  /// k-feasible — never a silent partial netlist (DESIGN.md §12).
  bool degrade = false;
};

/// What the degradation ladder had to do during a governed flow run. All
/// counters are zero on an ungoverned or untripped run; `degraded()` is the
/// one-bit summary surfaced as the bench `degraded` field.
struct DegradationReport {
  bool deadline_expired = false;   // guard deadline observed expired
  unsigned engine_exhausted = 0;   // vector decompositions that tripped
  unsigned single_fallbacks = 0;   // ladder step 2: per-output single decomp
  unsigned shannon_degrades = 0;   // ladder step 3: most-binate Shannon split
  unsigned drained = 0;            // nodes processed in Shannon-only drain mode
  bool restructure_stopped_early = false;  // set by the driver (see driver.cpp)
  bool collapse_skipped = false;           // set by the driver
  bool verify_downgraded = false;          // miter -> sampled simulation
  /// First few human-readable ladder events, capped (diagnostics only; the
  /// counters above are the machine-readable record).
  std::vector<std::string> events;
  static constexpr std::size_t kMaxEvents = 32;
  void note(std::string msg) {
    if (events.size() < kMaxEvents) events.push_back(std::move(msg));
  }
  bool degraded() const {
    return deadline_expired || engine_exhausted || single_fallbacks ||
           shannon_degrades || drained || restructure_stopped_early ||
           collapse_skipped || verify_downgraded;
  }
  /// Merge a sub-phase report into an aggregate one (driver-level).
  void merge(const DegradationReport& o) {
    deadline_expired |= o.deadline_expired;
    engine_exhausted += o.engine_exhausted;
    single_fallbacks += o.single_fallbacks;
    shannon_degrades += o.shannon_degrades;
    drained += o.drained;
    restructure_stopped_early |= o.restructure_stopped_early;
    collapse_skipped |= o.collapse_skipped;
    verify_downgraded |= o.verify_downgraded;
    for (const std::string& e : o.events) note(e);
  }
};

/// One decomposed function vector as it occurred during a flow run.
struct RecordedVector {
  std::vector<TruthTable> outputs;
  VarPartition vp;
  ImodecStats stats;
};

struct FlowStats {
  unsigned luts = 0;            // k-feasible logic nodes after the flow
  unsigned max_m = 0;           // largest vector decomposed
  std::uint32_t max_p = 0;      // largest global class count observed
  unsigned vectors = 0;         // decompositions performed
  unsigned shared_functions = 0;  // Σ(Σc_k - q) over vectors: functions saved
  unsigned shannon_fallbacks = 0;
  unsigned lmax_rounds = 0;     // Σ over committed engine runs
  /// Why selected vectors could not be decomposed as chosen, indexed by
  /// DecomposeError; the driver surfaces these instead of the old silent
  /// fallback.
  std::array<unsigned, kNumDecomposeErrors> errors{};
  unsigned error_count(DecomposeError e) const {
    return errors[static_cast<std::size_t>(e)];
  }
  unsigned total_errors() const {
    unsigned sum = 0;
    for (unsigned c : errors) sum += c;
    return sum;
  }
  /// Derived from the flow's `flow.decompose_to_luts` span (one timing
  /// source; see obs/trace.hpp).
  double seconds = 0.0;
  // BDD manager totals summed over every engine run of the flow, trial
  // decompositions included (they cost the same CPU as committed ones).
  std::uint64_t bdd_nodes = 0;
  std::uint64_t bdd_cache_lookups = 0;
  std::uint64_t bdd_cache_hits = 0;
  double cache_hit_rate() const {
    return bdd_cache_lookups ? static_cast<double>(bdd_cache_hits) /
                                   static_cast<double>(bdd_cache_lookups)
                             : 0.0;
  }
};

struct FlowResult {
  Network network;  // k-feasible
  FlowStats stats;
  DegradationReport degrade;  // empty unless a governed run tripped
  std::vector<RecordedVector> recorded;  // when FlowOptions::record_vectors
};

FlowResult decompose_to_luts(const Network& src, const FlowOptions& opts);

/// Collapse every output to a single node over its cone inputs (the paper's
/// starting point for Table 2's IMODEC/Single columns). Fails (nullopt) when
/// any cone support exceeds TruthTable::kMaxVars — the circuits the paper
/// marks with '*' behave the same way. A guard (optional, not owned) is
/// checkpointed once per output cone; an expired deadline throws
/// util::Timeout, which the degrade-mode driver turns into the restructure
/// path (DegradationReport::collapse_skipped).
std::optional<Network> collapse_network(const Network& src,
                                        util::ResourceGuard* guard = nullptr);

}  // namespace imodec
