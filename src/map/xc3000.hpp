#pragma once
// Xilinx XC3000 CLB packing (paper §7, "Technology Mapping for Xilinx
// XC3000").
//
// An XC3000 Configurable Logic Block has five logic inputs and two outputs
// and implements either (F mode) any single function of up to five
// variables, or (FG mode) two functions of up to four variables each whose
// combined support fits the five block inputs. Packing a 5-feasible network
// therefore means pairing <=4-input nodes whose supports overlap enough;
// we use a greedy maximum-overlap matching, which is the standard heuristic
// for this architecture.

#include "logic/network.hpp"

namespace imodec {

struct ClbPacking {
  unsigned clbs = 0;
  unsigned single_function_blocks = 0;  // F mode (or unpaired leftovers)
  unsigned paired_blocks = 0;           // FG mode
};

/// Pack a k<=5-feasible network into XC3000 CLBs. Nodes with more than five
/// fanins are rejected via assertion (run decompose_to_luts first).
ClbPacking pack_xc3000(const Network& net);

}  // namespace imodec
