#include "map/config.hpp"

#include "util/strings.hpp"

namespace imodec {

std::optional<VerifyMode> parse_verify_mode(std::string_view s) {
  if (s == "off") return VerifyMode::off;
  if (s == "sim") return VerifyMode::sim;
  if (s == "exact") return VerifyMode::exact;
  if (s == "auto") return VerifyMode::auto_;
  return std::nullopt;
}

std::optional<OnExhaustion> parse_on_exhaustion(std::string_view s) {
  if (s == "fail") return OnExhaustion::fail;
  if (s == "degrade") return OnExhaustion::degrade;
  return std::nullopt;
}

std::vector<std::string> SynthesisConfig::validate() const {
  std::vector<std::string> diags;
  const auto bad = [&](const char* fmt, auto... args) {
    diags.push_back(strprintf(fmt, args...));
  };

  if (k < 2 || k > 16) bad("k must be in [2, 16] (got %u)", k);
  if (max_vector_outputs == 0)
    bad("max_vector_outputs must be >= 1 (got 0)");
  if (max_vector_outputs > 64)
    bad("max_vector_outputs must be <= 64 (z-vertex masks are 64-bit; got %u)",
        max_vector_outputs);
  if (max_vector_inputs < k)
    bad("max_vector_inputs (%u) must be >= k (%u): a vector narrower than "
        "one LUT cannot occur",
        max_vector_inputs, k);
  if (max_vector_inputs > TruthTable::kMaxVars)
    bad("max_vector_inputs must be <= %u (TruthTable limit; got %u)",
        TruthTable::kMaxVars, max_vector_inputs);
  if (max_p == 0) bad("max_p must be >= 1 (got 0)");
  if (max_p > 64)
    bad("max_p must be <= 64 (global classes live in 64-bit masks; got %u)",
        max_p);
  if (bound_size == 0) bad("bound_size must be >= 1 (got 0)");
  if (bound_size > k)
    bad("bound_size (%u) must be <= k (%u): a d-node wider than one LUT "
        "could never be mapped",
        bound_size, k);
  if (eval_budget == 0) bad("eval_budget must be positive (got 0)");
  if (samples == 0) bad("samples must be >= 1 (got 0)");
  if (batch_groups == 0) bad("batch_groups must be >= 1 (got 0)");
  if (verify_node_budget == 0)
    bad("verify_node_budget must be positive (got 0)");
  if (restructure_max_support < 2)
    bad("restructure_max_support must be >= 2 (got %u)",
        restructure_max_support);
  if (restructure_passes == 0) bad("restructure_passes must be >= 1 (got 0)");
  if (result_cache && result_cache_entries == 0)
    bad("result_cache_entries must be >= 1 when result_cache is on (got 0)");
  if (result_cache_max_vars > TruthTable::kMaxVars)
    bad("result_cache_max_vars must be <= %u (TruthTable limit; got %u)",
        TruthTable::kMaxVars, result_cache_max_vars);
  return diags;
}

FlowOptions SynthesisConfig::flow_options() const {
  FlowOptions flow;
  flow.k = k;
  flow.multi_output = multi_output;
  flow.output_partitioning = output_partitioning;
  flow.max_vector_outputs = max_vector_outputs;
  flow.max_vector_inputs = max_vector_inputs;
  flow.max_group_trials = max_group_trials;
  flow.imodec.max_p = max_p;
  flow.imodec.strict = strict;
  flow.imodec.via_v_substitution = via_v_substitution;
  flow.varpart.bound_size = bound_size;
  flow.varpart.max_exhaustive = max_exhaustive;
  flow.varpart.samples = samples;
  flow.varpart.climb_iters = climb_iters;
  flow.varpart.eval_budget = eval_budget;
  flow.varpart.seed = seed;
  flow.batch_groups = batch_groups;
  flow.degrade = on_exhaustion == OnExhaustion::degrade;
  flow.cache_fingerprint = decomposition_fingerprint();
  // Cache-served decompositions are cross-checked by recompose() whenever
  // the run itself is verified exactly (exact, or auto's miter-first path).
  flow.cache_verify_hits =
      verify == VerifyMode::exact || verify == VerifyMode::auto_;
  // flow.guard and flow.npn_cache are runtime objects, wired by the driver
  // (driver.cpp) from the run's RunResources, not config values.
  return flow;
}

std::uint64_t SynthesisConfig::decomposition_fingerprint() const {
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  mix(k);
  mix(multi_output);
  mix(max_p);
  mix(strict);
  mix(via_v_substitution);
  mix(bound_size);
  mix(max_exhaustive);
  mix(samples);
  mix(climb_iters);
  mix(eval_budget);
  mix(seed);
  return h;
}

RestructureOptions SynthesisConfig::restructure_options() const {
  RestructureOptions r;
  r.max_support = restructure_max_support;
  r.max_fanout = restructure_max_fanout;
  r.passes = restructure_passes;
  return r;
}

}  // namespace imodec
