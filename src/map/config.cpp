#include "map/config.hpp"

#include "util/strings.hpp"

namespace imodec {

std::vector<std::string> SynthesisConfig::validate() const {
  std::vector<std::string> diags;
  const auto bad = [&](const char* fmt, auto... args) {
    diags.push_back(strprintf(fmt, args...));
  };

  if (k < 2 || k > 16) bad("k must be in [2, 16] (got %u)", k);
  if (max_vector_outputs == 0)
    bad("max_vector_outputs must be >= 1 (got 0)");
  if (max_vector_outputs > 64)
    bad("max_vector_outputs must be <= 64 (z-vertex masks are 64-bit; got %u)",
        max_vector_outputs);
  if (max_vector_inputs < k)
    bad("max_vector_inputs (%u) must be >= k (%u): a vector narrower than "
        "one LUT cannot occur",
        max_vector_inputs, k);
  if (max_vector_inputs > TruthTable::kMaxVars)
    bad("max_vector_inputs must be <= %u (TruthTable limit; got %u)",
        TruthTable::kMaxVars, max_vector_inputs);
  if (max_p == 0) bad("max_p must be >= 1 (got 0)");
  if (max_p > 64)
    bad("max_p must be <= 64 (global classes live in 64-bit masks; got %u)",
        max_p);
  if (bound_size == 0) bad("bound_size must be >= 1 (got 0)");
  if (bound_size > k)
    bad("bound_size (%u) must be <= k (%u): a d-node wider than one LUT "
        "could never be mapped",
        bound_size, k);
  if (eval_budget == 0) bad("eval_budget must be positive (got 0)");
  if (samples == 0) bad("samples must be >= 1 (got 0)");
  if (batch_groups == 0) bad("batch_groups must be >= 1 (got 0)");
  if (verify_node_budget == 0)
    bad("verify_node_budget must be positive (got 0)");
  return diags;
}

DriverOptions SynthesisConfig::lower() const {
  DriverOptions opts;
  opts.flow.k = k;
  opts.flow.multi_output = multi_output;
  opts.flow.output_partitioning = output_partitioning;
  opts.flow.max_vector_outputs = max_vector_outputs;
  opts.flow.max_vector_inputs = max_vector_inputs;
  opts.flow.max_group_trials = max_group_trials;
  opts.flow.imodec.max_p = max_p;
  opts.flow.imodec.strict = strict;
  opts.flow.imodec.via_v_substitution = via_v_substitution;
  opts.flow.varpart.bound_size = bound_size;
  opts.flow.varpart.max_exhaustive = max_exhaustive;
  opts.flow.varpart.samples = samples;
  opts.flow.varpart.climb_iters = climb_iters;
  opts.flow.varpart.eval_budget = eval_budget;
  opts.flow.varpart.seed = seed;
  opts.flow.batch_groups = batch_groups;
  opts.collapse = collapse;
  opts.classical = classical;
  opts.verify = verify;
  opts.verify_node_budget = verify_node_budget;
  opts.threads = threads;
  return opts;
}

}  // namespace imodec
