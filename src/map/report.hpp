#pragma once
// Unified machine-readable run report (DESIGN.md §13.3): one schema-versioned
// JSON document per synthesis run merging everything the session knows —
// config echo, result summary, degradation record, phase rollup, counters,
// gauges, histogram summaries, BDD kernel health and the flight-recorder
// tail. Written by SynthesisSession when SynthesisConfig::report_path is set
// (the CLI's --report), by the bench harnesses under --report-dir, and
// validated by tools/check_report_json.py.
//
// Schema stability: `schema_version` bumps on any incompatible change
// (removed/renamed key, changed type); adding keys is compatible and does
// not bump it. Consumers should key on {"report": "imodec_run"} plus the
// version.

#include <string>

#include "map/config.hpp"
#include "map/driver.hpp"
#include "obs/json.hpp"

namespace imodec {

/// Current value of the report's "schema_version" field.
inline constexpr int kRunReportSchemaVersion = 1;

/// Build the report document for one finished run. Pulls counters, gauges,
/// histograms and flight events from the process-wide observability state at
/// call time, so call it right after run_synthesis returns (and before the
/// next run resets or overwrites anything).
obs::Json build_run_report(const std::string& circuit,
                           const SynthesisConfig& cfg,
                           const DriverReport& rep);

/// build_run_report + pretty-printed write to `path`. Returns false on I/O
/// failure (callers surface the path in their own diagnostics).
bool write_run_report(const std::string& path, const std::string& circuit,
                      const SynthesisConfig& cfg, const DriverReport& rep);

}  // namespace imodec
