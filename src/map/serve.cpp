#include "map/serve.hpp"

#include <cmath>
#include <condition_variable>
#include <sstream>

#include "circuits/registry.hpp"
#include "logic/blif.hpp"
#include "logic/pla.hpp"
#include "obs/metrics.hpp"
#include "map/report.hpp"
#include "util/fault.hpp"

namespace imodec::serve {

namespace {

/// Exact non-negative integer (doubles are exact through 2^53; our wire
/// integers stay far below).
bool to_u64(const obs::Json& j, std::uint64_t& out) {
  if (!j.is_number()) return false;
  const double d = j.as_number();
  if (d < 0.0 || d != std::floor(d) || d > 9007199254740992.0) return false;
  out = static_cast<std::uint64_t>(d);
  return true;
}

/// Per-request config override; returns an error message or empty on
/// success. The allowed-key list is the wire contract (README "Serving"):
/// session properties (threads, result-cache sizing) and local-filesystem
/// knobs (report_path) are rejected explicitly, everything unknown generically.
std::string apply_config_key(SynthesisConfig& cfg, const std::string& key,
                             const obs::Json& v) {
  const auto want_bool = [&](bool& field) -> std::string {
    if (!v.is_bool()) return "config." + key + " must be a boolean";
    field = v.as_bool();
    return "";
  };
  const auto want_uint = [&](auto& field, std::uint64_t max) -> std::string {
    std::uint64_t u = 0;
    if (!to_u64(v, u) || u > max)
      return "config." + key + " must be an integer in [0, " +
             std::to_string(max) + "]";
    field = static_cast<std::remove_reference_t<decltype(field)>>(u);
    return "";
  };
  if (key == "k") return want_uint(cfg.k, 16);
  if (key == "multi_output") return want_bool(cfg.multi_output);
  if (key == "strict") return want_bool(cfg.strict);
  if (key == "classical") return want_bool(cfg.classical);
  if (key == "collapse") return want_bool(cfg.collapse);
  if (key == "result_cache") return want_bool(cfg.result_cache);
  if (key == "max_p") return want_uint(cfg.max_p, 64);
  if (key == "bound_size") return want_uint(cfg.bound_size, 16);
  if (key == "seed") return want_uint(cfg.seed, ~std::uint64_t{0} >> 1);
  if (key == "timeout_ms") return want_uint(cfg.timeout_ms, ~std::uint64_t{0} >> 1);
  if (key == "node_budget") return want_uint(cfg.node_budget, ~std::uint64_t{0} >> 1);
  if (key == "batch_groups") return want_uint(cfg.batch_groups, 1u << 20);
  if (key == "verify") {
    if (!v.is_string()) return "config.verify must be a string";
    const auto m = parse_verify_mode(v.as_string());
    if (!m) return "config.verify: unknown mode '" + v.as_string() + "'";
    cfg.verify = *m;
    return "";
  }
  if (key == "on_exhaustion") {
    if (!v.is_string()) return "config.on_exhaustion must be a string";
    const auto m = parse_on_exhaustion(v.as_string());
    if (!m) return "config.on_exhaustion: unknown policy '" + v.as_string() + "'";
    cfg.on_exhaustion = *m;
    return "";
  }
  if (key == "threads")
    return "config.threads is a session property: set it when starting "
           "imodec_served, not per request";
  if (key == "report_path")
    return "config.report_path is not available over the wire; the response "
           "embeds the run report";
  return "unknown config key '" + key + "'";
}

obs::Json error_response(const std::string& id, ErrorCode code,
                         const std::string& message) {
  obs::Json resp = obs::Json::object();
  resp["schema_version"] = kWireSchemaVersion;
  resp["id"] = id;
  resp["ok"] = false;
  resp["code"] = to_string(code);
  obs::Json err = obs::Json::object();
  err["code"] = to_string(code);
  err["message"] = message;
  resp["error"] = std::move(err);
  return resp;
}

/// Best-effort id extraction from a parsed request (error paths echo it).
std::string extract_id(const obs::Json* parsed) {
  if (parsed && parsed->is_object())
    if (const obs::Json* j = parsed->find("id"); j && j->is_string())
      return j->as_string();
  return "";
}

/// Disarm on every exit path once a request armed a fault plan.
struct FaultScope {
  bool armed = false;
  ~FaultScope() {
    if (armed) util::fault::disarm();
  }
};

}  // namespace

Engine::Engine(const SynthesisConfig& base) : base_(base), session_(base) {
  // Responses embed the unified run report; without observability its
  // counter/gauge/histogram sections would always be empty.
  obs::set_enabled(true);
}

obs::Json Engine::handle_line(const std::string& line,
                              std::uint64_t queue_wait_ms) {
  ++served_;
  const std::optional<obs::Json> parsed = obs::Json::parse(line);
  // Best-effort id echo even for malformed requests that did parse as JSON.
  std::string id = extract_id(parsed ? &*parsed : nullptr);
  const auto usage = [&](const std::string& msg) {
    return error_response(id, ErrorCode::usage, msg);
  };
  if (!parsed) return usage("request is not valid JSON");
  if (!parsed->is_object()) return usage("request must be a JSON object");

  // --- envelope ----------------------------------------------------------
  bool saw_version = false;
  const obs::Json* circuit = nullptr;
  const obs::Json* config = nullptr;
  const obs::Json* fault = nullptr;
  for (const auto& [key, value] : parsed->members()) {
    if (key == "schema_version") {
      std::uint64_t v = 0;
      if (!to_u64(value, v) || v < kWireSchemaVersionMin ||
          v > kWireSchemaVersion)
        return usage("schema_version must be in [" +
                     std::to_string(kWireSchemaVersionMin) + ", " +
                     std::to_string(kWireSchemaVersion) + "]");
      saw_version = true;
    } else if (key == "id") {
      if (!value.is_string()) return usage("id must be a string");
    } else if (key == "circuit") {
      if (!value.is_object()) return usage("circuit must be an object");
      circuit = &value;
    } else if (key == "config") {
      if (!value.is_object()) return usage("config must be an object");
      config = &value;
    } else if (key == "fault") {
      if (!value.is_object()) return usage("fault must be an object");
      fault = &value;
    } else {
      return usage("unknown request field '" + key + "'");
    }
  }
  if (!saw_version) return usage("missing schema_version");
  if (id.empty()) return usage("missing (or empty) id");
  if (!circuit) return usage("missing circuit");

  // --- circuit: exactly one of name / blif / pla -------------------------
  std::string name, blif, pla;
  for (const auto& [key, value] : circuit->members()) {
    if (!value.is_string())
      return usage("circuit." + key + " must be a string");
    if (key == "name")
      name = value.as_string();
    else if (key == "blif")
      blif = value.as_string();
    else if (key == "pla")
      pla = value.as_string();
    else
      return usage("unknown circuit field '" + key + "'");
  }
  const int sources = !name.empty() + !blif.empty() + !pla.empty();
  if (sources != 1)
    return usage("circuit needs exactly one of name / blif / pla");

  // --- per-request config ------------------------------------------------
  SynthesisConfig cfg = base_;
  cfg.report_path.clear();  // reports travel in the response, never to disk
  if (config)
    for (const auto& [key, value] : config->members())
      if (const std::string err = apply_config_key(cfg, key, value);
          !err.empty())
        return usage(err);

  // --- deadline propagation (DESIGN.md §15.2) ----------------------------
  // The request's timeout_ms budgets the *request*, not just the run: time
  // burnt waiting in the admission queue comes off the top, and a request
  // whose budget is already gone is dead work — reject it before arming a
  // guard or touching a manager.
  if (cfg.timeout_ms > 0 && queue_wait_ms > 0) {
    if (queue_wait_ms >= cfg.timeout_ms)
      return error_response(
          id, ErrorCode::timeout,
          "deadline expired in the admission queue (waited " +
              std::to_string(queue_wait_ms) + " ms of a " +
              std::to_string(cfg.timeout_ms) + " ms budget)");
    cfg.timeout_ms -= queue_wait_ms;
  }

  // --- optional fault plan (IMODEC_FAULT_INJECTION builds only) ----------
  util::fault::Plan plan;
  if (fault) {
    if (!util::fault::enabled())
      return usage("fault injection is not compiled into this build");
    for (const auto& [key, value] : fault->members()) {
      if (key == "kind") {
        if (!value.is_string()) return usage("fault.kind must be a string");
        const std::string& k = value.as_string();
        if (k == "bad_alloc")
          plan.kind = util::fault::Kind::bad_alloc;
        else if (k == "deadline")
          plan.kind = util::fault::Kind::deadline;
        else if (k == "node_budget")
          plan.kind = util::fault::Kind::node_budget;
        else if (k == "cancel")
          plan.kind = util::fault::Kind::cancel;
        else
          return usage("fault.kind: unknown kind '" + k + "'");
      } else if (key == "at") {
        if (!to_u64(value, plan.at)) return usage("fault.at must be an integer");
      } else {
        return usage("unknown fault field '" + key + "'");
      }
    }
    if (plan.kind == util::fault::Kind::none)
      return usage("fault needs a kind");
  }

  // --- resolve the circuit -----------------------------------------------
  Network input;
  try {
    if (!name.empty()) {
      std::optional<Network> net = circuits::make_benchmark(name);
      if (!net) return usage("unknown benchmark circuit '" + name + "'");
      input = std::move(*net);
    } else if (!blif.empty()) {
      std::istringstream is(blif);
      input = read_blif(is);
    } else {
      std::istringstream is(pla);
      input = read_pla(is);
    }
  } catch (const ParseError& e) {
    return error_response(id, ErrorCode::parse, e.what());
  }

  // --- run ---------------------------------------------------------------
  FaultScope fault_scope;
  if (fault) {
    util::fault::arm(plan);
    fault_scope.armed = true;
  }
  Network mapped;
  const SynthesisSession::Outcome out = session_.run_checked(input, cfg, mapped);

  obs::Json resp = obs::Json::object();
  resp["schema_version"] = kWireSchemaVersion;
  resp["id"] = id;
  resp["ok"] = out.code == ErrorCode::ok;
  resp["code"] = to_string(out.code);
  if (out.code != ErrorCode::ok) {
    obs::Json err = obs::Json::object();
    err["code"] = to_string(out.code);
    err["message"] = out.message;
    resp["error"] = std::move(err);
  }
  if (out.report) {
    const std::string circuit_name = !name.empty() ? name : input.name();
    resp["report"] = build_run_report(circuit_name, cfg, *out.report);
  }
  return resp;
}

std::string Engine::handle_line_text(const std::string& line,
                                     std::uint64_t queue_wait_ms) {
  return handle_line(line, queue_wait_ms).dump(-1);
}

// --- Server: admission control, drain, control verbs (DESIGN.md §15) --------

Server::Server(const SynthesisConfig& base, const ServerOptions& opts)
    : opts_(opts), queue_(opts.queue_capacity) {
  const unsigned workers = opts_.workers ? opts_.workers : 1;
  engines_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i)
    engines_.push_back(std::make_unique<Engine>(base));
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i)
    threads_.emplace_back([this, i] { worker_loop(i); });
}

Server::~Server() { drain(); }

obs::Json Server::overloaded_response(const std::string& id,
                                      const std::string& why) const {
  obs::Json resp = obs::Json::object();
  resp["schema_version"] = kWireSchemaVersion;
  resp["id"] = id;
  resp["ok"] = false;
  resp["code"] = to_string(ErrorCode::overloaded);
  obs::Json err = obs::Json::object();
  err["code"] = to_string(ErrorCode::overloaded);
  err["message"] = why;
  // The client's backoff hint rides inside the error object so v1 consumers
  // (which ignore unknown response keys) stay compatible.
  err["retry_after_ms"] = opts_.retry_after_ms;
  resp["error"] = std::move(err);
  return resp;
}

std::unique_ptr<obs::Json> Server::try_control(const obs::Json* parsed,
                                               const std::string& id) {
  if (!parsed || !parsed->is_object() || !parsed->find("control"))
    return nullptr;
  const auto usage = [&](const std::string& msg) {
    return std::make_unique<obs::Json>(
        error_response(id, ErrorCode::usage, msg));
  };
  // Control requests are a v2-only closed schema: version + id + verb.
  std::string verb;
  bool saw_version = false;
  for (const auto& [key, value] : parsed->members()) {
    if (key == "schema_version") {
      if (!value.is_number() || value.as_number() != kWireSchemaVersion)
        return usage("control requests require schema_version " +
                     std::to_string(kWireSchemaVersion));
      saw_version = true;
    } else if (key == "id") {
      if (!value.is_string()) return usage("id must be a string");
    } else if (key == "control") {
      if (!value.is_string()) return usage("control must be a string");
      verb = value.as_string();
    } else {
      return usage("unknown control request field '" + key + "'");
    }
  }
  if (!saw_version) return usage("missing schema_version");
  if (id.empty()) return usage("missing (or empty) id");
  if (verb != "health" && verb != "stats" && verb != "drain")
    return usage("unknown control verb '" + verb + "'");

  control_.fetch_add(1, std::memory_order_relaxed);
  if (verb == "drain") request_drain();

  auto resp = std::make_unique<obs::Json>(obs::Json::object());
  (*resp)["schema_version"] = kWireSchemaVersion;
  (*resp)["id"] = id;
  (*resp)["ok"] = true;
  (*resp)["code"] = to_string(ErrorCode::ok);
  (*resp)["control"] = verb;
  if (verb == "stats") {
    (*resp)["status"] = stats_json();
  } else {
    obs::Json status = obs::Json::object();
    status["state"] = draining() ? "draining" : "serving";
    status["workers"] = workers();
    status["queue_depth"] = static_cast<std::uint64_t>(queue_.size());
    status["queue_capacity"] =
        static_cast<std::uint64_t>(queue_.capacity());
    (*resp)["status"] = std::move(status);
  }
  return resp;
}

void Server::submit(std::string line, Done done) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  // One parse up front covers id extraction for every inline answer
  // (control / shed / drain); admitted circuit requests are re-parsed by the
  // worker's Engine — the double parse is noise next to a synthesis run.
  const std::optional<obs::Json> parsed = obs::Json::parse(line);
  const std::string id = extract_id(parsed ? &*parsed : nullptr);

  if (auto control = try_control(parsed ? &*parsed : nullptr, id)) {
    done(control->dump(-1));
    return;
  }
  if (draining()) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    by_code_[exit_code(ErrorCode::overloaded)].fetch_add(
        1, std::memory_order_relaxed);
    done(overloaded_response(id, "server is draining").dump(-1));
    return;
  }
  Job job;
  job.line = std::move(line);
  job.done = std::move(done);
  job.enqueued = std::chrono::steady_clock::now();
  if (!queue_.try_push(std::move(job))) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    by_code_[exit_code(ErrorCode::overloaded)].fetch_add(
        1, std::memory_order_relaxed);
    // try_push moved from `job` only on success; on failure the Done we
    // still hold answers the shed inline.
    job.done(overloaded_response(id, "admission queue is full").dump(-1));
  }
}

std::string Server::handle(const std::string& line) {
  std::mutex mu;
  std::condition_variable cv;
  std::string out;
  bool ready = false;
  submit(line, [&](const std::string& resp) {
    // Notify under the lock: these synchronization objects live on the
    // caller's stack, and once `ready` is observable the caller may return
    // and destroy them — an unlocked notify could still be touching cv.
    std::lock_guard<std::mutex> lock(mu);
    out = resp;
    ready = true;
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return ready; });
  return out;
}

void Server::worker_loop(std::size_t self) {
  Engine& engine = *engines_[self];
  while (auto job = queue_.pop()) {
    const auto wait = std::chrono::steady_clock::now() - job->enqueued;
    const std::uint64_t wait_ms = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(wait).count());
    finish(*job, engine.handle_line(job->line, wait_ms));
  }
}

void Server::finish(const Job& job, const obs::Json& resp) {
  completed_.fetch_add(1, std::memory_order_relaxed);
  if (const obs::Json* code = resp.find("code"); code && code->is_string()) {
    if (const auto parsed = parse_error_code(code->as_string())) {
      by_code_[exit_code(*parsed)].fetch_add(1, std::memory_order_relaxed);
      if (*parsed == ErrorCode::timeout) {
        // Distinguish queue-expiry from run timeouts for the stats verb.
        if (const obs::Json* err = resp.find("error"))
          if (const obs::Json* msg = err->find("message");
              msg && msg->is_string() &&
              msg->as_string().find("admission queue") != std::string::npos)
            expired_in_queue_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  job.done(resp.dump(-1));
}

void Server::request_drain() {
  std::call_once(drain_once_, [this] {
    draining_.store(true, std::memory_order_release);
    // Everything still queued is answered, not run: the client gets a typed
    // retry hint instead of waiting on a server that is going away.
    for (Job& job : queue_.close_and_drain()) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      by_code_[exit_code(ErrorCode::overloaded)].fetch_add(
          1, std::memory_order_relaxed);
      const std::optional<obs::Json> parsed = obs::Json::parse(job.line);
      job.done(overloaded_response(extract_id(parsed ? &*parsed : nullptr),
                                   "server is draining")
                   .dump(-1));
    }
  });
}

void Server::drain() {
  request_drain();
  std::call_once(join_once_, [this] {
    for (std::thread& t : threads_)
      if (t.joinable()) t.join();
  });
}

obs::Json Server::stats_json() const {
  obs::Json s = obs::Json::object();
  s["state"] = draining() ? "draining" : "serving";
  s["workers"] = workers();
  s["queue_depth"] = static_cast<std::uint64_t>(queue_.size());
  s["queue_capacity"] = static_cast<std::uint64_t>(queue_.capacity());
  s["retry_after_ms"] = opts_.retry_after_ms;
  s["uptime_ms"] = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - started_)
          .count());
  s["submitted"] = submitted_.load(std::memory_order_relaxed);
  s["completed"] = completed_.load(std::memory_order_relaxed);
  s["shed"] = shed_.load(std::memory_order_relaxed);
  s["expired_in_queue"] = expired_in_queue_.load(std::memory_order_relaxed);
  s["control"] = control_.load(std::memory_order_relaxed);
  obs::Json by_code = obs::Json::object();
  for (int i = 0; i < kNumErrorCodes; ++i) {
    const std::uint64_t n = by_code_[i].load(std::memory_order_relaxed);
    if (n) by_code[to_string(static_cast<ErrorCode>(i))] = n;
  }
  s["by_code"] = std::move(by_code);
  return s;
}

// --- RestartPolicy ----------------------------------------------------------

RestartPolicy::Decision RestartPolicy::on_crash(std::uint64_t uptime_ms) {
  ++total_crashes_;
  if (uptime_ms >= opts_.stable_uptime_ms)
    fast_crashes_ = 0;  // it was serving fine; restart the ladder
  ++fast_crashes_;
  Decision d;
  if (fast_crashes_ > opts_.give_up_after) {
    d.give_up = true;
    return d;
  }
  // 100, 200, 400, ... capped; the first crash after a stable run waits the
  // base backoff only.
  std::uint64_t backoff = opts_.base_backoff_ms;
  for (unsigned i = 1; i < fast_crashes_ && backoff < opts_.max_backoff_ms;
       ++i)
    backoff *= 2;
  d.backoff_ms = std::min(backoff, opts_.max_backoff_ms);
  return d;
}

}  // namespace imodec::serve
