#include "map/serve.hpp"

#include <cmath>
#include <sstream>

#include "circuits/registry.hpp"
#include "logic/blif.hpp"
#include "logic/pla.hpp"
#include "obs/metrics.hpp"
#include "map/report.hpp"
#include "util/fault.hpp"

namespace imodec::serve {

namespace {

/// Exact non-negative integer (doubles are exact through 2^53; our wire
/// integers stay far below).
bool to_u64(const obs::Json& j, std::uint64_t& out) {
  if (!j.is_number()) return false;
  const double d = j.as_number();
  if (d < 0.0 || d != std::floor(d) || d > 9007199254740992.0) return false;
  out = static_cast<std::uint64_t>(d);
  return true;
}

/// Per-request config override; returns an error message or empty on
/// success. The allowed-key list is the wire contract (README "Serving"):
/// session properties (threads, result-cache sizing) and local-filesystem
/// knobs (report_path) are rejected explicitly, everything unknown generically.
std::string apply_config_key(SynthesisConfig& cfg, const std::string& key,
                             const obs::Json& v) {
  const auto want_bool = [&](bool& field) -> std::string {
    if (!v.is_bool()) return "config." + key + " must be a boolean";
    field = v.as_bool();
    return "";
  };
  const auto want_uint = [&](auto& field, std::uint64_t max) -> std::string {
    std::uint64_t u = 0;
    if (!to_u64(v, u) || u > max)
      return "config." + key + " must be an integer in [0, " +
             std::to_string(max) + "]";
    field = static_cast<std::remove_reference_t<decltype(field)>>(u);
    return "";
  };
  if (key == "k") return want_uint(cfg.k, 16);
  if (key == "multi_output") return want_bool(cfg.multi_output);
  if (key == "strict") return want_bool(cfg.strict);
  if (key == "classical") return want_bool(cfg.classical);
  if (key == "collapse") return want_bool(cfg.collapse);
  if (key == "result_cache") return want_bool(cfg.result_cache);
  if (key == "max_p") return want_uint(cfg.max_p, 64);
  if (key == "bound_size") return want_uint(cfg.bound_size, 16);
  if (key == "seed") return want_uint(cfg.seed, ~std::uint64_t{0} >> 1);
  if (key == "timeout_ms") return want_uint(cfg.timeout_ms, ~std::uint64_t{0} >> 1);
  if (key == "node_budget") return want_uint(cfg.node_budget, ~std::uint64_t{0} >> 1);
  if (key == "batch_groups") return want_uint(cfg.batch_groups, 1u << 20);
  if (key == "verify") {
    if (!v.is_string()) return "config.verify must be a string";
    const auto m = parse_verify_mode(v.as_string());
    if (!m) return "config.verify: unknown mode '" + v.as_string() + "'";
    cfg.verify = *m;
    return "";
  }
  if (key == "on_exhaustion") {
    if (!v.is_string()) return "config.on_exhaustion must be a string";
    const auto m = parse_on_exhaustion(v.as_string());
    if (!m) return "config.on_exhaustion: unknown policy '" + v.as_string() + "'";
    cfg.on_exhaustion = *m;
    return "";
  }
  if (key == "threads")
    return "config.threads is a session property: set it when starting "
           "imodec_served, not per request";
  if (key == "report_path")
    return "config.report_path is not available over the wire; the response "
           "embeds the run report";
  return "unknown config key '" + key + "'";
}

obs::Json error_response(const std::string& id, ErrorCode code,
                         const std::string& message) {
  obs::Json resp = obs::Json::object();
  resp["schema_version"] = kWireSchemaVersion;
  resp["id"] = id;
  resp["ok"] = false;
  resp["code"] = to_string(code);
  obs::Json err = obs::Json::object();
  err["code"] = to_string(code);
  err["message"] = message;
  resp["error"] = std::move(err);
  return resp;
}

/// Disarm on every exit path once a request armed a fault plan.
struct FaultScope {
  bool armed = false;
  ~FaultScope() {
    if (armed) util::fault::disarm();
  }
};

}  // namespace

Engine::Engine(const SynthesisConfig& base) : base_(base), session_(base) {
  // Responses embed the unified run report; without observability its
  // counter/gauge/histogram sections would always be empty.
  obs::set_enabled(true);
}

obs::Json Engine::handle_line(const std::string& line) {
  ++served_;
  const std::optional<obs::Json> parsed = obs::Json::parse(line);
  // Best-effort id echo even for malformed requests that did parse as JSON.
  std::string id;
  if (parsed && parsed->is_object())
    if (const obs::Json* j = parsed->find("id"); j && j->is_string())
      id = j->as_string();
  const auto usage = [&](const std::string& msg) {
    return error_response(id, ErrorCode::usage, msg);
  };
  if (!parsed) return usage("request is not valid JSON");
  if (!parsed->is_object()) return usage("request must be a JSON object");

  // --- envelope ----------------------------------------------------------
  bool saw_version = false;
  const obs::Json* circuit = nullptr;
  const obs::Json* config = nullptr;
  const obs::Json* fault = nullptr;
  for (const auto& [key, value] : parsed->members()) {
    if (key == "schema_version") {
      std::uint64_t v = 0;
      if (!to_u64(value, v) || v != kWireSchemaVersion)
        return usage("schema_version must be " +
                     std::to_string(kWireSchemaVersion));
      saw_version = true;
    } else if (key == "id") {
      if (!value.is_string()) return usage("id must be a string");
    } else if (key == "circuit") {
      if (!value.is_object()) return usage("circuit must be an object");
      circuit = &value;
    } else if (key == "config") {
      if (!value.is_object()) return usage("config must be an object");
      config = &value;
    } else if (key == "fault") {
      if (!value.is_object()) return usage("fault must be an object");
      fault = &value;
    } else {
      return usage("unknown request field '" + key + "'");
    }
  }
  if (!saw_version) return usage("missing schema_version");
  if (id.empty()) return usage("missing (or empty) id");
  if (!circuit) return usage("missing circuit");

  // --- circuit: exactly one of name / blif / pla -------------------------
  std::string name, blif, pla;
  for (const auto& [key, value] : circuit->members()) {
    if (!value.is_string())
      return usage("circuit." + key + " must be a string");
    if (key == "name")
      name = value.as_string();
    else if (key == "blif")
      blif = value.as_string();
    else if (key == "pla")
      pla = value.as_string();
    else
      return usage("unknown circuit field '" + key + "'");
  }
  const int sources = !name.empty() + !blif.empty() + !pla.empty();
  if (sources != 1)
    return usage("circuit needs exactly one of name / blif / pla");

  // --- per-request config ------------------------------------------------
  SynthesisConfig cfg = base_;
  cfg.report_path.clear();  // reports travel in the response, never to disk
  if (config)
    for (const auto& [key, value] : config->members())
      if (const std::string err = apply_config_key(cfg, key, value);
          !err.empty())
        return usage(err);

  // --- optional fault plan (IMODEC_FAULT_INJECTION builds only) ----------
  util::fault::Plan plan;
  if (fault) {
    if (!util::fault::enabled())
      return usage("fault injection is not compiled into this build");
    for (const auto& [key, value] : fault->members()) {
      if (key == "kind") {
        if (!value.is_string()) return usage("fault.kind must be a string");
        const std::string& k = value.as_string();
        if (k == "bad_alloc")
          plan.kind = util::fault::Kind::bad_alloc;
        else if (k == "deadline")
          plan.kind = util::fault::Kind::deadline;
        else if (k == "node_budget")
          plan.kind = util::fault::Kind::node_budget;
        else if (k == "cancel")
          plan.kind = util::fault::Kind::cancel;
        else
          return usage("fault.kind: unknown kind '" + k + "'");
      } else if (key == "at") {
        if (!to_u64(value, plan.at)) return usage("fault.at must be an integer");
      } else {
        return usage("unknown fault field '" + key + "'");
      }
    }
    if (plan.kind == util::fault::Kind::none)
      return usage("fault needs a kind");
  }

  // --- resolve the circuit -----------------------------------------------
  Network input;
  try {
    if (!name.empty()) {
      std::optional<Network> net = circuits::make_benchmark(name);
      if (!net) return usage("unknown benchmark circuit '" + name + "'");
      input = std::move(*net);
    } else if (!blif.empty()) {
      std::istringstream is(blif);
      input = read_blif(is);
    } else {
      std::istringstream is(pla);
      input = read_pla(is);
    }
  } catch (const ParseError& e) {
    return error_response(id, ErrorCode::parse, e.what());
  }

  // --- run ---------------------------------------------------------------
  FaultScope fault_scope;
  if (fault) {
    util::fault::arm(plan);
    fault_scope.armed = true;
  }
  Network mapped;
  const SynthesisSession::Outcome out = session_.run_checked(input, cfg, mapped);

  obs::Json resp = obs::Json::object();
  resp["schema_version"] = kWireSchemaVersion;
  resp["id"] = id;
  resp["ok"] = out.code == ErrorCode::ok;
  resp["code"] = to_string(out.code);
  if (out.code != ErrorCode::ok) {
    obs::Json err = obs::Json::object();
    err["code"] = to_string(out.code);
    err["message"] = out.message;
    resp["error"] = std::move(err);
  }
  if (out.report) {
    const std::string circuit_name = !name.empty() ? name : input.name();
    resp["report"] = build_run_report(circuit_name, cfg, *out.report);
  }
  return resp;
}

std::string Engine::handle_line_text(const std::string& line) {
  return handle_line(line).dump(-1);
}

}  // namespace imodec::serve
