#pragma once
// The one typed error surface of the synthesis service (PR: serving layer).
//
// The CLI exit-code table (README "Exit codes"), SynthesisSession::run_checked
// and the imodec_served JSON responses all speak this enum, so no consumer
// re-derives codes from exception types ad hoc. The numeric values ARE the
// CLI exit codes — keep the table in sync with README.md and imodec_cli.cpp's
// header comment.

#include <optional>
#include <string_view>

namespace imodec {

enum class ErrorCode : int {
  ok = 0,             ///< success (network verified, or verification off)
  verify_failed = 1,  ///< equivalence check failed / unclassified error
  usage = 2,          ///< invalid configuration or malformed request
  parse = 3,          ///< malformed input circuit (BLIF/PLA ParseError)
  timeout = 4,        ///< wall-clock deadline exceeded (on_exhaustion=fail)
  resource = 5,       ///< memory / node budget exhausted (on_exhaustion=fail)
  decompose = 6,      ///< terminal decomposition failure (defensive)
  overloaded = 7,     ///< serving: admission queue full / draining — retry later
};

inline constexpr int kNumErrorCodes = 8;

/// The numeric value doubles as the CLI exit code.
constexpr int exit_code(ErrorCode c) { return static_cast<int>(c); }

constexpr std::string_view to_string(ErrorCode c) {
  switch (c) {
    case ErrorCode::ok: return "ok";
    case ErrorCode::verify_failed: return "verify_failed";
    case ErrorCode::usage: return "usage";
    case ErrorCode::parse: return "parse";
    case ErrorCode::timeout: return "timeout";
    case ErrorCode::resource: return "resource";
    case ErrorCode::decompose: return "decompose";
    case ErrorCode::overloaded: return "overloaded";
  }
  return "unknown";
}

/// Parse the wire spelling back ("ok", "timeout", ...); nullopt otherwise.
constexpr std::optional<ErrorCode> parse_error_code(std::string_view s) {
  for (int i = 0; i < kNumErrorCodes; ++i) {
    const auto c = static_cast<ErrorCode>(i);
    if (s == to_string(c)) return c;
  }
  return std::nullopt;
}

}  // namespace imodec
