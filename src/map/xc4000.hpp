#pragma once
// Xilinx XC4000 CLB packing — an extension target beyond the paper's XC3000
// experiments (DESIGN.md §7).
//
// An XC4000 CLB contains two 4-input function generators (F and G) and a
// third 3-input generator (H) that can combine F, G and one extra input.
// Usable patterns for combinational packing:
//   * one node with <= 4 inputs in F (G/H unused),
//   * two independent nodes with <= 4 inputs each (F and G),
//   * a node h(f(...), g(...), x) where f and g have <= 4 inputs and h is a
//     <= 3-input combiner — i.e. a 2-level cone of up to 9 distinct inputs.
// The packer first matches H-patterns structurally (a node with <= 3 fanins
// whose LUT fanins have <= 4 inputs and single fanout), then pairs leftovers.

#include "logic/network.hpp"

namespace imodec {

struct Xc4000Packing {
  unsigned clbs = 0;
  unsigned h_patterns = 0;      // 2-level cones absorbed into one CLB
  unsigned paired_blocks = 0;   // two independent small nodes
  unsigned single_blocks = 0;   // one node per CLB
};

/// Pack a 4-feasible network (run decompose_to_luts with k = 4 first) into
/// XC4000 CLBs. Nodes with more than four fanins are rejected by assertion.
Xc4000Packing pack_xc4000(const Network& net);

}  // namespace imodec
