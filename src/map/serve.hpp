#pragma once
// Synthesis-as-a-service front end (DESIGN.md §14).
//
// serve::Engine turns one warm SynthesisSession into a request/response
// service: each request is a line of JSON naming a circuit (benchmark
// registry name, inline BLIF, or inline PLA) plus per-request config
// overrides; each response is one line of JSON with the typed outcome
// (map/errors.hpp) and — on success — the unified run report
// (map/report.hpp) embedded verbatim. tools/imodec_served.cpp wraps this in
// a stdin/stdout or Unix-socket loop; bench/bench_serve.cpp drives it
// in-process.
//
// Wire schema (kWireSchemaVersion, validated by tools/check_request_json.py;
// full field table in README "Serving"): unknown fields anywhere in a
// request are rejected with a typed `usage` error rather than ignored, so a
// client typo ("timeout" for "timeout_ms") can never silently change
// behavior. The schema version bumps on any incompatible change; adding
// optional request fields or response keys is compatible.

#include <string>

#include "map/session.hpp"
#include "obs/json.hpp"

namespace imodec::serve {

/// Version stamped on (and required of) every request and response.
inline constexpr int kWireSchemaVersion = 1;

/// One warm service instance: a SynthesisSession (thread pool, recycled BDD
/// managers, NPN result cache when the base config enables it) plus the
/// request parser / response builder. Not thread-safe; one Engine serves one
/// connection at a time.
class Engine {
 public:
  /// Pre: base.validate().empty(). The base config is what requests override
  /// per field; threads / result-cache sizing are session properties fixed
  /// here.
  explicit Engine(const SynthesisConfig& base);

  /// Parse one request line, run it, and return the response document.
  /// Never throws: every failure becomes an error response with a valid
  /// ErrorCode spelling.
  obs::Json handle_line(const std::string& line);

  /// handle_line + compact one-line serialization (no trailing newline).
  std::string handle_line_text(const std::string& line);

  /// Requests served so far (all outcomes).
  std::uint64_t served() const { return served_; }

  SynthesisSession& session() { return session_; }
  const SynthesisConfig& base_config() const { return base_; }

 private:
  SynthesisConfig base_;
  SynthesisSession session_;
  std::uint64_t served_ = 0;
};

}  // namespace imodec::serve
