#pragma once
// Synthesis-as-a-service front end (DESIGN.md §14, §15).
//
// serve::Engine turns one warm SynthesisSession into a request/response
// service: each request is a line of JSON naming a circuit (benchmark
// registry name, inline BLIF, or inline PLA) plus per-request config
// overrides; each response is one line of JSON with the typed outcome
// (map/errors.hpp) and — on success — the unified run report
// (map/report.hpp) embedded verbatim.
//
// serve::Server stacks the overload-resilience layer on top (DESIGN.md §15):
// a bounded admission queue feeding a fixed pool of worker threads (one warm
// Engine each). Admission is never blocking — a full queue sheds with a typed
// `overloaded` response carrying `retry_after_ms`, queue wait is subtracted
// from the request's own `timeout_ms` before the run is armed (already-dead
// work is rejected at dequeue with a typed `timeout`), and request_drain()
// flips the server into drain mode: no new admissions, queued requests
// answered `overloaded`, in-flight requests finish. tools/imodec_served.cpp
// wraps all of this in a stdin/stdout or Unix-socket loop;
// bench/bench_serve.cpp drives both layers in-process.
//
// Wire schema (kWireSchemaVersion = 2, validated by
// tools/check_request_json.py; full field table in README "Serving"):
// unknown fields anywhere in a request are rejected with a typed `usage`
// error rather than ignored, so a client typo ("timeout" for "timeout_ms")
// can never silently change behavior. Version 1 circuit requests are still
// accepted (v2 is a superset); responses always stamp version 2. New in v2:
//   - control verbs: {"schema_version":2,"id":...,"control":"health|stats|
//     drain"} answered inline by the Server (never queued, so health checks
//     work under full-queue overload);
//   - the `overloaded` error code, whose error object carries
//     `retry_after_ms` — the client's backoff hint.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "map/session.hpp"
#include "obs/json.hpp"
#include "util/bounded_queue.hpp"

namespace imodec::serve {

/// Version stamped on every response; the ceiling for requests.
inline constexpr int kWireSchemaVersion = 2;
/// Oldest request version still accepted (v1 = PR 7 circuit requests).
inline constexpr int kWireSchemaVersionMin = 1;

/// One warm service instance: a SynthesisSession (thread pool, recycled BDD
/// managers, NPN result cache when the base config enables it) plus the
/// request parser / response builder. Not thread-safe; one Engine serves one
/// request at a time (the Server gives each worker thread its own Engine).
class Engine {
 public:
  /// Pre: base.validate().empty(). The base config is what requests override
  /// per field; threads / result-cache sizing are session properties fixed
  /// here.
  explicit Engine(const SynthesisConfig& base);

  /// Parse one request line, run it, and return the response document.
  /// Never throws: every failure becomes an error response with a valid
  /// ErrorCode spelling.
  ///
  /// `queue_wait_ms` is the time the request spent queued before this call
  /// (0 when unqueued): it is subtracted from the request's effective
  /// `timeout_ms` so a deadline covers queue wait + run, and a request whose
  /// deadline already passed in the queue is rejected with a typed `timeout`
  /// before any cycles are spent on it.
  obs::Json handle_line(const std::string& line,
                        std::uint64_t queue_wait_ms = 0);

  /// handle_line + compact one-line serialization (no trailing newline).
  std::string handle_line_text(const std::string& line,
                               std::uint64_t queue_wait_ms = 0);

  /// Requests served so far (all outcomes).
  std::uint64_t served() const { return served_; }

  SynthesisSession& session() { return session_; }
  const SynthesisConfig& base_config() const { return base_; }

 private:
  SynthesisConfig base_;
  SynthesisSession session_;
  std::uint64_t served_ = 0;
};

struct ServerOptions {
  /// Worker threads, each owning one warm Engine (its own SynthesisSession:
  /// thread pool, manager pool, NPN cache). Capacity = workers concurrent
  /// runs + queue_capacity queued requests; everything beyond that sheds.
  unsigned workers = 1;
  /// Admission queue depth (0 = queue nothing: a request is either picked up
  /// immediately or shed).
  std::size_t queue_capacity = 16;
  /// Backoff hint stamped into `overloaded` responses.
  std::uint64_t retry_after_ms = 50;
};

/// The overload-resilient serving core: admission control + drain semantics
/// over a pool of warm Engines. Thread-safe: submit()/handle() may be called
/// from any number of transport threads concurrently.
class Server {
 public:
  /// Callback invoked exactly once per submitted line with the response
  /// text. Runs inline in submit() for shed/control/drain responses, on a
  /// worker thread otherwise — it must be thread-safe and should be cheap
  /// (it holds a worker lane while it runs).
  using Done = std::function<void(const std::string&)>;

  Server(const SynthesisConfig& base, const ServerOptions& opts);
  /// Drains (queued requests answered `overloaded`, in-flight finished).
  ~Server();

  /// Admit one request line. Control verbs and shed/drain rejections are
  /// answered inline; admitted circuit requests are answered from a worker
  /// thread. Never blocks on synthesis work.
  void submit(std::string line, Done done);

  /// Blocking convenience (transports that want one response per request in
  /// request order): submit + wait. With one outstanding request per caller
  /// thread, at most `callers` requests compete for the queue.
  std::string handle(const std::string& line);

  /// Enter drain mode (idempotent, non-blocking): stop admitting, answer
  /// everything still queued with `overloaded`, let in-flight requests
  /// finish. Workers exit once the queue is empty.
  void request_drain();

  /// request_drain() + wait for all in-flight work to finish and workers to
  /// exit. After drain() returns, every Done callback has been called.
  void drain();

  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  /// Live serving stats (the `stats` control verb's status object):
  /// submitted/completed/shed/queue-expired totals, per-code tallies, queue
  /// depth/capacity, workers, drain state.
  obs::Json stats_json() const;

  unsigned workers() const { return static_cast<unsigned>(engines_.size()); }
  const ServerOptions& options() const { return opts_; }

 private:
  struct Job {
    std::string line;
    Done done;
    std::chrono::steady_clock::time_point enqueued;
  };

  void worker_loop(std::size_t self);
  void finish(const Job& job, const obs::Json& resp);
  obs::Json overloaded_response(const std::string& id,
                                const std::string& why) const;
  /// nullptr when `line` is not a control request; otherwise the inline
  /// response (also handles malformed control requests as typed usage).
  std::unique_ptr<obs::Json> try_control(const obs::Json* parsed,
                                         const std::string& id);

  ServerOptions opts_;
  std::vector<std::unique_ptr<Engine>> engines_;
  util::BoundedQueue<Job> queue_;
  std::vector<std::thread> threads_;
  std::atomic<bool> draining_{false};
  std::once_flag drain_once_;
  std::once_flag join_once_;

  // Serving counters (relaxed: monotone tallies, read by stats_json).
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> expired_in_queue_{0};
  std::atomic<std::uint64_t> control_{0};
  std::atomic<std::uint64_t> by_code_[kNumErrorCodes] = {};
  std::chrono::steady_clock::time_point started_ =
      std::chrono::steady_clock::now();
};

/// Supervisor restart policy (tools/imodec_served --supervise): exponential
/// backoff over consecutive fast crashes, ladder reset after a stable run,
/// give-up once a crash loop is evident. Pure state machine — unit-testable
/// without forking anything (tests/test_serve.cpp).
class RestartPolicy {
 public:
  struct Options {
    std::uint64_t base_backoff_ms = 100;
    std::uint64_t max_backoff_ms = 5000;
    /// A worker that survived this long gets a fresh ladder on its next
    /// crash (it was serving fine; the crash is news, not a loop).
    std::uint64_t stable_uptime_ms = 10000;
    /// Consecutive fast crashes (uptime < stable_uptime_ms) before the
    /// supervisor stops restarting.
    unsigned give_up_after = 8;
  };

  struct Decision {
    bool give_up = false;
    std::uint64_t backoff_ms = 0;
  };

  RestartPolicy() = default;
  explicit RestartPolicy(const Options& opts) : opts_(opts) {}

  /// Record one worker crash (call only for abnormal exits) and decide.
  Decision on_crash(std::uint64_t uptime_ms);

  unsigned consecutive_fast_crashes() const { return fast_crashes_; }
  std::uint64_t total_crashes() const { return total_crashes_; }
  const Options& options() const { return opts_; }

 private:
  Options opts_;
  unsigned fast_crashes_ = 0;
  std::uint64_t total_crashes_ = 0;
};

}  // namespace imodec::serve
