#pragma once
// SynthesisConfig: the one validated knob surface of the pipeline.
//
// The library internally still layers FlowOptions -> ImodecOptions /
// VarPartOptions, but embedders and the CLI should not have to know which
// struct a knob lives in, and none of the nested structs can check
// cross-cutting invariants (e.g. max_vector_inputs >= k). This struct
// flattens every user-facing knob, validates the whole set with
// human-readable diagnostics, and lowers to the nested structs in one place
// (flow_options() / restructure_options(), called by the driver).

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "map/lutflow.hpp"
#include "map/restructure.hpp"

namespace imodec {

/// How the driver checks the mapped network against its input.
enum class VerifyMode : std::uint8_t {
  off,    ///< skip the check entirely
  sim,    ///< simulation: exhaustive up to 16 inputs, sampled beyond
  exact,  ///< BDD miter proof, no node budget (exact at any input count)
  auto_,  ///< miter within SynthesisConfig::verify_node_budget, else sim
};

constexpr std::string_view to_string(VerifyMode m) {
  switch (m) {
    case VerifyMode::off: return "off";
    case VerifyMode::sim: return "sim";
    case VerifyMode::exact: return "exact";
    case VerifyMode::auto_: return "auto";
  }
  return "?";
}

/// Parse "off" / "sim" / "exact" / "auto"; nullopt otherwise.
std::optional<VerifyMode> parse_verify_mode(std::string_view s);

/// What a governed run does when it hits its deadline or node budget
/// (DESIGN.md §12).
enum class OnExhaustion : std::uint8_t {
  fail,     ///< throw util::Timeout / util::ResourceExhausted out of the run
  degrade,  ///< walk the degradation ladder; always return a verified network
};

constexpr std::string_view to_string(OnExhaustion e) {
  switch (e) {
    case OnExhaustion::fail: return "fail";
    case OnExhaustion::degrade: return "degrade";
  }
  return "?";
}

/// Parse "fail" / "degrade"; nullopt otherwise.
std::optional<OnExhaustion> parse_on_exhaustion(std::string_view s);

struct SynthesisConfig {
  // --- LUT flow ------------------------------------------------------------
  unsigned k = 5;                    ///< LUT input count (XC3000: 5)
  bool multi_output = true;          ///< false = "Single" baseline
  bool output_partitioning = true;   ///< greedy §7 grouping
  unsigned max_vector_outputs = 8;   ///< m cap per vector
  unsigned max_vector_inputs = 18;   ///< input-union cap per vector
  unsigned max_group_trials = 6;     ///< grouping attempts per vector

  // --- Engine --------------------------------------------------------------
  std::uint32_t max_p = 64;          ///< global class cap (64-bit z masks)
  bool strict = false;               ///< one code per local class
  bool via_v_substitution = false;   ///< paper-faithful ψ construction

  // --- Bound-set search ----------------------------------------------------
  unsigned bound_size = 5;           ///< b; clamped to n-1 at run time
  std::size_t max_exhaustive = 4096;
  std::size_t samples = 64;
  std::size_t climb_iters = 48;
  std::uint64_t eval_budget = std::uint64_t{1} << 24;
  std::uint64_t seed = 0xB0D5ull;

  // --- Driver --------------------------------------------------------------
  /// Collapse the network first (the paper's default). Falls back to
  /// restructuring when a cone exceeds the truth-table limit (the paper's
  /// '*' circuits). When false, restructure unconditionally.
  bool collapse = true;
  /// Classical two-step flow (paper §1): technology-independent kernel
  /// extraction first, then per-output decomposition. Implies no collapsing
  /// and single-output mode — the baseline IMODEC's combined approach is
  /// pitched against.
  bool classical = false;
  /// Equivalence check of the result: off / sim / exact / auto. `auto_` (the
  /// default) proves equivalence with the BDD miter (src/verify/miter)
  /// whenever the build fits `verify_node_budget` live nodes and falls back
  /// to simulation otherwise.
  VerifyMode verify = VerifyMode::auto_;
  /// Live BDD-node cap for the miter when verify == auto (~16 B/node).
  std::size_t verify_node_budget = std::size_t{1} << 21;

  // --- Resource governance (DESIGN.md §12) ----------------------------------
  /// Wall-clock deadline for the whole run in milliseconds; 0 = none.
  std::uint64_t timeout_ms = 0;
  /// Live BDD-node budget per governed manager (~16 bytes/node); 0 = none.
  /// Enforced inside the kernel with a GC retry before tripping.
  std::size_t node_budget = 0;
  /// fail: a trip escapes run_synthesis as util::Timeout /
  /// util::ResourceExhausted. degrade: the flow falls back (engine -> single
  /// -> Shannon, drain mode past the deadline) and the DriverReport's
  /// DegradationReport records what happened.
  OnExhaustion on_exhaustion = OnExhaustion::fail;

  // --- NPN result cache (DESIGN.md §14) --------------------------------------
  /// Serve repeated decomposition work from the session's result cache
  /// (map/npn_cache.hpp): singleton decompositions and own-cost baselines by
  /// NPN class, multi-output vectors and grouping trials by exact function
  /// tuple. Off by default: with the cache on, cached functions are priced /
  /// decomposed through their canonical representatives, so results can
  /// differ from cache-off runs; cache-on results are themselves
  /// deterministic and bit-identical between warm and cold caches.
  bool result_cache = false;
  /// Bounded LRU capacity of the result cache (entries).
  std::size_t result_cache_entries = 4096;
  /// Functions wider than this bypass the cache (canonization is O(n 2^n)).
  /// The default covers the flow's widest vector trials (max_vector_inputs).
  unsigned result_cache_max_vars = 18;

  // --- Observability (DESIGN.md §13) ----------------------------------------
  /// When non-empty, write the unified run report (schema-versioned JSON:
  /// config echo, phase rollup, counters, histogram summaries, kernel
  /// health, degradation, verify outcome, flight events) here after each
  /// run. Implies observability is enabled for the session.
  std::string report_path;
  /// Emit a stderr heartbeat every `progress_ms` milliseconds while a run is
  /// in flight (phase, elapsed, live BDD nodes, budget/deadline fractions).
  /// 0 (default) = off.
  std::uint64_t progress_ms = 0;

  // --- Restructuring (used when collapsing is off or falls back) -----------
  unsigned restructure_max_support = 10;  ///< fanin cap after elimination
  unsigned restructure_max_fanout = 1;    ///< 1 = never duplicate logic
  unsigned restructure_passes = 4;

  // --- Parallel runtime ----------------------------------------------------
  /// Execution width (threads incl. the caller); 0 = hardware concurrency,
  /// 1 = serial. Results are identical for every value.
  unsigned threads = 0;
  /// Groups decomposed concurrently per worklist round; affects results the
  /// way a seed does (deterministically), never per thread count.
  unsigned batch_groups = 8;

  /// Validate the whole configuration. Returns one human-readable line per
  /// violation ("k must be in [2, 16] (got 1)"); empty means valid. The CLI
  /// prints these instead of asserting deep inside the pipeline.
  std::vector<std::string> validate() const;

  /// Lower to the nested option structs (pre: validate().empty()).
  FlowOptions flow_options() const;
  RestructureOptions restructure_options() const;

  /// Hash of every knob that can change a singleton decomposition result —
  /// the NPN result cache keys on it, so one cache instance can serve
  /// requests with differing configs without cross-config contamination.
  std::uint64_t decomposition_fingerprint() const;
};

}  // namespace imodec
