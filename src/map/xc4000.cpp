#include "map/xc4000.hpp"

#include <algorithm>
#include <cassert>

namespace imodec {

Xc4000Packing pack_xc4000(const Network& net) {
  // Live logic nodes and their fanout counts.
  std::vector<bool> live(net.node_count(), false);
  {
    std::vector<SigId> stack(net.outputs().begin(), net.outputs().end());
    while (!stack.empty()) {
      const SigId s = stack.back();
      stack.pop_back();
      if (live[s]) continue;
      live[s] = true;
      for (SigId f : net.node(s).fanins) stack.push_back(f);
    }
  }
  std::vector<unsigned> fanout(net.node_count(), 0);
  for (SigId s = 0; s < net.node_count(); ++s) {
    if (!live[s]) continue;
    for (SigId f : net.node(s).fanins) ++fanout[f];
  }
  std::vector<bool> is_output(net.node_count(), false);
  for (SigId o : net.outputs()) is_output[o] = true;

  const auto is_logic = [&](SigId s) {
    return live[s] && net.node(s).kind == Network::Kind::Logic &&
           !net.node(s).fanins.empty();
  };

  Xc4000Packing result;
  std::vector<bool> packed(net.node_count(), false);

  // Pass 1: H patterns. A root with <= 3 fanins, of which up to two are
  // single-fanout internal LUTs with <= 4 inputs (they become F and G).
  for (SigId s = 0; s < net.node_count(); ++s) {
    if (!is_logic(s) || packed[s]) continue;
    const auto& root = net.node(s);
    assert(root.fanins.size() <= 4 && "network is not 4-feasible");
    if (root.fanins.size() > 3) continue;
    std::vector<SigId> absorb;
    for (SigId f : root.fanins) {
      if (!is_logic(f) || packed[f]) continue;
      if (fanout[f] != 1 || is_output[f]) continue;
      if (net.node(f).fanins.size() > 4) continue;
      if (std::find(absorb.begin(), absorb.end(), f) != absorb.end())
        continue;
      absorb.push_back(f);
      if (absorb.size() == 2) break;
    }
    if (absorb.empty()) continue;
    packed[s] = true;
    for (SigId f : absorb) packed[f] = true;
    ++result.h_patterns;
    ++result.clbs;
  }

  // Pass 2: pair the remaining nodes (F and G generators are independent,
  // so any two <= 4-input nodes fit one CLB).
  std::vector<SigId> rest;
  for (SigId s = 0; s < net.node_count(); ++s)
    if (is_logic(s) && !packed[s]) rest.push_back(s);
  result.paired_blocks = static_cast<unsigned>(rest.size() / 2);
  result.single_blocks = static_cast<unsigned>(rest.size() % 2);
  result.clbs += result.paired_blocks + result.single_blocks;
  return result;
}

}  // namespace imodec
