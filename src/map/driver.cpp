#include "map/driver.hpp"

#include <optional>

#include "logic/simulate.hpp"
#include "obs/metrics.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace imodec {

DriverReport run_synthesis(const Network& input, const DriverOptions& opts,
                           Network& mapped) {
  // Resolve the runtime width here so a width-1 run never pays for thread
  // creation; the overload below does the actual work.
  const unsigned resolved =
      opts.threads ? opts.threads : std::thread::hardware_concurrency();
  std::optional<util::ThreadPool> pool;
  if (resolved > 1) pool.emplace(resolved);
  return run_synthesis(input, opts, mapped, pool ? &*pool : nullptr);
}

DriverReport run_synthesis(const Network& input, const DriverOptions& opts,
                           Network& mapped, util::ThreadPool* pool) {
  DriverReport rep;
  const std::size_t trace_base = obs::Trace::global().size();
  obs::ScopedSpan run_span("driver.run_synthesis");

  Network start = input;
  if (opts.classical) {
    // Classical flow: extract common subfunctions algebraically, then map
    // each node on its own.
    obs::ScopedSpan span("driver.restructure+extract");
    start = restructure(input, opts.restructure);
    opt::extract_kernels(start);
  } else if (opts.collapse) {
    obs::ScopedSpan span("driver.collapse");
    if (auto flat = collapse_network(input)) {
      start = std::move(*flat);
      rep.collapsed = true;
    } else {
      start = restructure(input, opts.restructure);
    }
  } else {
    obs::ScopedSpan span("driver.restructure");
    start = restructure(input, opts.restructure);
  }

  FlowOptions flow_opts = opts.flow;
  if (opts.classical) flow_opts.multi_output = false;
  flow_opts.pool = pool;
  FlowResult flow = decompose_to_luts(start, flow_opts);
  rep.flow = flow.stats;
  {
    obs::ScopedSpan span("driver.pack");
    rep.clbs = pack_xc3000(flow.network);
    rep.depth = flow.network.depth();
  }

  if (opts.verify) {
    obs::ScopedSpan span("driver.verify");
    const auto eq = check_equivalence(input, flow.network);
    rep.verified = eq.equivalent;
    rep.verified_exhaustive = eq.exhaustive;
  }
  mapped = std::move(flow.network);

  if (obs::enabled()) {
    obs::count("driver.runs");
    rep.spans = obs::Trace::global().snapshot_since(trace_base);
    // The root span is still open (its ScopedSpan ends on return); close it
    // in the copy so the report shows the full run time.
    for (obs::Span& s : rep.spans)
      if (s.dur < 0 && s.name == "driver.run_synthesis")
        s.dur = run_span.seconds();
    rep.counters = obs::Registry::instance().counters();
  }
  return rep;
}

std::string format_report(const std::string& name, const DriverReport& rep) {
  std::string s;
  s += strprintf("circuit        : %s\n", name.c_str());
  s += strprintf("starting point : %s\n",
                 rep.collapsed ? "collapsed" : "restructured");
  s += strprintf("LUTs           : %u\n", rep.flow.luts);
  s += strprintf("XC3000 CLBs    : %u (%u FG-paired, %u single)\n",
                 rep.clbs.clbs, rep.clbs.paired_blocks,
                 rep.clbs.single_function_blocks);
  s += strprintf("logic depth    : %u\n", rep.depth);
  s += strprintf("vectors        : %u (max m=%u, max p=%u, saved=%u)\n",
                 rep.flow.vectors, rep.flow.max_m, rep.flow.max_p,
                 rep.flow.shared_functions);
  if (rep.flow.total_errors() > 0 || rep.flow.shannon_fallbacks > 0) {
    s += strprintf("fallbacks      : %u shannon", rep.flow.shannon_fallbacks);
    for (unsigned i = 0; i < kNumDecomposeErrors; ++i) {
      const auto e = static_cast<DecomposeError>(i);
      if (rep.flow.error_count(e))
        s += strprintf(", %u %s", rep.flow.error_count(e),
                       std::string(to_string(e)).c_str());
    }
    s += "\n";
  }
  s += strprintf("flow time      : %.3f s\n", rep.flow.seconds);
  if (rep.flow.bdd_cache_lookups > 0)
    s += strprintf("BDD            : %llu nodes, %.1f%% cache hit rate, "
                   "%u Lmax rounds\n",
                   static_cast<unsigned long long>(rep.flow.bdd_nodes),
                   100.0 * rep.flow.cache_hit_rate(), rep.flow.lmax_rounds);
  s += strprintf("equivalence    : %s\n",
                 rep.verified ? "PASS" : "FAIL");
  if (!rep.spans.empty()) {
    s += "--- phases (total ms x calls) ---\n";
    s += obs::trace_summary(rep.spans);
  }
  if (!rep.counters.empty()) {
    s += "--- counters ---\n";
    for (const auto& [name, value] : rep.counters)
      s += strprintf("  %-36s %12llu\n", name.c_str(),
                     static_cast<unsigned long long>(value));
  }
  return s;
}

}  // namespace imodec
