#include "map/driver.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <optional>
#include <thread>

#include "logic/simulate.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "util/resource.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"
#include "verify/miter.hpp"

namespace imodec {

namespace {

/// Stderr heartbeat (SynthesisConfig::progress_ms): while a run is in
/// flight, one line every period with the current pipeline phase, elapsed
/// wall time and — on governed runs — the guard's live-node count against
/// its budget and the milliseconds left on the deadline. The thread is only
/// created when a period is set; destruction joins it, so a run that
/// finishes (or unwinds) between beats never leaves a stray writer.
class ProgressHeartbeat {
 public:
  ProgressHeartbeat(std::uint64_t period_ms, const util::ResourceGuard* guard)
      : guard_(guard), start_(std::chrono::steady_clock::now()) {
    if (period_ms > 0)
      thread_ = std::thread([this, period_ms] { loop(period_ms); });
  }
  ~ProgressHeartbeat() {
    if (!thread_.joinable()) return;
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }
  ProgressHeartbeat(const ProgressHeartbeat&) = delete;
  ProgressHeartbeat& operator=(const ProgressHeartbeat&) = delete;

  /// `name` must be a string literal (stored, not copied).
  void set_phase(const char* name) {
    phase_.store(name, std::memory_order_relaxed);
  }

 private:
  void loop(std::uint64_t period_ms) {
    std::unique_lock<std::mutex> lock(mu_);
    while (!cv_.wait_for(lock, std::chrono::milliseconds(period_ms),
                         [this] { return stop_; })) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start_)
              .count();
      std::string line =
          strprintf("imodec: %8.2fs phase=%s", elapsed,
                    phase_.load(std::memory_order_relaxed));
      if (guard_) {
        const auto live = guard_->live_nodes();
        line += strprintf(" live_nodes=%lld", static_cast<long long>(live));
        if (const std::size_t budget = guard_->node_budget())
          line += strprintf(" budget_used=%.0f%%",
                            100.0 * static_cast<double>(live) /
                                static_cast<double>(budget));
        if (const auto ms = guard_->remaining_ms())
          line += strprintf(" deadline_left_ms=%llu",
                            static_cast<unsigned long long>(*ms));
      }
      std::fprintf(stderr, "%s\n", line.c_str());
    }
  }

  const util::ResourceGuard* guard_;
  std::chrono::steady_clock::time_point start_;
  std::atomic<const char*> phase_{"setup"};
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

/// Run the configured equivalence check and fill the report's verify
/// fields. Counters: flow.verify.exact / .sim count which engine produced
/// the verdict, flow.verify.fallback counts auto-mode budget misses, and
/// flow.verify.fail counts failed verdicts.
///
/// Governance: an expired deadline downgrades the miter to (sampled)
/// simulation in degrade mode — recorded as DegradationReport::
/// verify_downgraded — and throws util::Timeout in fail mode. The miter
/// itself runs under the outer guard's remaining deadline (MiterOptions::
/// guard), so a mid-proof expiry also lands here instead of running long.
void run_verification(const Network& input, const Network& mapped,
                      const SynthesisConfig& opts, util::ResourceGuard* guard,
                      bool degrade, DriverReport& rep) {
  const auto downgrade_or_throw = [&]() {
    // Deadline hit around the miter: fail mode rethrows via checkpoint();
    // degrade mode falls back to simulation and records the downgrade.
    if (!degrade) guard->checkpoint();
    rep.degrade.verify_downgraded = true;
    rep.degrade.note("verification downgraded to simulation (deadline)");
    obs::count("flow.verify.downgraded");
  };
  bool done = false;
  bool want_miter =
      opts.verify == VerifyMode::exact || opts.verify == VerifyMode::auto_;
  if (want_miter && guard) {
    guard->poll_deadline();
    if (guard->should_stop()) {
      downgrade_or_throw();
      want_miter = false;
    }
  }
  if (want_miter) {
    verify::MiterOptions mopts;
    if (opts.verify == VerifyMode::auto_)
      mopts.node_budget = opts.verify_node_budget;
    mopts.guard = guard;
    const verify::MiterResult mr = verify::check_miter(input, mapped, mopts);
    if (mr.proven) {
      rep.verify_mode = VerifyMode::exact;
      rep.verify_proven = true;
      rep.verified = mr.equivalent;
      rep.verified_exhaustive = true;
      rep.counterexample = mr.counterexample;
      obs::count("flow.verify.exact");
      done = true;
    } else {
      obs::count("flow.verify.fallback");
      if (guard && (guard->poll_deadline(), guard->should_stop()))
        downgrade_or_throw();
    }
  }
  if (!done) {
    const auto eq = check_equivalence(input, mapped);
    rep.verify_mode = VerifyMode::sim;
    rep.verified = eq.equivalent;
    rep.verified_exhaustive = eq.exhaustive;
    rep.counterexample = eq.counterexample;
    obs::count("flow.verify.sim");
  }
  if (!rep.verified) obs::count("flow.verify.fail");
}

/// The pipeline proper, minus the flight-recorder envelope that the public
/// run_synthesis wraps around it (enable + clear + dump-on-unwind).
DriverReport run_synthesis_governed(const Network& input,
                                    const SynthesisConfig& opts,
                                    Network& mapped,
                                    const RunResources& res) {
  util::ThreadPool* const pool = res.pool;
  DriverReport rep;
  const std::size_t trace_base = obs::Trace::global().size();
  obs::ScopedSpan run_span("driver.run_synthesis");

  // One guard per run (shared by every worker of its pool); no knobs set
  // means no guard and zero per-operation overhead.
  std::optional<util::ResourceGuard> guard_store;
  if (opts.timeout_ms || opts.node_budget) {
    guard_store.emplace();
    if (opts.timeout_ms) guard_store->set_deadline_ms(opts.timeout_ms);
    if (opts.node_budget) guard_store->set_node_budget(opts.node_budget);
  }
  util::ResourceGuard* const guard = guard_store ? &*guard_store : nullptr;
  const bool degrade = opts.on_exhaustion == OnExhaustion::degrade;

  // Phase transitions go to both consumers at once: the heartbeat line and
  // the flight recorder (ordinal in `a`, so a dump shows how far a tripped
  // run got).
  ProgressHeartbeat heartbeat(opts.progress_ms, guard);
  std::uint64_t phase_ord = 0;
  const auto enter_phase = [&](const char* name) {
    heartbeat.set_phase(name);
    obs::flight(obs::FlightKind::phase, name, ++phase_ord);
  };

  RestructureOptions ropts = opts.restructure_options();
  ropts.guard = guard;
  ropts.degrade = degrade;
  ropts.stopped_early = &rep.degrade.restructure_stopped_early;

  Network start = input;
  if (opts.classical) {
    // Classical flow: extract common subfunctions algebraically, then map
    // each node on its own.
    obs::ScopedSpan span("driver.restructure+extract");
    enter_phase("restructure+extract");
    start = restructure(input, ropts);
    opt::extract_kernels(start);
  } else if (opts.collapse) {
    obs::ScopedSpan span("driver.collapse");
    enter_phase("collapse");
    std::optional<Network> flat;
    try {
      flat = collapse_network(input, guard);
    } catch (const util::ResourceExhausted&) {
      // Degrade: treat like the paper's '*' circuits — fall back to the
      // (cheaper, governed) restructuring path. Fail: unwind to the caller.
      if (!degrade) throw;
      rep.degrade.collapse_skipped = true;
      rep.degrade.note("collapse abandoned (deadline); restructuring instead");
      obs::flight(obs::FlightKind::rung, "collapse_skipped");
    }
    if (flat) {
      start = std::move(*flat);
      rep.collapsed = true;
    } else {
      enter_phase("restructure");
      start = restructure(input, ropts);
    }
  } else {
    obs::ScopedSpan span("driver.restructure");
    enter_phase("restructure");
    start = restructure(input, ropts);
  }

  FlowOptions flow_opts = opts.flow_options();
  if (opts.classical) flow_opts.multi_output = false;
  flow_opts.pool = pool;
  flow_opts.guard = guard;
  if (opts.result_cache) flow_opts.npn_cache = res.npn_cache;
  flow_opts.imodec.manager_pool = res.managers;
  enter_phase("decompose");
  FlowResult flow = decompose_to_luts(start, flow_opts);
  rep.flow = flow.stats;
  rep.degrade.merge(flow.degrade);
  {
    obs::ScopedSpan span("driver.pack");
    enter_phase("pack");
    rep.clbs = pack_xc3000(flow.network);
    rep.depth = flow.network.depth();
  }

  if (opts.verify != VerifyMode::off) {
    obs::ScopedSpan span("driver.verify");
    enter_phase("verify");
    run_verification(input, flow.network, opts, guard, degrade, rep);
  }
  enter_phase("finish");
  mapped = std::move(flow.network);
  if (guard) {
    guard->poll_deadline();
    rep.degrade.deadline_expired = guard->deadline_expired();
    if (obs::enabled()) {
      obs::count("flow.resource.checkpoints", guard->checkpoints());
      if (guard->peak_live_nodes() > 0)
        obs::count("flow.resource.peak_live_nodes",
                   static_cast<std::uint64_t>(guard->peak_live_nodes()));
    }
  }

  if (obs::enabled()) {
    obs::count("driver.runs");
    rep.spans = obs::Trace::global().snapshot_since(trace_base);
    // The root span is still open (its ScopedSpan ends on return); close it
    // in the copy so the report shows the full run time.
    for (obs::Span& s : rep.spans)
      if (s.dur < 0 && s.name == "driver.run_synthesis")
        s.dur = run_span.seconds();
    rep.counters = obs::Registry::instance().counters();
  }
  return rep;
}

}  // namespace

DriverReport run_synthesis(const Network& input, const SynthesisConfig& opts,
                           Network& mapped) {
  // Resolve the runtime width here so a width-1 run never pays for thread
  // creation; the overload below does the actual work.
  const unsigned resolved =
      opts.threads ? opts.threads : std::thread::hardware_concurrency();
  std::optional<util::ThreadPool> pool;
  if (resolved > 1) pool.emplace(resolved);
  return run_synthesis(input, opts, mapped, pool ? &*pool : nullptr);
}

DriverReport run_synthesis(const Network& input, const SynthesisConfig& opts,
                           Network& mapped, util::ThreadPool* pool) {
  RunResources res;
  res.pool = pool;
  return run_synthesis(input, opts, mapped, res);
}

DriverReport run_synthesis(const Network& input, const SynthesisConfig& opts,
                           Network& mapped, const RunResources& res) {
  // Flight recording is forced on for every governed or progress-reporting
  // run (and whenever observability is on), so a Timeout/ResourceExhausted
  // unwind leaves a post-mortem trail even in an otherwise obs-off process.
  const bool governed = opts.timeout_ms || opts.node_budget;
  obs::FlightEnableScope flight_scope(governed || opts.progress_ms > 0 ||
                                      obs::enabled());
  if (obs::flight_enabled()) obs::FlightRecorder::instance().clear();
  try {
    return run_synthesis_governed(input, opts, mapped, res);
  } catch (const util::ResourceExhausted& e) {
    // Record the trip itself, then dump the ring to stderr as one compact
    // JSON line before the exception escapes (DESIGN.md §13.2). Timeout
    // derives from ResourceExhausted, so exit codes 4 and 5 both land here,
    // as do fault-injection trips (they throw the same types).
    obs::flight(obs::FlightKind::trip, util::to_string(e.kind()));
    if (obs::flight_enabled())
      std::fprintf(stderr,
                   "imodec: resource trip (%s); flight recorder dump:\n%s\n",
                   util::to_string(e.kind()),
                   obs::flight_dump_json().dump(-1).c_str());
    throw;
  }
}

std::string format_report(const std::string& name, const DriverReport& rep) {
  std::string s;
  s += strprintf("circuit        : %s\n", name.c_str());
  s += strprintf("starting point : %s\n",
                 rep.collapsed ? "collapsed" : "restructured");
  s += strprintf("LUTs           : %u\n", rep.flow.luts);
  s += strprintf("XC3000 CLBs    : %u (%u FG-paired, %u single)\n",
                 rep.clbs.clbs, rep.clbs.paired_blocks,
                 rep.clbs.single_function_blocks);
  s += strprintf("logic depth    : %u\n", rep.depth);
  s += strprintf("vectors        : %u (max m=%u, max p=%u, saved=%u)\n",
                 rep.flow.vectors, rep.flow.max_m, rep.flow.max_p,
                 rep.flow.shared_functions);
  if (rep.flow.total_errors() > 0 || rep.flow.shannon_fallbacks > 0) {
    s += strprintf("fallbacks      : %u shannon", rep.flow.shannon_fallbacks);
    for (unsigned i = 0; i < kNumDecomposeErrors; ++i) {
      const auto e = static_cast<DecomposeError>(i);
      if (rep.flow.error_count(e))
        s += strprintf(", %u %s", rep.flow.error_count(e),
                       std::string(to_string(e)).c_str());
    }
    s += "\n";
  }
  if (rep.degrade.degraded()) {
    const auto& d = rep.degrade;
    s += strprintf(
        "degraded       : %u engine-exhausted, %u single, %u shannon, "
        "%u drained%s%s%s%s\n",
        d.engine_exhausted, d.single_fallbacks, d.shannon_degrades, d.drained,
        d.deadline_expired ? ", deadline expired" : "",
        d.collapse_skipped ? ", collapse skipped" : "",
        d.restructure_stopped_early ? ", restructure stopped early" : "",
        d.verify_downgraded ? ", verify downgraded" : "");
    for (const std::string& e : d.events) s += strprintf("  - %s\n", e.c_str());
  }
  s += strprintf("flow time      : %.3f s\n", rep.flow.seconds);
  if (rep.flow.bdd_cache_lookups > 0)
    s += strprintf("BDD            : %llu nodes, %.1f%% cache hit rate, "
                   "%u Lmax rounds\n",
                   static_cast<unsigned long long>(rep.flow.bdd_nodes),
                   100.0 * rep.flow.cache_hit_rate(), rep.flow.lmax_rounds);
  if (rep.verify_mode == VerifyMode::off) {
    s += "equivalence    : skipped\n";
  } else {
    const char* strength = rep.verify_proven           ? "miter proof"
                           : rep.verified_exhaustive   ? "exhaustive simulation"
                                                       : "sampled simulation";
    s += strprintf("equivalence    : %s (%s)\n",
                   rep.verified ? "PASS" : "FAIL", strength);
  }
  if (!rep.spans.empty()) {
    s += "--- phases (total ms x calls) ---\n";
    s += obs::trace_summary(rep.spans);
  }
  if (!rep.counters.empty()) {
    s += "--- counters ---\n";
    for (const auto& [name, value] : rep.counters)
      s += strprintf("  %-36s %12llu\n", name.c_str(),
                     static_cast<unsigned long long>(value));
  }
  return s;
}

}  // namespace imodec
