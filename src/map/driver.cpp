#include "map/driver.hpp"

#include "logic/simulate.hpp"
#include "util/strings.hpp"

namespace imodec {

DriverReport run_synthesis(const Network& input, const DriverOptions& opts,
                           Network& mapped) {
  DriverReport rep;

  Network start = input;
  if (opts.classical) {
    // Classical flow: extract common subfunctions algebraically, then map
    // each node on its own.
    start = restructure(input, opts.restructure);
    opt::extract_kernels(start);
  } else if (opts.collapse) {
    if (auto flat = collapse_network(input)) {
      start = std::move(*flat);
      rep.collapsed = true;
    } else {
      start = restructure(input, opts.restructure);
    }
  } else {
    start = restructure(input, opts.restructure);
  }

  FlowOptions flow_opts = opts.flow;
  if (opts.classical) flow_opts.multi_output = false;
  FlowResult flow = decompose_to_luts(start, flow_opts);
  rep.flow = flow.stats;
  rep.clbs = pack_xc3000(flow.network);
  rep.depth = flow.network.depth();

  if (opts.verify) {
    const auto eq = check_equivalence(input, flow.network);
    rep.verified = eq.equivalent;
    rep.verified_exhaustive = eq.exhaustive;
  }
  mapped = std::move(flow.network);
  return rep;
}

std::string format_report(const std::string& name, const DriverReport& rep) {
  std::string s;
  s += strprintf("circuit        : %s\n", name.c_str());
  s += strprintf("starting point : %s\n",
                 rep.collapsed ? "collapsed" : "restructured");
  s += strprintf("LUTs           : %u\n", rep.flow.luts);
  s += strprintf("XC3000 CLBs    : %u (%u FG-paired, %u single)\n",
                 rep.clbs.clbs, rep.clbs.paired_blocks,
                 rep.clbs.single_function_blocks);
  s += strprintf("logic depth    : %u\n", rep.depth);
  s += strprintf("vectors        : %u (max m=%u, max p=%u, saved=%u)\n",
                 rep.flow.vectors, rep.flow.max_m, rep.flow.max_p,
                 rep.flow.shared_functions);
  s += strprintf("flow time      : %.3f s\n", rep.flow.seconds);
  s += strprintf("equivalence    : %s\n",
                 rep.verified ? "PASS" : "FAIL");
  return s;
}

}  // namespace imodec
