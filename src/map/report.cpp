#include "map/report.hpp"

#include <algorithm>
#include <optional>

#include "bdd/manager.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace imodec {

namespace {

obs::Json config_json(const SynthesisConfig& c) {
  obs::Json j = obs::Json::object();
  j["k"] = c.k;
  j["multi_output"] = c.multi_output;
  j["output_partitioning"] = c.output_partitioning;
  j["max_vector_outputs"] = c.max_vector_outputs;
  j["max_vector_inputs"] = c.max_vector_inputs;
  j["max_group_trials"] = c.max_group_trials;
  j["max_p"] = c.max_p;
  j["strict"] = c.strict;
  j["via_v_substitution"] = c.via_v_substitution;
  j["bound_size"] = c.bound_size;
  j["max_exhaustive"] = c.max_exhaustive;
  j["samples"] = c.samples;
  j["climb_iters"] = c.climb_iters;
  j["eval_budget"] = c.eval_budget;
  j["seed"] = c.seed;
  j["collapse"] = c.collapse;
  j["classical"] = c.classical;
  j["verify"] = to_string(c.verify);
  j["verify_node_budget"] = c.verify_node_budget;
  j["timeout_ms"] = c.timeout_ms;
  j["node_budget"] = c.node_budget;
  j["on_exhaustion"] = to_string(c.on_exhaustion);
  j["threads"] = c.threads;
  j["batch_groups"] = c.batch_groups;
  j["result_cache"] = c.result_cache;
  j["result_cache_entries"] = c.result_cache_entries;
  j["result_cache_max_vars"] = c.result_cache_max_vars;
  return j;
}

obs::Json result_json(const DriverReport& r) {
  obs::Json j = obs::Json::object();
  j["collapsed"] = r.collapsed;
  j["luts"] = r.flow.luts;
  j["clbs"] = r.clbs.clbs;
  j["clb_paired_blocks"] = r.clbs.paired_blocks;
  j["clb_single_blocks"] = r.clbs.single_function_blocks;
  j["depth"] = r.depth;
  j["vectors"] = r.flow.vectors;
  j["max_m"] = r.flow.max_m;
  j["max_p"] = r.flow.max_p;
  j["shared_functions"] = r.flow.shared_functions;
  j["shannon_fallbacks"] = r.flow.shannon_fallbacks;
  j["lmax_rounds"] = r.flow.lmax_rounds;
  j["flow_seconds"] = r.flow.seconds;
  j["bdd_nodes"] = r.flow.bdd_nodes;
  j["bdd_cache_hit_rate"] = r.flow.cache_hit_rate();
  j["verify_mode"] = to_string(r.verify_mode);
  j["verified"] = r.verified;
  j["verified_exhaustive"] = r.verified_exhaustive;
  j["verify_proven"] = r.verify_proven;
  return j;
}

obs::Json degrade_json(const DegradationReport& d) {
  obs::Json j = obs::Json::object();
  j["degraded"] = d.degraded();
  j["deadline_expired"] = d.deadline_expired;
  j["engine_exhausted"] = d.engine_exhausted;
  j["single_fallbacks"] = d.single_fallbacks;
  j["shannon_degrades"] = d.shannon_degrades;
  j["drained"] = d.drained;
  j["restructure_stopped_early"] = d.restructure_stopped_early;
  j["collapse_skipped"] = d.collapse_skipped;
  j["verify_downgraded"] = d.verify_downgraded;
  obs::Json events = obs::Json::array();
  for (const std::string& e : d.events) events.push_back(e);
  j["events"] = std::move(events);
  return j;
}

/// Kernel health for one manager prefix ("bdd" = engine runs, "miter.bdd" =
/// the verification miter), assembled from what publish_stats() put in the
/// registry. Returns nullopt when that prefix never published (e.g. verify
/// was off, or every vector was narrow enough to skip the engine).
std::optional<obs::Json> kernel_json(
    const std::vector<std::pair<std::string, std::uint64_t>>& counters,
    const std::vector<std::pair<std::string, obs::Registry::GaugeValue>>&
        gauges,
    const std::string& prefix) {
  const auto counter = [&](const std::string& name) -> std::uint64_t {
    const std::string full = prefix + "." + name;
    const auto it = std::lower_bound(
        counters.begin(), counters.end(), full,
        [](const auto& kv, const std::string& k) { return kv.first < k; });
    return it != counters.end() && it->first == full ? it->second : 0;
  };
  const auto gauge = [&](const std::string& name) -> std::int64_t {
    const std::string full = prefix + "." + name;
    const auto it = std::lower_bound(
        gauges.begin(), gauges.end(), full,
        [](const auto& kv, const std::string& k) { return kv.first < k; });
    return it != gauges.end() && it->first == full ? it->second.max : 0;
  };
  if (counter("nodes_allocated") == 0 && counter("cache_lookups") == 0)
    return std::nullopt;

  obs::Json j = obs::Json::object();
  j["nodes_allocated"] = counter("nodes_allocated");
  j["peak_live_nodes"] = gauge("peak_live_nodes");
  j["unique_load_factor"] =
      static_cast<double>(gauge("unique_load_ppm")) / 1e6;
  j["peak_arena_bytes"] = gauge("peak_arena_bytes");
  j["gc_runs"] = counter("gc_runs");
  j["sift_runs"] = counter("sift_runs");
  j["sift_swaps"] = counter("sift_swaps");
  obs::Json rates = obs::Json::object();
  for (unsigned cls = 0; cls < bdd::Manager::Stats::kOpClasses; ++cls) {
    const char* op = bdd::Manager::op_class_name(cls);
    const std::uint64_t lookups = counter(std::string("cache_lookups.") + op);
    const std::uint64_t hits = counter(std::string("cache_hits.") + op);
    obs::Json r = obs::Json::object();
    r["lookups"] = lookups;
    r["hits"] = hits;
    r["hit_rate"] = lookups ? static_cast<double>(hits) /
                                  static_cast<double>(lookups)
                            : 0.0;
    rates[op] = std::move(r);
  }
  j["cache"] = std::move(rates);
  return j;
}

}  // namespace

obs::Json build_run_report(const std::string& circuit,
                           const SynthesisConfig& cfg,
                           const DriverReport& rep) {
  obs::Registry& reg = obs::Registry::instance();
  const auto counters = reg.counters();
  const auto gauges = reg.gauges();

  obs::Json doc = obs::Json::object();
  doc["report"] = "imodec_run";
  doc["schema_version"] = kRunReportSchemaVersion;
  doc["circuit"] = circuit;
  doc["config"] = config_json(cfg);
  doc["result"] = result_json(rep);
  doc["degrade"] = degrade_json(rep.degrade);
  doc["phases"] = obs::trace_rollup_json(rep.spans);

  obs::Json cj = obs::Json::object();
  for (const auto& [name, value] : counters) cj[name] = value;
  doc["counters"] = std::move(cj);

  obs::Json gj = obs::Json::object();
  for (const auto& [name, gv] : gauges) {
    obs::Json g = obs::Json::object();
    g["value"] = gv.value;
    g["max"] = gv.max;
    gj[name] = std::move(g);
  }
  doc["gauges"] = std::move(gj);

  obs::Json hj = obs::Json::object();
  for (const auto& [name, s] : reg.histograms()) {
    obs::Json h = obs::Json::object();
    h["count"] = s.count;
    h["sum"] = s.sum;
    h["max"] = s.max;
    h["p50"] = s.p50;
    h["p90"] = s.p90;
    h["p99"] = s.p99;
    hj[name] = std::move(h);
  }
  doc["histograms"] = std::move(hj);

  obs::Json kernel = obs::Json::object();
  for (const char* prefix : {"bdd", "miter.bdd"})
    if (auto k = kernel_json(counters, gauges, prefix))
      kernel[prefix] = std::move(*k);
  doc["kernel"] = std::move(kernel);

  doc["flight"] = obs::flight_dump_json();
  return doc;
}

bool write_run_report(const std::string& path, const std::string& circuit,
                      const SynthesisConfig& cfg, const DriverReport& rep) {
  return obs::write_json_file(path, build_run_report(circuit, cfg, rep));
}

}  // namespace imodec
