#include "map/lutflow.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cassert>
#include <string>
#include <unordered_map>

#include "map/npn_cache.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/resource.hpp"
#include "util/thread_pool.hpp"

namespace imodec {

namespace {

/// Extend a node-local truth table over `fanins` to the common input list
/// `inputs` of a function vector (every fanin must appear in `inputs`).
TruthTable extend_table(const TruthTable& tt, const std::vector<SigId>& fanins,
                        const std::vector<SigId>& inputs) {
  std::vector<unsigned> pos_of_fanin(fanins.size(), 0);
  for (std::size_t i = 0; i < fanins.size(); ++i) {
    auto it = std::find(inputs.begin(), inputs.end(), fanins[i]);
    assert(it != inputs.end());
    pos_of_fanin[i] = static_cast<unsigned>(it - inputs.begin());
  }
  // Chunked index assembly: split the union row into a low and a high half
  // and precompute each half's contribution to the node-local row index, so
  // the per-row work is two lookups (hot path for wide unions).
  const unsigned n = static_cast<unsigned>(inputs.size());
  const unsigned lo_bits = std::min(n, 11u);
  const unsigned hi_bits = n - lo_bits;
  std::vector<std::uint32_t> lo_map(std::uint64_t{1} << lo_bits, 0);
  std::vector<std::uint32_t> hi_map(std::uint64_t{1} << hi_bits, 0);
  for (std::size_t i = 0; i < fanins.size(); ++i) {
    const unsigned p = pos_of_fanin[i];
    if (p < lo_bits) {
      for (std::uint64_t v = 0; v < lo_map.size(); ++v)
        if ((v >> p) & 1) lo_map[v] |= 1u << i;
    } else {
      for (std::uint64_t v = 0; v < hi_map.size(); ++v)
        if ((v >> (p - lo_bits)) & 1) hi_map[v] |= 1u << i;
    }
  }
  TruthTable out(n);
  const std::uint64_t lo_mask = (std::uint64_t{1} << lo_bits) - 1;
  for (std::uint64_t row = 0; row < out.num_rows(); ++row) {
    const std::uint32_t local = lo_map[row & lo_mask] | hi_map[row >> lo_bits];
    out.set(row, tt.eval(local));
  }
  return out;
}

/// Structural hashing of logic nodes (same fanin list + same table).
struct NodeKey {
  std::vector<SigId> fanins;
  TruthTable func;
  bool operator==(const NodeKey&) const = default;
};
struct NodeKeyHash {
  std::size_t operator()(const NodeKey& k) const {
    std::size_t h = k.func.hash();
    for (SigId s : k.fanins) h ^= s + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return h;
  }
};

class Flow {
 public:
  Flow(const Network& src, const FlowOptions& opts)
      : net_(src), opts_(opts) {}

  FlowResult run() {
    obs::ScopedSpan flow_span("flow.decompose_to_luts");
    const bool debug = std::getenv("IMODEC_FLOW_DEBUG") != nullptr;
    // Initial worklist: wide logic nodes.
    for (SigId s = 0; s < net_.node_count(); ++s) enqueue_if_wide(s);

    // Worklist rounds: select a batch of node-disjoint groups (serial),
    // decompose every group of the batch (parallel — the expensive part),
    // then merge the results into the network in batch order (serial; this
    // is where d-node structural hashing runs, so the hash map needs no
    // lock). Selection never sees a half-applied batch and application
    // order is fixed, so the result is identical for every thread count.
    std::size_t rounds = 0;
    while (!worklist_.empty()) {
      // One deterministic governance point per round: in fail mode an
      // expired deadline unwinds here even when the remaining work is too
      // cheap to hit a checkpoint; in degrade mode it flips drain mode on.
      if (opts_.guard) {
        if (opts_.degrade)
          opts_.guard->poll_deadline();
        else
          opts_.guard->checkpoint();
      }
      std::vector<std::vector<SigId>> batch;
      {
        obs::ScopedSpan span("flow.select");
        const unsigned limit = std::max(1u, opts_.batch_groups);
        while (!worklist_.empty() && batch.size() < limit)
          batch.push_back(next_group());
      }
      obs::count("flow.groups", batch.size());

      std::vector<GroupComputation> comps(batch.size());
      {
        obs::ScopedSpan span("flow.decompose_batch");
        const auto compute = [&](std::size_t i) {
          comps[i] = compute_group(std::move(batch[i]));
        };
        if (opts_.pool && batch.size() > 1) {
          const int parent =
              obs::enabled() ? obs::Trace::global().current() : -1;
          opts_.pool->parallel_for(batch.size(), [&](std::size_t i) {
            obs::AdoptParentScope adopt(parent);
            compute(i);
          });
        } else {
          // Single-group batches stay on the caller so choose_bound_set's
          // inner candidate parallelism gets the whole pool.
          for (std::size_t i = 0; i < batch.size(); ++i) compute(i);
        }
      }

      {
        obs::ScopedSpan span("flow.merge");
        for (GroupComputation& c : comps) apply_computation(c);
      }
      if (obs::flight_enabled()) {
        // Guard-margin checkpoint at round granularity: how much budget and
        // wall clock was left after each round (the post-mortem question).
        std::uint64_t live = 0, budget = 0, ms_left = ~std::uint64_t{0};
        if (opts_.guard) {
          live = opts_.guard->live_nodes();
          budget = opts_.guard->node_budget();
          if (const auto left = opts_.guard->remaining_ms()) ms_left = *left;
        }
        obs::flight(obs::FlightKind::guard, "flow.round", live, budget,
                    ms_left);
      }
      if (debug) {
        std::fprintf(stderr,
                     "[flow] round=%zu batch=%zu worklist=%zu nodes=%zu "
                     "shannon=%u errors=%u t=%.1fs\n",
                     ++rounds, comps.size(), worklist_.size(),
                     net_.node_count(), stats_.shannon_fallbacks,
                     stats_.total_errors(), flow_span.seconds());
      }
    }

    if (opts_.guard) {
      opts_.guard->poll_deadline();
      degrade_.deadline_expired = opts_.guard->deadline_expired();
    }
    FlowResult res{std::move(net_), stats_, std::move(degrade_),
                   std::move(recorded_)};
    res.stats.seconds = flow_span.seconds();
    res.stats.luts = count_luts(res.network);
    if (obs::enabled()) {
      obs::count("flow.runs");
      obs::count("flow.vectors", res.stats.vectors);
      obs::count("flow.shannon_fallbacks", res.stats.shannon_fallbacks);
      obs::count("flow.luts", res.stats.luts);
      for (unsigned i = 0; i < kNumDecomposeErrors; ++i) {
        if (res.stats.errors[i])
          obs::count("flow.error." +
                         std::string(to_string(static_cast<DecomposeError>(i))),
                     res.stats.errors[i]);
      }
      const DegradationReport& d = res.degrade;
      if (d.deadline_expired) obs::count("flow.degrade.deadline_expired");
      if (d.engine_exhausted)
        obs::count("flow.degrade.engine_exhausted", d.engine_exhausted);
      if (d.single_fallbacks)
        obs::count("flow.degrade.single_fallbacks", d.single_fallbacks);
      if (d.shannon_degrades)
        obs::count("flow.degrade.shannon", d.shannon_degrades);
      if (d.drained) obs::count("flow.degrade.drained", d.drained);
    }
    return res;
  }

  static unsigned count_luts(const Network& net) {
    unsigned luts = 0;
    std::vector<bool> live(net.node_count(), false);
    std::vector<SigId> stack(net.outputs().begin(), net.outputs().end());
    while (!stack.empty()) {
      const SigId s = stack.back();
      stack.pop_back();
      if (live[s]) continue;
      live[s] = true;
      for (SigId f : net.node(s).fanins) stack.push_back(f);
    }
    for (SigId s = 0; s < net.node_count(); ++s) {
      const auto& n = net.node(s);
      if (live[s] && n.kind == Network::Kind::Logic && !n.fanins.empty())
        ++luts;
    }
    return luts;
  }

 private:
  void enqueue_if_wide(SigId s) {
    const auto& n = net_.node(s);
    if (n.kind == Network::Kind::Logic && n.fanins.size() > opts_.k)
      worklist_.push_back(s);
  }

  /// Pop a group of nodes to decompose together. Seeds with the widest node;
  /// in multi-output mode candidates sharing inputs are added greedily with
  /// the paper's gain test; a candidate that lowers the gain is undone.
  std::vector<SigId> next_group() {
    // Seed: maximum fanin count (paper §7).
    auto seed_it = std::max_element(
        worklist_.begin(), worklist_.end(), [&](SigId a, SigId b) {
          return net_.node(a).fanins.size() < net_.node(b).fanins.size();
        });
    const SigId seed = *seed_it;
    worklist_.erase(seed_it);
    std::vector<SigId> group{seed};
    if (!opts_.multi_output || !opts_.output_partitioning) return group;
    // Drain mode: grouping trials are search effort — skip them, the group
    // will be Shannon-split anyway.
    if (draining()) return group;

    std::vector<SigId> inputs = net_.node(seed).fanins;
    std::sort(inputs.begin(), inputs.end());

    int current_gain = 0;  // gain of a single-node vector is 0
    unsigned trials = 0;
    std::vector<SigId> rejected;
    while (group.size() < opts_.max_vector_outputs &&
           trials < opts_.max_group_trials) {
      // Candidate with maximum input overlap.
      SigId best = kInvalidSig;
      std::size_t best_shared = 0, best_pos = 0;
      for (std::size_t i = 0; i < worklist_.size(); ++i) {
        const SigId cand = worklist_[i];
        if (std::find(rejected.begin(), rejected.end(), cand) !=
            rejected.end())
          continue;
        const auto& fanins = net_.node(cand).fanins;
        std::size_t shared = 0, extra = 0;
        for (SigId f : fanins) {
          if (std::binary_search(inputs.begin(), inputs.end(), f))
            ++shared;
          else
            ++extra;
        }
        if (shared == 0) continue;
        if (inputs.size() + extra > opts_.max_vector_inputs) continue;
        if (shared > best_shared) {
          best_shared = shared;
          best = cand;
          best_pos = i;
        }
      }
      if (best == kInvalidSig) break;
      ++trials;

      // Trial decomposition of group + candidate.
      std::vector<SigId> trial_group = group;
      trial_group.push_back(best);
      const int gain = vector_gain(trial_group);
      // Keep the combination only for a strictly positive gain that did not
      // decrease (the paper undoes gain-decreasing combinations; we also
      // reject gain-free ones, which share nothing and only widen the
      // common bound set).
      if (gain >= current_gain && gain > 0) {
        group = std::move(trial_group);
        worklist_.erase(worklist_.begin() + static_cast<long>(best_pos));
        for (SigId f : net_.node(best).fanins) inputs.push_back(f);
        std::sort(inputs.begin(), inputs.end());
        inputs.erase(std::unique(inputs.begin(), inputs.end()), inputs.end());
        current_gain = gain;
      } else {
        rejected.push_back(best);  // undo the combination (paper §7)
      }
    }
    return group;
  }

  /// Union of fanins, sorted for determinism.
  std::vector<SigId> group_inputs(const std::vector<SigId>& group) const {
    std::vector<SigId> inputs;
    for (SigId s : group)
      for (SigId f : net_.node(s).fanins) inputs.push_back(f);
    std::sort(inputs.begin(), inputs.end());
    inputs.erase(std::unique(inputs.begin(), inputs.end()), inputs.end());
    return inputs;
  }

  /// Codewidth of the node's own best single-output decomposition — the
  /// baseline the paper's output-partitioning gain compares against
  /// ("decomposition gain in comparison to single-output decomposition of
  /// each f_k", §7). Nodes with no non-trivial bound set cost their full
  /// fanin count (they would go through Shannon expansion).
  unsigned own_cost(SigId s) {
    const auto& node = net_.node(s);
    const OwnCostKey key{s, node.fanins.size(), node.func.hash()};
    if (auto it = own_cost_.find(key); it != own_cost_.end())
      return it->second;
    VarPartOptions vopts = opts_.varpart;
    vopts.bound_size = bound_size_for(node.fanins.size());
    vopts.eval_budget = std::min<std::uint64_t>(vopts.eval_budget, 1 << 21);
    vopts.pool = opts_.pool;
    vopts.guard = opts_.guard;
    unsigned cost = static_cast<unsigned>(node.fanins.size());
    // Cross-request amortization (DESIGN.md §14): price the NPN
    // representative so the whole class shares one baseline search. Hit and
    // miss both report the representative's cost, keeping warm and cold
    // caches bit-identical.
    NpnCache* const cache = opts_.npn_cache;
    const bool cacheable =
        cache && node.fanins.size() <= cache->options().max_vars;
    std::optional<NpnCanonical> canon;
    const std::uint64_t fp = npn_salt(opts_.cache_fingerprint, kNpnCostSalt);
    if (cacheable) {
      canon = npn_canonicalize(node.func);
      if (const auto hit = cache->lookup(fp, {canon->table});
          hit && hit->cost) {
        own_cost_.emplace(key, *hit->cost);
        return *hit->cost;
      }
    }
    try {
      const TruthTable& f = canon ? canon->table : node.func;
      const auto choice = choose_bound_set(
          {f}, static_cast<unsigned>(node.fanins.size()), vopts);
      if (choice) cost = codewidth(choice->locals[0].num_classes);
      if (cacheable) {
        NpnCache::Entry e;
        e.cost = cost;
        cache->store(fp, {canon->table}, std::move(e));
      }
    } catch (const util::ResourceExhausted&) {
      // Degrade: an exhausted baseline search just prices the node at its
      // fanin count (its Shannon cost) — timing-dependent, so never cached.
      // Fail: unwind to the caller.
      if (!opts_.degrade) throw;
    }
    own_cost_.emplace(key, cost);
    return cost;
  }

  /// Decomposition gain Σ own_cost - q of a candidate group, or -1 when the
  /// group has no usable common bound set.
  int vector_gain(const std::vector<SigId>& group) {
    const std::vector<SigId> inputs = group_inputs(group);
    if (inputs.size() > TruthTable::kMaxVars) return -1;
    std::vector<TruthTable> funcs;
    funcs.reserve(group.size());
    for (SigId s : group)
      funcs.push_back(extend_table(net_.node(s).func, net_.node(s).fanins,
                                   inputs));
    // Trials recur verbatim across requests on a serving workload; cache
    // them under the exact function tuple (kNpnTrialSalt keeps the trimmed
    // search budget's results apart from full decompositions). A replayed
    // trial performs no engine work: no BDD stats, no trial counter.
    NpnCache* const cache = opts_.npn_cache;
    const bool cacheable =
        cache && inputs.size() <= cache->options().max_vars;
    const std::uint64_t fp = npn_salt(opts_.cache_fingerprint, kNpnTrialSalt);
    unsigned q = 0;
    bool have_q = false;
    if (cacheable) {
      if (const auto hit = cache->lookup(fp, funcs)) {
        if (!hit->dec) return -1;
        q = hit->dec->q();
        have_q = true;
      }
    }
    if (!have_q) {
      ImodecStats st;
      const auto reject = [&](DecomposeError err) {
        if (cacheable) {
          NpnCache::Entry e;
          e.error = err;
          cache->store(fp, funcs, std::move(e));
        }
        return -1;
      };
      try {
        VarPartOptions vopts = opts_.varpart;
        vopts.bound_size = bound_size_for(inputs.size());
        // Trial decompositions are throwaway: trim the search effort.
        vopts.samples = std::min<std::size_t>(vopts.samples, 12);
        vopts.climb_iters = std::min<std::size_t>(vopts.climb_iters, 4);
        vopts.max_exhaustive =
            std::min<std::size_t>(vopts.max_exhaustive, 512);
        vopts.eval_budget =
            std::min<std::uint64_t>(vopts.eval_budget, 1 << 21);
        vopts.pool = opts_.pool;
        vopts.guard = opts_.guard;
        const auto choice = choose_bound_set(
            funcs, static_cast<unsigned>(inputs.size()), vopts);
        if (!choice) return reject(DecomposeError::no_nontrivial_bound_set);
        if (choice->p() > opts_.imodec.max_p)
          return reject(DecomposeError::p_overflow);
        ImodecOptions iopts = opts_.imodec;
        iopts.guard = opts_.guard;
        const auto dec = decompose_multi_output(funcs, choice->vp, iopts, &st);
        absorb_bdd(st);
        obs::count("flow.trial_decompositions");
        if (!dec) return reject(dec.error());
        if (cacheable) {
          NpnCache::Entry e;
          e.dec = *dec;
          cache->store(fp, funcs, std::move(e));
        }
        q = dec->q();  // == st.q; spelled this way to match the hit path
      } catch (const util::ResourceExhausted&) {
        // Degrade: an exhausted trial is just a rejected combination —
        // timing-dependent, so never cached. Fail: unwind to the caller.
        if (!opts_.degrade) throw;
        return -1;
      }
    }
    int own_sum = 0;
    for (SigId s : group) own_sum += static_cast<int>(own_cost(s));
    return own_sum - static_cast<int>(q);
  }

  unsigned bound_size_for(std::size_t num_inputs) const {
    const std::size_t cap =
        std::min<std::size_t>(opts_.k, opts_.varpart.bound_size);
    return static_cast<unsigned>(std::min(cap, num_inputs - 1));
  }

  /// Everything one group needs computed before it can be merged into the
  /// network. Produced in parallel (read-only over net_); consumed serially.
  struct GroupComputation {
    std::vector<SigId> group;
    std::vector<SigId> inputs;
    std::vector<TruthTable> funcs;
    std::optional<Decomposition> dec;
    std::optional<DecomposeError> error;  // set when !dec
    ImodecStats st;
    bool engine_ran = false;
    /// Degradation-ladder outcomes (degrade mode only; see DESIGN.md §12).
    bool drained = false;    // deadline already expired: skip search entirely
    bool exhausted = false;  // the guard tripped during search/engine
    util::ResourceKind exhausted_kind = util::ResourceKind::wall_clock;
  };

  /// Drain mode: the deadline has expired (or the run was cancelled) and the
  /// policy is degrade — stop searching, finish the worklist Shannon-only so
  /// the flow still returns a complete k-feasible network promptly.
  bool draining() const {
    return opts_.degrade && opts_.guard && opts_.guard->should_stop();
  }

  /// Phase 2 worker: decompose one group. Reads net_ and opts_ only — no
  /// member mutation, so any number of these can run concurrently.
  GroupComputation compute_group(std::vector<SigId> group) const {
    GroupComputation c;
    // Drop group members that became narrow in the meantime (cannot happen
    // today, but keeps the invariant local).
    group.erase(std::remove_if(group.begin(), group.end(),
                               [&](SigId s) {
                                 return net_.node(s).fanins.size() <= opts_.k;
                               }),
                group.end());
    c.group = std::move(group);
    if (c.group.empty()) return c;
    if (draining()) {
      c.drained = true;
      return c;
    }

    c.inputs = group_inputs(c.group);
    c.funcs.reserve(c.group.size());
    for (SigId s : c.group)
      c.funcs.push_back(
          extend_table(net_.node(s).func, net_.node(s).fanins, c.inputs));

    try {
      NpnCache::Entry ent;
      NpnCache* const cache = opts_.npn_cache;
      const bool cacheable =
          cache && c.funcs[0].num_vars() <= cache->options().max_vars;
      if (cacheable && c.group.size() == 1) {
        // Serving-layer amortization (DESIGN.md §14): canonicalize, consult
        // the cache, decompose the NPN representative on a miss. A hit
        // replays exactly what the populating miss computed, so warm and
        // cold caches yield bit-identical networks.
        ent = npn_cached_decompose(
            *cache, opts_.cache_fingerprint, c.funcs[0],
            [&](const TruthTable& canon) {
              return decompose_vector({canon}, canon.num_vars(), c);
            },
            opts_.cache_verify_hits);
      } else if (cacheable) {
        // Multi-output vectors are cached under their exact function tuple
        // (identity transform): the stored entry IS the miss's result, so
        // hits are bit-identical by construction.
        bool served = false;
        if (auto hit = cache->lookup(opts_.cache_fingerprint, c.funcs)) {
          bool ok = true;
          if (opts_.cache_verify_hits && hit->dec) {
            for (std::size_t k = 0; ok && k < hit->dec->outputs.size(); ++k)
              ok = recompose(*hit->dec, k,
                             static_cast<unsigned>(c.inputs.size())) ==
                   c.funcs[k];
            obs::count("cache.npn.verified");
            if (!ok) {
              cache->note_verify_failure();
              obs::count("cache.npn.verify_fail");
            }
          }
          if (ok) {
            ent = *hit;
            served = true;
          }
        }
        if (!served) {
          ent = decompose_vector(c.funcs,
                                 static_cast<unsigned>(c.inputs.size()), c);
          cache->store(opts_.cache_fingerprint, c.funcs, ent);
        }
      } else {
        ent = decompose_vector(c.funcs,
                               static_cast<unsigned>(c.inputs.size()), c);
      }
      if (ent.dec)
        c.dec = std::move(*ent.dec);
      else
        c.error = ent.error;
    } catch (const util::ResourceExhausted& e) {
      // Degrade policy: remember what tripped and let the merge step walk
      // the ladder. Fail policy: unwind (through parallel_for when pooled —
      // the first exception stops the remaining chunks).
      if (!opts_.degrade) throw;
      c.dec.reset();
      c.exhausted = true;
      c.exhausted_kind = e.kind();
    }
    return c;
  }

  /// Phase 3 merge: apply one computed group to the network (serial, in
  /// batch order). Structural hashing, stats accumulation and the fallback
  /// paths all live here so they need no synchronization.
  void apply_computation(GroupComputation& c) {
    if (c.group.empty()) return;
    if (c.engine_ran) absorb_bdd(c.st);
    if (c.drained) {
      for (SigId s : c.group) drain_shannon(s);
      return;
    }
    if (c.exhausted) {
      // Ladder step 1 tripped: fall to per-output single decomposition.
      ++degrade_.engine_exhausted;
      obs::flight(obs::FlightKind::rung, "engine_exhausted", c.group.size(),
                  static_cast<std::uint64_t>(c.exhausted_kind));
      degrade_.note("group of " + std::to_string(c.group.size()) +
                    " exhausted (" + std::string(to_string(c.exhausted_kind)) +
                    "): degrading to per-output decomposition");
      for (SigId s : c.group) degrade_single(s);
      return;
    }
    if (!c.dec) {
      if (c.error)
        ++stats_.errors[static_cast<std::size_t>(*c.error)];
      if (c.group.size() > 1) {
        // No common bound set: fall back to individual processing.
        for (SigId s : c.group) process_single(s);
        return;
      }
      shannon_fallback(c.group.front());
      return;
    }

    if (opts_.multi_output && c.group.size() > 1) {
      // Final gain gate (§7): the shared decomposition must not need more
      // functions than the outputs' own single-output decompositions would.
      unsigned own_sum = 0;
      for (SigId s : c.group) own_sum += own_cost(s);
      if (c.dec->q() > own_sum) {
        for (SigId s : c.group) process_single(s);
        return;
      }
    }

    if (opts_.record_vectors && recorded_.size() < 64)
      recorded_.push_back(RecordedVector{c.funcs, c.dec->vp, c.st});

    apply_decomposition(c.group, c.inputs, *c.dec);

    ++stats_.vectors;
    stats_.lmax_rounds += c.st.lmax_rounds;
    stats_.max_m =
        std::max(stats_.max_m, static_cast<unsigned>(c.group.size()));
    stats_.max_p = std::max(stats_.max_p, c.st.p);
    int sum_c = 0;
    for (unsigned cw : c.st.c_k) sum_c += static_cast<int>(cw);
    if (sum_c > static_cast<int>(c.st.q))
      stats_.shared_functions += static_cast<unsigned>(sum_c) - c.st.q;
  }

  /// Shared core of compute_group: bound-set search plus engine /
  /// single-output decomposition of one function vector. Exactly one of
  /// dec/error is set in the returned entry; resource trips propagate as
  /// exceptions. Runs on the caller's thread; mutates only c.st/c.engine_ran
  /// of the computation passed in, so the cached (canonical-domain) path and
  /// the direct path stay behaviorally identical.
  NpnCache::Entry decompose_vector(const std::vector<TruthTable>& funcs,
                                   unsigned num_inputs,
                                   GroupComputation& c) const {
    NpnCache::Entry ent;
    VarPartOptions vopts = opts_.varpart;
    vopts.bound_size = bound_size_for(num_inputs);
    vopts.pool = opts_.pool;  // nested calls degrade to inline gracefully
    vopts.guard = opts_.guard;
    const auto choice = choose_bound_set(funcs, num_inputs, vopts);
    if (!choice) {
      ent.error = DecomposeError::no_nontrivial_bound_set;
      return ent;
    }
    if (choice->p() > opts_.imodec.max_p) {
      ent.error = DecomposeError::p_overflow;
      return ent;
    }
    if (opts_.multi_output) {
      ImodecOptions iopts = opts_.imodec;
      iopts.guard = opts_.guard;
      auto res = decompose_multi_output(funcs, choice->vp, iopts, &c.st);
      c.engine_ran = true;
      if (res)
        ent.dec = std::move(*res);
      else
        ent.error = res.error();
    } else {
      // Single-output mode within the group (groups are singletons there,
      // but keep it general): decompose each output separately and merge.
      ent.dec =
          single_output_decomposition(funcs, choice->vp, &c.st, opts_.guard);
    }
    return ent;
  }

  /// Compute-and-merge of a singleton group, used by the fallback paths of
  /// the merge step. Serial, but choose_bound_set still fans its candidate
  /// evaluation out over the pool.
  void process_single(SigId s) {
    GroupComputation c = compute_group({s});
    apply_computation(c);
  }

  /// Per-output strict decomposition merged into one Decomposition (the
  /// "Single" baseline; identical d functions are still merged since they
  /// are structurally hashed when materialized, but no cross-output search
  /// happens).
  static std::optional<Decomposition> single_output_decomposition(
      const std::vector<TruthTable>& funcs, const VarPartition& vp,
      ImodecStats* st, util::ResourceGuard* guard) {
    Decomposition merged;
    merged.vp = vp;
    for (const TruthTable& f : funcs) {
      Decomposition one = decompose_single_output(f, vp, guard);
      Decomposition::OutputPlan plan;
      for (unsigned j = 0; j < one.q(); ++j) {
        merged.d_funcs.push_back(one.d_funcs[j]);
        plan.d_index.push_back(static_cast<unsigned>(merged.d_funcs.size()) -
                               1);
      }
      plan.g = std::move(one.outputs[0].g);
      merged.outputs.push_back(std::move(plan));
      if (st) {
        st->l_k.push_back(0);
        st->c_k.push_back(one.q());
      }
    }
    if (st) {
      st->q = merged.q();
      st->p = 0;
    }
    return merged;
  }

  void apply_decomposition(const std::vector<SigId>& group,
                           const std::vector<SigId>& inputs,
                           const Decomposition& dec) {
    // Bound/free signal lists.
    std::vector<SigId> bs_sigs, fs_sigs;
    for (unsigned v : dec.vp.bound) bs_sigs.push_back(inputs[v]);
    for (unsigned v : dec.vp.free_set) fs_sigs.push_back(inputs[v]);

    // Materialize d nodes (structurally hashed across the whole flow).
    std::vector<SigId> d_sigs;
    d_sigs.reserve(dec.d_funcs.size());
    for (const TruthTable& d : dec.d_funcs)
      d_sigs.push_back(materialize(bs_sigs, d));

    // Rewrite each group node into its g function.
    for (std::size_t kk = 0; kk < group.size(); ++kk) {
      const auto& plan = dec.outputs[kk];
      std::vector<SigId> fanins;
      fanins.reserve(plan.d_index.size() + fs_sigs.size());
      for (unsigned idx : plan.d_index) fanins.push_back(d_sigs[idx]);
      for (SigId s : fs_sigs) fanins.push_back(s);

      // Normalize: drop don't-care fanins of g (e.g. free variables the
      // output never depended on).
      TruthTable g = plan.g;
      std::vector<unsigned> sup = g.support();
      std::vector<SigId> used;
      used.reserve(sup.size());
      for (unsigned v : sup) used.push_back(fanins[v]);
      g = g.permute(sup);

      Network::Node& node = net_.node(group[kk]);
      node.fanins = std::move(used);
      node.func = std::move(g);
      enqueue_if_wide(group[kk]);
    }
  }

  /// Create (or reuse) a logic node computing `tt` over `fanins`, with
  /// support normalization and structural hashing.
  SigId materialize(const std::vector<SigId>& fanins, TruthTable tt) {
    const std::vector<unsigned> sup = tt.support();
    std::vector<SigId> used;
    used.reserve(sup.size());
    for (unsigned v : sup) used.push_back(fanins[v]);
    tt = tt.permute(sup);
    if (used.empty()) return net_.add_constant(tt.eval(0));
    if (used.size() == 1 && tt == TruthTable::var(1, 0))
      return used.front();  // identity
    // Structural hashing merges identical d-nodes across vectors — that is
    // common-subfunction extraction, which the single-output baseline by
    // definition does not perform (paper §1), so it only runs in
    // multiple-output mode.
    if (!opts_.multi_output) {
      const SigId s = net_.add_node(used, std::move(tt));
      enqueue_if_wide(s);
      return s;
    }
    NodeKey key{used, tt};
    if (auto it = hash_.find(key); it != hash_.end()) return it->second;
    const SigId s = net_.add_node(used, std::move(tt));
    hash_.emplace(std::move(key), s);
    enqueue_if_wide(s);
    return s;
  }

  /// Guaranteed-progress fallback: f = ite(x, f1, f0) with a 3-input mux.
  /// The ungoverned flow splits on variable 0 (kept for bit-identical
  /// results with earlier versions); the degradation ladder picks the most
  /// binate variable instead (see most_binate_var).
  void shannon_fallback(SigId s) {
    ++stats_.shannon_fallbacks;
    shannon_split(s, 0);
  }

  /// Ladder step 3 / drain mode: Shannon split on the most binate variable,
  /// so the two cofactors are as balanced as the cheap metric can tell and
  /// the drain produces fewer mux levels than a fixed pivot would.
  void shannon_degrade(SigId s) {
    ++degrade_.shannon_degrades;
    obs::flight(obs::FlightKind::rung, "shannon_degrade", s,
                net_.node(s).fanins.size());
    shannon_split(s, most_binate_var(net_.node(s).func));
  }

  void drain_shannon(SigId s) {
    ++degrade_.drained;
    obs::flight(obs::FlightKind::rung, "drain_shannon", s,
                net_.node(s).fanins.size());
    shannon_split(s, most_binate_var(net_.node(s).func));
  }

  /// Influence of v on f: the number of minterms where flipping v flips f
  /// (2^n-scaled binateness). Deterministic tie-break: the lowest variable
  /// index wins. Returns 0 for (near-)constant functions — the split is
  /// still sound, the cofactors just collapse to constants.
  static unsigned most_binate_var(const TruthTable& f) {
    const std::vector<unsigned> sup = f.support();
    unsigned best_v = sup.empty() ? 0 : sup.front();
    std::uint64_t best_influence = 0;
    for (unsigned v : sup) {
      const std::uint64_t infl =
          (f.cofactor(v, false) ^ f.cofactor(v, true)).count_ones();
      if (infl > best_influence) {
        best_influence = infl;
        best_v = v;
      }
    }
    return best_v;
  }

  void shannon_split(SigId s, unsigned v) {
    // Copy fanins/function: materialize() may grow the node arena and
    // invalidate references into it.
    const std::vector<SigId> fanins = net_.node(s).fanins;
    const TruthTable func = net_.node(s).func;
    assert(fanins.size() > opts_.k);
    assert(v < fanins.size());
    const SigId s0 = materialize(fanins, func.cofactor(v, false));
    const SigId s1 = materialize(fanins, func.cofactor(v, true));
    // mux(sel, hi, lo): row bits (sel, hi, lo) -> sel ? hi : lo.
    TruthTable mux(3);
    for (std::uint64_t row = 0; row < 8; ++row) {
      const bool sel = row & 1, hi = (row >> 1) & 1, lo = (row >> 2) & 1;
      mux.set(row, sel ? hi : lo);
    }
    net_.node(s).fanins = {fanins[v], s1, s0};
    net_.node(s).func = std::move(mux);
  }

  /// Ladder step 2: the shared engine run exhausted its budget, so try the
  /// cheap explicit path — a trimmed bound-set search plus the classical
  /// strict single-output decomposition (both still governed; truth-table
  /// work is orders of magnitude cheaper than the implicit engine). If even
  /// that trips, step 3 (Shannon) always succeeds without the guard.
  void degrade_single(SigId s) {
    if (net_.node(s).fanins.size() <= opts_.k) return;
    if (draining()) {
      drain_shannon(s);
      return;
    }
    const std::vector<SigId> fanins = net_.node(s).fanins;
    const TruthTable func = net_.node(s).func;
    try {
      VarPartOptions vopts = opts_.varpart;
      vopts.bound_size = bound_size_for(fanins.size());
      vopts.samples = std::min<std::size_t>(vopts.samples, 12);
      vopts.climb_iters = std::min<std::size_t>(vopts.climb_iters, 4);
      vopts.max_exhaustive = std::min<std::size_t>(vopts.max_exhaustive, 512);
      vopts.eval_budget = std::min<std::uint64_t>(vopts.eval_budget, 1 << 21);
      vopts.pool = opts_.pool;
      vopts.guard = opts_.guard;
      const auto choice = choose_bound_set(
          {func}, static_cast<unsigned>(fanins.size()), vopts);
      if (choice) {
        const Decomposition dec =
            decompose_single_output(func, choice->vp, opts_.guard);
        ++degrade_.single_fallbacks;
        obs::flight(obs::FlightKind::rung, "degrade_single", s,
                    fanins.size());
        apply_decomposition({s}, fanins, dec);
        return;
      }
    } catch (const util::ResourceExhausted&) {
      // fall through to the unconditional Shannon step
    }
    shannon_degrade(s);
  }

  /// Fold one engine run's BDD totals into the flow stats (trial and
  /// committed decompositions alike — both burn the CPU we account for).
  void absorb_bdd(const ImodecStats& st) {
    stats_.bdd_nodes += st.bdd_nodes;
    stats_.bdd_cache_lookups += st.bdd_cache_lookups;
    stats_.bdd_cache_hits += st.bdd_cache_hits;
  }

  struct OwnCostKey {
    SigId sig;
    std::size_t fanins;
    std::size_t func_hash;
    bool operator==(const OwnCostKey&) const = default;
  };
  struct OwnCostKeyHash {
    std::size_t operator()(const OwnCostKey& k) const {
      return k.sig * 0x9e3779b97f4a7c15ull ^ (k.fanins << 17) ^ k.func_hash;
    }
  };

  Network net_;
  FlowOptions opts_;
  FlowStats stats_;
  DegradationReport degrade_;
  std::vector<SigId> worklist_;
  std::vector<RecordedVector> recorded_;
  std::unordered_map<NodeKey, SigId, NodeKeyHash> hash_;
  std::unordered_map<OwnCostKey, unsigned, OwnCostKeyHash> own_cost_;
};

}  // namespace

FlowResult decompose_to_luts(const Network& src, const FlowOptions& opts) {
  Flow flow(src, opts);
  return flow.run();
}

std::optional<Network> collapse_network(const Network& src,
                                        util::ResourceGuard* guard) {
  Network out(src.name());
  std::unordered_map<SigId, SigId> pi_map;
  for (SigId pi : src.inputs())
    pi_map.emplace(pi, out.add_input(src.node(pi).name));

  for (std::size_t k = 0; k < src.num_outputs(); ++k) {
    if (guard) guard->checkpoint();
    const SigId sig = src.outputs()[k];
    const std::vector<SigId> cone = src.cone_inputs(sig);
    auto tt = src.cone_function(sig, cone);
    if (!tt) return std::nullopt;  // support exceeds TruthTable::kMaxVars
    std::vector<SigId> fanins;
    fanins.reserve(cone.size());
    for (SigId pi : cone) fanins.push_back(pi_map.at(pi));
    const std::string& name = src.output_names()[k];
    SigId node;
    if (tt->is_constant()) {
      node = out.add_constant(tt->eval(0));
    } else {
      // Normalize away non-support cone inputs.
      const std::vector<unsigned> sup = tt->support();
      std::vector<SigId> used;
      used.reserve(sup.size());
      for (unsigned v : sup) used.push_back(fanins[v]);
      node = out.add_node(used, tt->permute(sup), name);
    }
    out.add_output(node, name);
  }
  return out;
}

}  // namespace imodec
