#pragma once
// NPN-canonical decomposition result cache (the serving layer's front end).
//
// Repeated requests decompose the same subfunctions over and over — the
// classical amortization lever is canonizing each (sub)function under
// negation-permutation-negation equivalence and caching one decomposition
// per class (cf. abc's Npn4 tables and Tempia Calvino et al. 2024). We use a
// deterministic semi-canonical form: input phases are normalized by cofactor
// weight, the output phase by ones count, and variables are sorted by
// influence. NPN-equivalent functions usually (not always) share a
// representative; a class split only costs hit rate, never correctness.
//
// The determinism contract that makes the cache safe for bit-identical
// serving: a MISS decomposes the *canonical representative* (not the
// original function) and stores that, and both hit and miss then apply the
// recorded inverse transform. A hit therefore returns exactly what the miss
// that populated it computed — a warm process with a full cache produces the
// same networks as a fresh process with a cold one (DESIGN.md §14).

#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "decomp/single.hpp"
#include "imodec/result.hpp"

namespace imodec {

/// Invertible NPN transform recorded by npn_canonicalize:
///   canonical(y) = output_flip ^ f(z)   with   z[perm[i]] = y[i] ^
///   input_flip[perm[i]]
/// i.e. canonical variable i stands for original variable perm[i], with the
/// phase flip indexed by the *original* variable.
struct NpnTransform {
  std::vector<unsigned> perm;    ///< canonical var i = original var perm[i]
  std::vector<bool> input_flip;  ///< indexed by original variable
  bool output_flip = false;
};

struct NpnCanonical {
  TruthTable table;
  NpnTransform transform;
};

/// Flip one input: result(row) = t(row with bit v inverted).
TruthTable npn_flip_input(const TruthTable& t, unsigned v);

/// Deterministic semi-canonical NPN form with its recorded transform.
NpnCanonical npn_canonicalize(const TruthTable& f);

/// Apply a transform in the forward direction (test oracle):
/// npn_apply(f, canon.transform) == canon.table for canon =
/// npn_canonicalize(f).
TruthTable npn_apply(const TruthTable& f, const NpnTransform& t);

/// Map a decomposition of the canonical function back to the original
/// domain: bound/free variable indices run through perm, input flips are
/// absorbed into the d functions (bound) and the g tails (free), and the
/// output flip complements every g. recompose() of the result equals the
/// original function.
Decomposition npn_inverse_decomposition(const Decomposition& canonical,
                                        const NpnTransform& t);

struct NpnCacheOptions {
  std::size_t max_entries = 4096;  ///< bounded LRU capacity
  unsigned max_vars = 18;          ///< functions wider than this bypass
};

/// Mixed into the config fingerprint to keep the cache's entry families
/// apart: full decompositions (no salt), own-cost baselines (kNpnCostSalt),
/// trial decompositions with trimmed search budgets (kNpnTrialSalt).
inline constexpr std::uint64_t kNpnCostSalt = 0x9a3bf11c52d07ae5ull;
inline constexpr std::uint64_t kNpnTrialSalt = 0x5ec4a9d8132f760bull;

constexpr std::uint64_t npn_salt(std::uint64_t fp, std::uint64_t salt) {
  return fp ^ (salt + 0x9e3779b97f4a7c15ull + (fp << 6) + (fp >> 2));
}

/// Bounded, thread-safe LRU over (config fingerprint, function vector) →
/// decomposition result. Three entry families share it (DESIGN.md §14):
///  - singleton full decompositions, keyed by the NPN-canonical table and
///    stored in the canonical domain (see npn_cached_decompose);
///  - multi-output vector decompositions and trial decompositions, keyed by
///    the exact function vector (identity transform — NPN canonization of a
///    shared-input vector is not worth its cost);
///  - own-cost baselines (Entry::cost), keyed by the NPN-canonical table
///    under kNpnCostSalt.
/// Negative results (typed DecomposeError) are cached too: re-discovering
/// that a class has no non-trivial bound set costs the same search as a
/// success.
class NpnCache {
 public:
  explicit NpnCache(const NpnCacheOptions& opts = {}) : opts_(opts) {}

  /// Cached value. Exactly one of dec/error/cost is set; dec entries for
  /// singleton NPN keys live in the canonical domain.
  struct Entry {
    std::optional<Decomposition> dec;
    std::optional<DecomposeError> error;
    std::optional<unsigned> cost;  ///< own-cost baseline (codewidth)
  };

  const NpnCacheOptions& options() const { return opts_; }

  /// nullopt = miss. Publishes cache.npn.{hit,miss} counters.
  std::optional<Entry> lookup(std::uint64_t config_fp,
                              const std::vector<TruthTable>& key);
  /// Insert (or refresh) an entry; evicts LRU past capacity
  /// (cache.npn.evict).
  void store(std::uint64_t config_fp, const std::vector<TruthTable>& key,
             Entry e);
  void clear();

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t verify_failures = 0;
  };
  Stats stats() const;
  std::size_t size() const;
  void note_verify_failure();

 private:
  struct Key {
    std::uint64_t fp;
    std::vector<TruthTable> tables;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      std::size_t h = k.fp * 0x9e3779b97f4a7c15ull;
      for (const TruthTable& t : k.tables)
        h = (h * 0x100000001b3ull) ^ t.hash() ^ t.num_vars();
      return h;
    }
  };
  using Lru = std::list<std::pair<Key, Entry>>;

  NpnCacheOptions opts_;
  mutable std::mutex mu_;
  Lru lru_;  // front = most recent
  std::unordered_map<Key, Lru::iterator, KeyHash> index_;
  Stats stats_;
};

/// One cached decomposition of `f`: canonicalize, consult the cache, on miss
/// run `decompose_canonical` on the representative and store what it
/// returns, and either way hand back the result mapped to the original
/// domain via npn_inverse_decomposition. With `verify_hits`, every
/// cache-served decomposition is cross-checked by recompose() against `f`;
/// a mismatch (defensive — the transform algebra makes it unreachable) is
/// counted, dropped, and recomputed as a miss. Exceptions from
/// decompose_canonical (resource trips) propagate without storing.
NpnCache::Entry npn_cached_decompose(
    NpnCache& cache, std::uint64_t config_fp, const TruthTable& f,
    const std::function<NpnCache::Entry(const TruthTable&)>&
        decompose_canonical,
    bool verify_hits);

}  // namespace imodec
