#include "map/session.hpp"

#include <cassert>
#include <cstdio>
#include <thread>

#include "map/report.hpp"
#include "obs/metrics.hpp"
#include "util/resource.hpp"

namespace imodec {

SynthesisSession::SynthesisSession(const SynthesisConfig& cfg) : cfg_(cfg) {
  assert(cfg.validate().empty() && "SynthesisSession requires a valid config");
  // A report wants counters, histograms and kernel health populated, so
  // asking for one opts the session into observability.
  if (!cfg_.report_path.empty()) obs::set_enabled(true);
  const unsigned resolved =
      cfg_.threads ? cfg_.threads : std::thread::hardware_concurrency();
  if (resolved > 1) pool_.emplace(resolved);
  if (cfg_.result_cache) {
    NpnCacheOptions copts;
    copts.max_entries = cfg_.result_cache_entries;
    copts.max_vars = cfg_.result_cache_max_vars;
    cache_.emplace(copts);
  }
}

DriverReport SynthesisSession::run(const Network& input, Network& mapped) {
  return run(input, cfg_, mapped);
}

DriverReport SynthesisSession::run(const Network& input,
                                   const SynthesisConfig& cfg,
                                   Network& mapped) {
  assert(cfg.validate().empty() && "SynthesisSession::run requires a valid "
                                   "config");
  // Request boundary: restart every gauge's max watermark so peaks (live
  // nodes, table loads) are per-run, not since-process-start — a small
  // circuit served after a big one must not inherit its highs.
  if (obs::enabled()) obs::Registry::instance().reset_watermarks();
  RunResources res;
  res.pool = pool();
  res.npn_cache = result_cache();  // run_synthesis gates on cfg.result_cache
  res.managers = &managers_;
  DriverReport rep = run_synthesis(input, cfg, mapped, res);
  if (!cfg.report_path.empty() &&
      !write_run_report(cfg.report_path, input.name(), cfg, rep))
    std::fprintf(stderr, "imodec: failed to write run report to %s\n",
                 cfg.report_path.c_str());
  return rep;
}

SynthesisSession::Outcome SynthesisSession::run_checked(
    const Network& input, const SynthesisConfig& cfg, Network& mapped) {
  Outcome out;
  const std::vector<std::string> diags = cfg.validate();
  if (!diags.empty()) {
    out.code = ErrorCode::usage;
    for (std::size_t i = 0; i < diags.size(); ++i) {
      if (i) out.message += "; ";
      out.message += diags[i];
    }
    return out;
  }
  try {
    DriverReport rep = run(input, cfg, mapped);
    const bool verified = rep.verified;
    out.report = std::move(rep);
    if (!verified) {
      out.code = ErrorCode::verify_failed;
      out.message = "mapped network is not equivalent to its input";
    }
  } catch (const util::Timeout& e) {
    out.code = ErrorCode::timeout;
    out.message = e.what();
  } catch (const util::ResourceExhausted& e) {
    out.code = ErrorCode::resource;
    out.message = e.what();
  } catch (const std::exception& e) {
    out.code = ErrorCode::decompose;
    out.message = e.what();
  }
  return out;
}

}  // namespace imodec
