#include "map/session.hpp"

#include <cassert>
#include <cstdio>
#include <thread>

#include "map/report.hpp"
#include "obs/metrics.hpp"

namespace imodec {

SynthesisSession::SynthesisSession(const SynthesisConfig& cfg) : cfg_(cfg) {
  assert(cfg.validate().empty() && "SynthesisSession requires a valid config");
  // A report wants counters, histograms and kernel health populated, so
  // asking for one opts the session into observability.
  if (!cfg_.report_path.empty()) obs::set_enabled(true);
  const unsigned resolved =
      cfg_.threads ? cfg_.threads : std::thread::hardware_concurrency();
  if (resolved > 1) pool_.emplace(resolved);
}

DriverReport SynthesisSession::run(const Network& input, Network& mapped) {
  // Request boundary: restart every gauge's max watermark so peaks (live
  // nodes, table loads) are per-run, not since-process-start — a small
  // circuit served after a big one must not inherit its highs.
  if (obs::enabled()) obs::Registry::instance().reset_watermarks();
  DriverReport rep = run_synthesis(input, cfg_, mapped, pool());
  if (!cfg_.report_path.empty() &&
      !write_run_report(cfg_.report_path, input.name(), cfg_, rep))
    std::fprintf(stderr, "imodec: failed to write run report to %s\n",
                 cfg_.report_path.c_str());
  return rep;
}

}  // namespace imodec
