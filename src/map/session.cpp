#include "map/session.hpp"

#include <cassert>
#include <thread>

namespace imodec {

SynthesisSession::SynthesisSession(const SynthesisConfig& cfg) : cfg_(cfg) {
  assert(cfg.validate().empty() && "SynthesisSession requires a valid config");
  const unsigned resolved =
      cfg_.threads ? cfg_.threads : std::thread::hardware_concurrency();
  if (resolved > 1) pool_.emplace(resolved);
}

DriverReport SynthesisSession::run(const Network& input, Network& mapped) {
  return run_synthesis(input, cfg_, mapped, pool());
}

}  // namespace imodec
