#include "map/xc3000.hpp"

#include <algorithm>
#include <cassert>

namespace imodec {

ClbPacking pack_xc3000(const Network& net) {
  // Collect live logic nodes.
  std::vector<bool> live(net.node_count(), false);
  std::vector<SigId> stack(net.outputs().begin(), net.outputs().end());
  while (!stack.empty()) {
    const SigId s = stack.back();
    stack.pop_back();
    if (live[s]) continue;
    live[s] = true;
    for (SigId f : net.node(s).fanins) stack.push_back(f);
  }

  std::vector<SigId> five_input, pairable;
  for (SigId s = 0; s < net.node_count(); ++s) {
    if (!live[s]) continue;
    const auto& n = net.node(s);
    if (n.kind != Network::Kind::Logic || n.fanins.empty()) continue;
    assert(n.fanins.size() <= 5 && "network is not 5-feasible");
    if (n.fanins.size() == 5)
      five_input.push_back(s);
    else
      pairable.push_back(s);
  }

  ClbPacking result;
  result.single_function_blocks = static_cast<unsigned>(five_input.size());

  // Greedy FG-mode pairing: repeatedly take the widest unpaired node and
  // match it with the partner maximizing input sharing under the 5-pin cap.
  std::sort(pairable.begin(), pairable.end(), [&](SigId a, SigId b) {
    return net.node(a).fanins.size() > net.node(b).fanins.size();
  });
  std::vector<bool> packed(pairable.size(), false);

  const auto union_size = [&](SigId a, SigId b) {
    std::vector<SigId> u = net.node(a).fanins;
    for (SigId f : net.node(b).fanins) u.push_back(f);
    std::sort(u.begin(), u.end());
    u.erase(std::unique(u.begin(), u.end()), u.end());
    return u.size();
  };

  for (std::size_t i = 0; i < pairable.size(); ++i) {
    if (packed[i]) continue;
    packed[i] = true;
    std::size_t best = pairable.size();
    std::size_t best_union = 6;
    for (std::size_t j = i + 1; j < pairable.size(); ++j) {
      if (packed[j]) continue;
      const std::size_t u = union_size(pairable[i], pairable[j]);
      if (u <= 5 && u < best_union) {
        best_union = u;
        best = j;
      }
    }
    if (best < pairable.size()) {
      packed[best] = true;
      ++result.paired_blocks;
    } else {
      ++result.single_function_blocks;
    }
  }
  result.clbs = result.single_function_blocks + result.paired_blocks;
  return result;
}

}  // namespace imodec
