#pragma once
// High-level synthesis driver — the library behind the `imodec` command-line
// tool (the paper's IMODEC program embedded in TOS, §7).
//
// Pipeline: (optional) collapse or restructure -> decompose to k-input LUTs
// (multiple-output IMODEC or single-output baseline) -> XC3000 CLB packing ->
// equivalence verification against the input.

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "map/config.hpp"
#include "map/xc3000.hpp"
#include "obs/trace.hpp"
#include "opt/extract.hpp"

namespace imodec::util {
class ThreadPool;
}  // namespace imodec::util

namespace imodec::bdd {
class ManagerPool;
}  // namespace imodec::bdd

namespace imodec {

class NpnCache;

struct DriverReport {
  bool collapsed = false;   // did the collapsed path run?
  FlowStats flow;
  /// What the degradation ladder had to do (on_exhaustion=degrade with a
  /// deadline/budget only; all-zero otherwise). Aggregated over every
  /// governed phase: collapse, restructure, LUT flow, verification.
  DegradationReport degrade;
  ClbPacking clbs;
  unsigned depth = 0;       // logic levels of the mapped network
  bool verified = true;     // equivalence result (true when verify == off)
  /// The verdict covers the whole input space: exhaustive simulation or a
  /// miter proof (see verify_proven for which).
  bool verified_exhaustive = false;
  /// Check that actually ran: `exact` when the miter produced a verdict,
  /// `sim` when simulation did (requested, or auto fell back on budget),
  /// `off` when no check ran.
  VerifyMode verify_mode = VerifyMode::off;
  /// The verdict is a BDD miter proof (not sampled, not enumerated).
  bool verify_proven = false;
  /// Input assignment (indexed like input.inputs()) where the mapped
  /// network differs, when !verified and the check found one.
  std::optional<std::vector<bool>> counterexample;
  /// Observability section, populated only when obs::enabled(): the spans
  /// recorded during this run (re-rooted at `driver.run_synthesis`) and a
  /// snapshot of the process-wide counter registry taken at the end.
  std::vector<obs::Span> spans;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
};

/// Run the full synthesis pipeline; returns the report and stores the mapped
/// network in `mapped`. Creates a thread pool per call when opts.threads
/// resolves to > 1; SynthesisSession (map/session.hpp) amortizes the pool
/// across runs. Pre: opts.validate().empty().
///
/// Resource governance: with timeout_ms / node_budget set and
/// on_exhaustion=fail, throws util::Timeout or util::ResourceExhausted when
/// the limit trips; with on_exhaustion=degrade it always returns a complete,
/// verified network plus rep.degrade describing the fallbacks taken — never
/// a crash or a silent partial netlist (DESIGN.md §12).
DriverReport run_synthesis(const Network& input, const SynthesisConfig& opts,
                           Network& mapped);

/// As above, but execute on the caller's pool (nullptr = serial). The pool
/// is not owned.
DriverReport run_synthesis(const Network& input, const SynthesisConfig& opts,
                           Network& mapped, util::ThreadPool* pool);

/// Long-lived resources a run may borrow (none owned; every field may be
/// null). SynthesisSession keeps one of these warm across runs so a served
/// request never pays cold allocation (DESIGN.md §14):
///  - pool:      the execution pool (as in the overload above)
///  - npn_cache: the NPN-canonical result cache; consulted only when
///               opts.result_cache is set
///  - managers:  recycled BDD managers for the engine's per-vector runs
struct RunResources {
  util::ThreadPool* pool = nullptr;
  NpnCache* npn_cache = nullptr;
  bdd::ManagerPool* managers = nullptr;
};

/// As above with the full warm-resource set.
DriverReport run_synthesis(const Network& input, const SynthesisConfig& opts,
                           Network& mapped, const RunResources& res);

/// Render a human-readable report block (used by the CLI).
std::string format_report(const std::string& name, const DriverReport& rep);

}  // namespace imodec
