#pragma once
// High-level synthesis driver — the library behind the `imodec` command-line
// tool (the paper's IMODEC program embedded in TOS, §7).
//
// Pipeline: (optional) collapse or restructure -> decompose to k-input LUTs
// (multiple-output IMODEC or single-output baseline) -> XC3000 CLB packing ->
// equivalence verification against the input.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "map/lutflow.hpp"
#include "map/restructure.hpp"
#include "map/xc3000.hpp"
#include "obs/trace.hpp"
#include "opt/extract.hpp"

namespace imodec::util {
class ThreadPool;
}  // namespace imodec::util

namespace imodec {

struct DriverOptions {
  FlowOptions flow;
  RestructureOptions restructure;
  /// Collapse the network first (the paper's default). Falls back to
  /// restructuring when a cone exceeds the truth-table limit (the paper's
  /// '*' circuits). When false, restructure unconditionally.
  bool collapse = true;
  /// Classical two-step flow (paper §1): technology-independent kernel
  /// extraction first, then per-output decomposition. Implies no collapsing
  /// and single-output mode — the baseline IMODEC's combined approach is
  /// pitched against.
  bool classical = false;
  /// Check the mapped network against the input.
  bool verify = true;
  /// Width of the parallel runtime: worker threads including the caller.
  /// 0 = hardware concurrency, 1 = fully serial (no pool is created).
  /// Results are bit-identical for every value (DESIGN.md §9).
  unsigned threads = 0;
};

struct DriverReport {
  bool collapsed = false;   // did the collapsed path run?
  FlowStats flow;
  ClbPacking clbs;
  unsigned depth = 0;       // logic levels of the mapped network
  bool verified = true;     // equivalence result (true when !opts.verify)
  bool verified_exhaustive = false;
  /// Observability section, populated only when obs::enabled(): the spans
  /// recorded during this run (re-rooted at `driver.run_synthesis`) and a
  /// snapshot of the process-wide counter registry taken at the end.
  std::vector<obs::Span> spans;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
};

/// Run the full synthesis pipeline; returns the report and stores the mapped
/// network in `mapped`. Creates a thread pool per call when opts.threads
/// resolves to > 1; SynthesisSession (map/session.hpp) amortizes the pool
/// across runs.
DriverReport run_synthesis(const Network& input, const DriverOptions& opts,
                           Network& mapped);

/// As above, but execute on the caller's pool (nullptr = serial). The pool
/// is not owned.
DriverReport run_synthesis(const Network& input, const DriverOptions& opts,
                           Network& mapped, util::ThreadPool* pool);

/// Render a human-readable report block (used by the CLI).
std::string format_report(const std::string& name, const DriverReport& rep);

}  // namespace imodec
