#pragma once
// High-level synthesis driver — the library behind the `imodec` command-line
// tool (the paper's IMODEC program embedded in TOS, §7).
//
// Pipeline: (optional) collapse or restructure -> decompose to k-input LUTs
// (multiple-output IMODEC or single-output baseline) -> XC3000 CLB packing ->
// equivalence verification against the input.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "map/lutflow.hpp"
#include "map/restructure.hpp"
#include "map/xc3000.hpp"
#include "obs/trace.hpp"
#include "opt/extract.hpp"

namespace imodec::util {
class ThreadPool;
}  // namespace imodec::util

namespace imodec {

/// How the driver checks the mapped network against its input.
enum class VerifyMode : std::uint8_t {
  off,    ///< skip the check entirely
  sim,    ///< simulation: exhaustive up to 16 inputs, sampled beyond
  exact,  ///< BDD miter proof, no node budget (exact at any input count)
  auto_,  ///< miter within DriverOptions::verify_node_budget, else sim
};

constexpr std::string_view to_string(VerifyMode m) {
  switch (m) {
    case VerifyMode::off: return "off";
    case VerifyMode::sim: return "sim";
    case VerifyMode::exact: return "exact";
    case VerifyMode::auto_: return "auto";
  }
  return "?";
}

/// Parse "off" / "sim" / "exact" / "auto"; nullopt otherwise.
std::optional<VerifyMode> parse_verify_mode(std::string_view s);

struct DriverOptions {
  FlowOptions flow;
  RestructureOptions restructure;
  /// Collapse the network first (the paper's default). Falls back to
  /// restructuring when a cone exceeds the truth-table limit (the paper's
  /// '*' circuits). When false, restructure unconditionally.
  bool collapse = true;
  /// Classical two-step flow (paper §1): technology-independent kernel
  /// extraction first, then per-output decomposition. Implies no collapsing
  /// and single-output mode — the baseline IMODEC's combined approach is
  /// pitched against.
  bool classical = false;
  /// Check the mapped network against the input. `auto_` (the default)
  /// proves equivalence with the BDD miter (src/verify/miter) whenever the
  /// build fits `verify_node_budget` live nodes and falls back to
  /// simulation otherwise — so every circuit gets the strongest check that
  /// fits memory, and Table 2's >16-input circuits get a proof instead of
  /// 4096 samples.
  VerifyMode verify = VerifyMode::auto_;
  /// Live BDD-node cap for the miter in `auto_` mode (~16 B/node).
  std::size_t verify_node_budget = std::size_t{1} << 21;
  /// Width of the parallel runtime: worker threads including the caller.
  /// 0 = hardware concurrency, 1 = fully serial (no pool is created).
  /// Results are bit-identical for every value (DESIGN.md §9).
  unsigned threads = 0;
};

struct DriverReport {
  bool collapsed = false;   // did the collapsed path run?
  FlowStats flow;
  ClbPacking clbs;
  unsigned depth = 0;       // logic levels of the mapped network
  bool verified = true;     // equivalence result (true when verify == off)
  /// The verdict covers the whole input space: exhaustive simulation or a
  /// miter proof (see verify_proven for which).
  bool verified_exhaustive = false;
  /// Check that actually ran: `exact` when the miter produced a verdict,
  /// `sim` when simulation did (requested, or auto fell back on budget),
  /// `off` when no check ran.
  VerifyMode verify_mode = VerifyMode::off;
  /// The verdict is a BDD miter proof (not sampled, not enumerated).
  bool verify_proven = false;
  /// Input assignment (indexed like input.inputs()) where the mapped
  /// network differs, when !verified and the check found one.
  std::optional<std::vector<bool>> counterexample;
  /// Observability section, populated only when obs::enabled(): the spans
  /// recorded during this run (re-rooted at `driver.run_synthesis`) and a
  /// snapshot of the process-wide counter registry taken at the end.
  std::vector<obs::Span> spans;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
};

/// Run the full synthesis pipeline; returns the report and stores the mapped
/// network in `mapped`. Creates a thread pool per call when opts.threads
/// resolves to > 1; SynthesisSession (map/session.hpp) amortizes the pool
/// across runs.
DriverReport run_synthesis(const Network& input, const DriverOptions& opts,
                           Network& mapped);

/// As above, but execute on the caller's pool (nullptr = serial). The pool
/// is not owned.
DriverReport run_synthesis(const Network& input, const DriverOptions& opts,
                           Network& mapped, util::ThreadPool* pool);

/// Render a human-readable report block (used by the CLI).
std::string format_report(const std::string& name, const DriverReport& rep);

}  // namespace imodec
