#include "map/restructure.hpp"

#include "logic/simplify.hpp"
#include "util/resource.hpp"

#include <algorithm>
#include <cassert>

namespace imodec {

namespace {

/// Substitute `child` (a fanin of `parent`) by its own function: returns the
/// merged fanin list and table for `parent`.
std::pair<std::vector<SigId>, TruthTable> merge_child(
    const Network& net, const Network::Node& parent, SigId child_sig) {
  const Network::Node& child = net.node(child_sig);

  std::vector<SigId> fanins;
  for (SigId f : parent.fanins)
    if (f != child_sig) fanins.push_back(f);
  for (SigId f : child.fanins)
    if (std::find(fanins.begin(), fanins.end(), f) == fanins.end())
      fanins.push_back(f);

  const unsigned n = static_cast<unsigned>(fanins.size());
  TruthTable merged(n);
  // Row-wise evaluation: compute child's value, then the parent's.
  const auto pos_of = [&](SigId s) {
    return static_cast<unsigned>(
        std::find(fanins.begin(), fanins.end(), s) - fanins.begin());
  };
  for (std::uint64_t row = 0; row < merged.num_rows(); ++row) {
    std::uint64_t child_row = 0;
    for (std::size_t i = 0; i < child.fanins.size(); ++i)
      if ((row >> pos_of(child.fanins[i])) & 1)
        child_row |= std::uint64_t{1} << i;
    const bool child_val = child.func.eval(child_row);
    std::uint64_t parent_row = 0;
    for (std::size_t i = 0; i < parent.fanins.size(); ++i) {
      const SigId f = parent.fanins[i];
      const bool v = (f == child_sig) ? child_val : ((row >> pos_of(f)) & 1);
      if (v) parent_row |= std::uint64_t{1} << i;
    }
    merged.set(row, parent.func.eval(parent_row));
  }
  return {std::move(fanins), std::move(merged)};
}

}  // namespace

Network restructure(const Network& src, const RestructureOptions& opts) {
  Network net = src;
  // Technology-independent cleanup first: constants, duplicate nodes and
  // vacuous fanins would otherwise inflate the merged supports below.
  simplify(net);

  // Governance: in degrade mode stop eliminating (between candidates or
  // between passes) once the guard says stop — any prefix of the loop plus
  // the sweep below yields a consistent network, it is just less
  // pre-structured. In fail mode the checkpoint throws util::Timeout.
  bool stop = false;
  const auto governance_stop = [&]() {
    if (!opts.guard) return false;
    if (opts.degrade) {
      opts.guard->poll_deadline();
      if (!opts.guard->should_stop()) return false;
      if (opts.stopped_early) *opts.stopped_early = true;
      return true;
    }
    opts.guard->checkpoint();
    return false;
  };

  for (unsigned pass = 0; pass < opts.passes && !stop; ++pass) {
    // Fanout counts (over live nodes only).
    std::vector<unsigned> fanout(net.node_count(), 0);
    for (SigId s = 0; s < net.node_count(); ++s)
      for (SigId f : net.node(s).fanins) ++fanout[f];
    std::vector<bool> is_output(net.node_count(), false);
    for (SigId o : net.outputs()) is_output[o] = true;

    bool changed = false;
    for (SigId child = 0; child < net.node_count(); ++child) {
      if ((child & 63u) == 0 && governance_stop()) {
        stop = true;
        break;
      }
      const auto& cn = net.node(child);
      if (cn.kind != Network::Kind::Logic) continue;
      if (is_output[child]) continue;  // outputs must keep their node
      if (fanout[child] == 0 || fanout[child] > opts.max_fanout) continue;

      // Collect parents and check the support bound for each.
      std::vector<SigId> parents;
      bool ok = true;
      for (SigId s = 0; s < net.node_count() && ok; ++s) {
        const auto& n = net.node(s);
        if (n.kind != Network::Kind::Logic) continue;
        if (std::find(n.fanins.begin(), n.fanins.end(), child) ==
            n.fanins.end())
          continue;
        parents.push_back(s);
        std::vector<SigId> merged = n.fanins;
        for (SigId f : cn.fanins)
          if (std::find(merged.begin(), merged.end(), f) == merged.end())
            merged.push_back(f);
        // -1: child itself leaves the fanin list.
        if (merged.size() - 1 > opts.max_support) ok = false;
      }
      if (!ok || parents.empty()) continue;

      for (SigId parent : parents) {
        auto [fanins, tt] = merge_child(net, net.node(parent), child);
        net.node(parent).fanins = std::move(fanins);
        net.node(parent).func = std::move(tt);
      }
      // Detach the child; sweep below reclaims it.
      fanout[child] = 0;
      changed = true;
    }
    net.sweep();
    if (!changed) break;
  }
  return net;
}

}  // namespace imodec
