#pragma once
// Algebraic SOP machinery over network signals (Brayton/McMullen style):
// cubes as literal sets, weak division, cube-freeness, kernel enumeration.
//
// This powers the classical technology-independent flow the paper's
// introduction describes — "a multiple-level network is created by
// identifying and extracting common subfunctions [MIS]" — which serves as
// the comparison baseline for IMODEC's combined decomposition/mapping.
//
// Literals are (signal, phase) pairs; x and ~x are distinct literals, as
// usual in algebraic (as opposed to Boolean) division.

#include <cstdint>
#include <optional>
#include <vector>

#include "logic/network.hpp"

namespace imodec::opt {

/// One literal: network signal with a phase (true = positive).
struct Literal {
  SigId sig = kInvalidSig;
  bool phase = true;
  auto operator<=>(const Literal&) const = default;
};

/// A product term: sorted, duplicate-free literal set.
struct ACube {
  std::vector<Literal> lits;

  bool operator==(const ACube&) const = default;
  bool contains_literal(const Literal& l) const;
  /// True iff every literal of `d` appears here (d divides this cube).
  bool divisible_by(const ACube& d) const;
  /// this \ d (precondition: divisible_by(d)).
  ACube divide(const ACube& d) const;
  /// Union of literal sets; nullopt if phases clash (product would be 0).
  std::optional<ACube> merge(const ACube& o) const;
  std::size_t size() const { return lits.size(); }
};

/// Sum of products; cube order is irrelevant, duplicates are not kept.
struct ACover {
  std::vector<ACube> cubes;

  bool empty() const { return cubes.empty(); }
  std::size_t num_literals() const;
  /// All signals appearing in some literal, ascending.
  std::vector<SigId> support() const;
  void add(ACube c);

  bool operator==(const ACover&) const = default;
};

/// Normalize (sort cubes, drop duplicates) for comparisons.
ACover normalized(ACover f);

/// Weak division f / d: returns (quotient, remainder) with
/// f == quotient*d + remainder as covers (algebraic identity).
std::pair<ACover, ACover> divide(const ACover& f, const ACover& d);

/// Largest cube dividing every cube of f (empty when f is cube-free or has
/// fewer than 1 cube).
ACube largest_common_cube(const ACover& f);
/// True iff no literal appears in every cube and f has >= 2 cubes.
bool is_cube_free(const ACover& f);

/// All kernels of f (cube-free primary divisors) with their co-kernels.
/// Includes f itself when cube-free. Enumeration is capped at `max_kernels`.
struct KernelEntry {
  ACover kernel;
  ACube co_kernel;
};
std::vector<KernelEntry> kernels(const ACover& f,
                                 std::size_t max_kernels = 128);

/// Cover of a logic node's local function expressed over its fanin signals
/// (via ISOP); nullopt when the node has more than `max_vars` fanins.
std::optional<ACover> node_cover(const Network& net, SigId node,
                                 unsigned max_vars = 14);

/// Truth table of a cover over the given ordered signal list (each support
/// signal must appear in `inputs`).
TruthTable cover_table(const ACover& f, const std::vector<SigId>& inputs);

}  // namespace imodec::opt
