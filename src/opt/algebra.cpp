#include "opt/algebra.hpp"

#include <algorithm>
#include <cassert>
#include <map>

#include "logic/cube.hpp"

namespace imodec::opt {

bool ACube::contains_literal(const Literal& l) const {
  return std::binary_search(lits.begin(), lits.end(), l);
}

bool ACube::divisible_by(const ACube& d) const {
  return std::includes(lits.begin(), lits.end(), d.lits.begin(),
                       d.lits.end());
}

ACube ACube::divide(const ACube& d) const {
  assert(divisible_by(d));
  ACube q;
  std::set_difference(lits.begin(), lits.end(), d.lits.begin(), d.lits.end(),
                      std::back_inserter(q.lits));
  return q;
}

std::optional<ACube> ACube::merge(const ACube& o) const {
  ACube m;
  std::set_union(lits.begin(), lits.end(), o.lits.begin(), o.lits.end(),
                 std::back_inserter(m.lits));
  // Phase clash (x and ~x): adjacent literals with equal signal.
  for (std::size_t i = 0; i + 1 < m.lits.size(); ++i)
    if (m.lits[i].sig == m.lits[i + 1].sig) return std::nullopt;
  return m;
}

std::size_t ACover::num_literals() const {
  std::size_t n = 0;
  for (const ACube& c : cubes) n += c.size();
  return n;
}

std::vector<SigId> ACover::support() const {
  std::vector<SigId> s;
  for (const ACube& c : cubes)
    for (const Literal& l : c.lits) s.push_back(l.sig);
  std::sort(s.begin(), s.end());
  s.erase(std::unique(s.begin(), s.end()), s.end());
  return s;
}

void ACover::add(ACube c) {
  if (std::find(cubes.begin(), cubes.end(), c) == cubes.end())
    cubes.push_back(std::move(c));
}

ACover normalized(ACover f) {
  std::sort(f.cubes.begin(), f.cubes.end(),
            [](const ACube& a, const ACube& b) { return a.lits < b.lits; });
  f.cubes.erase(std::unique(f.cubes.begin(), f.cubes.end()), f.cubes.end());
  return f;
}

std::pair<ACover, ACover> divide(const ACover& f, const ACover& d) {
  assert(!d.empty());
  // Quotient = intersection over d's cubes of {fc / dc : dc divides fc}.
  ACover quotient;
  bool first = true;
  for (const ACube& dc : d.cubes) {
    ACover q;
    for (const ACube& fc : f.cubes)
      if (fc.divisible_by(dc)) q.add(fc.divide(dc));
    if (first) {
      quotient = normalized(std::move(q));
      first = false;
    } else {
      ACover inter;
      const ACover qn = normalized(std::move(q));
      for (const ACube& c : quotient.cubes)
        if (std::find(qn.cubes.begin(), qn.cubes.end(), c) != qn.cubes.end())
          inter.add(c);
      quotient = std::move(inter);
    }
    if (quotient.empty()) break;
  }

  // Remainder = f minus quotient*d.
  ACover product;
  for (const ACube& qc : quotient.cubes)
    for (const ACube& dc : d.cubes)
      if (auto m = qc.merge(dc)) product.add(std::move(*m));
  ACover remainder;
  for (const ACube& fc : f.cubes)
    if (std::find(product.cubes.begin(), product.cubes.end(), fc) ==
        product.cubes.end())
      remainder.add(fc);
  return {std::move(quotient), std::move(remainder)};
}

ACube largest_common_cube(const ACover& f) {
  ACube common;
  if (f.cubes.empty()) return common;
  common = f.cubes.front();
  for (std::size_t i = 1; i < f.cubes.size(); ++i) {
    ACube next;
    std::set_intersection(common.lits.begin(), common.lits.end(),
                          f.cubes[i].lits.begin(), f.cubes[i].lits.end(),
                          std::back_inserter(next.lits));
    common = std::move(next);
    if (common.lits.empty()) break;
  }
  return common;
}

bool is_cube_free(const ACover& f) {
  return f.cubes.size() >= 2 && largest_common_cube(f).lits.empty();
}

namespace {

void kernels_rec(const ACover& f, const ACube& co, std::size_t min_index,
                 const std::vector<Literal>& all_lits,
                 std::vector<KernelEntry>& out, std::size_t max_kernels) {
  if (out.size() >= max_kernels) return;
  for (std::size_t i = min_index; i < all_lits.size(); ++i) {
    const Literal& lit = all_lits[i];
    // Count cubes containing the literal.
    ACover sub;
    for (const ACube& c : f.cubes)
      if (c.contains_literal(lit)) sub.add(c.divide(ACube{{lit}}));
    if (sub.cubes.size() < 2) continue;
    // Make cube-free; the removed cube plus the literal forms the co-kernel.
    const ACube common = largest_common_cube(sub);
    // Skip duplicates: if the common cube contains a literal with smaller
    // index, this kernel was found already (standard pruning).
    bool seen_before = false;
    for (const Literal& cl : common.lits) {
      const auto it = std::lower_bound(all_lits.begin(), all_lits.end(), cl);
      if (it != all_lits.end() && *it == cl &&
          static_cast<std::size_t>(it - all_lits.begin()) < i)
        seen_before = true;
    }
    if (seen_before) continue;
    ACover kernel;
    for (const ACube& c : sub.cubes) kernel.add(c.divide(common));
    ACube new_co = *ACube{{lit}}.merge(common).value().merge(co);
    out.push_back(KernelEntry{normalized(kernel), new_co});
    kernels_rec(kernel, new_co, i + 1, all_lits, out, max_kernels);
    if (out.size() >= max_kernels) return;
  }
}

}  // namespace

std::vector<KernelEntry> kernels(const ACover& f, std::size_t max_kernels) {
  std::vector<KernelEntry> out;
  // Literal universe, sorted.
  std::vector<Literal> all;
  for (const ACube& c : f.cubes)
    for (const Literal& l : c.lits) all.push_back(l);
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());

  kernels_rec(f, ACube{}, 0, all, out, max_kernels);
  if (is_cube_free(f)) out.push_back(KernelEntry{normalized(f), ACube{}});
  return out;
}

std::optional<ACover> node_cover(const Network& net, SigId node,
                                 unsigned max_vars) {
  const auto& n = net.node(node);
  if (n.kind != Network::Kind::Logic) return std::nullopt;
  if (n.fanins.size() > max_vars) return std::nullopt;
  ACover out;
  const Cover cover = isop(n.func);
  for (const Cube& c : cover.cubes()) {
    ACube ac;
    for (unsigned v = 0; v < n.fanins.size(); ++v) {
      if (!((c.mask >> v) & 1)) continue;
      ac.lits.push_back(Literal{n.fanins[v], ((c.value >> v) & 1) != 0});
    }
    std::sort(ac.lits.begin(), ac.lits.end());
    out.add(std::move(ac));
  }
  return out;
}

TruthTable cover_table(const ACover& f, const std::vector<SigId>& inputs) {
  std::map<SigId, unsigned> pos;
  for (unsigned i = 0; i < inputs.size(); ++i) pos[inputs[i]] = i;
  TruthTable t(static_cast<unsigned>(inputs.size()));
  for (std::uint64_t row = 0; row < t.num_rows(); ++row) {
    bool any = false;
    for (const ACube& c : f.cubes) {
      bool all = true;
      for (const Literal& l : c.lits) {
        const bool v = (row >> pos.at(l.sig)) & 1;
        if (v != l.phase) {
          all = false;
          break;
        }
      }
      if (all) {
        any = true;
        break;
      }
    }
    t.set(row, any);
  }
  return t;
}

}  // namespace imodec::opt
