#pragma once
// Greedy common-subfunction (kernel) extraction over a network — the
// classical technology-independent synthesis step (MIS [1] in the paper's
// references) used as the baseline flow "extract, then map per output" that
// IMODEC's combined approach is compared against.

#include "logic/network.hpp"

namespace imodec::opt {

struct ExtractOptions {
  /// Maximum extraction rounds (each round adds one shared divisor node).
  unsigned max_rounds = 64;
  /// A divisor must be usable by at least this many nodes.
  unsigned min_uses = 2;
  /// Skip nodes wider than this when computing covers.
  unsigned max_node_vars = 14;
  /// Kernel enumeration cap per node.
  std::size_t max_kernels_per_node = 64;
};

struct ExtractStats {
  unsigned divisors_added = 0;
  unsigned substitutions = 0;    // node rewrites using a divisor
  long literals_saved = 0;       // SOP literal delta (positive = saved)
};

/// Extract shared kernels greedily; the network is modified in place (new
/// divisor nodes appended, user nodes rewritten). Function preserved.
ExtractStats extract_kernels(Network& net, const ExtractOptions& opts = {});

}  // namespace imodec::opt
