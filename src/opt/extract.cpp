#include "opt/extract.hpp"

#include <algorithm>
#include <map>

#include "opt/algebra.hpp"

namespace imodec::opt {

namespace {

/// Canonical key for kernel covers so occurrences across nodes can be
/// counted.
std::string kernel_key(const ACover& k) {
  std::string s;
  for (const ACube& c : k.cubes) {
    for (const Literal& l : c.lits) {
      s += l.phase ? '+' : '-';
      s += std::to_string(l.sig);
      s += '.';
    }
    s += '|';
  }
  return s;
}

/// Rewrite `node` as quotient * divisor_sig + remainder.
void substitute(Network& net, SigId node, const ACover& quotient,
                const ACover& remainder, SigId divisor_sig) {
  ACover rewritten;
  for (const ACube& qc : quotient.cubes) {
    ACube c = qc;
    c.lits.push_back(Literal{divisor_sig, true});
    std::sort(c.lits.begin(), c.lits.end());
    rewritten.add(std::move(c));
  }
  for (const ACube& rc : remainder.cubes) rewritten.add(rc);

  const std::vector<SigId> inputs = rewritten.support();
  net.node(node).func = cover_table(rewritten, inputs);
  net.node(node).fanins = inputs;
}

}  // namespace

ExtractStats extract_kernels(Network& net, const ExtractOptions& opts) {
  ExtractStats stats;

  for (unsigned round = 0; round < opts.max_rounds; ++round) {
    // Collect covers of all eligible nodes.
    std::vector<std::pair<SigId, ACover>> covers;
    for (SigId s = 0; s < net.node_count(); ++s) {
      if (auto c = node_cover(net, s, opts.max_node_vars)) {
        if (c->cubes.size() >= 2) covers.emplace_back(s, std::move(*c));
      }
    }

    // Count kernel occurrences across nodes (multi-cube kernels only; a
    // single-cube "kernel" is a common cube, less interesting here).
    std::map<std::string, std::pair<ACover, unsigned>> occurrence;
    for (const auto& [sig, cover] : covers) {
      std::vector<std::string> seen_here;
      for (const KernelEntry& ke : kernels(cover, opts.max_kernels_per_node)) {
        if (ke.kernel.cubes.size() < 2) continue;
        const std::string key = kernel_key(ke.kernel);
        if (std::find(seen_here.begin(), seen_here.end(), key) !=
            seen_here.end())
          continue;
        seen_here.push_back(key);
        auto [it, inserted] =
            occurrence.emplace(key, std::make_pair(ke.kernel, 0u));
        ++it->second.second;
      }
    }

    // Pick the divisor with the best literal saving estimate:
    // (uses - 1) * literals(kernel).
    const ACover* best = nullptr;
    long best_value = 0;
    unsigned best_uses = 0;
    for (const auto& [key, entry] : occurrence) {
      const auto& [kernel, uses] = entry;
      if (uses < opts.min_uses) continue;
      const long value = static_cast<long>(uses - 1) *
                         static_cast<long>(kernel.num_literals());
      if (value > best_value) {
        best_value = value;
        best = &kernel;
        best_uses = uses;
      }
    }
    if (best == nullptr) break;
    (void)best_uses;

    // Materialize the divisor node.
    const std::vector<SigId> d_inputs = best->support();
    if (d_inputs.size() > opts.max_node_vars) break;
    const SigId d_sig = net.add_node(d_inputs, cover_table(*best, d_inputs));
    ++stats.divisors_added;

    // Substitute into every divisible node.
    unsigned round_subs = 0;
    for (const auto& [sig, cover] : covers) {
      auto [quotient, remainder] = divide(cover, *best);
      if (quotient.empty()) continue;
      const long before = static_cast<long>(cover.num_literals());
      const long after = static_cast<long>(quotient.num_literals() +
                                           quotient.cubes.size() +
                                           remainder.num_literals());
      if (after >= before) continue;  // not profitable for this node
      substitute(net, sig, quotient, remainder, d_sig);
      ++round_subs;
      stats.literals_saved += before - after;
    }
    stats.substitutions += round_subs;
    net.sweep();
    if (round_subs == 0) break;  // the divisor found no profitable home
  }
  return stats;
}

}  // namespace imodec::opt
