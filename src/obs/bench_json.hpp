#pragma once
// Per-circuit JSON result sink for the bench_* harnesses.
//
// Every harness keeps printing its human-readable tables; with `--json
// <file>` it additionally appends one record per circuit/configuration and
// writes a document future PRs regress against:
//
//   {
//     "bench": "table2",
//     "schema_version": 1,
//     "records": [ {"circuit": "rd84", "seconds": 0.12, ...}, ... ]
//   }
//
// Required record keys: "circuit" (string) and "seconds" (number); everything
// else ("p", "q", "clbs", "depth", "luts", "bdd_nodes", "cache_hit_rate",
// "lmax_rounds", ...) is optional and type-checked by
// tools/check_bench_json.py against the same schema.

#include <optional>
#include <string>

#include "obs/json.hpp"

namespace imodec::obs {

inline constexpr int kBenchSchemaVersion = 1;

class BenchJson {
 public:
  explicit BenchJson(std::string bench_name);

  /// Start a record; fill in more fields through the returned reference.
  /// The record is owned by the sink and written out by write().
  Json& add_record(const std::string& circuit, double seconds);

  std::size_t num_records() const { return records_.size(); }

  /// Write the document to `path`; returns false on I/O failure.
  bool write(const std::string& path) const;

 private:
  std::string bench_name_;
  Json records_ = Json::array();
};

/// Scan argv for `--json <path>`, remove the pair from argv/argc, and return
/// the path. Harnesses call this before their own argument handling.
std::optional<std::string> strip_json_flag(int& argc, char** argv);

/// Same for `--threads <n>`: the execution width the harness should run the
/// flow at (0 = hardware concurrency). nullopt when the flag is absent, in
/// which case harnesses default to 1 so published numbers stay serial unless
/// parallelism is requested explicitly.
std::optional<unsigned> strip_threads_flag(int& argc, char** argv);

/// Valueless `--obs`: run the bench with observability enabled so the
/// instrumented cost is what gets measured (tools/obs_overhead.py compares
/// this against the default run). Removes the flag; returns true if present.
bool strip_obs_flag(int& argc, char** argv);

/// `--report-dir <dir>`: where the harness should drop its observability
/// report (see write_obs_report). Implies observability; harnesses call
/// obs::set_enabled(true) when this returns a value.
std::optional<std::string> strip_report_dir_flag(int& argc, char** argv);

/// Append the distribution tail of a bench record from the process-wide
/// registry: `<histogram>_p50` / `<histogram>_p99` (same unit the histogram
/// records, microseconds for the built-in ones) for every non-empty
/// histogram, and `cache_hit_rate_<op>` per BDD op class with lookups.
/// bench_micro/bench_table2 put these on a synthetic "_obs_summary" record
/// so the perf trajectory carries distributions, not just means.
void add_obs_summary(Json& rec);

/// Write `<dir>/<bench_name>_obs.json`: the full registry dump ("metrics":
/// counters, gauges, histogram summaries) for this bench run. Returns false
/// on I/O failure.
bool write_obs_report(const std::string& dir, const std::string& bench_name);

}  // namespace imodec::obs
