#pragma once
// Per-circuit JSON result sink for the bench_* harnesses.
//
// Every harness keeps printing its human-readable tables; with `--json
// <file>` it additionally appends one record per circuit/configuration and
// writes a document future PRs regress against:
//
//   {
//     "bench": "table2",
//     "schema_version": 1,
//     "records": [ {"circuit": "rd84", "seconds": 0.12, ...}, ... ]
//   }
//
// Required record keys: "circuit" (string) and "seconds" (number); everything
// else ("p", "q", "clbs", "depth", "luts", "bdd_nodes", "cache_hit_rate",
// "lmax_rounds", ...) is optional and type-checked by
// tools/check_bench_json.py against the same schema.

#include <optional>
#include <string>

#include "obs/json.hpp"

namespace imodec::obs {

inline constexpr int kBenchSchemaVersion = 1;

class BenchJson {
 public:
  explicit BenchJson(std::string bench_name);

  /// Start a record; fill in more fields through the returned reference.
  /// The record is owned by the sink and written out by write().
  Json& add_record(const std::string& circuit, double seconds);

  std::size_t num_records() const { return records_.size(); }

  /// Write the document to `path`; returns false on I/O failure.
  bool write(const std::string& path) const;

 private:
  std::string bench_name_;
  Json records_ = Json::array();
};

/// Scan argv for `--json <path>`, remove the pair from argv/argc, and return
/// the path. Harnesses call this before their own argument handling.
std::optional<std::string> strip_json_flag(int& argc, char** argv);

/// Same for `--threads <n>`: the execution width the harness should run the
/// flow at (0 = hardware concurrency). nullopt when the flag is absent, in
/// which case harnesses default to 1 so published numbers stay serial unless
/// parallelism is requested explicitly.
std::optional<unsigned> strip_threads_flag(int& argc, char** argv);

}  // namespace imodec::obs
