#include "obs/trace.hpp"

#include <functional>
#include <thread>

#include "obs/metrics.hpp"
#include "util/strings.hpp"

namespace imodec::obs {

namespace {

std::uint64_t this_thread_id() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

}  // namespace

Trace::Trace() : epoch_(std::chrono::steady_clock::now()) {}

Trace& Trace::global() {
  static Trace* trace = new Trace();  // leaked: outlives all users
  return *trace;
}

int Trace::begin(std::string name) {
  if (!enabled()) return -1;
  const auto now = std::chrono::steady_clock::now();
  const std::uint64_t tid = this_thread_id();
  std::lock_guard<std::mutex> lock(mu_);
  Span span;
  span.name = std::move(name);
  span.start = std::chrono::duration<double>(now - epoch_).count();
  span.tid = tid;
  std::vector<int>& stack = open_[tid];
  if (!stack.empty()) {
    span.parent = stack.back();
  } else {
    const auto it = adopted_.find(tid);
    span.parent = it == adopted_.end() ? -1 : it->second;
  }
  const int id = static_cast<int>(spans_.size());
  spans_.push_back(std::move(span));
  stack.push_back(id);
  return id;
}

void Trace::end(int id) {
  if (id < 0) return;
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  if (static_cast<std::size_t>(id) >= spans_.size()) return;  // cleared since
  Span& span = spans_[static_cast<std::size_t>(id)];
  span.dur = std::chrono::duration<double>(now - epoch_).count() - span.start;
  std::vector<int>& stack = open_[span.tid];
  // Normally `id` is the top of this thread's stack; tolerate out-of-order
  // ends (e.g. a span outliving a clear) by popping through it.
  while (!stack.empty()) {
    const int top = stack.back();
    stack.pop_back();
    if (top == id) break;
  }
}

int Trace::current() const {
  const std::uint64_t tid = this_thread_id();
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = open_.find(tid);
  if (it == open_.end() || it->second.empty()) return -1;
  return it->second.back();
}

int Trace::adopt_parent(int span_id) {
  const std::uint64_t tid = this_thread_id();
  std::lock_guard<std::mutex> lock(mu_);
  int prev = -1;
  if (const auto it = adopted_.find(tid); it != adopted_.end())
    prev = it->second;
  if (span_id < 0)
    adopted_.erase(tid);
  else
    adopted_[tid] = span_id;
  return prev;
}

std::size_t Trace::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::vector<Span> Trace::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::vector<Span> Trace::snapshot_since(std::size_t base) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Span> out;
  if (base >= spans_.size()) return out;
  out.assign(spans_.begin() + static_cast<long>(base), spans_.end());
  for (Span& s : out)
    s.parent = s.parent < static_cast<int>(base)
                   ? -1
                   : s.parent - static_cast<int>(base);
  return out;
}

void Trace::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  open_.clear();
  adopted_.clear();
  epoch_ = std::chrono::steady_clock::now();
}

std::string trace_text(const std::vector<Span>& spans) {
  // Children in recorded (chronological) order.
  std::vector<std::vector<int>> children(spans.size());
  std::vector<int> roots;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].parent < 0)
      roots.push_back(static_cast<int>(i));
    else
      children[static_cast<std::size_t>(spans[i].parent)].push_back(
          static_cast<int>(i));
  }
  std::string out;
  const std::function<void(int, int)> emit = [&](int idx, int depth) {
    const Span& s = spans[static_cast<std::size_t>(idx)];
    out += strprintf("  %*s%-*s %9.3f ms\n", depth * 2, "",
                     36 - depth * 2, s.name.c_str(),
                     (s.dur < 0 ? 0.0 : s.dur) * 1e3);
    for (int c : children[static_cast<std::size_t>(idx)]) emit(c, depth + 1);
  };
  for (int r : roots) emit(r, 0);
  return out;
}

namespace {

struct AggNode {
  double total = 0.0;
  std::size_t count = 0;
  std::vector<std::pair<std::string, AggNode>> children;  // insertion order
  AggNode& child(const std::string& name) {
    for (auto& [n, c] : children)
      if (n == name) return c;
    children.emplace_back(name, AggNode{});
    return children.back().second;
  }
};

}  // namespace

std::string trace_summary(const std::vector<Span>& spans) {
  std::vector<std::vector<int>> children(spans.size());
  std::vector<int> roots;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].parent < 0)
      roots.push_back(static_cast<int>(i));
    else
      children[static_cast<std::size_t>(spans[i].parent)].push_back(
          static_cast<int>(i));
  }
  AggNode top;
  const std::function<void(int, AggNode&)> fold = [&](int idx, AggNode& into) {
    const Span& s = spans[static_cast<std::size_t>(idx)];
    AggNode& n = into.child(s.name);
    n.total += s.dur < 0 ? 0.0 : s.dur;
    ++n.count;
    for (int c : children[static_cast<std::size_t>(idx)]) fold(c, n);
  };
  for (int r : roots) fold(r, top);

  std::string out;
  const std::function<void(const AggNode&, int)> emit = [&](const AggNode& n,
                                                           int depth) {
    for (const auto& [name, c] : n.children) {
      out += strprintf("  %*s%-*s %9.3f ms", depth * 2, "", 36 - depth * 2,
                       name.c_str(), c.total * 1e3);
      if (c.count > 1) out += strprintf("  x%zu", c.count);
      out.push_back('\n');
      emit(c, depth + 1);
    }
  };
  emit(top, 0);
  return out;
}

Json trace_json(const std::vector<Span>& spans) {
  std::vector<std::vector<int>> children(spans.size());
  std::vector<int> roots;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].parent < 0)
      roots.push_back(static_cast<int>(i));
    else
      children[static_cast<std::size_t>(spans[i].parent)].push_back(
          static_cast<int>(i));
  }
  const std::function<Json(int)> emit = [&](int idx) {
    const Span& s = spans[static_cast<std::size_t>(idx)];
    Json node = Json::object();
    node["name"] = s.name;
    node["start_s"] = s.start;
    node["dur_s"] = s.dur;
    Json kids = Json::array();
    for (int c : children[static_cast<std::size_t>(idx)])
      kids.push_back(emit(c));
    node["children"] = std::move(kids);
    return node;
  };
  Json out = Json::array();
  for (int r : roots) out.push_back(emit(r));
  return out;
}

Json trace_rollup_json(const std::vector<Span>& spans) {
  std::vector<std::vector<int>> children(spans.size());
  std::vector<int> roots;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].parent < 0)
      roots.push_back(static_cast<int>(i));
    else
      children[static_cast<std::size_t>(spans[i].parent)].push_back(
          static_cast<int>(i));
  }
  AggNode top;
  const std::function<void(int, AggNode&)> fold = [&](int idx, AggNode& into) {
    const Span& s = spans[static_cast<std::size_t>(idx)];
    AggNode& n = into.child(s.name);
    n.total += s.dur < 0 ? 0.0 : s.dur;
    ++n.count;
    for (int c : children[static_cast<std::size_t>(idx)]) fold(c, n);
  };
  for (int r : roots) fold(r, top);

  const std::function<Json(const AggNode&)> emit = [&](const AggNode& n) {
    Json kids = Json::array();
    for (const auto& [name, c] : n.children) {
      Json node = Json::object();
      node["name"] = name;
      node["total_ms"] = c.total * 1e3;
      node["calls"] = c.count;
      node["children"] = emit(c);
      kids.push_back(std::move(node));
    }
    return kids;
  };
  return emit(top);
}

Json trace_chrome_json(const std::vector<Span>& spans) {
  Json events = Json::array();
  for (const Span& s : spans) {
    if (s.dur < 0) continue;
    Json ev = Json::object();
    ev["name"] = s.name;
    ev["ph"] = "X";
    ev["ts"] = s.start * 1e6;
    ev["dur"] = s.dur * 1e6;
    ev["pid"] = 1;
    ev["tid"] = s.tid % 1000000;  // keep readable in the viewer
    events.push_back(std::move(ev));
  }
  Json out = Json::object();
  out["traceEvents"] = std::move(events);
  out["displayTimeUnit"] = "ms";
  return out;
}

}  // namespace imodec::obs
