#pragma once
// Phase-scoped tracing: RAII spans forming a tree with durations.
//
// A Trace records spans into a flat vector; each span knows its parent index
// so exporters can rebuild the tree. Nesting is tracked per thread (each
// thread has its own open-span stack), and all mutation goes through one
// per-trace mutex, so concurrent pipeline stages can trace into the same
// object. When obs::enabled() is false, ScopedSpan records nothing and costs
// one relaxed atomic load plus a clock read — the clock read is kept because
// ScopedSpan::seconds() doubles as the pipeline's only timing primitive
// (ImodecStats/FlowStats derive their `seconds` from it, traced or not).
//
// Exporters: indented text, a nested JSON tree, and the Chrome trace-event
// format (load the file at chrome://tracing or https://ui.perfetto.dev).

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/json.hpp"

namespace imodec::obs {

bool enabled();  // defined with the registry in obs/metrics.hpp

struct Span {
  std::string name;
  int parent = -1;     // index into the trace's span vector; -1 = root
  double start = 0.0;  // seconds since the trace epoch
  double dur = -1.0;   // -1 while still open
  std::uint64_t tid = 0;
};

class Trace {
 public:
  Trace();

  /// The process-wide trace all pipeline instrumentation records into.
  static Trace& global();

  /// Open a span under the calling thread's current span. Returns its index,
  /// or -1 when obs::enabled() is false (end(-1) is a no-op).
  int begin(std::string name);
  void end(int id);

  /// Innermost open span of the calling thread (-1 when none). The parallel
  /// runtime captures this before fanning out so worker spans can be
  /// re-parented under the submitting thread's span.
  int current() const;

  /// Install `span_id` as the calling thread's base parent: spans this
  /// thread opens while its own stack is empty nest under `span_id` instead
  /// of becoming roots. Returns the previous base (-1 when none) so scopes
  /// can nest; pass it back to restore. This is how spans recorded on pool
  /// workers merge into one coherent tree (DESIGN.md §9).
  int adopt_parent(int span_id);

  std::size_t size() const;
  /// Copy of all spans so far (open spans have dur == -1).
  std::vector<Span> snapshot() const;
  /// Spans recorded at index >= base, re-rooted: parents below `base` become
  /// -1 and surviving parent indices are shifted by -base. Lets callers
  /// capture just "the spans of this run" out of the global trace.
  std::vector<Span> snapshot_since(std::size_t base) const;
  /// Drop all spans and reset the epoch. Open-span stacks are cleared; any
  /// live ScopedSpan from before the clear ends harmlessly.
  void clear();

 private:
  mutable std::mutex mu_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<Span> spans_;
  std::unordered_map<std::uint64_t, std::vector<int>> open_;  // per thread
  std::unordered_map<std::uint64_t, int> adopted_;            // per thread
};

/// RAII span in Trace::global(); also a stopwatch (see header comment).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name)
      : start_(std::chrono::steady_clock::now()),
        id_(Trace::global().begin(name)) {}
  ~ScopedSpan() { Trace::global().end(id_); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Seconds since construction; valid whether or not tracing is enabled.
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
  int id_;
};

/// RAII adoption scope for pool tasks: while alive, spans the current thread
/// opens at stack depth 0 become children of `parent`. No-op when tracing is
/// disabled or parent < 0. Restores the previous adoption on destruction, so
/// nested parallel sections compose.
class AdoptParentScope {
 public:
  explicit AdoptParentScope(int parent) {
    if (enabled() && parent >= 0) {
      prev_ = Trace::global().adopt_parent(parent);
      active_ = true;
    }
  }
  ~AdoptParentScope() {
    if (active_) Trace::global().adopt_parent(prev_);
  }

  AdoptParentScope(const AdoptParentScope&) = delete;
  AdoptParentScope& operator=(const AdoptParentScope&) = delete;

 private:
  int prev_ = -1;
  bool active_ = false;
};

/// Indented tree, one line per span: name and milliseconds.
std::string trace_text(const std::vector<Span>& spans);

/// Aggregated tree: same-named siblings merge into one line with their total
/// duration and an invocation count ("engine.lmax  12.3 ms  x41"). The right
/// view for reports where a phase repeats per work item.
std::string trace_summary(const std::vector<Span>& spans);

/// Nested tree: [{"name":..,"start_s":..,"dur_s":..,"children":[...]}, ...]
Json trace_json(const std::vector<Span>& spans);

/// Aggregated tree for run reports, the JSON twin of trace_summary():
/// same-named siblings merge into one node with summed duration and a call
/// count: [{"name":..,"total_ms":..,"calls":..,"children":[...]}, ...]
Json trace_rollup_json(const std::vector<Span>& spans);

/// Chrome trace-event JSON: {"traceEvents":[{"ph":"X",...}, ...]}. Times are
/// microseconds as the format requires; open spans are skipped.
Json trace_chrome_json(const std::vector<Span>& spans);

}  // namespace imodec::obs
