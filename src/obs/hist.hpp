#pragma once
// Log-bucketed histogram with lock-free per-thread shards (DESIGN.md §13.1).
//
// Values are unsigned integers (the pipeline records microseconds, depths and
// node counts). Buckets follow the HDR scheme: values below 2^(kSubBits+1)
// land in exact unit buckets; above that each power-of-two range is split
// into 2^kSubBits sub-buckets, bounding the relative quantile error by
// 2^-kSubBits (6.25%). Quantile estimates return the bucket's *upper* bound,
// so an estimate is always >= the true order statistic and two values in the
// same bucket estimate identically — the property the reference-sort test
// pins down.
//
// Recording is wait-free: a thread picks a shard once (round-robin at first
// touch) and does relaxed fetch_adds into it; merges happen only on read by
// summing shards. Addition commutes, so a merged snapshot is bit-identical
// no matter how recording threads interleaved.

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace imodec::obs {

class Histogram {
 public:
  static constexpr unsigned kSubBits = 4;
  static constexpr unsigned kSubBuckets = 1u << kSubBits;  // 16
  // Exact region: [0, 2*kSubBuckets). Log region: one row of kSubBuckets per
  // power of two from 2^(kSubBits+1) up to 2^63 -> ((64-kSubBits)<<kSubBits)
  // + kSubBuckets = 976 buckets total; index 975 holds values up to 2^64-1.
  static constexpr unsigned kBuckets =
      ((64 - kSubBits) << kSubBits) | kSubBuckets;

  static constexpr unsigned bucket_index(std::uint64_t v) {
    if (v < 2 * kSubBuckets) return static_cast<unsigned>(v);
    const unsigned high = 63u - static_cast<unsigned>(std::countl_zero(v));
    const unsigned shift = high - kSubBits;
    const std::uint64_t mantissa = v >> shift;  // in [16, 32)
    return ((shift + 1u) << kSubBits) |
           static_cast<unsigned>(mantissa & (kSubBuckets - 1));
  }

  /// Smallest value mapping to bucket i.
  static constexpr std::uint64_t bucket_lo(unsigned i) {
    if (i < 2 * kSubBuckets) return i;
    const unsigned shift = (i >> kSubBits) - 1u;
    const std::uint64_t mantissa = kSubBuckets + (i & (kSubBuckets - 1));
    return mantissa << shift;
  }

  /// Largest value mapping to bucket i (the quantile estimate for it).
  static constexpr std::uint64_t bucket_hi(unsigned i) {
    if (i < 2 * kSubBuckets) return i;
    const unsigned shift = (i >> kSubBits) - 1u;
    const std::uint64_t mantissa = kSubBuckets + (i & (kSubBuckets - 1));
    return ((mantissa + 1) << shift) - 1;  // wraps to 2^64-1 for the top row
  }

  void record(std::uint64_t v) {
    Shard& s = shards_[shard_index()];
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t prev = s.max.load(std::memory_order_relaxed);
    while (v > prev && !s.max.compare_exchange_weak(
                           prev, v, std::memory_order_relaxed)) {
    }
    s.buckets[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t count() const;
  std::uint64_t sum() const;
  std::uint64_t max() const;

  /// Merged bucket counts (sum over shards).
  std::array<std::uint64_t, kBuckets> buckets() const;

  /// Upper bound of the bucket holding the ceil(q*count)-th smallest value
  /// (q clamped to (0,1]); 0 when empty.
  std::uint64_t quantile(double q) const;

  struct Summary {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t max = 0;
    std::uint64_t p50 = 0;
    std::uint64_t p90 = 0;
    std::uint64_t p99 = 0;
  };
  /// Count and quantiles computed from one merged bucket snapshot (so they
  /// agree with each other even under concurrent writers); sum/max read
  /// directly from the shards.
  Summary summary() const;

  void reset();

 private:
  static constexpr unsigned kShards = 16;
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> max{0};
    std::array<std::atomic<std::uint32_t>, kBuckets> buckets{};
  };
  static unsigned shard_index();
  Shard shards_[kShards];
};

}  // namespace imodec::obs
