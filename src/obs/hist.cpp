#include "obs/hist.hpp"

#include <algorithm>
#include <cmath>

namespace imodec::obs {

unsigned Histogram::shard_index() {
  static std::atomic<unsigned> next{0};
  // Round-robin assignment at first touch guarantees an even spread without
  // relying on the quality of std::thread::id hashing.
  thread_local const unsigned idx =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return idx;
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const Shard& s : shards_)
    total += s.count.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t Histogram::sum() const {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) total += s.sum.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t Histogram::max() const {
  std::uint64_t m = 0;
  for (const Shard& s : shards_)
    m = std::max(m, s.max.load(std::memory_order_relaxed));
  return m;
}

std::array<std::uint64_t, Histogram::kBuckets> Histogram::buckets() const {
  std::array<std::uint64_t, kBuckets> out{};
  for (const Shard& s : shards_)
    for (unsigned i = 0; i < kBuckets; ++i)
      out[i] += s.buckets[i].load(std::memory_order_relaxed);
  return out;
}

namespace {

std::uint64_t quantile_from(
    const std::array<std::uint64_t, Histogram::kBuckets>& b,
    std::uint64_t count, double q) {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  rank = std::clamp<std::uint64_t>(rank, 1, count);
  std::uint64_t seen = 0;
  for (unsigned i = 0; i < Histogram::kBuckets; ++i) {
    seen += b[i];
    if (seen >= rank) return Histogram::bucket_hi(i);
  }
  return Histogram::bucket_hi(Histogram::kBuckets - 1);  // unreachable
}

}  // namespace

std::uint64_t Histogram::quantile(double q) const {
  const auto b = buckets();
  std::uint64_t total = 0;
  for (std::uint64_t n : b) total += n;
  return quantile_from(b, total, q);
}

Histogram::Summary Histogram::summary() const {
  Summary s;
  const auto b = buckets();
  for (std::uint64_t n : b) s.count += n;
  s.sum = sum();
  s.max = max();
  s.p50 = quantile_from(b, s.count, 0.50);
  s.p90 = quantile_from(b, s.count, 0.90);
  s.p99 = quantile_from(b, s.count, 0.99);
  return s;
}

void Histogram::reset() {
  for (Shard& s : shards_) {
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    s.max.store(0, std::memory_order_relaxed);
    for (auto& bucket : s.buckets) bucket.store(0, std::memory_order_relaxed);
  }
}

}  // namespace imodec::obs
