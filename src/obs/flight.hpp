#pragma once
// Flight recorder: a fixed-capacity lock-free ring of timestamped structured
// events, kept so that when a governed run unwinds with Timeout /
// ResourceExhausted (or a fault-injection trip) the last ~1024 things the
// pipeline did can be dumped as JSON for a post-mortem (DESIGN.md §13.2).
//
// The recorder has its own enable switch, independent of obs::enabled():
// the driver force-enables it for governed runs so a timeout in an
// otherwise obs-off process still leaves a trail. When disabled, flight()
// is one relaxed atomic load.
//
// Ring protocol (per-slot seqlock): a writer claims a ticket with a relaxed
// fetch_add on the head counter, stores seq=0 to invalidate the slot, writes
// the payload as relaxed atomic words, then publishes seq=ticket+1; release
// fences order the three steps. A reader wanting ticket t double-reads seq
// around the payload copy (acquire fences in between) and keeps the event
// only if both reads equal t+1 — a concurrent overwrite by a writer 1024
// tickets ahead is detected and the event dropped rather than returned torn.
// Because seq values are unique per generation and the payload words are
// atomics, a lost event is the worst possible outcome; there is no UB and
// no torn data.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

namespace imodec::obs {

enum class FlightKind : std::uint8_t {
  phase,  ///< pipeline phase transition (a = phase ordinal)
  rung,   ///< degradation-ladder rung taken
  gc,     ///< BDD GC cycle (a = nodes before, b = after, c = pause us)
  guard,  ///< guard checkpoint margin (a = live nodes, b = budget, c = ms left)
  cache,  ///< unique-table / computed-cache resize (a = old, b = new)
  trip,   ///< Timeout / ResourceExhausted unwind (what = exhaustion kind)
};

const char* to_string(FlightKind k);

struct FlightEvent {
  double t_ms = 0;      ///< milliseconds since the recorder was last cleared
  FlightKind kind = FlightKind::phase;
  char what[23] = {};   ///< short label, truncated, always NUL-terminated
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
};

bool flight_enabled();
void set_flight_enabled(bool on);

class FlightRecorder {
 public:
  static constexpr std::size_t kCapacity = 1024;  // power of two
  static FlightRecorder& instance();

  void record(FlightKind kind, std::string_view what, std::uint64_t a,
              std::uint64_t b, std::uint64_t c);

  /// The (up to kCapacity) most recent events, oldest first. Events caught
  /// mid-overwrite are dropped, never returned torn.
  std::vector<FlightEvent> snapshot() const;

  /// Allocation-free snapshot for the fatal-signal path: fills `out` (sized
  /// for at least min(max, kCapacity) entries), returns the count. Same
  /// torn-slot discipline as snapshot().
  std::size_t snapshot_into(FlightEvent* out, std::size_t max) const;

  /// Total events ever recorded (monotone; exceeds kCapacity on wraparound).
  std::uint64_t total_recorded() const {
    return head_.load(std::memory_order_acquire);
  }

  /// Forget everything and restart the clock (run boundary).
  void clear();

 private:
  FlightRecorder();
  // A FlightEvent packed into atomic words so concurrent overwrite is a
  // detected lost event, never a data race.
  static constexpr std::size_t kWords = 7;
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> w[kWords];
  };
  std::atomic<std::uint64_t> head_{0};
  std::chrono::steady_clock::time_point epoch_;
  Slot slots_[kCapacity];
};

/// Record gated on flight_enabled(); the single call sites use.
inline void flight(FlightKind kind, std::string_view what, std::uint64_t a = 0,
                   std::uint64_t b = 0, std::uint64_t c = 0) {
  if (flight_enabled()) FlightRecorder::instance().record(kind, what, a, b, c);
}

/// {"recorded": N, "capacity": 1024, "events": [{t_ms,kind,what,a,b,c}...]}
Json flight_dump_json();

/// Last-gasp variant: write the ring to `fd` as one JSON line
/// ({"imodec_flight":{...}}\n) using only async-signal-safe operations —
/// no allocation, no locks, no stdio buffering. Safe to call from a fatal
/// signal handler (util::install_fatal_handler); also usable anywhere a
/// malloc-free dump is wanted. POSIX only (no-op elsewhere).
void flight_dump_fd(int fd);

/// Force the recorder on for a scope, restoring the previous state on exit.
class FlightEnableScope {
 public:
  explicit FlightEnableScope(bool on) : prev_(flight_enabled()) {
    if (on && !prev_) set_flight_enabled(true);
  }
  ~FlightEnableScope() { set_flight_enabled(prev_); }
  FlightEnableScope(const FlightEnableScope&) = delete;
  FlightEnableScope& operator=(const FlightEnableScope&) = delete;

 private:
  bool prev_;
};

}  // namespace imodec::obs
