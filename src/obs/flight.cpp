#include "obs/flight.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <type_traits>

#ifndef _WIN32
#include <unistd.h>
#endif

namespace imodec::obs {

namespace {
std::atomic<bool> g_flight_enabled{false};

static_assert(sizeof(FlightEvent) == 56, "packing assumes 7 words");
static_assert(std::is_trivially_copyable_v<FlightEvent>);
}  // namespace

bool flight_enabled() {
  return g_flight_enabled.load(std::memory_order_relaxed);
}
void set_flight_enabled(bool on) {
  g_flight_enabled.store(on, std::memory_order_relaxed);
}

const char* to_string(FlightKind k) {
  switch (k) {
    case FlightKind::phase: return "phase";
    case FlightKind::rung: return "rung";
    case FlightKind::gc: return "gc";
    case FlightKind::guard: return "guard";
    case FlightKind::cache: return "cache";
    case FlightKind::trip: return "trip";
  }
  return "?";
}

FlightRecorder::FlightRecorder() : epoch_(std::chrono::steady_clock::now()) {
  for (Slot& s : slots_)
    for (auto& w : s.w) w.store(0, std::memory_order_relaxed);
}

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder* rec = new FlightRecorder();  // leaked, like Registry
  return *rec;
}

void FlightRecorder::record(FlightKind kind, std::string_view what,
                            std::uint64_t a, std::uint64_t b,
                            std::uint64_t c) {
  FlightEvent ev;
  ev.t_ms = std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - epoch_)
                .count();
  ev.kind = kind;
  const std::size_t n = std::min(what.size(), sizeof(ev.what) - 1);
  std::memcpy(ev.what, what.data(), n);
  ev.a = a;
  ev.b = b;
  ev.c = c;

  std::uint64_t words[kWords];
  std::memcpy(words, &ev, sizeof(ev));

  const std::uint64_t ticket =
      head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket & (kCapacity - 1)];
  slot.seq.store(0, std::memory_order_relaxed);  // invalidate
  std::atomic_thread_fence(std::memory_order_release);
  for (std::size_t i = 0; i < kWords; ++i)
    slot.w[i].store(words[i], std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.seq.store(ticket + 1, std::memory_order_relaxed);  // publish
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  std::vector<FlightEvent> out(kCapacity);
  out.resize(snapshot_into(out.data(), out.size()));
  return out;
}

std::size_t FlightRecorder::snapshot_into(FlightEvent* out,
                                          std::size_t max) const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t window = head > kCapacity ? kCapacity : head;
  std::uint64_t first = head - window;
  if (window > max) first = head - max;
  std::size_t n = 0;
  for (std::uint64_t t = first; t < head; ++t) {
    const Slot& slot = slots_[t & (kCapacity - 1)];
    const std::uint64_t s1 = slot.seq.load(std::memory_order_relaxed);
    if (s1 != t + 1) continue;  // overwritten or in-flight
    std::atomic_thread_fence(std::memory_order_acquire);
    std::uint64_t words[kWords];
    for (std::size_t i = 0; i < kWords; ++i)
      words[i] = slot.w[i].load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    const std::uint64_t s2 = slot.seq.load(std::memory_order_relaxed);
    if (s2 != t + 1) continue;  // overwritten mid-copy
    FlightEvent ev;
    std::memcpy(&ev, words, sizeof(ev));
    ev.what[sizeof(ev.what) - 1] = '\0';  // belt and braces for dump paths
    out[n++] = ev;
  }
  return n;
}

void FlightRecorder::clear() {
  head_.store(0, std::memory_order_relaxed);
  for (Slot& s : slots_) s.seq.store(0, std::memory_order_relaxed);
  epoch_ = std::chrono::steady_clock::now();
}

void flight_dump_fd(int fd) {
#ifndef _WIN32
  // Static storage: a fatal handler may run on a tight signal stack, and
  // install_fatal_handler guarantees single entry, so no reentrancy hazard
  // worth trading async-signal safety for.
  static FlightEvent events[FlightRecorder::kCapacity];
  const FlightRecorder& rec = FlightRecorder::instance();
  const std::size_t n =
      rec.snapshot_into(events, FlightRecorder::kCapacity);

  char buf[256];
  const auto emit = [fd](const char* s, std::size_t len) {
    std::size_t off = 0;
    while (off < len) {
      const ssize_t w = ::write(fd, s + off, len - off);
      if (w <= 0) return;  // best effort; nowhere to report
      off += static_cast<std::size_t>(w);
    }
  };
  int len = std::snprintf(buf, sizeof(buf),
                          "{\"imodec_flight\":{\"recorded\":%llu,"
                          "\"capacity\":%llu,\"events\":[",
                          static_cast<unsigned long long>(rec.total_recorded()),
                          static_cast<unsigned long long>(
                              FlightRecorder::kCapacity));
  emit(buf, static_cast<std::size_t>(len));
  for (std::size_t i = 0; i < n; ++i) {
    const FlightEvent& ev = events[i];
    // `what` is one of our own short labels; scrub anything that could
    // break the JSON string rather than escape it.
    char what[sizeof(ev.what)];
    std::size_t wl = 0;
    for (; wl < sizeof(what) - 1 && ev.what[wl]; ++wl) {
      const char c = ev.what[wl];
      what[wl] = (c < 0x20 || c == '"' || c == '\\') ? '_' : c;
    }
    what[wl] = '\0';
    len = std::snprintf(buf, sizeof(buf),
                        "%s{\"t_ms\":%.3f,\"kind\":\"%s\",\"what\":\"%s\","
                        "\"a\":%llu,\"b\":%llu,\"c\":%llu}",
                        i ? "," : "", ev.t_ms, to_string(ev.kind), what,
                        static_cast<unsigned long long>(ev.a),
                        static_cast<unsigned long long>(ev.b),
                        static_cast<unsigned long long>(ev.c));
    if (len > 0) emit(buf, static_cast<std::size_t>(len));
  }
  emit("]}}\n", 4);
#else
  (void)fd;
#endif
}

Json flight_dump_json() {
  const FlightRecorder& rec = FlightRecorder::instance();
  Json doc = Json::object();
  doc["recorded"] = rec.total_recorded();
  doc["capacity"] = static_cast<std::uint64_t>(FlightRecorder::kCapacity);
  Json& events = doc["events"];
  events = Json::array();
  for (const FlightEvent& ev : rec.snapshot()) {
    Json e = Json::object();
    e["t_ms"] = ev.t_ms;
    e["kind"] = to_string(ev.kind);
    e["what"] = std::string(ev.what);
    e["a"] = ev.a;
    e["b"] = ev.b;
    e["c"] = ev.c;
    events.push_back(std::move(e));
  }
  return doc;
}

}  // namespace imodec::obs
