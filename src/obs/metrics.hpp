#pragma once
// Named counters and gauges in a process-wide registry (the numeric half of
// the observability layer; spans live in obs/trace.hpp).
//
// Counters are monotonic uint64 accumulators; gauges are settable int64
// values that also remember their maximum (e.g. peak live BDD nodes).
// Handles returned by the registry are stable for the process lifetime, so
// hot call sites can look a counter up once and increment a pointer
// thereafter. All instrumentation sites in the pipeline are gated on
// obs::enabled() — when observability is off (the default) no registry entry
// is created or touched, which is what the zero-overhead tests assert.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/hist.hpp"
#include "obs/json.hpp"

namespace imodec::obs {

/// Global observability switch. Off by default; flipping it on makes spans
/// record and instrumentation sites publish counters.
bool enabled();
void set_enabled(bool on);

class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) {
    value_.store(v, std::memory_order_relaxed);
    std::int64_t prev = max_.load(std::memory_order_relaxed);
    while (v > prev &&
           !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  std::int64_t max() const { return max_.load(std::memory_order_relaxed); }
  void reset() {
    value_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }
  /// Restart the max watermark from the current value (request boundary).
  void reset_watermark() {
    max_.store(value_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{0};
};

class Registry {
 public:
  static Registry& instance();

  /// Find-or-create; the returned reference stays valid forever.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Sorted-by-name snapshots.
  std::vector<std::pair<std::string, std::uint64_t>> counters() const;
  struct GaugeValue {
    std::int64_t value;
    std::int64_t max;
  };
  std::vector<std::pair<std::string, GaugeValue>> gauges() const;
  std::vector<std::pair<std::string, Histogram::Summary>> histograms() const;

  /// Zero every metric (entries stay registered). Tests and bench harnesses
  /// use this to isolate runs.
  void reset();

  /// Restart every gauge's max watermark from its current value, so peaks
  /// are per-request when a SynthesisSession serves many runs.
  void reset_watermarks();

  /// {"counters": {...}, "gauges": {name: {"value","max"}, ...},
  ///  "histograms": {name: {"count","sum","max","p50","p90","p99"}, ...}}
  Json to_json() const;
  /// Aligned name/value table; empty string when nothing is registered.
  std::string to_text() const;

 private:
  Registry() = default;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// `Registry::instance().counter(name).add(delta)` gated on enabled().
inline void count(std::string_view name, std::uint64_t delta = 1) {
  if (enabled()) Registry::instance().counter(name).add(delta);
}

/// `Registry::instance().gauge(name).set(v)` gated on enabled().
inline void gauge_set(std::string_view name, std::int64_t v) {
  if (enabled()) Registry::instance().gauge(name).set(v);
}

/// `Registry::instance().histogram(name).record(v)` gated on enabled().
/// Hot loops should instead hoist the Histogram* lookup outside the loop
/// (the lookup takes the registry mutex).
inline void observe(std::string_view name, std::uint64_t v) {
  if (enabled()) Registry::instance().histogram(name).record(v);
}

}  // namespace imodec::obs
