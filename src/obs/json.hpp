#pragma once
// Minimal JSON document model for the observability layer: the metrics/trace
// exporters build values, the bench harnesses emit per-circuit records, and
// the tests parse the emitted text back to validate it. Deliberately small —
// ordered object keys, doubles for all numbers (exact for the integer ranges
// we emit), UTF-8 passthrough with standard escape handling.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace imodec::obs {

class Json {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };
  using Array = std::vector<Json>;
  /// Insertion-ordered; lookups are linear (objects here are small).
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() : kind_(Kind::Null) {}
  Json(std::nullptr_t) : kind_(Kind::Null) {}
  Json(bool b) : kind_(Kind::Bool), bool_(b) {}
  Json(double d) : kind_(Kind::Number), num_(d) {}
  Json(int v) : kind_(Kind::Number), num_(v) {}
  Json(unsigned v) : kind_(Kind::Number), num_(v) {}
  Json(long v) : kind_(Kind::Number), num_(static_cast<double>(v)) {}
  Json(long long v) : kind_(Kind::Number), num_(static_cast<double>(v)) {}
  Json(unsigned long v) : kind_(Kind::Number), num_(static_cast<double>(v)) {}
  Json(unsigned long long v)
      : kind_(Kind::Number), num_(static_cast<double>(v)) {}
  Json(const char* s) : kind_(Kind::String), str_(s) {}
  Json(std::string s) : kind_(Kind::String), str_(std::move(s)) {}
  Json(std::string_view s) : kind_(Kind::String), str_(s) {}

  static Json array() {
    Json j;
    j.kind_ = Kind::Array;
    return j;
  }
  static Json object() {
    Json j;
    j.kind_ = Kind::Object;
    return j;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_bool() const { return kind_ == Kind::Bool; }
  bool is_number() const { return kind_ == Kind::Number; }
  bool is_string() const { return kind_ == Kind::String; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_object() const { return kind_ == Kind::Object; }

  bool as_bool() const { return bool_; }
  double as_number() const { return num_; }
  const std::string& as_string() const { return str_; }
  const Array& items() const { return arr_; }
  /// Last element of an array value (must be a non-empty array).
  Json& back() { return arr_.back(); }
  const Object& members() const { return obj_; }

  /// Array append (value must be an array; a null value becomes one).
  void push_back(Json v);
  /// Object insert-or-assign (value must be an object; a null becomes one).
  Json& operator[](std::string_view key);
  /// Object lookup; nullptr when absent or not an object.
  const Json* find(std::string_view key) const;

  std::size_t size() const {
    return kind_ == Kind::Array ? arr_.size()
           : kind_ == Kind::Object ? obj_.size()
                                   : 0;
  }

  /// Serialize. indent < 0: compact one-liner; otherwise pretty-printed
  /// with `indent` spaces per level.
  std::string dump(int indent = -1) const;

  /// Strict parse of a complete document; nullopt on any syntax error or
  /// trailing garbage.
  static std::optional<Json> parse(std::string_view text);

 private:
  void dump_rec(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

/// Escape a string for embedding in JSON output (adds the quotes).
std::string json_quote(std::string_view s);

/// Write `doc.dump(2)` plus a trailing newline to `path`. Returns false on
/// I/O failure.
bool write_json_file(const std::string& path, const Json& doc);

}  // namespace imodec::obs
