#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace imodec::obs {

namespace {

void append_utf8(std::string& out, unsigned cp) {
  if (cp < 0x80) {
    out.push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
  } else {
    out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
  }
}

std::string format_number(double d) {
  if (!std::isfinite(d)) return "null";  // JSON has no Inf/NaN
  // Integers in the exactly-representable range print without a fraction.
  if (d == std::floor(d) && std::fabs(d) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", d);
    return buf;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  // Trim to the shortest round-tripping representation.
  for (int prec = 1; prec < 17; ++prec) {
    char probe[32];
    std::snprintf(probe, sizeof probe, "%.*g", prec, d);
    if (std::strtod(probe, nullptr) == d) return probe;
  }
  return buf;
}

class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  std::optional<Json> run() {
    auto v = parse_value();
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != s_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  std::optional<Json> parse_value() {
    skip_ws();
    if (pos_ >= s_.size()) return std::nullopt;
    switch (s_[pos_]) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return parse_string();
      case 't':
        return literal("true") ? std::optional<Json>(Json(true)) : std::nullopt;
      case 'f':
        return literal("false") ? std::optional<Json>(Json(false))
                                : std::nullopt;
      case 'n':
        return literal("null") ? std::optional<Json>(Json(nullptr))
                               : std::nullopt;
      default:
        return parse_number();
    }
  }

  std::optional<Json> parse_object() {
    ++pos_;  // '{'
    Json obj = Json::object();
    if (consume('}')) return obj;
    for (;;) {
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != '"') return std::nullopt;
      auto key = parse_string();
      if (!key) return std::nullopt;
      if (!consume(':')) return std::nullopt;
      auto val = parse_value();
      if (!val) return std::nullopt;
      obj[key->as_string()] = std::move(*val);
      if (consume(',')) continue;
      if (consume('}')) return obj;
      return std::nullopt;
    }
  }

  std::optional<Json> parse_array() {
    ++pos_;  // '['
    Json arr = Json::array();
    if (consume(']')) return arr;
    for (;;) {
      auto val = parse_value();
      if (!val) return std::nullopt;
      arr.push_back(std::move(*val));
      if (consume(',')) continue;
      if (consume(']')) return arr;
      return std::nullopt;
    }
  }

  std::optional<Json> parse_string() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return Json(std::move(out));
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) return std::nullopt;
      const char e = s_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return std::nullopt;
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else return std::nullopt;
          }
          append_utf8(out, cp);  // surrogate pairs not recombined (unused here)
          break;
        }
        default:
          return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Json> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) return std::nullopt;
    const std::string tok(s_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) return std::nullopt;
    return Json(d);
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string json_quote(std::string_view s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void Json::push_back(Json v) {
  if (kind_ == Kind::Null) kind_ = Kind::Array;
  arr_.push_back(std::move(v));
}

Json& Json::operator[](std::string_view key) {
  if (kind_ == Kind::Null) kind_ = Kind::Object;
  for (auto& [k, v] : obj_)
    if (k == key) return v;
  obj_.emplace_back(std::string(key), Json());
  return obj_.back().second;
}

const Json* Json::find(std::string_view key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [k, v] : obj_)
    if (k == key) return &v;
  return nullptr;
}

void Json::dump_rec(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent < 0) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (kind_) {
    case Kind::Null: out += "null"; break;
    case Kind::Bool: out += bool_ ? "true" : "false"; break;
    case Kind::Number: out += format_number(num_); break;
    case Kind::String: out += json_quote(str_); break;
    case Kind::Array: {
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i) out.push_back(',');
        newline(depth + 1);
        arr_[i].dump_rec(out, indent, depth + 1);
      }
      newline(depth);
      out.push_back(']');
      break;
    }
    case Kind::Object: {
      if (obj_.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i) out.push_back(',');
        newline(depth + 1);
        out += json_quote(obj_[i].first);
        out += indent < 0 ? ":" : ": ";
        obj_[i].second.dump_rec(out, indent, depth + 1);
      }
      newline(depth);
      out.push_back('}');
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_rec(out, indent, 0);
  return out;
}

std::optional<Json> Json::parse(std::string_view text) {
  return Parser(text).run();
}

bool write_json_file(const std::string& path, const Json& doc) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string text = doc.dump(2);
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size() &&
                  std::fputc('\n', f) != EOF;
  return std::fclose(f) == 0 && ok;
}

}  // namespace imodec::obs
