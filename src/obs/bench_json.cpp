#include "obs/bench_json.hpp"

#include <cstring>
#include <map>

#include "obs/metrics.hpp"

namespace imodec::obs {

BenchJson::BenchJson(std::string bench_name)
    : bench_name_(std::move(bench_name)) {}

Json& BenchJson::add_record(const std::string& circuit, double seconds) {
  Json rec = Json::object();
  rec["circuit"] = circuit;
  rec["seconds"] = seconds;
  records_.push_back(std::move(rec));
  // Valid until the next add_record, which is the documented usage window.
  return records_.back();
}

bool BenchJson::write(const std::string& path) const {
  Json doc = Json::object();
  doc["bench"] = bench_name_;
  doc["schema_version"] = kBenchSchemaVersion;
  doc["records"] = records_;
  return write_json_file(path, doc);
}

std::optional<std::string> strip_json_flag(int& argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") != 0) continue;
    const std::string path = argv[i + 1];
    for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
    argc -= 2;
    return path;
  }
  return std::nullopt;
}

std::optional<unsigned> strip_threads_flag(int& argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") != 0) continue;
    const unsigned threads =
        static_cast<unsigned>(std::strtoul(argv[i + 1], nullptr, 10));
    for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
    argc -= 2;
    return threads;
  }
  return std::nullopt;
}

bool strip_obs_flag(int& argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--obs") != 0) continue;
    for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
    argc -= 1;
    return true;
  }
  return false;
}

std::optional<std::string> strip_report_dir_flag(int& argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--report-dir") != 0) continue;
    const std::string dir = argv[i + 1];
    for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
    argc -= 2;
    return dir;
  }
  return std::nullopt;
}

void add_obs_summary(Json& rec) {
  Registry& reg = Registry::instance();
  for (const auto& [name, s] : reg.histograms()) {
    if (s.count == 0) continue;
    rec[name + "_p50"] = s.p50;
    rec[name + "_p99"] = s.p99;
  }
  // Per-op-class computed-cache hit rates, summed over every manager prefix
  // that published ("bdd.cache_lookups.ite", "miter.bdd.cache_lookups.ite",
  // ...). Counter-name based so this layer needs no bdd dependency.
  std::map<std::string, std::uint64_t> lookups, hits;
  constexpr std::string_view kLookups = ".cache_lookups.";
  constexpr std::string_view kHits = ".cache_hits.";
  for (const auto& [name, value] : reg.counters()) {
    if (const auto pos = name.find(kLookups); pos != std::string::npos)
      lookups[name.substr(pos + kLookups.size())] += value;
    else if (const auto hpos = name.find(kHits); hpos != std::string::npos)
      hits[name.substr(hpos + kHits.size())] += value;
  }
  for (const auto& [op, n] : lookups) {
    if (n == 0) continue;
    const auto hit = hits.find(op);
    rec["cache_hit_rate_" + op] =
        hit == hits.end() ? 0.0
                          : static_cast<double>(hit->second) /
                                static_cast<double>(n);
  }
}

bool write_obs_report(const std::string& dir, const std::string& bench_name) {
  Json doc = Json::object();
  doc["bench"] = bench_name;
  doc["schema_version"] = kBenchSchemaVersion;
  doc["metrics"] = Registry::instance().to_json();
  return write_json_file(dir + "/" + bench_name + "_obs.json", doc);
}

}  // namespace imodec::obs
