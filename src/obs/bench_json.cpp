#include "obs/bench_json.hpp"

#include <cstring>

namespace imodec::obs {

BenchJson::BenchJson(std::string bench_name)
    : bench_name_(std::move(bench_name)) {}

Json& BenchJson::add_record(const std::string& circuit, double seconds) {
  Json rec = Json::object();
  rec["circuit"] = circuit;
  rec["seconds"] = seconds;
  records_.push_back(std::move(rec));
  // Valid until the next add_record, which is the documented usage window.
  return records_.back();
}

bool BenchJson::write(const std::string& path) const {
  Json doc = Json::object();
  doc["bench"] = bench_name_;
  doc["schema_version"] = kBenchSchemaVersion;
  doc["records"] = records_;
  return write_json_file(path, doc);
}

std::optional<std::string> strip_json_flag(int& argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") != 0) continue;
    const std::string path = argv[i + 1];
    for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
    argc -= 2;
    return path;
  }
  return std::nullopt;
}

std::optional<unsigned> strip_threads_flag(int& argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") != 0) continue;
    const unsigned threads =
        static_cast<unsigned>(std::strtoul(argv[i + 1], nullptr, 10));
    for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
    argc -= 2;
    return threads;
  }
  return std::nullopt;
}

}  // namespace imodec::obs
