#include "obs/metrics.hpp"

#include "util/strings.hpp"

namespace imodec::obs {

namespace {
std::atomic<bool> g_enabled{false};
}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

Registry& Registry::instance() {
  static Registry* reg = new Registry();  // leaked: outlives all users
  return *reg;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  return *it->second;
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, Registry::GaugeValue>> Registry::gauges()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, GaugeValue>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_)
    out.emplace_back(name, GaugeValue{g->value(), g->max()});
  return out;
}

std::vector<std::pair<std::string, Histogram::Summary>> Registry::histograms()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, Histogram::Summary>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_)
    out.emplace_back(name, h->summary());
  return out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

void Registry::reset_watermarks() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, g] : gauges_) g->reset_watermark();
}

Json Registry::to_json() const {
  Json out = Json::object();
  Json& counters = out["counters"];
  counters = Json::object();
  for (const auto& [name, value] : this->counters()) counters[name] = value;
  Json& gauges = out["gauges"];
  gauges = Json::object();
  for (const auto& [name, gv] : this->gauges()) {
    Json g = Json::object();
    g["value"] = gv.value;
    g["max"] = gv.max;
    gauges[name] = std::move(g);
  }
  Json& hists = out["histograms"];
  hists = Json::object();
  for (const auto& [name, s] : this->histograms()) {
    Json h = Json::object();
    h["count"] = s.count;
    h["sum"] = s.sum;
    h["max"] = s.max;
    h["p50"] = s.p50;
    h["p90"] = s.p90;
    h["p99"] = s.p99;
    hists[name] = std::move(h);
  }
  return out;
}

std::string Registry::to_text() const {
  std::string out;
  for (const auto& [name, value] : counters())
    out += strprintf("  %-36s %12llu\n", name.c_str(),
                     static_cast<unsigned long long>(value));
  for (const auto& [name, gv] : gauges())
    out += strprintf("  %-36s %12lld  (max %lld)\n", name.c_str(),
                     static_cast<long long>(gv.value),
                     static_cast<long long>(gv.max));
  for (const auto& [name, s] : histograms())
    out += strprintf(
        "  %-36s %12llu  (p50 %llu, p90 %llu, p99 %llu, max %llu)\n",
        name.c_str(), static_cast<unsigned long long>(s.count),
        static_cast<unsigned long long>(s.p50),
        static_cast<unsigned long long>(s.p90),
        static_cast<unsigned long long>(s.p99),
        static_cast<unsigned long long>(s.max));
  return out;
}

}  // namespace imodec::obs
