#include "obs/metrics.hpp"

#include "util/strings.hpp"

namespace imodec::obs {

namespace {
std::atomic<bool> g_enabled{false};
}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

Registry& Registry::instance() {
  static Registry* reg = new Registry();  // leaked: outlives all users
  return *reg;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, Registry::GaugeValue>> Registry::gauges()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, GaugeValue>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_)
    out.emplace_back(name, GaugeValue{g->value(), g->max()});
  return out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
}

Json Registry::to_json() const {
  Json out = Json::object();
  Json& counters = out["counters"];
  counters = Json::object();
  for (const auto& [name, value] : this->counters()) counters[name] = value;
  Json& gauges = out["gauges"];
  gauges = Json::object();
  for (const auto& [name, gv] : this->gauges()) {
    Json g = Json::object();
    g["value"] = gv.value;
    g["max"] = gv.max;
    gauges[name] = std::move(g);
  }
  return out;
}

std::string Registry::to_text() const {
  std::string out;
  for (const auto& [name, value] : counters())
    out += strprintf("  %-36s %12llu\n", name.c_str(),
                     static_cast<unsigned long long>(value));
  for (const auto& [name, gv] : gauges())
    out += strprintf("  %-36s %12lld  (max %lld)\n", name.c_str(),
                     static_cast<long long>(gv.value),
                     static_cast<long long>(gv.max));
  return out;
}

}  // namespace imodec::obs
