#pragma once
// Local compatibility partitions and the global partition (paper §3, §4).
//
// Two bound-set vertices are compatible for output f iff all their
// decomposition-chart columns agree (Def. 1); the equivalence classes are the
// local classes, and their product over all outputs is the global partition
// (Def. 2). Both a truth-table path and a BDD-cofactor path are provided;
// the tests cross-check them against each other.

#include "bdd/bdd.hpp"
#include "decomp/types.hpp"

namespace imodec {

/// Local compatibility partition Π_f of `f` under `vp` via decomposition-
/// chart columns. Classes are numbered in first-occurrence order over the
/// BS-vertex index, so results are deterministic.
VertexPartition local_partition_tt(const TruthTable& f, const VarPartition& vp);

/// Same, computed from a BDD: `f` must live in a manager whose variable
/// order has bs_vars anywhere; vertices are enumerated by cofactoring on
/// bs_vars in the given order (vertex bit i = value of bs_vars[i]).
VertexPartition local_partition_bdd(const bdd::Bdd& f,
                                    const std::vector<unsigned>& bs_vars);

/// Global partition Π̂ = Π_{f1} · ... · Π_{fm} (Def. 2).
VertexPartition global_partition(const std::vector<VertexPartition>& locals);

/// For each local class of `local`, the sorted set of global classes it
/// contains (every local class is a union of global classes since the global
/// partition refines every local one).
std::vector<std::vector<std::uint32_t>> local_to_global(
    const VertexPartition& local, const VertexPartition& global);

/// Column multiplicity shortcut: number of local classes.
std::uint32_t column_multiplicity(const TruthTable& f, const VarPartition& vp);

}  // namespace imodec
