#include "decomp/classes.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_map>

namespace imodec {

VertexPartition local_partition_tt(const TruthTable& f,
                                   const VarPartition& vp) {
  const unsigned b = vp.b();
  const unsigned nf = static_cast<unsigned>(vp.free_set.size());
  assert(b + nf <= f.num_vars() ||
         (b + nf == vp.bound.size() + vp.free_set.size()));

  VertexPartition part;
  part.b = b;
  part.class_of.resize(std::uint64_t{1} << b);

  // Column of BS-vertex x: bits f(x, y) over all FS vertices y. The input
  // index of (x, y) is base[x] | off[y]; both maps are precomputed so the
  // inner loop is two lookups (this is the hottest loop of the flow).
  const std::uint64_t rows = std::uint64_t{1} << nf;
  std::vector<std::uint64_t> base(part.num_vertices(), 0);
  for (std::uint64_t x = 0; x < part.num_vertices(); ++x)
    for (unsigned i = 0; i < b; ++i)
      if ((x >> i) & 1) base[x] |= std::uint64_t{1} << vp.bound[i];
  std::vector<std::uint64_t> off(rows, 0);
  for (std::uint64_t y = 0; y < rows; ++y)
    for (unsigned j = 0; j < nf; ++j)
      if ((y >> j) & 1) off[y] |= std::uint64_t{1} << vp.free_set[j];

  std::unordered_map<BitVec, std::uint32_t, BitVecHash> column_ids;
  std::uint32_t next_id = 0;
  BitVec column(rows);
  for (std::uint64_t x = 0; x < part.num_vertices(); ++x) {
    for (std::uint64_t y = 0; y < rows; ++y)
      column.set(y, f.eval(base[x] | off[y]));
    auto [it, inserted] = column_ids.emplace(column, next_id);
    if (inserted) ++next_id;
    part.class_of[x] = it->second;
  }
  part.num_classes = next_id;
  return part;
}

VertexPartition local_partition_bdd(const bdd::Bdd& f,
                                    const std::vector<unsigned>& bs_vars) {
  const unsigned b = static_cast<unsigned>(bs_vars.size());
  VertexPartition part;
  part.b = b;
  part.class_of.resize(std::uint64_t{1} << b);

  // The cofactor of f w.r.t. a full BS assignment identifies the column
  // pattern; equal BDD nodes == equal columns (canonicity).
  std::unordered_map<bdd::NodeId, std::uint32_t> ids;
  std::uint32_t next_id = 0;
  for (std::uint64_t x = 0; x < part.num_vertices(); ++x) {
    bdd::Bdd cof = f;
    for (unsigned i = 0; i < b; ++i)
      cof = cof.cofactor(bs_vars[i], (x >> i) & 1);
    auto [it, inserted] = ids.emplace(cof.node(), next_id);
    if (inserted) ++next_id;
    part.class_of[x] = it->second;
  }
  part.num_classes = next_id;
  return part;
}

VertexPartition global_partition(const std::vector<VertexPartition>& locals) {
  std::vector<const VertexPartition*> ptrs;
  ptrs.reserve(locals.size());
  for (const auto& l : locals) ptrs.push_back(&l);
  return VertexPartition::product(ptrs);
}

std::vector<std::vector<std::uint32_t>> local_to_global(
    const VertexPartition& local, const VertexPartition& global) {
  assert(global.refines(local));
  std::vector<std::vector<std::uint32_t>> contains(local.num_classes);
  std::vector<bool> seen(global.num_classes, false);
  for (std::uint64_t v = 0; v < local.num_vertices(); ++v) {
    const std::uint32_t g = global.class_of[v];
    if (!seen[g]) {
      seen[g] = true;
      contains[local.class_of[v]].push_back(g);
    }
  }
  for (auto& list : contains) std::sort(list.begin(), list.end());
  return contains;
}

std::uint32_t column_multiplicity(const TruthTable& f,
                                  const VarPartition& vp) {
  return local_partition_tt(f, vp).num_classes;
}

}  // namespace imodec
