#pragma once
// Bound-set (variable partitioning) selection heuristic.
//
// The paper solves variable partitioning with the heuristic of [15] (an
// unavailable workshop paper); per DESIGN.md we substitute our own: exhaustive
// enumeration of bound sets for small supports, seeded sampling plus
// hill-climbing swaps otherwise. The objective mirrors the paper's discussion
// in §4/§7: primarily minimize the number p of global classes (more sharing
// potential, Property 1 lower bound), tie-broken by the sum of local class
// counts, requiring a non-trivial decomposition (c_k < b) for every output.

#include <cstdint>
#include <optional>

#include "decomp/classes.hpp"
#include "decomp/types.hpp"

namespace imodec::util {
class ResourceGuard;
class ThreadPool;
}  // namespace imodec::util

namespace imodec {

struct VarPartOptions {
  unsigned bound_size = 5;          // b; clamped to n-1
  std::size_t max_exhaustive = 4096;  // enumerate all C(n,b) up to this many
  std::size_t samples = 64;           // random candidates otherwise
  std::size_t climb_iters = 48;       // swap-improvement steps
  /// Total row-evaluation budget for the search; one candidate costs
  /// m * 2^n rows, so wide vectors automatically get fewer candidates.
  /// Integral on purpose: the candidate-cost math stays exact (and clamps)
  /// instead of drifting through doubles on huge supports.
  std::uint64_t eval_budget = std::uint64_t{1} << 24;
  std::uint64_t seed = 0xB0D5ull;
  /// Evaluate candidate bound sets in parallel on this pool (not owned;
  /// nullptr = serial). The chosen bound set is identical either way: the
  /// candidate list is generated up front and reduced in candidate order.
  util::ThreadPool* pool = nullptr;
  /// Require strict progress for every output: the bound set must overlap
  /// output k's support in more than c_k variables, so replacing f_k by its
  /// g strictly shrinks the support (c_k + |FS ∩ sup| < |sup|). For a
  /// full-support single output this reduces to the classical c < b. If no
  /// candidate satisfies this, choose_bound_set returns nullopt.
  bool require_nontrivial = true;
  /// Resource governance (not owned; nullptr = ungoverned). Checkpointed
  /// once per candidate evaluation; a deadline/cancellation trip in any
  /// worker unwinds the whole search through parallel_for (DESIGN.md §12).
  util::ResourceGuard* guard = nullptr;
};

struct VarPartChoice {
  VarPartition vp;
  VertexPartition global;                 // Π̂ for the chosen bound set
  std::vector<VertexPartition> locals;    // Π_{f_k}
  std::uint32_t p() const { return global.num_classes; }
};

/// Choose a bound set of size opts.bound_size for the function vector
/// `outputs` (all over the same `num_vars` variables). Returns nullopt if no
/// candidate yields a non-trivial decomposition for every output.
std::optional<VarPartChoice> choose_bound_set(
    const std::vector<TruthTable>& outputs, unsigned num_vars,
    const VarPartOptions& opts = {});

/// Score helper exposed for tests: evaluates one candidate bound set.
std::optional<VarPartChoice> evaluate_bound_set(
    const std::vector<TruthTable>& outputs, unsigned num_vars,
    const std::vector<unsigned>& bound, bool require_nontrivial);

}  // namespace imodec
