#include "decomp/types.hpp"

#include <cassert>
#include <unordered_map>

#include "util/combinatorics.hpp"

namespace imodec {

bool VertexPartition::refines(const VertexPartition& coarser) const {
  assert(b == coarser.b);
  // Each of our classes must map into exactly one coarser class.
  std::vector<std::uint32_t> image(num_classes, 0xffffffffu);
  for (std::uint64_t v = 0; v < num_vertices(); ++v) {
    const std::uint32_t mine = class_of[v];
    const std::uint32_t theirs = coarser.class_of[v];
    if (image[mine] == 0xffffffffu) {
      image[mine] = theirs;
    } else if (image[mine] != theirs) {
      return false;
    }
  }
  return true;
}

VertexPartition VertexPartition::product(
    const std::vector<const VertexPartition*>& parts) {
  assert(!parts.empty());
  const unsigned b = parts.front()->b;
  VertexPartition result;
  result.b = b;
  result.class_of.resize(std::uint64_t{1} << b);

  // Combine per-vertex class tuples; assign ids in first-occurrence order.
  std::unordered_map<std::uint64_t, std::uint32_t> seen;
  std::uint32_t next_id = 0;
  for (std::uint64_t v = 0; v < result.num_vertices(); ++v) {
    std::uint64_t key = 0x9e3779b97f4a7c15ull;
    for (const VertexPartition* p : parts) {
      assert(p->b == b);
      key ^= p->class_of[v] + 0x9e3779b97f4a7c15ull + (key << 6) + (key >> 2);
    }
    auto [it, inserted] = seen.emplace(key, next_id);
    if (inserted) ++next_id;
    result.class_of[v] = it->second;
  }
  result.num_classes = next_id;

#ifndef NDEBUG
  // Hash combination could in principle collide; verify the result refines
  // every factor (cheap at these sizes, debug builds only).
  for (const VertexPartition* p : parts) assert(result.refines(*p));
#endif
  return result;
}

std::vector<std::vector<std::uint32_t>> VertexPartition::members() const {
  std::vector<std::vector<std::uint32_t>> m(num_classes);
  for (std::uint64_t v = 0; v < num_vertices(); ++v)
    m[class_of[v]].push_back(static_cast<std::uint32_t>(v));
  return m;
}

unsigned codewidth(std::uint32_t num_classes) {
  assert(num_classes >= 1);
  return static_cast<unsigned>(ceil_log2(num_classes));
}

}  // namespace imodec
