#include "decomp/varpart.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/resource.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace imodec {

namespace {

VarPartition make_vp(unsigned num_vars, std::vector<unsigned> bound) {
  std::sort(bound.begin(), bound.end());
  VarPartition vp;
  vp.bound = std::move(bound);
  for (unsigned v = 0; v < num_vars; ++v) {
    if (!std::binary_search(vp.bound.begin(), vp.bound.end(), v))
      vp.free_set.push_back(v);
  }
  return vp;
}

/// Lexicographic score: (p, Σ ℓ_k); smaller is better.
std::pair<std::uint64_t, std::uint64_t> score(const VarPartChoice& c) {
  std::uint64_t sum_l = 0;
  for (const auto& l : c.locals) sum_l += l.num_classes;
  return {c.global.num_classes, sum_l};
}

std::optional<VarPartChoice> evaluate_with_supports(
    const std::vector<TruthTable>& outputs, unsigned num_vars,
    const std::vector<unsigned>& bound, bool require_nontrivial,
    const std::vector<std::vector<unsigned>>& supports) {
  VarPartChoice choice;
  choice.vp = make_vp(num_vars, bound);
  choice.locals.reserve(outputs.size());
  for (std::size_t k = 0; k < outputs.size(); ++k) {
    VertexPartition lp = local_partition_tt(outputs[k], choice.vp);
    if (require_nontrivial) {
      // Strict per-output progress: overlap with the support must exceed
      // the codewidth (see VarPartOptions::require_nontrivial).
      unsigned overlap = 0;
      for (unsigned v : supports[k])
        overlap += std::binary_search(choice.vp.bound.begin(),
                                      choice.vp.bound.end(), v);
      if (overlap <= codewidth(lp.num_classes)) return std::nullopt;
    }
    choice.locals.push_back(std::move(lp));
  }
  choice.global = global_partition(choice.locals);
  return choice;
}

/// Per-candidate evaluation-time histogram, or nullptr when observability is
/// off. Call sites hoist this lookup out of their candidate loops so the hot
/// path pays only two clock reads per multi-microsecond evaluation.
obs::Histogram* candidate_hist() {
  return obs::enabled()
             ? &obs::Registry::instance().histogram("varpart.candidate_us")
             : nullptr;
}

std::uint64_t us_since(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

/// Evaluate every candidate in `cands` (in parallel when a pool is given)
/// and return the best by (score, candidate index) — the same winner a
/// serial first-strictly-better scan keeps, so results are independent of
/// the thread count.
std::optional<VarPartChoice> evaluate_candidates(
    const std::vector<TruthTable>& outputs, unsigned num_vars,
    const std::vector<std::vector<unsigned>>& cands, bool require_nontrivial,
    const std::vector<std::vector<unsigned>>& supports,
    util::ThreadPool* pool, util::ResourceGuard* guard) {
  std::vector<std::optional<VarPartChoice>> results(cands.size());
  obs::Histogram* const hist = candidate_hist();
  const auto eval_one = [&](std::size_t i) {
    // One checkpoint per candidate: a deadline/cancellation trip in any
    // worker unwinds through parallel_for (the first exception stops the
    // remaining chunks and is rethrown on the caller).
    if (guard) guard->checkpoint();
    const auto t0 = hist ? std::chrono::steady_clock::now()
                         : std::chrono::steady_clock::time_point{};
    results[i] = evaluate_with_supports(outputs, num_vars, cands[i],
                                        require_nontrivial, supports);
    if (hist) hist->record(us_since(t0));
  };
  if (pool && cands.size() > 1) {
    const int parent = obs::enabled() ? obs::Trace::global().current() : -1;
    pool->parallel_for(cands.size(), [&](std::size_t i) {
      obs::AdoptParentScope adopt(parent);
      eval_one(i);
    });
  } else {
    for (std::size_t i = 0; i < cands.size(); ++i) eval_one(i);
  }
  std::optional<VarPartChoice> best;
  for (auto& cand : results) {
    if (!cand) continue;
    if (!best || score(*cand) < score(*best)) best = std::move(cand);
  }
  return best;
}

}  // namespace

std::optional<VarPartChoice> evaluate_bound_set(
    const std::vector<TruthTable>& outputs, unsigned num_vars,
    const std::vector<unsigned>& bound, bool require_nontrivial) {
  std::vector<std::vector<unsigned>> supports;
  supports.reserve(outputs.size());
  for (const TruthTable& f : outputs) supports.push_back(f.support());
  return evaluate_with_supports(outputs, num_vars, bound, require_nontrivial,
                                supports);
}

std::optional<VarPartChoice> choose_bound_set(
    const std::vector<TruthTable>& outputs, unsigned num_vars,
    const VarPartOptions& opts) {
  assert(!outputs.empty());
#ifndef NDEBUG
  for (const TruthTable& f : outputs) assert(f.num_vars() == num_vars);
#endif
  if (num_vars < 2) return std::nullopt;

  unsigned b = std::min(opts.bound_size, num_vars - 1);
  if (b == 0) return std::nullopt;

  // Evaluating one candidate costs m * 2^n row reads; budget the number of
  // candidates so wide vectors stay tractable (the paper's flow likewise
  // limits effort on large supports, §7). All in exact uint64 arithmetic:
  // m <= 64 and n <= TruthTable::kMaxVars keep m << n far below overflow.
  const std::uint64_t row_cost = static_cast<std::uint64_t>(outputs.size())
                                 << num_vars;
  const std::size_t allowed = static_cast<std::size_t>(std::clamp<std::uint64_t>(
      opts.eval_budget / row_cost, 4, std::uint64_t{1} << 20));

  std::vector<std::vector<unsigned>> supports;
  supports.reserve(outputs.size());
  for (const TruthTable& f : outputs) supports.push_back(f.support());

  // Count C(num_vars, b) with saturation.
  std::uint64_t combos = 1;
  for (unsigned i = 0; i < b; ++i) {
    combos = combos * (num_vars - i) / (i + 1);
    if (combos > opts.max_exhaustive * 4) break;
  }

  // Candidate generation is serial and cheap; evaluation is the hot part
  // and fans out over the pool.
  std::vector<std::vector<unsigned>> cands;
  if (combos <= std::min(opts.max_exhaustive, allowed)) {
    // Exhaustive enumeration of all bound sets of size b.
    cands.reserve(static_cast<std::size_t>(combos));
    std::vector<unsigned> idx(b);
    for (unsigned i = 0; i < b; ++i) idx[i] = i;
    for (;;) {
      cands.push_back(idx);
      // next combination
      int i = static_cast<int>(b) - 1;
      while (i >= 0 && idx[i] == num_vars - b + i) --i;
      if (i < 0) break;
      ++idx[i];
      for (unsigned j = static_cast<unsigned>(i) + 1; j < b; ++j)
        idx[j] = idx[j - 1] + 1;
    }
    return evaluate_candidates(outputs, num_vars, cands,
                               opts.require_nontrivial, supports, opts.pool,
                               opts.guard);
  }

  // Sampling + hill climbing.
  Rng rng(opts.seed);
  std::vector<unsigned> all(num_vars);
  for (unsigned v = 0; v < num_vars; ++v) all[v] = v;

  const std::size_t samples = std::min(opts.samples, allowed);
  cands.reserve(samples);
  for (std::size_t s = 0; s < samples; ++s) {
    // Random b-subset (partial Fisher-Yates).
    std::vector<unsigned> pool_vars = all;
    for (unsigned i = 0; i < b; ++i) {
      const std::size_t j =
          i + static_cast<std::size_t>(rng.below(pool_vars.size() - i));
      std::swap(pool_vars[i], pool_vars[j]);
    }
    cands.emplace_back(pool_vars.begin(), pool_vars.begin() + b);
  }
  std::optional<VarPartChoice> best = evaluate_candidates(
      outputs, num_vars, cands, opts.require_nontrivial, supports, opts.pool,
      opts.guard);
  if (!best) return std::nullopt;

  // Hill climbing: try swapping one bound variable against one free one.
  // Each iteration evaluates the whole neighborhood in parallel, then keeps
  // the first improving neighbor in (bi, fi) order — the same neighbor the
  // serial first-improvement scan accepts.
  const std::size_t climb_cost =
      static_cast<std::size_t>(b) * (num_vars - b);
  const std::size_t climb_iters =
      climb_cost > allowed ? 0
                           : std::min<std::size_t>(opts.climb_iters,
                                                   allowed / climb_cost + 1);
  for (std::size_t it = 0; it < climb_iters; ++it) {
    const auto current = score(*best);
    const VarPartition vp = best->vp;
    std::vector<std::vector<unsigned>> neighbors;
    neighbors.reserve(climb_cost);
    for (std::size_t bi = 0; bi < vp.bound.size(); ++bi) {
      for (std::size_t fi = 0; fi < vp.free_set.size(); ++fi) {
        std::vector<unsigned> bound = vp.bound;
        bound[bi] = vp.free_set[fi];
        neighbors.push_back(std::move(bound));
      }
    }
    std::vector<std::optional<VarPartChoice>> results(neighbors.size());
    obs::Histogram* const hist = candidate_hist();
    const auto eval_one = [&](std::size_t i) {
      if (opts.guard) opts.guard->checkpoint();
      const auto t0 = hist ? std::chrono::steady_clock::now()
                           : std::chrono::steady_clock::time_point{};
      results[i] = evaluate_with_supports(outputs, num_vars, neighbors[i],
                                          opts.require_nontrivial, supports);
      if (hist) hist->record(us_since(t0));
    };
    if (opts.pool && neighbors.size() > 1) {
      const int parent = obs::enabled() ? obs::Trace::global().current() : -1;
      opts.pool->parallel_for(neighbors.size(), [&](std::size_t i) {
        obs::AdoptParentScope adopt(parent);
        eval_one(i);
      });
    } else {
      for (std::size_t i = 0; i < neighbors.size(); ++i) eval_one(i);
    }
    bool improved = false;
    for (auto& cand : results) {
      if (cand && score(*cand) < current) {
        best = std::move(cand);
        improved = true;
        break;
      }
    }
    if (!improved) break;
  }
  return best;
}

}  // namespace imodec
