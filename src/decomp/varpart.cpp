#include "decomp/varpart.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/rng.hpp"

namespace imodec {

namespace {

VarPartition make_vp(unsigned num_vars, std::vector<unsigned> bound) {
  std::sort(bound.begin(), bound.end());
  VarPartition vp;
  vp.bound = std::move(bound);
  for (unsigned v = 0; v < num_vars; ++v) {
    if (!std::binary_search(vp.bound.begin(), vp.bound.end(), v))
      vp.free_set.push_back(v);
  }
  return vp;
}

/// Lexicographic score: (p, Σ ℓ_k); smaller is better.
std::pair<std::uint64_t, std::uint64_t> score(const VarPartChoice& c) {
  std::uint64_t sum_l = 0;
  for (const auto& l : c.locals) sum_l += l.num_classes;
  return {c.global.num_classes, sum_l};
}

}  // namespace

namespace {

std::optional<VarPartChoice> evaluate_with_supports(
    const std::vector<TruthTable>& outputs, unsigned num_vars,
    const std::vector<unsigned>& bound, bool require_nontrivial,
    const std::vector<std::vector<unsigned>>& supports) {
  VarPartChoice choice;
  choice.vp = make_vp(num_vars, bound);
  choice.locals.reserve(outputs.size());
  for (std::size_t k = 0; k < outputs.size(); ++k) {
    VertexPartition lp = local_partition_tt(outputs[k], choice.vp);
    if (require_nontrivial) {
      // Strict per-output progress: overlap with the support must exceed
      // the codewidth (see VarPartOptions::require_nontrivial).
      unsigned overlap = 0;
      for (unsigned v : supports[k])
        overlap += std::binary_search(choice.vp.bound.begin(),
                                      choice.vp.bound.end(), v);
      if (overlap <= codewidth(lp.num_classes)) return std::nullopt;
    }
    choice.locals.push_back(std::move(lp));
  }
  choice.global = global_partition(choice.locals);
  return choice;
}

}  // namespace

std::optional<VarPartChoice> evaluate_bound_set(
    const std::vector<TruthTable>& outputs, unsigned num_vars,
    const std::vector<unsigned>& bound, bool require_nontrivial) {
  std::vector<std::vector<unsigned>> supports;
  supports.reserve(outputs.size());
  for (const TruthTable& f : outputs) supports.push_back(f.support());
  return evaluate_with_supports(outputs, num_vars, bound, require_nontrivial,
                                supports);
}

std::optional<VarPartChoice> choose_bound_set(
    const std::vector<TruthTable>& outputs, unsigned num_vars,
    const VarPartOptions& opts) {
  assert(!outputs.empty());
#ifndef NDEBUG
  for (const TruthTable& f : outputs) assert(f.num_vars() == num_vars);
#endif
  if (num_vars < 2) return std::nullopt;

  unsigned b = std::min(opts.bound_size, num_vars - 1);
  if (b == 0) return std::nullopt;

  // Evaluating one candidate costs m * 2^n row reads; budget the number of
  // candidates so wide vectors stay tractable (the paper's flow likewise
  // limits effort on large supports, §7).
  const double row_cost = static_cast<double>(outputs.size()) *
                          std::ldexp(1.0, static_cast<int>(num_vars));
  const std::size_t allowed = static_cast<std::size_t>(
      std::max(4.0, std::min<double>(opts.eval_budget / row_cost, 1u << 20)));

  std::optional<VarPartChoice> best;
  std::vector<std::vector<unsigned>> supports;
  supports.reserve(outputs.size());
  for (const TruthTable& f : outputs) supports.push_back(f.support());
  auto consider = [&](const std::vector<unsigned>& bound) {
    auto cand = evaluate_with_supports(outputs, num_vars, bound,
                                       opts.require_nontrivial, supports);
    if (!cand) return;
    if (!best || score(*cand) < score(*best)) best = std::move(cand);
  };

  // Count C(num_vars, b) with saturation.
  std::uint64_t combos = 1;
  for (unsigned i = 0; i < b; ++i) {
    combos = combos * (num_vars - i) / (i + 1);
    if (combos > opts.max_exhaustive * 4) break;
  }

  if (combos <= std::min(opts.max_exhaustive, allowed)) {
    // Exhaustive enumeration of all bound sets of size b.
    std::vector<unsigned> idx(b);
    for (unsigned i = 0; i < b; ++i) idx[i] = i;
    for (;;) {
      consider(idx);
      // next combination
      int i = static_cast<int>(b) - 1;
      while (i >= 0 && idx[i] == num_vars - b + i) --i;
      if (i < 0) break;
      ++idx[i];
      for (unsigned j = static_cast<unsigned>(i) + 1; j < b; ++j)
        idx[j] = idx[j - 1] + 1;
    }
    return best;
  }

  // Sampling + hill climbing.
  Rng rng(opts.seed);
  std::vector<unsigned> all(num_vars);
  for (unsigned v = 0; v < num_vars; ++v) all[v] = v;

  const std::size_t samples = std::min(opts.samples, allowed);
  for (std::size_t s = 0; s < samples; ++s) {
    // Random b-subset (partial Fisher-Yates).
    std::vector<unsigned> pool = all;
    for (unsigned i = 0; i < b; ++i) {
      const std::size_t j =
          i + static_cast<std::size_t>(rng.below(pool.size() - i));
      std::swap(pool[i], pool[j]);
    }
    std::vector<unsigned> bound(pool.begin(), pool.begin() + b);
    consider(bound);
  }

  if (!best) return std::nullopt;

  // Hill climbing: try swapping one bound variable against one free one.
  const std::size_t climb_cost =
      static_cast<std::size_t>(b) * (num_vars - b);
  const std::size_t climb_iters =
      climb_cost > allowed ? 0
                           : std::min<std::size_t>(opts.climb_iters,
                                                   allowed / climb_cost + 1);
  for (std::size_t it = 0; it < climb_iters; ++it) {
    const auto current = score(*best);
    VarPartition vp = best->vp;
    bool improved = false;
    for (std::size_t bi = 0; bi < vp.bound.size() && !improved; ++bi) {
      for (std::size_t fi = 0; fi < vp.free_set.size() && !improved; ++fi) {
        std::vector<unsigned> bound = vp.bound;
        bound[bi] = vp.free_set[fi];
        auto cand = evaluate_bound_set(outputs, num_vars, bound,
                                       opts.require_nontrivial);
        if (cand && score(*cand) < current) {
          best = std::move(cand);
          improved = true;
        }
      }
    }
    if (!improved) break;
  }
  return best;
}

}  // namespace imodec
