#include "decomp/chart.hpp"

#include <sstream>

namespace imodec {

namespace {
std::string vertex_bits(std::uint64_t v, unsigned width) {
  std::string s(width, '0');
  for (unsigned i = 0; i < width; ++i)
    if ((v >> i) & 1) s[i] = '1';
  return s;
}
}  // namespace

std::string render_chart(const TruthTable& f, const VarPartition& vp) {
  const unsigned b = vp.b();
  const unsigned nf = static_cast<unsigned>(vp.free_set.size());
  std::ostringstream os;

  os << std::string(nf + 2, ' ');
  for (std::uint64_t x = 0; x < (std::uint64_t{1} << b); ++x)
    os << vertex_bits(x, b) << ' ';
  os << '\n';

  for (std::uint64_t y = 0; y < (std::uint64_t{1} << nf); ++y) {
    os << vertex_bits(y, nf) << "  ";
    for (std::uint64_t x = 0; x < (std::uint64_t{1} << b); ++x) {
      std::uint64_t input = 0;
      for (unsigned i = 0; i < b; ++i)
        if ((x >> i) & 1) input |= std::uint64_t{1} << vp.bound[i];
      for (unsigned j = 0; j < nf; ++j)
        if ((y >> j) & 1) input |= std::uint64_t{1} << vp.free_set[j];
      os << std::string(b / 2, ' ') << (f.eval(input) ? '1' : '0')
         << std::string(b - b / 2, ' ');
    }
    os << '\n';
  }
  return os.str();
}

std::string render_partition(const VertexPartition& part) {
  std::ostringstream os;
  const auto members = part.members();
  for (std::uint32_t c = 0; c < part.num_classes; ++c) {
    os << "Class " << (c + 1) << ": {";
    for (std::size_t i = 0; i < members[c].size(); ++i) {
      if (i) os << ", ";
      os << vertex_bits(members[c][i], part.b);
    }
    os << "}\n";
  }
  return os.str();
}

}  // namespace imodec
