#pragma once
// Core value types of functional decomposition (paper §2-§4).

#include <cstdint>
#include <vector>

#include "logic/truthtable.hpp"

namespace imodec {

/// Partition of a function's input variables into bound set (BS) and free
/// set (FS); indices refer to the variable numbering of the function vector.
struct VarPartition {
  std::vector<unsigned> bound;
  std::vector<unsigned> free_set;

  unsigned b() const { return static_cast<unsigned>(bound.size()); }
  std::uint64_t num_bs_vertices() const { return std::uint64_t{1} << b(); }
};

/// A partition of the 2^b bound-set vertices into classes 0..num_classes-1.
/// Used both for local compatibility partitions Π_f (classes = "local
/// classes") and the global partition Π̂ (classes = "global classes").
struct VertexPartition {
  unsigned b = 0;
  std::uint32_t num_classes = 0;
  std::vector<std::uint32_t> class_of;  // size 2^b

  std::uint64_t num_vertices() const { return std::uint64_t{1} << b; }

  /// True iff *this refines `coarser`: every class of *this lies inside one
  /// class of `coarser` (paper §2).
  bool refines(const VertexPartition& coarser) const;

  /// Product partition (smallest common refinement, paper §2). Classes are
  /// renumbered in first-occurrence order over vertex index.
  static VertexPartition product(const std::vector<const VertexPartition*>& parts);

  /// Vertices of each class.
  std::vector<std::vector<std::uint32_t>> members() const;
};

/// Codewidth c = ⌈ld ℓ⌉ (paper §3); 0 for ℓ == 1.
unsigned codewidth(std::uint32_t num_classes);

}  // namespace imodec
