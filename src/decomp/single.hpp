#pragma once
// Classical single-output disjoint decomposition (paper §3, Ashenhurst /
// Roth-Karp): f(x, y) = g(d1(x), ..., dc(x), y).
//
// This is the explicit baseline that the paper's "Single" column measures:
// each output is decomposed on its own with a strict binary encoding of its
// local classes. It also provides the g-construction shared by the
// multiple-output engine.

#include "decomp/classes.hpp"
#include "decomp/types.hpp"

namespace imodec::util {
class ResourceGuard;
}

namespace imodec {

/// One decomposition of a single- or multiple-output function. Variable
/// conventions: every d function is a TruthTable over b variables (bit i of
/// the row index = vp.bound[i] of the original function); g for output k is
/// a TruthTable over (|d_index[k]| + |vp.free_set|) variables, d codes first
/// (in d_index order), free variables after (in vp.free_set order).
struct Decomposition {
  VarPartition vp;
  std::vector<TruthTable> d_funcs;  // q functions over b variables

  struct OutputPlan {
    std::vector<unsigned> d_index;  // which d_funcs feed this output's g
    TruthTable g;
  };
  std::vector<OutputPlan> outputs;

  unsigned q() const { return static_cast<unsigned>(d_funcs.size()); }
};

/// Strict single-output decomposition: local classes are encoded in binary
/// (class i gets code i); d_j is bit j of the code. Always succeeds; the
/// decomposition is non-trivial iff c < b. A guard (optional, not owned) is
/// checkpointed between phases — explicit truth-table work is cheap, so
/// per-phase granularity keeps a governed run responsive without slowing the
/// inner row loops (DESIGN.md §12).
Decomposition decompose_single_output(const TruthTable& f,
                                      const VarPartition& vp,
                                      util::ResourceGuard* guard = nullptr);

/// Build g for one output given its chosen decomposition functions. The code
/// of BS vertex x is (d_0(x), ..., d_{c-1}(x)); the product of the d
/// partitions must refine Π_f (Decomposition Condition 1) — checked via
/// assertions. Unused codes are filled with 0 (completely specified).
TruthTable build_g(const TruthTable& f, const VarPartition& vp,
                   const std::vector<TruthTable>& chosen_d);

/// Recompose: evaluate g(d(x), y) back into a truth table over the original
/// variable count, for verification. `plan_d` are the d functions the plan's
/// d_index selects, in order.
TruthTable recompose(const Decomposition& decomp, std::size_t output_index,
                     unsigned original_num_vars);

}  // namespace imodec
