#pragma once
// Decomposition-chart rendering (paper Fig. 2): a Karnaugh-style map with one
// column per bound-set vertex and one row per free-set vertex. Used by the
// paper_example program and handy when debugging variable partitions.

#include <string>

#include "decomp/types.hpp"

namespace imodec {

/// Render the decomposition chart of `f` under `vp` as ASCII. Columns are
/// labeled with BS vertices (vp.bound[0] printed leftmost), rows with FS
/// vertices.
std::string render_chart(const TruthTable& f, const VarPartition& vp);

/// Render a vertex partition as lines "Class <i>: {vertices...}" with
/// vertices printed as binary strings (bit of vp.bound[0] first).
std::string render_partition(const VertexPartition& part);

}  // namespace imodec
