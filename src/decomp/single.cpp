#include "decomp/single.hpp"

#include <cassert>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/resource.hpp"

namespace imodec {

TruthTable build_g(const TruthTable& f, const VarPartition& vp,
                   const std::vector<TruthTable>& chosen_d) {
  const unsigned b = vp.b();
  const unsigned c = static_cast<unsigned>(chosen_d.size());
  const unsigned nf = static_cast<unsigned>(vp.free_set.size());
  assert(c + nf <= TruthTable::kMaxVars);

  // Code of each BS vertex under the chosen d functions.
  const std::uint64_t num_vertices = std::uint64_t{1} << b;
  std::vector<std::uint32_t> code_of(num_vertices);
  for (std::uint64_t x = 0; x < num_vertices; ++x) {
    std::uint32_t code = 0;
    for (unsigned j = 0; j < c; ++j)
      if (chosen_d[j].eval(x)) code |= 1u << j;
    code_of[x] = code;
  }

  // Representative vertex per code; vertices with the same code must be
  // compatible (Decomposition Condition 1) — asserted below via the chart.
  const std::uint64_t num_codes = std::uint64_t{1} << c;
  std::vector<std::uint64_t> representative(num_codes, ~std::uint64_t{0});
  for (std::uint64_t x = 0; x < num_vertices; ++x) {
    if (representative[code_of[x]] == ~std::uint64_t{0})
      representative[code_of[x]] = x;
  }

  TruthTable g(c + nf);
  const std::uint64_t rows = std::uint64_t{1} << nf;
  for (std::uint64_t code = 0; code < num_codes; ++code) {
    if (representative[code] == ~std::uint64_t{0}) continue;  // unused -> 0
    const std::uint64_t x = representative[code];
    std::uint64_t base = 0;
    for (unsigned i = 0; i < b; ++i)
      if ((x >> i) & 1) base |= std::uint64_t{1} << vp.bound[i];
    for (std::uint64_t y = 0; y < rows; ++y) {
      std::uint64_t input = base;
      for (unsigned j = 0; j < nf; ++j)
        if ((y >> j) & 1) input |= std::uint64_t{1} << vp.free_set[j];
      g.set(code | (y << c), f.eval(input));
    }
  }

#ifndef NDEBUG
  // Decomposition Condition 1: same code => compatible columns.
  const VertexPartition pf = local_partition_tt(f, vp);
  std::vector<std::uint32_t> class_of_code(num_codes, 0xffffffffu);
  for (std::uint64_t x = 0; x < num_vertices; ++x) {
    auto& cc = class_of_code[code_of[x]];
    assert(cc == 0xffffffffu || cc == pf.class_of[x]);
    cc = pf.class_of[x];
  }
#endif
  return g;
}

Decomposition decompose_single_output(const TruthTable& f,
                                      const VarPartition& vp,
                                      util::ResourceGuard* guard) {
  obs::ScopedSpan span("single.decompose");
  if (guard) guard->checkpoint();
  const VertexPartition pf = local_partition_tt(f, vp);
  const unsigned c = codewidth(pf.num_classes);
  const unsigned b = vp.b();

  Decomposition result;
  result.vp = vp;
  result.outputs.resize(1);

  // Strict encoding: class i -> code i; d_j(x) = bit j of class index.
  for (unsigned j = 0; j < c; ++j) {
    if (guard) guard->checkpoint();
    TruthTable dj(b);
    for (std::uint64_t x = 0; x < pf.num_vertices(); ++x)
      dj.set(x, (pf.class_of[x] >> j) & 1);
    result.d_funcs.push_back(std::move(dj));
    result.outputs[0].d_index.push_back(j);
  }
  if (guard) guard->checkpoint();
  result.outputs[0].g = build_g(f, vp, result.d_funcs);
  if (obs::enabled()) {
    obs::count("single.decompositions");
    obs::count("single.d_functions", c);
  }
  return result;
}

TruthTable recompose(const Decomposition& decomp, std::size_t output_index,
                     unsigned original_num_vars) {
  const auto& plan = decomp.outputs[output_index];
  const VarPartition& vp = decomp.vp;
  const unsigned b = vp.b();
  const unsigned c = static_cast<unsigned>(plan.d_index.size());
  const unsigned nf = static_cast<unsigned>(vp.free_set.size());

  TruthTable f(original_num_vars);
  for (std::uint64_t input = 0; input < f.num_rows(); ++input) {
    std::uint64_t x = 0;
    for (unsigned i = 0; i < b; ++i)
      if ((input >> vp.bound[i]) & 1) x |= std::uint64_t{1} << i;
    std::uint64_t y = 0;
    for (unsigned j = 0; j < nf; ++j)
      if ((input >> vp.free_set[j]) & 1) y |= std::uint64_t{1} << j;
    std::uint64_t g_row = 0;
    for (unsigned j = 0; j < c; ++j)
      if (decomp.d_funcs[plan.d_index[j]].eval(x)) g_row |= std::uint64_t{1} << j;
    g_row |= y << c;
    f.set(input, plan.g.eval(g_row));
  }
  return f;
}

}  // namespace imodec
