#pragma once
// RAII handle over Manager nodes — the public face of the BDD package.
//
// A Bdd owns one external reference on its node; copies/assignments adjust
// reference counts, so algorithm code can treat Bdds as plain values and the
// garbage collector sees exactly the live roots.

#include <cassert>
#include <utility>
#include <vector>

#include "bdd/manager.hpp"

namespace imodec::bdd {

class Bdd {
 public:
  Bdd() = default;  // null handle
  Bdd(Manager* mgr, NodeId node) : mgr_(mgr), node_(node) {
    if (mgr_) mgr_->ref(node_);
  }
  Bdd(const Bdd& o) : mgr_(o.mgr_), node_(o.node_) {
    if (mgr_) mgr_->ref(node_);
  }
  Bdd(Bdd&& o) noexcept : mgr_(o.mgr_), node_(o.node_) { o.mgr_ = nullptr; }
  Bdd& operator=(const Bdd& o) {
    if (this != &o) {
      if (o.mgr_) o.mgr_->ref(o.node_);
      release();
      mgr_ = o.mgr_;
      node_ = o.node_;
    }
    return *this;
  }
  Bdd& operator=(Bdd&& o) noexcept {
    if (this != &o) {
      release();
      mgr_ = o.mgr_;
      node_ = o.node_;
      o.mgr_ = nullptr;
    }
    return *this;
  }
  ~Bdd() { release(); }

  bool valid() const { return mgr_ != nullptr; }
  Manager* manager() const { return mgr_; }
  NodeId node() const { return node_; }

  bool is_zero() const { return node_ == kFalse; }
  bool is_one() const { return node_ == kTrue; }
  bool is_terminal() const { return node_ <= kTrue; }

  // Structural equality is functional equality for ROBDDs in one manager.
  bool operator==(const Bdd& o) const {
    return mgr_ == o.mgr_ && node_ == o.node_;
  }

  Bdd operator&(const Bdd& o) const {
    return wrap(mgr_->apply_and(node_, o.node_));
  }
  Bdd operator|(const Bdd& o) const {
    return wrap(mgr_->apply_or(node_, o.node_));
  }
  Bdd operator^(const Bdd& o) const {
    return wrap(mgr_->apply_xor(node_, o.node_));
  }
  Bdd operator~() const { return wrap(mgr_->apply_not(node_)); }
  Bdd& operator&=(const Bdd& o) { return *this = *this & o; }
  Bdd& operator|=(const Bdd& o) { return *this = *this | o; }
  Bdd& operator^=(const Bdd& o) { return *this = *this ^ o; }

  Bdd ite(const Bdd& g, const Bdd& h) const {
    return wrap(mgr_->ite(node_, g.node_, h.node_));
  }
  Bdd cofactor(unsigned v, bool value) const {
    return wrap(mgr_->cofactor(node_, v, value));
  }
  Bdd exists(const std::vector<unsigned>& vars) const {
    return wrap(mgr_->exists(node_, vars));
  }
  Bdd forall(const std::vector<unsigned>& vars) const {
    return wrap(mgr_->forall(node_, vars));
  }
  Bdd compose(unsigned v, const Bdd& g) const {
    return wrap(mgr_->compose(node_, v, g.node_));
  }

  double sat_count() const { return mgr_->sat_count(node_); }
  std::vector<unsigned> support() const { return mgr_->support(node_); }
  bool eval(const std::vector<bool>& assignment) const {
    return mgr_->eval(node_, assignment);
  }
  std::size_t dag_size() const { return mgr_->dag_size(node_); }

  static Bdd zero(Manager& m) { return Bdd(&m, kFalse); }
  static Bdd one(Manager& m) { return Bdd(&m, kTrue); }
  static Bdd var(Manager& m, unsigned v) { return Bdd(&m, m.var(v)); }
  static Bdd nvar(Manager& m, unsigned v) { return Bdd(&m, m.nvar(v)); }
  static Bdd literal(Manager& m, unsigned v, bool phase) {
    return Bdd(&m, m.literal(v, phase));
  }
  static Bdd cube(Manager& m, const std::vector<unsigned>& vars,
                  const std::vector<bool>& phases) {
    return Bdd(&m, m.cube(vars, phases));
  }

 private:
  Bdd wrap(NodeId n) const { return Bdd(mgr_, n); }
  void release() {
    if (mgr_) mgr_->deref(node_);
    mgr_ = nullptr;
  }

  Manager* mgr_ = nullptr;
  NodeId node_ = kFalse;
};

}  // namespace imodec::bdd
