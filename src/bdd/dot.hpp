#pragma once
// Graphviz DOT export of BDDs, for documentation and debugging.

#include <ostream>
#include <string>
#include <vector>

#include "bdd/bdd.hpp"

namespace imodec::bdd {

/// Write `roots` as one DOT digraph. `var_names` (optional) labels levels;
/// unnamed variables print as x<i>. Dashed edges are 0-branches.
void write_dot(std::ostream& os, const std::vector<Bdd>& roots,
               const std::vector<std::string>& var_names = {});

}  // namespace imodec::bdd
