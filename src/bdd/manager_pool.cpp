#include "bdd/manager_pool.hpp"

#include "obs/metrics.hpp"

namespace imodec::bdd {

ManagerPool::Lease ManagerPool::acquire(unsigned num_vars) {
  std::unique_ptr<Manager> mgr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!idle_.empty()) {
      mgr = std::move(idle_.back());
      idle_.pop_back();
      ++reuses_;
    } else {
      ++creates_;
    }
  }
  if (mgr) {
    mgr->reset(num_vars);
    obs::count("bdd.pool.reuse");
  } else {
    mgr = std::make_unique<Manager>(num_vars);
    obs::count("bdd.pool.create");
  }
  return Lease(this, std::move(mgr));
}

void ManagerPool::release(std::unique_ptr<Manager> mgr) {
  // Detach any guard now: the guard belongs to the run that just ended and
  // may be destroyed before this manager is reused.
  mgr->set_resource_guard(nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  if (idle_.size() < max_idle_) idle_.push_back(std::move(mgr));
  // else: drop on the floor (destructor frees it)
}

std::size_t ManagerPool::idle_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return idle_.size();
}

std::uint64_t ManagerPool::reuses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reuses_;
}

std::uint64_t ManagerPool::creates() const {
  std::lock_guard<std::mutex> lock(mu_);
  return creates_;
}

}  // namespace imodec::bdd
