#pragma once
// Warm BDD-manager pool for the serving layer.
//
// Engine runs own their Manager, and on small requests the cold construction
// (arena + unique table + computed cache) dominates. The pool keeps retired
// managers and hands them back through Manager::reset(), which clears the
// logical state but keeps every allocation — so a request served from a warm
// pool never pays cold table growth. Reset managers behave bit-identically
// to fresh ones (see the reset() contract), which is what lets a long-lived
// imodec_served process answer exactly like a fleet of fresh processes.
//
// Thread-safe: lutflow decomposes batches in parallel, so acquire/release
// run under a mutex. The Lease is a move-only RAII handle returning the
// manager on destruction; a lease must not outlive its pool.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "bdd/manager.hpp"

namespace imodec::bdd {

class ManagerPool {
 public:
  /// Keep at most `max_idle` retired managers (more are destroyed on
  /// release; the default covers one batch of parallel group workers).
  explicit ManagerPool(std::size_t max_idle = 16) : max_idle_(max_idle) {}

  class Lease {
   public:
    Lease() = default;
    Lease(ManagerPool* pool, std::unique_ptr<Manager> mgr)
        : pool_(pool), mgr_(std::move(mgr)) {}
    Lease(Lease&&) = default;
    Lease& operator=(Lease&& o) {
      release();
      pool_ = o.pool_;
      mgr_ = std::move(o.mgr_);
      o.pool_ = nullptr;
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    Manager& get() { return *mgr_; }
    Manager* operator->() { return mgr_.get(); }
    explicit operator bool() const { return mgr_ != nullptr; }

   private:
    void release() {
      if (pool_ && mgr_) pool_->release(std::move(mgr_));
      pool_ = nullptr;
    }
    ManagerPool* pool_ = nullptr;
    std::unique_ptr<Manager> mgr_;
  };

  /// A manager over `num_vars` variables: a reset idle one when available
  /// (warm tables), a freshly constructed one otherwise.
  Lease acquire(unsigned num_vars);

  std::size_t idle_count() const;
  /// Lifetime stats (also published as bdd.pool.{reuse,create} counters
  /// when observability is enabled).
  std::uint64_t reuses() const;
  std::uint64_t creates() const;

 private:
  friend class Lease;
  void release(std::unique_ptr<Manager> mgr);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Manager>> idle_;
  std::size_t max_idle_;
  std::uint64_t reuses_ = 0;
  std::uint64_t creates_ = 0;
};

}  // namespace imodec::bdd
