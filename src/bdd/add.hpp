#pragma once
// Algebraic Decision Diagrams with integer terminals.
//
// Used by the implicit Lmax step (paper §6, after Kam et al. [14]): the
// characteristic functions χ_k(z) of all outputs are summed as 0/1 ADDs; a
// maximum-valued terminal path then identifies a z-vertex — i.e. a
// decomposition function — that is preferable for the maximum number of
// outputs, without ever enumerating the functions explicitly.
//
// The AddManager is deliberately simple: it is built per Lmax query, so nodes
// are never collected; the arena dies with the manager.

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "bdd/manager.hpp"

namespace imodec::bdd {

class AddManager {
 public:
  using AddId = std::uint32_t;

  explicit AddManager(unsigned num_vars);

  unsigned num_vars() const { return num_vars_; }

  /// Terminal node carrying `value`.
  AddId constant(std::int64_t value);
  bool is_terminal(AddId f) const { return nodes_[f].var == kTerminalVar; }
  std::int64_t value_of(AddId f) const { return nodes_[f].value; }
  unsigned var_of(AddId f) const { return nodes_[f].var; }
  AddId lo(AddId f) const { return nodes_[f].lo; }
  AddId hi(AddId f) const { return nodes_[f].hi; }

  /// Translate a 0/1 BDD from `src` into this ADD (same variable indices).
  AddId from_bdd(Manager& src, NodeId f);

  AddId plus(AddId f, AddId g);

  /// Maximum terminal value reachable from f.
  std::int64_t max_value(AddId f);

  /// One assignment reaching the maximum terminal. `assignment` gets values
  /// for all variables (don't-care variables along the path default to
  /// `fill`). Returns the maximum value.
  std::int64_t argmax(AddId f, std::vector<bool>& assignment,
                      bool fill = false);

  /// Enumerate every assignment over `vars` (ascending, must cover the
  /// support of f) whose terminal value equals `target`.
  void foreach_at_value(AddId f, std::int64_t target,
                        const std::vector<unsigned>& vars,
                        const std::function<bool(const std::vector<bool>&)>& cb);

  std::size_t node_count() const { return nodes_.size(); }

 private:
  struct Node {
    std::uint32_t var;   // kTerminalVar for terminals
    AddId lo, hi;
    std::int64_t value;  // terminal value (unused for internal nodes)
  };
  // Same flat-table shapes as the BDD kernel: an open-addressed power-of-two
  // unique table with exact triple compares (a mixed-hash map here used to
  // allocate duplicates on collision), and a direct-mapped plus cache with
  // exact operand keys (the packed-uint64 key it replaces could return a
  // wrong node on collision). AddIds are never recycled, so lossy entries
  // stay valid forever.
  struct PlusEntry {
    AddId f = kNoAdd_, g = kNoAdd_;
    AddId result = 0;
  };
  static constexpr AddId kNoAdd_ = 0xffffffffu;

  AddId make_node(unsigned v, AddId lo, AddId hi);
  void unique_rehash(std::size_t new_size);
  AddId plus_rec(AddId f, AddId g);
  AddId from_bdd_rec(Manager& src, NodeId f,
                     std::unordered_map<NodeId, AddId>& memo);
  std::int64_t max_rec(AddId f, std::unordered_map<AddId, std::int64_t>& memo);

  unsigned num_vars_;
  std::vector<Node> nodes_;
  std::unordered_map<std::int64_t, AddId> terminals_;
  std::vector<AddId> unique_;          // open-addressed; kNoAdd_ = empty slot
  std::size_t unique_occupied_ = 0;    // internal nodes in the table
  std::vector<PlusEntry> plus_cache_;  // direct-mapped, lossy
};

}  // namespace imodec::bdd
