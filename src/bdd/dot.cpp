#include "bdd/dot.hpp"

#include <unordered_set>

namespace imodec::bdd {

// With complement edges a function and its negation share one subgraph, so
// nodes are rendered per arena index and the complement bit is drawn on the
// edge instead (red, dot-shaped arrowhead). Terminal edges keep the familiar
// 0/1 boxes: a regular edge into the terminal is 0, a complemented one is 1.

void write_dot(std::ostream& os, const std::vector<Bdd>& roots,
               const std::vector<std::string>& var_names) {
  os << "digraph bdd {\n";
  os << "  node [shape=circle];\n";
  os << "  t0 [shape=box,label=\"0\"];\n  t1 [shape=box,label=\"1\"];\n";
  if (roots.empty()) {
    os << "}\n";
    return;
  }
  Manager* mgr = roots.front().manager();
  std::unordered_set<NodeId> emitted;  // arena indices
  std::vector<NodeId> stack;
  const auto target = [](NodeId e) {
    if (e <= kTrue) return e == kTrue ? std::string("t1") : std::string("t0");
    return "n" + std::to_string(e >> 1);
  };
  const auto attrs = [](NodeId e, bool dashed) {
    std::string a;
    if (dashed) a += "style=dashed";
    if (e > kTrue && (e & 1u)) {  // complemented internal edge
      if (!a.empty()) a += ",";
      a += "color=red,arrowhead=odot";
    }
    return a.empty() ? a : " [" + a + "]";
  };
  for (std::size_t i = 0; i < roots.size(); ++i) {
    os << "  r" << i << " [shape=plaintext,label=\"f" << i << "\"];\n";
    const NodeId e = roots[i].node();
    os << "  r" << i << " -> " << target(e) << attrs(e, false) << ";\n";
    stack.push_back(e);
  }
  while (!stack.empty()) {
    const NodeId e = stack.back();
    stack.pop_back();
    if (e <= kTrue) continue;
    const NodeId idx = e >> 1;
    if (!emitted.insert(idx).second) continue;
    const NodeId regular = idx << 1;
    const unsigned v = mgr->var_of(regular);
    const std::string label =
        v < var_names.size() ? var_names[v] : "x" + std::to_string(v);
    os << "  n" << idx << " [label=\"" << label << "\"];\n";
    const auto edge = [&](NodeId c, bool dashed) {
      os << "  n" << idx << " -> " << target(c) << attrs(c, dashed) << ";\n";
      stack.push_back(c);
    };
    edge(mgr->lo(regular), true);
    edge(mgr->hi(regular), false);
  }
  os << "}\n";
}

}  // namespace imodec::bdd
