#include "bdd/dot.hpp"

#include <unordered_set>

namespace imodec::bdd {

void write_dot(std::ostream& os, const std::vector<Bdd>& roots,
               const std::vector<std::string>& var_names) {
  os << "digraph bdd {\n";
  os << "  node [shape=circle];\n";
  os << "  t0 [shape=box,label=\"0\"];\n  t1 [shape=box,label=\"1\"];\n";
  if (roots.empty()) {
    os << "}\n";
    return;
  }
  Manager* mgr = roots.front().manager();
  std::unordered_set<NodeId> emitted;
  std::vector<NodeId> stack;
  for (std::size_t i = 0; i < roots.size(); ++i) {
    os << "  r" << i << " [shape=plaintext,label=\"f" << i << "\"];\n";
    const NodeId n = roots[i].node();
    os << "  r" << i << " -> "
       << (n <= kTrue ? (n == kTrue ? std::string("t1") : std::string("t0"))
                      : "n" + std::to_string(n))
       << ";\n";
    stack.push_back(n);
  }
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    if (n <= kTrue || emitted.count(n)) continue;
    emitted.insert(n);
    const unsigned v = mgr->var_of(n);
    const std::string label =
        v < var_names.size() ? var_names[v] : "x" + std::to_string(v);
    os << "  n" << n << " [label=\"" << label << "\"];\n";
    const auto edge = [&](NodeId c, bool dashed) {
      os << "  n" << n << " -> "
         << (c <= kTrue ? (c == kTrue ? std::string("t1") : std::string("t0"))
                        : "n" + std::to_string(c))
         << (dashed ? " [style=dashed]" : "") << ";\n";
      stack.push_back(c);
    };
    edge(mgr->lo(n), true);
    edge(mgr->hi(n), false);
  }
  os << "}\n";
}

}  // namespace imodec::bdd
