#pragma once
// From-scratch ROBDD package (the paper's CUDD substitute).
//
// Reduced ordered BDDs *with complement edges*: a NodeId is an edge — the
// arena index of a node shifted left one, with the complement flag in bit 0.
// Negation is therefore O(1) (flip bit 0), and a function and its complement
// share one DAG. Canonical form: the hi child of every stored node is a
// regular (uncomplemented) edge; complement bits live only on lo children and
// on external edges. The single terminal node occupies arena index 0 and
// denotes FALSE when referenced regular, so the classic constants keep their
// values: kFalse == 0, kTrue == 1.
//
// All operations lower onto one ITE core with the standard triple
// normalization (Brace/Rudell/Bryant). The unique table is an open-addressed
// power-of-two array over the node arena, and the computed table is a lossy
// direct-mapped cache; both grow adaptively with the arena. External
// references are counted per node; users hold nodes through the RAII `Bdd`
// handle (bdd/bdd.hpp) — ref/deref are private to enforce that. In debug
// builds every public operation asserts its operand edges are live, so a raw
// NodeId held across a garbage collection (instead of through a handle)
// fails fast instead of silently denoting a recycled node.
//
// Variable order starts as the identity over the manager's variable indices
// but can be changed at runtime: swap_levels() exchanges two adjacent levels
// in place (Rudell-style), sift() runs the classical sifting heuristic, and
// set_order() installs an arbitrary order. Node ids and the functions they
// denote are preserved across reordering; only the internal shapes change.

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

namespace imodec::util {
class ResourceGuard;
}

namespace imodec::obs {
class Histogram;
}

namespace imodec::bdd {

/// An edge: (arena index << 1) | complement bit.
using NodeId = std::uint32_t;
inline constexpr NodeId kFalse = 0;  // regular edge to the terminal
inline constexpr NodeId kTrue = 1;   // complemented edge to the terminal
inline constexpr std::uint32_t kTerminalVar = 0xffffffffu;

class Bdd;

class Manager {
 public:
  explicit Manager(unsigned num_vars);
  ~Manager();

  Manager(const Manager&) = delete;
  Manager& operator=(const Manager&) = delete;

  // --- Resource governance (DESIGN.md §12) -----------------------------------
  /// Attach a guard (not owned; must outlive the attachment; nullptr
  /// detaches). A governed manager checkpoints the guard in make_node — i.e.
  /// in every operation's recursion — so deadline expiry and cancellation
  /// surface as util::Timeout / util::ResourceExhausted from whichever public
  /// operation is running. The guard's node budget caps this manager's live
  /// nodes: on a trip (or a std::bad_alloc from arena/table growth) the
  /// running operation unwinds, the manager collects garbage with the
  /// operation's operands protected, and the operation is retried once;
  /// if the limit still binds, util::ResourceExhausted escapes. Either way
  /// the manager stays valid and consistent.
  void set_resource_guard(util::ResourceGuard* guard);
  util::ResourceGuard* resource_guard() const { return guard_; }

  unsigned num_vars() const { return num_vars_; }
  /// Grow the variable count (new variables order below existing ones).
  void add_vars(unsigned extra);

  /// Recycle the manager for a fresh run over `num_vars` variables: the
  /// arena shrinks to the terminal, the unique and computed tables are
  /// cleared, order/stats/depth watermarks restart, and any guard detaches —
  /// but every allocation (arena capacity, table sizes) is kept, so a warm
  /// manager never pays cold growth again. This is the serving-layer
  /// primitive behind bdd::ManagerPool (manager_pool.hpp): a reset manager
  /// is observationally a freshly constructed one with pre-grown tables.
  /// Pre: no live Bdd handles into this manager.
  void reset(unsigned num_vars);

  /// Current level (depth in the order, 0 = top) of variable `v`.
  unsigned level_of(unsigned v) const { return level_of_var_[v]; }
  /// Variable at level `l`.
  unsigned var_at(unsigned l) const { return var_at_level_[l]; }

  NodeId zero() const { return kFalse; }
  NodeId one() const { return kTrue; }
  /// Projection function of variable `v`.
  NodeId var(unsigned v);
  /// Complement of the projection function of variable `v`.
  NodeId nvar(unsigned v) { return var(v) ^ 1u; }
  /// Literal: variable `v` with the given phase (true = positive).
  NodeId literal(unsigned v, bool phase) { return phase ? var(v) : nvar(v); }

  bool is_terminal(NodeId f) const { return f <= kTrue; }
  unsigned var_of(NodeId f) const { return nodes_[f >> 1].var; }
  /// Children with the parent edge's complement bit pushed through, so
  /// lo/hi always denote the actual cofactors of `f`.
  NodeId lo(NodeId f) const { return nodes_[f >> 1].lo ^ (f & 1u); }
  NodeId hi(NodeId f) const { return nodes_[f >> 1].hi ^ (f & 1u); }

  // --- Core operations ------------------------------------------------------
  NodeId apply_and(NodeId f, NodeId g);
  NodeId apply_or(NodeId f, NodeId g);
  NodeId apply_xor(NodeId f, NodeId g);
  /// O(1): complement edges make negation a bit flip.
  NodeId apply_not(NodeId f) const { return f ^ 1u; }
  NodeId ite(NodeId f, NodeId g, NodeId h);

  /// Shannon cofactor of f with variable v fixed to `value`.
  NodeId cofactor(NodeId f, unsigned v, bool value);
  /// Existential quantification over the set of variables (sorted or not).
  NodeId exists(NodeId f, const std::vector<unsigned>& vars);
  /// Universal quantification.
  NodeId forall(NodeId f, const std::vector<unsigned>& vars);
  /// Substitute variable v by function g in f.
  NodeId compose(NodeId f, unsigned v, NodeId g);
  /// Simultaneous substitution; map[v] == kNoReplacement keeps v.
  static constexpr NodeId kNoReplacement = 0xffffffffu;
  NodeId vector_compose(NodeId f, const std::vector<NodeId>& map);

  /// Conjunction of literals: vars[i] with phase phases[i].
  NodeId cube(const std::vector<unsigned>& vars,
              const std::vector<bool>& phases);

  // --- Queries ---------------------------------------------------------------
  /// Number of satisfying assignments over all num_vars() variables.
  double sat_count(NodeId f);
  /// Variables that f structurally depends on, ascending.
  std::vector<unsigned> support(NodeId f);
  /// Evaluate under a complete assignment (indexed by variable).
  bool eval(NodeId f, const std::vector<bool>& assignment) const;
  /// Number of internal DAG nodes of f (terminals excluded; a node shared by
  /// f and its complement counts once).
  std::size_t dag_size(NodeId f);

  /// One satisfying assignment (values for all variables; unconstrained
  /// variables are set to false). Returns false iff f == 0.
  bool pick_minterm(NodeId f, std::vector<bool>& assignment);

  /// Enumerate all satisfying assignments over the given variables. The
  /// callback receives the assignment indexed by position in `vars`.
  /// f must not depend on variables outside `vars`. Stops if cb returns false.
  void foreach_minterm(NodeId f, const std::vector<unsigned>& vars,
                       const std::function<bool(const std::vector<bool>&)>& cb);

  // --- Dynamic variable reordering -------------------------------------------
  /// Exchange the variables at `level` and `level + 1` in place. Every edge
  /// keeps denoting the same function. (Computed-table entries stay valid:
  /// they cache function identities, which reordering preserves.)
  void swap_levels(unsigned level);
  /// Rudell's sifting: move each variable (largest level population first)
  /// through all positions and leave it where the reachable node count is
  /// minimal. Runs a garbage collection first. Returns the reachable node
  /// count after sifting.
  std::size_t sift();
  /// Install an arbitrary order: var_at_level[l] is the variable for level l
  /// (must be a permutation of 0..num_vars-1). Implemented as bubble swaps.
  void set_order(const std::vector<unsigned>& var_at_level);

  // --- Introspection / maintenance -------------------------------------------
  /// Hot-path event counts, updated unconditionally (plain increments next to
  /// hash probes — noise-level cost). Consumers fold them into the
  /// observability registry; see publish_stats().
  struct Stats {
    std::uint64_t nodes_allocated = 0;  // fresh nodes created
    std::uint64_t unique_hits = 0;      // make_node found an existing node
    std::uint64_t cache_lookups = 0;    // computed-table probes
    std::uint64_t cache_hits = 0;
    std::uint64_t gc_runs = 0;
    std::uint64_t sift_runs = 0;
    std::uint64_t sift_swaps = 0;  // swap_levels calls (sifting or manual)
    // Computed-table probes/hits split by operation class, indexed by
    // static_cast<uint32_t>(Op) - 1; see op_class_name().
    static constexpr unsigned kOpClasses = 4;
    std::uint64_t op_lookups[kOpClasses] = {};
    std::uint64_t op_hits[kOpClasses] = {};
    double cache_hit_rate() const {
      return cache_lookups ? static_cast<double>(cache_hits) /
                                 static_cast<double>(cache_lookups)
                           : 0.0;
    }
    double op_hit_rate(unsigned cls) const {
      return op_lookups[cls] ? static_cast<double>(op_hits[cls]) /
                                   static_cast<double>(op_lookups[cls])
                             : 0.0;
    }
  };
  /// "ite" / "cofactor" / "exists" / "forall" for cls in [0, kOpClasses).
  static const char* op_class_name(unsigned cls);
  const Stats& stats() const { return stats_; }
  /// Fold this manager's stats into the process-wide obs registry under
  /// `<prefix>.*` (plus a `<prefix>.peak_live_nodes` gauge). No-op when
  /// observability is disabled.
  void publish_stats(const char* prefix = "bdd") const;

  std::size_t live_node_count() const { return live_nodes_; }
  std::size_t peak_node_count() const { return peak_nodes_; }
  /// Current capacities of the flat tables (tests pin resize invariants).
  std::size_t unique_table_size() const { return unique_.size(); }
  std::size_t computed_cache_size() const { return cache_.size(); }
  /// Nodes reachable from externally referenced roots (the sifting metric).
  std::size_t reachable_node_count() const;
  /// Reclaim dead nodes now; invoked automatically during growth.
  void garbage_collect();

  /// Internal consistency check (unique-table sanity, orderedness, canonical
  /// regular-hi form); used by tests and debug assertions. Returns true iff
  /// all invariants hold.
  bool check_invariants() const;

 private:
  // The RAII handle is the only way to hold an external reference; everything
  // else must not survive a GC point (enforced by assert_live in debug).
  friend class Bdd;
  void ref(NodeId f);
  void deref(NodeId f);

  struct Node {
    std::uint32_t var;  // kTerminalVar terminal, kFreeVar on the free list
    NodeId lo;          // edge, may be complemented; free-list next when free
    NodeId hi;          // edge, always regular (canonical form)
    std::uint32_t ref;  // external reference count
  };

  enum class Op : std::uint32_t {
    None = 0,  // empty cache slot
    Ite,
    Cofactor,
    Exists,
    Forall,
  };
  struct CacheEntry {
    NodeId a = 0, b = 0, c = 0;
    Op op = Op::None;
    std::uint64_t tag = 0;  // discriminates quantified cubes / cofactor vars
    NodeId result = 0;
  };

  static std::uint32_t index_of(NodeId f) { return f >> 1; }
  bool edge_live(NodeId f) const {
    const std::uint32_t i = index_of(f);
    return i < nodes_.size() && nodes_[i].var != kFreeVar_;
  }
  void assert_live(NodeId f) const;

  NodeId make_node(unsigned v, NodeId lo, NodeId hi);
  /// Run `fn` (one public operation) under the GC-retry ladder described at
  /// set_resource_guard(); `roots` are the operand edges to protect across
  /// the recovery collection. Defined in manager.cpp (only used there).
  template <typename Fn>
  NodeId governed(const std::vector<NodeId>& roots, Fn&& fn);
  /// Reconcile guard_charged_ with live_nodes_ after bulk changes (GC).
  void sync_guard_charge();
  void unique_insert_slot(std::uint32_t i);
  void unique_rehash(std::size_t new_size);
  void cache_resize_for_table();
  void maybe_gc();

  NodeId cached(Op op, NodeId a, NodeId b, NodeId c, std::uint64_t tag);
  void cache_insert(Op op, NodeId a, NodeId b, NodeId c, std::uint64_t tag,
                    NodeId r);

  NodeId ite_rec(NodeId f, NodeId g, NodeId h);
  NodeId cofactor_rec(NodeId f, unsigned v, bool value);
  NodeId quantify_rec(NodeId f, const std::vector<unsigned>& sorted_vars,
                      unsigned deepest, bool existential, std::uint64_t tag);
  NodeId vector_compose_rec(NodeId f, const std::vector<NodeId>& map,
                            std::unordered_map<NodeId, NodeId>& memo);
  double prob_rec(NodeId f, std::unordered_map<NodeId, double>& memo);

  static constexpr std::uint32_t kFreeVar_ = 0xfffffffeu;

  unsigned num_vars_;
  std::vector<unsigned> level_of_var_;
  std::vector<unsigned> var_at_level_;
  std::vector<Node> nodes_;       // arena; index 0 is the terminal
  std::vector<NodeId> unique_;    // open-addressed node indices; 0 = empty
  std::size_t unique_occupied_ = 0;  // filled slots (stale entries included)
  std::vector<CacheEntry> cache_;    // direct-mapped, lossy
  std::uint32_t free_head_ = 0;      // arena free list; 0 = empty
  // Per-node in-edge counts, non-empty only while sift() runs: lets
  // swap_levels reclaim orphans eagerly so live_nodes_ stays the exact
  // reachable count during reordering.
  std::vector<std::uint32_t> indeg_;
  std::size_t live_nodes_ = 0;
  std::size_t peak_nodes_ = 0;
  std::size_t gc_threshold_ = 1u << 14;
  util::ResourceGuard* guard_ = nullptr;  // not owned
  std::size_t guard_charged_ = 0;  // live nodes reported to guard_ so far
  // Reordering moves nodes in place; an exception mid-swap would corrupt the
  // tables, so governance checkpoints are suppressed while this is set.
  bool in_reorder_ = false;
  // True while the outermost governed() frame runs; nested public calls
  // (var/cube from inside a recursion) must not start their own recovery.
  bool in_governed_ = false;
  // Recursion depth watermarks, maintained unconditionally (two plain
  // increments per frame); reset and folded into the obs histograms at the
  // public entry points when observability is on.
  std::uint32_t ite_depth_ = 0;
  std::uint32_t ite_depth_max_ = 0;
  std::uint32_t quant_depth_ = 0;
  std::uint32_t quant_depth_max_ = 0;
  // Cached registry handles (stable for the process lifetime), resolved on
  // first use: the depth histograms record once per public op, and a name
  // lookup there (mutex + map probe) costs several percent on the BDD-op
  // microbenches.
  obs::Histogram* ite_depth_hist_ = nullptr;
  obs::Histogram* quant_depth_hist_ = nullptr;
  mutable Stats stats_;
};

}  // namespace imodec::bdd
