#pragma once
// From-scratch ROBDD package (the paper's CUDD substitute).
//
// Reduced ordered BDDs without complement edges. Nodes live in one arena
// indexed by NodeId; ids 0 and 1 are the constant terminals. The unique table
// is an intrusive hash (chained through Node::next), the computed table is an
// operation cache cleared on garbage collection. External references are
// ref-counted; users should hold nodes through the RAII `Bdd` handle
// (bdd/bdd.hpp) rather than calling ref/deref by hand.
//
// Variable order starts as the identity over the manager's variable indices
// but can be changed at runtime: swap_levels() exchanges two adjacent levels
// in place (Rudell-style), sift() runs the classical sifting heuristic, and
// set_order() installs an arbitrary order. Node ids and the functions they
// denote are preserved across reordering; only the internal shapes change.

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

namespace imodec::bdd {

using NodeId = std::uint32_t;
inline constexpr NodeId kFalse = 0;
inline constexpr NodeId kTrue = 1;
inline constexpr std::uint32_t kTerminalVar = 0xffffffffu;

class Manager {
 public:
  explicit Manager(unsigned num_vars);

  Manager(const Manager&) = delete;
  Manager& operator=(const Manager&) = delete;

  unsigned num_vars() const { return num_vars_; }
  /// Grow the variable count (new variables order below existing ones).
  void add_vars(unsigned extra);

  /// Current level (depth in the order, 0 = top) of variable `v`.
  unsigned level_of(unsigned v) const { return level_of_var_[v]; }
  /// Variable at level `l`.
  unsigned var_at(unsigned l) const { return var_at_level_[l]; }

  NodeId zero() const { return kFalse; }
  NodeId one() const { return kTrue; }
  /// Projection function of variable `v`.
  NodeId var(unsigned v);
  /// Complement of the projection function of variable `v`.
  NodeId nvar(unsigned v);
  /// Literal: variable `v` with the given phase (true = positive).
  NodeId literal(unsigned v, bool phase) { return phase ? var(v) : nvar(v); }

  bool is_terminal(NodeId f) const { return f <= kTrue; }
  unsigned var_of(NodeId f) const { return nodes_[f].var; }
  NodeId lo(NodeId f) const { return nodes_[f].lo; }
  NodeId hi(NodeId f) const { return nodes_[f].hi; }

  // --- External reference counting (use the Bdd handle instead) ------------
  void ref(NodeId f);
  void deref(NodeId f);

  // --- Core operations ------------------------------------------------------
  NodeId apply_and(NodeId f, NodeId g);
  NodeId apply_or(NodeId f, NodeId g);
  NodeId apply_xor(NodeId f, NodeId g);
  NodeId apply_not(NodeId f);
  NodeId ite(NodeId f, NodeId g, NodeId h);

  /// Shannon cofactor of f with variable v fixed to `value`.
  NodeId cofactor(NodeId f, unsigned v, bool value);
  /// Existential quantification over the set of variables (sorted or not).
  NodeId exists(NodeId f, const std::vector<unsigned>& vars);
  /// Universal quantification.
  NodeId forall(NodeId f, const std::vector<unsigned>& vars);
  /// Substitute variable v by function g in f.
  NodeId compose(NodeId f, unsigned v, NodeId g);
  /// Simultaneous substitution; map[v] == kNoReplacement keeps v.
  static constexpr NodeId kNoReplacement = 0xffffffffu;
  NodeId vector_compose(NodeId f, const std::vector<NodeId>& map);

  /// Conjunction of literals: vars[i] with phase phases[i].
  NodeId cube(const std::vector<unsigned>& vars,
              const std::vector<bool>& phases);

  // --- Queries ---------------------------------------------------------------
  /// Number of satisfying assignments over all num_vars() variables.
  double sat_count(NodeId f);
  /// Variables that f structurally depends on, ascending.
  std::vector<unsigned> support(NodeId f);
  /// Evaluate under a complete assignment (indexed by variable).
  bool eval(NodeId f, const std::vector<bool>& assignment) const;
  /// Number of internal DAG nodes of f (terminals excluded).
  std::size_t dag_size(NodeId f);

  /// One satisfying assignment (values for all variables; unconstrained
  /// variables are set to false). Returns false iff f == 0.
  bool pick_minterm(NodeId f, std::vector<bool>& assignment);

  /// Enumerate all satisfying assignments over the given variables. The
  /// callback receives the assignment indexed by position in `vars`.
  /// f must not depend on variables outside `vars`. Stops if cb returns false.
  void foreach_minterm(NodeId f, const std::vector<unsigned>& vars,
                       const std::function<bool(const std::vector<bool>&)>& cb);

  // --- Dynamic variable reordering -------------------------------------------
  /// Exchange the variables at `level` and `level + 1` in place. Every node
  /// id keeps denoting the same function. The computed table is cleared.
  void swap_levels(unsigned level);
  /// Rudell's sifting: move each variable (largest level population first)
  /// through all positions and leave it where the reachable node count is
  /// minimal. Runs a garbage collection first. Returns the reachable node
  /// count after sifting.
  std::size_t sift();
  /// Install an arbitrary order: var_at_level[l] is the variable for level l
  /// (must be a permutation of 0..num_vars-1). Implemented as bubble swaps.
  void set_order(const std::vector<unsigned>& var_at_level);

  // --- Introspection / maintenance -------------------------------------------
  /// Hot-path event counts, updated unconditionally (plain increments next to
  /// hash probes — noise-level cost). Consumers fold them into the
  /// observability registry; see publish_stats().
  struct Stats {
    std::uint64_t nodes_allocated = 0;  // fresh nodes created
    std::uint64_t unique_hits = 0;      // make_node found an existing node
    std::uint64_t cache_lookups = 0;    // computed-table probes
    std::uint64_t cache_hits = 0;
    std::uint64_t gc_runs = 0;
    double cache_hit_rate() const {
      return cache_lookups ? static_cast<double>(cache_hits) /
                                 static_cast<double>(cache_lookups)
                           : 0.0;
    }
  };
  const Stats& stats() const { return stats_; }
  /// Fold this manager's stats into the process-wide obs registry under
  /// `<prefix>.*` (plus a `<prefix>.peak_live_nodes` gauge). No-op when
  /// observability is disabled.
  void publish_stats(const char* prefix = "bdd") const;

  std::size_t live_node_count() const { return live_nodes_; }
  std::size_t peak_node_count() const { return peak_nodes_; }
  /// Nodes reachable from externally referenced roots (the sifting metric).
  std::size_t reachable_node_count() const;
  /// Reclaim dead nodes now; invoked automatically during growth.
  void garbage_collect();

  /// Internal consistency check (unique-table sanity, orderedness); used by
  /// tests and debug assertions. Returns true iff all invariants hold.
  bool check_invariants() const;

 private:
  struct Node {
    std::uint32_t var;  // kTerminalVar for terminals
    NodeId lo;
    NodeId hi;
    NodeId next;  // unique-table chain
    std::uint32_t ref;
  };

  NodeId make_node(unsigned v, NodeId lo, NodeId hi);
  std::size_t unique_hash(unsigned v, NodeId lo, NodeId hi) const;
  void unique_resize();
  void maybe_gc();

  enum class Op : std::uint8_t { And, Xor, Ite, Exists, Forall, Compose };
  struct CacheKey {
    Op op;
    NodeId a, b, c;
    std::uint64_t tag;  // discriminates quantification cubes / compose maps
    bool operator==(const CacheKey&) const = default;
  };
  struct CacheKeyHash {
    std::size_t operator()(const CacheKey& k) const;
  };

  NodeId cached(const CacheKey& k) const;
  void cache_insert(const CacheKey& k, NodeId r);

  NodeId quantify_rec(NodeId f, const std::vector<unsigned>& sorted_vars,
                      bool existential, std::uint64_t tag);
  NodeId vector_compose_rec(NodeId f, const std::vector<NodeId>& map,
                            std::uint64_t tag,
                            std::unordered_map<NodeId, NodeId>& memo);
  double sat_count_rec(NodeId f, std::unordered_map<NodeId, double>& memo);
  void mark_rec(NodeId f, std::vector<bool>& mark) const;

  unsigned num_vars_;
  std::vector<unsigned> level_of_var_;
  std::vector<unsigned> var_at_level_;
  std::vector<Node> nodes_;
  std::vector<NodeId> unique_;  // bucket heads
  NodeId free_list_ = 0;        // chained through Node::next; 0 = empty
  std::size_t live_nodes_ = 0;
  std::size_t peak_nodes_ = 0;
  std::size_t gc_threshold_ = 1u << 14;
  std::unordered_map<CacheKey, NodeId, CacheKeyHash> computed_;
  mutable Stats stats_;  // mutable: cached() is logically const
};

}  // namespace imodec::bdd
