#include "bdd/add.hpp"

#include <cassert>
#include <functional>

namespace imodec::bdd {

namespace {
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}
}  // namespace

AddManager::AddManager(unsigned num_vars) : num_vars_(num_vars) {}

AddManager::AddId AddManager::constant(std::int64_t value) {
  if (auto it = terminals_.find(value); it != terminals_.end())
    return it->second;
  const AddId id = static_cast<AddId>(nodes_.size());
  nodes_.push_back(Node{kTerminalVar, 0, 0, value});
  terminals_.emplace(value, id);
  return id;
}

AddManager::AddId AddManager::make_node(unsigned v, AddId lo, AddId hi) {
  if (lo == hi) return lo;
  const std::uint64_t key = mix64((static_cast<std::uint64_t>(v) << 48) ^
                                  (static_cast<std::uint64_t>(lo) << 24) ^ hi);
  if (auto it = unique_.find(key); it != unique_.end()) {
    const Node& n = nodes_[it->second];
    if (n.var == v && n.lo == lo && n.hi == hi) return it->second;
    // Hash collision with a different triple: fall through and allocate.
    // (mix64 over distinct triples collides with negligible probability;
    // correctness is preserved because we re-checked the triple.)
  }
  const AddId id = static_cast<AddId>(nodes_.size());
  nodes_.push_back(Node{v, lo, hi, 0});
  unique_[key] = id;
  return id;
}

AddManager::AddId AddManager::from_bdd_rec(
    Manager& src, NodeId f, std::unordered_map<NodeId, AddId>& memo) {
  if (f == kFalse) return constant(0);
  if (f == kTrue) return constant(1);
  if (auto it = memo.find(f); it != memo.end()) return it->second;
  // The ADD layer orders by raw variable index; the source BDD must be in
  // identity order over the translated support (Lmax managers always are).
  assert(src.level_of(src.var_of(f)) == src.var_of(f));
  const AddId l = from_bdd_rec(src, src.lo(f), memo);
  const AddId h = from_bdd_rec(src, src.hi(f), memo);
  const AddId r = make_node(src.var_of(f), l, h);
  memo[f] = r;
  return r;
}

AddManager::AddId AddManager::from_bdd(Manager& src, NodeId f) {
  std::unordered_map<NodeId, AddId> memo;
  return from_bdd_rec(src, f, memo);
}

AddManager::AddId AddManager::plus_rec(AddId f, AddId g) {
  if (is_terminal(f) && is_terminal(g))
    return constant(value_of(f) + value_of(g));
  if (f > g) std::swap(f, g);  // plus is commutative
  const std::uint64_t key =
      mix64((static_cast<std::uint64_t>(f) << 32) ^ g);
  if (auto it = plus_cache_.find(key); it != plus_cache_.end())
    return it->second;

  unsigned v = kTerminalVar;
  if (!is_terminal(f)) v = var_of(f);
  if (!is_terminal(g) && var_of(g) < v) v = var_of(g);

  const AddId f0 = (!is_terminal(f) && var_of(f) == v) ? lo(f) : f;
  const AddId f1 = (!is_terminal(f) && var_of(f) == v) ? hi(f) : f;
  const AddId g0 = (!is_terminal(g) && var_of(g) == v) ? lo(g) : g;
  const AddId g1 = (!is_terminal(g) && var_of(g) == v) ? hi(g) : g;

  const AddId l = plus_rec(f0, g0);
  const AddId h = plus_rec(f1, g1);
  const AddId r = make_node(v, l, h);
  plus_cache_[key] = r;
  return r;
}

AddManager::AddId AddManager::plus(AddId f, AddId g) { return plus_rec(f, g); }

std::int64_t AddManager::max_rec(
    AddId f, std::unordered_map<AddId, std::int64_t>& memo) {
  if (is_terminal(f)) return value_of(f);
  if (auto it = memo.find(f); it != memo.end()) return it->second;
  const std::int64_t r = std::max(max_rec(lo(f), memo), max_rec(hi(f), memo));
  memo[f] = r;
  return r;
}

std::int64_t AddManager::max_value(AddId f) {
  std::unordered_map<AddId, std::int64_t> memo;
  return max_rec(f, memo);
}

std::int64_t AddManager::argmax(AddId f, std::vector<bool>& assignment,
                                bool fill) {
  std::unordered_map<AddId, std::int64_t> memo;
  const std::int64_t best = max_rec(f, memo);
  assignment.assign(num_vars_, fill);
  AddId cur = f;
  while (!is_terminal(cur)) {
    const std::int64_t lo_max = max_rec(lo(cur), memo);
    const std::int64_t hi_max = max_rec(hi(cur), memo);
    // Prefer the 0-branch on ties: fewer onset classes means a smaller
    // decomposition function, a mild simplicity bias.
    if (lo_max >= hi_max) {
      assignment[var_of(cur)] = false;
      cur = lo(cur);
    } else {
      assignment[var_of(cur)] = true;
      cur = hi(cur);
    }
  }
  assert(value_of(cur) == best);
  return best;
}

void AddManager::foreach_at_value(
    AddId f, std::int64_t target, const std::vector<unsigned>& vars,
    const std::function<bool(const std::vector<bool>&)>& cb) {
  std::vector<bool> assignment(vars.size(), false);
  bool stop = false;
  std::function<void(std::size_t, AddId)> rec = [&](std::size_t pos, AddId g) {
    if (stop) return;
    if (pos == vars.size()) {
      assert(is_terminal(g));
      if (value_of(g) == target && !cb(assignment)) stop = true;
      return;
    }
    const unsigned v = vars[pos];
    AddId g0 = g, g1 = g;
    if (!is_terminal(g) && var_of(g) == v) {
      g0 = lo(g);
      g1 = hi(g);
    }
    assignment[pos] = false;
    rec(pos + 1, g0);
    assignment[pos] = true;
    rec(pos + 1, g1);
    assignment[pos] = false;
  };
  rec(0, f);
}

}  // namespace imodec::bdd
