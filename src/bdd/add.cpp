#include "bdd/add.hpp"

#include <algorithm>
#include <cassert>
#include <functional>

namespace imodec::bdd {

namespace {
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

std::uint64_t hash_triple(std::uint32_t var, std::uint32_t lo,
                          std::uint32_t hi) {
  return mix64((static_cast<std::uint64_t>(var) << 32 | lo) *
                   0x9e3779b97f4a7c15ull ^
               hi);
}

constexpr std::size_t kInitialUnique = std::size_t(1) << 8;
constexpr std::size_t kMinPlusCache = std::size_t(1) << 8;
}  // namespace

AddManager::AddManager(unsigned num_vars) : num_vars_(num_vars) {
  unique_.assign(kInitialUnique, kNoAdd_);
  plus_cache_.assign(kMinPlusCache, PlusEntry{});
}

AddManager::AddId AddManager::constant(std::int64_t value) {
  if (auto it = terminals_.find(value); it != terminals_.end())
    return it->second;
  const AddId id = static_cast<AddId>(nodes_.size());
  nodes_.push_back(Node{kTerminalVar, 0, 0, value});
  terminals_.emplace(value, id);
  return id;
}

AddManager::AddId AddManager::make_node(unsigned v, AddId lo, AddId hi) {
  if (lo == hi) return lo;
  const std::size_t mask = unique_.size() - 1;
  std::size_t slot = hash_triple(v, lo, hi) & mask;
  while (unique_[slot] != kNoAdd_) {
    const Node& n = nodes_[unique_[slot]];
    if (n.var == v && n.lo == lo && n.hi == hi) return unique_[slot];
    slot = (slot + 1) & mask;
  }
  const AddId id = static_cast<AddId>(nodes_.size());
  nodes_.push_back(Node{v, lo, hi, 0});
  unique_[slot] = id;
  ++unique_occupied_;
  if ((unique_occupied_ + 1) * 4 > unique_.size() * 3)
    unique_rehash(unique_.size() * 2);
  return id;
}

void AddManager::unique_rehash(std::size_t new_size) {
  unique_.assign(new_size, kNoAdd_);
  unique_occupied_ = 0;
  const std::size_t mask = new_size - 1;
  for (AddId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    if (n.var == kTerminalVar) continue;
    std::size_t slot = hash_triple(n.var, n.lo, n.hi) & mask;
    while (unique_[slot] != kNoAdd_) slot = (slot + 1) & mask;
    unique_[slot] = id;
    ++unique_occupied_;
  }
  // Grow the plus cache with the node population. Entries are exact-keyed
  // and AddIds never die, so dropping them only costs recomputation.
  const std::size_t target = std::max(kMinPlusCache, new_size / 2);
  if (plus_cache_.size() < target) plus_cache_.assign(target, PlusEntry{});
}

AddManager::AddId AddManager::from_bdd_rec(
    Manager& src, NodeId f, std::unordered_map<NodeId, AddId>& memo) {
  if (f == kFalse) return constant(0);
  if (f == kTrue) return constant(1);
  if (auto it = memo.find(f); it != memo.end()) return it->second;
  // The ADD layer orders by raw variable index; the source BDD must be in
  // identity order over the translated support (Lmax managers always are).
  assert(src.level_of(src.var_of(f)) == src.var_of(f));
  const AddId l = from_bdd_rec(src, src.lo(f), memo);
  const AddId h = from_bdd_rec(src, src.hi(f), memo);
  const AddId r = make_node(src.var_of(f), l, h);
  memo[f] = r;
  return r;
}

AddManager::AddId AddManager::from_bdd(Manager& src, NodeId f) {
  std::unordered_map<NodeId, AddId> memo;
  return from_bdd_rec(src, f, memo);
}

AddManager::AddId AddManager::plus_rec(AddId f, AddId g) {
  if (is_terminal(f) && is_terminal(g))
    return constant(value_of(f) + value_of(g));
  if (f > g) std::swap(f, g);  // plus is commutative
  const std::size_t slot =
      mix64((static_cast<std::uint64_t>(f) << 32) | g) &
      (plus_cache_.size() - 1);
  if (const PlusEntry& e = plus_cache_[slot]; e.f == f && e.g == g)
    return e.result;

  unsigned v = kTerminalVar;
  if (!is_terminal(f)) v = var_of(f);
  if (!is_terminal(g) && var_of(g) < v) v = var_of(g);

  const AddId f0 = (!is_terminal(f) && var_of(f) == v) ? lo(f) : f;
  const AddId f1 = (!is_terminal(f) && var_of(f) == v) ? hi(f) : f;
  const AddId g0 = (!is_terminal(g) && var_of(g) == v) ? lo(g) : g;
  const AddId g1 = (!is_terminal(g) && var_of(g) == v) ? hi(g) : g;

  const AddId l = plus_rec(f0, g0);
  const AddId h = plus_rec(f1, g1);
  const AddId r = make_node(v, l, h);
  // Recompute the slot: make_node may have grown the cache underneath us.
  plus_cache_[mix64((static_cast<std::uint64_t>(f) << 32) | g) &
              (plus_cache_.size() - 1)] = PlusEntry{f, g, r};
  return r;
}

AddManager::AddId AddManager::plus(AddId f, AddId g) { return plus_rec(f, g); }

std::int64_t AddManager::max_rec(
    AddId f, std::unordered_map<AddId, std::int64_t>& memo) {
  if (is_terminal(f)) return value_of(f);
  if (auto it = memo.find(f); it != memo.end()) return it->second;
  const std::int64_t r = std::max(max_rec(lo(f), memo), max_rec(hi(f), memo));
  memo[f] = r;
  return r;
}

std::int64_t AddManager::max_value(AddId f) {
  std::unordered_map<AddId, std::int64_t> memo;
  return max_rec(f, memo);
}

std::int64_t AddManager::argmax(AddId f, std::vector<bool>& assignment,
                                bool fill) {
  std::unordered_map<AddId, std::int64_t> memo;
  const std::int64_t best = max_rec(f, memo);
  assignment.assign(num_vars_, fill);
  AddId cur = f;
  while (!is_terminal(cur)) {
    const std::int64_t lo_max = max_rec(lo(cur), memo);
    const std::int64_t hi_max = max_rec(hi(cur), memo);
    // Prefer the 0-branch on ties: fewer onset classes means a smaller
    // decomposition function, a mild simplicity bias.
    if (lo_max >= hi_max) {
      assignment[var_of(cur)] = false;
      cur = lo(cur);
    } else {
      assignment[var_of(cur)] = true;
      cur = hi(cur);
    }
  }
  assert(value_of(cur) == best);
  return best;
}

void AddManager::foreach_at_value(
    AddId f, std::int64_t target, const std::vector<unsigned>& vars,
    const std::function<bool(const std::vector<bool>&)>& cb) {
  std::vector<bool> assignment(vars.size(), false);
  bool stop = false;
  std::function<void(std::size_t, AddId)> rec = [&](std::size_t pos, AddId g) {
    if (stop) return;
    if (pos == vars.size()) {
      assert(is_terminal(g));
      if (value_of(g) == target && !cb(assignment)) stop = true;
      return;
    }
    const unsigned v = vars[pos];
    AddId g0 = g, g1 = g;
    if (!is_terminal(g) && var_of(g) == v) {
      g0 = lo(g);
      g1 = hi(g);
    }
    assignment[pos] = false;
    rec(pos + 1, g0);
    assignment[pos] = true;
    rec(pos + 1, g1);
    assignment[pos] = false;
  };
  rec(0, f);
}

}  // namespace imodec::bdd
