#include "bdd/manager.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/metrics.hpp"

namespace imodec::bdd {

namespace {
constexpr std::uint32_t kFreeVar = 0xfffffffeu;

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

std::uint64_t hash_vars(const std::vector<unsigned>& vars) {
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  for (unsigned v : vars) h = mix64(h ^ (v + 0x1234u));
  return h;
}
}  // namespace

std::size_t Manager::CacheKeyHash::operator()(const CacheKey& k) const {
  std::uint64_t h = static_cast<std::uint64_t>(k.op);
  h = mix64(h ^ k.a);
  h = mix64(h ^ k.b);
  h = mix64(h ^ k.c);
  h = mix64(h ^ k.tag);
  return static_cast<std::size_t>(h);
}

Manager::Manager(unsigned num_vars) : num_vars_(num_vars) {
  level_of_var_.resize(num_vars);
  var_at_level_.resize(num_vars);
  for (unsigned v = 0; v < num_vars; ++v) {
    level_of_var_[v] = v;
    var_at_level_[v] = v;
  }
  nodes_.reserve(1024);
  // Terminal 0 and terminal 1. Permanent external reference keeps them live.
  nodes_.push_back(Node{kTerminalVar, 0, 0, 0, 1});
  nodes_.push_back(Node{kTerminalVar, 1, 1, 0, 1});
  unique_.assign(1024, 0);
  live_nodes_ = 2;
  peak_nodes_ = 2;
}

std::size_t Manager::unique_hash(unsigned v, NodeId lo, NodeId hi) const {
  std::uint64_t h = mix64((static_cast<std::uint64_t>(v) << 40) ^
                          (static_cast<std::uint64_t>(lo) << 20) ^ hi);
  return static_cast<std::size_t>(h) & (unique_.size() - 1);
}

void Manager::unique_resize() {
  const std::size_t new_size = unique_.size() * 2;
  unique_.assign(new_size, 0);
  for (NodeId i = 2; i < nodes_.size(); ++i) {
    Node& n = nodes_[i];
    if (n.var == kFreeVar || n.var == kTerminalVar) continue;
    const std::size_t b = unique_hash(n.var, n.lo, n.hi);
    n.next = unique_[b];
    unique_[b] = i;
  }
}

void Manager::add_vars(unsigned extra) {
  for (unsigned i = 0; i < extra; ++i) {
    level_of_var_.push_back(num_vars_ + i);
    var_at_level_.push_back(num_vars_ + i);
  }
  num_vars_ += extra;
}

NodeId Manager::make_node(unsigned v, NodeId lo, NodeId hi) {
  if (lo == hi) return lo;
  assert(v < num_vars_);
  assert(is_terminal(lo) || level_of(var_of(lo)) > level_of(v));
  assert(is_terminal(hi) || level_of(var_of(hi)) > level_of(v));
  const std::size_t b = unique_hash(v, lo, hi);
  for (NodeId i = unique_[b]; i != 0; i = nodes_[i].next) {
    const Node& n = nodes_[i];
    if (n.var == v && n.lo == lo && n.hi == hi) {
      ++stats_.unique_hits;
      return i;
    }
  }
  ++stats_.nodes_allocated;
  NodeId id;
  if (free_list_ != 0) {
    id = free_list_;
    free_list_ = nodes_[id].next;
  } else {
    id = static_cast<NodeId>(nodes_.size());
    nodes_.push_back(Node{});
  }
  nodes_[id] = Node{v, lo, hi, unique_[b], 0};
  unique_[b] = id;
  ++live_nodes_;
  peak_nodes_ = std::max(peak_nodes_, live_nodes_);
  if (live_nodes_ * 2 > unique_.size()) unique_resize();
  return id;
}

NodeId Manager::var(unsigned v) { return make_node(v, kFalse, kTrue); }
NodeId Manager::nvar(unsigned v) { return make_node(v, kTrue, kFalse); }

void Manager::ref(NodeId f) { ++nodes_[f].ref; }

void Manager::deref(NodeId f) {
  assert(nodes_[f].ref > 0);
  --nodes_[f].ref;
}

void Manager::mark_rec(NodeId f, std::vector<bool>& mark) const {
  if (mark[f]) return;
  mark[f] = true;
  if (is_terminal(f)) return;
  mark_rec(nodes_[f].lo, mark);
  mark_rec(nodes_[f].hi, mark);
}

void Manager::garbage_collect() {
  ++stats_.gc_runs;
  std::vector<bool> mark(nodes_.size(), false);
  mark[kFalse] = mark[kTrue] = true;
  for (NodeId i = 2; i < nodes_.size(); ++i) {
    if (nodes_[i].var != kFreeVar && nodes_[i].ref > 0) mark_rec(i, mark);
  }
  free_list_ = 0;
  live_nodes_ = 2;
  for (NodeId i = 2; i < nodes_.size(); ++i) {
    if (nodes_[i].var == kFreeVar) {
      nodes_[i].next = free_list_;
      free_list_ = i;
    } else if (!mark[i]) {
      nodes_[i].var = kFreeVar;
      nodes_[i].next = free_list_;
      free_list_ = i;
    } else {
      ++live_nodes_;
    }
  }
  // Rebuild the unique table over surviving nodes.
  std::fill(unique_.begin(), unique_.end(), 0);
  for (NodeId i = 2; i < nodes_.size(); ++i) {
    Node& n = nodes_[i];
    if (n.var == kFreeVar) continue;
    const std::size_t b = unique_hash(n.var, n.lo, n.hi);
    n.next = unique_[b];
    unique_[b] = i;
  }
  computed_.clear();
}

void Manager::maybe_gc() {
  if (live_nodes_ < gc_threshold_) return;
  garbage_collect();
  if (live_nodes_ * 4 > gc_threshold_ * 3) gc_threshold_ *= 2;
}

NodeId Manager::cached(const CacheKey& k) const {
  ++stats_.cache_lookups;
  auto it = computed_.find(k);
  if (it == computed_.end()) return kNoReplacement;
  ++stats_.cache_hits;
  return it->second;
}

void Manager::cache_insert(const CacheKey& k, NodeId r) { computed_[k] = r; }

NodeId Manager::ite(NodeId f, NodeId g, NodeId h) {
  // Terminal cases.
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;
  if (f == g) g = kTrue;   // ite(f, f, h) == ite(f, 1, h)
  if (f == h) h = kFalse;  // ite(f, g, f) == ite(f, g, 0)

  const CacheKey key{Op::Ite, f, g, h, 0};
  if (NodeId r = cached(key); r != kNoReplacement) return r;

  unsigned v = var_of(f);
  if (!is_terminal(g) && level_of(var_of(g)) < level_of(v)) v = var_of(g);
  if (!is_terminal(h) && level_of(var_of(h)) < level_of(v)) v = var_of(h);

  const NodeId f0 = (!is_terminal(f) && var_of(f) == v) ? lo(f) : f;
  const NodeId f1 = (!is_terminal(f) && var_of(f) == v) ? hi(f) : f;
  const NodeId g0 = (!is_terminal(g) && var_of(g) == v) ? lo(g) : g;
  const NodeId g1 = (!is_terminal(g) && var_of(g) == v) ? hi(g) : g;
  const NodeId h0 = (!is_terminal(h) && var_of(h) == v) ? lo(h) : h;
  const NodeId h1 = (!is_terminal(h) && var_of(h) == v) ? hi(h) : h;

  const NodeId t = ite(f1, g1, h1);
  const NodeId e = ite(f0, g0, h0);
  const NodeId r = make_node(v, e, t);
  cache_insert(key, r);
  return r;
}

NodeId Manager::apply_and(NodeId f, NodeId g) {
  if (f > g) std::swap(f, g);
  return ite(f, g, kFalse);
}

NodeId Manager::apply_or(NodeId f, NodeId g) {
  if (f > g) std::swap(f, g);
  return ite(f, kTrue, g);
}

NodeId Manager::apply_xor(NodeId f, NodeId g) {
  if (f > g) std::swap(f, g);
  const CacheKey key{Op::Xor, f, g, 0, 0};
  if (NodeId r = cached(key); r != kNoReplacement) return r;
  const NodeId r = ite(f, apply_not(g), g);
  cache_insert(key, r);
  return r;
}

NodeId Manager::apply_not(NodeId f) { return ite(f, kFalse, kTrue); }

NodeId Manager::cofactor(NodeId f, unsigned v, bool value) {
  if (is_terminal(f) || level_of(var_of(f)) > level_of(v)) return f;
  if (var_of(f) == v) return value ? hi(f) : lo(f);
  const CacheKey key{Op::Compose, f, value ? kTrue : kFalse, 0,
                     0x4000000000000000ull | v};
  if (NodeId r = cached(key); r != kNoReplacement) return r;
  const NodeId r = make_node(var_of(f), cofactor(lo(f), v, value),
                             cofactor(hi(f), v, value));
  cache_insert(key, r);
  return r;
}

NodeId Manager::quantify_rec(NodeId f, const std::vector<unsigned>& sorted_vars,
                             bool existential, std::uint64_t tag) {
  if (is_terminal(f)) return f;
  const unsigned v = var_of(f);
  // Stop once f's top level is below every quantified variable.
  unsigned deepest = 0;
  for (unsigned qv : sorted_vars) deepest = std::max(deepest, level_of(qv));
  if (sorted_vars.empty() || level_of(v) > deepest) return f;

  const CacheKey key{existential ? Op::Exists : Op::Forall, f, 0, 0, tag};
  if (NodeId r = cached(key); r != kNoReplacement) return r;

  const NodeId l = quantify_rec(lo(f), sorted_vars, existential, tag);
  const NodeId h = quantify_rec(hi(f), sorted_vars, existential, tag);
  NodeId r;
  if (std::binary_search(sorted_vars.begin(), sorted_vars.end(), v)) {
    r = existential ? apply_or(l, h) : apply_and(l, h);
  } else {
    r = make_node(v, l, h);
  }
  cache_insert(key, r);
  return r;
}

NodeId Manager::exists(NodeId f, const std::vector<unsigned>& vars) {
  std::vector<unsigned> sorted = vars;
  std::sort(sorted.begin(), sorted.end());
  ref(f);
  maybe_gc();
  const NodeId r = quantify_rec(f, sorted, true, hash_vars(sorted));
  deref(f);
  return r;
}

NodeId Manager::forall(NodeId f, const std::vector<unsigned>& vars) {
  std::vector<unsigned> sorted = vars;
  std::sort(sorted.begin(), sorted.end());
  ref(f);
  maybe_gc();
  const NodeId r = quantify_rec(f, sorted, false, hash_vars(sorted));
  deref(f);
  return r;
}

NodeId Manager::compose(NodeId f, unsigned v, NodeId g) {
  ref(f);
  ref(g);
  maybe_gc();
  const NodeId f1 = cofactor(f, v, true);
  const NodeId f0 = cofactor(f, v, false);
  const NodeId r = ite(g, f1, f0);
  deref(f);
  deref(g);
  return r;
}

NodeId Manager::vector_compose_rec(NodeId f, const std::vector<NodeId>& map,
                                   std::uint64_t tag,
                                   std::unordered_map<NodeId, NodeId>& memo) {
  if (is_terminal(f)) return f;
  if (auto it = memo.find(f); it != memo.end()) return it->second;
  (void)tag;
  const unsigned v = var_of(f);
  const NodeId l = vector_compose_rec(lo(f), map, tag, memo);
  const NodeId h = vector_compose_rec(hi(f), map, tag, memo);
  const NodeId sub =
      (v < map.size() && map[v] != kNoReplacement) ? map[v] : var(v);
  const NodeId r = ite(sub, h, l);
  memo[f] = r;
  return r;
}

NodeId Manager::vector_compose(NodeId f, const std::vector<NodeId>& map) {
  ref(f);
  for (NodeId g : map)
    if (g != kNoReplacement) ref(g);
  maybe_gc();
  std::unordered_map<NodeId, NodeId> memo;
  const NodeId r = vector_compose_rec(f, map, 0, memo);
  for (NodeId g : map)
    if (g != kNoReplacement) deref(g);
  deref(f);
  return r;
}

NodeId Manager::cube(const std::vector<unsigned>& vars,
                     const std::vector<bool>& phases) {
  assert(vars.size() == phases.size());
  std::vector<std::pair<unsigned, bool>> lits;
  lits.reserve(vars.size());
  for (std::size_t i = 0; i < vars.size(); ++i)
    lits.emplace_back(vars[i], phases[i]);
  // Build bottom-up in order of decreasing level.
  std::sort(lits.begin(), lits.end(), [&](const auto& a, const auto& b) {
    return level_of(a.first) < level_of(b.first);
  });
  NodeId r = kTrue;
  for (auto it = lits.rbegin(); it != lits.rend(); ++it) {
    r = it->second ? make_node(it->first, kFalse, r)
                   : make_node(it->first, r, kFalse);
  }
  return r;
}

double Manager::sat_count_rec(NodeId f,
                              std::unordered_map<NodeId, double>& memo) {
  // Returns #minterms over the levels from f's own level downward,
  // normalized so the caller scales by the level gap above.
  if (f == kFalse) return 0.0;
  if (f == kTrue) return 1.0;
  if (auto it = memo.find(f); it != memo.end()) return it->second;
  const unsigned l = level_of(var_of(f));
  const unsigned lo_level =
      is_terminal(lo(f)) ? num_vars_ : level_of(var_of(lo(f)));
  const unsigned hi_level =
      is_terminal(hi(f)) ? num_vars_ : level_of(var_of(hi(f)));
  const double cl = sat_count_rec(lo(f), memo) *
                    std::ldexp(1.0, static_cast<int>(lo_level - l - 1));
  const double ch = sat_count_rec(hi(f), memo) *
                    std::ldexp(1.0, static_cast<int>(hi_level - l - 1));
  const double r = cl + ch;
  memo[f] = r;
  return r;
}

double Manager::sat_count(NodeId f) {
  std::unordered_map<NodeId, double> memo;
  const unsigned top = is_terminal(f) ? num_vars_ : level_of(var_of(f));
  return sat_count_rec(f, memo) * std::ldexp(1.0, static_cast<int>(top));
}

std::vector<unsigned> Manager::support(NodeId f) {
  std::vector<bool> seen(num_vars_, false);
  std::vector<bool> visited_flag(nodes_.size(), false);
  std::vector<NodeId> stack{f};
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    if (is_terminal(n) || visited_flag[n]) continue;
    visited_flag[n] = true;
    seen[var_of(n)] = true;
    stack.push_back(lo(n));
    stack.push_back(hi(n));
  }
  std::vector<unsigned> out;
  for (unsigned v = 0; v < num_vars_; ++v)
    if (seen[v]) out.push_back(v);
  return out;
}

bool Manager::eval(NodeId f, const std::vector<bool>& assignment) const {
  while (!is_terminal(f)) {
    const Node& n = nodes_[f];
    f = assignment[n.var] ? n.hi : n.lo;
  }
  return f == kTrue;
}

std::size_t Manager::dag_size(NodeId f) {
  std::vector<bool> visited(nodes_.size(), false);
  std::vector<NodeId> stack{f};
  std::size_t count = 0;
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    if (is_terminal(n) || visited[n]) continue;
    visited[n] = true;
    ++count;
    stack.push_back(lo(n));
    stack.push_back(hi(n));
  }
  return count;
}

bool Manager::pick_minterm(NodeId f, std::vector<bool>& assignment) {
  assignment.assign(num_vars_, false);
  if (f == kFalse) return false;
  while (!is_terminal(f)) {
    if (hi(f) != kFalse) {
      assignment[var_of(f)] = true;
      f = hi(f);
    } else {
      f = lo(f);
    }
  }
  return true;
}

void Manager::foreach_minterm(
    NodeId f, const std::vector<unsigned>& vars,
    const std::function<bool(const std::vector<bool>&)>& cb) {
  // Walk the variables in order of their current level; the callback's
  // assignment stays indexed by the caller's positions.
  std::vector<std::size_t> positions(vars.size());
  for (std::size_t i = 0; i < positions.size(); ++i) positions[i] = i;
  std::sort(positions.begin(), positions.end(), [&](std::size_t a,
                                                    std::size_t b) {
    return level_of(vars[a]) < level_of(vars[b]);
  });

  std::vector<bool> assignment(vars.size(), false);
  bool stop = false;
  std::function<void(std::size_t, NodeId)> rec = [&](std::size_t depth,
                                                     NodeId g) {
    if (stop || g == kFalse) return;
    if (depth == positions.size()) {
      assert(is_terminal(g));
      if (g == kTrue && !cb(assignment)) stop = true;
      return;
    }
    const std::size_t pos = positions[depth];
    const unsigned v = vars[pos];
    NodeId g0 = g, g1 = g;
    if (!is_terminal(g) && var_of(g) == v) {
      g0 = lo(g);
      g1 = hi(g);
    } else {
      assert(is_terminal(g) || level_of(var_of(g)) > level_of(v));
    }
    assignment[pos] = false;
    rec(depth + 1, g0);
    assignment[pos] = true;
    rec(depth + 1, g1);
    assignment[pos] = false;
  };
  rec(0, f);
}

std::size_t Manager::reachable_node_count() const {
  std::vector<bool> mark(nodes_.size(), false);
  mark[kFalse] = mark[kTrue] = true;
  for (NodeId i = 2; i < nodes_.size(); ++i)
    if (nodes_[i].var != kFreeVar && nodes_[i].ref > 0) mark_rec(i, mark);
  std::size_t count = 0;
  for (NodeId i = 2; i < nodes_.size(); ++i) count += mark[i];
  return count;
}

void Manager::swap_levels(unsigned level) {
  assert(level + 1 < num_vars_);
  const unsigned u = var_at_level_[level];      // moves down
  const unsigned v = var_at_level_[level + 1];  // moves up

  std::vector<NodeId> u_nodes;
  for (NodeId i = 2; i < nodes_.size(); ++i)
    if (nodes_[i].var == u) u_nodes.push_back(i);

  // Install the new order first: make_node's ordering asserts and lookups
  // must see v above u while the replacement children are built.
  std::swap(var_at_level_[level], var_at_level_[level + 1]);
  level_of_var_[u] = level + 1;
  level_of_var_[v] = level;

  for (NodeId id : u_nodes) {
    const NodeId f0 = nodes_[id].lo;
    const NodeId f1 = nodes_[id].hi;
    const bool lo_is_v = !is_terminal(f0) && var_of(f0) == v;
    const bool hi_is_v = !is_terminal(f1) && var_of(f1) == v;
    if (!lo_is_v && !hi_is_v) continue;  // independent of v: just sinks a level
    // F = ~u f0 + u f1, with f_i = ~v f_i0 + v f_i1:
    // F = ~v (~u f00 + u f10) + v (~u f01 + u f11).
    const NodeId f00 = lo_is_v ? lo(f0) : f0;
    const NodeId f01 = lo_is_v ? hi(f0) : f0;
    const NodeId f10 = hi_is_v ? lo(f1) : f1;
    const NodeId f11 = hi_is_v ? hi(f1) : f1;
    const NodeId new_lo = make_node(u, f00, f10);
    const NodeId new_hi = make_node(u, f01, f11);
    assert(new_lo != new_hi);
    nodes_[id].var = v;
    nodes_[id].lo = new_lo;
    nodes_[id].hi = new_hi;
    // The node's function is unchanged; its unique-table key is not. The
    // full table is rebuilt below.
  }

  // Rebuild the unique table over live nodes (relabeled keys changed).
  std::fill(unique_.begin(), unique_.end(), 0);
  for (NodeId i = 2; i < nodes_.size(); ++i) {
    Node& n = nodes_[i];
    if (n.var == kFreeVar) continue;
    const std::size_t b = unique_hash(n.var, n.lo, n.hi);
    n.next = unique_[b];
    unique_[b] = i;
  }
}

std::size_t Manager::sift() {
  garbage_collect();

  // Variables ordered by how many live nodes carry them, largest first.
  std::vector<std::size_t> population(num_vars_, 0);
  for (NodeId i = 2; i < nodes_.size(); ++i)
    if (nodes_[i].var != kFreeVar) ++population[nodes_[i].var];
  std::vector<unsigned> order;
  for (unsigned v = 0; v < num_vars_; ++v)
    if (population[v] > 0) order.push_back(v);
  std::sort(order.begin(), order.end(), [&](unsigned a, unsigned b) {
    return population[a] > population[b];
  });

  for (unsigned v : order) {
    unsigned best_level = level_of(v);
    std::size_t best_size = reachable_node_count();
    // Sink to the bottom, then float to the top, tracking the best spot.
    while (level_of(v) + 1 < num_vars_) {
      swap_levels(level_of(v));
      const std::size_t size = reachable_node_count();
      if (size < best_size) {
        best_size = size;
        best_level = level_of(v);
      }
    }
    while (level_of(v) > 0) {
      swap_levels(level_of(v) - 1);
      const std::size_t size = reachable_node_count();
      if (size < best_size) {
        best_size = size;
        best_level = level_of(v);
      }
    }
    while (level_of(v) < best_level) swap_levels(level_of(v));
    assert(level_of(v) == best_level);
  }
  garbage_collect();
  return reachable_node_count();
}

void Manager::set_order(const std::vector<unsigned>& var_at_level) {
  assert(var_at_level.size() == num_vars_);
  for (unsigned l = 0; l < num_vars_; ++l) {
    const unsigned target = var_at_level[l];
    assert(level_of(target) >= l && "input is not a permutation");
    while (level_of(target) > l) swap_levels(level_of(target) - 1);
  }
}

void Manager::publish_stats(const char* prefix) const {
  if (!obs::enabled()) return;
  const std::string p = prefix;
  obs::Registry& reg = obs::Registry::instance();
  reg.counter(p + ".nodes_allocated").add(stats_.nodes_allocated);
  reg.counter(p + ".unique_hits").add(stats_.unique_hits);
  reg.counter(p + ".cache_lookups").add(stats_.cache_lookups);
  reg.counter(p + ".cache_hits").add(stats_.cache_hits);
  reg.counter(p + ".gc_runs").add(stats_.gc_runs);
  reg.gauge(p + ".peak_live_nodes")
      .set(static_cast<std::int64_t>(peak_nodes_));
}

bool Manager::check_invariants() const {
  // The level maps must be inverse permutations.
  for (unsigned v = 0; v < num_vars_; ++v) {
    if (level_of_var_[v] >= num_vars_) return false;
    if (var_at_level_[level_of_var_[v]] != v) return false;
  }
  for (NodeId i = 2; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.var == kFreeVar) continue;
    if (n.var >= num_vars_) return false;
    if (n.lo == n.hi) return false;
    const auto check_child = [&](NodeId c) {
      if (c <= kTrue) return true;
      const Node& cn = nodes_[c];
      return cn.var != kFreeVar &&
             level_of_var_[cn.var] > level_of_var_[n.var];
    };
    if (!check_child(n.lo) || !check_child(n.hi)) return false;
  }
  // No duplicate (var, lo, hi) triples among live nodes.
  std::unordered_map<std::uint64_t, NodeId> seen;
  for (NodeId i = 2; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.var == kFreeVar) continue;
    const std::uint64_t key = (static_cast<std::uint64_t>(n.var) << 48) ^
                              (static_cast<std::uint64_t>(n.lo) << 24) ^ n.hi;
    if (!seen.emplace(key, i).second) return false;
  }
  return true;
}

}  // namespace imodec::bdd
