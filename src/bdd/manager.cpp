#include "bdd/manager.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <new>
#include <numeric>
#include <set>
#include <string>
#include <tuple>
#include <unordered_set>

#include <chrono>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "util/fault.hpp"
#include "util/resource.hpp"

namespace imodec::bdd {
namespace {

/// Internal unwind signal: a governed make_node hit the guard's node budget.
/// Only thrown while a guard is attached; converted by Manager::governed into
/// either a successful GC-retry or a util::ResourceExhausted.
struct NodeBudgetHit {};

/// SplitMix64 finalizer — the mixing step behind both flat tables.
inline std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

inline std::uint64_t hash_triple(std::uint32_t var, NodeId lo, NodeId hi) {
  return mix64((static_cast<std::uint64_t>(var) << 32 | lo) *
                   0x9e3779b97f4a7c15ull ^
               hi);
}

constexpr NodeId kNotFound = 0xffffffffu;
constexpr std::size_t kInitialUnique = std::size_t(1) << 11;
constexpr std::size_t kMinCache = std::size_t(1) << 12;
constexpr std::size_t kMaxCache = std::size_t(1) << 21;

/// Maintains a recursion-depth counter and its watermark across every exit
/// path of a recursive frame (early returns, exceptions, GC-retry unwinds).
struct DepthScope {
  std::uint32_t* depth;
  DepthScope(std::uint32_t* d, std::uint32_t* dmax) : depth(d) {
    if (++*d > *dmax) *dmax = *d;
  }
  ~DepthScope() { --*depth; }
};

}  // namespace

Manager::Manager(unsigned num_vars) : num_vars_(num_vars) {
  level_of_var_.resize(num_vars_);
  var_at_level_.resize(num_vars_);
  std::iota(level_of_var_.begin(), level_of_var_.end(), 0u);
  std::iota(var_at_level_.begin(), var_at_level_.end(), 0u);
  // Arena slot 0 is the one terminal; its permanent external reference keeps
  // every GC from touching it.
  nodes_.push_back(Node{kTerminalVar, 0, 0, 1});
  live_nodes_ = peak_nodes_ = 1;
  unique_.assign(kInitialUnique, 0);
  cache_.assign(kMinCache, CacheEntry{});
}

Manager::~Manager() {
  if (guard_) guard_->charge_nodes(-static_cast<std::int64_t>(guard_charged_));
}

void Manager::set_resource_guard(util::ResourceGuard* guard) {
  if (guard_ == guard) return;
  if (guard_) guard_->charge_nodes(-static_cast<std::int64_t>(guard_charged_));
  guard_ = guard;
  guard_charged_ = 0;
  sync_guard_charge();
}

void Manager::sync_guard_charge() {
  if (!guard_) return;
  const std::int64_t delta = static_cast<std::int64_t>(live_nodes_) -
                             static_cast<std::int64_t>(guard_charged_);
  if (delta != 0) guard_->charge_nodes(delta);
  guard_charged_ = live_nodes_;
}

template <typename Fn>
NodeId Manager::governed(const std::vector<NodeId>& roots, Fn&& fn) {
  // Nested public calls (e.g. vector_compose_rec -> var) must not run their
  // own recovery: a GC here would free the outer recursion's unreferenced
  // intermediates. Only the outermost governed frame recovers.
  if (!guard_ || in_governed_) return fn();
  in_governed_ = true;
  struct Reset {
    bool* flag;
    ~Reset() { *flag = false; }
  } reset{&in_governed_};

  const auto protect = [&](int d) {
    for (const NodeId r : roots) nodes_[r >> 1].ref += d;
  };
  // One collection with the operands protected, then one retry. The ladder:
  // trip -> GC -> retry -> second trip -> typed ResourceExhausted.
  const auto recover = [&](bool from_budget) {
    protect(+1);
    try {
      garbage_collect();
    } catch (const std::bad_alloc&) {
      protect(-1);
      throw util::ResourceExhausted(util::ResourceKind::memory,
                                    "BDD arena allocation failed during GC");
    }
    protect(-1);
    const std::size_t budget = guard_->node_budget();
    if (from_budget && budget != 0 && live_nodes_ >= budget)
      throw util::ResourceExhausted(
          util::ResourceKind::bdd_nodes,
          "BDD node budget exceeded (GC could not free enough)");
  };

  try {
    return fn();
  } catch (const NodeBudgetHit&) {
    recover(/*from_budget=*/true);
  } catch (const std::bad_alloc&) {
    recover(/*from_budget=*/false);
  }
  try {
    return fn();
  } catch (const NodeBudgetHit&) {
    throw util::ResourceExhausted(util::ResourceKind::bdd_nodes,
                                  "BDD node budget exceeded");
  } catch (const std::bad_alloc&) {
    throw util::ResourceExhausted(util::ResourceKind::memory,
                                  "BDD arena allocation failed");
  }
}

void Manager::reset(unsigned num_vars) {
  // Logically this is ~Manager() + Manager(num_vars), minus the frees: the
  // arena vector keeps its capacity and the flat tables keep their (possibly
  // grown) sizes, just zeroed. Results are unaffected by table capacity —
  // node allocation order depends only on the operation sequence (a bigger
  // computed cache can skip a recomputation, but a recomputation of a
  // still-cached result finds every node in the unique table and allocates
  // nothing) — so a warm reset manager is bit-identical in behaviour to a
  // fresh one, only without the cold allocation cost.
  if (guard_) guard_->charge_nodes(-static_cast<std::int64_t>(guard_charged_));
  guard_ = nullptr;
  guard_charged_ = 0;
  num_vars_ = num_vars;
  level_of_var_.resize(num_vars_);
  var_at_level_.resize(num_vars_);
  std::iota(level_of_var_.begin(), level_of_var_.end(), 0u);
  std::iota(var_at_level_.begin(), var_at_level_.end(), 0u);
  nodes_.clear();
  nodes_.push_back(Node{kTerminalVar, 0, 0, 1});
  live_nodes_ = peak_nodes_ = 1;
  free_head_ = 0;
  std::fill(unique_.begin(), unique_.end(), 0u);
  unique_occupied_ = 0;
  std::fill(cache_.begin(), cache_.end(), CacheEntry{});
  indeg_.clear();
  gc_threshold_ = 1u << 14;
  in_reorder_ = false;
  in_governed_ = false;
  ite_depth_ = ite_depth_max_ = 0;
  quant_depth_ = quant_depth_max_ = 0;
  stats_ = Stats{};
}

void Manager::add_vars(unsigned extra) {
  for (unsigned i = 0; i < extra; ++i) {
    // New variables enter at the bottom of the order, whatever the current
    // permutation looks like.
    level_of_var_.push_back(num_vars_ + i);
    var_at_level_.push_back(num_vars_ + i);
  }
  num_vars_ += extra;
}

void Manager::assert_live(NodeId f) const {
  (void)f;
  assert(edge_live(f) &&
         "BDD edge used after GC -- hold nodes in a bdd::Bdd handle");
}

void Manager::ref(NodeId f) {
  assert_live(f);
  ++nodes_[f >> 1].ref;
}

void Manager::deref(NodeId f) {
  assert_live(f);
  Node& n = nodes_[f >> 1];
  assert(n.ref > 0 && "unbalanced deref");
  --n.ref;
}

// --- Unique table ------------------------------------------------------------

NodeId Manager::make_node(unsigned v, NodeId lo_e, NodeId hi_e) {
  if (lo_e == hi_e) return lo_e;  // reduction rule
  // Governance checkpoint: every operation recurses through here, so this one
  // site gives sub-operation granularity for deadlines and cancellation.
  // Unwinding from a checkpoint is safe at this point — nothing has been
  // mutated yet and half-built recursion results are just future garbage.
  // Suppressed during reordering, where an unwind mid-swap would corrupt the
  // in-place rewrite.
  if (guard_ && !in_reorder_) guard_->checkpoint();
  // Canonical form: regular hi child; the complement moves to the result.
  const NodeId comp = hi_e & 1u;
  lo_e ^= comp;
  hi_e ^= comp;
  assert(v < num_vars_);
  assert(is_terminal(lo_e) ||
         level_of_var_[nodes_[lo_e >> 1].var] > level_of_var_[v]);
  assert(is_terminal(hi_e) ||
         level_of_var_[nodes_[hi_e >> 1].var] > level_of_var_[v]);

  const std::size_t mask = unique_.size() - 1;
  std::size_t slot = hash_triple(v, lo_e, hi_e) & mask;
  while (true) {
    const std::uint32_t idx = unique_[slot];
    if (idx == 0) break;
    const Node& n = nodes_[idx];
    if (n.var == v && n.lo == lo_e && n.hi == hi_e) {
      ++stats_.unique_hits;
      return (idx << 1) | comp;
    }
    slot = (slot + 1) & mask;
  }

  std::uint32_t idx;
  if (free_head_) {
    idx = free_head_;
    free_head_ = nodes_[idx].lo;  // free list chains through lo
  } else {
    if constexpr (util::fault::enabled())
      if (guard_ && !in_reorder_ && util::fault::poll_alloc())
        throw std::bad_alloc{};  // exercises the governed() GC-retry ladder
    idx = static_cast<std::uint32_t>(nodes_.size());
    nodes_.push_back(Node{});  // bad_alloc unwinds to governed()'s recovery
  }
  nodes_[idx] = Node{v, lo_e, hi_e, 0};
  unique_[slot] = idx;
  ++unique_occupied_;
  ++live_nodes_;
  ++stats_.nodes_allocated;
  if (live_nodes_ > peak_nodes_) peak_nodes_ = live_nodes_;
  if (guard_ && !in_reorder_) {
    guard_->charge_nodes(1);
    ++guard_charged_;
    // Budget enforcement is per manager — per work unit — so whether a
    // decomposition trips depends only on its own allocation sequence, never
    // on what other threads' managers are doing (DESIGN.md §12.3). The node
    // is fully inserted before the unwind, so the tables stay consistent and
    // the orphan is reclaimed by the recovery GC.
    const std::size_t budget = guard_->node_budget();
    bool trip = budget != 0 && live_nodes_ > budget;
    if constexpr (util::fault::enabled())
      trip = trip || util::fault::poll_budget();
    if (trip) throw NodeBudgetHit{};
  }
  if ((unique_occupied_ + 1) * 4 > unique_.size() * 3)
    unique_rehash(unique_.size() * 2);
  return (idx << 1) | comp;
}

void Manager::unique_insert_slot(std::uint32_t i) {
  const std::size_t mask = unique_.size() - 1;
  const Node& n = nodes_[i];
  std::size_t slot = hash_triple(n.var, n.lo, n.hi) & mask;
  while (unique_[slot] != 0) slot = (slot + 1) & mask;
  unique_[slot] = i;
  ++unique_occupied_;
}

void Manager::unique_rehash(std::size_t new_size) {
  if (new_size != unique_.size())
    obs::flight(obs::FlightKind::cache, "unique_rehash", unique_.size(),
                new_size);
  unique_.assign(new_size, 0);
  unique_occupied_ = 0;
  for (std::uint32_t i = 1; i < nodes_.size(); ++i)
    if (nodes_[i].var != kFreeVar_) unique_insert_slot(i);
  cache_resize_for_table();
}

void Manager::cache_resize_for_table() {
  const std::size_t target =
      std::min(std::max(kMinCache, unique_.size() / 2), kMaxCache);
  if (cache_.size() != target) {
    obs::flight(obs::FlightKind::cache, "cache_resize", cache_.size(), target);
    cache_.assign(target, CacheEntry{});
  }
}

// --- Computed table ----------------------------------------------------------

NodeId Manager::cached(Op op, NodeId a, NodeId b, NodeId c, std::uint64_t tag) {
  ++stats_.cache_lookups;
  ++stats_.op_lookups[static_cast<std::uint32_t>(op) - 1];
  const std::uint64_t h =
      mix64((static_cast<std::uint64_t>(a) << 32 | b) * 0x9e3779b97f4a7c15ull ^
            (static_cast<std::uint64_t>(c) |
             static_cast<std::uint64_t>(op) << 56) ^
            tag);
  const CacheEntry& e = cache_[h & (cache_.size() - 1)];
  if (e.op == op && e.a == a && e.b == b && e.c == c && e.tag == tag) {
    ++stats_.cache_hits;
    ++stats_.op_hits[static_cast<std::uint32_t>(op) - 1];
    return e.result;
  }
  return kNotFound;
}

void Manager::cache_insert(Op op, NodeId a, NodeId b, NodeId c,
                           std::uint64_t tag, NodeId r) {
  const std::uint64_t h =
      mix64((static_cast<std::uint64_t>(a) << 32 | b) * 0x9e3779b97f4a7c15ull ^
            (static_cast<std::uint64_t>(c) |
             static_cast<std::uint64_t>(op) << 56) ^
            tag);
  cache_[h & (cache_.size() - 1)] = CacheEntry{a, b, c, op, tag, r};
}

// --- Garbage collection ------------------------------------------------------

void Manager::maybe_gc() {
  if (live_nodes_ < gc_threshold_) return;
  garbage_collect();
  // Still mostly live after collecting: raise the bar so we don't thrash.
  if (live_nodes_ * 2 > gc_threshold_) gc_threshold_ *= 2;
}

void Manager::garbage_collect() {
  ++stats_.gc_runs;
  // Pause measurement rides on either switch: the histogram needs obs, the
  // flight recorder is force-enabled for governed runs even when obs is off.
  const bool measure = obs::enabled() || obs::flight_enabled();
  std::chrono::steady_clock::time_point gc_start;
  if (measure) gc_start = std::chrono::steady_clock::now();
  const std::size_t nodes_before = live_nodes_;
  std::vector<bool> mark(nodes_.size(), false);
  mark[0] = true;
  std::vector<std::uint32_t> stack;
  for (std::uint32_t i = 1; i < nodes_.size(); ++i)
    if (nodes_[i].var != kFreeVar_ && nodes_[i].ref > 0) stack.push_back(i);
  while (!stack.empty()) {
    const std::uint32_t i = stack.back();
    stack.pop_back();
    if (mark[i]) continue;
    mark[i] = true;
    const Node& n = nodes_[i];
    if (!mark[n.lo >> 1]) stack.push_back(n.lo >> 1);
    if (!mark[n.hi >> 1]) stack.push_back(n.hi >> 1);
  }
  // Sweep descending so the free list pops low indices first (locality).
  live_nodes_ = 1;
  free_head_ = 0;
  for (std::uint32_t i = static_cast<std::uint32_t>(nodes_.size()) - 1; i >= 1;
       --i) {
    if (mark[i]) {
      ++live_nodes_;
    } else {
      nodes_[i].var = kFreeVar_;
      nodes_[i].lo = free_head_;
      nodes_[i].ref = 0;
      free_head_ = i;
    }
  }
  // Node ids get recycled, so every cached result is now suspect.
  for (CacheEntry& e : cache_) e = CacheEntry{};
  unique_rehash(unique_.size());
  sync_guard_charge();
  if (measure) {
    const auto us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - gc_start)
            .count());
    if (obs::enabled())
      obs::Registry::instance().histogram("bdd.gc_pause_us").record(us);
    obs::flight(obs::FlightKind::gc, "gc", nodes_before, live_nodes_, us);
  }
}

// --- ITE core ----------------------------------------------------------------

NodeId Manager::ite_rec(NodeId f, NodeId g, NodeId h) {
  DepthScope depth(&ite_depth_, &ite_depth_max_);
  // Terminal selectors and trivially equal branches.
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (is_terminal(g) && is_terminal(h)) return g == kTrue ? f : f ^ 1u;
  // Regular selector: ite(!f, g, h) == ite(f, h, g).
  if (f & 1u) {
    f ^= 1u;
    const NodeId t = g;
    g = h;
    h = t;
  }
  // Branches that repeat the selector collapse to constants.
  if (g == f)
    g = kTrue;
  else if (g == (f ^ 1u))
    g = kFalse;
  if (h == f)
    h = kFalse;
  else if (h == (f ^ 1u))
    h = kTrue;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;
  if (g == kFalse && h == kTrue) return f ^ 1u;

  // Commutative forms (AND/OR/XOR shapes) pick the (level, index)-smaller
  // operand as the selector so both argument orders share one cache entry.
  const auto precedes = [this](NodeId x_regular, NodeId y_regular) {
    const unsigned lx = level_of_var_[nodes_[x_regular >> 1].var];
    const unsigned ly = level_of_var_[nodes_[y_regular >> 1].var];
    return lx < ly || (lx == ly && x_regular < y_regular);
  };
  if (g == kTrue) {  // f OR h
    if (!is_terminal(h) && precedes(h & ~1u, f)) {
      const NodeId t = f;
      f = h;
      h = t;
    }
  } else if (h == kFalse) {  // f AND g
    if (!is_terminal(g) && precedes(g & ~1u, f)) {
      const NodeId t = f;
      f = g;
      g = t;
    }
  } else if (g == kFalse) {  // !f AND h == ite(!h, 0, !f)
    if (!is_terminal(h) && precedes(h & ~1u, f)) {
      const NodeId t = f;
      f = h ^ 1u;
      h = t ^ 1u;
    }
  } else if (h == kTrue) {  // !f OR g == ite(!g, !f, 1)
    if (!is_terminal(g) && precedes(g & ~1u, f)) {
      const NodeId t = f;
      f = g ^ 1u;
      g = t ^ 1u;
    }
  } else if (g == (h ^ 1u)) {  // f XNOR g == ite(g, f, !f)
    if (precedes(g & ~1u, f)) {
      const NodeId t = f;
      f = g;
      g = t;
      h = t ^ 1u;
    }
  }
  // The rewrites may have complemented the selector; restore regularity,
  // then pull a complement out of g so the cached triple has a regular g.
  if (f & 1u) {
    f ^= 1u;
    const NodeId t = g;
    g = h;
    h = t;
  }
  NodeId comp = 0;
  if (g & 1u) {
    g ^= 1u;
    h ^= 1u;
    comp = 1u;
  }

  NodeId r = cached(Op::Ite, f, g, h, 0);
  if (r != kNotFound) return r ^ comp;

  // Split on the top variable of the triple.
  unsigned level = level_of_var_[nodes_[f >> 1].var];
  if (!is_terminal(g))
    level = std::min(level, level_of_var_[nodes_[g >> 1].var]);
  if (!is_terminal(h))
    level = std::min(level, level_of_var_[nodes_[h >> 1].var]);
  const unsigned v = var_at_level_[level];

  NodeId f0 = f, f1 = f, g0 = g, g1 = g, h0 = h, h1 = h;
  if (nodes_[f >> 1].var == v) {
    f0 = lo(f);
    f1 = hi(f);
  }
  if (!is_terminal(g) && nodes_[g >> 1].var == v) {
    g0 = lo(g);
    g1 = hi(g);
  }
  if (!is_terminal(h) && nodes_[h >> 1].var == v) {
    h0 = lo(h);
    h1 = hi(h);
  }
  const NodeId t = ite_rec(f1, g1, h1);
  const NodeId e = ite_rec(f0, g0, h0);
  r = make_node(v, e, t);
  cache_insert(Op::Ite, f, g, h, 0, r);
  return r ^ comp;
}

NodeId Manager::ite(NodeId f, NodeId g, NodeId h) {
  assert_live(f);
  assert_live(g);
  assert_live(h);
  if (live_nodes_ >= gc_threshold_) {
    ++nodes_[f >> 1].ref;
    ++nodes_[g >> 1].ref;
    ++nodes_[h >> 1].ref;
    maybe_gc();
    --nodes_[f >> 1].ref;
    --nodes_[g >> 1].ref;
    --nodes_[h >> 1].ref;
  }
  const bool measure = obs::enabled();
  if (measure) ite_depth_max_ = ite_depth_;
  const NodeId r = governed({f, g, h}, [&] { return ite_rec(f, g, h); });
  if (measure) {
    if (!ite_depth_hist_)
      ite_depth_hist_ = &obs::Registry::instance().histogram("bdd.ite_depth");
    ite_depth_hist_->record(ite_depth_max_);
  }
  return r;
}

NodeId Manager::apply_and(NodeId f, NodeId g) { return ite(f, g, kFalse); }
NodeId Manager::apply_or(NodeId f, NodeId g) { return ite(f, kTrue, g); }
NodeId Manager::apply_xor(NodeId f, NodeId g) { return ite(f, g ^ 1u, g); }

// --- Construction helpers ----------------------------------------------------

NodeId Manager::var(unsigned v) {
  assert(v < num_vars_);
  return governed({}, [&] { return make_node(v, kFalse, kTrue); });
}

NodeId Manager::cube(const std::vector<unsigned>& vars,
                     const std::vector<bool>& phases) {
  assert(vars.size() == phases.size());
  // Build bottom-up in the current order; make_node wants ordered children.
  std::vector<std::size_t> idx(vars.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return level_of_var_[vars[a]] > level_of_var_[vars[b]];
  });
  return governed({}, [&] {
    NodeId acc = kTrue;
    for (std::size_t k : idx) {
      acc = phases[k] ? make_node(vars[k], kFalse, acc)
                      : make_node(vars[k], acc, kFalse);
    }
    return acc;
  });
}

// --- Cofactor / quantification / composition ---------------------------------

NodeId Manager::cofactor_rec(NodeId f, unsigned v, bool value) {
  if (is_terminal(f)) return f;
  // Cofactoring commutes with complement, so cache on the regular edge.
  const NodeId c = f & 1u;
  const NodeId fr = f ^ c;
  // Copy the fields out: the recursive calls below can grow the arena, so no
  // reference into nodes_ may live across them (cf. the re-take in
  // swap_levels).
  const unsigned nvar = nodes_[fr >> 1].var;
  const NodeId nlo = nodes_[fr >> 1].lo;
  const NodeId nhi = nodes_[fr >> 1].hi;
  if (level_of_var_[nvar] > level_of_var_[v]) return f;
  if (nvar == v) return (value ? nhi : nlo) ^ c;
  const std::uint64_t tag = (static_cast<std::uint64_t>(v) << 1) | value;
  NodeId r = cached(Op::Cofactor, fr, 0, 0, tag);
  if (r == kNotFound) {
    const NodeId l = cofactor_rec(nlo, v, value);
    const NodeId h = cofactor_rec(nhi, v, value);
    r = make_node(nvar, l, h);
    cache_insert(Op::Cofactor, fr, 0, 0, tag, r);
  }
  return r ^ c;
}

NodeId Manager::cofactor(NodeId f, unsigned v, bool value) {
  assert_live(f);
  assert(v < num_vars_);
  return governed({f}, [&] { return cofactor_rec(f, v, value); });
}

NodeId Manager::quantify_rec(NodeId f, const std::vector<unsigned>& sorted_vars,
                             unsigned deepest, bool existential,
                             std::uint64_t tag) {
  DepthScope depth(&quant_depth_, &quant_depth_max_);
  if (is_terminal(f)) return f;
  // Copy var and children out before recursing: the recursion grows the
  // arena, so references into nodes_ must not survive it.
  const unsigned nvar = nodes_[f >> 1].var;
  if (level_of_var_[nvar] > deepest) return f;  // no quantified var below
  const Op op = existential ? Op::Exists : Op::Forall;
  NodeId r = cached(op, f, 0, 0, tag);
  if (r != kNotFound) return r;
  const NodeId flo = lo(f);
  const NodeId fhi = hi(f);
  const NodeId l = quantify_rec(flo, sorted_vars, deepest, existential, tag);
  const NodeId h = quantify_rec(fhi, sorted_vars, deepest, existential, tag);
  if (std::binary_search(sorted_vars.begin(), sorted_vars.end(), nvar)) {
    r = existential ? ite_rec(l, kTrue, h)    // l OR h
                    : ite_rec(l, h, kFalse);  // l AND h
  } else {
    r = make_node(nvar, l, h);
  }
  cache_insert(op, f, 0, 0, tag, r);
  return r;
}

NodeId Manager::exists(NodeId f, const std::vector<unsigned>& vars) {
  assert_live(f);
  if (is_terminal(f) || vars.empty()) return f;
  if (live_nodes_ >= gc_threshold_) {
    ++nodes_[f >> 1].ref;
    maybe_gc();
    --nodes_[f >> 1].ref;
  }
  std::vector<unsigned> sorted(vars);
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  unsigned deepest = 0;
  for (unsigned v : sorted) deepest = std::max(deepest, level_of_var_[v]);
  // Exact cache key (CUDD-style): the positive cube of the quantified set.
  // Its NodeId is canonical via the unique table and the computed cache is
  // flushed on GC, so distinct variable sets can never alias — unlike a
  // 64-bit hash fold. Built inside the governed frame so a retry rebuilds it
  // after the recovery collection.
  const bool measure = obs::enabled();
  if (measure) quant_depth_max_ = quant_depth_;
  const NodeId r = governed({f}, [&] {
    const NodeId tag = cube(sorted, std::vector<bool>(sorted.size(), true));
    return quantify_rec(f, sorted, deepest, true, tag);
  });
  if (measure) {
    if (!quant_depth_hist_)
      quant_depth_hist_ =
          &obs::Registry::instance().histogram("bdd.quantify_depth");
    quant_depth_hist_->record(quant_depth_max_);
  }
  return r;
}

NodeId Manager::forall(NodeId f, const std::vector<unsigned>& vars) {
  assert_live(f);
  if (is_terminal(f) || vars.empty()) return f;
  if (live_nodes_ >= gc_threshold_) {
    ++nodes_[f >> 1].ref;
    maybe_gc();
    --nodes_[f >> 1].ref;
  }
  std::vector<unsigned> sorted(vars);
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  unsigned deepest = 0;
  for (unsigned v : sorted) deepest = std::max(deepest, level_of_var_[v]);
  // Same exact cube key as exists(); the Op enum separates the two caches.
  const bool measure = obs::enabled();
  if (measure) quant_depth_max_ = quant_depth_;
  const NodeId r = governed({f}, [&] {
    const NodeId tag = cube(sorted, std::vector<bool>(sorted.size(), true));
    return quantify_rec(f, sorted, deepest, false, tag);
  });
  if (measure) {
    if (!quant_depth_hist_)
      quant_depth_hist_ =
          &obs::Registry::instance().histogram("bdd.quantify_depth");
    quant_depth_hist_->record(quant_depth_max_);
  }
  return r;
}

NodeId Manager::compose(NodeId f, unsigned v, NodeId g) {
  assert_live(f);
  assert_live(g);
  assert(v < num_vars_);
  if (live_nodes_ >= gc_threshold_) {
    ++nodes_[f >> 1].ref;
    ++nodes_[g >> 1].ref;
    maybe_gc();
    --nodes_[f >> 1].ref;
    --nodes_[g >> 1].ref;
  }
  return governed({f, g}, [&] {
    const NodeId f1 = cofactor_rec(f, v, true);
    const NodeId f0 = cofactor_rec(f, v, false);
    return ite_rec(g, f1, f0);
  });
}

NodeId Manager::vector_compose_rec(NodeId f, const std::vector<NodeId>& map,
                                   std::unordered_map<NodeId, NodeId>& memo) {
  if (is_terminal(f)) return f;
  // Substitution commutes with complement: memoize on the regular edge.
  const NodeId c = f & 1u;
  const NodeId fr = f ^ c;
  const auto it = memo.find(fr);
  if (it != memo.end()) return it->second ^ c;
  const NodeId l = vector_compose_rec(nodes_[fr >> 1].lo, map, memo);
  const NodeId h = vector_compose_rec(nodes_[fr >> 1].hi, map, memo);
  const unsigned v = nodes_[fr >> 1].var;
  const NodeId sel =
      (v < map.size() && map[v] != kNoReplacement) ? map[v] : var(v);
  const NodeId r = ite_rec(sel, h, l);
  memo.emplace(fr, r);
  return r ^ c;
}

NodeId Manager::vector_compose(NodeId f, const std::vector<NodeId>& map) {
  assert_live(f);
  if (live_nodes_ >= gc_threshold_) {
    ++nodes_[f >> 1].ref;
    for (NodeId m : map)
      if (m != kNoReplacement) {
        assert_live(m);
        ++nodes_[m >> 1].ref;
      }
    maybe_gc();
    --nodes_[f >> 1].ref;
    for (NodeId m : map)
      if (m != kNoReplacement) --nodes_[m >> 1].ref;
  }
  std::vector<NodeId> roots{f};
  for (NodeId m : map)
    if (m != kNoReplacement) roots.push_back(m);
  // The memo lives inside the frame: a retry must not see pre-GC node ids.
  return governed(roots, [&] {
    std::unordered_map<NodeId, NodeId> memo;
    return vector_compose_rec(f, map, memo);
  });
}

// --- Queries -----------------------------------------------------------------

double Manager::prob_rec(NodeId f, std::unordered_map<NodeId, double>& memo) {
  if (f == kFalse) return 0.0;
  if (f == kTrue) return 1.0;
  const NodeId c = f & 1u;
  const NodeId fr = f ^ c;
  double p;
  const auto it = memo.find(fr);
  if (it != memo.end()) {
    p = it->second;
  } else {
    // Skipped levels average out of the recurrence, so no gap scaling.
    p = 0.5 * (prob_rec(nodes_[fr >> 1].lo, memo) +
               prob_rec(nodes_[fr >> 1].hi, memo));
    memo.emplace(fr, p);
  }
  return c ? 1.0 - p : p;
}

double Manager::sat_count(NodeId f) {
  assert_live(f);
  std::unordered_map<NodeId, double> memo;
  return prob_rec(f, memo) * std::ldexp(1.0, static_cast<int>(num_vars_));
}

std::vector<unsigned> Manager::support(NodeId f) {
  assert_live(f);
  std::vector<bool> in(num_vars_, false);
  std::unordered_set<std::uint32_t> seen;
  std::vector<std::uint32_t> stack;
  if (!is_terminal(f)) stack.push_back(f >> 1);
  while (!stack.empty()) {
    const std::uint32_t i = stack.back();
    stack.pop_back();
    if (i == 0 || !seen.insert(i).second) continue;
    in[nodes_[i].var] = true;
    stack.push_back(nodes_[i].lo >> 1);
    stack.push_back(nodes_[i].hi >> 1);
  }
  std::vector<unsigned> vars;
  for (unsigned v = 0; v < num_vars_; ++v)
    if (in[v]) vars.push_back(v);
  return vars;
}

bool Manager::eval(NodeId f, const std::vector<bool>& assignment) const {
  assert_live(f);
  while (!is_terminal(f)) f = assignment[var_of(f)] ? hi(f) : lo(f);
  return f == kTrue;
}

std::size_t Manager::dag_size(NodeId f) {
  assert_live(f);
  if (is_terminal(f)) return 0;
  std::unordered_set<std::uint32_t> seen;
  std::vector<std::uint32_t> stack{f >> 1};
  std::size_t count = 0;
  while (!stack.empty()) {
    const std::uint32_t i = stack.back();
    stack.pop_back();
    if (i == 0 || !seen.insert(i).second) continue;
    ++count;
    stack.push_back(nodes_[i].lo >> 1);
    stack.push_back(nodes_[i].hi >> 1);
  }
  return count;
}

bool Manager::pick_minterm(NodeId f, std::vector<bool>& assignment) {
  assert_live(f);
  assignment.assign(num_vars_, false);
  if (f == kFalse) return false;
  // Any edge other than kFalse is satisfiable, so a greedy walk suffices.
  while (!is_terminal(f)) {
    const unsigned v = var_of(f);
    const NodeId l = lo(f);
    if (l != kFalse) {
      f = l;
    } else {
      assignment[v] = true;
      f = hi(f);
    }
  }
  assert(f == kTrue);
  return true;
}

void Manager::foreach_minterm(
    NodeId f, const std::vector<unsigned>& vars,
    const std::function<bool(const std::vector<bool>&)>& cb) {
  assert_live(f);
  // Walk positions in level order so the cube expansion descends the DAG.
  std::vector<std::size_t> order(vars.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return level_of_var_[vars[a]] < level_of_var_[vars[b]];
  });
  std::vector<bool> assignment(vars.size(), false);
  std::function<bool(NodeId, std::size_t)> rec = [&](NodeId g,
                                                     std::size_t k) -> bool {
    if (g == kFalse) return true;
    if (k == order.size()) {
      assert(g == kTrue && "f depends on variables outside vars");
      return cb(assignment);
    }
    const std::size_t pos = order[k];
    NodeId g0 = g, g1 = g;
    if (!is_terminal(g) && var_of(g) == vars[pos]) {
      g0 = lo(g);
      g1 = hi(g);
    }
    assignment[pos] = false;
    if (!rec(g0, k + 1)) return false;
    assignment[pos] = true;
    if (!rec(g1, k + 1)) return false;
    assignment[pos] = false;
    return true;
  };
  rec(f, 0);
}

// --- Reordering --------------------------------------------------------------

void Manager::swap_levels(unsigned level) {
  assert(level + 1 < num_vars_);
  ++stats_.sift_swaps;
  // The in-place rewrite below must run to completion: suppress governance
  // checkpoints (an unwind mid-swap would leave relabeled nodes with stale
  // unique-table slots).
  const bool was_reordering = in_reorder_;
  in_reorder_ = true;
  struct Reset {
    bool* flag;
    bool prev;
    ~Reset() { *flag = prev; }
  } reset{&in_reorder_, was_reordering};
  const unsigned u = var_at_level_[level];
  const unsigned v = var_at_level_[level + 1];
  // Install the new order first: the make_node calls below must already see
  // v above u.
  var_at_level_[level] = v;
  var_at_level_[level + 1] = u;
  level_of_var_[u] = level + 1;
  level_of_var_[v] = level;

  // Rewrite every u-node that touches v in place, so edges into it keep
  // denoting the same function. New (u, ...) children never touch v (their
  // children sit at deeper levels), so sharing lookups below stay safe even
  // while the loop is mid-flight.
  const bool track = !indeg_.empty();  // sift() keeps in-degrees live
  std::vector<std::uint32_t> maybe_dead;
  const std::uint32_t end = static_cast<std::uint32_t>(nodes_.size());
  for (std::uint32_t i = 1; i < end; ++i) {
    if (nodes_[i].var != u) continue;
    const NodeId flo = nodes_[i].lo;  // may carry a complement
    const NodeId fhi = nodes_[i].hi;  // regular by canonical form
    const bool lo_v = !is_terminal(flo) && nodes_[flo >> 1].var == v;
    const bool hi_v = !is_terminal(fhi) && nodes_[fhi >> 1].var == v;
    if (!lo_v && !hi_v) continue;
    const NodeId f00 = lo_v ? lo(flo) : flo;
    const NodeId f01 = lo_v ? hi(flo) : flo;
    const NodeId f10 = hi_v ? nodes_[fhi >> 1].lo : fhi;
    const NodeId f11 = hi_v ? nodes_[fhi >> 1].hi : fhi;
    std::size_t live_before = live_nodes_;
    const NodeId nl = make_node(u, f00, f10);
    const bool nl_fresh = live_nodes_ != live_before;
    live_before = live_nodes_;
    // f11 is a stored hi (regular), so the new hi edge stays regular and the
    // in-place rewrite preserves canonical form.
    const NodeId nh = make_node(u, f01, f11);
    const bool nh_fresh = live_nodes_ != live_before;
    assert((nh & 1u) == 0);
    assert(nl != nh && "swap collapsed a node that branches on v");
    if (track) {
      if (indeg_.size() < nodes_.size()) indeg_.resize(nodes_.size(), 0);
      // Node i drops its edges to flo/fhi and gains edges to nl/nh; freshly
      // created nodes contribute the edges to their own children.
      --indeg_[flo >> 1];
      --indeg_[fhi >> 1];
      ++indeg_[nl >> 1];
      ++indeg_[nh >> 1];
      if (nl_fresh) {
        ++indeg_[f00 >> 1];
        ++indeg_[f10 >> 1];
      }
      if (nh_fresh) {
        ++indeg_[f01 >> 1];
        ++indeg_[f11 >> 1];
      }
      maybe_dead.push_back(flo >> 1);
      maybe_dead.push_back(fhi >> 1);
    }
    Node& n = nodes_[i];  // re-take: make_node may reallocate the arena
    n.var = v;
    n.lo = nl;
    n.hi = nh;
  }
  if (track) {
    // Eagerly reclaim nodes the rewrite orphaned (cascading through their
    // children) so live_nodes_ stays the exact reachable count and sift()
    // never needs an O(arena) mark traversal. Safe here: sift() runs a full
    // GC first and swap_levels never inserts computed-cache entries, so the
    // cache holds no ids that could be recycled.
    while (!maybe_dead.empty()) {
      const std::uint32_t c = maybe_dead.back();
      maybe_dead.pop_back();
      if (c == 0 || nodes_[c].var == kFreeVar_) continue;
      if (indeg_[c] != 0 || nodes_[c].ref != 0) continue;
      const std::uint32_t cl = nodes_[c].lo >> 1;
      const std::uint32_t ch = nodes_[c].hi >> 1;
      --indeg_[cl];
      --indeg_[ch];
      maybe_dead.push_back(cl);
      maybe_dead.push_back(ch);
      nodes_[c].var = kFreeVar_;
      nodes_[c].lo = free_head_;
      nodes_[c].ref = 0;
      free_head_ = c;
      --live_nodes_;
    }
  }
  // The in-place relabeling leaves stale unique-table slots; rebuild. (The
  // computed cache stays: it memoizes function identities, and those are
  // preserved by reordering.)
  unique_rehash(unique_.size());
  sync_guard_charge();
}

std::size_t Manager::reachable_node_count() const {
  std::vector<bool> mark(nodes_.size(), false);
  mark[0] = true;
  std::size_t count = 1;
  std::vector<std::uint32_t> stack;
  for (std::uint32_t i = 1; i < nodes_.size(); ++i)
    if (nodes_[i].var != kFreeVar_ && nodes_[i].ref > 0) stack.push_back(i);
  while (!stack.empty()) {
    const std::uint32_t i = stack.back();
    stack.pop_back();
    if (i == 0 || mark[i]) continue;
    mark[i] = true;
    ++count;
    stack.push_back(nodes_[i].lo >> 1);
    stack.push_back(nodes_[i].hi >> 1);
  }
  return count;
}

std::size_t Manager::sift() {
  ++stats_.sift_runs;
  garbage_collect();
  if (num_vars_ < 2) return live_nodes_;
  // After the GC every arena node is reachable, so live_nodes_ equals the
  // reachable count. Track in-degrees while sifting: swap_levels reclaims
  // orphans eagerly, keeping live_nodes_ exact, and each swap's cost is just
  // its rewrite work — no O(arena) mark traversal per position.
  indeg_.assign(nodes_.size(), 0);
  for (std::uint32_t i = 1; i < nodes_.size(); ++i) {
    if (nodes_[i].var == kFreeVar_) continue;
    ++indeg_[nodes_[i].lo >> 1];
    ++indeg_[nodes_[i].hi >> 1];
  }
  // Largest level population first — Rudell's ordering heuristic.
  std::vector<std::size_t> pop(num_vars_, 0);
  for (std::uint32_t i = 1; i < nodes_.size(); ++i)
    if (nodes_[i].var != kFreeVar_) ++pop[nodes_[i].var];
  std::vector<unsigned> vars(num_vars_);
  std::iota(vars.begin(), vars.end(), 0u);
  std::sort(vars.begin(), vars.end(),
            [&](unsigned a, unsigned b) { return pop[a] > pop[b]; });
  for (unsigned x : vars) {
    std::size_t best = live_nodes_;
    unsigned best_level = level_of_var_[x];
    // Sink to the bottom, then float to the top, tracking the best position.
    while (level_of_var_[x] + 1 < num_vars_) {
      swap_levels(level_of_var_[x]);
      if (live_nodes_ < best) {
        best = live_nodes_;
        best_level = level_of_var_[x];
      }
    }
    while (level_of_var_[x] > 0) {
      swap_levels(level_of_var_[x] - 1);
      if (live_nodes_ < best) {
        best = live_nodes_;
        best_level = level_of_var_[x];
      }
    }
    while (level_of_var_[x] < best_level) swap_levels(level_of_var_[x]);
  }
  indeg_.clear();
  assert(live_nodes_ == reachable_node_count());
  return live_nodes_;
}

void Manager::set_order(const std::vector<unsigned>& var_at_level) {
  assert(var_at_level.size() == num_vars_);
  for (unsigned l = 0; l < num_vars_; ++l) {
    const unsigned target = var_at_level[l];
    assert(level_of(target) >= l && "input is not a permutation");
    while (level_of(target) > l) swap_levels(level_of(target) - 1);
  }
}

// --- Introspection -----------------------------------------------------------

const char* Manager::op_class_name(unsigned cls) {
  static const char* const kNames[Stats::kOpClasses] = {"ite", "cofactor",
                                                        "exists", "forall"};
  return cls < Stats::kOpClasses ? kNames[cls] : "?";
}

void Manager::publish_stats(const char* prefix) const {
  if (!obs::enabled()) return;
  const std::string p = prefix;
  obs::Registry& reg = obs::Registry::instance();
  reg.counter(p + ".nodes_allocated").add(stats_.nodes_allocated);
  reg.counter(p + ".unique_hits").add(stats_.unique_hits);
  reg.counter(p + ".cache_lookups").add(stats_.cache_lookups);
  reg.counter(p + ".cache_hits").add(stats_.cache_hits);
  reg.counter(p + ".gc_runs").add(stats_.gc_runs);
  reg.counter(p + ".sift_runs").add(stats_.sift_runs);
  reg.counter(p + ".sift_swaps").add(stats_.sift_swaps);
  for (unsigned cls = 0; cls < Stats::kOpClasses; ++cls) {
    const std::string op = op_class_name(cls);
    reg.counter(p + ".cache_lookups." + op).add(stats_.op_lookups[cls]);
    reg.counter(p + ".cache_hits." + op).add(stats_.op_hits[cls]);
  }
  reg.gauge(p + ".peak_live_nodes")
      .set(static_cast<std::int64_t>(peak_nodes_));
  // Kernel health for the run report: unique-table fill in parts-per-million
  // (gauges are integers) and the arena's resident footprint.
  reg.gauge(p + ".unique_load_ppm")
      .set(static_cast<std::int64_t>(unique_occupied_ * 1000000 /
                                     std::max<std::size_t>(unique_.size(), 1)));
  reg.gauge(p + ".peak_arena_bytes")
      .set(static_cast<std::int64_t>(nodes_.capacity() * sizeof(Node)));
}

bool Manager::check_invariants() const {
  // The level maps must be inverse permutations.
  for (unsigned v = 0; v < num_vars_; ++v) {
    if (level_of_var_[v] >= num_vars_) return false;
    if (var_at_level_[level_of_var_[v]] != v) return false;
  }
  if (nodes_.empty() || nodes_[0].var != kTerminalVar) return false;
  if (nodes_[0].ref == 0) return false;
  std::size_t live = 1;
  std::set<std::tuple<std::uint32_t, NodeId, NodeId>> triples;
  for (std::uint32_t i = 1; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.var == kFreeVar_) continue;
    ++live;
    if (n.var >= num_vars_) return false;
    if (n.lo == n.hi) return false;
    if (n.hi & 1u) return false;  // canonical form: regular hi child
    for (const NodeId child : {n.lo, n.hi}) {
      const std::uint32_t ci = child >> 1;
      if (ci >= nodes_.size()) return false;
      if (nodes_[ci].var == kFreeVar_) return false;
      if (ci != 0 && level_of_var_[nodes_[ci].var] <= level_of_var_[n.var])
        return false;
    }
    if (!triples.insert({n.var, n.lo, n.hi}).second) return false;
  }
  if (live != live_nodes_) return false;
  // Every live internal node must be findable through the unique table.
  const std::size_t mask = unique_.size() - 1;
  for (std::uint32_t i = 1; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.var == kFreeVar_) continue;
    std::size_t slot = hash_triple(n.var, n.lo, n.hi) & mask;
    bool found = false;
    while (unique_[slot] != 0) {
      if (unique_[slot] == i) {
        found = true;
        break;
      }
      slot = (slot + 1) & mask;
    }
    if (!found) return false;
  }
  // Occupied slots must reference live nodes.
  for (const std::uint32_t idx : unique_) {
    if (idx == 0) continue;
    if (idx >= nodes_.size() || nodes_[idx].var == kFreeVar_) return false;
  }
  return true;
}

}  // namespace imodec::bdd
