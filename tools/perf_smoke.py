#!/usr/bin/env python3
"""Perf smoke: run the bench_micro BDD-op suite and gate on ops/sec.

Usage:
  perf_smoke.py --bench <path/to/bench_micro> --baseline <committed.json>
                [--filter BM_BddOp.*/12] [--min-time 0.1] [--threshold 0.7]
                [--out current.json]

Runs the filtered suite with a JSON sink, matches records to the committed
baseline by benchmark name, and fails (exit 1) when the geometric mean of
current/baseline ops_per_sec falls below the threshold — 0.7 means a >30%
regression fails. The geomean across the suite is the contract, not any
single benchmark: individual microbenches are too noisy on shared machines
to gate on alone.

The committed baseline (bench/baselines/bdd_ops.json) is refreshed by
running this script with --print-update and pasting the output, or simply by
copying the --out file over it after an intentional kernel change.
"""

import argparse
import json
import math
import os
import subprocess
import sys
import tempfile


def load_ops(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    return {
        r["circuit"]: r["ops_per_sec"]
        for r in doc["records"]
        if "ops_per_sec" in r
    }


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--bench", required=True)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--filter", default="BM_BddOp.*/12")
    ap.add_argument("--min-time", default="0.1")
    ap.add_argument("--threshold", type=float, default=0.7)
    ap.add_argument("--out", default=None)
    args = ap.parse_args()

    out = args.out
    if out is None:
        fd, out = tempfile.mkstemp(suffix=".json")
        os.close(fd)

    cmd = [
        args.bench,
        f"--benchmark_filter={args.filter}",
        f"--benchmark_min_time={args.min_time}",
        "--json",
        out,
    ]
    proc = subprocess.run(cmd)
    if proc.returncode != 0:
        print(f"perf_smoke: bench run failed ({proc.returncode})",
              file=sys.stderr)
        return 1

    base = load_ops(args.baseline)
    cur = load_ops(out)
    common = sorted(set(base) & set(cur))
    if not common:
        print("perf_smoke: no benchmarks in common with the baseline",
              file=sys.stderr)
        return 1

    ratios = []
    for name in common:
        ratio = cur[name] / base[name]
        ratios.append(ratio)
        print(f"perf_smoke: {name:24s} {base[name]:12.1f} -> "
              f"{cur[name]:12.1f} ops/s  ({ratio:5.2f}x)")
    geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    print(f"perf_smoke: geomean {geomean:.3f}x over {len(common)} benchmarks "
          f"(threshold {args.threshold:.2f})")
    if geomean < args.threshold:
        print(f"perf_smoke: FAIL — ops/sec regressed "
              f"{(1 - geomean) * 100:.0f}% vs committed baseline "
              f"{args.baseline}", file=sys.stderr)
        return 1
    print("perf_smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
