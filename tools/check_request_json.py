#!/usr/bin/env python3
"""Validate imodec_served wire traffic (src/map/serve.hpp, wire schema 2).

Input files are JSON-lines transcripts: one request or response document per
line. `--mode request` validates the client->daemon direction, `--mode
response` the daemon->client direction, `--mode supervisor` the structured
stderr records ({"imodec_supervisor"}, {"imodec_crash"}, {"imodec_flight"});
`--mode auto` (default) decides per line — supervisor records by their
distinctive single key, responses by the response-only "ok" key, requests
otherwise — so a mixed transcript validates in one pass.

Request (versions 1-2; version 2 adds the control form):

  {
    "schema_version": 1|2,           # required
    "id": "<non-empty string>",      # required
    "circuit": {                     # required: exactly one of
      "name": "<registry circuit>",  #   benchmark registry name
      "blif": "<inline text>",       #   inline BLIF
      "pla": "<inline text>"         #   inline PLA
    },
    "config": { ... },               # optional per-request overrides
    "fault": {"kind": k, "at": n}    # optional (fault-injection builds)
  }

  {
    "schema_version": 2,             # control verbs are v2-only
    "id": "<non-empty string>",
    "control": "health|stats|drain"  # answered inline by serve::Server,
  }                                  # never queued — works under overload

Unlike the run report (additive keys allowed), the request schema is CLOSED:
the daemon rejects unknown fields anywhere with a typed `usage` error, and
this checker mirrors that, so transcripts that would be rejected on the wire
also fail here. Allowed config keys and fault kinds are listed below.

Response (version 2 stamped on every response; v1 transcripts still pass):

  {
    "schema_version": 1|2,           # required
    "id": "<string>",                # echoes the request (may be "" when the
                                     # request's id was unreadable)
    "ok": true|false,                # required
    "code": "<ErrorCode spelling>",  # required; "ok" iff ok is true
    "error": {"code", "message"},    # required iff not ok; code "overloaded"
                                     # additionally requires retry_after_ms
                                     # (the client's backoff hint)
    "report": { ... },               # unified run report when one was built
                                     # (always on circuit ok; also on
                                     # verify_failed)
    "control": "<verb>",             # control responses only: the verb,
    "status": { ... }                #   plus a status object, no report
  }

Response "report" contents are spot-checked (full validation is
check_report_json.py's job); extra response keys are allowed (the daemon may
add fields compatibly).

Supervisor/crash records (imodec_served stderr, one JSON line each):

  {"imodec_supervisor": {"event": "restart|exit|give_up",
                         "restarts": n, "uptime_ms": n, ...}}
  {"imodec_crash": {"signal": n, "signal_name": s, "completed_requests": n}}
  {"imodec_flight": {"recorded": n, "capacity": n, "events": [...]}}

Exit codes: 0 OK, 1 validation failure, 2 usage.
"""

import argparse
import json
import sys

NUMBER = (int, float)

ERROR_CODES = {"ok", "verify_failed", "usage", "parse", "timeout", "resource",
               "decompose", "overloaded"}

CONTROL_VERBS = {"health", "stats", "drain"}

SUPERVISOR_EVENTS = {"restart", "exit", "give_up"}

CONFIG_KEYS = {
    "k": NUMBER,
    "multi_output": bool,
    "strict": bool,
    "classical": bool,
    "collapse": bool,
    "result_cache": bool,
    "max_p": NUMBER,
    "bound_size": NUMBER,
    "seed": NUMBER,
    "timeout_ms": NUMBER,
    "node_budget": NUMBER,
    "batch_groups": NUMBER,
    "verify": str,
    "on_exhaustion": str,
}

FAULT_KINDS = {"bad_alloc", "deadline", "node_budget", "cancel"}


class Fail(Exception):
    pass


def need(obj, key, types, where, nonneg=False):
    if key not in obj:
        raise Fail(f"{where}: missing '{key}'")
    value = obj[key]
    # bool is an int subclass in Python; only accept it when asked for.
    if types is not bool and isinstance(value, bool):
        raise Fail(f"{where}: '{key}' should not be a bool")
    if not isinstance(value, types):
        raise Fail(f"{where}: '{key}' has wrong type "
                   f"({type(value).__name__})")
    if nonneg and isinstance(value, NUMBER) and value < 0:
        raise Fail(f"{where}: '{key}' is negative ({value})")
    return value


def check_version(doc, where):
    sv = doc.get("schema_version")
    if isinstance(sv, bool) or not isinstance(sv, NUMBER) or sv not in (1, 2):
        raise Fail(f"{where}: unsupported schema_version {sv!r}")
    return sv


def check_request(doc):
    if not isinstance(doc, dict):
        raise Fail("request is not an object")
    sv = check_version(doc, "request")

    if "control" in doc:
        # Control form: closed to exactly these three fields, v2-only.
        if sv != 2:
            raise Fail(f"request: control verbs need schema_version 2 "
                       f"(got {sv})")
        for key in doc:
            if key not in ("schema_version", "id", "control"):
                raise Fail(f"request: unknown field '{key}' in a control "
                           f"request")
        if not need(doc, "id", str, "request"):
            raise Fail("request: 'id' is empty")
        verb = need(doc, "control", str, "request")
        if verb not in CONTROL_VERBS:
            raise Fail(f"request: unknown control verb '{verb}'")
        return "request"

    for key in doc:
        if key not in ("schema_version", "id", "circuit", "config", "fault"):
            raise Fail(f"request: unknown field '{key}'")
    if not need(doc, "id", str, "request"):
        raise Fail("request: 'id' is empty")

    circuit = need(doc, "circuit", dict, "request")
    sources = []
    for key, value in circuit.items():
        if key not in ("name", "blif", "pla"):
            raise Fail(f"circuit: unknown field '{key}'")
        if isinstance(value, bool) or not isinstance(value, str):
            raise Fail(f"circuit: '{key}' is not a string")
        if value:
            sources.append(key)
    if len(sources) != 1:
        raise Fail(f"circuit: needs exactly one of name/blif/pla "
                   f"(got {sources or 'none'})")

    config = doc.get("config", {})
    if not isinstance(config, dict):
        raise Fail("request: 'config' is not an object")
    for key, value in config.items():
        if key not in CONFIG_KEYS:
            raise Fail(f"config: unknown key '{key}'")
        want = CONFIG_KEYS[key]
        if want is not bool and isinstance(value, bool):
            raise Fail(f"config: '{key}' should not be a bool")
        if not isinstance(value, want):
            raise Fail(f"config: '{key}' has wrong type "
                       f"({type(value).__name__})")

    if "fault" in doc:
        fault = need(doc, "fault", dict, "request")
        for key in fault:
            if key not in ("kind", "at"):
                raise Fail(f"fault: unknown field '{key}'")
        kind = need(fault, "kind", str, "fault")
        if kind not in FAULT_KINDS:
            raise Fail(f"fault: unknown kind '{kind}'")
        if "at" in fault:
            need(fault, "at", NUMBER, "fault", nonneg=True)
    return "request"


def check_response(doc):
    if not isinstance(doc, dict):
        raise Fail("response is not an object")
    sv = check_version(doc, "response")
    need(doc, "id", str, "response")
    ok = need(doc, "ok", bool, "response")
    code = need(doc, "code", str, "response")
    if code not in ERROR_CODES:
        raise Fail(f"response: unknown code '{code}'")
    if ok != (code == "ok"):
        raise Fail(f"response: ok={ok} inconsistent with code '{code}'")

    if "control" in doc:
        # Control responses: v2, a status object instead of a run report.
        if sv != 2:
            raise Fail(f"response: control response needs schema_version 2 "
                       f"(got {sv})")
        verb = need(doc, "control", str, "response")
        if verb not in CONTROL_VERBS:
            raise Fail(f"response: unknown control verb '{verb}'")
        if "report" in doc:
            raise Fail("response: control response with a 'report'")
        if ok:
            need(doc, "status", dict, "response")

    if ok:
        if "error" in doc:
            raise Fail("response: ok with an 'error' object")
        if "report" not in doc and "control" not in doc:
            raise Fail("response: ok without a 'report'")
    else:
        error = need(doc, "error", dict, "response")
        ecode = need(error, "code", str, "response.error")
        if ecode != code:
            raise Fail(f"response: error.code '{ecode}' != code '{code}'")
        need(error, "message", str, "response.error")
        if code == "overloaded":
            need(error, "retry_after_ms", NUMBER, "response.error",
                 nonneg=True)
    if "report" in doc:
        report = need(doc, "report", dict, "response")
        # Spot checks only; check_report_json.py owns the full schema.
        if report.get("report") != "imodec_run":
            raise Fail("response.report: not an imodec_run document")
        need(report, "circuit", str, "response.report")
        need(report, "result", dict, "response.report")
    return "response"


def check_supervisor(doc):
    """Structured stderr records from imodec_served: supervisor lifecycle,
    the crash last-gasp line, and the fatal-signal flight dump."""
    if not isinstance(doc, dict) or len(doc) != 1:
        raise Fail("supervisor record is not a single-key object")
    if "imodec_supervisor" in doc:
        body = need(doc, "imodec_supervisor", dict, "supervisor")
        event = need(body, "event", str, "imodec_supervisor")
        if event not in SUPERVISOR_EVENTS:
            raise Fail(f"imodec_supervisor: unknown event '{event}'")
        need(body, "restarts", NUMBER, "imodec_supervisor", nonneg=True)
        need(body, "uptime_ms", NUMBER, "imodec_supervisor", nonneg=True)
        if "signal" in body:
            need(body, "signal", NUMBER, "imodec_supervisor", nonneg=True)
            need(body, "signal_name", str, "imodec_supervisor")
        if "backoff_ms" in body:
            need(body, "backoff_ms", NUMBER, "imodec_supervisor",
                 nonneg=True)
    elif "imodec_crash" in doc:
        body = need(doc, "imodec_crash", dict, "crash")
        need(body, "signal", NUMBER, "imodec_crash", nonneg=True)
        need(body, "signal_name", str, "imodec_crash")
        need(body, "completed_requests", NUMBER, "imodec_crash", nonneg=True)
    elif "imodec_flight" in doc:
        body = need(doc, "imodec_flight", dict, "flight")
        need(body, "recorded", NUMBER, "imodec_flight", nonneg=True)
        need(body, "capacity", NUMBER, "imodec_flight", nonneg=True)
        need(body, "events", list, "imodec_flight")
    else:
        raise Fail(f"unknown supervisor record key "
                   f"'{next(iter(doc), None)}'")
    return "supervisor"


SUPERVISOR_KEYS = ("imodec_supervisor", "imodec_crash", "imodec_flight")


def check_line(doc, mode):
    if mode == "request":
        return check_request(doc)
    if mode == "response":
        return check_response(doc)
    if mode == "supervisor":
        return check_supervisor(doc)
    if isinstance(doc, dict) and any(k in doc for k in SUPERVISOR_KEYS):
        return check_supervisor(doc)
    if isinstance(doc, dict) and "ok" in doc:
        return check_response(doc)
    return check_request(doc)


def main(argv):
    ap = argparse.ArgumentParser()
    ap.add_argument("paths", nargs="+", metavar="transcript.jsonl")
    ap.add_argument("--mode",
                    choices=("request", "response", "supervisor", "auto"),
                    default="auto",
                    help="direction to validate (default: auto per line)")
    args = ap.parse_args(argv[1:])
    for path in args.paths:
        counts = {"request": 0, "response": 0, "supervisor": 0}
        try:
            with open(path, encoding="utf-8") as f:
                lines = [ln for ln in f.read().splitlines() if ln.strip()]
        except OSError as e:
            print(f"check_request_json: {path}: {e}", file=sys.stderr)
            return 1
        for i, line in enumerate(lines, 1):
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as e:
                print(f"check_request_json: {path}:{i}: {e}", file=sys.stderr)
                return 1
            try:
                counts[check_line(doc, args.mode)] += 1
            except Fail as e:
                print(f"check_request_json: {path}:{i}: {e}", file=sys.stderr)
                return 1
        print(f"check_request_json: {path}: OK ({counts['request']} requests, "
              f"{counts['response']} responses, "
              f"{counts['supervisor']} supervisor records)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
