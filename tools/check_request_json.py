#!/usr/bin/env python3
"""Validate imodec_served wire traffic (src/map/serve.hpp, wire schema 1).

Input files are JSON-lines transcripts: one request or response document per
line. `--mode request` validates the client->daemon direction, `--mode
response` the daemon->client direction; `--mode auto` (default) decides per
line by the presence of the response-only "ok" key, so a mixed transcript
(request and response interleaved by a test harness) validates in one pass.

Request (version 1):

  {
    "schema_version": 1,             # required
    "id": "<non-empty string>",      # required
    "circuit": {                     # required: exactly one of
      "name": "<registry circuit>",  #   benchmark registry name
      "blif": "<inline text>",       #   inline BLIF
      "pla": "<inline text>"         #   inline PLA
    },
    "config": { ... },               # optional per-request overrides
    "fault": {"kind": k, "at": n}    # optional (fault-injection builds)
  }

Unlike the run report (additive keys allowed), the request schema is CLOSED:
the daemon rejects unknown fields anywhere with a typed `usage` error, and
this checker mirrors that, so transcripts that would be rejected on the wire
also fail here. Allowed config keys and fault kinds are listed below.

Response (version 1):

  {
    "schema_version": 1,             # required
    "id": "<string>",                # echoes the request (may be "" when the
                                     # request's id was unreadable)
    "ok": true|false,                # required
    "code": "<ErrorCode spelling>",  # required; "ok" iff ok is true
    "error": {"code", "message"},    # required iff not ok
    "report": { ... }                # unified run report when one was built
                                     # (always on ok; also on verify_failed)
  }

Response "report" contents are spot-checked (full validation is
check_report_json.py's job); extra response keys are allowed (the daemon may
add fields compatibly).

Exit codes: 0 OK, 1 validation failure, 2 usage.
"""

import argparse
import json
import sys

NUMBER = (int, float)

ERROR_CODES = {"ok", "verify_failed", "usage", "parse", "timeout", "resource",
               "decompose"}

CONFIG_KEYS = {
    "k": NUMBER,
    "multi_output": bool,
    "strict": bool,
    "classical": bool,
    "collapse": bool,
    "result_cache": bool,
    "max_p": NUMBER,
    "bound_size": NUMBER,
    "seed": NUMBER,
    "timeout_ms": NUMBER,
    "node_budget": NUMBER,
    "batch_groups": NUMBER,
    "verify": str,
    "on_exhaustion": str,
}

FAULT_KINDS = {"bad_alloc", "deadline", "node_budget", "cancel"}


class Fail(Exception):
    pass


def need(obj, key, types, where, nonneg=False):
    if key not in obj:
        raise Fail(f"{where}: missing '{key}'")
    value = obj[key]
    # bool is an int subclass in Python; only accept it when asked for.
    if types is not bool and isinstance(value, bool):
        raise Fail(f"{where}: '{key}' should not be a bool")
    if not isinstance(value, types):
        raise Fail(f"{where}: '{key}' has wrong type "
                   f"({type(value).__name__})")
    if nonneg and isinstance(value, NUMBER) and value < 0:
        raise Fail(f"{where}: '{key}' is negative ({value})")
    return value


def check_version(doc, where):
    sv = doc.get("schema_version")
    if isinstance(sv, bool) or not isinstance(sv, NUMBER) or sv != 1:
        raise Fail(f"{where}: unsupported schema_version {sv!r}")


def check_request(doc):
    if not isinstance(doc, dict):
        raise Fail("request is not an object")
    check_version(doc, "request")
    for key in doc:
        if key not in ("schema_version", "id", "circuit", "config", "fault"):
            raise Fail(f"request: unknown field '{key}'")
    if not need(doc, "id", str, "request"):
        raise Fail("request: 'id' is empty")

    circuit = need(doc, "circuit", dict, "request")
    sources = []
    for key, value in circuit.items():
        if key not in ("name", "blif", "pla"):
            raise Fail(f"circuit: unknown field '{key}'")
        if isinstance(value, bool) or not isinstance(value, str):
            raise Fail(f"circuit: '{key}' is not a string")
        if value:
            sources.append(key)
    if len(sources) != 1:
        raise Fail(f"circuit: needs exactly one of name/blif/pla "
                   f"(got {sources or 'none'})")

    config = doc.get("config", {})
    if not isinstance(config, dict):
        raise Fail("request: 'config' is not an object")
    for key, value in config.items():
        if key not in CONFIG_KEYS:
            raise Fail(f"config: unknown key '{key}'")
        want = CONFIG_KEYS[key]
        if want is not bool and isinstance(value, bool):
            raise Fail(f"config: '{key}' should not be a bool")
        if not isinstance(value, want):
            raise Fail(f"config: '{key}' has wrong type "
                       f"({type(value).__name__})")

    if "fault" in doc:
        fault = need(doc, "fault", dict, "request")
        for key in fault:
            if key not in ("kind", "at"):
                raise Fail(f"fault: unknown field '{key}'")
        kind = need(fault, "kind", str, "fault")
        if kind not in FAULT_KINDS:
            raise Fail(f"fault: unknown kind '{kind}'")
        if "at" in fault:
            need(fault, "at", NUMBER, "fault", nonneg=True)
    return "request"


def check_response(doc):
    if not isinstance(doc, dict):
        raise Fail("response is not an object")
    check_version(doc, "response")
    need(doc, "id", str, "response")
    ok = need(doc, "ok", bool, "response")
    code = need(doc, "code", str, "response")
    if code not in ERROR_CODES:
        raise Fail(f"response: unknown code '{code}'")
    if ok != (code == "ok"):
        raise Fail(f"response: ok={ok} inconsistent with code '{code}'")
    if ok:
        if "error" in doc:
            raise Fail("response: ok with an 'error' object")
        if "report" not in doc:
            raise Fail("response: ok without a 'report'")
    else:
        error = need(doc, "error", dict, "response")
        ecode = need(error, "code", str, "response.error")
        if ecode != code:
            raise Fail(f"response: error.code '{ecode}' != code '{code}'")
        need(error, "message", str, "response.error")
    if "report" in doc:
        report = need(doc, "report", dict, "response")
        # Spot checks only; check_report_json.py owns the full schema.
        if report.get("report") != "imodec_run":
            raise Fail("response.report: not an imodec_run document")
        need(report, "circuit", str, "response.report")
        need(report, "result", dict, "response.report")
    return "response"


def check_line(doc, mode):
    if mode == "request":
        return check_request(doc)
    if mode == "response":
        return check_response(doc)
    if isinstance(doc, dict) and "ok" in doc:
        return check_response(doc)
    return check_request(doc)


def main(argv):
    ap = argparse.ArgumentParser()
    ap.add_argument("paths", nargs="+", metavar="transcript.jsonl")
    ap.add_argument("--mode", choices=("request", "response", "auto"),
                    default="auto",
                    help="direction to validate (default: auto per line)")
    args = ap.parse_args(argv[1:])
    for path in args.paths:
        counts = {"request": 0, "response": 0}
        try:
            with open(path, encoding="utf-8") as f:
                lines = [ln for ln in f.read().splitlines() if ln.strip()]
        except OSError as e:
            print(f"check_request_json: {path}: {e}", file=sys.stderr)
            return 1
        for i, line in enumerate(lines, 1):
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as e:
                print(f"check_request_json: {path}:{i}: {e}", file=sys.stderr)
                return 1
            try:
                counts[check_line(doc, args.mode)] += 1
            except Fail as e:
                print(f"check_request_json: {path}:{i}: {e}", file=sys.stderr)
                return 1
        print(f"check_request_json: {path}: OK ({counts['request']} requests, "
              f"{counts['response']} responses)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
