#!/usr/bin/env python3
"""Validate a unified run report (imodec_cli --report / SynthesisConfig::
report_path, written by src/map/report.cpp).

Schema (version 1), top level:

  {
    "report": "imodec_run",        # required, literal
    "schema_version": 1,           # required
    "circuit": "<name>",           # required, non-empty string
    "config": { ... },             # required, config echo (typed spot checks)
    "result": { ... },             # required, run outcome
    "degrade": { ... },            # required, degradation record
    "phases": [ ... ],             # required, span rollup tree
    "counters": { name: n, ... },  # required, non-negative numbers
    "gauges": { name: {"value","max"}, ... },
    "histograms": { name: {"count","sum","max","p50","p90","p99"}, ... },
    "kernel": { "bdd": {...}, "miter.bdd": {...} },  # prefixes optional
    "flight": {"recorded": n, "capacity": n, "events": [ ... ]}
  }

Adding keys is schema-compatible and ignored here; missing or mistyped
required keys fail. `--require-hist NAME` (repeatable) additionally asserts
that histogram NAME exists with count > 0 — the report smoke uses it to pin
that the varpart/engine/GC/miter instrumentation actually fired.

Exit codes: 0 OK, 1 validation failure, 2 usage.
"""

import argparse
import json
import sys

NUMBER = (int, float)


class Fail(Exception):
    pass


def need(obj, key, types, where, nonneg=False):
    if key not in obj:
        raise Fail(f"{where}: missing '{key}'")
    value = obj[key]
    # bool is an int subclass in Python; only accept it when asked for.
    if types is not bool and isinstance(value, bool):
        raise Fail(f"{where}: '{key}' should not be a bool")
    if not isinstance(value, types):
        raise Fail(f"{where}: '{key}' has wrong type "
                   f"({type(value).__name__})")
    if nonneg and isinstance(value, NUMBER) and value < 0:
        raise Fail(f"{where}: '{key}' is negative ({value})")
    return value


def check_phases(nodes, where):
    if not isinstance(nodes, list):
        raise Fail(f"{where}: not an array")
    for i, node in enumerate(nodes):
        w = f"{where}[{i}]"
        if not isinstance(node, dict):
            raise Fail(f"{w}: not an object")
        need(node, "name", str, w)
        need(node, "total_ms", NUMBER, w, nonneg=True)
        need(node, "calls", NUMBER, w, nonneg=True)
        check_phases(need(node, "children", list, w), f"{w}.children")


def check_histogram_summary(name, s):
    where = f"histograms[{name}]"
    if not isinstance(s, dict):
        raise Fail(f"{where}: not an object")
    for key in ("count", "sum", "max", "p50", "p90", "p99"):
        need(s, key, NUMBER, where, nonneg=True)
    if s["count"] > 0 and not s["p50"] <= s["p90"] <= s["p99"]:
        raise Fail(f"{where}: quantiles not monotone "
                   f"(p50={s['p50']}, p90={s['p90']}, p99={s['p99']})")


def check_kernel(name, k):
    where = f"kernel[{name}]"
    if not isinstance(k, dict):
        raise Fail(f"{where}: not an object")
    need(k, "nodes_allocated", NUMBER, where, nonneg=True)
    need(k, "peak_live_nodes", NUMBER, where, nonneg=True)
    load = need(k, "unique_load_factor", NUMBER, where, nonneg=True)
    if load > 1.0:
        raise Fail(f"{where}: unique_load_factor > 1 ({load})")
    need(k, "peak_arena_bytes", NUMBER, where, nonneg=True)
    for key in ("gc_runs", "sift_runs", "sift_swaps"):
        need(k, key, NUMBER, where, nonneg=True)
    cache = need(k, "cache", dict, where)
    for op, r in cache.items():
        w = f"{where}.cache[{op}]"
        if not isinstance(r, dict):
            raise Fail(f"{w}: not an object")
        need(r, "lookups", NUMBER, w, nonneg=True)
        hits = need(r, "hits", NUMBER, w, nonneg=True)
        rate = need(r, "hit_rate", NUMBER, w, nonneg=True)
        if hits > r["lookups"]:
            raise Fail(f"{w}: hits > lookups")
        if rate > 1.0:
            raise Fail(f"{w}: hit_rate > 1 ({rate})")


def check_flight(flight):
    where = "flight"
    if not isinstance(flight, dict):
        raise Fail(f"{where}: not an object")
    recorded = need(flight, "recorded", NUMBER, where, nonneg=True)
    capacity = need(flight, "capacity", NUMBER, where, nonneg=True)
    events = need(flight, "events", list, where)
    if len(events) > capacity:
        raise Fail(f"{where}: more events than capacity "
                   f"({len(events)} > {capacity})")
    if len(events) > recorded:
        raise Fail(f"{where}: more events than recorded "
                   f"({len(events)} > {recorded})")
    kinds = {"phase", "rung", "gc", "guard", "cache", "trip"}
    for i, ev in enumerate(events):
        w = f"{where}.events[{i}]"
        if not isinstance(ev, dict):
            raise Fail(f"{w}: not an object")
        need(ev, "t_ms", NUMBER, w, nonneg=True)
        kind = need(ev, "kind", str, w)
        if kind not in kinds:
            raise Fail(f"{w}: unknown kind '{kind}'")
        need(ev, "what", str, w)
        for key in ("a", "b", "c"):
            need(ev, key, NUMBER, w, nonneg=True)


def check_report(doc, require_hists):
    if not isinstance(doc, dict):
        raise Fail("top level is not an object")
    if doc.get("report") != "imodec_run":
        raise Fail(f"'report' is not \"imodec_run\" ({doc.get('report')!r})")
    sv = doc.get("schema_version")
    if isinstance(sv, bool) or not isinstance(sv, NUMBER) or sv != 1:
        raise Fail(f"unsupported schema_version {sv!r}")
    circuit = need(doc, "circuit", str, "top level")
    if not circuit:
        raise Fail("'circuit' is empty")

    config = need(doc, "config", dict, "top level")
    for key in ("k", "bound_size", "max_p", "timeout_ms", "node_budget"):
        need(config, key, NUMBER, "config", nonneg=True)
    for key in ("verify", "on_exhaustion"):
        need(config, key, str, "config")
    need(config, "result_cache", bool, "config")

    result = need(doc, "result", dict, "top level")
    for key in ("luts", "clbs", "depth", "vectors", "flow_seconds"):
        need(result, key, NUMBER, "result", nonneg=True)
    for key in ("collapsed", "verified", "verified_exhaustive",
                "verify_proven"):
        need(result, key, bool, "result")
    need(result, "verify_mode", str, "result")

    degrade = need(doc, "degrade", dict, "top level")
    need(degrade, "degraded", bool, "degrade")
    for key in ("engine_exhausted", "single_fallbacks", "shannon_degrades",
                "drained"):
        need(degrade, key, NUMBER, "degrade", nonneg=True)
    if not isinstance(degrade.get("events"), list):
        raise Fail("degrade: missing or non-array 'events'")

    check_phases(need(doc, "phases", list, "top level"), "phases")

    counters = need(doc, "counters", dict, "top level")
    for name, value in counters.items():
        if isinstance(value, bool) or not isinstance(value, NUMBER) \
                or value < 0:
            raise Fail(f"counters[{name}]: not a non-negative number")

    gauges = need(doc, "gauges", dict, "top level")
    for name, g in gauges.items():
        if not isinstance(g, dict):
            raise Fail(f"gauges[{name}]: not an object")
        need(g, "value", NUMBER, f"gauges[{name}]")
        need(g, "max", NUMBER, f"gauges[{name}]")

    hists = need(doc, "histograms", dict, "top level")
    for name, s in hists.items():
        check_histogram_summary(name, s)

    kernel = need(doc, "kernel", dict, "top level")
    for name, k in kernel.items():
        check_kernel(name, k)

    check_flight(need(doc, "flight", dict, "top level"))

    for name in require_hists:
        if name not in hists:
            raise Fail(f"required histogram '{name}' is missing")
        if hists[name]["count"] <= 0:
            raise Fail(f"required histogram '{name}' is empty")
    return circuit


def main(argv):
    ap = argparse.ArgumentParser()
    ap.add_argument("paths", nargs="+", metavar="report.json")
    ap.add_argument("--require-hist", action="append", default=[],
                    metavar="NAME",
                    help="assert histogram NAME exists with count > 0 "
                         "(repeatable)")
    args = ap.parse_args(argv[1:])
    for path in args.paths:
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"check_report_json: {path}: {e}", file=sys.stderr)
            return 1
        try:
            circuit = check_report(doc, args.require_hist)
        except Fail as e:
            print(f"check_report_json: {path}: {e}", file=sys.stderr)
            return 1
        print(f"check_report_json: {path}: OK (circuit={circuit}, "
              f"{len(doc['histograms'])} histograms, "
              f"{len(doc['flight']['events'])} flight events)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
