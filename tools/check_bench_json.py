#!/usr/bin/env python3
"""Validate the bench JSON emitted by the bench_* harnesses (--json <file>).

Schema (version 1):

  {
    "bench": "<harness name>",          # required, string
    "schema_version": 1,                # required, number
    "records": [                        # required, array of objects
      {
        "circuit": "rd53",              # required, string
        "seconds": 0.123,               # required, number >= 0
        ... optional typed keys, see OPTIONAL_KEYS ...
      }
    ]
  }

Unknown record keys are allowed (forward compatibility) but known keys must
have the right type. Exits non-zero with a message on the first violation.
"""

import json
import sys

NUMBER = (int, float)

# key -> (type tuple, must be >= 0 when numeric)
OPTIONAL_KEYS = {
    "mode": (str, False),
    "ablation": (str, False),
    "b": (NUMBER, True),
    "p": (NUMBER, True),
    "q": (NUMBER, True),
    "m": (NUMBER, True),
    "luts": (NUMBER, True),
    "clbs": (NUMBER, True),
    "clbs_single": (NUMBER, True),
    "clbs_strict": (NUMBER, True),
    "clbs_r_imodec": (NUMBER, True),
    "clbs_r_fgmap": (NUMBER, True),
    "depth": (NUMBER, True),
    "lmax_rounds": (NUMBER, True),
    "bdd_nodes": (NUMBER, True),
    "cache_hit_rate": (NUMBER, True),
    "iterations": (NUMBER, True),
    "cpu_seconds": (NUMBER, True),
    "ops_per_sec": (NUMBER, True),
    "threads": (NUMBER, True),
    "verified": (bool, False),
    "verify_mode": (str, False),
    "degraded": (bool, False),
    # obs_overhead.py records
    "seconds_obs": (NUMBER, True),
    "overhead": (NUMBER, True),
}


def key_spec(key):
    """Type spec for `key`, including the patterned histogram-summary keys
    emitted by bench_micro/bench_table2 under --obs: `<histogram>_p50` /
    `<histogram>_p90` / `<histogram>_p99` quantiles (microseconds) and
    `cache_hit_rate_<op>` per BDD op class. None = unknown (allowed,
    unchecked)."""
    if key in OPTIONAL_KEYS:
        return OPTIONAL_KEYS[key]
    if key.endswith(("_p50", "_p90", "_p99")):
        return (NUMBER, True)
    if key.startswith("cache_hit_rate_"):
        return (NUMBER, True)
    return None


def fail(msg):
    print(f"check_bench_json: {msg}", file=sys.stderr)
    sys.exit(1)


def check_record(i, rec):
    where = f"records[{i}]"
    if not isinstance(rec, dict):
        fail(f"{where}: not an object")
    circuit = rec.get("circuit")
    if not isinstance(circuit, str) or not circuit:
        fail(f"{where}: missing or non-string 'circuit'")
    seconds = rec.get("seconds")
    # bool is an int subclass in Python; reject it explicitly.
    if isinstance(seconds, bool) or not isinstance(seconds, NUMBER):
        fail(f"{where} ({circuit}): missing or non-numeric 'seconds'")
    if seconds < 0:
        fail(f"{where} ({circuit}): negative 'seconds' ({seconds})")
    for key, value in rec.items():
        if key in ("circuit", "seconds"):
            continue
        spec = key_spec(key)
        if spec is None:
            continue
        want, nonneg = spec
        if want is not bool and isinstance(value, bool):
            fail(f"{where} ({circuit}): '{key}' should not be a bool")
        if not isinstance(value, want):
            fail(f"{where} ({circuit}): '{key}' has wrong type "
                 f"({type(value).__name__})")
        if nonneg and isinstance(value, NUMBER) and value < 0:
            fail(f"{where} ({circuit}): '{key}' is negative ({value})")


def check_file(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        fail(f"cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        fail(f"{path}: invalid JSON: {e}")
    if not isinstance(doc, dict):
        fail(f"{path}: top level is not an object")
    if not isinstance(doc.get("bench"), str) or not doc["bench"]:
        fail(f"{path}: missing or non-string 'bench'")
    sv = doc.get("schema_version")
    if isinstance(sv, bool) or not isinstance(sv, NUMBER):
        fail(f"{path}: missing or non-numeric 'schema_version'")
    if sv != 1:
        fail(f"{path}: unsupported schema_version {sv}")
    records = doc.get("records")
    if not isinstance(records, list):
        fail(f"{path}: missing or non-array 'records'")
    for i, rec in enumerate(records):
        check_record(i, rec)
    print(f"check_bench_json: {path}: OK "
          f"(bench={doc['bench']}, {len(records)} records)")


def main(argv):
    if len(argv) < 2:
        print(f"usage: {argv[0]} <bench.json> [more.json ...]",
              file=sys.stderr)
        return 2
    for path in argv[1:]:
        check_file(path)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
