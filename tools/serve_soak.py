#!/usr/bin/env python3
"""Soak imodec_served: N mixed requests through one warm daemon.

Drives a single imodec_served process (stdin/stdout line protocol, or a Unix
socket with --socket) with a mixed workload — registry circuits cycling
through different per-request configs, inline PLA/BLIF, deliberate error
requests (unknown circuits, unknown config keys, malformed JSON, malformed
PLA), tight-node-budget degraded runs, and (with --faults, fault-injection
builds only) armed fault plans — and asserts the serving invariants:

  - every request gets exactly one response, with the request's id echoed;
  - every response carries a valid ErrorCode spelling, consistent with "ok";
  - error requests fail with the expected code (usage/parse), success
    requests succeed;
  - NO CROSS-REQUEST STATE LEAKS: repeated identical requests (including
    node-budget degraded ones) produce identical result sections no matter
    what ran between them — the warm pool and the NPN cache must be
    invisible in the output;
  - with --faults: an armed fault never crashes the daemon, it surfaces as
    either a typed error response or a degraded-but-ok run.

Transcripts (requests.jsonl / responses.jsonl) are written to --out for
tools/check_request_json.py to validate both wire directions; ctest chains
the two via a fixture.

--chaos switches to the overload/crash soak (DESIGN.md §15): the daemon runs
under --supervise on a Unix socket while N concurrent clients (default 8)
hammer it with mixed traffic — valid circuits, control verbs, malformed
JSON, oversized lines, BDD-hostile tight-budget requests, and (with
--faults) armed fault plans — and a killer thread SIGKILLs the serving
worker (via --pidfile) at least --kills times (default 20). The chaos
invariants:

  - ZERO HANGS: every client request ends in a typed JSON response or a
    clean connection close within its socket timeout — a read timeout fails
    the soak;
  - typed shedding: overload surfaces as code "overloaded" with
    error.retry_after_ms (the soak runs one worker with a tiny queue, so at
    least one shed is required), never a stall;
  - oversized lines get a typed usage error and the connection survives;
  - the supervisor records one restart per delivered kill and keeps
    serving (clients reconnect and complete requests after every crash);
  - the final SIGTERM drains cleanly: supervisor exit 0, pidfile gone.

Exit codes: 0 OK, 1 invariant violation, 2 usage.
"""

import argparse
import json
import os
import random
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time

# Fast-synthesizing registry circuits (sub-50ms each) so 200 requests stay
# inside a CI-friendly budget even under ASan.
CIRCUITS = ["rd53", "rd73", "rd84", "z4ml", "misex1", "9sym", "clip", "sao2"]

XOR_PLA = ".i 3\n.o 1\n.p 4\n001 1\n010 1\n100 1\n111 1\n.e\n"
MAJ_BLIF = (".model maj3\n.inputs a b c\n.outputs y\n"
            ".names a b c y\n11- 1\n1-1 1\n-11 1\n.end\n")


def build_requests(count, with_faults):
    """The soak schedule: deterministic, id'd q000000..., mixed outcomes."""
    reqs = []
    expect = []      # per request: set of acceptable codes
    wire_valid = []  # schema-valid per check_request_json.py (the requests
                     # transcript only keeps these; schema-invalid probes are
                     # the daemon's rejection tests, not example traffic)

    def add(body, codes, valid=True):
        rid = f"q{len(reqs):06d}"
        reqs.append({"schema_version": 1, "id": rid, **body})
        expect.append(codes)
        wire_valid.append(valid)

    i = 0
    while len(reqs) < count:
        kind = i % 10
        circuit = CIRCUITS[i % len(CIRCUITS)]
        if kind < 4:
            # Plain run; alternate the result cache per request.
            add({"circuit": {"name": circuit},
                 "config": {"result_cache": i % 2 == 0}}, {"ok"})
        elif kind == 4:
            # Inline sources.
            add({"circuit": {"pla": XOR_PLA}} if i % 2 else
                {"circuit": {"blif": MAJ_BLIF}}, {"ok"})
        elif kind == 5:
            # Tight node budget, degrade: must still come back ok (the
            # degradation ladder guarantees a complete verified network).
            add({"circuit": {"name": circuit},
                 "config": {"node_budget": 2000, "on_exhaustion": "degrade",
                            "result_cache": False}}, {"ok"})
        elif kind == 6:
            # Tight node budget, fail: either trips (resource) or the
            # circuit fits (ok) — both are valid; crashes are not.
            add({"circuit": {"name": circuit},
                 "config": {"node_budget": 1500, "on_exhaustion": "fail"}},
                {"ok", "resource", "timeout"})
        elif kind == 7:
            # Usage errors: unknown circuit / unknown config key / rejected
            # session key.
            bad = i % 3
            if bad == 0:
                add({"circuit": {"name": "no-such-circuit"}}, {"usage"})
            elif bad == 1:
                add({"circuit": {"name": circuit},
                     "config": {"timeout": 5}}, {"usage"}, valid=False)
            else:
                add({"circuit": {"name": circuit},
                     "config": {"threads": 2}}, {"usage"}, valid=False)
        elif kind == 8:
            # Parse errors from malformed inline circuits.
            add({"circuit": {"pla": ".i 2\n.o 1\n.p 1\n01 1 extra\n.e\n"}},
                {"parse"})
        else:
            if with_faults:
                # Armed fault: the daemon must answer, not die. Depending on
                # where the plan lands the run recovers (ok) or trips.
                fkind = ["deadline", "node_budget", "bad_alloc",
                         "cancel"][i % 4]
                add({"circuit": {"name": circuit},
                     "config": {"node_budget": 500000,
                                "timeout_ms": 60000,
                                "on_exhaustion":
                                    "degrade" if i % 2 else "fail"},
                     "fault": {"kind": fkind, "at": 1 + i % 40}},
                    {"ok", "timeout", "resource"})
            else:
                add({"circuit": {"name": circuit},
                     "config": {"verify": "exact", "result_cache": True}},
                    {"ok"})
        i += 1
    return reqs, expect, wire_valid


def run_stdio(daemon_argv, lines):
    proc = subprocess.run(daemon_argv, input="\n".join(lines) + "\n",
                          capture_output=True, text=True, timeout=1800)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise RuntimeError(f"daemon exited with {proc.returncode}")
    return proc.stdout.splitlines()


def run_socket(daemon_argv, path, nreq, lines):
    daemon = subprocess.Popen(daemon_argv + ["--socket", path,
                                             "--max-requests", str(nreq)],
                              stderr=subprocess.DEVNULL)
    try:
        deadline = 300
        while not os.path.exists(path) and deadline:
            deadline -= 1
            if daemon.poll() is not None:
                raise RuntimeError("daemon died before listening")
            import time
            time.sleep(0.1)
        out = []
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as s:
            s.connect(path)
            f = s.makefile("rw", encoding="utf-8")
            for line in lines:
                f.write(line + "\n")
                f.flush()
                out.append(f.readline().rstrip("\n"))
        return out
    finally:
        daemon.terminate()
        daemon.wait(timeout=30)


# Result fields fully determined by the mapped network and verify verdict.
# The other result fields report the amount of engine work performed
# (max_p, lmax_rounds, bdd_nodes, ...) and legitimately differ between an
# NPN-cache hit and the miss that populated it — the *network* must not.
NETWORK_FIELDS = ("luts", "clbs", "clb_paired_blocks", "clb_single_blocks",
                  "depth", "vectors", "max_m", "shannon_fallbacks",
                  "collapsed", "verified", "verified_exhaustive",
                  "verify_proven", "verify_mode")


def result_signature(resp):
    """The parts of a response that must be identical across identical
    requests: outcome code plus the network-determined result fields and the
    structural degradation counters (minus wall-clock-dependent ones)."""
    sig = {"code": resp.get("code")}
    report = resp.get("report")
    if report:
        result = report.get("result", {})
        sig["result"] = {k: result.get(k) for k in NETWORK_FIELDS}
        degrade = dict(report.get("degrade", {}))
        # Event strings and the deadline bit depend on wall clock; the
        # structural counters must not.
        degrade.pop("events", None)
        degrade.pop("deadline_expired", None)
        sig["degrade"] = degrade
    return json.dumps(sig, sort_keys=True)


# ---------------------------------------------------------------------------
# Chaos soak (--chaos)

CHAOS_CODES = {"ok", "verify_failed", "usage", "parse", "timeout", "resource",
               "decompose", "overloaded"}
CHAOS_LINE_CAP = 4096   # daemon --max-line-bytes during chaos
CHAOS_READ_TIMEOUT = 120.0  # any single read past this = hang = failure


class ChaosStats:
    def __init__(self):
        self.lock = threading.Lock()
        self.codes = {}
        self.reconnects = 0
        self.kills = 0

    def count(self, code):
        with self.lock:
            self.codes[code] = self.codes.get(code, 0) + 1

    def reconnect(self):
        with self.lock:
            self.reconnects += 1


def chaos_request(rng, idx, seq, faults):
    """One chaos request: (wire line, acceptable codes, echoed id or None).
    `overloaded` is acceptable for anything that reaches admission — the
    whole point of the soak is that shedding is a normal typed outcome."""
    rid = f"c{idx}-{seq}"
    kind = rng.randrange(10)
    if kind < 5:
        body = {"schema_version": 2, "id": rid,
                "circuit": {"name": rng.choice(CIRCUITS)},
                "config": {"result_cache": rng.random() < 0.5}}
        return json.dumps(body, separators=(",", ":")), \
            {"ok", "overloaded"}, rid
    if kind == 5:
        body = {"schema_version": 2, "id": rid,
                "control": rng.choice(["health", "stats"])}
        return json.dumps(body, separators=(",", ":")), {"ok"}, rid
    if kind == 6:
        # Not JSON: rejected with usage by the engine — but the line still
        # travels the admission queue, so overload can shed it first.
        return "this is not json {", {"usage", "overloaded"}, None
    if kind == 7:
        # Oversized line: past the daemon's --max-line-bytes cap. Typed
        # usage, and the connection must survive for the next iteration.
        return '{"pad":"' + "x" * (2 * CHAOS_LINE_CAP) + '"}', \
            {"usage"}, None
    if kind == 8:
        # BDD-hostile: a budget so tight the run usually trips resource.
        body = {"schema_version": 2, "id": rid,
                "circuit": {"name": rng.choice(CIRCUITS)},
                "config": {"node_budget": 1500, "on_exhaustion": "fail",
                           "result_cache": False}}
        return json.dumps(body, separators=(",", ":")), \
            {"ok", "resource", "timeout", "overloaded"}, rid
    if faults:
        body = {"schema_version": 2, "id": rid,
                "circuit": {"name": rng.choice(CIRCUITS)},
                "fault": {"kind": rng.choice(["deadline", "node_budget",
                                              "bad_alloc", "cancel"]),
                          "at": 1 + rng.randrange(40)}}
        return json.dumps(body, separators=(",", ":")), \
            {"ok", "timeout", "resource", "overloaded"}, rid
    body = {"schema_version": 2, "id": rid,
            "circuit": {"name": "no-such-circuit"}}
    return json.dumps(body, separators=(",", ":")), \
        {"usage", "overloaded"}, rid


class ChaosClient(threading.Thread):
    """One closed-loop client: connect, fire mixed requests, validate every
    response inline. Worker crashes show up as clean closes / resets — the
    client reconnects and retries; anything else (hang, invalid response,
    unexpected code) is recorded as a failure."""

    def __init__(self, idx, sock_path, stop_evt, stats, failures, fail_lock,
                 faults, transcript):
        super().__init__(daemon=True)
        self.idx = idx
        self.sock_path = sock_path
        self.stop_evt = stop_evt
        self.stats = stats
        self.failures = failures
        self.fail_lock = fail_lock
        self.faults = faults
        self.transcript = transcript
        self.completed = 0
        self.retry_hint = 0.025

    def fail(self, msg):
        with self.fail_lock:
            self.failures.append(f"client {self.idx}: {msg}")

    def connect(self):
        deadline = time.time() + 60
        while time.time() < deadline and not self.stop_evt.is_set():
            s = None
            try:
                s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                s.settimeout(CHAOS_READ_TIMEOUT)
                s.connect(self.sock_path)
                return s
            except OSError:
                if s is not None:
                    try:
                        s.close()
                    except OSError:
                        pass
                time.sleep(0.05)
        return None

    def read_line(self, s, buf):
        """One newline-terminated line from s. (line, buf) or (None, buf)
        on clean close. socket.timeout propagates (a hang)."""
        while b"\n" not in buf:
            chunk = s.recv(65536)
            if not chunk:
                return None, buf
            buf += chunk
        line, _, buf = buf.partition(b"\n")
        return line, buf

    def run(self):
        rng = random.Random(7000 + self.idx)
        conn, buf = None, b""
        seq = 0
        while not self.stop_evt.is_set():
            line, codes, rid = chaos_request(rng, self.idx, seq, self.faults)
            seq += 1
            # Retry the same request across connection deaths (a kill may
            # land mid-request); each attempt must end in a response or a
            # clean close.
            for _ in range(20):
                if self.stop_evt.is_set():
                    return
                if conn is None:
                    conn = self.connect()
                    buf = b""
                    if conn is None:
                        return  # stop requested / socket gone at teardown
                try:
                    conn.sendall(line.encode() + b"\n")
                    resp_line, buf = self.read_line(conn, buf)
                except socket.timeout:
                    self.fail(f"HANG: no response within "
                              f"{CHAOS_READ_TIMEOUT}s (seq {seq})")
                    return
                except OSError:
                    resp_line = None  # reset mid-write/read: treat as close
                if resp_line is None:
                    try:
                        conn.close()
                    except OSError:
                        pass
                    conn, buf = None, b""
                    self.stats.reconnect()
                    continue
                code = self.check(resp_line, codes, rid)
                self.completed += 1
                if code == "overloaded":
                    # Honor the server's backoff hint (capped — chaos should
                    # stay hot enough to keep the queue full).
                    time.sleep(min(self.retry_hint, 0.05))
                break
            else:
                self.fail("no response after 20 reconnect attempts")
                return

    def check(self, resp_line, codes, rid):
        try:
            resp = json.loads(resp_line.decode())
        except (json.JSONDecodeError, UnicodeDecodeError) as e:
            self.fail(f"response is not JSON: {e}")
            return None
        with self.fail_lock:
            self.transcript.append(resp_line.decode())
        code = resp.get("code")
        self.stats.count(code)
        if code not in CHAOS_CODES:
            self.fail(f"invalid code {code!r}")
            return code
        if code not in codes:
            self.fail(f"code {code}, expected one of {sorted(codes)}")
        if rid is not None and resp.get("id") not in (rid, ""):
            self.fail(f"id echoed as {resp.get('id')!r}, sent {rid!r}")
        if code == "overloaded":
            err = resp.get("error", {})
            retry = err.get("retry_after_ms")
            if not isinstance(retry, int):
                self.fail("overloaded response without error.retry_after_ms")
            else:
                self.retry_hint = retry / 1000.0
        return code


def chaos_killer(pidfile, kills, stop_evt, stats, failures, fail_lock):
    """SIGKILL the serving worker `kills` times, waiting for the supervisor
    to fork a fresh worker (new pid in the pidfile) between kills."""
    rng = random.Random(42)
    delivered = 0
    last_killed = -1
    deadline = time.time() + 240
    while delivered < kills and time.time() < deadline \
            and not stop_evt.is_set():
        time.sleep(rng.uniform(0.05, 0.25))
        try:
            with open(pidfile, encoding="utf-8") as f:
                pid = int(f.read().strip())
        except (OSError, ValueError):
            continue
        if pid == last_killed:
            continue  # supervisor has not re-forked yet
        try:
            os.kill(pid, signal.SIGKILL)
        except ProcessLookupError:
            continue
        last_killed = pid
        delivered += 1
    stats.kills = delivered
    if delivered < kills:
        with fail_lock:
            failures.append(
                f"killer delivered only {delivered}/{kills} kills "
                f"before the deadline")


def chaos_main(args):
    out_dir = args.out
    os.makedirs(out_dir, exist_ok=True)
    # Short, collision-free socket path (sun_path caps at ~107 bytes; the
    # build dir easily exceeds it).
    tmp = tempfile.mkdtemp(prefix="imodec-chaos-")
    sock_path = os.path.join(tmp, "s")
    pidfile = os.path.join(tmp, "pid")
    stderr_path = os.path.join(out_dir, "supervisor_stderr.log")

    # One worker + tiny queue: 8 clients vs capacity 3 guarantees typed
    # sheds. Aggressive restart knobs: rapid kills must not look like a
    # crash loop (RestartPolicy is unit-tested separately).
    daemon_argv = [args.daemon, "--socket", sock_path, "--supervise",
                   "--pidfile", pidfile, "--workers", "1", "--queue", "2",
                   "--retry-after-ms", "25",
                   "--max-line-bytes", str(CHAOS_LINE_CAP),
                   "--result-cache", "--timeout-ms", "60000",
                   "--restart-base-ms", "20", "--restart-max-ms", "100",
                   "--restart-stable-ms", "50",
                   "--restart-give-up", "1000000"] + args.daemon_arg
    stderr_f = open(stderr_path, "w", encoding="utf-8")
    daemon = subprocess.Popen(daemon_argv, stderr=stderr_f)

    failures = []
    fail_lock = threading.Lock()
    stats = ChaosStats()
    transcript = []
    stop_evt = threading.Event()
    try:
        deadline = time.time() + 60
        while not os.path.exists(sock_path):
            if daemon.poll() is not None or time.time() > deadline:
                raise RuntimeError("daemon did not start listening")
            time.sleep(0.05)

        clients = [ChaosClient(i, sock_path, stop_evt, stats, failures,
                               fail_lock, args.faults, transcript)
                   for i in range(args.clients)]
        for c in clients:
            c.start()
        killer = threading.Thread(
            target=chaos_killer,
            args=(pidfile, args.kills, stop_evt, stats, failures, fail_lock),
            daemon=True)
        killer.start()
        killer.join(timeout=300)
        if killer.is_alive():
            failures.append("killer thread did not finish")
        time.sleep(1.0)  # let clients observe the post-kill recovery
        stop_evt.set()
        for c in clients:
            c.join(timeout=CHAOS_READ_TIMEOUT + 60)
            if c.is_alive():
                failures.append(f"client {c.idx} did not finish (hang)")

        daemon.send_signal(signal.SIGTERM)
        try:
            rc = daemon.wait(timeout=60)
        except subprocess.TimeoutExpired:
            daemon.kill()
            rc = daemon.wait()
            failures.append("supervisor did not drain within 60s of SIGTERM")
        if rc != 0:
            failures.append(f"supervisor exited {rc}, expected 0")
        if os.path.exists(pidfile):
            failures.append("pidfile not removed on clean exit")
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()
        stderr_f.close()

    # Supervisor records: one restart per delivered kill, then a clean exit.
    sup_events = []
    with open(stderr_path, encoding="utf-8") as f:
        sup_lines = [l.rstrip("\n") for l in f
                     if l.startswith('{"imodec_supervisor"')]
    for line in sup_lines:
        try:
            sup_events.append(json.loads(line)["imodec_supervisor"]["event"])
        except (json.JSONDecodeError, KeyError):
            failures.append(f"malformed supervisor record: {line[:120]}")
    restarts = sup_events.count("restart")
    if restarts < stats.kills:
        failures.append(f"{stats.kills} kills but only {restarts} "
                        f"supervisor restart records")
    if not sup_events or sup_events[-1] != "exit":
        failures.append(f"supervisor records end with "
                        f"{sup_events[-1] if sup_events else 'nothing'}, "
                        f"expected 'exit'")

    completed = sum(c.completed for c in clients)
    n_ok = stats.codes.get("ok", 0)
    n_over = stats.codes.get("overloaded", 0)
    if n_ok < args.clients:
        failures.append(f"only {n_ok} ok responses across {args.clients} "
                        f"clients — the service never recovered")
    if n_over < 1:
        failures.append("no overloaded response observed — the soak never "
                        "exercised shedding (capacity too large?)")

    with open(os.path.join(out_dir, "chaos_responses.jsonl"), "w",
              encoding="utf-8") as f:
        f.write("\n".join(transcript) + ("\n" if transcript else ""))
    with open(os.path.join(out_dir, "supervisor.jsonl"), "w",
              encoding="utf-8") as f:
        f.write("\n".join(sup_lines) + ("\n" if sup_lines else ""))

    print(f"serve_soak: chaos — {args.clients} clients, {stats.kills} kills "
          f"delivered, {restarts} supervisor restarts, {completed} requests "
          f"completed ({n_ok} ok, {n_over} overloaded, "
          f"{stats.reconnects} reconnects), codes {stats.codes}")
    if failures:
        for fail in failures[:25]:
            print(f"serve_soak: FAIL: {fail}", file=sys.stderr)
        if len(failures) > 25:
            print(f"serve_soak: ... and {len(failures) - 25} more",
                  file=sys.stderr)
        return 1
    print("serve_soak: OK")
    return 0


def main(argv):
    ap = argparse.ArgumentParser()
    ap.add_argument("--daemon", required=True, help="path to imodec_served")
    ap.add_argument("--requests", type=int, default=200)
    ap.add_argument("--out", required=True,
                    help="directory for requests.jsonl / responses.jsonl")
    ap.add_argument("--faults", action="store_true",
                    help="include armed fault plans (fault-injection builds)")
    ap.add_argument("--socket", metavar="PATH", default="",
                    help="drive the daemon over a Unix socket at PATH "
                         "instead of stdin/stdout")
    ap.add_argument("--daemon-arg", action="append", default=[],
                    metavar="ARG", help="extra daemon argv entry (repeatable)")
    ap.add_argument("--chaos", action="store_true",
                    help="overload/crash soak: concurrent clients + worker "
                         "kills against a supervised socket daemon")
    ap.add_argument("--clients", type=int, default=8,
                    help="concurrent chaos clients (>= 8 for the ctest soak)")
    ap.add_argument("--kills", type=int, default=20,
                    help="worker SIGKILLs the chaos killer must deliver")
    args = ap.parse_args(argv[1:])

    if args.chaos:
        return chaos_main(args)

    reqs, expect, wire_valid = build_requests(args.requests, args.faults)
    lines = [json.dumps(r, separators=(",", ":")) for r in reqs]
    # Two raw-garbage lines exercise the not-JSON path; they get responses
    # too (id "") but are excluded from the transcript's request side, which
    # must stay schema-valid.
    garbage = ["this is not json", "[1,2,3]"]
    all_lines = lines + garbage

    daemon_argv = [args.daemon, "--result-cache"] + args.daemon_arg
    if args.socket:
        raw = run_socket(daemon_argv, args.socket, len(all_lines), all_lines)
    else:
        raw = run_stdio(daemon_argv, all_lines)

    failures = []
    if len(raw) != len(all_lines):
        failures.append(f"{len(all_lines)} requests but {len(raw)} responses")
    resps = []
    for i, line in enumerate(raw):
        try:
            resps.append(json.loads(line))
        except json.JSONDecodeError as e:
            failures.append(f"response {i} is not JSON: {e}")
            resps.append({})

    codes = {"ok", "verify_failed", "usage", "parse", "timeout", "resource",
             "decompose"}
    signatures = {}
    for i, resp in enumerate(resps[:len(reqs)]):
        rid = reqs[i]["id"]
        where = f"request {rid}"
        if resp.get("id") != rid:
            failures.append(f"{where}: id echoed as {resp.get('id')!r}")
        code = resp.get("code")
        if code not in codes:
            failures.append(f"{where}: invalid code {code!r}")
            continue
        if resp.get("ok") != (code == "ok"):
            failures.append(f"{where}: ok={resp.get('ok')} vs code {code}")
        if code != "ok" and "code" not in resp.get("error", {}):
            failures.append(f"{where}: error response without error.code")
        if code not in expect[i]:
            failures.append(f"{where}: code {code}, expected one of "
                            f"{sorted(expect[i])}")
        # Cross-request leak check: identical request bodies (minus id) must
        # produce identical result signatures, however far apart they ran.
        body = dict(reqs[i])
        del body["id"]
        if "fault" in body:
            continue  # fault position depends on site counters; skip
        key = json.dumps(body, sort_keys=True)
        sig = result_signature(resp)
        if key in signatures:
            first_id, first_sig = signatures[key]
            if sig != first_sig:
                failures.append(
                    f"{where}: result differs from identical request "
                    f"{first_id} — cross-request state leak")
        else:
            signatures[key] = (rid, sig)
    for i, resp in enumerate(resps[len(reqs):]):
        if resp.get("code") != "usage":
            failures.append(f"garbage line {i}: expected usage, got "
                            f"{resp.get('code')!r}")

    os.makedirs(args.out, exist_ok=True)
    with open(os.path.join(args.out, "requests.jsonl"), "w",
              encoding="utf-8") as f:
        f.write("\n".join(line for line, valid in zip(lines, wire_valid)
                          if valid) + "\n")
    with open(os.path.join(args.out, "responses.jsonl"), "w",
              encoding="utf-8") as f:
        f.write("\n".join(raw) + "\n")

    n_ok = sum(1 for r in resps if r.get("code") == "ok")
    print(f"serve_soak: {len(reqs)} requests + {len(garbage)} garbage lines, "
          f"{n_ok} ok, {len(signatures)} distinct bodies checked for leaks")
    if failures:
        for fail in failures[:25]:
            print(f"serve_soak: FAIL: {fail}", file=sys.stderr)
        if len(failures) > 25:
            print(f"serve_soak: ... and {len(failures) - 25} more",
                  file=sys.stderr)
        return 1
    print("serve_soak: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
