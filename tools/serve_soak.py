#!/usr/bin/env python3
"""Soak imodec_served: N mixed requests through one warm daemon.

Drives a single imodec_served process (stdin/stdout line protocol, or a Unix
socket with --socket) with a mixed workload — registry circuits cycling
through different per-request configs, inline PLA/BLIF, deliberate error
requests (unknown circuits, unknown config keys, malformed JSON, malformed
PLA), tight-node-budget degraded runs, and (with --faults, fault-injection
builds only) armed fault plans — and asserts the serving invariants:

  - every request gets exactly one response, with the request's id echoed;
  - every response carries a valid ErrorCode spelling, consistent with "ok";
  - error requests fail with the expected code (usage/parse), success
    requests succeed;
  - NO CROSS-REQUEST STATE LEAKS: repeated identical requests (including
    node-budget degraded ones) produce identical result sections no matter
    what ran between them — the warm pool and the NPN cache must be
    invisible in the output;
  - with --faults: an armed fault never crashes the daemon, it surfaces as
    either a typed error response or a degraded-but-ok run.

Transcripts (requests.jsonl / responses.jsonl) are written to --out for
tools/check_request_json.py to validate both wire directions; ctest chains
the two via a fixture.

Exit codes: 0 OK, 1 invariant violation, 2 usage.
"""

import argparse
import json
import os
import socket
import subprocess
import sys

# Fast-synthesizing registry circuits (sub-50ms each) so 200 requests stay
# inside a CI-friendly budget even under ASan.
CIRCUITS = ["rd53", "rd73", "rd84", "z4ml", "misex1", "9sym", "clip", "sao2"]

XOR_PLA = ".i 3\n.o 1\n.p 4\n001 1\n010 1\n100 1\n111 1\n.e\n"
MAJ_BLIF = (".model maj3\n.inputs a b c\n.outputs y\n"
            ".names a b c y\n11- 1\n1-1 1\n-11 1\n.end\n")


def build_requests(count, with_faults):
    """The soak schedule: deterministic, id'd q000000..., mixed outcomes."""
    reqs = []
    expect = []      # per request: set of acceptable codes
    wire_valid = []  # schema-valid per check_request_json.py (the requests
                     # transcript only keeps these; schema-invalid probes are
                     # the daemon's rejection tests, not example traffic)

    def add(body, codes, valid=True):
        rid = f"q{len(reqs):06d}"
        reqs.append({"schema_version": 1, "id": rid, **body})
        expect.append(codes)
        wire_valid.append(valid)

    i = 0
    while len(reqs) < count:
        kind = i % 10
        circuit = CIRCUITS[i % len(CIRCUITS)]
        if kind < 4:
            # Plain run; alternate the result cache per request.
            add({"circuit": {"name": circuit},
                 "config": {"result_cache": i % 2 == 0}}, {"ok"})
        elif kind == 4:
            # Inline sources.
            add({"circuit": {"pla": XOR_PLA}} if i % 2 else
                {"circuit": {"blif": MAJ_BLIF}}, {"ok"})
        elif kind == 5:
            # Tight node budget, degrade: must still come back ok (the
            # degradation ladder guarantees a complete verified network).
            add({"circuit": {"name": circuit},
                 "config": {"node_budget": 2000, "on_exhaustion": "degrade",
                            "result_cache": False}}, {"ok"})
        elif kind == 6:
            # Tight node budget, fail: either trips (resource) or the
            # circuit fits (ok) — both are valid; crashes are not.
            add({"circuit": {"name": circuit},
                 "config": {"node_budget": 1500, "on_exhaustion": "fail"}},
                {"ok", "resource", "timeout"})
        elif kind == 7:
            # Usage errors: unknown circuit / unknown config key / rejected
            # session key.
            bad = i % 3
            if bad == 0:
                add({"circuit": {"name": "no-such-circuit"}}, {"usage"})
            elif bad == 1:
                add({"circuit": {"name": circuit},
                     "config": {"timeout": 5}}, {"usage"}, valid=False)
            else:
                add({"circuit": {"name": circuit},
                     "config": {"threads": 2}}, {"usage"}, valid=False)
        elif kind == 8:
            # Parse errors from malformed inline circuits.
            add({"circuit": {"pla": ".i 2\n.o 1\n.p 1\n01 1 extra\n.e\n"}},
                {"parse"})
        else:
            if with_faults:
                # Armed fault: the daemon must answer, not die. Depending on
                # where the plan lands the run recovers (ok) or trips.
                fkind = ["deadline", "node_budget", "bad_alloc",
                         "cancel"][i % 4]
                add({"circuit": {"name": circuit},
                     "config": {"node_budget": 500000,
                                "timeout_ms": 60000,
                                "on_exhaustion":
                                    "degrade" if i % 2 else "fail"},
                     "fault": {"kind": fkind, "at": 1 + i % 40}},
                    {"ok", "timeout", "resource"})
            else:
                add({"circuit": {"name": circuit},
                     "config": {"verify": "exact", "result_cache": True}},
                    {"ok"})
        i += 1
    return reqs, expect, wire_valid


def run_stdio(daemon_argv, lines):
    proc = subprocess.run(daemon_argv, input="\n".join(lines) + "\n",
                          capture_output=True, text=True, timeout=1800)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise RuntimeError(f"daemon exited with {proc.returncode}")
    return proc.stdout.splitlines()


def run_socket(daemon_argv, path, nreq, lines):
    daemon = subprocess.Popen(daemon_argv + ["--socket", path,
                                             "--max-requests", str(nreq)],
                              stderr=subprocess.DEVNULL)
    try:
        deadline = 300
        while not os.path.exists(path) and deadline:
            deadline -= 1
            if daemon.poll() is not None:
                raise RuntimeError("daemon died before listening")
            import time
            time.sleep(0.1)
        out = []
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as s:
            s.connect(path)
            f = s.makefile("rw", encoding="utf-8")
            for line in lines:
                f.write(line + "\n")
                f.flush()
                out.append(f.readline().rstrip("\n"))
        return out
    finally:
        daemon.terminate()
        daemon.wait(timeout=30)


# Result fields fully determined by the mapped network and verify verdict.
# The other result fields report the amount of engine work performed
# (max_p, lmax_rounds, bdd_nodes, ...) and legitimately differ between an
# NPN-cache hit and the miss that populated it — the *network* must not.
NETWORK_FIELDS = ("luts", "clbs", "clb_paired_blocks", "clb_single_blocks",
                  "depth", "vectors", "max_m", "shannon_fallbacks",
                  "collapsed", "verified", "verified_exhaustive",
                  "verify_proven", "verify_mode")


def result_signature(resp):
    """The parts of a response that must be identical across identical
    requests: outcome code plus the network-determined result fields and the
    structural degradation counters (minus wall-clock-dependent ones)."""
    sig = {"code": resp.get("code")}
    report = resp.get("report")
    if report:
        result = report.get("result", {})
        sig["result"] = {k: result.get(k) for k in NETWORK_FIELDS}
        degrade = dict(report.get("degrade", {}))
        # Event strings and the deadline bit depend on wall clock; the
        # structural counters must not.
        degrade.pop("events", None)
        degrade.pop("deadline_expired", None)
        sig["degrade"] = degrade
    return json.dumps(sig, sort_keys=True)


def main(argv):
    ap = argparse.ArgumentParser()
    ap.add_argument("--daemon", required=True, help="path to imodec_served")
    ap.add_argument("--requests", type=int, default=200)
    ap.add_argument("--out", required=True,
                    help="directory for requests.jsonl / responses.jsonl")
    ap.add_argument("--faults", action="store_true",
                    help="include armed fault plans (fault-injection builds)")
    ap.add_argument("--socket", metavar="PATH", default="",
                    help="drive the daemon over a Unix socket at PATH "
                         "instead of stdin/stdout")
    ap.add_argument("--daemon-arg", action="append", default=[],
                    metavar="ARG", help="extra daemon argv entry (repeatable)")
    args = ap.parse_args(argv[1:])

    reqs, expect, wire_valid = build_requests(args.requests, args.faults)
    lines = [json.dumps(r, separators=(",", ":")) for r in reqs]
    # Two raw-garbage lines exercise the not-JSON path; they get responses
    # too (id "") but are excluded from the transcript's request side, which
    # must stay schema-valid.
    garbage = ["this is not json", "[1,2,3]"]
    all_lines = lines + garbage

    daemon_argv = [args.daemon, "--result-cache"] + args.daemon_arg
    if args.socket:
        raw = run_socket(daemon_argv, args.socket, len(all_lines), all_lines)
    else:
        raw = run_stdio(daemon_argv, all_lines)

    failures = []
    if len(raw) != len(all_lines):
        failures.append(f"{len(all_lines)} requests but {len(raw)} responses")
    resps = []
    for i, line in enumerate(raw):
        try:
            resps.append(json.loads(line))
        except json.JSONDecodeError as e:
            failures.append(f"response {i} is not JSON: {e}")
            resps.append({})

    codes = {"ok", "verify_failed", "usage", "parse", "timeout", "resource",
             "decompose"}
    signatures = {}
    for i, resp in enumerate(resps[:len(reqs)]):
        rid = reqs[i]["id"]
        where = f"request {rid}"
        if resp.get("id") != rid:
            failures.append(f"{where}: id echoed as {resp.get('id')!r}")
        code = resp.get("code")
        if code not in codes:
            failures.append(f"{where}: invalid code {code!r}")
            continue
        if resp.get("ok") != (code == "ok"):
            failures.append(f"{where}: ok={resp.get('ok')} vs code {code}")
        if code != "ok" and "code" not in resp.get("error", {}):
            failures.append(f"{where}: error response without error.code")
        if code not in expect[i]:
            failures.append(f"{where}: code {code}, expected one of "
                            f"{sorted(expect[i])}")
        # Cross-request leak check: identical request bodies (minus id) must
        # produce identical result signatures, however far apart they ran.
        body = dict(reqs[i])
        del body["id"]
        if "fault" in body:
            continue  # fault position depends on site counters; skip
        key = json.dumps(body, sort_keys=True)
        sig = result_signature(resp)
        if key in signatures:
            first_id, first_sig = signatures[key]
            if sig != first_sig:
                failures.append(
                    f"{where}: result differs from identical request "
                    f"{first_id} — cross-request state leak")
        else:
            signatures[key] = (rid, sig)
    for i, resp in enumerate(resps[len(reqs):]):
        if resp.get("code") != "usage":
            failures.append(f"garbage line {i}: expected usage, got "
                            f"{resp.get('code')!r}")

    os.makedirs(args.out, exist_ok=True)
    with open(os.path.join(args.out, "requests.jsonl"), "w",
              encoding="utf-8") as f:
        f.write("\n".join(line for line, valid in zip(lines, wire_valid)
                          if valid) + "\n")
    with open(os.path.join(args.out, "responses.jsonl"), "w",
              encoding="utf-8") as f:
        f.write("\n".join(raw) + "\n")

    n_ok = sum(1 for r in resps if r.get("code") == "ok")
    print(f"serve_soak: {len(reqs)} requests + {len(garbage)} garbage lines, "
          f"{n_ok} ok, {len(signatures)} distinct bodies checked for leaks")
    if failures:
        for fail in failures[:25]:
            print(f"serve_soak: FAIL: {fail}", file=sys.stderr)
        if len(failures) > 25:
            print(f"serve_soak: ... and {len(failures) - 25} more",
                  file=sys.stderr)
        return 1
    print("serve_soak: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
